// Figure 5 — OS configuration experiments (W1):
//   5a: AutoNUMA on/off x memory placement policy, Machine A (runtime).
//   5b: the same grid's Local Access Ratio.
//   5c: THP on/off x memory allocator, Machine A.
//   5d: {AutoNUMA,THP} enabled vs disabled x placement x Machines A/B/C.
//
// Paper shapes: AutoNUMA slows every policy (the default FT+AutoNUMA is
// ~86% slower than Interleave without it) even though it *raises* LAR; THP
// is detrimental for tcmalloc/jemalloc/tbbmalloc; tuning helps Machine A
// most (~46%), then C (~21%), B least (~7%).

#include <vector>

#include "bench/bench_common.h"
#include "src/workloads/workloads.h"

using numalab::bench::FlagU64;
using numalab::bench::GCycles;
using numalab::bench::TunedBase;
using namespace numalab::workloads;

namespace {

const std::vector<std::pair<const char*, numalab::mem::MemPolicy>> kPolicies =
    {{"FirstTouch", numalab::mem::MemPolicy::kFirstTouch},
     {"Interleave", numalab::mem::MemPolicy::kInterleave},
     {"Localalloc", numalab::mem::MemPolicy::kLocalAlloc},
     {"Preferred", numalab::mem::MemPolicy::kPreferred}};

}  // namespace

int main(int argc, char** argv) {
  uint64_t records = FlagU64(argc, argv, "records", 2'000'000);
  uint64_t card = FlagU64(argc, argv, "card", 200'000);
  numalab::bench::BenchMain(argc, argv);

  // --- Fig 5a + 5b ---
  std::printf("Figure 5a/5b: W1, Machine A, 16 threads — AutoNUMA x memory"
              " placement policy\n");
  std::printf("%-12s %-14s %-14s %-10s %-10s\n", "policy", "on(Gcyc)",
              "off(Gcyc)", "LAR(on)", "LAR(off)");
  for (const auto& [pname, policy] : kPolicies) {
    RunConfig c = TunedBase("A", 16);
    c.num_records = records;
    c.cardinality = card;
    c.policy = policy;
    c.autonuma = true;
    RunResult on = RunW1HolisticAggregation(c);
    c.autonuma = false;
    RunResult off = RunW1HolisticAggregation(c);
    std::printf("%-12s %-14.3f %-14.3f %-10.2f %-10.2f\n", pname,
                GCycles(on.cycles), GCycles(off.cycles),
                on.report.LocalAccessRatio(), off.report.LocalAccessRatio());
    std::fflush(stdout);
  }

  // --- Fig 5c ---
  std::printf("\nFigure 5c: W1, Machine A, 16 threads — THP x allocator "
              "(AutoNUMA off)\n");
  std::printf("%-12s %-14s %-14s %-8s\n", "allocator", "THP off", "THP on",
              "on/off");
  for (const char* alloc :
       {"ptmalloc", "jemalloc", "tcmalloc", "hoard", "tbbmalloc"}) {
    RunConfig c = TunedBase("A", 16);
    c.num_records = records;
    c.cardinality = card;
    c.allocator = alloc;
    c.thp = false;
    RunResult off = RunW1HolisticAggregation(c);
    c.thp = true;
    RunResult on = RunW1HolisticAggregation(c);
    std::printf("%-12s %-14.3f %-14.3f %-8.2f\n", alloc, GCycles(off.cycles),
                GCycles(on.cycles),
                static_cast<double>(on.cycles) /
                    static_cast<double>(off.cycles));
    std::fflush(stdout);
  }

  // --- Fig 5d ---
  std::printf("\nFigure 5d: W1, 16 threads — {AutoNUMA,THP} x placement x "
              "machine (Gcycles)\n");
  std::printf("%-10s %-12s %-10s %-10s %-10s\n", "os-config", "policy", "A",
              "B", "C");
  for (bool enabled : {true, false}) {
    for (const auto& [pname, policy] :
         {kPolicies[0], kPolicies[1], kPolicies[2]}) {
      std::printf("%-10s %-12s ", enabled ? "enabled" : "disabled", pname);
      for (const char* m : {"A", "B", "C"}) {
        RunConfig c = TunedBase(m, 16);
        c.num_records = records;
        c.cardinality = card;
        c.policy = policy;
        c.autonuma = enabled;
        c.thp = enabled;
        RunResult r = RunW1HolisticAggregation(c);
        std::printf("%-10.3f ", GCycles(r.cycles));
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
