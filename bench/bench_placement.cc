// Adaptive-placement bench (DESIGN.md section 12): a skewed-read serving
// mix where a small hot key range, homed on one node but read from every
// node, separates the placement strategies:
//
//   first-touch   hot pages stay on their home node; 3/4 of hot reads are
//                 remote and the home controller takes all the hot traffic
//   interleave    hot pages round-robin over the nodes; traffic balances
//                 but reads are still mostly remote
//   preferred(0)  the whole store lands on node 0 — the worst case
//   autonuma      stock NUMA balancing migrates the hot pages toward whoever
//                 faulted last; a page shared by every node has no good
//                 single home, so it bounces (and each bounce stalls readers)
//   placement     hot-page replication gives every node a local copy and the
//                 cost-aware gate stops the bouncing
//
// Caches are ablated (costs.model_caches = false, the DESIGN.md section 7
// switch bench_ablations uses) so every access exercises DRAM placement —
// the subsystem under test — rather than cache capacity.
//
// The bench FAILS (exit 1) unless the placement cell beats every other cell
// on BOTH p99 sojourn and LAR, and replication actually happened. Stdout is
// deterministic (golden-diffed by check.sh); --json-out attaches the
// per-run "serving" sections plus the v3 replication counters.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/serve/serve.h"

namespace {

using numalab::serve::RunServing;
using numalab::serve::ServeConfig;
using numalab::serve::ServeResult;
using numalab::workloads::RunConfig;

struct Cell {
  const char* name;
  RunConfig cfg;
};

}  // namespace

int main(int argc, char** argv) {
  uint64_t requests = numalab::bench::FlagU64(argc, argv, "requests", 16000);
  uint64_t gap = numalab::bench::FlagU64(argc, argv, "rate-gap", 2'000);
  numalab::bench::BenchMain(argc, argv);

  // Machine C: 4 nodes, 2.1x remote latency — the strongest NUMA penalty
  // of the three machines, i.e. the machine where placement matters most.
  RunConfig base = numalab::bench::TunedBase("C", 16);
  base.costs.model_caches = false;

  ServeConfig sc;
  sc.arrival = numalab::serve::Arrival::kPoisson;
  sc.requests = requests;
  sc.mean_gap_cycles = gap;
  // Read-heavy mix: points and ranges carry the hot skew; a thin
  // probe/upsert tail keeps the shared hash table (and its locks) warm.
  sc.mix_point = 0.55;
  sc.mix_range = 0.40;
  sc.mix_probe = 0.03;
  sc.mix_upsert = 0.02;
  sc.mix_tpch = 0.0;
  sc.kv_keys = 1 << 19;  // 8 MiB store, 2 MiB per node
  // 90% of point/range requests hit an 8K-key (32-page) range inside node
  // 0's partition, and every node serves it (hash-spread routing): the
  // read-hot shared working set replication is built for.
  sc.hot_fraction = 0.9;
  sc.hot_keys = 8192;
  sc.spread_reads = true;
  // 1024 records = 256 cache lines per range: on machine C a remote hot
  // range costs ~256 * 73.5 cycles of DRAM vs ~256 * 35 local, so the tail
  // (a queued burst of hot ranges) is dominated by placement, not noise.
  sc.range_rows = 1024;
  // Deep queues: admission control is not under test here, and every cell
  // must complete the identical request set for the cross-cell checksum
  // (the autonuma cell goes service-bound and would otherwise shed load).
  sc.queue_cap = requests;

  std::vector<Cell> cells;
  {
    Cell c{"first-touch", base};
    cells.push_back(c);
  }
  {
    Cell c{"interleave", base};
    c.cfg.policy = numalab::mem::MemPolicy::kInterleave;
    cells.push_back(c);
  }
  {
    Cell c{"preferred0", base};
    c.cfg.policy = numalab::mem::MemPolicy::kPreferred;
    c.cfg.preferred_node = 0;
    cells.push_back(c);
  }
  {
    Cell c{"autonuma", base};
    c.cfg.autonuma = true;
    cells.push_back(c);
  }
  {
    Cell c{"placement", base};
    c.cfg.placement.enabled = true;
    c.cfg.placement.min_heat = 16;
    // Uniform hash-spread routing means cold store pages are shared about
    // equally by all nodes; demand a sustained 4x-cost imbalance before
    // moving one (each move stalls readers behind migrating_until).
    c.cfg.placement.migrate_hysteresis = 4;
    cells.push_back(c);
  }

  std::printf(
      "placement: skewed-read serving mix (%llu requests, gap %llu, "
      "hot %llu/%llu keys)\n",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(gap),
      static_cast<unsigned long long>(sc.hot_keys),
      static_cast<unsigned long long>(sc.kv_keys));
  std::printf("%-12s %10s %8s %8s %8s %6s %9s %9s %7s\n", "cell",
              "q/Mcycle", "p50", "p99", "lar", "migr", "replicas",
              "inval", "vetoed");

  int failures = 0;
  std::vector<ServeResult> results;
  for (const Cell& cell : cells) {
    ServeResult r = RunServing(cell.cfg, sc);
    if (!r.run.status.ok()) {
      std::printf("%-12s %s\n", cell.name, r.run.status.ToString().c_str());
      ++failures;
    } else {
      double qpm = r.stats.makespan_cycles == 0
                       ? 0.0
                       : static_cast<double>(r.stats.completed) * 1e6 /
                             static_cast<double>(r.stats.makespan_cycles);
      const numalab::perf::SystemCounters& sys = r.run.report.system;
      std::printf(
          "%-12s %10.2f %8llu %8llu %8.3f %6llu %9llu %9llu %7llu\n",
          cell.name, qpm, static_cast<unsigned long long>(r.stats.p50),
          static_cast<unsigned long long>(r.stats.p99),
          r.run.report.LocalAccessRatio(),
          static_cast<unsigned long long>(sys.page_migrations),
          static_cast<unsigned long long>(sys.pages_replicated),
          static_cast<unsigned long long>(sys.replica_invalidations),
          static_cast<unsigned long long>(sys.migrations_vetoed));
    }
    results.push_back(std::move(r));
  }

  // Self-check: the adaptive cell must beat every static policy AND stock
  // AutoNUMA on both tail latency and locality, and must have done it by
  // actually replicating (not by accident of the mix).
  if (failures == 0) {
    const ServeResult& pl = results.back();
    bool ok = pl.run.report.system.pages_replicated > 0;
    for (size_t i = 0; i + 1 < results.size(); ++i) {
      const ServeResult& other = results[i];
      if (!(pl.stats.p99 < other.stats.p99 &&
            pl.run.report.LocalAccessRatio() >
                other.run.report.LocalAccessRatio())) {
        std::printf("placement does not dominate %s (p99 %llu vs %llu, "
                    "lar %.3f vs %.3f)\n",
                    cells[i].name,
                    static_cast<unsigned long long>(pl.stats.p99),
                    static_cast<unsigned long long>(other.stats.p99),
                    pl.run.report.LocalAccessRatio(),
                    other.run.report.LocalAccessRatio());
        ok = false;
      }
    }
    // Every cell serves the identical request stream.
    for (const ServeResult& r : results) {
      if (r.stats.checksum != results[0].stats.checksum) {
        std::printf("checksum mismatch across cells\n");
        ok = false;
      }
    }
    std::printf("placement dominates: %s\n", ok ? "OK" : "FAIL");
    if (!ok) ++failures;
  }

  std::printf("\nbench_placement: %s\n", failures == 0 ? "OK" : "FAIL");
  return failures == 0 ? 0 : 1;
}
