// Figure 3 — OS thread scheduler vs thread affinity: 10 consecutive runs of
// W1 on Machine A, 16 threads. The default (no affinity) configuration is
// reported relative to the Sparse-affinitized run.
//
// Paper shape: unpinned runs fluctuate wildly (every run slower; worst
// cases orders of magnitude, best case still ~27% slower); pinned runs are
// stable.

#include "bench/bench_common.h"
#include "src/workloads/workloads.h"

using numalab::bench::FlagU64;
using numalab::bench::TunedBase;
using namespace numalab::workloads;

int main(int argc, char** argv) {
  uint64_t records = FlagU64(argc, argv, "records", 1'000'000);
  uint64_t card = FlagU64(argc, argv, "card", 100'000);
  numalab::bench::BenchMain(argc, argv);

  // Both configurations run in the out-of-the-box OS environment (AutoNUMA
  // and THP enabled, ptmalloc, First Touch); only thread affinity differs —
  // that is the comparison Fig. 3 makes.
  RunConfig pinned = numalab::bench::DefaultBase("A", 16);
  pinned.affinity = numalab::osmodel::Affinity::kSparse;
  pinned.num_records = records;
  pinned.cardinality = card;
  RunResult base = RunW1HolisticAggregation(pinned);

  std::printf("Figure 3: W1, Machine A, 16 threads — relative runtime of the"
              " default OS scheduler vs Sparse affinity\n");
  std::printf("affinitized (Sparse) baseline: %.3f Gcycles\n",
              numalab::bench::GCycles(base.cycles));
  std::printf("%-6s %-22s %-22s %-12s\n", "run", "no-affinity (Gcycles)",
              "relative to pinned", "migrations");
  for (int run = 1; run <= 10; ++run) {
    RunConfig free_cfg = pinned;
    free_cfg.affinity = numalab::osmodel::Affinity::kNone;
    free_cfg.run_index = run;
    RunResult r = RunW1HolisticAggregation(free_cfg);
    std::printf("%-6d %-22.3f %-22.2f %llu\n", run,
                numalab::bench::GCycles(r.cycles),
                static_cast<double>(r.cycles) /
                    static_cast<double>(base.cycles),
                static_cast<unsigned long long>(
                    r.report.threads.thread_migrations));
    std::fflush(stdout);
  }
  return 0;
}
