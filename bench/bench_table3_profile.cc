// Table III — profiling thread placement: W1 on Machine A, default (OS-
// managed) vs modified (Sparse affinity), hardware-counter comparison.
//
// Paper: migrations -99.95%, cache misses -33%, local accesses +2%, remote
// accesses -32%, local access ratio +10.8%.

#include "bench/bench_common.h"
#include "src/workloads/workloads.h"

using numalab::bench::FlagU64;
using numalab::bench::TunedBase;
using namespace numalab::workloads;

namespace {

void Row(const char* metric, double def, double mod, bool ratio = false) {
  double change = def != 0.0 ? (mod - def) / def * 100.0 : 0.0;
  if (ratio) {
    std::printf("%-26s %14.3f %14.3f %+13.2f%%\n", metric, def, mod, change);
  } else {
    std::printf("%-26s %14.0f %14.0f %+13.2f%%\n", metric, def, mod, change);
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t records = FlagU64(argc, argv, "records", 1'000'000);
  uint64_t card = FlagU64(argc, argv, "card", 100'000);
  numalab::bench::BenchMain(argc, argv);

  RunConfig mod_cfg = TunedBase("A", 16);
  mod_cfg.num_records = records;
  mod_cfg.cardinality = card;

  RunConfig def_cfg = mod_cfg;
  def_cfg.affinity = numalab::osmodel::Affinity::kNone;
  def_cfg.run_index = 3;

  RunResult def = RunW1HolisticAggregation(def_cfg);
  RunResult mod = RunW1HolisticAggregation(mod_cfg);

  const auto& d = def.report.threads;
  const auto& m = mod.report.threads;
  std::printf("Table III: W1 on Machine A — Default (OS-managed) vs "
              "Modified (Sparse)\n");
  std::printf("%-26s %14s %14s %14s\n", "metric", "default", "modified",
              "change");
  Row("Thread Migrations", static_cast<double>(d.thread_migrations),
      static_cast<double>(m.thread_migrations));
  Row("Cache Misses", static_cast<double>(d.llc_misses),
      static_cast<double>(m.llc_misses));
  Row("Local Memory Accesses", static_cast<double>(d.local_dram),
      static_cast<double>(m.local_dram));
  Row("Remote Memory Accesses", static_cast<double>(d.remote_dram),
      static_cast<double>(m.remote_dram));
  Row("Local Access Ratio", def.report.LocalAccessRatio(),
      mod.report.LocalAccessRatio(), /*ratio=*/true);
  Row("Runtime (cycles)", static_cast<double>(def.cycles),
      static_cast<double>(mod.cycles));
  return 0;
}
