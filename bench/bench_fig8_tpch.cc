// Figure 8 — TPC-H (W5): query latency reduction of the tuned OS
// configuration vs the out-of-the-box default, for all 22 queries across
// the five system profiles, on Machine A.
//
// Tuned = Sparse affinity, AutoNUMA off, THP off (except the DBMSx-like
// profile, as in the paper), First Touch, tbbmalloc. Default = no
// affinity, AutoNUMA+THP on, ptmalloc.
//
// Paper shapes: every system improves on average; MonetDB-like avg ~14.5%
// (max 43%), PostgreSQL-like avg ~3% with a few regressions, MySQL-like
// avg ~12% (max 49%), DBMSx-like avg ~21%, Quickstep-like avg ~7%.

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/minidb/runner.h"

using numalab::bench::FlagU64;
using namespace numalab::minidb;

int main(int argc, char** argv) {
  double scale = static_cast<double>(FlagU64(argc, argv, "sf100", 5)) / 100.0;
  numalab::bench::BenchMain(argc, argv);

  std::printf("Figure 8: TPC-H Q1-Q22 latency reduction (tuned vs default)"
              " — Machine A, SF=%.2f\n", scale);
  std::printf("%-5s", "query");
  for (const auto& p : AllProfiles()) std::printf("%14s", p.models.c_str());
  std::printf("\n");

  std::vector<double> sums(AllProfiles().size(), 0.0);
  for (int q = 1; q <= 22; ++q) {
    std::printf("Q%-4d", q);
    size_t pi = 0;
    for (const auto& p : AllProfiles()) {
      TpchOptions o;
      o.machine = "A";
      o.profile = p.name;
      o.query = q;
      o.scale = scale;
      o.run_index = q;  // fresh scheduler noise per query, as in real runs
      o.tuned = false;
      TpchResult def = RunTpch(o);
      o.tuned = true;
      TpchResult tuned = RunTpch(o);
      double reduction =
          100.0 * (1.0 - static_cast<double>(tuned.cycles) /
                             static_cast<double>(def.cycles));
      sums[pi++] += reduction;
      std::printf("%13.1f%%", reduction);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("%-5s", "avg");
  for (double s : sums) std::printf("%13.1f%%", s / 22.0);
  std::printf("\n");
  return 0;
}
