// Figure 1 / Table II — prints the three machine models: topology, routed
// latency-factor matrices, cache/TLB geometry and bandwidths, so the
// simulated testbed can be compared against the paper's specification
// directly.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/topology/machine.h"

int main(int argc, char** argv) {
  numalab::bench::BenchMain(argc, argv);
  for (const char* name : {"A", "B", "C"}) {
    numalab::topology::Machine m = numalab::topology::MachineByName(name);
    std::printf("%s", m.ToString().c_str());
    std::printf("  4K TLB: L1 %d + L2 %d entries; 2M TLB: L1 %d + L2 %d\n",
                m.tlb_4k().l1_entries, m.tlb_4k().l2_entries,
                m.tlb_2m().l1_entries, m.tlb_2m().l2_entries);
    std::printf("  controller %.1f B/cyc per node, links %.1f B/cyc\n\n",
                m.mem_ctrl_bytes_per_cycle(),
                m.links().empty() ? 0.0 : m.links()[0].bytes_per_cycle);
  }
  return 0;
}
