// Figure 10 — the application-agnostic decision flowchart, exercised over a
// grid of practitioner situations, plus the empirical auto-tuner validating
// the flowchart's pick against a brute-force sweep on Machine A.

#include "bench/bench_common.h"
#include "src/advisor/advisor.h"

using namespace numalab;
using namespace numalab::advisor;

int main(int argc, char** argv) {
  numalab::bench::BenchMain(argc, argv);
  std::printf("Figure 10: decision flowchart traces\n\n");

  struct Case {
    const char* name;
    Situation s;
  };
  const Case cases[] = {
      {"analyst with root, allocation-heavy scan/join (the paper's main "
       "path)",
       {false, true, true, false, true, false}},
      {"no superuser access (shared cluster)",
       {false, true, false, false, true, false}},
      {"memory-constrained appliance",
       {false, true, true, false, true, true}},
      {"latency-bound point lookups, few allocations",
       {false, false, true, false, false, false}},
      {"engine already NUMA-aware (pins threads, places memory)",
       {true, true, true, true, true, false}},
  };

  for (const Case& c : cases) {
    Advice a = Advise(c.s);
    std::printf("--- %s\n%s\n", c.name, a.ToString().c_str());
  }

  std::printf("Auto-tuner validation (W1, Machine A, 16 threads):\n");
  workloads::RunConfig base = bench::TunedBase("A", 16);
  base.num_records = 400'000;
  base.cardinality = 40'000;
  Situation s{false, true, true, false, true, false};
  AutoTuneResult r = AutoTune(base, s);
  std::printf("  evaluated %d configurations\n", r.evaluated);
  std::printf("  best:      %s + %s + %s  -> %.3f Gcycles\n",
              osmodel::AffinityName(r.best.affinity),
              mem::MemPolicyName(r.best.policy), r.best.allocator.c_str(),
              bench::GCycles(r.best_cycles));
  std::printf("  flowchart: %s + %s + %s  -> %.3f Gcycles (%.1f%% of best)\n",
              osmodel::AffinityName(r.flowchart.affinity),
              mem::MemPolicyName(r.flowchart.policy),
              r.flowchart.allocator.c_str(),
              bench::GCycles(r.flowchart_cycles),
              100.0 * static_cast<double>(r.flowchart_cycles) /
                  static_cast<double>(r.best_cycles));
  return 0;
}
