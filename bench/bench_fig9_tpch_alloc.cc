// Figure 9 — effect of the memory allocator on TPC-H query latency for the
// MonetDB-like profile on Machine A (queries 5 and 18: joins +
// aggregations).
//
// Paper shape: tbbmalloc cuts Q5 latency ~11% and Q18 ~20% vs ptmalloc.

#include "bench/bench_common.h"
#include "src/minidb/runner.h"

using numalab::bench::FlagU64;
using namespace numalab::minidb;

int main(int argc, char** argv) {
  double scale = static_cast<double>(FlagU64(argc, argv, "sf100", 5)) / 100.0;
  numalab::bench::BenchMain(argc, argv);

  std::printf("Figure 9: TPC-H Q5/Q18 latency by allocator — MonetDB-like"
              " profile, Machine A, SF=%.2f (Gcycles)\n", scale);
  std::printf("%-12s %12s %12s\n", "allocator", "Q5", "Q18");
  for (const char* alloc :
       {"ptmalloc", "jemalloc", "tcmalloc", "hoard", "tbbmalloc"}) {
    std::printf("%-12s", alloc);
    for (int q : {5, 18}) {
      TpchOptions o;
      o.machine = "A";
      o.profile = "columnar-vec";
      o.query = q;
      o.scale = scale;
      // Tuned OS environment; only the allocator varies (as in the paper).
      o.tuned = true;
      o.allocator_override = alloc;
      TpchResult r = RunTpch(o);
      std::printf("%12.3f", static_cast<double>(r.cycles) / 1e9);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
