// Storage-engine bench (DESIGN.md section 15): the NUMA-sharded buffer
// pool + WAL under the serving layer, plus two self-checking recovery
// demos.
//
// Three sections:
//   1. read/write mixes x buffer-pool shard placement x MemPolicy x
//      allocator — every cell serves the same seeded request stream through
//      the WAL-backed paged tables and prints throughput, pool hit rate and
//      WAL volume. FAILS (exit 1) unless all cells of one mix agree on the
//      final table checksum (placement/policy/allocator may move cycles,
//      never data).
//   2. recovery time vs checkpoint interval — the same write-heavy stream
//      with faultlab killing node 1 mid-run, swept over checkpoint
//      intervals. Tighter checkpoints must shrink the redo tail: FAILS
//      unless every recovery reproduces the no-fault checksum and the
//      smallest interval replays fewer records than the largest.
//   3. crash-recovery gate — one no-fault run fixes the expected table
//      checksum, then faultlab kills node 1 mid-run: the dead shard's
//      frames (dirty pages included) are discarded and ARIES-lite redo must
//      replay the WAL to a checksum-identical table, with zero dropped
//      requests. Any mismatch FAILS the bench.
//
// Like every bench: deterministic stdout (golden-diffed by check.sh), and
// --json-out attaches the per-run "storage" sections via numalab::trace.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/serve/serve.h"

namespace {

using numalab::serve::Arrival;
using numalab::serve::RunServing;
using numalab::serve::ServeConfig;
using numalab::serve::ServeResult;
using numalab::storage::ShardPlacement;
using numalab::storage::ShardPlacementName;
using numalab::workloads::RunConfig;

double PerMcycle(const numalab::serve::ServingStats& st) {
  return st.makespan_cycles == 0
             ? 0.0
             : static_cast<double>(st.completed) * 1e6 /
                   static_cast<double>(st.makespan_cycles);
}

struct Mix {
  const char* name;
  double point, range, upsert;
};

}  // namespace

int main(int argc, char** argv) {
  uint64_t requests = numalab::bench::FlagU64(argc, argv, "requests", 600);
  // Service-bound by default: storage requests cost tens of kcycles (I/O
  // model), so a tight offered gap keeps every worker busy and lets the
  // placement/policy/allocator axes show up in throughput.
  uint64_t gap = numalab::bench::FlagU64(argc, argv, "rate-gap", 2'000);
  numalab::bench::BenchMain(argc, argv);

  // Small enough to keep the bench fast, big enough that the table (~130
  // pages) is ~2.7x the 48-frame pool — eviction and writeback stay hot.
  ServeConfig base;
  base.arrival = Arrival::kPoisson;
  base.requests = requests;
  base.mean_gap_cycles = gap;
  base.kv_keys = 1 << 15;
  base.probe_build_rows = 1024;
  base.mix_probe = 0;
  base.mix_tpch = 0;
  // No shedding anywhere in this bench: the checksum gates need every
  // upsert applied, so drops must be impossible even under faultlab's
  // halved effective cap.
  base.queue_cap = 1 << 16;
  base.max_retries = 50;
  base.storage.enabled = true;
  base.storage.frames_per_shard = 6;

  const std::vector<Mix> mixes = {
      {"read", 0.85, 0.10, 0.05},
      {"balanced", 0.45, 0.10, 0.45},
      {"write", 0.15, 0.05, 0.80},
  };
  auto with_mix = [&](const Mix& m) {
    ServeConfig sc = base;
    sc.mix_point = m.point;
    sc.mix_range = m.range;
    sc.mix_upsert = m.upsert;
    return sc;
  };

  RunConfig rc = numalab::bench::TunedBase("A", 8);
  int failures = 0;

  // --- Section 1: mixes x shard placement x MemPolicy x allocator. ---
  std::printf(
      "storage: mixes x shard placement x policy x allocator "
      "(%llu requests)\n",
      static_cast<unsigned long long>(requests));
  std::printf("%-9s %-11s %-11s %-10s %9s %6s %7s %7s %8s %5s\n", "mix",
              "placement", "policy", "alloc", "q/Mcycle", "hit%", "evict",
              "wback", "wal_rec", "ok");
  for (const Mix& m : mixes) {
    uint64_t mix_checksum = 0;
    bool have_checksum = false;
    for (ShardPlacement placement :
         {ShardPlacement::kLocal, ShardPlacement::kNode0}) {
      for (numalab::mem::MemPolicy policy :
           {numalab::mem::MemPolicy::kFirstTouch,
            numalab::mem::MemPolicy::kInterleave}) {
        for (const char* alloc : {"ptmalloc", "tbbmalloc"}) {
          RunConfig cfg = rc;
          cfg.policy = policy;
          cfg.allocator = alloc;
          ServeConfig sc = with_mix(m);
          sc.storage.placement = placement;
          ServeResult r = RunServing(cfg, sc);
          const numalab::storage::StorageStats& st = r.storage;
          if (!have_checksum) {
            mix_checksum = st.table_checksum;
            have_checksum = true;
          }
          bool ok = r.run.status.ok() && r.stats.dropped == 0 &&
                    st.crashes == 0 && st.table_checksum == mix_checksum;
          std::printf(
              "%-9s %-11s %-11s %-10s %9.2f %6.1f %7llu %7llu %8llu %5s\n",
              m.name, ShardPlacementName(placement),
              numalab::mem::MemPolicyName(policy), alloc, PerMcycle(r.stats),
              100.0 * st.HitRate(),
              static_cast<unsigned long long>(st.evictions),
              static_cast<unsigned long long>(st.writebacks),
              static_cast<unsigned long long>(st.wal_records),
              ok ? "OK" : "FAIL");
          if (!ok) ++failures;
        }
      }
    }
  }

  // --- Section 2: recovery time vs checkpoint interval. ---
  std::printf("\nstorage: recovery vs checkpoint interval (write mix, "
              "node 1 killed mid-run)\n");
  {
    ServeConfig sc_w = with_mix(mixes[2]);
    ServeResult baseline = RunServing(rc, sc_w);
    bool base_ok = baseline.run.status.ok() &&
                   baseline.stats.dropped == 0 &&
                   baseline.storage.crashes == 0;
    if (!base_ok) ++failures;
    uint64_t expect = baseline.storage.table_checksum;
    uint64_t kill_cycle = baseline.stats.first_arrival_cycle +
                          baseline.stats.makespan_cycles / 2;
    std::printf("no-fault checksum %llu, kill at cycle %llu (%s)\n",
                static_cast<unsigned long long>(expect),
                static_cast<unsigned long long>(kill_cycle),
                base_ok ? "OK" : "FAIL");
    std::printf("%-9s %6s %9s %9s %8s %10s %5s\n", "interval", "ckpt",
                "wal_trunc", "replayed", "redone", "rec_cycles", "ok");
    std::vector<uint64_t> replayed;
    for (uint64_t interval : {64ULL, 128ULL, 256ULL, 1024ULL}) {
      ServeConfig sc = sc_w;
      sc.storage.checkpoint_interval_records = interval;
      RunConfig cfg = rc;
      cfg.faults.offline.push_back({1, kill_cycle});
      ServeResult r = RunServing(cfg, sc);
      const numalab::storage::StorageStats& st = r.storage;
      // recovered_checksum is the crash-time table state (the stream keeps
      // mutating after redo); the end-to-end invariant is the *final*
      // checksum matching the no-fault run.
      bool ok = r.run.status.ok() && r.stats.dropped == 0 &&
                st.crashes == 1 && st.table_checksum == expect;
      replayed.push_back(st.recovery_records_replayed);
      std::printf("%-9llu %6llu %9llu %9llu %8llu %10llu %5s\n",
                  static_cast<unsigned long long>(interval),
                  static_cast<unsigned long long>(st.checkpoints),
                  static_cast<unsigned long long>(st.wal_truncated_records),
                  static_cast<unsigned long long>(
                      st.recovery_records_replayed),
                  static_cast<unsigned long long>(st.recovery_pages_redone),
                  static_cast<unsigned long long>(st.recovery_cycles),
                  ok ? "OK" : "FAIL");
      if (!ok) ++failures;
    }
    bool curve_ok =
        !replayed.empty() && replayed.front() < replayed.back();
    std::printf("checkpointing shrinks redo tail: %llu -> %llu records "
                "(%s)\n",
                static_cast<unsigned long long>(replayed.back()),
                static_cast<unsigned long long>(replayed.front()),
                curve_ok ? "OK" : "FAIL");
    if (!curve_ok) ++failures;
  }

  // --- Section 3: crash-recovery gate. ---
  std::printf("\nstorage: crash-recovery gate (balanced mix)\n");
  {
    ServeConfig sc = with_mix(mixes[1]);
    sc.storage.checkpoint_interval_records = 2048;  // no ckpt before kill
    ServeResult a = RunServing(rc, sc);
    bool a_ok = a.run.status.ok() && a.stats.dropped == 0 &&
                a.storage.crashes == 0;
    uint64_t kill_cycle =
        a.stats.first_arrival_cycle + a.stats.makespan_cycles / 2;
    RunConfig cfg = rc;
    cfg.faults.offline.push_back({1, kill_cycle});
    ServeResult b = RunServing(cfg, sc);
    const numalab::storage::StorageStats& st = b.storage;
    bool b_ok = b.run.status.ok() && b.stats.dropped == 0 &&
                st.crashes == 1 && st.recovery_records_replayed > 0 &&
                st.recovery_dirty_frames_lost > 0;
    bool match = st.table_checksum == a.storage.table_checksum;
    std::printf("no-fault run:  checksum %llu, wal %llu records (%s)\n",
                static_cast<unsigned long long>(a.storage.table_checksum),
                static_cast<unsigned long long>(a.storage.wal_records),
                a_ok ? "OK" : "FAIL");
    std::printf(
        "crashed run:   kill@%llu, dirty frames lost %llu, replayed %llu "
        "of %llu scanned, redo %llu pages in %llu cycles (%s)\n",
        static_cast<unsigned long long>(kill_cycle),
        static_cast<unsigned long long>(st.recovery_dirty_frames_lost),
        static_cast<unsigned long long>(st.recovery_records_replayed),
        static_cast<unsigned long long>(st.recovery_records_scanned),
        static_cast<unsigned long long>(st.recovery_pages_redone),
        static_cast<unsigned long long>(st.recovery_cycles),
        b_ok ? "OK" : "FAIL");
    std::printf("recovered checksum %llu vs no-fault %llu (%s)\n",
                static_cast<unsigned long long>(st.table_checksum),
                static_cast<unsigned long long>(a.storage.table_checksum),
                match ? "OK" : "FAIL");
    if (!a_ok || !b_ok || !match) ++failures;
  }

  std::printf("\nbench_storage: %s\n", failures == 0 ? "OK" : "FAIL");
  return failures == 0 ? 0 : 1;
}
