// Figure 6 — memory allocator x memory placement policy across workloads
// and machines:
//   6a-c: W1 (holistic aggregation) on Machines A, B, C.
//   6d-f: W2 (distributive aggregation) on Machines A, B, C.
//   6g-i: W3 (hash join) on Machines A, B, C.
//   6j:   W1 x dataset distribution on Machine A.
//
// Paper shapes: tbbmalloc + Interleave is the best cell nearly everywhere;
// W1 improves up to 62/83/72% (A/B/C) and W3 up to 70/94/92% vs default
// ptmalloc+FirstTouch; W2 gains 27-44%, almost entirely from Interleave.

#include <vector>

#include "bench/bench_common.h"
#include "src/workloads/workloads.h"

using numalab::bench::FlagU64;
using numalab::bench::GCycles;
using numalab::bench::TunedBase;
using namespace numalab::workloads;

namespace {

const std::vector<std::pair<const char*, numalab::mem::MemPolicy>> kPolicies =
    {{"FirstTouch", numalab::mem::MemPolicy::kFirstTouch},
     {"Interleave", numalab::mem::MemPolicy::kInterleave},
     {"Localalloc", numalab::mem::MemPolicy::kLocalAlloc}};

const std::vector<const char*> kAllocs = {"ptmalloc", "jemalloc", "tcmalloc",
                                          "hoard", "tbbmalloc"};

using RunFn = RunResult (*)(const RunConfig&);

void Grid(const char* title, RunFn run, const char* machine,
          RunConfig base) {
  std::printf("%s — Machine %s (Gcycles)\n", title, machine);
  std::printf("%-12s", "allocator");
  for (const auto& [pname, p] : kPolicies) std::printf("%14s", pname);
  std::printf("\n");
  base.machine = machine;
  // Machines differ in hardware thread counts (Table II).
  base.threads = machine[0] == 'A' ? 16 : (machine[0] == 'B' ? 32 : 64);
  for (const char* alloc : kAllocs) {
    std::printf("%-12s", alloc);
    for (const auto& [pname, policy] : kPolicies) {
      RunConfig c = base;
      c.allocator = alloc;
      c.policy = policy;
      RunResult r = run(c);
      std::printf("%14.3f", GCycles(r.cycles));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t records = FlagU64(argc, argv, "records", 2'000'000);
  uint64_t card = FlagU64(argc, argv, "card", 200'000);
  uint64_t build = FlagU64(argc, argv, "build", 150'000);
  uint64_t probe = FlagU64(argc, argv, "probe", 2'400'000);
  numalab::bench::BenchMain(argc, argv);

  RunConfig agg = TunedBase("A", 16);
  agg.num_records = records;
  agg.cardinality = card;

  for (const char* m : {"A", "B", "C"}) {
    Grid("Figure 6a-c: W1 holistic aggregation",
         &RunW1HolisticAggregation, m, agg);
  }
  RunConfig w2 = agg;
  w2.dataset = Dataset::kZipf;  // W2's default distribution (Table IV)
  for (const char* m : {"A", "B", "C"}) {
    Grid("Figure 6d-f: W2 distributive aggregation",
         &RunW2DistributiveAggregation, m, w2);
  }
  RunConfig join = TunedBase("A", 16);
  join.build_rows = build;
  join.probe_rows = probe;
  for (const char* m : {"A", "B", "C"}) {
    Grid("Figure 6g-i: W3 hash join", &RunW3HashJoin, m, join);
  }

  // 6j: dataset distribution sensitivity, Machine A.
  std::printf("Figure 6j: W1 x dataset distribution — Machine A, Interleave"
              " (Gcycles)\n");
  std::printf("%-12s %14s %14s %14s\n", "allocator", "MovingCluster",
              "Sequential", "Zipf");
  for (const char* alloc : kAllocs) {
    std::printf("%-12s", alloc);
    for (Dataset d : {Dataset::kMovingCluster, Dataset::kSequential,
                      Dataset::kZipf}) {
      RunConfig c = agg;
      c.allocator = alloc;
      c.policy = numalab::mem::MemPolicy::kInterleave;
      c.dataset = d;
      RunResult r = RunW1HolisticAggregation(c);
      std::printf("%14.3f", GCycles(r.cycles));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
