// Figure 4 — Sparse vs Dense thread placement: W1 on Machine A with 2, 4,
// 8, 16 threads across the three dataset distributions.
//
// Paper shape: Sparse wins while threads < hardware threads (more memory
// controllers in play); at full occupancy the two are nearly identical.

#include "bench/bench_common.h"
#include "src/workloads/workloads.h"

using numalab::bench::FlagU64;
using numalab::bench::TunedBase;
using namespace numalab::workloads;

int main(int argc, char** argv) {
  uint64_t records = FlagU64(argc, argv, "records", 2'000'000);
  uint64_t card = FlagU64(argc, argv, "card", 200'000);
  numalab::bench::BenchMain(argc, argv);

  std::printf("Figure 4: W1, Machine A — Dense vs Sparse affinity "
              "(Gcycles)\n");
  std::printf("%-14s %-8s %-12s %-12s %-10s\n", "dataset", "threads",
              "Dense", "Sparse", "D/S");
  for (Dataset d : {Dataset::kMovingCluster, Dataset::kSequential,
                    Dataset::kZipf}) {
    for (int threads : {2, 4, 8, 16}) {
      RunConfig c = TunedBase("A", threads);
      c.num_records = records;
      c.cardinality = card;
      c.dataset = d;
      c.affinity = numalab::osmodel::Affinity::kDense;
      RunResult dense = RunW1HolisticAggregation(c);
      c.affinity = numalab::osmodel::Affinity::kSparse;
      RunResult sparse = RunW1HolisticAggregation(c);
      std::printf("%-14s %-8d %-12.3f %-12.3f %-10.2f\n", DatasetName(d),
                  threads, numalab::bench::GCycles(dense.cycles),
                  numalab::bench::GCycles(sparse.cycles),
                  static_cast<double>(dense.cycles) /
                      static_cast<double>(sparse.cycles));
      std::fflush(stdout);
    }
  }
  return 0;
}
