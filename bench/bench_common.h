// Shared helpers for the figure-reproduction benches.

#ifndef NUMALAB_BENCH_BENCH_COMMON_H_
#define NUMALAB_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/workloads/run_config.h"

namespace numalab {
namespace bench {

/// Parses --records=N / --scale=F style flags; returns the default when the
/// flag is absent.
inline uint64_t FlagU64(int argc, char** argv, const char* name,
                        uint64_t def) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return def;
}

/// The paper's "modified OS configuration": Sparse affinity, AutoNUMA and
/// THP off. Policy/allocator are the experiment variables on top.
inline workloads::RunConfig TunedBase(const std::string& machine,
                                      int threads) {
  workloads::RunConfig c;
  c.machine = machine;
  c.threads = threads;
  c.affinity = osmodel::Affinity::kSparse;
  c.autonuma = false;
  c.thp = false;
  c.policy = mem::MemPolicy::kFirstTouch;
  c.allocator = "ptmalloc";
  return c;
}

/// The out-of-the-box configuration (Linux defaults).
inline workloads::RunConfig DefaultBase(const std::string& machine,
                                        int threads) {
  workloads::RunConfig c;
  c.machine = machine;
  c.threads = threads;
  c.affinity = osmodel::Affinity::kNone;
  c.autonuma = true;
  c.thp = true;
  c.policy = mem::MemPolicy::kFirstTouch;
  c.allocator = "ptmalloc";
  return c;
}

inline double GCycles(uint64_t cycles) {
  return static_cast<double>(cycles) / 1e9;
}

}  // namespace bench
}  // namespace numalab

#endif  // NUMALAB_BENCH_BENCH_COMMON_H_
