// Shared helpers for the figure-reproduction benches.

#ifndef NUMALAB_BENCH_BENCH_COMMON_H_
#define NUMALAB_BENCH_BENCH_COMMON_H_

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/faultlab/faultlab.h"
#include "src/trace/export.h"
#include "src/workloads/run_config.h"

namespace numalab {
namespace bench {

/// Flag names this binary has declared via FlagU64/FlagStr; consulted by
/// ValidateFlags to reject misspelled flags instead of silently ignoring
/// them.
inline std::vector<std::string>& KnownFlags() {
  static std::vector<std::string> flags;
  return flags;
}

/// Idempotent flag registration: parsing the same flag twice (helpers are
/// free to re-scan argv) must not list it twice in --help / FlagError
/// output or hide a genuine duplicate declaration.
inline void RegisterFlag(const char* name) {
  for (const auto& f : KnownFlags()) {
    if (f == name) return;
  }
  KnownFlags().push_back(name);
}

[[noreturn]] inline void FlagError(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  if (!KnownFlags().empty()) {
    std::fprintf(stderr, "known flags:");
    for (const auto& f : KnownFlags())
      std::fprintf(stderr, " --%s=...", f.c_str());
    std::fprintf(stderr, "\n");
  } else {
    std::fprintf(stderr, "this bench takes no flags\n");
  }
  std::exit(2);
}

/// Parses --records=N style flags; returns the default when the flag is
/// absent. Fails fast (exit 2) on malformed values — `--records=12x` is an
/// error, not 12. Pair with a ValidateFlags call after all FlagU64 calls so
/// misspelled flags are rejected too.
inline uint64_t FlagU64(int argc, char** argv, const char* name,
                        uint64_t def) {
  RegisterFlag(name);
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      const char* val = argv[i] + prefix.size();
      if (*val < '0' || *val > '9') {
        FlagError(std::string(argv[i]) + ": value must be a non-negative integer");
      }
      errno = 0;
      char* end = nullptr;
      uint64_t v = std::strtoull(val, &end, 10);
      if (errno == ERANGE) {
        FlagError(std::string(argv[i]) + ": value out of range");
      }
      if (*end != '\0') {
        FlagError(std::string(argv[i]) + ": trailing garbage after number");
      }
      return v;
    }
  }
  return def;
}

/// Parses --name=value string flags (e.g. --json-out=PATH); returns the
/// default when absent. Any value, including the empty string, is accepted.
inline std::string FlagStr(int argc, char** argv, const char* name,
                           const std::string& def) {
  RegisterFlag(name);
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return def;
}

/// Rejects any argument that is not a declared --flag=value. Call once in
/// main, after every FlagU64/FlagStr call has registered its name.
/// `--help` is accepted: it prints the declared flags and exits 0.
inline void ValidateFlags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0) {
      std::printf("usage: %s [--flag=value ...]\n", argv[0]);
      if (!KnownFlags().empty()) {
        std::printf("known flags:");
        for (const auto& f : KnownFlags()) std::printf(" --%s=...", f.c_str());
        std::printf("\n");
      } else {
        std::printf("this bench takes no flags\n");
      }
      std::exit(0);
    }
    const char* eq = std::strchr(arg, '=');
    if (std::strncmp(arg, "--", 2) != 0 || eq == nullptr) {
      FlagError(std::string(arg) + ": expected --flag=value");
    }
    std::string name(arg + 2, static_cast<size_t>(eq - arg - 2));
    bool known = false;
    for (const auto& f : KnownFlags()) {
      if (f == name) {
        known = true;
        break;
      }
    }
    if (!known) FlagError(std::string(arg) + ": unrecognized flag");
  }
}

/// Declares and applies the --race-detect=0|1 flag every bench accepts:
/// nonzero flips the process-wide numalab::sanity switch (see
/// workloads::GlobalRaceDetect), so every simulated run in this process is
/// race-checked and the binary exits nonzero on the first racy run.
/// Detection is pure bookkeeping — simulated results are unchanged — so
/// RACE_DETECT=1 ./run_benches.sh is a drop-in CI gate.
inline void ParseRaceDetectFlag(int argc, char** argv) {
  workloads::SetGlobalRaceDetect(
      FlagU64(argc, argv, "race-detect", 0) != 0);
}

/// Declares and applies the --faultlab=0|1 flag every bench accepts:
/// nonzero installs the canned faultlab::MemoryPressurePlan() as the
/// process-wide fault plan (see workloads::GlobalFaultPlan), capping every
/// simulated node's memory so binds spill along the zonelist. Runs stay
/// deterministic but their numbers differ from the no-fault goldens —
/// FAULTLAB=1 ./run_benches.sh is a robustness gate, not a reproduction
/// run.
inline void ParseFaultlabFlag(int argc, char** argv) {
  if (FlagU64(argc, argv, "faultlab", 0) != 0) {
    workloads::SetGlobalFaultPlan(faultlab::MemoryPressurePlan());
  }
}

namespace internal {
/// Output paths + bench label for the exit-time structured export.
struct TraceOut {
  std::string bench;
  std::string json_path;
  std::string trace_path;
};
inline TraceOut& TraceOutState() {
  static TraceOut state;
  return state;
}

inline void WriteOrDie(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    std::_Exit(3);
  }
  if (std::fwrite(body.data(), 1, body.size(), f) != body.size() ||
      std::fclose(f) != 0) {
    std::fprintf(stderr, "error: failed writing %s\n", path.c_str());
    std::_Exit(3);
  }
}

/// atexit hook: serialize every collected run. Registered only when an
/// output path was given, so plain runs pay nothing at exit.
inline void WriteTraceOutputs() {
  const TraceOut& st = TraceOutState();
  if (!st.json_path.empty()) {
    WriteOrDie(st.json_path,
               trace::BenchJson(st.bench, trace::CollectedRuns()));
  }
  if (!st.trace_path.empty()) {
    WriteOrDie(st.trace_path,
               trace::ChromeTraceJson(trace::CollectedRuns()));
  }
}
}  // namespace internal

/// Declares and applies the structured-export flags every bench accepts:
///   --json-out=PATH   write one schema-versioned JSON document (config,
///                     status, PerfReport, LAR, degradation counters and
///                     the phase-span tree of every simulated run) at exit
///   --trace-out=PATH  write the same runs as Chrome trace events
///                     (chrome://tracing / Perfetto) at exit
/// Either flag enables the process-wide run collector (trace::CollectRun),
/// which also attaches the span recorder to every SimContext. Collection is
/// pure bookkeeping: stdout and simulated results are byte-identical with
/// or without it.
inline void ParseTraceFlags(int argc, char** argv) {
  internal::TraceOut& st = internal::TraceOutState();
  st.json_path = FlagStr(argc, argv, "json-out", "");
  st.trace_path = FlagStr(argc, argv, "trace-out", "");
  if (st.json_path.empty() && st.trace_path.empty()) return;
  const char* slash = std::strrchr(argv[0], '/');
  st.bench = slash != nullptr ? slash + 1 : argv[0];
  trace::SetCollectEnabled(true);
  // Touch the collector's static storage *before* registering the atexit
  // writer: function-local statics are destroyed in reverse construction
  // order, so constructing it here guarantees it outlives the writer.
  trace::CollectedRuns();
  std::atexit(&internal::WriteTraceOutputs);
}

/// The shared bench entry path: parses the flags every bench accepts
/// (--race-detect, --faultlab, --json-out, --trace-out) and then rejects
/// anything undeclared. Call it once at the top of main, AFTER the bench's
/// own FlagU64/FlagStr calls — flag lookups register their names, and
/// ValidateFlags (and --help) only knows the flags declared before it runs.
/// Keeping the four parse calls here instead of in each bench means new
/// common flags reach every binary at once and --help output cannot drift.
inline void BenchMain(int argc, char** argv) {
  ParseRaceDetectFlag(argc, argv);
  ParseFaultlabFlag(argc, argv);
  ParseTraceFlags(argc, argv);
  ValidateFlags(argc, argv);
}

/// The paper's "modified OS configuration": Sparse affinity, AutoNUMA and
/// THP off. Policy/allocator are the experiment variables on top.
inline workloads::RunConfig TunedBase(const std::string& machine,
                                      int threads) {
  workloads::RunConfig c;
  c.machine = machine;
  c.threads = threads;
  c.affinity = osmodel::Affinity::kSparse;
  c.autonuma = false;
  c.thp = false;
  c.policy = mem::MemPolicy::kFirstTouch;
  c.allocator = "ptmalloc";
  return c;
}

/// The out-of-the-box configuration (Linux defaults).
inline workloads::RunConfig DefaultBase(const std::string& machine,
                                        int threads) {
  workloads::RunConfig c;
  c.machine = machine;
  c.threads = threads;
  c.affinity = osmodel::Affinity::kNone;
  c.autonuma = true;
  c.thp = true;
  c.policy = mem::MemPolicy::kFirstTouch;
  c.allocator = "ptmalloc";
  return c;
}

inline double GCycles(uint64_t cycles) {
  return static_cast<double>(cycles) / 1e9;
}

}  // namespace bench
}  // namespace numalab

#endif  // NUMALAB_BENCH_BENCH_COMMON_H_
