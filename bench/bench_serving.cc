// Serving-layer bench (DESIGN.md section 11): throughput–latency curves for
// the NUMA-aware query-serving subsystem, plus two self-checking demos.
//
// Three sections:
//   1. dynamic batching — the same point-lookup stream dispatched with the
//      batcher on vs off (batch_max=1). The bench prints cycles/query for
//      both and FAILS (exit 1) if batching does not win.
//   2. admission control — a burst overload far beyond service capacity.
//      The bench prints offered/admitted/rejected/dropped and FAILS unless
//      load was actually shed, queue depth stayed bounded, and admitted
//      requests finished with a finite p99.
//   3. throughput–latency curves — offered rate swept across affinity x
//      policy x allocator; each row is one serving run (completed
//      throughput in queries per Mcycle against p50/p95/p99 sojourn).
//
// Like every bench: deterministic stdout (golden-diffed by check.sh), and
// --json-out attaches the per-run "serving" sections via numalab::trace.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/serve/serve.h"

namespace {

using numalab::serve::Arrival;
using numalab::serve::RunServing;
using numalab::serve::ServeConfig;
using numalab::serve::ServeResult;
using numalab::workloads::RunConfig;

double PerMcycle(const numalab::serve::ServingStats& st) {
  return st.makespan_cycles == 0
             ? 0.0
             : static_cast<double>(st.completed) * 1e6 /
                   static_cast<double>(st.makespan_cycles);
}

}  // namespace

int main(int argc, char** argv) {
  std::string arrival_name =
      numalab::bench::FlagStr(argc, argv, "arrival", "poisson");
  uint64_t requests = numalab::bench::FlagU64(argc, argv, "requests", 2000);
  uint64_t gap = numalab::bench::FlagU64(argc, argv, "rate-gap", 12'000);
  uint64_t storage = numalab::bench::FlagU64(argc, argv, "storage", 0);
  numalab::bench::BenchMain(argc, argv);

  Arrival arrival;
  if (!numalab::serve::ArrivalFromName(arrival_name, &arrival)) {
    std::fprintf(stderr, "error: --arrival=%s (want fixed|poisson|burst|closed)\n",
                 arrival_name.c_str());
    return 2;
  }

  ServeConfig base;
  base.arrival = arrival;
  base.requests = requests;
  base.mean_gap_cycles = gap;
  // --storage=1 routes the point/range/upsert stream through the WAL-backed
  // paged tables (DESIGN.md §15). Default off: stdout is the committed
  // golden, byte-identical to a build without src/storage.
  base.storage.enabled = storage != 0;

  RunConfig rc = numalab::bench::TunedBase("A", 8);
  int failures = 0;

  // --- Section 1: dynamic batching on vs off. ---
  std::printf("serving: dynamic batching (%s arrival, %llu requests)\n",
              arrival_name.c_str(),
              static_cast<unsigned long long>(requests));
  {
    ServeConfig sc = base;
    sc.mix_point = 1;
    sc.mix_range = sc.mix_probe = sc.mix_upsert = sc.mix_tpch = 0;
    sc.point_locality = 0.9;
    sc.mean_gap_cycles = 50;  // service-bound: makespan measures throughput
    sc.queue_cap = 4096;      // no shedding in either variant

    ServeConfig unbatched = sc;
    unbatched.batch_max = 1;
    unbatched.batch_window_cycles = 0;

    ServeResult on = RunServing(rc, sc);
    ServeResult off = RunServing(rc, unbatched);
    bool ok = on.run.status.ok() && off.run.status.ok() &&
              on.stats.CyclesPerQuery() < off.stats.CyclesPerQuery() &&
              on.stats.checksum == off.stats.checksum;
    std::printf("%-12s %14s %12s %10s %10s\n", "dispatch", "cycles/query",
                "batches", "max_batch", "p99");
    std::printf("%-12s %14.1f %12llu %10llu %10llu\n", "batched",
                on.stats.CyclesPerQuery(),
                static_cast<unsigned long long>(on.stats.batches),
                static_cast<unsigned long long>(on.stats.max_batch),
                static_cast<unsigned long long>(on.stats.p99));
    std::printf("%-12s %14.1f %12llu %10llu %10llu\n", "unbatched",
                off.stats.CyclesPerQuery(),
                static_cast<unsigned long long>(off.stats.batches),
                static_cast<unsigned long long>(off.stats.max_batch),
                static_cast<unsigned long long>(off.stats.p99));
    std::printf("batching speedup: %.2fx (%s)\n",
                on.stats.CyclesPerQuery() > 0
                    ? off.stats.CyclesPerQuery() / on.stats.CyclesPerQuery()
                    : 0.0,
                ok ? "OK" : "FAIL");
    if (!ok) ++failures;
  }

  // --- Section 2: admission control under burst overload. ---
  std::printf("\nserving: admission control under overload\n");
  {
    ServeConfig sc = base;
    sc.arrival = Arrival::kBurst;
    sc.burst_size = 128;
    sc.mean_gap_cycles = 40;
    sc.queue_cap = 16;
    sc.max_retries = 2;
    sc.retry_backoff_cycles = 20'000;

    ServeResult r = RunServing(rc, sc);
    const numalab::serve::ServingStats& st = r.stats;
    bool bounded = st.max_queue_depth <= sc.queue_cap;
    bool ok = r.run.status.ok() && st.rejected > 0 && st.dropped > 0 &&
              bounded && st.completed > 0 && st.p99 > 0 &&
              st.admitted + st.dropped == st.offered;
    std::printf(
        "offered=%llu admitted=%llu completed=%llu rejected=%llu "
        "retries=%llu dropped=%llu\n",
        static_cast<unsigned long long>(st.offered),
        static_cast<unsigned long long>(st.admitted),
        static_cast<unsigned long long>(st.completed),
        static_cast<unsigned long long>(st.rejected),
        static_cast<unsigned long long>(st.retries),
        static_cast<unsigned long long>(st.dropped));
    std::printf("max queue depth %llu (cap %llu, %s), admitted p99 %llu\n",
                static_cast<unsigned long long>(st.max_queue_depth),
                static_cast<unsigned long long>(sc.queue_cap),
                bounded ? "bounded" : "OVERFLOW",
                static_cast<unsigned long long>(st.p99));
    std::printf("admission: %s\n", ok ? "OK" : "FAIL");
    if (!ok) ++failures;
  }

  // --- Section 3: throughput-latency curves. ---
  std::printf("\nserving: throughput-latency (%s arrival, %llu requests)\n",
              arrival_name.c_str(),
              static_cast<unsigned long long>(requests));
  std::printf("%-7s %-11s %-10s %8s %10s %8s %8s %8s %8s\n", "aff",
              "policy", "alloc", "gap", "q/Mcycle", "p50", "p95", "p99",
              "drop");
  struct Cell {
    numalab::osmodel::Affinity aff;
    numalab::mem::MemPolicy policy;
    const char* alloc;
  };
  const std::vector<Cell> cells = {
      {numalab::osmodel::Affinity::kSparse,
       numalab::mem::MemPolicy::kFirstTouch, "ptmalloc"},
      {numalab::osmodel::Affinity::kSparse,
       numalab::mem::MemPolicy::kInterleave, "ptmalloc"},
      {numalab::osmodel::Affinity::kSparse,
       numalab::mem::MemPolicy::kFirstTouch, "tbbmalloc"},
      {numalab::osmodel::Affinity::kNone,
       numalab::mem::MemPolicy::kFirstTouch, "ptmalloc"},
  };
  const std::vector<uint64_t> gaps = {4 * gap, 2 * gap, gap, gap / 2,
                                      gap / 4};
  for (const Cell& cell : cells) {
    RunConfig cfg = rc;
    cfg.affinity = cell.aff;
    cfg.policy = cell.policy;
    cfg.allocator = cell.alloc;
    for (uint64_t g : gaps) {
      ServeConfig sc = base;
      sc.mean_gap_cycles = g > 0 ? g : 1;
      ServeResult r = RunServing(cfg, sc);
      if (!r.run.status.ok()) {
        std::printf("%-7s %-11s %-10s %8llu %s\n",
                    numalab::osmodel::AffinityName(cell.aff),
                    numalab::mem::MemPolicyName(cell.policy), cell.alloc,
                    static_cast<unsigned long long>(sc.mean_gap_cycles),
                    r.run.status.ToString().c_str());
        ++failures;
        continue;
      }
      std::printf("%-7s %-11s %-10s %8llu %10.2f %8llu %8llu %8llu %8llu\n",
                  numalab::osmodel::AffinityName(cell.aff),
                  numalab::mem::MemPolicyName(cell.policy), cell.alloc,
                  static_cast<unsigned long long>(sc.mean_gap_cycles),
                  PerMcycle(r.stats),
                  static_cast<unsigned long long>(r.stats.p50),
                  static_cast<unsigned long long>(r.stats.p95),
                  static_cast<unsigned long long>(r.stats.p99),
                  static_cast<unsigned long long>(r.stats.dropped));
    }
  }

  std::printf("\nbench_serving: %s\n", failures == 0 ? "OK" : "FAIL");
  return failures == 0 ? 0 : 1;
}
