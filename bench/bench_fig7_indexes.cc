// Figure 7 — index nested-loop join (W4) on Machine A:
//   7a-7d: join time for ART / Masstree / B+tree / Skip List across
//          allocators and placement policies.
//   7e:    build + join time of each index at its best configuration.
//
// Paper shapes: ART improves most with jemalloc/tbbmalloc (it draws from
// many size classes); Masstree and B+tree run best with Hoard; Skip List is
// the one index fastest under ptmalloc; ART and B+tree are the two fastest
// overall.

#include <vector>

#include "bench/bench_common.h"
#include "src/workloads/workloads.h"

using numalab::bench::FlagU64;
using numalab::bench::GCycles;
using numalab::bench::TunedBase;
using namespace numalab::workloads;

namespace {

const std::vector<std::pair<const char*, numalab::mem::MemPolicy>> kPolicies =
    {{"FirstTouch", numalab::mem::MemPolicy::kFirstTouch},
     {"Interleave", numalab::mem::MemPolicy::kInterleave},
     {"Localalloc", numalab::mem::MemPolicy::kLocalAlloc}};

const std::vector<const char*> kAllocs = {"ptmalloc", "jemalloc", "tcmalloc",
                                          "hoard", "tbbmalloc"};

}  // namespace

int main(int argc, char** argv) {
  uint64_t build = FlagU64(argc, argv, "build", 100'000);
  uint64_t probe = FlagU64(argc, argv, "probe", 1'600'000);
  numalab::bench::BenchMain(argc, argv);

  struct Best {
    double join = 1e300;
    double build = 0;
    const char* alloc = "";
    const char* policy = "";
  };

  std::vector<std::pair<const char*, Best>> summary;
  for (const char* index : {"art", "masstree", "btree", "skiplist"}) {
    std::printf("Figure 7 (%s): W4 join time — Machine A (Gcycles)\n",
                index);
    std::printf("%-12s", "allocator");
    for (const auto& [pname, p] : kPolicies) std::printf("%14s", pname);
    std::printf("\n");
    Best best;
    for (const char* alloc : kAllocs) {
      std::printf("%-12s", alloc);
      for (const auto& [pname, policy] : kPolicies) {
        RunConfig c = TunedBase("A", 16);
        c.build_rows = build;
        c.probe_rows = probe;
        c.allocator = alloc;
        c.policy = policy;
        RunResult r = RunW4IndexJoin(c, index);
        double join_g = GCycles(r.cycles);
        if (join_g < best.join) {
          best = Best{join_g, GCycles(r.aux_cycles), alloc, pname};
        }
        std::printf("%14.3f", join_g);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
    std::printf("\n");
    summary.emplace_back(index, best);
  }

  std::printf("Figure 7e: build and join time at each index's best "
              "configuration\n");
  std::printf("%-10s %12s %12s %12s %12s\n", "index", "build(Gcyc)",
              "join(Gcyc)", "allocator", "policy");
  for (const auto& [index, b] : summary) {
    std::printf("%-10s %12.3f %12.3f %12s %12s\n", index, b.build, b.join,
                b.alloc, b.policy);
  }
  return 0;
}
