// Figure 2 — memory allocator microbenchmark on Machine A.
//
//   Fig 2a: execution time (virtual seconds) vs thread count, 1..16.
//   Fig 2b: memory overhead (resident peak / requested peak) at
//           1, 2, 4, 8, 16 threads.
//
// Paper shapes to reproduce: tcmalloc fastest at one thread, immediately
// behind at >=2; Hoard and tbbmalloc scale best; supermalloc worst at high
// thread counts; mcmalloc's overhead explodes with threads (to ~6.6x);
// Hoard/tbbmalloc slightly memory-hungry; jemalloc lean.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_common.h"
#include "src/alloc/allocator.h"
#include "src/workloads/alloc_microbench.h"

int main(int argc, char** argv) {
  uint64_t ops = numalab::bench::FlagU64(
      argc, argv, "ops", 60'000);  // default scaled from the paper's 100M ops/thread
  numalab::bench::BenchMain(argc, argv);
  const auto& allocators = numalab::alloc::AllAllocatorNames();

  std::printf("Figure 2a: allocator scalability — Machine A, %llu ops/thread"
              " (virtual Gcycles)\n",
              static_cast<unsigned long long>(ops));
  std::printf("%-12s", "threads");
  for (const auto& a : allocators) std::printf("%12s", a.c_str());
  std::printf("\n");
  for (int threads : {1, 2, 4, 8, 12, 16}) {
    std::printf("%-12d", threads);
    for (const auto& a : allocators) {
      auto r = numalab::workloads::RunAllocMicrobench(a, "A", threads, ops,
                                                      /*seed=*/42);
      std::printf("%12.3f", static_cast<double>(r.cycles) / 1e9);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nFigure 2b: memory consumption overhead (resident/requested)"
              " — Machine A\n");
  std::printf("%-12s", "threads");
  for (const auto& a : allocators) std::printf("%12s", a.c_str());
  std::printf("\n");
  for (int threads : {1, 2, 4, 8, 16}) {
    std::printf("%-12d", threads);
    for (const auto& a : allocators) {
      auto r = numalab::workloads::RunAllocMicrobench(a, "A", threads, ops,
                                                      /*seed=*/42);
      std::printf("%12.3f", r.memory_overhead);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
