// Extension beyond the paper's testbed: on-chip NUMA.
//
// The paper's introduction points at "a growing range of CPUs with on-chip
// NUMA" (sub-NUMA clustering, chiplets). numalab's Machine model is
// parametric and registrable, so we build such a CPU — two sockets, each
// split into two sub-NUMA clusters with a fast on-die link and one slower
// cross-socket link — and check that the flowchart's recipe carries over:
// the stock configuration vs Sparse + Interleave + AutoNUMA/THP off +
// tbbmalloc, on W1 and W3.

#include "bench/bench_common.h"
#include "src/topology/machine.h"
#include "src/workloads/workloads.h"

using namespace numalab;
using namespace numalab::workloads;

namespace {

topology::Machine SncMachine() {
  // Nodes 0,1 = socket 0 clusters; 2,3 = socket 1. On-die links 0-1 and
  // 2-3; one cross-socket link 0-2 (1<->3 traffic takes three hops).
  std::vector<std::vector<int>> adj = {{1, 2}, {0}, {0, 3}, {2}};
  return topology::Machine(
      "SNC", /*num_nodes=*/4, /*cores_per_node=*/4, /*smt_per_core=*/2,
      std::move(adj),
      /*latency_factor_by_hops=*/{1.0, 1.25, 1.6, 1.9},
      /*link_bytes_per_cycle=*/6.0,
      /*mem_ctrl_bytes_per_cycle=*/8.0,
      /*node_memory_bytes=*/64ULL << 30,
      /*llc_bytes_per_node=*/16ULL << 20,
      /*private_cache_bytes=*/512ULL << 10,
      /*tlb_4k=*/{64, 1536}, /*tlb_2m=*/{32, 1024},
      /*dram_latency_cycles=*/180);
}

}  // namespace

int main(int argc, char** argv) {
  numalab::bench::BenchMain(argc, argv);
  topology::Machine snc = SncMachine();
  topology::RegisterMachine(snc);
  std::printf("Extension: on-chip NUMA (sub-NUMA clustered CPU)\n\n%s\n",
              snc.ToString().c_str());

  auto report = [](const char* label, const RunResult& stock,
                   const RunResult& tuned) {
    std::printf("%-4s stock %.3f Gcyc -> tuned %.3f Gcyc  (%.1f%% faster,"
                " LAR %.2f -> %.2f)\n",
                label, numalab::bench::GCycles(stock.cycles),
                numalab::bench::GCycles(tuned.cycles),
                100.0 * (1.0 - static_cast<double>(tuned.cycles) /
                                   static_cast<double>(stock.cycles)),
                stock.report.LocalAccessRatio(),
                tuned.report.LocalAccessRatio());
  };

  RunConfig base;
  base.machine = "SNC";
  base.threads = snc.num_hw_threads();
  base.num_records = 1'000'000;
  base.cardinality = 100'000;
  base.build_rows = 100'000;
  base.probe_rows = 1'600'000;

  RunConfig tuned_cfg = base;
  tuned_cfg.affinity = osmodel::Affinity::kSparse;
  tuned_cfg.policy = mem::MemPolicy::kInterleave;
  tuned_cfg.autonuma = false;
  tuned_cfg.thp = false;
  tuned_cfg.allocator = "tbbmalloc";

  report("W1", RunW1HolisticAggregation(base),
         RunW1HolisticAggregation(tuned_cfg));
  report("W3", RunW3HashJoin(base), RunW3HashJoin(tuned_cfg));

  std::printf("\nThe paper's recipe transfers to the on-chip topology; "
              "custom machines are a\nlibrary feature "
              "(topology::RegisterMachine).\n");
  return 0;
}
