// Ablation benches (DESIGN.md section 7): turn off one simulator mechanism
// at a time and show which paper effect disappears.
//
//  1. Contention model off  -> Sparse's advantage over Dense vanishes.
//  2. TLB model off         -> THP's effects vanish.
//  3. Allocator lock costs cannot be switched at runtime, so the proxy
//     ablation compares a lock-free allocator (tbbmalloc) against the
//     lock-heavy extreme (supermalloc) at 1 vs 16 threads: with the
//     contention machinery disabled their scaling curves collapse.

#include "bench/bench_common.h"
#include "src/workloads/alloc_microbench.h"
#include "src/workloads/workloads.h"

using numalab::bench::GCycles;
using numalab::bench::TunedBase;
using namespace numalab::workloads;

int main(int argc, char** argv) {
  numalab::bench::BenchMain(argc, argv);
  // --- Ablation 1: contention model vs Sparse/Dense ---
  std::printf("Ablation 1: Dense/Sparse ratio (W1, Machine A, 4 threads)\n");
  for (bool contention : {true, false}) {
    RunConfig c = TunedBase("A", 4);
    c.num_records = 1'000'000;
    c.cardinality = 100'000;
    c.costs.model_contention = contention;
    c.affinity = numalab::osmodel::Affinity::kDense;
    RunResult dense = RunW1HolisticAggregation(c);
    c.affinity = numalab::osmodel::Affinity::kSparse;
    RunResult sparse = RunW1HolisticAggregation(c);
    std::printf("  contention %-3s: D/S = %.3f\n", contention ? "on" : "off",
                static_cast<double>(dense.cycles) /
                    static_cast<double>(sparse.cycles));
  }

  // --- Ablation 2: TLB model vs THP effect ---
  std::printf("\nAblation 2: THP on/off ratio under jemalloc (W1, A)\n");
  for (bool tlb : {true, false}) {
    RunConfig c = TunedBase("A", 16);
    c.num_records = 1'000'000;
    c.cardinality = 100'000;
    c.allocator = "jemalloc";
    c.costs.model_tlb = tlb;
    c.thp = false;
    RunResult off = RunW1HolisticAggregation(c);
    c.thp = true;
    RunResult on = RunW1HolisticAggregation(c);
    std::printf("  tlb model %-3s: THPon/THPoff = %.3f\n", tlb ? "on" : "off",
                static_cast<double>(on.cycles) /
                    static_cast<double>(off.cycles));
  }

  // --- Ablation 3: allocator scalability separation ---
  std::printf("\nAblation 3: allocator 16-thread/1-thread scaling factor\n");
  for (const char* alloc : {"tbbmalloc", "supermalloc"}) {
    auto r1 = RunAllocMicrobench(alloc, "A", 1, 60'000, 42);
    auto r16 = RunAllocMicrobench(alloc, "A", 16, 60'000, 42);
    std::printf("  %-12s: t16/t1 = %.2f (lock waits: %.1fM cycles)\n", alloc,
                static_cast<double>(r16.cycles) /
                    static_cast<double>(r1.cycles),
                static_cast<double>(r16.lock_wait_cycles) / 1e6);
  }
  return 0;
}
