// faultlab robustness grid (DESIGN.md section 9).
//
// Sweeps W1–W4 across all three machines under the canned per-node
// memory-pressure plan: node capacities are capped far below the working
// set, so page binds overflow their hot nodes and spill along the
// Linux-style zonelist. Every cell must still complete with an OK status —
// graceful degradation, not failure — and report nonzero spill counters.
//
// Unlike the figure benches, a failing cell does not abort the sweep: the
// failure is recorded, the cell is retried once with a perturbed run_index
// (re-drawing any injected transient faults), and the sweep continues. The
// binary exits nonzero iff any cell is still failing after its retry.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/faultlab/faultlab.h"
#include "src/workloads/workloads.h"

namespace {

using numalab::workloads::RunConfig;
using numalab::workloads::RunResult;

RunResult RunCell(const std::string& workload, const RunConfig& config) {
  if (workload == "W1") {
    return numalab::workloads::RunW1HolisticAggregation(config);
  }
  if (workload == "W2") {
    return numalab::workloads::RunW2DistributiveAggregation(config);
  }
  if (workload == "W3") {
    return numalab::workloads::RunW3HashJoin(config);
  }
  return numalab::workloads::RunW4IndexJoin(config, "btree");
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t cap_mib = numalab::bench::FlagU64(argc, argv, "node-cap-mib", 16);
  numalab::bench::BenchMain(argc, argv);

  const std::vector<std::string> machines = {"A", "B", "C"};
  const std::vector<std::string> workloads = {"W1", "W2", "W3", "W4"};

  std::printf("faultlab pressure grid (per-node cap %llu MiB)\n",
              static_cast<unsigned long long>(cap_mib));
  std::printf("%-8s %-3s %-18s %12s %12s %12s %7s\n", "workload", "m",
              "status", "Gcycles", "spilled", "last_resort", "retries");

  int failed_cells = 0;
  for (const auto& m : machines) {
    for (const auto& w : workloads) {
      RunConfig config = numalab::bench::DefaultBase(m, 8);
      // Scaled-down inputs: the grid probes robustness, not figure values.
      config.num_records = 1'000'000;
      config.cardinality = 10'000;
      config.build_rows = 62'500;
      config.probe_rows = 1'000'000;
      config.faults = numalab::faultlab::MemoryPressurePlan(cap_mib << 20);
      // Watchdog: a hung cell fails with DeadlineExceeded instead of
      // wedging the whole sweep.
      config.deadline_cycles = 100'000'000'000ULL;

      RunResult r = RunCell(w, config);
      int retries = 0;
      if (!r.status.ok()) {
        // Retry once with a perturbed run_index: transient injected faults
        // (allocation failures, scheduler noise) are re-drawn from a
        // different stream; deterministic failures stay failed.
        ++retries;
        config.run_index += 1000;
        r = RunCell(w, config);
      }
      if (!r.status.ok()) ++failed_cells;
      std::printf("%-8s %-3s %-18s %12.3f %12llu %12llu %7d\n", w.c_str(),
                  m.c_str(), r.status.ok() ? "OK" : r.status.ToString().c_str(),
                  numalab::bench::GCycles(r.cycles),
                  static_cast<unsigned long long>(r.pages_spilled),
                  static_cast<unsigned long long>(r.oom_last_resort_pages),
                  retries);
    }
  }

  std::printf("faultlab grid: %d/%d cells ok\n",
              static_cast<int>(machines.size() * workloads.size()) -
                  failed_cells,
              static_cast<int>(machines.size() * workloads.size()));
  return failed_cells == 0 ? 0 : 1;
}
