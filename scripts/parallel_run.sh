#!/bin/bash
# One bench cell for run_benches.sh: runs CMD with stdout/stderr spooled to
# files and, after CMD exits *on its own*, records its real exit status and
# host-side elapsed seconds in STATUS_FILE.
#
#   parallel_run.sh STATUS_FILE STDOUT_FILE STDERR_FILE CMD [ARGS...]
#
# The status file doubles as the watchdog sentinel. run_benches.sh wraps
# this script (not the bench) in timeout(1); when the watchdog fires,
# timeout signals the whole process group, so this script dies *before*
# writing STATUS_FILE. The harness therefore classifies:
#
#   status file present  -> CMD exited by itself; the recorded status is the
#                           bench's own (an exit code of 124 is a plain
#                           bench failure, not a timeout)
#   status file missing  -> the watchdog killed the cell: a real timeout
#
# This is what fixes the old harness bug where any bench legitimately
# exiting 124 was misreported as timed out.
#
# The elapsed time is host wall-clock and exists only for harness timing
# reports (BENCH_TIMING_OUT); it never touches bench stdout or the JSON
# exports, so the bit-determinism contract is unaffected.
set -u
if [[ $# -lt 4 ]]; then
  echo "usage: parallel_run.sh STATUS_FILE STDOUT_FILE STDERR_FILE CMD [ARGS...]" >&2
  exit 2
fi
status_file=$1
out_file=$2
err_file=$3
shift 3
start=$EPOCHREALTIME
"$@" > "$out_file" 2> "$err_file"
rc=$?
end=$EPOCHREALTIME
elapsed=$(awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", b - a }')
printf '%s %s\n' "$rc" "$elapsed" > "$status_file"
exit "$rc"
