#!/usr/bin/env python3
"""Schema validator for numalab structured bench exports.

Validates either a per-bench document (``--json-out`` output) or the merged
``BENCH_results.json`` produced by ``JSON_OUT_DIR=<dir> ./run_benches.sh``.
Schema version 4 — keep in lockstep with src/trace/export.{h,cc}.
v2 adds an optional per-run "serving" section (numalab::serve SLO metrics).
v3 adds the adaptive-placement counters to "system", "all_offline_binds"
to "degradation" and the "placement" flag to "config".
v4 adds the "storage" flag to "config" and a per-run "storage" section
(numalab::storage buffer-pool / WAL / recovery counters) that must be
present exactly when the flag is true.

Usage: validate_bench_json.py FILE [FILE ...]
Exits non-zero with a path-qualified message on the first violation.
"""

import json
import sys

SCHEMA_VERSION = 4

COUNTER_KEYS = {
    "cycles", "thread_migrations", "mem_accesses", "private_hits",
    "llc_hits", "llc_misses", "local_dram", "remote_dram", "tlb_hits",
    "tlb_misses", "hinting_faults", "alloc_calls", "free_calls",
    "alloc_cycles", "lock_wait_cycles", "queue_delay_cycles",
}
CONFIG_KEYS = {
    "machine", "threads", "affinity", "policy", "preferred_node",
    "allocator", "autonuma", "thp", "dataset", "num_records", "cardinality",
    "build_rows", "probe_rows", "seed", "run_index", "quantum",
    "scalar_mem_path", "deadline_cycles", "placement", "storage",
}
SYSTEM_KEYS = {
    "page_migrations", "thp_collapses", "thp_splits", "pages_mapped",
    "bytes_mapped", "bytes_mapped_peak", "balancer_migrations",
    "pages_replicated", "replica_reads", "replica_writes",
    "replica_invalidations", "replica_drops", "replica_bytes_peak",
    "migrations_vetoed", "capacity_bytes_total",
}
DEGRADATION_KEYS = {
    "pages_spilled", "oom_last_resort_pages", "offline_redirects",
    "all_offline_binds", "alloc_failures_injected",
    "migration_failures_injected",
}
RUN_KEYS = {
    "id", "workload", "config", "status", "cycles", "aux_cycles",
    "checksum", "lar", "requested_peak", "resident_peak", "races",
    "counters", "system", "degradation", "threads", "nodes", "spans",
}
SPAN_KEYS = {"name", "thread", "node", "depth", "parent", "start", "end",
             "counters"}
SERVING_KEYS = {
    "arrival", "requests", "offered", "admitted", "completed", "rejected",
    "retries", "dropped", "batches", "batched_requests", "max_batch",
    "max_queue_depth", "makespan_cycles", "cycles_per_query", "latency",
    "types", "nodes", "hist",
}
SERVING_LATENCY_KEYS = {"p50", "p95", "p99", "max"}
SERVING_TYPE_KEYS = {"type", "completed", "p50", "p95", "p99"}
SERVING_NODE_KEYS = {"node", "enqueued", "rejected", "redirected_offline",
                     "max_depth"}
STORAGE_KEYS = {
    "enabled", "rows", "page_bytes", "frames_per_shard", "placement",
    "checkpoint_interval", "lookups", "hits", "misses", "hit_rate",
    "evictions", "writebacks", "upserts", "gets", "scan_rows", "shards",
    "wal", "io", "crashes", "table_checksum",
}
STORAGE_SHARD_KEYS = {"node", "lookups", "hits", "misses", "hit_rate",
                      "evictions", "writebacks", "frames", "alloc_fallbacks"}
STORAGE_WAL_KEYS = {"records", "bytes", "flushes", "checkpoints",
                    "checkpoint_pages", "truncated_records"}
STORAGE_IO_KEYS = {"reads", "writes"}
STORAGE_RECOVERY_KEYS = {"cycles", "records_scanned", "records_replayed",
                         "pages_redone", "dirty_frames_lost", "checksum"}


class Invalid(Exception):
    pass


def require(cond, where, msg):
    if not cond:
        raise Invalid(f"{where}: {msg}")


def check_keys(obj, keys, where):
    require(isinstance(obj, dict), where, "expected an object")
    missing = keys - obj.keys()
    require(not missing, where, f"missing keys: {sorted(missing)}")
    extra = obj.keys() - keys
    require(not extra, where, f"unknown keys: {sorted(extra)}")


def check_counters(obj, where):
    check_keys(obj, COUNTER_KEYS, where)
    for k, v in obj.items():
        require(isinstance(v, int) and v >= 0, f"{where}.{k}",
                "expected a non-negative integer")


def check_serving(s, where):
    check_keys(s, SERVING_KEYS, where)
    check_keys(s["latency"], SERVING_LATENCY_KEYS, f"{where}.latency")
    for k in ("offered", "admitted", "completed", "rejected", "retries",
              "dropped", "batches", "batched_requests", "max_batch",
              "max_queue_depth", "makespan_cycles", "requests"):
        require(isinstance(s[k], int) and s[k] >= 0, f"{where}.{k}",
                "expected a non-negative integer")
    # Accounting invariants of the admission controller: every offered
    # request is either eventually admitted or dropped after its retry
    # budget; every admitted request completes (runs drain their queues);
    # every refused enqueue attempt either scheduled a retry or dropped.
    require(s["admitted"] + s["dropped"] == s["offered"], where,
            "admitted + dropped != offered")
    require(s["completed"] == s["admitted"], where,
            "completed != admitted (queue not drained)")
    require(s["rejected"] == s["retries"] + s["dropped"], where,
            "rejected != retries + dropped")
    lat = s["latency"]
    require(lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"], where,
            "latency percentiles not monotone")
    for i, t in enumerate(s["types"]):
        tw = f"{where}.types[{i}]"
        check_keys(t, SERVING_TYPE_KEYS, tw)
        require(t["p50"] <= t["p95"] <= t["p99"], tw,
                "per-type percentiles not monotone")
    for i, n in enumerate(s["nodes"]):
        check_keys(n, SERVING_NODE_KEYS, f"{where}.nodes[{i}]")
    hist_total = 0
    for i, pair in enumerate(s["hist"]):
        hw = f"{where}.hist[{i}]"
        require(isinstance(pair, list) and len(pair) == 2, hw,
                "expected a [bucket, count] pair")
        require(pair[1] > 0, hw, "empty bucket exported")
        hist_total += pair[1]
    require(hist_total == s["completed"], f"{where}.hist",
            f"histogram holds {hist_total} samples, "
            f"completed is {s['completed']}")


def check_storage(s, where):
    keys = STORAGE_KEYS | {"recovery"} if "recovery" in s else STORAGE_KEYS
    check_keys(s, keys, where)
    check_keys(s["wal"], STORAGE_WAL_KEYS, f"{where}.wal")
    check_keys(s["io"], STORAGE_IO_KEYS, f"{where}.io")
    for k in ("rows", "page_bytes", "frames_per_shard", "lookups", "hits",
              "misses", "evictions", "writebacks", "upserts", "gets",
              "scan_rows", "crashes", "table_checksum"):
        require(isinstance(s[k], int) and s[k] >= 0, f"{where}.{k}",
                "expected a non-negative integer")
    # Buffer-pool accounting: every lookup is exactly one hit or miss, and
    # the pool totals are the sums of the per-shard counters.
    require(s["hits"] + s["misses"] == s["lookups"], where,
            "hits + misses != lookups")
    sums = {k: 0 for k in ("lookups", "hits", "misses", "evictions",
                           "writebacks")}
    for i, sh in enumerate(s["shards"]):
        shw = f"{where}.shards[{i}]"
        check_keys(sh, STORAGE_SHARD_KEYS, shw)
        require(sh["hits"] + sh["misses"] == sh["lookups"], shw,
                "hits + misses != lookups")
        for k in sums:
            sums[k] += sh[k]
    for k, total in sums.items():
        require(total == s[k], where,
                f"per-shard {k} sums to {total}, pool total is {s[k]}")
    # ARIES-lite accounting: recovery details are present exactly when a
    # fault killed a shard, and redo never replays more than it scanned.
    require(("recovery" in s) == (s["crashes"] > 0), where,
            "recovery section present iff crashes > 0")
    if "recovery" in s:
        rec = s["recovery"]
        check_keys(rec, STORAGE_RECOVERY_KEYS, f"{where}.recovery")
        require(rec["records_replayed"] <= rec["records_scanned"],
                f"{where}.recovery", "replayed more records than scanned")


def check_run(run, where):
    keys = set(RUN_KEYS)
    if "serving" in run:
        keys.add("serving")
    if "storage" in run:
        keys.add("storage")
    check_keys(run, keys, where)
    if "serving" in run:
        check_serving(run["serving"], f"{where}.serving")
    # v4: the per-run storage section is present exactly when the config
    # recorded --storage=1, so a v4 doc can never silently drop it.
    require(("storage" in run) == (run["config"].get("storage") is True),
            where, "storage section present iff config.storage is true")
    if "storage" in run:
        check_storage(run["storage"], f"{where}.storage")
    check_keys(run["config"], CONFIG_KEYS, f"{where}.config")
    check_counters(run["counters"], f"{where}.counters")
    check_keys(run["system"], SYSTEM_KEYS, f"{where}.system")
    check_keys(run["degradation"], DEGRADATION_KEYS, f"{where}.degradation")
    require(isinstance(run["status"], str) and run["status"],
            f"{where}.status", "expected a non-empty string")
    require(0.0 <= run["lar"] <= 1.0, f"{where}.lar", "LAR out of [0, 1]")

    # Replication accounting invariants (src/mem placement subsystem).
    sysc = run["system"]
    sw_ = f"{where}.system"
    require(sysc["replica_invalidations"] <= sysc["replica_writes"], sw_,
            "replica_invalidations > replica_writes")
    require(sysc["replica_invalidations"] <= sysc["replica_drops"], sw_,
            "invalidations drop at least one copy each, but "
            "replica_drops < replica_invalidations")
    require(sysc["replica_drops"] <= sysc["pages_replicated"], sw_,
            "replica_drops > pages_replicated (dropped more than created)")
    require(sysc["replica_reads"] <= run["counters"]["local_dram"], sw_,
            "replica_reads > local_dram (replica hits are local by def)")
    if sysc["capacity_bytes_total"] > 0:
        require(sysc["replica_bytes_peak"] <= sysc["capacity_bytes_total"],
                sw_, "replica_bytes_peak exceeds machine capacity")
    if run["config"]["placement"] is False:
        require(sysc["pages_replicated"] == 0 and
                sysc["migrations_vetoed"] == 0, sw_,
                "placement counters nonzero with placement disabled")

    for i, t in enumerate(run["threads"]):
        tw = f"{where}.threads[{i}]"
        check_keys(t, {"id", "name", "node", "counters"}, tw)
        check_counters(t["counters"], f"{tw}.counters")
    for i, n in enumerate(run["nodes"]):
        nw = f"{where}.nodes[{i}]"
        check_keys(n, {"node", "counters"}, nw)
        check_counters(n["counters"], f"{nw}.counters")

    spans = run["spans"]
    for i, s in enumerate(spans):
        sw = f"{where}.spans[{i}]"
        check_keys(s, SPAN_KEYS, sw)
        check_counters(s["counters"], f"{sw}.counters")
        require(s["end"] >= s["start"], sw, "span ends before it starts")
        require(-1 <= s["parent"] < i, sw,
                "parent must precede the span (or be -1)")
        if s["parent"] == -1:
            require(s["depth"] == 0, sw, "top-level span with depth != 0")
        else:
            p = spans[s["parent"]]
            require(s["depth"] == p["depth"] + 1, sw,
                    "depth != parent depth + 1")
            require(p["thread"] == s["thread"], sw,
                    "parent span on a different thread")
            require(p["start"] <= s["start"] and s["end"] <= p["end"], sw,
                    "span not nested inside its parent")

    # Per-node rollup must sum to the run-total counters when the run
    # recorded spans (top-level spans cover entire worker bodies).
    if any(s["parent"] == -1 for s in spans):
        for key in COUNTER_KEYS:
            total = sum(n["counters"][key] for n in run["nodes"])
            require(total == run["counters"][key], f"{where}.nodes",
                    f"per-node {key} sums to {total}, "
                    f"run total is {run['counters'][key]}")


def check_bench(doc, where):
    check_keys(doc, {"schema_version", "bench", "runs"}, where)
    require(doc["schema_version"] == SCHEMA_VERSION, where,
            f"schema_version {doc['schema_version']} != {SCHEMA_VERSION}")
    require(isinstance(doc["bench"], str) and doc["bench"], where,
            "bench: expected a non-empty string")
    for i, run in enumerate(doc["runs"]):
        check_run(run, f"{where}.runs[{i}]")


FAILURE_KEYS = {"bench", "kind", "status"}
FAILURE_KINDS = {"exit", "timeout", "missing", "no-export", "no-status"}


def check_merged(doc, path):
    """A merged document must be *complete*: its bench list must match the
    roster run_benches.sh intended to run, exactly and in order, and no cell
    may have failed. A crashed bench therefore can never hide behind a
    schema-valid partial merge — the harness records the failure and this
    check rejects the document."""
    check_keys(doc, {"schema_version", "roster", "failures", "benches"}, path)
    require(doc["schema_version"] == SCHEMA_VERSION, path,
            f"schema_version {doc['schema_version']} != {SCHEMA_VERSION}")
    roster = doc["roster"]
    require(isinstance(roster, list) and roster and
            all(isinstance(b, str) and b for b in roster),
            f"{path}.roster", "expected a non-empty list of bench names")
    require(len(set(roster)) == len(roster), f"{path}.roster",
            "duplicate bench in roster")
    for i, fail in enumerate(doc["failures"]):
        fw = f"{path}.failures[{i}]"
        check_keys(fail, FAILURE_KEYS, fw)
        require(fail["bench"] in roster, fw,
                f"failed bench {fail['bench']!r} not in roster")
        require(fail["kind"] in FAILURE_KINDS, fw,
                f"unknown failure kind {fail['kind']!r}")
        require(isinstance(fail["status"], int), fw,
                "status: expected an integer")
    names = []
    for i, bench in enumerate(doc["benches"]):
        check_bench(bench, f"{path}.benches[{i}]")
        require(bench["bench"] not in names, f"{path}.benches[{i}]",
                f"duplicate bench {bench['bench']!r}")
        names.append(bench["bench"])
    require(names == [b for b in roster
                      if b not in {f["bench"] for f in doc["failures"]}],
            path, "bench list does not match the roster "
            f"(roster {roster}, merged {names})")
    if doc["failures"]:
        failed = ", ".join(f"{f['bench']} ({f['kind']}, status {f['status']})"
                           for f in doc["failures"])
        raise Invalid(f"{path}: merge is partial — "
                      f"{len(doc['failures'])} failed cell(s): {failed}")
    return sum(len(b["runs"]) for b in doc["benches"])


def check_file(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if "benches" in doc:  # merged document
        return check_merged(doc, path)
    check_bench(doc, path)
    return len(doc["runs"])


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            runs = check_file(path)
        except (Invalid, json.JSONDecodeError, OSError, KeyError,
                TypeError) as e:
            print(f"validate_bench_json: FAIL: {path}: {e}", file=sys.stderr)
            return 1
        print(f"validate_bench_json: OK: {path} ({runs} runs)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
