#!/bin/bash
# Pre-PR gate: run every analysis configuration this repo supports.
#
#   1. plain build + full ctest
#   2. address,undefined-sanitized build + full ctest
#   3. clang-tidy build (skipped with a notice if clang-tidy is not on PATH)
#   4. race-detector clean pass over the whole bench suite (RACE_DETECT=1)
#   5. no-fault bench stdout must be byte-identical to the committed golden
#      (bench/golden/run_benches.stdout) — the faultlab zero-cost contract.
#      Runs with JSON_OUT_DIR set, so it also proves the structured export
#      leaves stdout untouched, and with JOBS-way cell parallelism, so it
#      also proves the parallel harness preserves the golden bytes.
#   6. fault-injection pass: the whole bench suite plus the faultlab grid
#      under the canned memory-pressure plan (FAULTLAB=1) must exit 0
#   7. structured-export gate: schema-validate the per-bench JSON and the
#      merged BENCH_results.json from stage 5, then re-run the suite once
#      and assert the two same-seed merged documents are byte-identical
#   8. serving gate: REUSES the stage-5/7 exports instead of re-running —
#      bench_serving's per-bench stdout spool vs its committed golden, its
#      "serving" JSON sections schema-validated, and the stage-5 vs stage-7
#      same-seed documents byte-identical (serving determinism contract)
#   9. placement gate: same reuse for bench_placement (the bench itself
#      exits 1 — failing stage 5 — unless the adaptive cell dominates every
#      static policy and stock AutoNUMA on p99 AND local-access ratio)
#  10. static determinism + lock-contract gate: detlint must scan the whole
#      tree clean (modulo tools/detlint/baseline.txt), must reject every
#      bad fixture in tools/detlint/testdata/ (proving the gate can fail),
#      and — when clang++ is on PATH — src/sanity/thread_safety_check.cc
#      must compile under -Wthread-safety -Werror=thread-safety, machine-
#      checking the SimMutex/VirtualLock capability annotations
#  11. storage gate: same stage-5/7 reuse for bench_storage (whose own
#      self-checks — per-mix checksum agreement across placement/policy/
#      allocator, the checkpoint-interval redo curve, and the kill-a-node
#      ARIES-lite recovery gate — already failed stage 5 if violated):
#      stdout spool vs the committed golden, "storage" JSON sections
#      schema-valid, and the two same-seed exports byte-identical
#
# Stages 1 and 3 build with -DNUMALAB_WERROR=ON: compiler warnings are
# errors in the gate (but not in a developer's plain ./build).
#
# Exits non-zero on the first failing stage. Build trees are kept under
# build-check-* so they never collide with a developer's ./build.
#
# Knobs:
#   JOBS=N   bench-cell parallelism for every suite run (stages 4-7);
#            defaults to the host's core count. Output bytes are identical
#            at any N (the parallel_parity ctest and stage 5's golden cmp
#            both enforce it), so this is purely a wall-clock knob.
set -u
cd "$(dirname "$0")/.." || exit 1

JOBS=${JOBS:-$(nproc 2>/dev/null || echo 1)}
export JOBS

run() {
  echo "check.sh: $*"
  "$@"
  local rc=$?
  if [[ $rc -ne 0 ]]; then
    echo "check.sh: FAIL (exit $rc): $*" >&2
    exit "$rc"
  fi
}

echo "==== stage 1/11: plain build + ctest ===="
run cmake -B build-check -S . -G Ninja -DNUMALAB_WERROR=ON
run cmake --build build-check
run ctest --test-dir build-check --output-on-failure

echo "==== stage 2/11: address,undefined sanitizers + ctest ===="
run cmake -B build-check-asan -S . -G Ninja \
    -DNUMALAB_SANITIZE=address,undefined
run cmake --build build-check-asan
run ctest --test-dir build-check-asan --output-on-failure

echo "==== stage 3/11: clang-tidy build ===="
if command -v clang-tidy >/dev/null 2>&1; then
  run cmake -B build-check-tidy -S . -G Ninja -DNUMALAB_CLANG_TIDY=ON \
      -DNUMALAB_WERROR=ON
  run cmake --build build-check-tidy
else
  echo "check.sh: NOTICE: clang-tidy not found on PATH; skipping stage 3." \
       "Install clang-tidy (or run in the analysis container) for the" \
       "full gate."
fi

echo "==== stage 4/11: race-detector clean bench run ===="
# Reuses the plain stage-1 build; every bench runs with --race-detect=1 and
# any report makes the binary (and therefore run_benches.sh) exit non-zero.
run env BUILD_DIR=build-check RACE_DETECT=1 ./run_benches.sh

echo "==== stage 5/11: no-fault bench stdout vs committed golden ===="
# The faultlab zero-cost contract: with no fault plan installed, the whole
# bench suite must produce byte-identical stdout to the committed golden.
# Any drift means the no-fault path changed behaviour. Runs at JOBS-way
# cell parallelism, so the cmp below also pins the parallel-merge bytes.
# The export (json-a) and the per-bench stdout spools kept beside it are
# reused by stages 7-9; timing lands in build-check/timing-a.json.
echo "check.sh: env BUILD_DIR=build-check JSON_OUT_DIR=build-check/json-a JOBS=$JOBS ./run_benches.sh > build-check/run_benches.stdout"
env BUILD_DIR=build-check JSON_OUT_DIR=build-check/json-a \
    BENCH_TIMING_OUT=build-check/timing-a.json \
    ./run_benches.sh > build-check/run_benches.stdout
rc=$?
if [[ $rc -ne 0 ]]; then
  echo "check.sh: FAIL (exit $rc): no-fault bench run" >&2
  exit "$rc"
fi
run cmp bench/golden/run_benches.stdout build-check/run_benches.stdout

echo "==== stage 6/11: fault-injection bench run (FAULTLAB=1) ===="
# Every bench plus the faultlab pressure grid runs under the canned
# per-node memory-pressure plan; every cell must degrade gracefully
# (spill, not crash) and the suite must exit 0.
run env BUILD_DIR=build-check FAULTLAB=1 ./run_benches.sh

echo "==== stage 7/11: structured-export schema + determinism ===="
# Schema-validate everything stage 5 exported, then run the suite a second
# (and final) time: same seeds, so the merged JSON must be byte-identical —
# the export determinism contract (no wall time, no pointers, no hash
# order). This json-b export also feeds the stage 8/9 per-bench diffs; no
# later stage re-runs the suite or any bench binary.
if command -v python3 >/dev/null 2>&1; then
  run python3 scripts/validate_bench_json.py \
      build-check/json-a/BENCH_results.json build-check/json-a/bench_*.json
else
  echo "check.sh: NOTICE: python3 not found on PATH; skipping JSON schema" \
       "validation (determinism diff still runs)."
fi
run env BUILD_DIR=build-check JSON_OUT_DIR=build-check/json-b \
    ./run_benches.sh > /dev/null
run cmp build-check/json-a/BENCH_results.json \
    build-check/json-b/BENCH_results.json

echo "==== stage 8/11: serving determinism + schema (reusing stage-5 run) ===="
# The serving layer's own contract, checked against the artifacts stages 5
# and 7 already produced instead of fresh bench_serving runs: stdout spool
# vs the committed golden, schema-valid "serving" JSON sections, and the
# two same-seed exports byte-identical.
run cmp bench/golden/bench_serving.stdout build-check/json-a/bench_serving.stdout
if command -v python3 >/dev/null 2>&1; then
  run python3 scripts/validate_bench_json.py build-check/json-a/bench_serving.json
else
  echo "check.sh: NOTICE: python3 not found on PATH; skipping serving JSON" \
       "schema validation (determinism diff still runs)."
fi
run cmp build-check/json-a/bench_serving.json build-check/json-b/bench_serving.json

echo "==== stage 9/11: placement dominance + determinism (reusing stage-5 run) ===="
# The adaptive-placement contract: bench_placement's own self-check (exit 1
# unless placement beats first-touch/interleave/preferred AND stock
# AutoNUMA on both p99 sojourn and LAR, with replication actually firing)
# already gated stage 5 — a failing cell fails the suite run. Here: stdout
# spool pinned to the committed golden, JSON schema-valid, and the stage-5
# vs stage-7 same-seed exports byte-identical.
run cmp bench/golden/bench_placement.stdout build-check/json-a/bench_placement.stdout
if command -v python3 >/dev/null 2>&1; then
  run python3 scripts/validate_bench_json.py build-check/json-a/bench_placement.json
else
  echo "check.sh: NOTICE: python3 not found on PATH; skipping placement" \
       "JSON schema validation (determinism diff still runs)."
fi
run cmp build-check/json-a/bench_placement.json build-check/json-b/bench_placement.json

echo "==== stage 10/11: detlint + thread-safety analysis ===="
# Static half of the determinism contract (the dynamic half is the
# same-seed byte-diffs above). detlint ships in the stage-1 build tree.
DETLINT=build-check/tools/detlint/detlint
if [[ ! -x $DETLINT ]]; then
  echo "check.sh: FAIL: $DETLINT missing from the stage-1 build" >&2
  exit 1
fi
# 10a: the whole tree must scan clean, modulo the checked-in baseline.
run "$DETLINT" --root=. --baseline=tools/detlint/baseline.txt \
    src bench tests examples
# 10b: the gate must be able to fail — every bad fixture must be rejected.
for fixture in tools/detlint/testdata/bad_*.cc; do
  echo "check.sh: $DETLINT --root=. $fixture (expect nonzero)"
  if "$DETLINT" --root=. "$fixture" > /dev/null; then
    echo "check.sh: FAIL: detlint accepted $fixture" >&2
    exit 1
  fi
done
# 10c: the compile_commands.json route (what clang-tidy shares) must agree
# that the built TUs are clean.
run "$DETLINT" --root=. --baseline=tools/detlint/baseline.txt \
    --compile-commands=build-check/compile_commands.json
# 10d: clang thread-safety analysis over the annotated lock surfaces
# (SimMutex, VirtualLock, Env::LockAcquired/LockReleased, the GUARDED_BY
# probe members). GCC compiles the same macros as no-ops, so this is the
# only place the annotations are actually checked.
if command -v clang++ >/dev/null 2>&1; then
  run clang++ -std=c++20 -fsyntax-only -I. \
      -Wthread-safety -Werror=thread-safety \
      src/sanity/thread_safety_check.cc
else
  echo "check.sh: NOTICE: clang++ not found on PATH; skipping the" \
       "thread-safety analysis pass (the annotations still compiled as" \
       "no-op macros in stages 1-2). Install clang (or run in the" \
       "analysis container) for the full gate."
fi

echo "==== stage 11/11: storage determinism + schema (reusing stage-5 run) ===="
# The storage-engine contract (DESIGN.md section 15), checked against the
# stage-5/7 artifacts: bench_storage's recovery and checksum gates already
# ran (and gated) inside stage 5; here its stdout spool is pinned to the
# committed golden, its "storage" JSON sections are schema-validated
# (present exactly when config.storage is true, shard hit counts summing
# to pool totals, recovery section iff a crash happened), and the stage-5
# vs stage-7 same-seed exports must be byte-identical.
run cmp bench/golden/bench_storage.stdout build-check/json-a/bench_storage.stdout
if command -v python3 >/dev/null 2>&1; then
  run python3 scripts/validate_bench_json.py build-check/json-a/bench_storage.json
else
  echo "check.sh: NOTICE: python3 not found on PATH; skipping storage JSON" \
       "schema validation (determinism diff still runs)."
fi
run cmp build-check/json-a/bench_storage.json build-check/json-b/bench_storage.json

echo "check.sh: all stages passed"
