#include "src/storage/storage.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "src/common/logging.h"
#include "src/trace/trace.h"

namespace numalab {
namespace storage {
namespace {

// Lock hold costs (virtual cycles) for the analytical shard/WAL locks;
// queueing waits on top come from VirtualLock::Acquire.
constexpr uint64_t kShardHoldCycles = 160;
constexpr uint64_t kWalHoldCycles = 90;

// Logical on-device size of one WAL record: lsn + page + slot + key + value
// (8+8+4+8+8, padded). Only feeds the wal_bytes counter.
constexpr uint64_t kWalRecordBytes = 40;

constexpr uint64_t kNoPage = ~0ULL;

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void WriteU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }

// Charges the queueing delay of an analytical lock acquire and opens the
// race-detector / thread-safety critical section. Must be paired with
// env.LockReleased(&lock).
void AcquireLock(workloads::Env& env, sim::VirtualLock* lock, uint64_t hold)
    NUMALAB_NO_THREAD_SAFETY_ANALYSIS {
  uint64_t wait = lock->Acquire(env.self->clock, hold);
  env.self->Charge(wait);
  env.self->counters.lock_wait_cycles += wait;
  env.LockAcquired(lock);
}

}  // namespace

const char* ShardPlacementName(ShardPlacement p) {
  switch (p) {
    case ShardPlacement::kLocal: return "local";
    case ShardPlacement::kNode0: return "node0";
    case ShardPlacement::kInterleave: return "interleave";
  }
  return "unknown";
}

bool ShardPlacementFromName(const std::string& name, ShardPlacement* out) {
  if (name == "local") {
    *out = ShardPlacement::kLocal;
  } else if (name == "node0") {
    *out = ShardPlacement::kNode0;
  } else if (name == "interleave") {
    *out = ShardPlacement::kInterleave;
  } else {
    return false;
  }
  return true;
}

StorageEngine::StorageEngine(const StorageConfig& cfg, int nodes,
                             uint64_t seed, faultlab::FaultLab* faults)
    : cfg_(cfg),
      nodes_(nodes),
      faults_(faults),
      io_rng_(seed * 0x9e3779b97f4a7c15ULL + 0x5707a9eULL) {
  NUMALAB_CHECK(nodes_ >= 1);
  NUMALAB_CHECK(cfg_.rows > 0);
  NUMALAB_CHECK(cfg_.frames_per_shard >= 1);
  // Solve for the slot count of a fixed-size slotted page:
  //   8 (page LSN) + 8 * ceil(n/64) (presence bitmap) + 16n <= page_bytes.
  NUMALAB_CHECK(cfg_.page_bytes >= 64);
  uint64_t n = (cfg_.page_bytes - 8) / 16;
  while (8 + 8 * ((n + 63) / 64) + 16 * n > cfg_.page_bytes) --n;
  NUMALAB_CHECK(n >= 1);
  slots_per_page_ = n;
  bitmap_words_ = (n + 63) / 64;
  npages_ = (cfg_.rows + slots_per_page_ - 1) / slots_per_page_;

  disk_.assign(npages_ * cfg_.page_bytes, 0);
  frame_of_page_.assign(npages_, -1);
  shard_dead_.assign(nodes_, false);
  shards_.resize(nodes_);
  for (auto& sh : shards_) {
    // Frame pointers must stay stable across pool growth (pinned frames are
    // held across FetchPage calls), so reserve the full shard up front.
    sh.frames.reserve(cfg_.frames_per_shard);
  }
  st_.shards.resize(nodes_);

  // Preload: the table starts fully populated, written straight to the disk
  // images (models a pre-existing on-device table; no WAL, no charges).
  for (uint64_t key = 0; key < cfg_.rows; ++key) {
    ApplySlot(DiskImage(key / slots_per_page_), /*lsn=*/0,
              static_cast<uint32_t>(key % slots_per_page_), key,
              PreloadValue(key));
  }
}

int StorageEngine::shard_of(uint64_t page) const {
  int start = static_cast<int>(page % static_cast<uint64_t>(nodes_));
  for (int i = 0; i < nodes_; ++i) {
    int cand = (start + i) % nodes_;
    if (!shard_dead_[cand]) return cand;
  }
  return -1;
}

uint64_t StorageEngine::ChargeIo(workloads::Env& env, uint64_t base) {
  uint64_t cycles = base;
  if (cfg_.io_jitter_cycles > 0) {
    cycles += io_rng_.Uniform(cfg_.io_jitter_cycles);
  }
  env.Compute(cycles);
  return cycles;
}

void StorageEngine::ApplySlot(uint8_t* img, uint64_t lsn, uint32_t slot,
                              uint64_t key, uint64_t value) const {
  WriteU64(img, lsn);
  uint64_t word = ReadU64(img + 8 + 8 * (slot / 64));
  word |= 1ULL << (slot % 64);
  WriteU64(img + 8 + 8 * (slot / 64), word);
  uint8_t* s = img + 8 + 8 * bitmap_words_ + 16 * slot;
  WriteU64(s, key);
  WriteU64(s + 8, value);
}

void StorageEngine::MaybeCrash(workloads::Env& env) {
  if (faults_ == nullptr) return;
  for (int n = 0; n < nodes_; ++n) {
    if (!shard_dead_[n] && !faults_->NodeOnline(n, env.self->clock)) {
      RecoverAfterCrash(env, n);
    }
  }
}

void StorageEngine::FlushWal(workloads::Env& env) {
  if (wal_buf_.empty()) return;
  env.Compute(cfg_.wal_flush_base_cycles +
              cfg_.wal_flush_per_record_cycles * wal_buf_.size());
  ++st_.wal_flushes;
  flushed_lsn_ = wal_buf_.back().lsn;
  wal_.insert(wal_.end(), wal_buf_.begin(), wal_buf_.end());
  wal_buf_.clear();
}

void StorageEngine::WalAppend(workloads::Env& env, uint64_t page,
                              uint32_t slot, uint64_t key, uint64_t value,
                              uint64_t* lsn_out) {
  AcquireLock(env, &wal_lock_, kWalHoldCycles);
  if (wal_buf_.empty()) buf_open_cycle_ = env.self->clock;
  WalRecord r;
  r.lsn = next_lsn_++;
  r.page = page;
  r.slot = slot;
  r.key = key;
  r.value = value;
  wal_buf_.push_back(r);
  env.Compute(cfg_.wal_append_cycles);
  ++st_.wal_records;
  st_.wal_bytes += kWalRecordBytes;
  ++records_since_checkpoint_;
  *lsn_out = r.lsn;
  // Group commit: flush when the group fills or the oldest buffered record
  // has waited out the virtual-cycle window.
  if (wal_buf_.size() >= cfg_.group_commit_records ||
      env.self->clock - buf_open_cycle_ >= cfg_.group_commit_window_cycles) {
    FlushWal(env);
  }
  env.LockReleased(&wal_lock_);
}

void StorageEngine::WriteBack(workloads::Env& env, Shard& sh, Frame& f) {
  // WAL-before-data: the log must be durable through this page's LSN before
  // its image may overwrite the on-device version.
  if (f.page_lsn > flushed_lsn_) {
    AcquireLock(env, &wal_lock_, kWalHoldCycles);
    FlushWal(env);
    env.LockReleased(&wal_lock_);
  }
  env.ReadSpan(f.data, cfg_.page_bytes);
  std::memcpy(DiskImage(f.page), f.data, cfg_.page_bytes);
  ChargeIo(env, cfg_.io_write_cycles);
  ++st_.io_writes;
  ++sh.st.writebacks;
  f.dirty = false;
}

Frame* StorageEngine::FetchLocked(workloads::Env& env, int shard_idx,
                                  uint64_t page) {
  Shard& sh = shards_[shard_idx];
  ++sh.st.lookups;
  int32_t fi = frame_of_page_[page];
  if (fi >= 0) {
    ++sh.st.hits;
    Frame& f = sh.frames[fi];
    f.ref = true;
    ++f.pins;
    return &f;
  }
  ++sh.st.misses;

  Frame* victim = nullptr;
  if (sh.frames.size() < cfg_.frames_per_shard) {
    // Grow the pool through the fallible chain, so faultlab capacity
    // pressure and injected allocation failures reach the buffer pool.
    // Raw TryAlloc (not Env::TryAlloc): a refusal here is survivable — we
    // fall back to evicting — so it must not poison the run status.
    void* p = env.alloc->TryAlloc(cfg_.page_bytes);
    if (p != nullptr) {
      if (sanity::RaceDetector* rd = env.mem->race()) {
        rd->OnAlloc(env.self->id,
                    env.mem->os()->ToSimAddr(reinterpret_cast<uint64_t>(p)),
                    cfg_.page_bytes, env.self->clock);
      }
      int touch_node = shard_idx;
      if (cfg_.placement == ShardPlacement::kNode0) {
        touch_node = 0;
      } else if (cfg_.placement == ShardPlacement::kInterleave) {
        touch_node = static_cast<int>(sh.frames.size()) % nodes_;
      }
      // Bind the frame's backing pages to the placement target, the
      // move_pages(2) way: a fresh page first-touches straight onto the
      // target; an allocator-recycled page (already bound wherever its
      // previous owner touched it) is migrated, paying the kernel copy in
      // the contention model. An offline target leaves the page put
      // (counted as an injected migration failure), matching the kernel.
      uint64_t base_addr = reinterpret_cast<uint64_t>(p);
      for (uint64_t a = base_addr; a < base_addr + cfg_.page_bytes;
           a += mem::kSmallPageBytes) {
        auto [region, idx] = env.mem->os()->Lookup(a);
        env.mem->os()->Touch(region, idx, touch_node);
        env.mem->os()->MigratePage(region, idx, touch_node,
                                   env.self->clock);
      }
      {
        auto [region, idx] =
            env.mem->os()->Lookup(base_addr + cfg_.page_bytes - 1);
        env.mem->os()->Touch(region, idx, touch_node);
        env.mem->os()->MigratePage(region, idx, touch_node,
                                   env.self->clock);
      }
      sh.frames.emplace_back();
      victim = &sh.frames.back();
      victim->data = static_cast<uint8_t*>(p);
      ++sh.st.frames;
    } else {
      ++sh.st.alloc_fallbacks;
    }
  }
  if (victim == nullptr) {
    if (sh.frames.empty()) {
      env.ReportFailure(Status::OutOfMemory(
          "storage: shard has no frames and frame allocation failed"));
      return nullptr;
    }
    // Clock second-chance sweep; pinned frames are skipped. Two full laps
    // with no victim means everything is pinned — a caller bug in this
    // engine's usage, reported rather than spun on.
    uint64_t steps = 2 * sh.frames.size();
    while (steps-- > 0) {
      Frame& f = sh.frames[sh.hand];
      sh.hand = (sh.hand + 1) % sh.frames.size();
      if (f.pins > 0) continue;
      if (f.ref) {
        f.ref = false;
        continue;
      }
      victim = &f;
      break;
    }
    if (victim == nullptr) {
      env.ReportFailure(
          Status::Internal("storage: all frames pinned, cannot evict"));
      return nullptr;
    }
  }

  if (victim->page != kNoPage) {
    if (victim->dirty) WriteBack(env, sh, *victim);
    frame_of_page_[victim->page] = -1;
    ++sh.st.evictions;
  }

  // Fault the page in from the simulated device.
  ChargeIo(env, cfg_.io_read_cycles);
  ++st_.io_reads;
  std::memcpy(victim->data, DiskImage(page), cfg_.page_bytes);
  env.WriteSpan(victim->data, cfg_.page_bytes);
  victim->page = page;
  victim->page_lsn = ReadU64(victim->data);
  victim->dirty = false;
  victim->ref = true;
  victim->pins = 1;
  frame_of_page_[page] =
      static_cast<int32_t>(victim - sh.frames.data());
  return victim;
}

Frame* StorageEngine::FetchPage(workloads::Env& env, uint64_t page) {
  NUMALAB_CHECK(page < npages_);
  MaybeCrash(env);
  int si = shard_of(page);
  if (si < 0) {
    env.ReportFailure(Status::Unavailable("storage: all shards offline"));
    return nullptr;
  }
  Shard& sh = shards_[si];
  AcquireLock(env, &sh.lock, kShardHoldCycles);
  Frame* f = FetchLocked(env, si, page);
  env.LockReleased(&sh.lock);
  return f;
}

void StorageEngine::UnpinPage(Frame* f) {
  NUMALAB_CHECK(f != nullptr);
  NUMALAB_CHECK(f->pins > 0 && "UnpinPage on an unpinned frame");
  --f->pins;
}

bool StorageEngine::Upsert(workloads::Env& env, uint64_t key,
                           uint64_t value) {
  NUMALAB_CHECK(key < cfg_.rows);
  MaybeCrash(env);
  uint64_t page = key / slots_per_page_;
  uint32_t slot = static_cast<uint32_t>(key % slots_per_page_);
  // Write-ahead rule: the record is logged (group-commit buffered) before
  // the page is touched.
  uint64_t lsn = 0;
  WalAppend(env, page, slot, key, value, &lsn);

  int si = shard_of(page);
  if (si < 0) {
    env.ReportFailure(Status::Unavailable("storage: all shards offline"));
    return false;
  }
  Shard& sh = shards_[si];
  AcquireLock(env, &sh.lock, kShardHoldCycles);
  Frame* f = FetchLocked(env, si, page);
  bool ok = f != nullptr;
  if (ok) {
    ApplySlot(f->data, lsn, slot, key, value);
    // Charge the in-frame writes: header LSN + bitmap word + the slot.
    env.Write(f->data, 8);
    env.Write(f->data + 8 + 8 * (slot / 64), 8);
    env.Write(f->data + 8 + 8 * bitmap_words_ + 16 * slot, 16);
    f->page_lsn = lsn;
    f->dirty = true;
    --f->pins;
  }
  env.LockReleased(&sh.lock);
  if (ok) ++st_.upserts;
  MaybeCheckpoint(env);
  return ok;
}

bool StorageEngine::Get(workloads::Env& env, uint64_t key, uint64_t* value) {
  NUMALAB_CHECK(key < cfg_.rows);
  MaybeCrash(env);
  *value = 0;
  uint64_t page = key / slots_per_page_;
  uint32_t slot = static_cast<uint32_t>(key % slots_per_page_);
  int si = shard_of(page);
  if (si < 0) {
    env.ReportFailure(Status::Unavailable("storage: all shards offline"));
    return false;
  }
  Shard& sh = shards_[si];
  AcquireLock(env, &sh.lock, kShardHoldCycles);
  Frame* f = FetchLocked(env, si, page);
  bool found = false;
  if (f != nullptr) {
    env.Read(f->data + 8 + 8 * (slot / 64), 8);
    uint64_t word = ReadU64(f->data + 8 + 8 * (slot / 64));
    if ((word >> (slot % 64)) & 1ULL) {
      const uint8_t* s = f->data + 8 + 8 * bitmap_words_ + 16 * slot;
      env.Read(s, 16);
      *value = ReadU64(s + 8);
      found = true;
    }
    --f->pins;
  }
  env.LockReleased(&sh.lock);
  ++st_.gets;
  return found;
}

uint64_t StorageEngine::ScanSum(workloads::Env& env, uint64_t key,
                                uint64_t rows) {
  NUMALAB_CHECK(key < cfg_.rows);
  uint64_t end = key + rows;
  if (end > cfg_.rows) end = cfg_.rows;
  uint64_t sum = 0;
  uint64_t k = key;
  while (k < end) {
    MaybeCrash(env);
    uint64_t page = k / slots_per_page_;
    uint32_t first = static_cast<uint32_t>(k % slots_per_page_);
    uint64_t last = std::min(end, (page + 1) * slots_per_page_);
    uint32_t count = static_cast<uint32_t>(last - k);
    int si = shard_of(page);
    if (si < 0) {
      env.ReportFailure(Status::Unavailable("storage: all shards offline"));
      return sum;
    }
    Shard& sh = shards_[si];
    AcquireLock(env, &sh.lock, kShardHoldCycles);
    Frame* f = FetchLocked(env, si, page);
    if (f != nullptr) {
      const uint8_t* base = f->data + 8 + 8 * bitmap_words_ + 16 * first;
      env.ReadSpan(base, 16ULL * count, 16);
      for (uint32_t i = 0; i < count; ++i) {
        uint64_t word = ReadU64(f->data + 8 + 8 * ((first + i) / 64));
        if ((word >> ((first + i) % 64)) & 1ULL) {
          sum += ReadU64(base + 16ULL * i + 8);
        }
      }
      st_.scan_rows += count;
      --f->pins;
    }
    env.LockReleased(&sh.lock);
    if (f == nullptr) break;
    k = last;
  }
  return sum;
}

void StorageEngine::MaybeCheckpoint(workloads::Env& env) {
  if (cfg_.checkpoint_interval_records == 0) return;
  if (records_since_checkpoint_ < cfg_.checkpoint_interval_records) return;
  records_since_checkpoint_ = 0;
  trace::ScopedSpan span(env.self, "storage-checkpoint");
  // Sharp checkpoint: durable log, then every dirty frame written back, then
  // the log is truncated — recovery never needs to look behind it.
  AcquireLock(env, &wal_lock_, kWalHoldCycles);
  FlushWal(env);
  env.LockReleased(&wal_lock_);
  for (int si = 0; si < nodes_; ++si) {
    Shard& sh = shards_[si];
    if (shard_dead_[si] || sh.frames.empty()) continue;
    AcquireLock(env, &sh.lock, kShardHoldCycles);
    for (Frame& f : sh.frames) {
      if (f.page != kNoPage && f.dirty) {
        WriteBack(env, sh, f);
        ++st_.checkpoint_pages;
      }
    }
    env.LockReleased(&sh.lock);
  }
  st_.wal_truncated_records += wal_.size();
  wal_.clear();
  ++st_.checkpoints;
}

void StorageEngine::FlushAll(workloads::Env& env) {
  AcquireLock(env, &wal_lock_, kWalHoldCycles);
  FlushWal(env);
  env.LockReleased(&wal_lock_);
  for (int si = 0; si < nodes_; ++si) {
    Shard& sh = shards_[si];
    if (shard_dead_[si] || sh.frames.empty()) continue;
    AcquireLock(env, &sh.lock, kShardHoldCycles);
    for (Frame& f : sh.frames) {
      if (f.page != kNoPage && f.dirty) WriteBack(env, sh, f);
    }
    env.LockReleased(&sh.lock);
  }
}

void StorageEngine::RecoverAfterCrash(workloads::Env& env, int node) {
  NUMALAB_CHECK(node >= 0 && node < nodes_);
  NUMALAB_CHECK(!shard_dead_[node]);
  trace::ScopedSpan span(env.self, "storage-recovery");
  uint64_t start = env.self->clock;
  ++st_.crashes;
  shard_dead_[node] = true;

  // The log device survives a node loss (the WAL buffer lives with the log
  // manager, not on the dead node's DRAM): force it durable, so every
  // acknowledged update is replayable.
  AcquireLock(env, &wal_lock_, kWalHoldCycles);
  FlushWal(env);
  env.LockReleased(&wal_lock_);

  // Crash the shard: every cached frame is gone, including dirty pages
  // whose only up-to-date copy they were.
  Shard& sh = shards_[node];
  for (Frame& f : sh.frames) {
    if (f.page != kNoPage) {
      if (f.dirty) ++st_.recovery_dirty_frames_lost;
      frame_of_page_[f.page] = -1;
    }
    env.Free(f.data);
  }
  sh.frames.clear();
  sh.hand = 0;
  sh.st.frames = 0;

  // Analysis + redo over the post-checkpoint log: a record is current if
  // its page is cached on a surviving shard (the frame is the unique cache
  // copy, so its LSN dominates every logged record) or if the on-device
  // image already carries an LSN at or past it; everything else is replayed
  // onto the device image. Idempotent by the per-page LSN guard.
  std::vector<bool> redone(npages_, false);
  for (const WalRecord& r : wal_) {
    ++st_.recovery_records_scanned;
    if (frame_of_page_[r.page] >= 0) continue;
    uint8_t* img = DiskImage(r.page);
    if (ReadU64(img) >= r.lsn) continue;
    if (!redone[r.page]) {
      redone[r.page] = true;
      ++st_.recovery_pages_redone;
      ChargeIo(env, cfg_.io_read_cycles);
      ++st_.io_reads;
      ChargeIo(env, cfg_.io_write_cycles);
      ++st_.io_writes;
    }
    ApplySlot(img, r.lsn, r.slot, r.key, r.value);
    ++st_.recovery_records_replayed;
  }

  st_.recovery_cycles += env.self->clock - start;
  st_.recovered_checksum = Checksum();
}

uint64_t StorageEngine::Checksum() const {
  uint64_t sum = 0;
  for (uint64_t page = 0; page < npages_; ++page) {
    const uint8_t* img = DiskImage(page);
    int32_t fi = frame_of_page_[page];
    if (fi >= 0) {
      int si = shard_of(page);
      NUMALAB_CHECK(si >= 0);
      img = shards_[si].frames[fi].data;
    }
    uint64_t lo = page * slots_per_page_;
    uint64_t hi = std::min(cfg_.rows, lo + slots_per_page_);
    for (uint64_t key = lo; key < hi; ++key) {
      uint32_t slot = static_cast<uint32_t>(key - lo);
      uint64_t word = ReadU64(img + 8 + 8 * (slot / 64));
      if ((word >> (slot % 64)) & 1ULL) {
        uint64_t value =
            ReadU64(img + 8 + 8 * bitmap_words_ + 16 * slot + 8);
        sum += SplitMix64(key * 0x9e3779b97f4a7c15ULL ^ value).Next();
      }
    }
  }
  return sum;
}

bool StorageEngine::Cached(uint64_t page) const {
  NUMALAB_CHECK(page < npages_);
  return frame_of_page_[page] >= 0;
}

StorageStats StorageEngine::stats() const {
  StorageStats out = st_;
  out.shards.resize(nodes_);
  for (int i = 0; i < nodes_; ++i) {
    out.shards[i] = shards_[i].st;
    out.lookups += shards_[i].st.lookups;
    out.hits += shards_[i].st.hits;
    out.misses += shards_[i].st.misses;
    out.evictions += shards_[i].st.evictions;
    out.writebacks += shards_[i].st.writebacks;
  }
  out.table_checksum = Checksum();
  return out;
}

namespace {

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  int n = vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, std::min<size_t>(n, sizeof(buf) - 1));
}

}  // namespace

std::string StorageJson(const StorageConfig& cfg, const StorageStats& st) {
  std::string out;
  out.reserve(1024);
  Appendf(&out,
          "{\"enabled\":%s,\"rows\":%" PRIu64 ",\"page_bytes\":%" PRIu64
          ",\"frames_per_shard\":%" PRIu64
          ",\"placement\":\"%s\",\"checkpoint_interval\":%" PRIu64,
          cfg.enabled ? "true" : "false", cfg.rows, cfg.page_bytes,
          cfg.frames_per_shard, ShardPlacementName(cfg.placement),
          cfg.checkpoint_interval_records);
  Appendf(&out,
          ",\"lookups\":%" PRIu64 ",\"hits\":%" PRIu64 ",\"misses\":%" PRIu64
          ",\"hit_rate\":%.6g,\"evictions\":%" PRIu64
          ",\"writebacks\":%" PRIu64,
          st.lookups, st.hits, st.misses, st.HitRate(), st.evictions,
          st.writebacks);
  Appendf(&out,
          ",\"upserts\":%" PRIu64 ",\"gets\":%" PRIu64
          ",\"scan_rows\":%" PRIu64,
          st.upserts, st.gets, st.scan_rows);
  out.append(",\"shards\":[");
  for (size_t i = 0; i < st.shards.size(); ++i) {
    const ShardStats& s = st.shards[i];
    Appendf(&out,
            "%s{\"node\":%zu,\"lookups\":%" PRIu64 ",\"hits\":%" PRIu64
            ",\"misses\":%" PRIu64 ",\"hit_rate\":%.6g,\"evictions\":%" PRIu64
            ",\"writebacks\":%" PRIu64 ",\"frames\":%" PRIu64
            ",\"alloc_fallbacks\":%" PRIu64 "}",
            i == 0 ? "" : ",", i, s.lookups, s.hits, s.misses,
            s.lookups == 0 ? 0.0
                           : static_cast<double>(s.hits) /
                                 static_cast<double>(s.lookups),
            s.evictions, s.writebacks, s.frames, s.alloc_fallbacks);
  }
  out.append("]");
  Appendf(&out,
          ",\"wal\":{\"records\":%" PRIu64 ",\"bytes\":%" PRIu64
          ",\"flushes\":%" PRIu64 ",\"checkpoints\":%" PRIu64
          ",\"checkpoint_pages\":%" PRIu64 ",\"truncated_records\":%" PRIu64
          "}",
          st.wal_records, st.wal_bytes, st.wal_flushes, st.checkpoints,
          st.checkpoint_pages, st.wal_truncated_records);
  Appendf(&out, ",\"io\":{\"reads\":%" PRIu64 ",\"writes\":%" PRIu64 "}",
          st.io_reads, st.io_writes);
  Appendf(&out, ",\"crashes\":%" PRIu64, st.crashes);
  if (st.crashes > 0) {
    Appendf(&out,
            ",\"recovery\":{\"cycles\":%" PRIu64
            ",\"records_scanned\":%" PRIu64 ",\"records_replayed\":%" PRIu64
            ",\"pages_redone\":%" PRIu64 ",\"dirty_frames_lost\":%" PRIu64
            ",\"checksum\":%" PRIu64 "}",
            st.recovery_cycles, st.recovery_records_scanned,
            st.recovery_records_replayed, st.recovery_pages_redone,
            st.recovery_dirty_frames_lost, st.recovered_checksum);
  }
  Appendf(&out, ",\"table_checksum\":%" PRIu64 "}", st.table_checksum);
  return out;
}

}  // namespace storage
}  // namespace numalab
