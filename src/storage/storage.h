// numalab::storage — a deterministic paged table store with a NUMA-sharded
// buffer pool, a write-ahead log and ARIES-lite crash recovery
// (DESIGN.md section 15).
//
// minidb is compute-only; this subsystem adds the missing storage half of a
// query-serving system, following the MiniRDB exemplar: fixed-size slotted
// pages persisted on a *simulated* I/O device (host-side byte images whose
// reads/writes charge seeded, configurable virtual-cycle latencies), cached
// by one buffer-pool shard per NUMA node. Page ids are routed to their
// owning shard; each shard's frames live in simulated memory — allocated
// through the fallible allocation chain, so faultlab capacity pressure and
// allocation-failure injection apply — and are evicted with a deterministic
// clock (second-chance) sweep with pin/unpin and dirty-page writeback.
//
// Durability follows ARIES discipline, scaled to the simulator:
//  * every slot update appends an LSN-stamped record to the WAL *before*
//    touching the page (write-ahead rule), with group commit: records
//    buffer until the group fills or a virtual-cycle window elapses, and
//    one flush charge covers the whole group;
//  * a dirty page may be written back only after the WAL is flushed through
//    its page LSN;
//  * sharp checkpoints flush the WAL, write back every dirty frame, and
//    truncate the log — bounding recovery work by the checkpoint interval;
//  * when faultlab takes a node offline mid-run, the engine treats it as a
//    crash of that shard: the shard's frames (including un-written-back
//    dirty pages) are discarded, the surviving WAL is force-flushed, and an
//    analysis+redo pass replays post-checkpoint records onto the stale disk
//    images (idempotent via the per-page LSN), after which the dead shard's
//    pages are re-routed to the next online shard. Because every applied
//    update was logged first, recovery reproduces a table checksum
//    identical to a no-fault run — the self-checking gate bench_storage
//    enforces.
//
// Determinism: no wall clock, no host RNG (the I/O jitter comes from a
// seeded Rng), no unordered containers; all shared frame/WAL state is
// mutated under per-shard and WAL VirtualLocks whose critical sections are
// marked via Env::LockAcquired/LockReleased, so race-detected runs are
// clean and two same-seed runs are bit-identical.

#ifndef NUMALAB_STORAGE_STORAGE_H_
#define NUMALAB_STORAGE_STORAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/faultlab/faultlab.h"
#include "src/sim/sync.h"
#include "src/workloads/env.h"

namespace numalab {
namespace storage {

/// \brief Where a shard's frame memory is first-touched. The buffer pool's
/// own placement axis, orthogonal to MemPolicy: kLocal puts each shard's
/// frames on the node whose pages it caches (the NUMA-aware design), kNode0
/// reproduces the classic single-producer pathology, kInterleave
/// round-robins frames across nodes.
enum class ShardPlacement {
  kLocal,
  kNode0,
  kInterleave,
};

const char* ShardPlacementName(ShardPlacement p);
/// Parses "local" / "node0" / "interleave"; false on anything else.
bool ShardPlacementFromName(const std::string& name, ShardPlacement* out);

/// \brief Parameters of the paged store, buffer pool, simulated I/O device
/// and WAL. Defaults give a working set a few times larger than the pool,
/// so eviction and writeback are exercised.
struct StorageConfig {
  /// Master switch for the serving integration: RunServing routes the
  /// upsert/point/range stream through the WAL-backed table iff true.
  /// False is guaranteed zero-cost (byte-identical serving results).
  bool enabled = false;

  /// Table rows; keys are [0, rows), direct-mapped to (page, slot).
  uint64_t rows = 1 << 16;
  /// Fixed page size in bytes (header + presence bitmap + 16-byte slots).
  uint64_t page_bytes = 4096;
  /// Buffer-pool frames per NUMA-node shard.
  uint64_t frames_per_shard = 24;
  ShardPlacement placement = ShardPlacement::kLocal;

  // Simulated I/O cost model (virtual cycles), charged to the calling
  // worker. Each device op adds a seeded jitter in [0, io_jitter_cycles).
  uint64_t io_read_cycles = 9'000;
  uint64_t io_write_cycles = 13'000;
  uint64_t io_jitter_cycles = 512;

  // WAL: per-record append cost (buffered), flush base + per-record cost,
  // and the group-commit policy — flush when the buffer reaches
  // group_commit_records or the oldest buffered record has waited
  // group_commit_window_cycles.
  uint64_t wal_append_cycles = 60;
  uint64_t wal_flush_base_cycles = 6'000;
  uint64_t wal_flush_per_record_cycles = 90;
  uint64_t group_commit_records = 16;
  uint64_t group_commit_window_cycles = 24'000;

  /// Sharp checkpoint every N WAL records (0 disables checkpoints): flush
  /// the WAL, write back every dirty frame, truncate the log. Smaller
  /// intervals bound recovery work at the price of extra writeback — the
  /// recovery-time curve bench_storage sweeps.
  uint64_t checkpoint_interval_records = 4096;
};

/// \brief Per-shard buffer-pool counters. Invariant (validator-checked):
/// hits + misses == lookups.
struct ShardStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  uint64_t frames = 0;          ///< frames currently allocated
  uint64_t alloc_fallbacks = 0; ///< frame allocs refused -> evicted instead
};

/// \brief Everything the storage engine measured in one run.
struct StorageStats {
  std::vector<ShardStats> shards;  ///< indexed by NUMA node

  // Pool totals (sums of the per-shard counters; validator cross-checks).
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;

  // Operation counts.
  uint64_t upserts = 0;
  uint64_t gets = 0;
  uint64_t scan_rows = 0;

  // WAL + checkpoint accounting.
  uint64_t wal_records = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_flushes = 0;
  uint64_t checkpoints = 0;
  uint64_t checkpoint_pages = 0;
  uint64_t wal_truncated_records = 0;

  // Simulated device accounting.
  uint64_t io_reads = 0;
  uint64_t io_writes = 0;

  // Crash recovery (all zero unless a shard crashed; the "recovery" JSON
  // object is emitted iff crashes > 0).
  uint64_t crashes = 0;
  uint64_t recovery_cycles = 0;
  uint64_t recovery_records_scanned = 0;
  uint64_t recovery_records_replayed = 0;
  uint64_t recovery_pages_redone = 0;
  uint64_t recovery_dirty_frames_lost = 0;
  uint64_t recovered_checksum = 0;  ///< table checksum right after redo

  /// Final order-independent table digest (filled by StorageEngine::stats).
  uint64_t table_checksum = 0;

  double HitRate() const {
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

/// The deterministic preload value of a row: the table starts fully
/// populated with (key, PreloadValue(key)), written straight to the disk
/// images host-side (no WAL, no charges — it models a pre-existing table).
/// Upserts should write values *different* from this so lost updates are
/// detectable (see bench_storage's recovery gate).
inline uint64_t PreloadValue(uint64_t key) {
  return SplitMix64(key * 0x9e3779b97f4a7c15ULL + 1).Next();
}

/// \brief One buffer-pool frame. `data` is page_bytes of simulated memory;
/// accesses to it are charged through the caller's Env.
struct Frame {
  uint64_t page = ~0ULL;
  uint64_t page_lsn = 0;  ///< host mirror of the image's header LSN
  uint32_t pins = 0;
  bool dirty = false;
  bool ref = false;  ///< clock second-chance bit
  uint8_t* data = nullptr;
};

class StorageEngine {
 public:
  /// `nodes` is the machine's NUMA-node count (one shard each); `seed`
  /// feeds the I/O jitter Rng; `faults` may be null (no crash injection).
  StorageEngine(const StorageConfig& cfg, int nodes, uint64_t seed,
                faultlab::FaultLab* faults);

  StorageEngine(const StorageEngine&) = delete;
  StorageEngine& operator=(const StorageEngine&) = delete;

  /// Writes `value` for `key` through the WAL-backed table: WAL append
  /// (group commit), then the in-frame slot update, marking the frame
  /// dirty. Returns false when the key's frame could not be materialized
  /// (allocation chain exhausted with an empty shard). key must be < rows.
  bool Upsert(workloads::Env& env, uint64_t key, uint64_t value);

  /// Point read through the buffer pool. Returns false for an absent row
  /// (never happens after the full preload) — *value is 0 then.
  bool Get(workloads::Env& env, uint64_t key, uint64_t* value);

  /// Sums the values of rows [key, min(key+rows, config.rows)) through the
  /// pool, page by page. Returns the sum (wrapping uint64 arithmetic).
  uint64_t ScanSum(workloads::Env& env, uint64_t key, uint64_t rows);

  /// Flushes the WAL and writes back every dirty frame (no truncation —
  /// use for a clean shutdown in tests; checkpoints do truncate).
  void FlushAll(workloads::Env& env);

  // --- Lower-level pool interface (tests; Upsert/Get use it internally).
  /// Pins and returns the frame caching `page`, faulting it in (and
  /// evicting, if needed) on a miss. Null when no frame can be obtained.
  /// The caller must UnpinPage exactly once per successful FetchPage.
  Frame* FetchPage(workloads::Env& env, uint64_t page);
  /// Unpins a frame returned by FetchPage. Unpinning a frame whose pin
  /// count is already zero is a caller bug and aborts (NUMALAB_CHECK).
  void UnpinPage(Frame* f);

  /// Crash one shard and run ARIES-lite recovery: force-flush the WAL
  /// (the log device survives a node loss), discard the shard's frames —
  /// dirty pages lose their only up-to-date copy — then analysis+redo of
  /// every post-checkpoint WAL record onto the current page versions
  /// (idempotent: records at or below the page LSN are skipped). The dead
  /// shard's pages re-route to the next online shard. Called automatically
  /// when faultlab reports the node offline; public so tests can exercise
  /// replay without a fault plan.
  void RecoverAfterCrash(workloads::Env& env, int node);

  /// Order-independent digest over every live row (cached frames take
  /// precedence over disk images). Host-side bookkeeping: charges nothing
  /// and perturbs no pool state, so benches can compare fault vs no-fault
  /// runs on it.
  uint64_t Checksum() const;

  /// True iff `page` currently has a frame (host-side; tests).
  bool Cached(uint64_t page) const;

  const StorageConfig& config() const { return cfg_; }
  uint64_t pages() const { return npages_; }
  uint64_t rows_per_page() const { return slots_per_page_; }
  int shard_of(uint64_t page) const;
  /// WAL records currently live (flushed, post-checkpoint) — shrinks when
  /// a checkpoint truncates (tests).
  uint64_t wal_live_records() const { return wal_.size(); }
  uint64_t wal_buffered_records() const { return wal_buf_.size(); }

  /// Copies the counters, filling in the pool totals and the final
  /// table_checksum.
  StorageStats stats() const;

 private:
  struct WalRecord {
    uint64_t lsn = 0;
    uint64_t page = 0;
    uint32_t slot = 0;
    uint64_t key = 0;
    uint64_t value = 0;
  };

  struct Shard {
    std::vector<Frame> frames;
    uint64_t hand = 0;  ///< clock sweep position
    sim::VirtualLock lock;
    ShardStats st;
  };

  uint8_t* DiskImage(uint64_t page) { return &disk_[page * cfg_.page_bytes]; }
  const uint8_t* DiskImage(uint64_t page) const {
    return &disk_[page * cfg_.page_bytes];
  }
  uint64_t ChargeIo(workloads::Env& env, uint64_t base);
  void MaybeCrash(workloads::Env& env);
  void FlushWal(workloads::Env& env);
  void WalAppend(workloads::Env& env, uint64_t page, uint32_t slot,
                 uint64_t key, uint64_t value, uint64_t* lsn_out);
  void MaybeCheckpoint(workloads::Env& env);
  /// Writes the victim frame's image back to disk (WAL-first rule:
  /// flushes the log through the frame's LSN beforehand).
  void WriteBack(workloads::Env& env, Shard& sh, Frame& f);
  /// Shard-lock-held page fetch; returns null on total frame famine.
  Frame* FetchLocked(workloads::Env& env, int shard_idx, uint64_t page);
  void ApplySlot(uint8_t* img, uint64_t lsn, uint32_t slot, uint64_t key,
                 uint64_t value) const;

  StorageConfig cfg_;
  int nodes_ = 1;
  faultlab::FaultLab* faults_ = nullptr;  // not owned; may be null

  uint64_t slots_per_page_ = 0;
  uint64_t bitmap_words_ = 0;
  uint64_t npages_ = 0;

  std::vector<uint8_t> disk_;          // host-side durable page images
  std::vector<Shard> shards_;          // one per node
  std::vector<int32_t> frame_of_page_; // index into owning shard's frames
  std::vector<bool> shard_dead_;       // crashed shards (re-routed)

  // WAL (host-side log device; survives node crashes).
  std::vector<WalRecord> wal_;      // flushed, post-checkpoint
  std::vector<WalRecord> wal_buf_;  // group-commit buffer
  uint64_t next_lsn_ = 1;
  uint64_t flushed_lsn_ = 0;
  uint64_t buf_open_cycle_ = 0;
  uint64_t records_since_checkpoint_ = 0;
  sim::VirtualLock wal_lock_;

  Rng io_rng_;  // seeded device-latency jitter
  StorageStats st_;
};

/// The "storage" JSON object for trace export (schema v4). Deterministic:
/// integers and %.6g doubles only, fixed key order; the "recovery" object
/// is present iff st.crashes > 0.
std::string StorageJson(const StorageConfig& cfg, const StorageStats& st);

}  // namespace storage
}  // namespace numalab

#endif  // NUMALAB_STORAGE_STORAGE_H_
