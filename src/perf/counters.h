// Simulated performance counters.
//
// The paper profiles its workloads with perf/LIKWID (Table III, Fig. 5b).
// Because our substrate is a simulator, the equivalent counters are exact:
// every simulated memory access, TLB walk, migration and page move is
// counted here.

#ifndef NUMALAB_PERF_COUNTERS_H_
#define NUMALAB_PERF_COUNTERS_H_

#include <cstdint>
#include <string>

namespace numalab {
namespace perf {

/// \brief Counters accumulated per virtual thread; aggregated into a
/// PerfReport at the end of a run.
struct ThreadCounters {
  uint64_t cycles = 0;            ///< virtual cycles consumed
  uint64_t thread_migrations = 0; ///< times the OS moved this thread
  uint64_t mem_accesses = 0;      ///< logical loads+stores charged
  uint64_t private_hits = 0;      ///< served by the core-private cache
  uint64_t llc_hits = 0;          ///< served by the node LLC
  uint64_t llc_misses = 0;        ///< went to DRAM
  uint64_t local_dram = 0;        ///< DRAM accesses to the local node
  uint64_t remote_dram = 0;       ///< DRAM accesses over the interconnect
  uint64_t tlb_hits = 0;
  uint64_t tlb_misses = 0;        ///< page walks
  uint64_t hinting_faults = 0;    ///< AutoNUMA NUMA-hinting faults taken
  uint64_t alloc_calls = 0;
  uint64_t free_calls = 0;
  uint64_t alloc_cycles = 0;      ///< cycles spent inside the allocator
  uint64_t lock_wait_cycles = 0;  ///< virtual-time lock queueing delay
  uint64_t queue_delay_cycles = 0;///< controller/link bandwidth queueing

  void Add(const ThreadCounters& o) {
    cycles += o.cycles;
    thread_migrations += o.thread_migrations;
    mem_accesses += o.mem_accesses;
    private_hits += o.private_hits;
    llc_hits += o.llc_hits;
    llc_misses += o.llc_misses;
    local_dram += o.local_dram;
    remote_dram += o.remote_dram;
    tlb_hits += o.tlb_hits;
    tlb_misses += o.tlb_misses;
    hinting_faults += o.hinting_faults;
    alloc_calls += o.alloc_calls;
    free_calls += o.free_calls;
    alloc_cycles += o.alloc_cycles;
    lock_wait_cycles += o.lock_wait_cycles;
    queue_delay_cycles += o.queue_delay_cycles;
  }

  /// Componentwise difference against an earlier snapshot of the same
  /// monotonically increasing counter set (span deltas, src/trace).
  ThreadCounters Minus(const ThreadCounters& o) const {
    ThreadCounters d;
    d.cycles = cycles - o.cycles;
    d.thread_migrations = thread_migrations - o.thread_migrations;
    d.mem_accesses = mem_accesses - o.mem_accesses;
    d.private_hits = private_hits - o.private_hits;
    d.llc_hits = llc_hits - o.llc_hits;
    d.llc_misses = llc_misses - o.llc_misses;
    d.local_dram = local_dram - o.local_dram;
    d.remote_dram = remote_dram - o.remote_dram;
    d.tlb_hits = tlb_hits - o.tlb_hits;
    d.tlb_misses = tlb_misses - o.tlb_misses;
    d.hinting_faults = hinting_faults - o.hinting_faults;
    d.alloc_calls = alloc_calls - o.alloc_calls;
    d.free_calls = free_calls - o.free_calls;
    d.alloc_cycles = alloc_cycles - o.alloc_cycles;
    d.lock_wait_cycles = lock_wait_cycles - o.lock_wait_cycles;
    d.queue_delay_cycles = queue_delay_cycles - o.queue_delay_cycles;
    return d;
  }
};

/// \brief System-wide counters maintained by the OS/memory models.
struct SystemCounters {
  uint64_t page_migrations = 0;       ///< AutoNUMA page moves
  uint64_t thp_collapses = 0;         ///< 4K runs merged into 2M pages
  uint64_t thp_splits = 0;            ///< 2M pages split back
  uint64_t pages_mapped = 0;
  uint64_t bytes_mapped = 0;          ///< OS memory handed to allocators
  uint64_t bytes_mapped_peak = 0;
  uint64_t balancer_migrations = 0;   ///< load-balancer thread moves

  // Adaptive placement (src/mem/placement.h; all zero when disabled).
  uint64_t pages_replicated = 0;       ///< per-node replica copies created
  uint64_t replica_reads = 0;          ///< DRAM reads served by a local replica
  uint64_t replica_writes = 0;         ///< writes that hit a replicated page
  uint64_t replica_invalidations = 0;  ///< write-triggered shootdown events
  uint64_t replica_drops = 0;          ///< replica copies released (any cause)
  uint64_t replica_bytes_peak = 0;     ///< peak bytes held by replicas
  uint64_t migrations_vetoed = 0;      ///< cost-aware gate rejected the move
  uint64_t capacity_bytes_total = 0;   ///< sum of enforced node capacities

  // faultlab degradation counters (all zero in a no-fault run).
  uint64_t pages_spilled = 0;          ///< binds redirected off a full node
  uint64_t oom_last_resort_pages = 0;  ///< every zone full; bound anyway
  uint64_t offline_redirects = 0;      ///< binds redirected off offline nodes
  uint64_t all_offline_binds = 0;      ///< every node offline; bound offline
  uint64_t alloc_failures_injected = 0;
  uint64_t migration_failures_injected = 0;
};

/// \brief Aggregated result of one simulated run.
struct PerfReport {
  ThreadCounters threads;  ///< sum over all worker threads
  SystemCounters system;

  /// Local Access Ratio: local DRAM accesses / all DRAM accesses
  /// (the paper's LAR, Fig. 5b). 1.0 when there was no DRAM traffic.
  double LocalAccessRatio() const {
    uint64_t total = threads.local_dram + threads.remote_dram;
    if (total == 0) return 1.0;
    return static_cast<double>(threads.local_dram) /
           static_cast<double>(total);
  }

  std::string ToString() const;
};

}  // namespace perf
}  // namespace numalab

#endif  // NUMALAB_PERF_COUNTERS_H_
