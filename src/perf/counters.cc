#include "src/perf/counters.h"

#include <sstream>

namespace numalab {
namespace perf {

std::string PerfReport::ToString() const {
  std::ostringstream os;
  os << "cycles=" << threads.cycles
     << " thread_migrations=" << threads.thread_migrations
     << " mem_accesses=" << threads.mem_accesses
     << " llc_misses=" << threads.llc_misses
     << " local_dram=" << threads.local_dram
     << " remote_dram=" << threads.remote_dram
     << " LAR=" << LocalAccessRatio()
     << " tlb_misses=" << threads.tlb_misses
     << " page_migrations=" << system.page_migrations
     << " thp_collapses=" << system.thp_collapses
     << " bytes_mapped_peak=" << system.bytes_mapped_peak;
  // Degradation counters only appear when faultlab actually degraded the
  // run, keeping no-fault reports (and anything diffing them) unchanged.
  if (system.pages_spilled != 0 || system.oom_last_resort_pages != 0 ||
      system.offline_redirects != 0 || system.alloc_failures_injected != 0 ||
      system.migration_failures_injected != 0) {
    os << " pages_spilled=" << system.pages_spilled
       << " oom_last_resort_pages=" << system.oom_last_resort_pages
       << " offline_redirects=" << system.offline_redirects
       << " alloc_failures_injected=" << system.alloc_failures_injected
       << " migration_failures_injected=" << system.migration_failures_injected;
  }
  return os.str();
}

}  // namespace perf
}  // namespace numalab
