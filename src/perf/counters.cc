#include "src/perf/counters.h"

#include <sstream>

namespace numalab {
namespace perf {

std::string PerfReport::ToString() const {
  std::ostringstream os;
  os << "cycles=" << threads.cycles
     << " thread_migrations=" << threads.thread_migrations
     << " mem_accesses=" << threads.mem_accesses
     << " llc_misses=" << threads.llc_misses
     << " local_dram=" << threads.local_dram
     << " remote_dram=" << threads.remote_dram
     << " LAR=" << LocalAccessRatio()
     << " tlb_misses=" << threads.tlb_misses
     << " page_migrations=" << system.page_migrations
     << " thp_collapses=" << system.thp_collapses
     << " bytes_mapped_peak=" << system.bytes_mapped_peak;
  return os.str();
}

}  // namespace perf
}  // namespace numalab
