#include "src/advisor/advisor.h"

#include <sstream>

#include "src/workloads/workloads.h"

namespace numalab {
namespace advisor {

Advice Advise(const Situation& s) {
  Advice a;

  // "Is thread placement managed?" -> affinitize; Sparse if bandwidth-bound.
  if (!s.thread_placement_managed) {
    if (s.bandwidth_bound) {
      a.affinity = osmodel::Affinity::kSparse;
      a.steps.push_back(
          {"Affinitize thread placement with the Sparse strategy",
           "unpinned threads migrate, invalidate caches and drift away from "
           "their memory; spreading across nodes maximizes usable memory "
           "bandwidth (Fig. 3/4)"});
    } else {
      a.affinity = osmodel::Affinity::kDense;
      a.steps.push_back(
          {"Affinitize thread placement with the Dense strategy",
           "latency-bound work benefits from packing threads close together "
           "and sharing caches"});
    }
  } else {
    a.affinity = osmodel::Affinity::kSparse;  // keep whatever is managed
    a.steps.push_back({"Keep the application's existing thread placement",
                       "placement is already managed"});
  }

  // "Superuser access?" -> disable AutoNUMA and THP.
  if (s.superuser) {
    a.disable_autonuma = true;
    a.disable_thp = true;
    a.steps.push_back(
        {"Disable AutoNUMA (kernel.numa_balancing=0) and Transparent "
         "Hugepages",
         "their overhead dominates any locality gains for multi-threaded "
         "query processing (Fig. 5)"});
  }

  // "Memory placement defined?" -> optimize it (Interleave).
  if (!s.memory_placement_defined) {
    a.policy = mem::MemPolicy::kInterleave;
    if (s.superuser) {
      a.steps.push_back(
          {"Set the memory placement policy to Interleave (numactl -i all)",
           "spreads shared structures across all controllers; under First "
           "Touch they gravitate to the loader's node (Fig. 5a/6)"});
    } else {
      a.steps.push_back(
          {"Set the memory placement policy to Interleave (numactl -i all)",
           "without superuser access, Interleave also mostly offsets the "
           "damage AutoNUMA and THP would otherwise do (Fig. 5a)"});
    }
  } else {
    a.policy = mem::MemPolicy::kFirstTouch;
  }

  // "Allocation-heavy workload?" -> override the allocator.
  if (s.allocation_heavy) {
    if (s.free_memory_constrained) {
      a.allocator = "jemalloc";
      a.steps.push_back(
          {"Preload jemalloc (LD_PRELOAD=libjemalloc.so)",
           "near-tbbmalloc speed with the lowest memory overhead "
           "(Fig. 2b)"});
    } else {
      a.allocator = "tbbmalloc";
      a.steps.push_back(
          {"Preload tbbmalloc (LD_PRELOAD=libtbbmalloc.so)",
           "the most scalable allocator across workloads and machines "
           "(Fig. 2a/6)"});
    }
  } else {
    a.steps.push_back(
        {"Keep the default allocator",
         "few allocations on the hot path; placement matters more than "
         "allocation speed (W2, Fig. 6d-f)"});
  }

  return a;
}

std::string Advice::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < steps.size(); ++i) {
    os << i + 1 << ". " << steps[i].action << "\n     — "
       << steps[i].rationale << "\n";
  }
  return os.str();
}

workloads::RunConfig ApplyAdvice(const Advice& advice,
                                 workloads::RunConfig base) {
  base.affinity = advice.affinity;
  base.autonuma = !advice.disable_autonuma && base.autonuma;
  base.thp = !advice.disable_thp && base.thp;
  base.policy = advice.policy;
  base.allocator = advice.allocator;
  return base;
}

AutoTuneResult AutoTune(const workloads::RunConfig& base,
                        const Situation& situation) {
  AutoTuneResult result;

  // Probe at reduced size: the relative ordering is what matters.
  workloads::RunConfig probe = base;
  probe.num_records = std::min<uint64_t>(base.num_records, 400'000);
  probe.cardinality = std::max<uint64_t>(
      probe.num_records / 10, std::min<uint64_t>(base.cardinality, 40'000));

  result.best_cycles = UINT64_MAX;
  for (auto affinity : {osmodel::Affinity::kSparse, osmodel::Affinity::kDense}) {
    for (auto policy : {mem::MemPolicy::kFirstTouch,
                        mem::MemPolicy::kInterleave}) {
      for (const char* alloc : {"ptmalloc", "jemalloc", "tbbmalloc"}) {
        workloads::RunConfig c = probe;
        c.affinity = affinity;
        c.policy = policy;
        c.allocator = alloc;
        c.autonuma = !situation.superuser;  // stuck on without privileges
        c.thp = !situation.superuser;
        workloads::RunResult r = workloads::RunW1HolisticAggregation(c);
        ++result.evaluated;
        if (r.cycles < result.best_cycles) {
          result.best_cycles = r.cycles;
          result.best = c;
        }
      }
    }
  }

  Advice advice = Advise(situation);
  result.flowchart = ApplyAdvice(advice, probe);
  workloads::RunResult fr =
      workloads::RunW1HolisticAggregation(result.flowchart);
  result.flowchart_cycles = fr.cycles;
  return result;
}

}  // namespace advisor
}  // namespace numalab
