// The paper's application-agnostic decision flowchart (Fig. 10), encoded as
// an API, plus an empirical auto-tuner that validates the flowchart's
// recommendation by actually simulating candidate configurations.

#ifndef NUMALAB_ADVISOR_ADVISOR_H_
#define NUMALAB_ADVISOR_ADVISOR_H_

#include <string>
#include <vector>

#include "src/mem/page.h"
#include "src/osmodel/os_config.h"
#include "src/workloads/run_config.h"

namespace numalab {
namespace advisor {

/// \brief Answers to the flowchart's questions about the workload and the
/// operator's environment.
struct Situation {
  bool thread_placement_managed = false;  ///< app already pins threads?
  bool bandwidth_bound = true;            ///< memory-bandwidth limited?
  bool superuser = true;                  ///< can toggle AutoNUMA/THP?
  bool memory_placement_defined = false;  ///< numactl policy already set?
  bool allocation_heavy = true;           ///< many allocs on the hot path?
  bool free_memory_constrained = false;   ///< tight on RAM?
};

/// \brief One step of advice, in flowchart order.
struct Recommendation {
  std::string action;     ///< imperative, e.g. "Adopt Sparse affinity"
  std::string rationale;  ///< why, in the paper's terms
};

/// \brief The flowchart's full output for a situation.
struct Advice {
  std::vector<Recommendation> steps;
  /// The concrete configuration the steps amount to.
  osmodel::Affinity affinity = osmodel::Affinity::kSparse;
  bool disable_autonuma = false;
  bool disable_thp = false;
  mem::MemPolicy policy = mem::MemPolicy::kFirstTouch;
  std::string allocator = "ptmalloc";

  std::string ToString() const;
};

/// Walks Fig. 10 for the given situation.
Advice Advise(const Situation& situation);

/// Applies an Advice onto a RunConfig (keeping workload parameters).
workloads::RunConfig ApplyAdvice(const Advice& advice,
                                 workloads::RunConfig base);

/// \brief Empirical auto-tuner (extension beyond the paper): runs a small
/// probe workload through candidate configurations on the simulated
/// machine and returns the fastest, together with the flowchart pick for
/// comparison.
struct AutoTuneResult {
  workloads::RunConfig best;
  uint64_t best_cycles = 0;
  workloads::RunConfig flowchart;
  uint64_t flowchart_cycles = 0;
  int evaluated = 0;
};

AutoTuneResult AutoTune(const workloads::RunConfig& base,
                        const Situation& situation);

}  // namespace advisor
}  // namespace numalab

#endif  // NUMALAB_ADVISOR_ADVISOR_H_
