#include "src/osmodel/autonuma.h"

namespace numalab {
namespace osmodel {

void AutoNuma::Tick(uint64_t now) {
  if (engine_->live_threads() == 0) return;

  // Periodic PTE scan: re-arm the bounded hinting-fault wave.
  memsys_->ArmAutoNumaWave(1ULL << 40);  // scan continuously (worst case)

  // Task balancing: move each thread toward the node that served most of
  // its recent DRAM traffic. Pinned threads (Sparse/Dense) are respected,
  // as the kernel respects affinity masks.
  if (sched_->affinity() == Affinity::kNone) {
    for (const auto& t : engine_->threads()) {
      sim::VThread* vt = t.get();
      if (vt->state == sim::VThreadState::kDone) continue;
      const auto& traffic = memsys_->NodeTraffic(vt->id);
      uint64_t total = 0;
      int best = 0;
      for (int n = 0; n < machine_->num_nodes(); ++n) {
        total += traffic[static_cast<size_t>(n)];
        if (traffic[static_cast<size_t>(n)] >
            traffic[static_cast<size_t>(best)]) {
          best = n;
        }
      }
      int cur_node = machine_->NodeOfHwThread(vt->hw_thread);
      if (total >= 64 && best != cur_node &&
          traffic[static_cast<size_t>(best)] * 10 >= total * 6) {
        // >=60% of traffic goes to `best`: follow the memory. Pick the
        // least-loaded hardware thread there.
        int cpn = machine_->cores_per_node();
        int smt = machine_->smt_per_core();
        int base = best * cpn * smt;
        int target = base;
        for (int i = 0; i < cpn * smt; ++i) {
          if (sched_->hw_load()[static_cast<size_t>(base + i)] <
              sched_->hw_load()[static_cast<size_t>(target)]) {
            target = base + i;
          }
        }
        sched_->Migrate(vt, target);
      }
      memsys_->ResetNodeTraffic(vt->id);
    }
  }

  uint64_t when = std::max(now, engine_->MinLiveClock()) + period_;
  engine_->ScheduleEvent(when, [this, when] { Tick(when); });
}

}  // namespace osmodel
}  // namespace numalab
