// AutoNUMA (kernel numa_balancing) model.
//
// Two halves, as in the kernel:
//  * Page placement: NUMA-hinting faults are sampled on the DRAM access path
//    (MemSystem::SampleAutoNuma) and promote pages toward their accessors,
//    cost-oblivious — shared pages ping-pong between nodes.
//  * Task placement: this daemon periodically inspects each thread's DRAM
//    traffic per node and migrates the thread toward the node holding most
//    of its data (only when the user has not pinned threads).
//
// The paper's two criticisms are modelled faithfully: migrations are issued
// regardless of their cost, and locality is maximized with no regard for
// memory-controller contention.

#ifndef NUMALAB_OSMODEL_AUTONUMA_H_
#define NUMALAB_OSMODEL_AUTONUMA_H_

#include <cstdint>

#include "src/mem/mem_system.h"
#include "src/osmodel/thread_sched.h"
#include "src/sim/engine.h"

namespace numalab {
namespace osmodel {

class AutoNuma {
 public:
  AutoNuma(const topology::Machine* machine, sim::Engine* engine,
           mem::MemSystem* memsys, ThreadScheduler* sched)
      : machine_(machine), engine_(engine), memsys_(memsys), sched_(sched) {}

  /// Enables hinting-fault sampling and starts the task balancer.
  void Start() {
    memsys_->SetAutoNumaSampling(true);
    uint64_t when = period_;
    engine_->ScheduleEvent(when, [this, when] { Tick(when); });
  }

 private:
  void Tick(uint64_t now);

  const topology::Machine* machine_;
  sim::Engine* engine_;
  mem::MemSystem* memsys_;
  ThreadScheduler* sched_;
  uint64_t period_ = 4'000'000;
};

}  // namespace osmodel
}  // namespace numalab

#endif  // NUMALAB_OSMODEL_AUTONUMA_H_
