// Transparent Hugepages model (khugepaged + fault-path huge allocation).
//
// With THP enabled:
//  * SimOS::Touch is put into huge-fault mode: the first touch of an
//    untouched, 2M-aligned, fully-unbound run faults in the entire 2M page
//    at once, bound to one node (coarse placement, instant +2M RSS).
//  * This daemon (khugepaged) additionally walks mapped regions in the
//    background and collapses eligible 4K runs, injecting copy traffic and
//    stalling accessors — the churn that makes THP a net loss for
//    allocators that release memory eagerly (paper Fig. 5c).
//
// Note: huge-fault mode is modelled inside SimOS via Touch granularity; this
// file drives the collapse scan.

#ifndef NUMALAB_OSMODEL_THP_H_
#define NUMALAB_OSMODEL_THP_H_

#include <cstdint>

#include "src/mem/mem_system.h"
#include "src/sim/engine.h"

namespace numalab {
namespace osmodel {

class ThpDaemon {
 public:
  ThpDaemon(sim::Engine* engine, mem::MemSystem* memsys)
      : engine_(engine), memsys_(memsys) {}

  void Start() {
    uint64_t when = period_;
    engine_->ScheduleEvent(when, [this, when] { Tick(when); });
  }

 private:
  void Tick(uint64_t now);

  sim::Engine* engine_;
  mem::MemSystem* memsys_;
  uint64_t period_ = 3'000'000;
  uint64_t region_cursor_ = 0;
  static constexpr int kMaxCollapsesPerScan = 32;
};

}  // namespace osmodel
}  // namespace numalab

#endif  // NUMALAB_OSMODEL_THP_H_
