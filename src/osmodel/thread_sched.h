// Thread placement and the OS load-balancing scheduler model.
//
// With Sparse/Dense affinity, worker threads are pinned: placement is
// computed once and never changes (Section III-B of the paper).
//
// With Affinity::kNone the model mimics a general-purpose kernel scheduler:
// initial placement by two-choice load balancing from a seeded RNG, periodic
// rebalancing that moves a thread from the busiest to an idle hardware
// thread, and occasional "noise" migrations (wakeup/idle balancing, thermal
// spreading). Each migration flushes the thread's TLB, leaves its cache
// working set behind and charges a context-switch cost; temporary stacking
// of threads on one hardware thread divides their cycle rate. This is the
// machinery behind the paper's Fig. 3 (run-to-run variance) and Table III
// (33k migrations, +50% cache misses).

#ifndef NUMALAB_OSMODEL_THREAD_SCHED_H_
#define NUMALAB_OSMODEL_THREAD_SCHED_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/mem/mem_system.h"
#include "src/osmodel/os_config.h"
#include "src/sim/engine.h"
#include "src/topology/machine.h"

namespace numalab {
namespace osmodel {

class ThreadScheduler {
 public:
  ThreadScheduler(const topology::Machine* machine, sim::Engine* engine,
                  mem::MemSystem* memsys, Affinity affinity, uint64_t seed,
                  perf::SystemCounters* sys);

  /// Hardware thread for the i-th worker (i = 0, 1, ...).
  int Place(int worker_index);

  /// Registers a spawned worker for balancing/oversubscription accounting.
  void Register(sim::VThread* vt);

  /// Installs the periodic balancing events (only acts for kNone).
  void Start();

  /// Moves `vt` to hardware thread `hw` (used by the scheduler itself and by
  /// the AutoNUMA task balancer). Charges migration cost and flushes state.
  void Migrate(sim::VThread* vt, int hw);

  /// Number of managed threads currently on each hardware thread.
  const std::vector<int>& hw_load() const { return hw_load_; }

  Affinity affinity() const { return affinity_; }

 private:
  void BalanceTick(uint64_t now);
  void RecomputeScales();
  int LeastLoadedHw();

  const topology::Machine* machine_;
  sim::Engine* engine_;
  mem::MemSystem* memsys_;
  Affinity affinity_;
  Rng rng_;
  perf::SystemCounters* sys_;
  std::vector<sim::VThread*> managed_;
  std::vector<int> hw_load_;
  uint64_t balance_period_ = 2'000'000;  // ~1ms at 2GHz
};

}  // namespace osmodel
}  // namespace numalab

#endif  // NUMALAB_OSMODEL_THREAD_SCHED_H_
