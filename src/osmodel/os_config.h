// Operating-system configuration knobs evaluated by the paper (Table IV).

#ifndef NUMALAB_OSMODEL_OS_CONFIG_H_
#define NUMALAB_OSMODEL_OS_CONFIG_H_

namespace numalab {
namespace osmodel {

/// \brief Thread placement strategy (Section III-B).
enum class Affinity {
  kNone,    ///< OS scheduler free to migrate threads (system default)
  kSparse,  ///< round-robin across NUMA nodes, maximizing bandwidth
  kDense,   ///< pack into as few sockets as possible
};

const char* AffinityName(Affinity a);

/// \brief Kernel feature toggles (Section III-D). Both default to on, as on
/// stock Linux distributions.
struct OsConfig {
  bool autonuma = true;              ///< kernel.numa_balancing
  bool transparent_hugepages = true; ///< THP "always"
  Affinity affinity = Affinity::kNone;
};

}  // namespace osmodel
}  // namespace numalab

#endif  // NUMALAB_OSMODEL_OS_CONFIG_H_
