#include "src/osmodel/thp.h"

#include "src/mem/cost_model.h"

namespace numalab {
namespace osmodel {

void ThpDaemon::Tick(uint64_t now) {
  if (engine_->live_threads() == 0) return;

  mem::SimOS* os = memsys_->os();
  int collapsed = 0;

  // Round-robin over regions, starting after the last visited base.
  const auto& regions = os->regions();
  if (!regions.empty()) {
    auto it = regions.upper_bound(region_cursor_);
    size_t visited = 0;
    while (visited < regions.size() && collapsed < kMaxCollapsesPerScan) {
      if (it == regions.end()) it = regions.begin();
      mem::Region* r = it->second;
      if (r->thp_eligible) {
        size_t runs = r->pages.size() / mem::kSmallPagesPerHuge;
        for (size_t run = 0; run < runs && collapsed < kMaxCollapsesPerScan;
             ++run) {
          if (os->TryCollapseHuge(r, run * mem::kSmallPagesPerHuge, now)) {
            ++collapsed;
          }
        }
      }
      region_cursor_ = r->base;
      ++it;
      ++visited;
    }
  }

  uint64_t when = std::max(now, engine_->MinLiveClock()) + period_;
  engine_->ScheduleEvent(when, [this, when] { Tick(when); });
}

}  // namespace osmodel
}  // namespace numalab
