#include "src/osmodel/thread_sched.h"

#include <algorithm>

#include "src/sim/sync.h"

namespace numalab {
namespace osmodel {

const char* AffinityName(Affinity a) {
  switch (a) {
    case Affinity::kNone: return "None";
    case Affinity::kSparse: return "Sparse";
    case Affinity::kDense: return "Dense";
  }
  return "?";
}

ThreadScheduler::ThreadScheduler(const topology::Machine* machine,
                                 sim::Engine* engine, mem::MemSystem* memsys,
                                 Affinity affinity, uint64_t seed,
                                 perf::SystemCounters* sys)
    : machine_(machine),
      engine_(engine),
      memsys_(memsys),
      affinity_(affinity),
      rng_(seed),
      sys_(sys),
      hw_load_(static_cast<size_t>(machine->num_hw_threads()), 0) {}

int ThreadScheduler::Place(int worker_index) {
  int nodes = machine_->num_nodes();
  int cpn = machine_->cores_per_node();
  int smt = machine_->smt_per_core();
  int total = machine_->num_hw_threads();

  switch (affinity_) {
    case Affinity::kSparse: {
      // Round-robin across nodes; within a node use every core before any
      // SMT sibling, maximizing the memory controllers in play.
      int i = worker_index % total;
      int node = i % nodes;
      int r = i / nodes;
      int core_in_node = r % cpn;
      int smt_slot = (r / cpn) % smt;
      return (node * cpn + core_in_node) * smt + smt_slot;
    }
    case Affinity::kDense: {
      // Pack into as few sockets as possible: fill every core of node 0
      // (one thread per core), then its SMT slots, then node 1, ...
      int i = worker_index % total;
      int per_node = cpn * smt;
      int node = i / per_node;
      int r = i % per_node;
      int smt_slot = r / cpn;
      int core_in_node = r % cpn;
      return (node * cpn + core_in_node) * smt + smt_slot;
    }
    case Affinity::kNone: {
      // Two-choice placement by the wakeup balancer: decent on average but
      // can stack threads, and nothing keeps them where their data is.
      int a = static_cast<int>(rng_.Uniform(static_cast<uint64_t>(total)));
      int b = static_cast<int>(rng_.Uniform(static_cast<uint64_t>(total)));
      return hw_load_[static_cast<size_t>(a)] <=
                     hw_load_[static_cast<size_t>(b)]
                 ? a
                 : b;
    }
  }
  return 0;
}

void ThreadScheduler::Register(sim::VThread* vt) {
  managed_.push_back(vt);
  hw_load_[static_cast<size_t>(vt->hw_thread)]++;
  RecomputeScales();
}

void ThreadScheduler::Start() {
  if (affinity_ != Affinity::kNone) return;
  uint64_t when = balance_period_;
  engine_->ScheduleEvent(when, [this, when] { BalanceTick(when); });
}

int ThreadScheduler::LeastLoadedHw() {
  int best = 0;
  for (int i = 1; i < static_cast<int>(hw_load_.size()); ++i) {
    if (hw_load_[static_cast<size_t>(i)] < hw_load_[static_cast<size_t>(best)])
      best = i;
  }
  return best;
}

void ThreadScheduler::Migrate(sim::VThread* vt, int hw) {
  if (vt->state == sim::VThreadState::kDone || vt->hw_thread == hw) return;
  hw_load_[static_cast<size_t>(vt->hw_thread)]--;
  vt->hw_thread = hw;
  hw_load_[static_cast<size_t>(hw)]++;
  vt->Charge(memsys_->costs().thread_migration_cycles);
  ++vt->counters.thread_migrations;
  memsys_->OnThreadMigrated(machine_->CoreOfHwThread(hw));
  RecomputeScales();
}

void ThreadScheduler::RecomputeScales() {
  // A hardware thread with k runnable threads gives each 1/k of its cycles;
  // a busy SMT sibling costs a further ~40%.
  int smt = machine_->smt_per_core();
  for (sim::VThread* vt : managed_) {
    if (vt->state == sim::VThreadState::kDone) continue;
    int load = std::max(1, hw_load_[static_cast<size_t>(vt->hw_thread)]);
    double scale = static_cast<double>(load);
    if (smt > 1) {
      int core = machine_->CoreOfHwThread(vt->hw_thread);
      for (int s = 0; s < smt; ++s) {
        int sibling = core * smt + s;
        if (sibling != vt->hw_thread &&
            hw_load_[static_cast<size_t>(sibling)] > 0) {
          scale *= 1.4;
          break;
        }
      }
    }
    vt->cycle_scale = scale;
  }
}

void ThreadScheduler::BalanceTick(uint64_t now) {
  int live = 0;
  for (sim::VThread* vt : managed_) {
    if (vt->state != sim::VThreadState::kDone) ++live;
  }
  if (live == 0) return;  // run over; stop rescheduling

  // Periodic load balancing: pull a thread off the busiest hardware thread.
  int busiest = 0;
  for (int i = 1; i < static_cast<int>(hw_load_.size()); ++i) {
    if (hw_load_[static_cast<size_t>(i)] >
        hw_load_[static_cast<size_t>(busiest)])
      busiest = i;
  }
  if (hw_load_[static_cast<size_t>(busiest)] > 1) {
    for (sim::VThread* vt : managed_) {
      if (vt->state != sim::VThreadState::kDone && vt->hw_thread == busiest) {
        Migrate(vt, LeastLoadedHw());
        ++sys_->balancer_migrations;
        break;
      }
    }
  }

  // Noise migrations: wakeup balancing, idle stealing, interrupts landing on
  // loaded CPUs. Each tick, every thread has a small chance of being moved
  // somewhere it did not choose — sometimes onto an occupied hw thread.
  for (sim::VThread* vt : managed_) {
    if (vt->state == sim::VThreadState::kDone) continue;
    if (rng_.Bernoulli(0.13)) {
      int target;
      if (rng_.Bernoulli(0.75)) {
        target = LeastLoadedHw();
      } else {
        target = static_cast<int>(
            rng_.Uniform(static_cast<uint64_t>(machine_->num_hw_threads())));
      }
      Migrate(vt, target);
      ++sys_->balancer_migrations;
    }
  }

  // Advance strictly from this tick's time: the balancer runs on wall time,
  // not on the laggard thread's clock (which may be parked at a barrier).
  uint64_t when = std::max(now, engine_->MinLiveClock()) + balance_period_;
  engine_->ScheduleEvent(when, [this, when] { BalanceTick(when); });
}

}  // namespace osmodel
}  // namespace numalab
