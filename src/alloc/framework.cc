#include "src/alloc/framework.h"

#include "src/topology/machine.h"

namespace numalab {
namespace alloc {

std::pair<mem::Region*, uint64_t> BackingSource::Take(AllocEnv* env,
                                                      uint64_t bytes) {
  uint64_t len = (bytes + mem::kSmallPageBytes - 1) &
                 ~(mem::kSmallPageBytes - 1);
  NUMALAB_CHECK(len <= kRegionBytes);
  if (current_ == nullptr || offset_ + len > current_->len) {
    mem::Region* fresh = env->os->TryMap(kRegionBytes);
    if (fresh == nullptr) return {nullptr, 0};
    current_ = fresh;
    env->Charge(env->costs->syscall_cycles);
    offset_ = 0;
  }
  uint64_t off = offset_;
  offset_ += len;
  return {current_, off};
}

void* ClassPool::Carve(AllocEnv* env, const topology::Machine& machine,
                       int cls, size_t chunk_bytes, uint32_t owner,
                       BackingSource* backing) {
  size_t stride = sizeof(ObjHeader) + SizeClasses::ClassSize(cls);
  NUMALAB_CHECK(stride <= chunk_bytes);

  if (chunks_head_ == nullptr ||
      chunks_head_->bump + stride > chunks_head_->end) {
    auto [region, off] = backing->Take(env, chunk_bytes);
    if (region == nullptr) return nullptr;
    auto* chunk = new Chunk();
    chunk->region = region;
    chunk->base = region->host + off;
    chunk->bump = chunk->base;
    chunk->end = chunk->base + chunk_bytes;
    chunk->cls = cls;
    chunk->next = chunks_head_;
    chunks_head_ = chunk;
    ++nchunks_;
  }

  Chunk* chunk = chunks_head_;
  char* raw = chunk->bump;
  chunk->bump += stride;
  ++chunk->carved;
  ++chunk->live;

  // Writing the header is the first touch of these pages: they become
  // resident and (under first-touch) bound to the carving thread's node.
  int node = env->CurNode(machine);
  uint64_t first = (reinterpret_cast<uint64_t>(raw) - chunk->region->base) /
                   mem::kSmallPageBytes;
  uint64_t last =
      (reinterpret_cast<uint64_t>(raw) + stride - 1 - chunk->region->base) /
      mem::kSmallPageBytes;
  for (uint64_t i = first; i <= last; ++i) {
    env->os->Touch(chunk->region, i, node);
  }

  auto* hdr = reinterpret_cast<ObjHeader*>(raw);
  hdr->cls = cls;
  hdr->owner = owner;
  hdr->chunk = chunk;
  return raw + sizeof(ObjHeader);
}

}  // namespace alloc
}  // namespace numalab
