// jemalloc model.
//
// Many arenas (4 x cores) with round-robin thread binding spread
// synchronization so arena locks are rarely contended; a per-thread tcache
// absorbs most operations entirely. jemalloc keeps fragmentation low
// (small, tightly packed chunks, lowest-address reuse) and *decays* dirty
// pages back to the OS aggressively — the eager MADV_DONTNEED behaviour
// that interacts badly with Transparent Hugepages (paper Fig. 5c).

#include "src/alloc/impls.h"

namespace numalab {
namespace alloc {
namespace {

constexpr uint64_t kTcacheHitCycles = 24;
constexpr uint64_t kTcacheFreeCycles = 18;
constexpr uint64_t kArenaWorkCycles = 60;
constexpr uint64_t kArenaHoldCycles = 70;
constexpr size_t kTcacheCap = 64;
constexpr int kTcacheFill = 8;
constexpr size_t kChunkBytes = 64ULL << 10;
constexpr uint64_t kDecayFrees = 4096;  // purge scan cadence

class JeMalloc : public SimAllocator {
 public:
  JeMalloc(AllocEnv env, const topology::Machine* m)
      : SimAllocator(env, m) {
    int narenas = 4 * m->num_cores();
    for (int i = 0; i < narenas; ++i) {
      arenas_.push_back(std::make_unique<Arena>());
    }
  }

  const char* name() const override { return "jemalloc"; }

 protected:
  // Large extents are cached but their pages decay (MADV_DONTNEED).
  LargePolicy large_policy() const override {
    return LargePolicy::kCachePurged;
  }

 protected:
  void* AllocSmall(int cls) override {
    int tid = env_.Tid();
    TCache& tc = PerTid(&tcaches_, tid);
    if (++ops_ % kDecayOps == 0) DecayAll();
    if (void* p = FreePop(&tc.bins[cls])) {
      env_.Charge(kTcacheHitCycles);
      return p;
    }

    uint32_t aid = ArenaIdFor(tid);
    Arena* arena = arenas_[aid].get();
    uint64_t wait = arena->lock.Acquire(env_.Now(), kArenaHoldCycles);
    env_.ChargeLockWait(wait);
    env_.Charge(kArenaWorkCycles);

    void* first = TakeFromArena(arena, aid, cls);
    for (int i = 0; first != nullptr && i < kTcacheFill; ++i) {
      void* extra = TakeFromArena(arena, aid, cls);
      if (extra == nullptr) break;  // backing exhausted mid-refill
      FreePush(&tc.bins[cls], extra);
    }
    return first;
  }

  void FreeSmall(void* p, int cls) override {
    int tid = env_.Tid();
    TCache& tc = PerTid(&tcaches_, tid);
    if (tc.bins[cls].count() < kTcacheCap) {
      env_.Charge(kTcacheFreeCycles);
      FreePush(&tc.bins[cls], p);
    } else {
      Arena* arena = arenas_[HeaderOf(p)->owner].get();
      uint64_t wait = arena->lock.Acquire(env_.Now(), kArenaHoldCycles / 2);
      env_.ChargeLockWait(wait);
      env_.Charge(kArenaWorkCycles / 2);
      FreePush(&arena->bins[cls], p);
      arena->frees_since_decay++;
      MaybeDecay(arena);
    }
  }

 private:
  struct Arena {
    sim::VirtualLock lock;
    FreeList bins[SizeClasses::kNumClasses];
    ClassPool pools[SizeClasses::kNumClasses];
    uint64_t frees_since_decay = 0;
  };
  struct TCache {
    FreeList bins[SizeClasses::kNumClasses];
  };

  uint32_t ArenaIdFor(int tid) {
    if (static_cast<size_t>(tid) >= tid_arena_.size()) {
      tid_arena_.resize(static_cast<size_t>(tid) + 1, -1);
    }
    int& slot = tid_arena_[static_cast<size_t>(tid)];
    if (slot < 0) {
      slot = next_arena_;
      next_arena_ = (next_arena_ + 1) % static_cast<int>(arenas_.size());
    }
    return static_cast<uint32_t>(slot);
  }

  void* TakeFromArena(Arena* arena, uint32_t aid, int cls) {
    if (void* p = FreePop(&arena->bins[cls])) return p;
    return arena->pools[cls].Carve(&env_, *machine_, cls, kChunkBytes, aid, &backing_);
  }

  void DecayAll() {
    for (auto& arena : arenas_) MaybeDecay(arena.get(), /*force=*/true);
  }

  // Dirty-page decay: release fully-free chunks' pages back to the OS.
  void MaybeDecay(Arena* arena, bool force = false) {
    if (!force && arena->frees_since_decay < kDecayFrees) return;
    arena->frees_since_decay = 0;
    uint64_t now = env_.Now();
    for (auto& pool : arena->pools) {
      for (Chunk* c = pool.chunk_list(); c != nullptr; c = c->next) {
        // Dirty-run decay: a mostly-dead chunk gets its pages returned
        // even though a few objects are still live (their pages simply
        // re-fault on next touch, as with real page-run purging).
        if (c->carved > 0 && c->live * 4 < c->carved) {
          env_.os->MadviseDontNeed(
              c->region, static_cast<uint64_t>(c->base - c->region->host),
              static_cast<uint64_t>(c->bump - c->base), now);
          env_.Charge(env_.costs->syscall_cycles);
        }
      }
    }
  }

  static constexpr uint64_t kDecayOps = 32768;
  std::vector<std::unique_ptr<Arena>> arenas_;
  std::vector<int> tid_arena_;
  int next_arena_ = 0;
  std::vector<std::unique_ptr<TCache>> tcaches_;
  uint64_t ops_ = 0;
};

}  // namespace

std::unique_ptr<SimAllocator> MakeJeMalloc(AllocEnv env,
                                           const topology::Machine* m) {
  return std::make_unique<JeMalloc>(env, m);
}

}  // namespace alloc
}  // namespace numalab
