// supermalloc model.
//
// One global set of per-class object folios guarded by what is effectively
// a single global critical section — hardware transactional memory when
// available, a pthread mutex otherwise. The critical section is kept very
// short (supermalloc prefetches everything it will need *before* entering),
// so single-threaded cost is fine; but every operation of every thread
// serializes on it, so throughput collapses as threads are added (the
// worst scaling line of Fig. 2a). Its one shared pool keeps the memory
// overhead among the lowest (Fig. 2b).

#include "src/alloc/impls.h"

namespace numalab {
namespace alloc {
namespace {

constexpr uint64_t kPrefetchCycles = 20;   // done outside the lock
constexpr uint64_t kCriticalHoldCycles = 10;
constexpr uint64_t kWorkCycles = 14;
constexpr size_t kChunkBytes = 1ULL << 20;

class SuperMalloc : public SimAllocator {
 public:
  SuperMalloc(AllocEnv env, const topology::Machine* m)
      : SimAllocator(env, m) {}

  const char* name() const override { return "supermalloc"; }

 protected:
  // HTM transactions do not bounce a lock cache line on conflict.
  static constexpr uint64_t kHtmRetryCycles = 40;

  void* AllocSmall(int cls) override {
    env_.Charge(kPrefetchCycles);
    uint64_t wait =
        global_.Acquire(env_.Now(), kCriticalHoldCycles, kHtmRetryCycles);
    env_.ChargeLockWait(wait);
    env_.Charge(kWorkCycles);
    if (void* p = FreePop(&bins_[cls])) return p;
    return pools_[cls].Carve(&env_, *machine_, cls, kChunkBytes, 0, &backing_);
  }

  void FreeSmall(void* p, int cls) override {
    env_.Charge(kPrefetchCycles);
    uint64_t wait =
        global_.Acquire(env_.Now(), kCriticalHoldCycles, kHtmRetryCycles);
    env_.ChargeLockWait(wait);
    env_.Charge(kWorkCycles);
    FreePush(&bins_[cls], p);
  }

 private:
  sim::VirtualLock global_;
  FreeList bins_[SizeClasses::kNumClasses];
  ClassPool pools_[SizeClasses::kNumClasses];
};

}  // namespace

std::unique_ptr<SimAllocator> MakeSuperMalloc(AllocEnv env,
                                              const topology::Machine* m) {
  return std::make_unique<SuperMalloc>(env, m);
}

}  // namespace alloc
}  // namespace numalab
