#include "src/alloc/allocator.h"

#include "src/faultlab/faultlab.h"

namespace numalab {
namespace alloc {

namespace {
// Direct-reclaim stall charged per infallible-Alloc retry of an injected
// failure (the kernel's "too small to fail" loop is not free).
constexpr uint64_t kReclaimStallCycles = 5000;
constexpr int kMaxAllocRetries = 64;
}  // namespace

void* SimAllocator::TryAlloc(size_t n) {
  if (n == 0) n = 1;
  sim::VThread* vt = env_.engine->current();
  uint64_t before = vt != nullptr ? vt->clock : 0;

  void* p;
  if (vt != nullptr && env_.faults != nullptr &&
      env_.faults->DrawAllocFailure()) {
    // Injected ENOMEM. Setup allocations (vt == nullptr) are exempt so a
    // plan cannot fail dataset construction before the run starts.
    p = nullptr;
  } else if (n > SizeClasses::kMaxSmall) {
    p = AllocLarge(n);
  } else {
    int cls = SizeClasses::ClassFor(n);
    p = AllocSmall(cls);
    if (p != nullptr) stats_.OnAlloc(SizeClasses::ClassSize(cls));
  }

  if (vt != nullptr) {
    ++vt->counters.alloc_calls;
    vt->counters.alloc_cycles += vt->clock - before;
  }
  return p;
}

void* SimAllocator::Alloc(size_t n) {
  void* p = TryAlloc(n);
  for (int i = 0; p == nullptr && i < kMaxAllocRetries; ++i) {
    env_.Charge(kReclaimStallCycles);
    p = TryAlloc(n);
  }
  NUMALAB_CHECK(p != nullptr &&
                "infallible allocation failed after bounded retries");
  return p;
}

void SimAllocator::Free(void* p) {
  if (p == nullptr) return;
  sim::VThread* vt = env_.engine->current();
  uint64_t before = vt != nullptr ? vt->clock : 0;

  ObjHeader* hdr = HeaderOf(p);
  if (hdr->cls == ObjHeader::kLargeClass) {
    FreeLarge(p);
  } else {
    stats_.OnFree(SizeClasses::ClassSize(hdr->cls));
    FreeSmall(p, hdr->cls);
  }

  if (vt != nullptr) {
    ++vt->counters.free_calls;
    vt->counters.alloc_cycles += vt->clock - before;
  }
}

namespace {
constexpr uint64_t kLargeGranule = 64ULL << 10;
constexpr uint64_t kLargeCacheHitCycles = 320;
constexpr uint64_t kLargeCachePutCycles = 240;

uint64_t LargeKey(size_t payload) {
  return (payload + sizeof(ObjHeader) + kLargeGranule - 1) &
         ~(kLargeGranule - 1);
}
}  // namespace

void* SimAllocator::AllocLarge(size_t n) {
  uint64_t key = LargeKey(n);
  mem::Region* region = nullptr;
  if (large_policy() != LargePolicy::kMmapEveryTime) {
    auto it = large_cache_.find(key);
    if (it != large_cache_.end() && !it->second.empty()) {
      region = it->second.back();
      it->second.pop_back();
      env_.Charge(kLargeCacheHitCycles);
    }
  }
  if (region == nullptr) {
    region = env_.os->TryMap(key);
    if (region == nullptr) return nullptr;
    env_.Charge(env_.costs->syscall_cycles);
  }
  auto* hdr = reinterpret_cast<ObjHeader*>(region->host);
  hdr->cls = ObjHeader::kLargeClass;
  hdr->owner = 0;
  hdr->chunk = nullptr;
  void* payload = region->host + sizeof(ObjHeader);
  large_[payload] = LargeObj{region, n};
  stats_.OnAlloc(n);
  return payload;
}

void SimAllocator::FreeLarge(void* p) {
  auto it = large_.find(p);
  NUMALAB_CHECK(it != large_.end());
  stats_.OnFree(it->second.size);
  mem::Region* region = it->second.region;
  switch (large_policy()) {
    case LargePolicy::kMmapEveryTime: {
      env_.os->Unmap(region);
      // munmap sends TLB-shootdown IPIs to every core running a thread of
      // the process — the hidden cost of the glibc large-block slow path.
      uint64_t ipis = static_cast<uint64_t>(env_.engine->live_threads());
      env_.Charge(env_.costs->syscall_cycles + 1200 * ipis);
      break;
    }
    case LargePolicy::kCachePurged:
      // Keep the mapping, return the pages (decay/scavenge behaviour).
      env_.os->MadviseDontNeed(region, 0, region->len, env_.Now());
      env_.Charge(env_.costs->syscall_cycles);
      large_cache_[region->len].push_back(region);
      break;
    case LargePolicy::kCache:
      env_.Charge(kLargeCachePutCycles);
      large_cache_[region->len].push_back(region);
      break;
  }
  large_.erase(it);
}

}  // namespace alloc
}  // namespace numalab
