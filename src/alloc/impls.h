// Internal factories for the concrete allocator models. Users go through
// MakeAllocator (allocator.h).

#ifndef NUMALAB_ALLOC_IMPLS_H_
#define NUMALAB_ALLOC_IMPLS_H_

#include <memory>
#include <vector>

#include "src/alloc/allocator.h"

namespace numalab {
namespace alloc {

std::unique_ptr<SimAllocator> MakePtMalloc(AllocEnv env,
                                           const topology::Machine* m);
std::unique_ptr<SimAllocator> MakeJeMalloc(AllocEnv env,
                                           const topology::Machine* m);
std::unique_ptr<SimAllocator> MakeTcMalloc(AllocEnv env,
                                           const topology::Machine* m);
std::unique_ptr<SimAllocator> MakeHoard(AllocEnv env,
                                        const topology::Machine* m);
std::unique_ptr<SimAllocator> MakeTbbMalloc(AllocEnv env,
                                            const topology::Machine* m);
std::unique_ptr<SimAllocator> MakeSuperMalloc(AllocEnv env,
                                              const topology::Machine* m);
std::unique_ptr<SimAllocator> MakeMcMalloc(AllocEnv env,
                                           const topology::Machine* m);

/// Grows `v` on demand and returns the per-thread slot for `tid`.
template <typename T>
T& PerTid(std::vector<std::unique_ptr<T>>* v, int tid) {
  if (static_cast<size_t>(tid) >= v->size()) {
    v->resize(static_cast<size_t>(tid) + 1);
  }
  auto& slot = (*v)[static_cast<size_t>(tid)];
  if (!slot) slot = std::make_unique<T>();
  return *slot;
}

}  // namespace alloc
}  // namespace numalab

#endif  // NUMALAB_ALLOC_IMPLS_H_
