// tbbmalloc (Intel TBB scalable allocator) model.
//
// Strictly per-thread pools: the owner allocates from its own bins with no
// synchronization at all. A free by another thread pushes the object onto
// the owner's lock-free return list (one atomic push); the owner drains the
// list when its own bin runs dry. This makes tbbmalloc the best scaling
// allocator in the paper's microbenchmark, trading a little extra memory
// (per-thread slabs) for it. Its periodic pool cleanup returns fully-free
// slabs with MADV_DONTNEED, which puts it in the THP-hostile group of
// Fig. 5c.

#include "src/alloc/impls.h"

namespace numalab {
namespace alloc {
namespace {

constexpr uint64_t kOwnerAllocCycles = 22;
constexpr uint64_t kOwnerFreeCycles = 18;
constexpr uint64_t kRemoteFreeCycles = 34;  // one CAS push, no lock
constexpr uint64_t kDrainCycles = 45;
constexpr size_t kSlabBytes = 128ULL << 10;
constexpr uint64_t kCleanupFrees = 16384;

class TbbMalloc : public SimAllocator {
 public:
  TbbMalloc(AllocEnv env, const topology::Machine* m)
      : SimAllocator(env, m) {}

  const char* name() const override { return "tbbmalloc"; }

 protected:
  void* AllocSmall(int cls) override {
    int tid = env_.Tid();
    Pool& pool = PerTid(&pools_, tid);
    if (++ops_ % kCleanupFrees == 0) MaybeCleanup(&pool, /*force=*/true);
    if (void* p = FreePop(&pool.bins[cls])) {
      env_.Charge(kOwnerAllocCycles);
      return p;
    }
    // Drain the lock-free return list before carving fresh memory.
    if (!pool.returned[cls].empty()) {
      env_.Charge(kDrainCycles);
      while (void* p = FreePop(&pool.returned[cls])) {
        FreePush(&pool.bins[cls], p);
      }
      env_.Charge(kOwnerAllocCycles);
      return FreePop(&pool.bins[cls]);
    }
    env_.Charge(kOwnerAllocCycles);
    return pool.slabs[cls].Carve(&env_, *machine_, cls, kSlabBytes,
                                 static_cast<uint32_t>(tid), &backing_);
  }

  void FreeSmall(void* p, int cls) override {
    int tid = env_.Tid();
    int owner = static_cast<int>(HeaderOf(p)->owner);
    if (owner == tid) {
      env_.Charge(kOwnerFreeCycles);
      Pool& pool = PerTid(&pools_, tid);
      FreePush(&pool.bins[cls], p);
      MaybeCleanup(&pool);
    } else {
      env_.Charge(kRemoteFreeCycles);
      Pool& pool = PerTid(&pools_, owner);
      FreePush(&pool.returned[cls], p);
    }
  }

 private:
  struct Pool {
    FreeList bins[SizeClasses::kNumClasses];
    FreeList returned[SizeClasses::kNumClasses];  // lock-free mailbox
    ClassPool slabs[SizeClasses::kNumClasses];
    uint64_t frees = 0;
  };

  void MaybeCleanup(Pool* pool, bool force = false) {
    if (!force && ++pool->frees % kCleanupFrees != 0) return;
    uint64_t now = env_.Now();
    for (auto& slabs : pool->slabs) {
      for (Chunk* c = slabs.chunk_list(); c != nullptr; c = c->next) {
        // Dirty-run decay: a mostly-dead chunk gets its pages returned
        // even though a few objects are still live (their pages simply
        // re-fault on next touch, as with real page-run purging).
        if (c->carved > 0 && c->live * 4 < c->carved) {
          env_.os->MadviseDontNeed(
              c->region, static_cast<uint64_t>(c->base - c->region->host),
              static_cast<uint64_t>(c->bump - c->base), now);
          env_.Charge(env_.costs->syscall_cycles);
        }
      }
    }
  }

  std::vector<std::unique_ptr<Pool>> pools_;
  uint64_t ops_ = 0;
};

}  // namespace

std::unique_ptr<SimAllocator> MakeTbbMalloc(AllocEnv env,
                                            const topology::Machine* m) {
  return std::make_unique<TbbMalloc>(env, m);
}

}  // namespace alloc
}  // namespace numalab
