// ptmalloc (glibc malloc) model.
//
// Arenas protected by mutexes; when a thread finds its arena contended and
// the per-process arena limit (8 x cores) is not reached, it creates a new
// arena and rebinds — allocated memory never moves between arenas. A small
// per-thread cache (tcache, 64 entries per bin) short-circuits the arena on
// the fast path. glibc trims memory back to the OS only from the top of the
// heap, so for steady-state query workloads it effectively never calls
// MADV_DONTNEED — which is why THP is not particularly harmful to it.

#include "src/alloc/impls.h"

namespace numalab {
namespace alloc {
namespace {

constexpr uint64_t kTcacheHitCycles = 22;
constexpr uint64_t kTcacheFreeCycles = 16;
constexpr uint64_t kArenaWorkCycles = 60;   // bin bookkeeping under the lock
constexpr uint64_t kArenaHoldCycles = 90;   // critical-section length
constexpr uint64_t kContendedWaitThreshold = 350;
constexpr size_t kTcacheCap = 7;
constexpr int kTcacheFill = 7;
constexpr size_t kChunkBytes = 1ULL << 20;

class PtMalloc : public SimAllocator {
 public:
  PtMalloc(AllocEnv env, const topology::Machine* m)
      : SimAllocator(env, m),
        max_arenas_(static_cast<size_t>(8 * m->num_cores())) {
    arenas_.push_back(std::make_unique<Arena>());  // the main arena
  }

  const char* name() const override { return "ptmalloc"; }

 protected:
  // glibc mmaps/munmaps every block above the mmap threshold.
  LargePolicy large_policy() const override {
    return LargePolicy::kMmapEveryTime;
  }

 protected:
  void* AllocSmall(int cls) override {
    int tid = env_.Tid();
    TCache& tc = PerTid(&tcaches_, tid);
    if (void* p = FreePop(&tc.bins[cls])) {
      env_.Charge(kTcacheHitCycles);
      return p;
    }

    Arena* arena = ArenaFor(tid);
    uint64_t wait = arena->lock.Acquire(env_.Now(), kArenaHoldCycles);
    env_.ChargeLockWait(wait);
    env_.Charge(kArenaWorkCycles);
    if (wait > kContendedWaitThreshold && arenas_.size() < max_arenas_) {
      // Contention detected: spawn a fresh arena and rebind this thread.
      arenas_.push_back(std::make_unique<Arena>());
      tid_arena_[static_cast<size_t>(tid)] =
          static_cast<int>(arenas_.size() - 1);
      arena = arenas_.back().get();
    }

    void* first = TakeFromArena(arena, cls);
    for (int i = 0; first != nullptr && i < kTcacheFill; ++i) {
      void* extra = TakeFromArena(arena, cls);
      if (extra == nullptr) break;  // backing exhausted mid-refill
      FreePush(&tc.bins[cls], extra);
    }
    return first;
  }

  void FreeSmall(void* p, int cls) override {
    int tid = env_.Tid();
    TCache& tc = PerTid(&tcaches_, tid);
    if (tc.bins[cls].count() < kTcacheCap) {
      env_.Charge(kTcacheFreeCycles);
      FreePush(&tc.bins[cls], p);
      return;
    }
    // Overflow: return to the object's home arena under its lock.
    Arena* arena = arenas_[HeaderOf(p)->owner].get();
    uint64_t wait = arena->lock.Acquire(env_.Now(), kArenaHoldCycles);
    env_.ChargeLockWait(wait);
    env_.Charge(kArenaWorkCycles);  // chunk coalescing under the lock
    FreePush(&arena->bins[cls], p);
  }

 private:
  struct Arena {
    sim::VirtualLock lock;
    FreeList bins[SizeClasses::kNumClasses];
    ClassPool pools[SizeClasses::kNumClasses];
    BackingSource backing;  // arena-segregated address space (sbrk-style)
  };
  struct TCache {
    FreeList bins[SizeClasses::kNumClasses];
  };

  Arena* ArenaFor(int tid) {
    if (static_cast<size_t>(tid) >= tid_arena_.size()) {
      tid_arena_.resize(static_cast<size_t>(tid) + 1, 0);
    }
    return arenas_[static_cast<size_t>(
                       tid_arena_[static_cast<size_t>(tid)])].get();
  }

  void* TakeFromArena(Arena* arena, int cls) {
    if (void* p = FreePop(&arena->bins[cls])) return p;
    uint32_t arena_id = 0;
    for (size_t i = 0; i < arenas_.size(); ++i) {
      if (arenas_[i].get() == arena) arena_id = static_cast<uint32_t>(i);
    }
    return arena->pools[cls].Carve(&env_, *machine_, cls, kChunkBytes,
                                   arena_id, &arena->backing);
  }

  std::vector<std::unique_ptr<Arena>> arenas_;
  std::vector<int> tid_arena_;
  std::vector<std::unique_ptr<TCache>> tcaches_;
  size_t max_arenas_;
};

}  // namespace

std::unique_ptr<SimAllocator> MakePtMalloc(AllocEnv env,
                                           const topology::Machine* m) {
  return std::make_unique<PtMalloc>(env, m);
}

}  // namespace alloc
}  // namespace numalab
