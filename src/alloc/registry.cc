#include "src/alloc/allocator.h"
#include "src/alloc/impls.h"

namespace numalab {
namespace alloc {

const std::vector<std::string>& AllAllocatorNames() {
  static const std::vector<std::string> kNames = {
      "ptmalloc",  "jemalloc",    "tcmalloc", "hoard",
      "tbbmalloc", "supermalloc", "mcmalloc"};
  return kNames;
}

std::unique_ptr<SimAllocator> MakeAllocator(const std::string& name,
                                            AllocEnv env,
                                            const topology::Machine* m) {
  if (name == "ptmalloc") return MakePtMalloc(env, m);
  if (name == "jemalloc") return MakeJeMalloc(env, m);
  if (name == "tcmalloc") return MakeTcMalloc(env, m);
  if (name == "hoard") return MakeHoard(env, m);
  if (name == "tbbmalloc") return MakeTbbMalloc(env, m);
  if (name == "supermalloc") return MakeSuperMalloc(env, m);
  if (name == "mcmalloc") return MakeMcMalloc(env, m);
  NUMALAB_CHECK(false && "unknown allocator name");
  return nullptr;
}

}  // namespace alloc
}  // namespace numalab
