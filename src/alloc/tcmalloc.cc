// tcmalloc (gperftools) model.
//
// The fastest single-threaded path of the field: most operations touch only
// the per-thread cache. Misses go to *central free lists*, one per size
// class, each behind its own lock, moving objects in batches; spans are
// carved from a page heap behind a further global lock. Under heavy
// multi-threaded churn the hot classes' central locks and the page-heap
// lock serialize refills — the behaviour in Fig. 2a where tcmalloc wins at
// one thread and falls behind immediately after. Free spans are decommitted
// aggressively (MADV_DONTNEED), so THP hurts it (Fig. 5c).

#include "src/alloc/impls.h"

namespace numalab {
namespace alloc {
namespace {

constexpr uint64_t kFastAllocCycles = 6;   // cheapest fast path in the field
constexpr uint64_t kFastFreeCycles = 5;
constexpr uint64_t kCentralHoldCycles = 100;
constexpr uint64_t kCentralWorkCycles = 70;
constexpr uint64_t kPageHeapHoldCycles = 200;
constexpr size_t kTcacheCap = 128;
constexpr int kTransferBatch = 32;
constexpr size_t kChunkBytes = 256ULL << 10;
constexpr uint64_t kScavengeTransfers = 64;

class TcMalloc : public SimAllocator {
 public:
  TcMalloc(AllocEnv env, const topology::Machine* m) : SimAllocator(env, m) {}

  const char* name() const override { return "tcmalloc"; }

 protected:
  // The page heap caches spans but aggressively decommits them.
  LargePolicy large_policy() const override {
    return LargePolicy::kCachePurged;
  }

 protected:
  void* AllocSmall(int cls) override {
    int tid = env_.Tid();
    TCache& tc = PerTid(&tcaches_, tid);
    if (++ops_ % kScavengeOps == 0) {
      for (auto& central : central_) MaybeScavenge(&central, /*force=*/true);
    }
    if (void* p = FreePop(&tc.bins[cls])) {
      env_.Charge(kFastAllocCycles);
      return p;
    }

    // Refill a batch from the central free list for this class.
    Central& central = central_[cls];
    uint64_t wait = central.lock.Acquire(env_.Now(), kCentralHoldCycles);
    env_.ChargeLockWait(wait);
    env_.Charge(kCentralWorkCycles);

    void* first = TakeCentral(&central, cls);
    for (int i = 0; first != nullptr && i < kTransferBatch - 1; ++i) {
      void* extra = TakeCentral(&central, cls);
      if (extra == nullptr) break;  // backing exhausted mid-refill
      FreePush(&tc.bins[cls], extra);
    }
    MaybeScavenge(&central);
    return first;
  }

  void FreeSmall(void* p, int cls) override {
    int tid = env_.Tid();
    TCache& tc = PerTid(&tcaches_, tid);
    FreePush(&tc.bins[cls], p);
    env_.Charge(kFastFreeCycles);
    if (tc.bins[cls].count() <= kTcacheCap) return;

    // Cache overflow: move a batch back to the central list.
    Central& central = central_[cls];
    uint64_t wait = central.lock.Acquire(env_.Now(), kCentralHoldCycles);
    env_.ChargeLockWait(wait);
    env_.Charge(kCentralWorkCycles);
    for (int i = 0; i < kTransferBatch && !tc.bins[cls].empty(); ++i) {
      FreePush(&central.list, FreePop(&tc.bins[cls]));
    }
    MaybeScavenge(&central);
  }

 private:
  struct Central {
    sim::VirtualLock lock;
    FreeList list;
    ClassPool pool;
    uint64_t transfers = 0;
  };
  struct TCache {
    FreeList bins[SizeClasses::kNumClasses];
  };

  void* TakeCentral(Central* central, int cls) {
    if (void* p = FreePop(&central->list)) return p;
    // Span exhausted: the page heap hands out a new one under its own lock.
    uint64_t wait = pageheap_lock_.Acquire(env_.Now(), kPageHeapHoldCycles);
    env_.ChargeLockWait(wait);
    return central->pool.Carve(&env_, *machine_, cls, kChunkBytes, 0, &backing_);
  }

  // Periodic scavenging decommits spans that have gone fully free.
  void MaybeScavenge(Central* central, bool force = false) {
    if (!force && ++central->transfers % kScavengeTransfers != 0) return;
    uint64_t now = env_.Now();
    for (Chunk* c = central->pool.chunk_list(); c != nullptr; c = c->next) {
      // Dirty-run decay: a mostly-dead chunk gets its pages returned
        // even though a few objects are still live (their pages simply
        // re-fault on next touch, as with real page-run purging).
        if (c->carved > 0 && c->live * 4 < c->carved) {
        env_.os->MadviseDontNeed(
            c->region, static_cast<uint64_t>(c->base - c->region->host),
            static_cast<uint64_t>(c->bump - c->base), now);
        env_.Charge(env_.costs->syscall_cycles);
      }
    }
  }

  static constexpr uint64_t kScavengeOps = 32768;
  Central central_[SizeClasses::kNumClasses];
  sim::VirtualLock pageheap_lock_;
  uint64_t ops_ = 0;
  std::vector<std::unique_ptr<TCache>> tcaches_;
};

}  // namespace

std::unique_ptr<SimAllocator> MakeTcMalloc(AllocEnv env,
                                           const topology::Machine* m) {
  return std::make_unique<TcMalloc>(env, m);
}

}  // namespace alloc
}  // namespace numalab
