// SimAllocator — the interface the workloads allocate through, and the
// factory for the seven allocator models from the paper:
//
//   ptmalloc    — glibc default: arenas + mutexes, small thread cache
//   jemalloc    — many arenas, round-robin binding, tcache, eager decay
//   tcmalloc    — big thread caches, central per-class lists, spans
//   hoard       — hashed per-thread heaps + global hoard of superblocks
//   tbbmalloc   — per-thread pools, lock-free remote frees
//   supermalloc — one HTM-style global critical section per operation
//   mcmalloc    — per-thread dedicated pools, batched mappings
//
// See framework.h for what is real and what is modelled.

#ifndef NUMALAB_ALLOC_ALLOCATOR_H_
#define NUMALAB_ALLOC_ALLOCATOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/alloc/framework.h"
#include "src/topology/machine.h"

namespace numalab {
namespace alloc {

class SimAllocator {
 public:
  SimAllocator(AllocEnv env, const topology::Machine* machine)
      : env_(env), machine_(machine) {}
  virtual ~SimAllocator() = default;

  SimAllocator(const SimAllocator&) = delete;
  SimAllocator& operator=(const SimAllocator&) = delete;

  /// Allocates `n` bytes, 16-aligned. May return nullptr: under a faultlab
  /// plan on simulated ENOMEM injection, or when the simulated address
  /// space is exhausted. Workload code reaches this through Env::TryAlloc,
  /// which converts nullptr into a run Status.
  void* TryAlloc(size_t n);

  /// Infallible Alloc for setup paths and index internals ("too small to
  /// fail" kernel semantics): retries injected failures with a bounded
  /// reclaim stall, CHECK-fails if the failure is permanent. With
  /// alloc_fail_prob == 1.0 the retries cannot succeed, so fault tests
  /// exercising p=1 must stay on TryAlloc paths.
  void* Alloc(size_t n);

  /// Frees a pointer obtained from Alloc. nullptr is a no-op.
  void Free(void* p);

  virtual const char* name() const = 0;

  const AllocStats& stats() const { return stats_; }

  /// Resident bytes attributable to this run's heap (for the Fig. 2b
  /// overhead metric, resident / requested_peak).
  uint64_t ResidentBytes() const { return env_.os->resident_bytes(); }

 protected:
  virtual void* AllocSmall(int cls) = 0;
  virtual void FreeSmall(void* p, int cls) = 0;

  /// How the allocator treats blocks above the size-class range. glibc
  /// mmaps and munmaps them every time (the slow path the paper's MonetDB
  /// experiments suffer under); scalable allocators cache them, either
  /// keeping the pages (fast, memory-hungry) or returning them with
  /// MADV_DONTNEED (THP-churning but lean).
  enum class LargePolicy { kMmapEveryTime, kCache, kCachePurged };
  virtual LargePolicy large_policy() const { return LargePolicy::kCache; }

  void* AllocLarge(size_t n);
  void FreeLarge(void* p);

  AllocEnv env_;
  const topology::Machine* machine_;
  AllocStats stats_;
  BackingSource backing_;  ///< shared source of small-object chunks

 private:
  struct LargeObj {
    mem::Region* region;
    size_t size;
  };
  std::unordered_map<void*, LargeObj> large_;
  // Cached free large blocks, keyed by 64K-rounded region length.
  std::unordered_map<uint64_t, std::vector<mem::Region*>> large_cache_;
};

/// Names accepted by MakeAllocator, in the paper's order.
const std::vector<std::string>& AllAllocatorNames();

/// Creates the named allocator; CHECK-fails on unknown names.
std::unique_ptr<SimAllocator> MakeAllocator(const std::string& name,
                                            AllocEnv env,
                                            const topology::Machine* machine);

}  // namespace alloc
}  // namespace numalab

#endif  // NUMALAB_ALLOC_ALLOCATOR_H_
