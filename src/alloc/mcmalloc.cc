// mcmalloc model.
//
// Built for many-core machines: it minimizes kernel crossings by mapping
// memory in large batches and pre-carving entire chunks into per-thread
// dedicated pools for the frequently used size classes. The batch size is
// adapted to the observed thread count, so the committed-but-unused slack
// grows with every extra thread — the exploding memory overhead of
// Fig. 2b (1.1x at one thread to 6.6x at sixteen). Throughput is
// middle-of-the-road: a monitoring layer taxes every operation, and
// infrequent classes share a locked global pool.

#include "src/alloc/impls.h"

namespace numalab {
namespace alloc {
namespace {

constexpr uint64_t kMonitorCycles = 14;  // request-size bookkeeping
constexpr uint64_t kOwnerAllocCycles = 20;
constexpr uint64_t kOwnerFreeCycles = 16;
constexpr uint64_t kGlobalHoldCycles = 110;
constexpr uint64_t kGlobalWorkCycles = 70;
constexpr size_t kBatchBaseBytes = 56ULL << 10;
// A class becomes "frequent" (dedicated per-thread pool) after this many
// requests from one thread.
constexpr uint64_t kFrequentThreshold = 384;

class McMalloc : public SimAllocator {
 public:
  McMalloc(AllocEnv env, const topology::Machine* m) : SimAllocator(env, m) {}

  const char* name() const override { return "mcmalloc"; }

 protected:
  void* AllocSmall(int cls) override {
    int tid = env_.Tid();
    Pool& pool = PerTid(&pools_, tid);
    if (!pool.seen) {
      pool.seen = true;
      ++active_threads_;
    }
    env_.Charge(kMonitorCycles);
    ++pool.requests[cls];

    if (void* p = FreePop(&pool.bins[cls])) {
      env_.Charge(kOwnerAllocCycles);
      return p;
    }

    if (pool.requests[cls] >= kFrequentThreshold) {
      // Frequent class: map a whole adaptive batch and pre-carve it into
      // the dedicated pool (this is where the slack comes from).
      size_t batch = kBatchBaseBytes * static_cast<size_t>(active_threads_);
      size_t stride = sizeof(ObjHeader) + SizeClasses::ClassSize(cls);
      size_t count = std::max<size_t>(batch / stride, 1);
      env_.Charge(kOwnerAllocCycles);
      void* first = pool.dedicated[cls].Carve(&env_, *machine_, cls, batch,
                                              static_cast<uint32_t>(tid), &backing_);
      for (size_t i = 1; first != nullptr && i < count; ++i) {
        void* extra = pool.dedicated[cls].Carve(
            &env_, *machine_, cls, batch, static_cast<uint32_t>(tid),
            &backing_);
        if (extra == nullptr) break;  // backing exhausted mid-batch
        FreePush(&pool.bins[cls], extra);
      }
      return first;
    }

    // Infrequent class: size-segregated global pool behind a lock.
    uint64_t wait = global_lock_[cls].Acquire(env_.Now(), kGlobalHoldCycles);
    env_.ChargeLockWait(wait);
    env_.Charge(kGlobalWorkCycles);
    if (void* p = FreePop(&global_bins_[cls])) return p;
    return global_pools_[cls].Carve(&env_, *machine_, cls, kBatchBaseBytes,
                                    static_cast<uint32_t>(tid), &backing_);
  }

  void FreeSmall(void* p, int cls) override {
    int tid = env_.Tid();
    Pool& pool = PerTid(&pools_, tid);
    env_.Charge(kMonitorCycles + kOwnerFreeCycles);
    FreePush(&pool.bins[cls], p);
  }

 private:
  struct Pool {
    bool seen = false;
    uint64_t requests[SizeClasses::kNumClasses] = {0};
    FreeList bins[SizeClasses::kNumClasses];
    ClassPool dedicated[SizeClasses::kNumClasses];
  };

  std::vector<std::unique_ptr<Pool>> pools_;
  int active_threads_ = 0;
  sim::VirtualLock global_lock_[SizeClasses::kNumClasses];
  FreeList global_bins_[SizeClasses::kNumClasses];
  ClassPool global_pools_[SizeClasses::kNumClasses];
};

}  // namespace

std::unique_ptr<SimAllocator> MakeMcMalloc(AllocEnv env,
                                           const topology::Machine* m) {
  return std::make_unique<McMalloc>(env, m);
}

}  // namespace alloc
}  // namespace numalab
