// Shared machinery for the simulated dynamic memory allocators.
//
// The seven allocators the paper evaluates (Section III-A) are implemented
// as *working* size-class allocators: they really carve objects out of
// SimOS regions and serve them to the workloads, so correctness properties
// (no overlap, alignment, reuse-after-free hygiene) are testable. Their
// *performance* differences come from three modelled dimensions:
//
//  1. Synchronization topology — which VirtualLocks an operation crosses
//     (one global lock, per-arena, per-class central lists, per-thread
//     caches, lock-free remote-free lists...), charged in virtual cycles.
//  2. Pool geometry — chunk sizes, refill batches, per-thread dedication —
//     which drives the memory-overhead metric (resident / requested) and
//     page placement (which thread first touches a page).
//  3. OS interaction — how eagerly freed pages are returned with
//     MADV_DONTNEED, which is what makes Transparent Hugepages hurt some
//     allocators (Fig. 5c) and also forces re-faulting and re-binding.
//
// First-touch fidelity: carving a chunk writes free-list links into it, so
// pages become resident and NUMA-bound when the *allocator* first walks
// them — exactly as with a real malloc under the kernel's first-touch
// policy.

#ifndef NUMALAB_ALLOC_FRAMEWORK_H_
#define NUMALAB_ALLOC_FRAMEWORK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/logging.h"
#include "src/mem/cost_model.h"
#include "src/mem/sim_os.h"
#include "src/sim/engine.h"
#include "src/sim/sync.h"

namespace numalab {
namespace faultlab {
class FaultLab;
}  // namespace faultlab
namespace alloc {

/// \brief Everything an allocator needs from the simulation.
struct AllocEnv {
  sim::Engine* engine = nullptr;
  mem::SimOS* os = nullptr;
  const mem::CostModel* costs = nullptr;
  /// faultlab allocation-failure injection; null in no-fault runs.
  faultlab::FaultLab* faults = nullptr;

  sim::VThread* Cur() const { return engine->current(); }
  /// Virtual thread id of the caller; 0 when called outside a coroutine
  /// (setup code), which is also charged nothing.
  int Tid() const {
    sim::VThread* vt = engine->current();
    return vt != nullptr ? vt->id : 0;
  }
  uint64_t Now() const {
    sim::VThread* vt = engine->current();
    return vt != nullptr ? vt->clock : 0;
  }
  void Charge(uint64_t cycles) const {
    sim::VThread* vt = engine->current();
    if (vt != nullptr) vt->Charge(cycles);
  }
  void ChargeLockWait(uint64_t cycles) const {
    sim::VThread* vt = engine->current();
    if (vt != nullptr) {
      vt->Charge(cycles);
      vt->counters.lock_wait_cycles += cycles;
    }
  }
  int CurNode(const topology::Machine& m) const {
    sim::VThread* vt = engine->current();
    return vt != nullptr ? m.NodeOfHwThread(vt->hw_thread) : 0;
  }
};

/// \brief Size-class map shared by all allocators: 16 B .. 32 KiB in ~25%
/// geometric steps; larger requests go straight to SimOS::Map.
class SizeClasses {
 public:
  static constexpr size_t kMaxSmall = 32768;
  static constexpr int kNumClasses = 40;

  static size_t ClassSize(int c) { return kSizes[c]; }

  static int ClassFor(size_t n) {
    // Linear scan is fine: 40 entries, and the common small sizes exit in
    // the first few probes.
    for (int c = 0; c < kNumClasses; ++c) {
      if (kSizes[c] >= n) return c;
    }
    NUMALAB_CHECK(false && "ClassFor called with a large size");
    return -1;
  }

 private:
  static constexpr size_t kSizes[kNumClasses] = {
      16,    32,    48,    64,    80,    96,    112,   128,
      160,   192,   224,   256,   320,   384,   448,   512,
      640,   768,   896,   1024,  1280,  1536,  1792,  2048,
      2560,  3072,  3584,  4096,  5120,  6144,  7168,  8192,
      10240, 12288, 14336, 16384, 20480, 24576, 28672, 32768};
};

struct Chunk;

/// \brief Maps large (4 MiB) regions from SimOS and hands out sub-ranges.
/// All small-object chunks are carved from these, the way real allocators
/// subdivide big mmaps — which is what makes them interact with
/// Transparent Hugepages: a 2M-aligned run inside a backing region can be
/// faulted or collapsed huge, and an eager MADV_DONTNEED of a drained
/// chunk then has to split it.
class BackingSource {
 public:
  static constexpr uint64_t kRegionBytes = 4ULL << 20;

  /// Returns (region, offset) of a fresh `bytes` range (4K-aligned), or
  /// {nullptr, 0} when the simulated address space is exhausted (the
  /// current region is kept, so a later smaller Take can still succeed).
  std::pair<mem::Region*, uint64_t> Take(AllocEnv* env, uint64_t bytes);

 private:
  mem::Region* current_ = nullptr;
  uint64_t offset_ = 0;
};

/// \brief Header stored 16 bytes before every payload the allocators hand
/// out. Large (direct-mapped) objects use cls = kLargeClass.
struct ObjHeader {
  static constexpr int32_t kLargeClass = -1;
  int32_t cls;
  uint32_t owner;  ///< allocator-specific (thread id, arena id, heap id)
  Chunk* chunk;    ///< nullptr for large objects
};
static_assert(sizeof(ObjHeader) == 16, "header must preserve alignment");

/// \brief A run of memory carved from a Region for one size class.
struct Chunk {
  mem::Region* region = nullptr;
  char* base = nullptr;
  char* bump = nullptr;
  char* end = nullptr;
  int cls = 0;
  uint32_t live = 0;      ///< outstanding objects
  uint32_t carved = 0;    ///< objects ever carved
  Chunk* next = nullptr;  ///< allocator-managed chunk list
};

/// \brief Intrusive LIFO free list; the link lives in the payload.
class FreeList {
 public:
  void Push(void* p) {
    *reinterpret_cast<void**>(p) = head_;
    head_ = p;
    ++count_;
  }
  void* Pop() {
    if (head_ == nullptr) return nullptr;
    void* p = head_;
    head_ = *reinterpret_cast<void**>(p);
    --count_;
    return p;
  }
  size_t count() const { return count_; }
  bool empty() const { return head_ == nullptr; }

 private:
  void* head_ = nullptr;
  size_t count_ = 0;
};

/// \brief Returns the header for a payload pointer.
inline ObjHeader* HeaderOf(void* p) {
  return reinterpret_cast<ObjHeader*>(static_cast<char*>(p) -
                                      sizeof(ObjHeader));
}

/// Pushes a dead object onto a free list, maintaining its chunk's live
/// count (live == 0 makes the chunk purgeable).
inline void FreePush(FreeList* list, void* p) {
  --HeaderOf(p)->chunk->live;
  list->Push(p);
}

/// Pops an object back to life.
inline void* FreePop(FreeList* list) {
  void* p = list->Pop();
  if (p != nullptr) ++HeaderOf(p)->chunk->live;
  return p;
}

/// \brief Unsynchronized per-class object source: a chunk list with bump
/// carving. Owners wrap it with their own locking scheme.
class ClassPool {
 public:
  ClassPool() = default;
  ~ClassPool() {
    Chunk* c = chunks_head_;
    while (c != nullptr) {
      Chunk* next = c->next;
      delete c;  // the backing Region is owned and freed by SimOS
      c = next;
    }
  }
  ClassPool(const ClassPool&) = delete;
  ClassPool& operator=(const ClassPool&) = delete;
  ClassPool(ClassPool&& o) noexcept
      : chunks_head_(o.chunks_head_), nchunks_(o.nchunks_) {
    o.chunks_head_ = nullptr;
    o.nchunks_ = 0;
  }

  /// Carves one object (header + payload) for class `cls`; takes a new
  /// chunk of `chunk_bytes` from `backing` when the current one is
  /// exhausted. Marks newly crossed pages resident/bound (the free-link
  /// write is the first touch). Returns the payload pointer, or nullptr
  /// when the backing source cannot map a fresh chunk — allocator impls
  /// must propagate the nullptr (and never FreePush it).
  void* Carve(AllocEnv* env, const topology::Machine& machine, int cls,
              size_t chunk_bytes, uint32_t owner, BackingSource* backing);

  /// Number of chunks mapped so far.
  size_t chunks() const { return nchunks_; }

  /// True when the current chunk can serve one more object of this class
  /// without mapping (i.e. Carve will not need the OS or a global heap).
  bool HasSpace(int cls) const {
    size_t stride = sizeof(ObjHeader) + SizeClasses::ClassSize(cls);
    return chunks_head_ != nullptr &&
           chunks_head_->bump + stride <= chunks_head_->end;
  }

  Chunk* chunk_list() const { return chunks_head_; }

 private:
  Chunk* chunks_head_ = nullptr;
  size_t nchunks_ = 0;
};

/// \brief Statistics every allocator maintains.
struct AllocStats {
  uint64_t requested_live = 0;
  uint64_t requested_peak = 0;
  uint64_t allocs = 0;
  uint64_t frees = 0;

  void OnAlloc(uint64_t n) {
    ++allocs;
    requested_live += n;
    if (requested_live > requested_peak) requested_peak = requested_live;
  }
  void OnFree(uint64_t n) {
    ++frees;
    requested_live -= n;
  }
};

}  // namespace alloc
}  // namespace numalab

#endif  // NUMALAB_ALLOC_FRAMEWORK_H_
