// Hoard model.
//
// Threads hash into one of 2 x cores per-thread heaps built from 64 KiB
// superblocks; a global heap (the "hoard") backs them. Every operation
// takes its heap's lock, but with more heaps than threads contention is
// rare, so Hoard scales excellently (Fig. 2a) at the cost of slightly
// higher per-op constants and superblock slack (Fig. 2b). Hoard retains
// superblocks rather than returning pages eagerly, so THP is roughly
// neutral for it.

#include "src/alloc/impls.h"

namespace numalab {
namespace alloc {
namespace {

constexpr uint64_t kHeapWorkCycles = 34;
constexpr uint64_t kHeapHoldCycles = 45;
constexpr uint64_t kGlobalHoldCycles = 120;
constexpr size_t kSuperblockBytes = 64ULL << 10;

class Hoard : public SimAllocator {
 public:
  Hoard(AllocEnv env, const topology::Machine* m)
      : SimAllocator(env, m),
        heaps_(static_cast<size_t>(2 * m->num_cores())) {}

  const char* name() const override { return "hoard"; }

 protected:
  void* AllocSmall(int cls) override {
    uint32_t hid = HeapFor(env_.Tid());
    Heap& heap = heaps_[hid];
    uint64_t wait = heap.lock.Acquire(env_.Now(), kHeapHoldCycles);
    env_.ChargeLockWait(wait);
    env_.Charge(kHeapWorkCycles);

    if (void* p = FreePop(&heap.bins[cls])) return p;

    // Bump-fill from the heap's current superblock; the global hoard (and
    // its lock) is only involved when a *new* superblock must be acquired.
    if (!heap.pools[cls].HasSpace(cls)) {
      uint64_t gwait = global_lock_.Acquire(env_.Now(), kGlobalHoldCycles);
      env_.ChargeLockWait(gwait);
    }
    return heap.pools[cls].Carve(&env_, *machine_, cls, kSuperblockBytes,
                                 hid, &heap.backing);
  }

  void FreeSmall(void* p, int cls) override {
    // Objects return to the heap owning their superblock (prevents false
    // sharing — Hoard's signature property).
    uint32_t hid = HeaderOf(p)->owner;
    Heap& heap = heaps_[hid];
    uint64_t wait = heap.lock.Acquire(env_.Now(), kHeapHoldCycles);
    env_.ChargeLockWait(wait);
    env_.Charge(kHeapWorkCycles);
    FreePush(&heap.bins[cls], p);
  }

 private:
  struct Heap {
    sim::VirtualLock lock;
    FreeList bins[SizeClasses::kNumClasses];
    ClassPool pools[SizeClasses::kNumClasses];
    BackingSource backing;  // heap-segregated address space
  };

  uint32_t HeapFor(int tid) {
    // Hoard hashes tids to heaps; with 2x cores heaps collisions are rare,
    // so model the expected case: a private heap per thread (mod P).
    return static_cast<uint32_t>(tid) %
           static_cast<uint32_t>(heaps_.size());
  }

  std::vector<Heap> heaps_;
  sim::VirtualLock global_lock_;
};

}  // namespace

std::unique_ptr<SimAllocator> MakeHoard(AllocEnv env,
                                        const topology::Machine* m) {
  return std::make_unique<Hoard>(env, m);
}

}  // namespace alloc
}  // namespace numalab
