// Compile-time probes for the thread-safety (lock-contract) annotations in
// src/common/thread_annotations.h. Nothing here runs: the functions exist
// so that
//  * the plain GCC build proves the macros no-op cleanly on every compiler
//    we support (this file is part of libnumalab and builds with
//    -Wall -Wextra), and
//  * check.sh stage 10 can compile this one TU with clang and
//    -Werror=thread-safety, machine-checking the acquire/release balance
//    of the real lock surfaces it exercises: Env::LockAcquired/LockReleased
//    around a VirtualLock (including an early-return path, the shape of
//    ConcurrentHashTable::UpsertWith's OOM exit) and SimMutex Lock/Unlock
//    with a GUARDED_BY member.
//
// If an annotation on sync.h/env.h/hash_table.h ever becomes inconsistent,
// this TU is where clang reports it.

#include <cstdint>

#include "src/common/thread_annotations.h"
#include "src/index/hash_table.h"
#include "src/sim/sync.h"
#include "src/workloads/env.h"

namespace numalab {
namespace sanity {

/// The canonical VirtualLock critical section: Acquire models the timing,
/// the LockAcquired/LockReleased pair marks the section for both the race
/// detector (dynamic) and clang's analysis (static).
uint64_t ThreadSafetyProbeVirtualLock(workloads::Env& env,
                                      sim::VirtualLock& lock) {
  uint64_t wait = lock.Acquire(env.self->clock, /*hold=*/40);
  env.self->Charge(wait);
  env.LockAcquired(&lock);
  uint64_t acquires = lock.total_acquires;
  env.LockReleased(&lock);
  return wait + acquires;
}

/// Balanced early-return path — the UpsertWith OOM-exit shape. Deleting
/// either LockReleased call makes clang report an unbalanced capability.
bool ThreadSafetyProbeEarlyReturn(workloads::Env& env,
                                  sim::VirtualLock& lock, bool fail) {
  env.LockAcquired(&lock);
  if (fail) {
    env.LockReleased(&lock);
    return false;
  }
  env.LockReleased(&lock);
  return true;
}

/// SimMutex as a capability guarding a member. Add() is the full section;
/// the *Locked accessors state their precondition with NUMALAB_REQUIRES so
/// callers must already hold the mutex.
class ThreadSafetyProbeTally {
 public:
  explicit ThreadSafetyProbeTally(sim::Engine* engine) : mu_(engine) {}

  void Add(uint64_t d) NUMALAB_EXCLUDES(mu_) {
    mu_.Lock();  // contract probe only; real code must co_await Lock()
    total_ += d;
    mu_.Unlock();
  }
  void AddLocked(uint64_t d) NUMALAB_REQUIRES(mu_) { total_ += d; }
  uint64_t TotalLocked() const NUMALAB_REQUIRES(mu_) { return total_; }

 private:
  sim::SimMutex mu_;
  uint64_t total_ NUMALAB_GUARDED_BY(mu_) = 0;
};

/// Keeps the class above fully instantiated under -fsyntax-only.
uint64_t ThreadSafetyProbeTallyUse(sim::Engine* engine) {
  ThreadSafetyProbeTally t(engine);
  t.Add(1);
  return sizeof(t);
}

}  // namespace sanity
}  // namespace numalab
