#include "src/sanity/race_detector.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace numalab {
namespace sanity {

namespace {

/// Word-mask of an access to [lo, hi) clipped to the line holding `lo`
/// (both slab-relative byte addresses; hi > lo).
uint8_t WordMask(uint64_t line, uint64_t lo, uint64_t hi) {
  uint64_t base = line * kShadowLineBytes;
  uint64_t first = (std::max(lo, base) - base) / kShadowWordBytes;
  uint64_t last =
      (std::min(hi, base + kShadowLineBytes) - 1 - base) / kShadowWordBytes;
  uint8_t mask = 0;
  for (uint64_t w = first; w <= last; ++w) mask |= static_cast<uint8_t>(1u << w);
  return mask;
}

void GrowTo(std::vector<uint32_t>* vc, size_t n) {
  if (vc->size() < n) vc->resize(n, 0);
}

}  // namespace

RaceDetector::RaceDetector() {
  // Slot 0 is the root/setup context; it exists from the start.
  clocks_.emplace_back();
  clocks_[0].push_back(1);
  names_.emplace_back("setup");
}

RaceDetector::~RaceDetector() = default;

RaceDetector::VC& RaceDetector::ClockOf(size_t sid) {
  if (clocks_.size() <= sid) {
    clocks_.resize(sid + 1);
    names_.resize(sid + 1);
  }
  VC& c = clocks_[sid];
  GrowTo(&c, sid + 1);
  if (c[sid] == 0) c[sid] = 1;
  return c;
}

RaceDetector::Epoch RaceDetector::CurrentEpoch(size_t sid) {
  VC& c = ClockOf(sid);
  return MakeEpoch(sid, c[sid]);
}

bool RaceDetector::EpochLeq(Epoch e, const VC& c) const {
  size_t sid = EpochSid(e);
  uint32_t have = sid < c.size() ? c[sid] : 0;
  return EpochClk(e) <= have;
}

void RaceDetector::Join(VC* into, const VC& from) {
  GrowTo(into, from.size());
  for (size_t i = 0; i < from.size(); ++i) {
    (*into)[i] = std::max((*into)[i], from[i]);
  }
}

void RaceDetector::OnThreadStart(int tid, const std::string& name,
                                 int parent_tid) {
  size_t sid = Sid(tid);
  size_t psid = Sid(parent_tid);
  ClockOf(sid);  // may reallocate clocks_
  VC parent = ClockOf(psid);
  Join(&clocks_[sid], parent);
  clocks_[sid][sid] = std::max<uint32_t>(clocks_[sid][sid], 1);
  names_[sid] = name;
  // The parent's later work is concurrent with the child.
  clocks_[psid][psid]++;
}

void RaceDetector::OnThreadFinish(int tid) {
  VC child = ClockOf(Sid(tid));
  Join(&ClockOf(0), child);
}

void RaceDetector::OnAcquire(int tid, const void* sync) {
  auto it = sync_vc_.find(sync);
  if (it == sync_vc_.end()) return;  // never released: no edge yet
  Join(&ClockOf(Sid(tid)), it->second);
}

void RaceDetector::OnRelease(int tid, const void* sync) {
  size_t sid = Sid(tid);
  VC& c = ClockOf(sid);
  sync_vc_[sync] = c;
  c[sid]++;
}

void RaceDetector::OnBarrier(const void* barrier,
                             const std::vector<int>& tids) {
  VC joined = sync_vc_[barrier];
  for (int tid : tids) {
    VC c = ClockOf(Sid(tid));
    Join(&joined, c);
  }
  sync_vc_[barrier] = joined;
  for (int tid : tids) {
    size_t sid = Sid(tid);
    ClockOf(sid);
    clocks_[sid] = joined;
    GrowTo(&clocks_[sid], sid + 1);
    clocks_[sid][sid]++;
  }
}

void RaceDetector::OnAlloc(int tid, uint64_t sim_addr, uint64_t bytes,
                           uint64_t vclock) {
  if (bytes == 0) return;
  ClearRange(sim_addr, bytes);
  // Drop allocation records overlapping the new block (address reuse).
  auto it = allocs_.upper_bound(sim_addr);
  if (it != allocs_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.bytes > sim_addr) it = prev;
  }
  while (it != allocs_.end() && it->first < sim_addr + bytes) {
    it = allocs_.erase(it);
  }
  allocs_[sim_addr] = AllocInfo{bytes, tid, vclock};
}

void RaceDetector::ClearRange(uint64_t sim_addr, uint64_t bytes) {
  uint64_t end = sim_addr + bytes;
  uint64_t first = sim_addr / kShadowLineBytes;
  uint64_t last = (end - 1) / kShadowLineBytes;
  for (uint64_t line = first; line <= last; ++line) {
    uint64_t base = line * kShadowLineBytes;
    if (sim_addr <= base && base + kShadowLineBytes <= end) {
      shadow_.erase(line);
      continue;
    }
    auto it = shadow_.find(line);
    if (it == shadow_.end()) continue;
    // Partial overlap: refine so only the covered words forget history.
    if (!it->second.words) Promote(&it->second);
    uint8_t mask = WordMask(line, sim_addr, end);
    for (int w = 0; w < kWordsPerLine; ++w) {
      if (mask & (1u << w)) (*it->second.words)[w] = AccessState{};
    }
  }
}

void RaceDetector::Promote(LineShadow* ls) {
  ls->words = std::make_unique<std::array<AccessState, kWordsPerLine>>();
  for (int w = 0; w < kWordsPerLine; ++w) {
    AccessState& st = (*ls->words)[w];
    if (ls->w_mask & (1u << w)) {
      st.w_epoch = ls->line.w_epoch;
      st.w_vclock = ls->line.w_vclock;
    }
    if (ls->r_mask & (1u << w)) {
      st.r_epoch = ls->line.r_epoch;
      st.r_vclock = ls->line.r_vclock;
      if (ls->line.r_vc) st.r_vc = std::make_unique<VC>(*ls->line.r_vc);
    }
  }
  ls->line = AccessState{};
  ls->w_mask = 0;
  ls->r_mask = 0;
}

bool RaceDetector::CheckGranule(AccessState* st, uint8_t* w_mask,
                                uint8_t* r_mask, uint64_t line, int word,
                                size_t sid, uint8_t mask, bool write,
                                uint64_t vclock) {
  const bool refined = word >= 0;  // word granularity: overlap is certain
  Epoch e = CurrentEpoch(sid);
  VC& c = clocks_[sid];
  bool reported = false;
  bool need_refine = false;

  auto conflict = [&](uint8_t prior_mask, Epoch prior, bool prior_write,
                      uint64_t prior_vclock) {
    if (refined || (prior_mask & mask) != 0) {
      ReportRace(line, word, sid, write, vclock, prior, prior_write,
                 prior_vclock);
      reported = true;
    } else {
      need_refine = true;
    }
  };

  if (write) {
    if (st->w_epoch == e) {  // same-epoch fast path
      if (!refined) *w_mask |= mask;
      st->w_vclock = vclock;
      return true;
    }
    if (st->r_vc) {
      const VC& rvc = *st->r_vc;
      for (size_t s = 0; s < rvc.size(); ++s) {
        uint32_t have = s < c.size() ? c[s] : 0;
        if (rvc[s] > have) {
          conflict(r_mask ? *r_mask : 0xFF, MakeEpoch(s, rvc[s]),
                   /*prior_write=*/false, st->r_vclock);
          break;
        }
      }
    } else if (st->r_epoch != 0 && !EpochLeq(st->r_epoch, c)) {
      conflict(r_mask ? *r_mask : 0xFF, st->r_epoch, /*prior_write=*/false,
               st->r_vclock);
    }
    if (st->w_epoch != 0 && !EpochLeq(st->w_epoch, c)) {
      conflict(w_mask ? *w_mask : 0xFF, st->w_epoch, /*prior_write=*/true,
               st->w_vclock);
    }
    if (need_refine && !reported) return false;
    st->w_epoch = e;
    st->w_vclock = vclock;
    st->r_epoch = 0;
    st->r_vc.reset();
    if (!refined) {
      *w_mask = mask;
      *r_mask = 0;
    }
    return true;
  }

  // Read.
  if (st->r_vc) {
    GrowTo(st->r_vc.get(), sid + 1);
    if ((*st->r_vc)[sid] == c[sid]) {  // same-epoch fast path
      if (!refined) *r_mask |= mask;
      st->r_vclock = vclock;
      return true;
    }
  } else if (st->r_epoch == e) {  // same-epoch fast path
    if (!refined) *r_mask |= mask;
    st->r_vclock = vclock;
    return true;
  }
  if (st->w_epoch != 0 && !EpochLeq(st->w_epoch, c)) {
    conflict(w_mask ? *w_mask : 0xFF, st->w_epoch, /*prior_write=*/true,
             st->w_vclock);
    if (need_refine && !reported) return false;
  }
  if (st->r_vc) {
    (*st->r_vc)[sid] = c[sid];
    if (!refined) *r_mask |= mask;
  } else if (st->r_epoch == 0 || EpochLeq(st->r_epoch, c)) {
    st->r_epoch = e;  // read-exclusive: the previous reader happens-before us
    if (!refined) *r_mask = mask;
  } else {
    // Second concurrent reader: promote to a read vector clock (FastTrack's
    // "read-shared" state). Concurrent reads never race with each other.
    auto vc = std::make_unique<VC>();
    size_t prev_sid = EpochSid(st->r_epoch);
    GrowTo(vc.get(), std::max(prev_sid, sid) + 1);
    (*vc)[prev_sid] = EpochClk(st->r_epoch);
    (*vc)[sid] = c[sid];
    st->r_vc = std::move(vc);
    st->r_epoch = 0;
    if (!refined) *r_mask |= mask;
  }
  st->r_vclock = vclock;
  return true;
}

void RaceDetector::OnAccess(int tid, uint64_t sim_addr, uint64_t bytes,
                            bool write, uint64_t vclock) {
  if (bytes == 0) return;
  size_t sid = Sid(tid);
  ClockOf(sid);  // ensure the clock exists before taking references
  uint64_t end = sim_addr + bytes;
  uint64_t first = sim_addr / kShadowLineBytes;
  uint64_t last = (end - 1) / kShadowLineBytes;
  for (uint64_t line = first; line <= last; ++line) {
    uint8_t mask = WordMask(line, sim_addr, end);
    LineShadow& ls = shadow_[line];
    if (!ls.words) {
      // Line mode is only precise while every recorded access on a side
      // shares one exact word mask: the merged line state (especially a
      // read vector clock) cannot remember which reader touched which
      // words, so letting masks diverge would manufacture false races
      // between neighbours — e.g. two hash buckets on one line, each
      // guarded by its own stripe lock. Diverging masks promote to
      // per-word shadow *before* any check; Promote's distribution is
      // exact precisely because the invariant held until now.
      uint8_t side_mask = write ? ls.w_mask : ls.r_mask;
      if (side_mask == 0 || side_mask == mask) {
        if (CheckGranule(&ls.line, &ls.w_mask, &ls.r_mask, line, -1, sid,
                         mask, write, vclock)) {
          continue;
        }
        // Conflicting epochs but disjoint words: false sharing, not a race.
      }
      Promote(&ls);
    }
    for (int w = 0; w < kWordsPerLine; ++w) {
      if (mask & (1u << w)) {
        CheckGranule(&(*ls.words)[w], nullptr, nullptr, line, w, sid, 0xFF,
                     write, vclock);
      }
    }
  }
}

std::string RaceDetector::DescribeThread(size_t sid) const {
  char buf[96];
  if (sid == 0) {
    std::snprintf(buf, sizeof(buf), "setup context (tid -1)");
  } else {
    const char* name =
        sid < names_.size() && !names_[sid].empty() ? names_[sid].c_str()
                                                    : "?";
    std::snprintf(buf, sizeof(buf), "vthread %d \"%s\"",
                  static_cast<int>(sid) - 1, name);
  }
  return buf;
}

std::string RaceDetector::DescribeAlloc(uint64_t sim_addr) const {
  auto it = allocs_.upper_bound(sim_addr);
  if (it == allocs_.begin()) return "(no tracked allocation)";
  --it;
  if (sim_addr >= it->first + it->second.bytes) {
    return "(no tracked allocation)";
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "block sim:0x%" PRIx64 " (+%" PRIu64 " bytes) allocated by %s"
                " @ virtual cycle %" PRIu64,
                it->first, it->second.bytes,
                DescribeThread(Sid(it->second.tid)).c_str(),
                it->second.vclock);
  return buf;
}

void RaceDetector::ReportRace(uint64_t line, int word, size_t sid, bool write,
                              uint64_t vclock, Epoch prior,
                              bool prior_is_write, uint64_t prior_vclock) {
  ++races_observed_;
  if (!reported_lines_.insert(line).second) return;  // one report per line
  if (reports_.size() >= kMaxReports) return;

  Report r;
  r.line = line;
  r.word = word;
  r.tid = static_cast<int>(sid) - 1;
  r.prior_tid = static_cast<int>(EpochSid(prior)) - 1;
  r.vclock = vclock;
  r.prior_vclock = prior_vclock;
  r.is_write = write;
  r.prior_is_write = prior_is_write;

  uint64_t addr = line * kShadowLineBytes +
                  (word >= 0 ? static_cast<uint64_t>(word) * kShadowWordBytes
                             : 0);
  char head[256];
  std::snprintf(head, sizeof(head),
                "numalab::sanity: DATA RACE on simulated line 0x%" PRIx64
                "%s (sim addr 0x%" PRIx64 ")",
                line, word >= 0 ? " (word-refined)" : "", addr);
  char cur[192];
  std::snprintf(cur, sizeof(cur), "\n  current:  %s by %s @ virtual cycle %" PRIu64,
                write ? "write" : "read", DescribeThread(sid).c_str(),
                vclock);
  char prev[192];
  std::snprintf(prev, sizeof(prev),
                "\n  previous: %s by %s @ virtual cycle %" PRIu64
                " — no happens-before edge",
                prior_is_write ? "write" : "read",
                DescribeThread(EpochSid(prior)).c_str(), prior_vclock);
  r.text = std::string(head) + cur + prev;
  if (resolver_) r.text += "\n  location: " + resolver_(addr);
  r.text += "\n  allocation: " + DescribeAlloc(addr);
  reports_.push_back(std::move(r));
}

}  // namespace sanity
}  // namespace numalab
