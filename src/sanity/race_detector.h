// numalab::sanity — a FastTrack-style happens-before data-race detector for
// *simulated* threads.
//
// Host-side TSan cannot see races between VThreads: they are coroutines
// multiplexed on one host thread, so every conflicting pair of simulated
// accesses is separated by a perfectly ordered host-level context switch.
// What host tools see as a clean sequential program can still be a racy
// *simulated* program — two VThreads touching one cache line with no
// SimMutex/SimBarrier/VirtualLock edge between them would be a genuine data
// race on the real machine the simulation stands in for, and would
// invalidate every knob comparison the harness produces.
//
// The detector therefore re-implements happens-before at the simulation
// layer:
//  * every VThread (plus the setup/root context, tid -1) carries a vector
//    clock; Engine::Spawn forks it, thread completion joins it back;
//  * SimMutex lock/unlock, SimBarrier arrive/release and VirtualLock
//    critical sections (via Env::LockAcquired/LockReleased) are the
//    release/acquire edges;
//  * every simulated memory touch funnels through MemSystem::Access /
//    AccessSpan, which forward (thread, sim address range, is-write) here.
//
// Shadow state is keyed per simulated cache line and follows FastTrack
// (Flanagan & Freund, PLDI'09): the common case stores one *epoch*
// (thread id + its scalar clock) for the last write and the last read, and
// only promotes the read side to a full vector clock when concurrent
// readers appear. A second refinement layer handles false sharing: a line
// record starts at line granularity with an 8-bit word mask per side, and
// an epoch conflict whose word masks do NOT overlap promotes the line to
// eight per-word shadow records instead of reporting — so two threads
// writing disjoint words of one line (false sharing, not a race) stay
// clean, while overlapping words still report.
//
// The detector is allocation-aware: Env::Alloc clears the shadow of the
// returned block (allocator reuse is not a happens-before edge in the
// simulation, exactly as malloc is handled by TSan) and records the
// allocating site so reports can name it.
//
// Everything here is pure bookkeeping: no virtual cycles are charged and no
// simulator state is touched, so enabling the detector never changes
// simulated results, and a disabled detector is a single null-pointer
// branch at each hook site.

#ifndef NUMALAB_SANITY_RACE_DETECTOR_H_
#define NUMALAB_SANITY_RACE_DETECTOR_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace numalab {
namespace sanity {

/// Shadow granularities. The line size must match the memory model's cache
/// line (static_asserted in mem_system.cc); the word is the refinement unit
/// under which accesses are considered "the same location".
inline constexpr uint64_t kShadowLineBytes = 64;
inline constexpr uint64_t kShadowWordBytes = 8;
inline constexpr int kWordsPerLine =
    static_cast<int>(kShadowLineBytes / kShadowWordBytes);

class RaceDetector {
 public:
  /// One detected racy pair. `text` is the full human-readable report; the
  /// structured fields exist so tests can assert without string-parsing.
  struct Report {
    std::string text;
    uint64_t line = 0;     ///< simulated (slab-relative) line index
    int word = -1;         ///< refined word within the line, -1 at line level
    int tid = -1;          ///< current accessor (simulated vthread id)
    int prior_tid = -1;    ///< earlier accessor it races with
    uint64_t vclock = 0;       ///< current accessor's virtual clock
    uint64_t prior_vclock = 0; ///< earlier accessor's virtual clock
    bool is_write = false;
    bool prior_is_write = false;
  };

  RaceDetector();
  ~RaceDetector();

  RaceDetector(const RaceDetector&) = delete;
  RaceDetector& operator=(const RaceDetector&) = delete;

  /// Installs the callback that renders "node/page/region" detail for a
  /// simulated address in reports (provided by MemSystem, which can consult
  /// the simulated page table). Optional; reports degrade gracefully.
  void SetAddrResolver(std::function<std::string(uint64_t)> fn) {
    resolver_ = std::move(fn);
  }

  // -- thread lifecycle ----------------------------------------------------
  /// Fork edge: everything `parent_tid` did so far happens-before the new
  /// thread. tid -1 denotes the setup/root context (host code outside any
  /// coroutine), which is where SimContext builds inputs and tables.
  void OnThreadStart(int tid, const std::string& name, int parent_tid);
  /// Join edge back into the root context (Engine::Run observes completion;
  /// everything after Run() happens-after every thread).
  void OnThreadFinish(int tid);

  // -- synchronization edges -----------------------------------------------
  /// Acquire: the caller's clock joins the sync object's. Used by
  /// SimMutex::Lock and Env::LockAcquired (VirtualLock critical sections).
  void OnAcquire(int tid, const void* sync);
  /// Release: the sync object's clock becomes the caller's; the caller's
  /// own component is bumped so later work is concurrent with the release.
  void OnRelease(int tid, const void* sync);
  /// Barrier: all listed threads' clocks are joined and redistributed —
  /// everything before any arrival happens-before everything after release.
  void OnBarrier(const void* barrier, const std::vector<int>& tids);

  // -- allocator -----------------------------------------------------------
  /// A (re)allocated block carries no history: clears its shadow and
  /// records the allocating site for reports. `sim_addr` is slab-relative.
  void OnAlloc(int tid, uint64_t sim_addr, uint64_t bytes, uint64_t vclock);

  // -- memory accesses -----------------------------------------------------
  /// One simulated access (or a batched span — spans tile their whole byte
  /// range) of [sim_addr, sim_addr + bytes). `vclock` is the accessor's
  /// virtual-cycle clock at the call, recorded for reports only.
  void OnAccess(int tid, uint64_t sim_addr, uint64_t bytes, bool write,
                uint64_t vclock);

  const std::vector<Report>& reports() const { return reports_; }
  bool clean() const { return reports_.empty(); }
  /// Total races observed, including ones suppressed by dedup/cap.
  uint64_t races_observed() const { return races_observed_; }

 private:
  using VC = std::vector<uint32_t>;
  /// Epoch: (shifted thread id + 1) << 32 | scalar clock. 0 means "empty".
  using Epoch = uint64_t;

  /// FastTrack per-granule state: last write epoch, last read epoch (or a
  /// full read vector clock once concurrent readers appear), plus the
  /// accessors' virtual clocks for reporting.
  struct AccessState {
    Epoch w_epoch = 0;
    Epoch r_epoch = 0;
    uint64_t w_vclock = 0;
    uint64_t r_vclock = 0;
    std::unique_ptr<VC> r_vc;  ///< read-shared promotion (rare)
  };

  /// Per-line shadow: starts in line mode (one AccessState + word masks);
  /// an epoch conflict with disjoint masks promotes to per-word states.
  struct LineShadow {
    AccessState line;
    uint8_t w_mask = 0;
    uint8_t r_mask = 0;
    std::unique_ptr<std::array<AccessState, kWordsPerLine>> words;
  };

  struct AllocInfo {
    uint64_t bytes = 0;
    int tid = -1;
    uint64_t vclock = 0;
  };

  static constexpr size_t kMaxReports = 32;

  /// Shifted id: slot 0 is the root context (tid -1), workers at tid + 1.
  static size_t Sid(int tid) { return static_cast<size_t>(tid + 1); }
  static Epoch MakeEpoch(size_t sid, uint32_t clk) {
    return ((static_cast<uint64_t>(sid) + 1) << 32) | clk;
  }
  static size_t EpochSid(Epoch e) {
    return static_cast<size_t>((e >> 32) - 1);
  }
  static uint32_t EpochClk(Epoch e) { return static_cast<uint32_t>(e); }

  VC& ClockOf(size_t sid);
  Epoch CurrentEpoch(size_t sid);
  bool EpochLeq(Epoch e, const VC& c) const;
  static void Join(VC* into, const VC& from);

  /// Runs the FastTrack state machine on one granule. `word` is -1 at line
  /// granularity. Returns false when a line-level conflict had disjoint
  /// masks and the caller must refine to words instead.
  bool CheckGranule(AccessState* st, uint8_t* w_mask, uint8_t* r_mask,
                    uint64_t line, int word, size_t sid, uint8_t mask,
                    bool write, uint64_t vclock);
  void Promote(LineShadow* ls);
  void ReportRace(uint64_t line, int word, size_t sid, bool write,
                  uint64_t vclock, Epoch prior, bool prior_is_write,
                  uint64_t prior_vclock);
  std::string DescribeThread(size_t sid) const;
  std::string DescribeAlloc(uint64_t sim_addr) const;
  void ClearRange(uint64_t sim_addr, uint64_t bytes);

  std::vector<VC> clocks_;                       // indexed by sid
  std::vector<std::string> names_;               // indexed by sid
  std::unordered_map<const void*, VC> sync_vc_;  // locks and barriers
  std::unordered_map<uint64_t, LineShadow> shadow_;  // keyed by line index
  std::map<uint64_t, AllocInfo> allocs_;         // keyed by block base
  std::unordered_set<uint64_t> reported_lines_;  // dedup: one report per line
  std::vector<Report> reports_;
  uint64_t races_observed_ = 0;
  std::function<std::string(uint64_t)> resolver_;
};

}  // namespace sanity
}  // namespace numalab

#endif  // NUMALAB_SANITY_RACE_DETECTOR_H_
