#include "src/sim/engine.h"

#include <algorithm>

#include "src/sanity/race_detector.h"

namespace numalab {
namespace sim {

bool CheckpointAwaiter::await_ready() const noexcept {
  VThread* vt = engine->current();
  // Keep running (no suspension) until the quantum is used up.
  return vt->clock < vt->run_until;
}

void CheckpointAwaiter::await_suspend(std::coroutine_handle<>) noexcept {
  // The thread stays kRunning; the run loop re-queues it as ready.
}

Engine::~Engine() {
  for (auto& t : threads_) {
    if (t->handle) {
      t->handle.destroy();
      t->handle = nullptr;
    }
  }
}

VThread* Engine::CreateThread(const std::string& name, int hw_thread) {
  auto vt = std::make_unique<VThread>();
  vt->id = static_cast<int>(threads_.size());
  vt->name = name;
  vt->hw_thread = hw_thread;
  vt->engine = this;
  VThread* raw = vt.get();
  threads_.push_back(std::move(vt));

  if (race_ != nullptr) {
    // Fork edge: everything the spawner (a thread, or the setup context
    // when spawned from host code) did so far happens-before the new
    // thread's first step.
    race_->OnThreadStart(raw->id, name, current_ != nullptr ? current_->id
                                                            : -1);
  }
  return raw;
}

void Engine::AttachBody(VThread* raw, Task task) {
  NUMALAB_CHECK(task.handle);
  task.handle.promise().engine = this;
  task.handle.promise().vt = raw;
  raw->handle = task.handle;
  raw->state = VThreadState::kReady;
  ++live_;
  ready_.push(raw);
}

void Engine::ScheduleEvent(uint64_t when, EventCallback fn) {
  events_.push(Event{when, event_seq_++, std::move(fn)});
}

void Engine::MakeReady(VThread* vt) {
  vt->state = VThreadState::kReady;
  ready_.push(vt);
}

void Engine::Wake(VThread* vt, uint64_t at) {
  NUMALAB_CHECK(vt->state == VThreadState::kBlocked);
  vt->clock = std::max(vt->clock, at);
  MakeReady(vt);
}

uint64_t Engine::MinLiveClock() const {
  uint64_t m = UINT64_MAX;
  bool any = false;
  for (const auto& t : threads_) {
    if (t->state != VThreadState::kDone) {
      m = std::min(m, t->clock);
      any = true;
    }
  }
  return any ? m : 0;
}

uint64_t Engine::Run() {
  uint64_t makespan = 0;
  while (live_ > 0) {
    uint64_t next_ready = ready_.empty() ? UINT64_MAX : ready_.top()->clock;
    uint64_t next_event = events_.empty() ? UINT64_MAX : events_.top().when;

    if (deadline_ != 0 && next_ready > deadline_ && next_event > deadline_) {
      // Watchdog: nothing can run at or before the deadline any more. This
      // also catches simulated deadlocks (both queues empty) gracefully
      // when a deadline is armed. Destroy the outstanding frames *here*,
      // while the allocator and memory system their locals reference are
      // still alive — ~Engine would run after SimContext has started
      // tearing those down.
      deadline_exceeded_ = true;
      for (auto& t : threads_) {
        if (t->state != VThreadState::kDone && t->handle) {
          t->handle.destroy();
          t->handle = nullptr;
          t->state = VThreadState::kDone;
        }
      }
      live_ = 0;
      break;
    }

    if (next_event <= next_ready) {
      if (next_event == UINT64_MAX) {
        // Live threads but nothing ready and no events: a deadlock in the
        // simulated program (e.g. a SimMutex never unlocked).
        NUMALAB_CHECK(false && "simulated deadlock: all threads blocked");
      }
      // Batch-drain every event due before the next thread resume without
      // re-entering the outer loop. next_ready is recomputed after each
      // callback (a callback may wake a thread behind the next event), and
      // an armed deadline hands control back to the watchdog logic above —
      // the drain order is exactly the (when, seq) order the serial loop
      // produced, so simulated output is bit-identical.
      do {
        Event ev = std::move(const_cast<Event&>(events_.top()));
        events_.pop();
        ev.fn();
        next_ready = ready_.empty() ? UINT64_MAX : ready_.top()->clock;
      } while (!events_.empty() && events_.top().when <= next_ready &&
               (deadline_ == 0 || events_.top().when <= deadline_));
      continue;
    }

    VThread* vt = ready_.top();
    ready_.pop();
    if (vt->state != VThreadState::kReady) {
      continue;  // stale heap entry (thread was re-queued after a wake)
    }
    vt->state = VThreadState::kRunning;
    vt->run_until = vt->clock + quantum_;
    current_ = vt;
    vt->handle.resume();
    current_ = nullptr;

    if (vt->handle.done()) {
      vt->state = VThreadState::kDone;
      vt->handle.destroy();
      vt->handle = nullptr;
      --live_;
      makespan = std::max(makespan, vt->clock);
      // Join edge: everything after Run() happens-after every thread.
      if (race_ != nullptr) race_->OnThreadFinish(vt->id);
    } else if (vt->state == VThreadState::kRunning) {
      MakeReady(vt);  // suspended at a checkpoint
    }
    // kBlocked: some synchronization object owns the wake-up.
  }
  for (const auto& t : threads_) makespan = std::max(makespan, t->clock);
  return makespan;
}

perf::ThreadCounters Engine::AggregateCounters() const {
  perf::ThreadCounters sum;
  for (const auto& t : threads_) sum.Add(t->counters);
  return sum;
}

}  // namespace sim
}  // namespace numalab
