// Synchronization primitives for virtual threads.
//
// Two families:
//  * Suspending primitives (SimMutex, SimBarrier) — used by workload code;
//    they block the virtual thread and hand control back to the engine, so
//    waiting threads consume no virtual cycles while parked (like a futex).
//  * VirtualLock — a non-suspending analytical lock used *inside* simulated
//    components that are called from plain (non-coroutine) functions, e.g.
//    allocator arenas. It models a lock as a reservation on the time line:
//    an acquire at time t on a lock free at time f costs max(0, f - t) of
//    queueing delay plus the critical-section hold. Because the engine keeps
//    thread clocks within one quantum of each other, this reproduces lock
//    convoys and contention collapse without suspension machinery.

#ifndef NUMALAB_SIM_SYNC_H_
#define NUMALAB_SIM_SYNC_H_

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/sanity/race_detector.h"
#include "src/sim/engine.h"

namespace numalab {
namespace sim {

/// Cycles to acquire an uncontended lock (atomic RMW + fence).
inline constexpr uint64_t kLockAcquireCycles = 24;
/// Cycles to hand a lock (and its cache line) to a waiter on another core.
inline constexpr uint64_t kLockHandoffCycles = 120;

/// \brief A mutex for virtual threads. FIFO wake-up, deterministic.
///
/// A capability for clang's thread-safety analysis: `co_await m.Lock()`
/// acquires, `m.Unlock()` releases, and every path between them must
/// balance. The acquisition really completes inside the co_await (the
/// awaiter may suspend), but on the single host thread the caller observes
/// the lock as held from the Lock() call on, which is what the annotation
/// states.
class NUMALAB_CAPABILITY("SimMutex") SimMutex {
 public:
  explicit SimMutex(Engine* engine) : engine_(engine) {}

  struct LockAwaiter {
    SimMutex* m;
    bool await_ready() const noexcept {
      VThread* vt = m->engine_->current();
      if (!m->held_) {
        m->held_ = true;
        // Virtual-time exclusion: even when no thread is *executing* inside
        // the critical section right now, a previous owner may have held it
        // up to `vfree_at_` on the virtual time line.
        if (m->vfree_at_ > vt->clock) {
          uint64_t wait = m->vfree_at_ - vt->clock;
          vt->Charge(wait);
          vt->counters.lock_wait_cycles += wait;
        }
        vt->Charge(kLockAcquireCycles);
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<>) noexcept {
      VThread* vt = m->engine_->current();
      m->waiters_.push_back(vt);
      m->engine_->BlockCurrent();
    }
    void await_resume() const noexcept {
      // Acquire edge: the releasing owner's clock (published in Unlock)
      // happens-before everything after this lock acquisition. Runs on both
      // the uncontended fast path and after a hand-off wake.
      if (sanity::RaceDetector* rd = m->engine_->race()) {
        rd->OnAcquire(m->engine_->current()->id, m);
      }
    }
  };

  /// co_await m.Lock();
  LockAwaiter Lock() NUMALAB_ACQUIRE() NUMALAB_NO_THREAD_SAFETY_ANALYSIS {
    return LockAwaiter{this};
  }

  /// Releases the lock at the caller's current clock; the longest-waiting
  /// thread (if any) is woken after a cache-line handoff delay.
  void Unlock() NUMALAB_RELEASE() NUMALAB_NO_THREAD_SAFETY_ANALYSIS {
    VThread* vt = engine_->current();
    if (sanity::RaceDetector* rd = engine_->race()) {
      rd->OnRelease(vt->id, this);  // before any waiter can acquire
    }
    vfree_at_ = vt->clock;
    if (!waiters_.empty()) {
      VThread* next = waiters_.front();
      waiters_.pop_front();
      uint64_t wake_at = vt->clock + kLockHandoffCycles;
      uint64_t waited_from = next->clock;
      engine_->Wake(next, wake_at);
      next->counters.lock_wait_cycles +=
          next->clock > waited_from ? next->clock - waited_from : 0;
      // held_ stays true; ownership passed directly.
    } else {
      held_ = false;
    }
  }

  bool held() const { return held_; }

 private:
  Engine* engine_;
  bool held_ = false;
  uint64_t vfree_at_ = 0;  ///< virtual time the last owner released at
  std::deque<VThread*> waiters_;
};

/// \brief A reusable barrier for `n` virtual threads.
class SimBarrier {
 public:
  SimBarrier(Engine* engine, int n) : engine_(engine), n_(n) {}

  struct ArriveAwaiter {
    SimBarrier* b;
    bool await_ready() const noexcept {
      VThread* vt = b->engine_->current();
      if (static_cast<int>(b->waiting_.size()) == b->n_ - 1) {
        // Barrier edge: everything any participant did before arriving
        // happens-before everything every participant does after release.
        if (sanity::RaceDetector* rd = b->engine_->race()) {
          std::vector<int> tids;
          tids.reserve(b->waiting_.size() + 1);
          for (VThread* w : b->waiting_) tids.push_back(w->id);
          tids.push_back(vt->id);
          rd->OnBarrier(b, tids);
        }
        // Last arrival: release everyone at the max clock seen.
        uint64_t release = vt->clock;
        for (VThread* w : b->waiting_) release = std::max(release, w->clock);
        release += kLockHandoffCycles;
        for (VThread* w : b->waiting_) b->engine_->Wake(w, release);
        b->waiting_.clear();
        vt->clock = std::max(vt->clock, release);
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<>) noexcept {
      VThread* vt = b->engine_->current();
      b->waiting_.push_back(vt);
      b->engine_->BlockCurrent();
    }
    void await_resume() const noexcept {}
  };

  /// co_await barrier.Arrive();
  ArriveAwaiter Arrive() { return ArriveAwaiter{this}; }

  int pending() const { return static_cast<int>(waiting_.size()); }

 private:
  Engine* engine_;
  int n_;
  std::deque<VThread*> waiting_;
};

/// \brief Analytical (non-suspending) lock; see file comment.
///
/// A capability for clang's thread-safety analysis. Acquire() itself is
/// only the *timing* model (it reserves the lock on the virtual time line
/// and returns the queueing delay to charge); the critical section — the
/// span other threads' conflicting accesses must be ordered against — is
/// marked by the Env::LockAcquired / Env::LockReleased pair, which carry
/// the NUMALAB_ACQUIRE/NUMALAB_RELEASE annotations and feed the dynamic
/// race detector the same happens-before edge.
struct NUMALAB_CAPABILITY("VirtualLock") VirtualLock {
  uint64_t free_at = 0;
  uint64_t contended_acquires = 0;
  uint64_t total_acquires = 0;

  /// Reserves the lock for `hold` cycles starting no earlier than `now`.
  /// Returns the queueing delay the caller must charge (the hold itself is
  /// charged by the caller as part of its work). `handoff` is the
  /// cache-line transfer cost on a contended acquire — lower it for
  /// HTM-style synchronization that avoids lock-line bouncing.
  uint64_t Acquire(uint64_t now, uint64_t hold,
                   uint64_t handoff = kLockHandoffCycles) {
    ++total_acquires;
    uint64_t wait = free_at > now ? free_at - now : 0;
    if (wait > 0) ++contended_acquires;
    uint64_t start = std::max(free_at, now);
    free_at = start + hold;
    // A real queue cannot be longer than the thread count; bounding the
    // charged wait at ~50 queued holds also keeps bounded virtual-clock
    // skew from masquerading as contention.
    wait = std::min(wait, 50 * std::max<uint64_t>(hold, 1));
    return wait + (wait > 0 ? handoff : kLockAcquireCycles);
  }
};

}  // namespace sim
}  // namespace numalab

#endif  // NUMALAB_SIM_SYNC_H_
