// Host-side fast paths for the discrete-event engine's hottest allocations.
//
// Two pieces, both invisible to simulated results (they change *where* host
// memory comes from, never *what* the simulation computes):
//
//  - EventCallback: a fixed-size, move-only callable that replaces
//    std::function<void()> in Engine::Event. Every ScheduleEvent call used
//    to pay a type-erasure heap allocation on the hottest host path (the
//    serving layer schedules one event per request arrival/retry, the OS
//    daemons one per tick). The callback storage is inline in the event
//    object; a static_assert rejects any capture list that would not fit,
//    so the no-allocation property is checked at compile time rather than
//    hoped for.
//
//  - FreeListPool / PooledNew: size-bucketed LIFO free lists for the other
//    per-spawn host allocations (VThread objects, coroutine frames).
//    Benches construct thousands of short-lived engines (one per grid
//    cell), each spawning tens of threads whose frames are freed on
//    completion; the pool recycles those blocks across spawns and across
//    engines instead of round-tripping malloc. LIFO reuse is deterministic
//    and the pool never exposes addresses to simulated code, so the
//    bit-determinism contract is untouched.
//
// Under AddressSanitizer the pools disable themselves (every block goes
// straight to operator new/delete) so ASan can still see use-after-free on
// coroutine frames; nothing about simulated output depends on the pool
// being on.

#ifndef NUMALAB_SIM_EVENT_CALLBACK_H_
#define NUMALAB_SIM_EVENT_CALLBACK_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace numalab {
namespace sim {

/// \brief Move-only `void()` callable with fixed inline storage.
///
/// Construction from a lambda whose closure exceeds kInlineBytes (or is not
/// nothrow-move-constructible) is a compile error — there is no heap
/// fallback, which is the point: Engine::ScheduleEvent cannot regress into
/// allocating per event without failing to build.
class EventCallback {
 public:
  /// Generous for daemon ticks ([this, when] = 16 B) and serving-layer
  /// closures ([&s, id, now, backoff] = 24 B), with headroom for tests.
  static constexpr size_t kInlineBytes = 48;

  EventCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback>>>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineBytes,
                  "event callback capture list exceeds EventCallback inline "
                  "storage; shrink the captures (capture a pointer to bulky "
                  "state) or bump kInlineBytes");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned event callback");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "event callback must be nothrow-move-constructible");
    // NOLINT-DET(pointer-order): placement-new target cast, never printed
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &OpsFor<Fn>;
  }

  EventCallback(EventCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct + destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops OpsFor = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) {
        Fn* s = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); }};

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

#if defined(__SANITIZE_ADDRESS__)
#define NUMALAB_SIM_POOL_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define NUMALAB_SIM_POOL_DISABLED 1
#endif
#endif

/// \brief Size-bucketed LIFO free lists for frequently recycled host blocks.
///
/// Buckets are 64-byte granules up to kMaxBlock; larger requests (huge
/// coroutine frames) fall through to operator new untouched. The process is
/// single-threaded on the host side (the whole simulator runs on one host
/// thread — see engine.h), so no locking. Freed blocks are retained until
/// process exit; stats expose hit/refill counts for the allocation
/// regression test.
class FreeListPool {
 public:
  static constexpr size_t kGranule = 64;
  static constexpr size_t kMaxBlock = 4096;
  static constexpr size_t kBuckets = kMaxBlock / kGranule;

  struct Stats {
    uint64_t pool_hits = 0;    ///< allocations served from a free list
    uint64_t fresh_blocks = 0; ///< allocations that had to call operator new
    uint64_t oversize = 0;     ///< requests above kMaxBlock (not pooled)
  };

  static void* Allocate(size_t size) {
#ifdef NUMALAB_SIM_POOL_DISABLED
    MutableStats().fresh_blocks++;
    return ::operator new(size);
#else
    if (size > kMaxBlock) {
      ++MutableStats().oversize;
      return ::operator new(size);
    }
    size_t b = Bucket(size);
    FreeNode*& head = FreeLists()[b];
    if (head != nullptr) {
      ++MutableStats().pool_hits;
      FreeNode* n = head;
      head = n->next;
      return n;
    }
    ++MutableStats().fresh_blocks;
    return ::operator new((b + 1) * kGranule);
#endif
  }

  static void Deallocate(void* p, size_t size) {
#ifdef NUMALAB_SIM_POOL_DISABLED
    ::operator delete(p);
#else
    if (size > kMaxBlock) {
      ::operator delete(p);
      return;
    }
    FreeNode* n = static_cast<FreeNode*>(p);
    FreeNode*& head = FreeLists()[Bucket(size)];
    n->next = head;
    head = n;
#endif
  }

  static const Stats& stats() { return MutableStats(); }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  static_assert(sizeof(FreeNode) <= kGranule, "granule must hold a link");

  static size_t Bucket(size_t size) {
    return (size + kGranule - 1) / kGranule - 1;
  }

  // Function-local statics: blocks are retained until process exit, and the
  // pool header stays header-only without ODR gymnastics.
  static Stats& MutableStats() {
    static Stats s;
    return s;
  }
  static FreeNode** FreeLists() {
    static FreeNode* lists[kBuckets] = {};
    return lists;
  }
};

/// \brief CRTP-free mixin: inherit to route a type's operator new/delete
/// through FreeListPool. Used by VThread; coroutine frames go through the
/// promise_type overloads instead (see Task::promise_type).
struct PooledNew {
  static void* operator new(size_t size) { return FreeListPool::Allocate(size); }
  static void operator delete(void* p, size_t size) {
    FreeListPool::Deallocate(p, size);
  }
};

}  // namespace sim
}  // namespace numalab

#endif  // NUMALAB_SIM_EVENT_CALLBACK_H_
