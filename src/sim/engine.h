// Deterministic discrete-event simulation engine with virtual threads.
//
// numalab runs every workload on *virtual threads*: C++20 coroutines whose
// progress is measured in virtual cycles rather than wall time. The engine
// keeps a ready-heap ordered by (virtual clock, thread id) and always resumes
// the thread that is furthest behind, so thread clocks advance in near
// lockstep (skew bounded by the checkpoint quantum). Everything runs on one
// host thread, which makes runs bit-for-bit reproducible — the property the
// paper's real testbed lacks and the reason Fig. 3 needs ten runs.
//
// Workload code charges costs synchronously (VThread::Charge) and yields
// control at checkpoints:
//
//   sim::Task Worker(Env& env) {
//     for (...) {
//       ... charge accesses ...
//       co_await env.engine->Checkpoint();
//     }
//   }
//
// Timed callbacks (Engine::ScheduleEvent) model kernel daemons — the load
// balancer, AutoNUMA scans and khugepaged — which run interleaved with the
// threads in virtual-time order.
//
// WARNING: never make the thread body a coroutine *lambda*. A coroutine
// lambda's captures live in the closure object, not the coroutine frame; the
// closure dies when Spawn's factory returns and every later resume reads
// freed memory. Write a named coroutine function and have a plain lambda
// call it (function parameters are kept alive in the frame).

#ifndef NUMALAB_SIM_ENGINE_H_
#define NUMALAB_SIM_ENGINE_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/perf/counters.h"
#include "src/sim/event_callback.h"

namespace numalab {
namespace sanity {
class RaceDetector;
}  // namespace sanity
namespace trace {
class TraceRecorder;
}  // namespace trace
namespace sim {

class Engine;
struct VThread;

/// \brief Coroutine type for virtual-thread bodies. The coroutine starts
/// suspended; Engine::Spawn owns the handle and destroys it on completion.
class Task {
 public:
  struct promise_type {
    Engine* engine = nullptr;
    VThread* vt = nullptr;

    // Coroutine frames are the per-spawn host allocation: benches build
    // thousands of short-lived engines, each spawning tens of threads.
    // Route frames through the engine free-list pool so completed frames
    // are recycled instead of round-tripping malloc. Purely a host-side
    // optimization; simulated output is unaffected.
    static void* operator new(size_t size) {
      return FreeListPool::Allocate(size);
    }
    static void operator delete(void* p, size_t size) {
      FreeListPool::Deallocate(p, size);
    }

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    // Final suspend keeps the frame alive so the engine can observe
    // completion and destroy the handle itself.
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle(h) {}

  std::coroutine_handle<promise_type> handle;
};

/// \brief State of a virtual thread.
enum class VThreadState { kReady, kRunning, kBlocked, kDone };

/// \brief A simulated software thread. Inherits pooled operator new/delete:
/// VThread objects are recycled across engines by the same free-list pool
/// as coroutine frames.
struct VThread : PooledNew {
  int id = -1;
  std::string name;
  uint64_t clock = 0;          ///< virtual cycle counter
  int hw_thread = 0;           ///< hardware thread it currently runs on
  double cycle_scale = 1.0;    ///< >1 when its core is oversubscribed
  VThreadState state = VThreadState::kReady;
  std::coroutine_handle<Task::promise_type> handle;
  perf::ThreadCounters counters;
  uint64_t run_until = 0;      ///< checkpoint quantum boundary
  Engine* engine = nullptr;

  /// Adds `cycles` of work, inflated by the oversubscription factor.
  void Charge(uint64_t cycles) {
    uint64_t c = static_cast<uint64_t>(static_cast<double>(cycles) *
                                       cycle_scale);
    clock += c;
    counters.cycles += c;
  }
};

/// \brief Awaitable returned by Engine::Checkpoint().
struct CheckpointAwaiter {
  Engine* engine;
  bool await_ready() const noexcept;
  void await_suspend(std::coroutine_handle<> h) noexcept;
  void await_resume() const noexcept {}
};

/// \brief The discrete-event scheduler.
class Engine {
 public:
  /// \param quantum checkpoint quantum in cycles: a resumed thread keeps
  ///        running through checkpoints until its clock advances past the
  ///        quantum, bounding clock skew between threads. The skew bound is
  ///        what makes VirtualLock reservations honest, so keep it well
  ///        under typical lock service times x queue lengths.
  explicit Engine(uint64_t quantum = 4000) : quantum_(quantum) {}
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Creates a virtual thread. `factory` is invoked with the new VThread and
  /// must return the coroutine that implements the thread body. Templated so
  /// the factory is called directly — no std::function materialization on
  /// the spawn path.
  template <typename Factory>
  VThread* Spawn(const std::string& name, int hw_thread, Factory&& factory) {
    VThread* vt = CreateThread(name, hw_thread);
    AttachBody(vt, std::forward<Factory>(factory)(vt));
    return vt;
  }

  /// Schedules `fn` at absolute virtual time `when`. Events fire interleaved
  /// with threads in virtual-time order, but only while live threads remain.
  /// The callback is stored inline in the event (EventCallback): capture
  /// lists that would force a heap allocation fail to compile.
  void ScheduleEvent(uint64_t when, EventCallback fn);

  /// Runs until every spawned thread has completed, or until every live
  /// thread's clock has passed the deadline (see SetDeadline). Returns the
  /// makespan: the maximum thread clock.
  uint64_t Run();

  /// Virtual-cycle watchdog: once the *minimum* live thread clock exceeds
  /// `cycles`, Run() stops resuming threads, destroys the outstanding
  /// coroutine frames (while the rest of the simulation is still alive —
  /// frame locals may reference the allocator), and returns. 0 (the
  /// default) disables the watchdog.
  void SetDeadline(uint64_t cycles) { deadline_ = cycles; }
  bool deadline_exceeded() const { return deadline_exceeded_; }

  /// Thread currently executing (only valid inside coroutine bodies /
  /// allocator callbacks reached from them).
  VThread* current() const { return current_; }

  /// Suspension point; see CheckpointAwaiter. Cheap when the quantum has not
  /// elapsed (no suspension).
  CheckpointAwaiter Checkpoint() { return CheckpointAwaiter{this}; }

  /// Virtual time visible to daemons: the minimum clock over live threads
  /// (or the last event time when no thread is live).
  uint64_t MinLiveClock() const;

  /// Wakes a blocked thread at max(vt->clock, at). Used by SimMutex etc.
  void Wake(VThread* vt, uint64_t at);

  /// Marks the current thread blocked; the caller must arrange a Wake().
  /// Called from awaitables' await_suspend.
  void BlockCurrent() {
    NUMALAB_CHECK(current_ != nullptr);
    current_->state = VThreadState::kBlocked;
  }

  const std::vector<std::unique_ptr<VThread>>& threads() const {
    return threads_;
  }
  uint64_t quantum() const { return quantum_; }
  int live_threads() const { return live_; }

  /// Sums worker counters into a report (system counters are filled by the
  /// memory/OS models which hold their own SystemCounters).
  perf::ThreadCounters AggregateCounters() const;

  /// Optional happens-before race detector (src/sanity). When set, Spawn
  /// emits fork edges, thread completion emits join edges, and the sync
  /// primitives in sync.h emit acquire/release edges. Null (the default)
  /// costs one predictable branch per hook site and nothing else.
  void SetRaceDetector(sanity::RaceDetector* rd) { race_ = rd; }
  sanity::RaceDetector* race() const { return race_; }

  /// Optional span recorder (src/trace). Workload code opens spans through
  /// trace::ScopedSpan, which is a no-op (one null check) when this is
  /// unset — the zero-cost-off contract of the observability layer. The
  /// recorder is pure bookkeeping: it never charges cycles, so attaching it
  /// cannot perturb simulated results.
  void SetTraceRecorder(trace::TraceRecorder* tr) { trace_ = tr; }
  trace::TraceRecorder* trace_recorder() const { return trace_; }

 private:
  friend struct CheckpointAwaiter;

  struct ReadyCmp {
    bool operator()(const VThread* a, const VThread* b) const {
      if (a->clock != b->clock) return a->clock > b->clock;
      return a->id > b->id;
    }
  };
  struct Event {
    uint64_t when;
    uint64_t seq;
    EventCallback fn;
  };
  static_assert(sizeof(Event) <= 128,
                "Event outgrew two cache lines; check EventCallback storage");
  struct EventCmp {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void MakeReady(VThread* vt);
  /// Non-template halves of Spawn: allocate/register the VThread (fork edge
  /// fires before the body is constructed, as before), then bind the
  /// coroutine handle and queue the thread ready.
  VThread* CreateThread(const std::string& name, int hw_thread);
  void AttachBody(VThread* vt, Task task);

  uint64_t quantum_;
  std::vector<std::unique_ptr<VThread>> threads_;
  std::priority_queue<VThread*, std::vector<VThread*>, ReadyCmp> ready_;
  std::priority_queue<Event, std::vector<Event>, EventCmp> events_;
  uint64_t event_seq_ = 0;
  VThread* current_ = nullptr;
  int live_ = 0;
  uint64_t deadline_ = 0;
  bool deadline_exceeded_ = false;
  sanity::RaceDetector* race_ = nullptr;
  trace::TraceRecorder* trace_ = nullptr;
};

}  // namespace sim
}  // namespace numalab

#endif  // NUMALAB_SIM_ENGINE_H_
