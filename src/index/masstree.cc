// Masstree-style index (Mao et al. [17]), fixed 8-byte keys.
//
// Masstree is a trie of B+trees over 8-byte key slices; for the uint64 keys
// of W4 the trie has a single layer, so what remains — and what we model —
// is Masstree's distinctive node design: 15-key border/interior nodes with
// a permutation word (keys stay unsorted; the permutation encodes order)
// and optimistic version validation on every node visit. The narrow nodes
// and uniform size classes make it "group many keys per node" like the
// B+tree (Hoard-friendly, Fig. 7b), while version handshakes add a constant
// overhead per level that keeps it behind ART and B+tree overall.

#include <cstring>

#include "src/common/logging.h"
#include "src/index/index.h"

namespace numalab {
namespace index {
namespace {

constexpr int kWidth = 15;  // keys per node, as in Masstree

struct MtNode {
  bool border;
  uint32_t version;
  int count;
  uint8_t perm[kWidth];  // permutation: perm[i] = slot of i-th smallest key
  uint64_t keys[kWidth];
};

struct MtInterior {
  MtNode head;
  MtNode* children[kWidth + 1];
};

struct MtBorder {
  MtNode head;
  uint64_t values[kWidth];
  MtBorder* next;
};

// Per-visit version handshake (read version, fence, validate).
constexpr uint64_t kVersionCheckCycles = 9;

class Masstree : public OrderedIndex {
 public:
  const char* name() const override { return "masstree"; }

  void Insert(workloads::Env& env, uint64_t key, uint64_t value) override {
    if (root_ == nullptr) {
      auto* b = NewBorder(env);
      PutInBorder(env, b, 0, key, value);
      root_ = &b->head;
      return;
    }
    uint64_t up = 0;
    MtNode* sibling = InsertRec(env, root_, key, value, &up);
    if (sibling != nullptr) {
      auto* nr = NewInterior(env);
      nr->head.count = 1;
      nr->head.keys[0] = up;
      nr->head.perm[0] = 0;
      nr->children[0] = root_;
      nr->children[1] = sibling;
      env.Write(nr, sizeof(MtInterior));
      root_ = &nr->head;
    }
  }

  bool Lookup(workloads::Env& env, uint64_t key, uint64_t* value) override {
    MtNode* n = root_;
    if (n == nullptr) return false;
    while (!n->border) {
      auto* in = reinterpret_cast<MtInterior*>(n);
      env.Read(n, sizeof(MtNode));
      env.Compute(kVersionCheckCycles + 10);
      int i = ChildIndex(n, key);
      env.Read(&in->children[i], sizeof(MtNode*));
      n = in->children[i];
    }
    auto* b = reinterpret_cast<MtBorder*>(n);
    env.Read(n, sizeof(MtNode));
    env.Compute(kVersionCheckCycles + 10);
    int slot = FindSlot(n, key);
    if (slot < 0) return false;
    env.Read(&b->values[slot], sizeof(uint64_t));
    *value = b->values[slot];
    return true;
  }

 private:
  MtNode* root_ = nullptr;

  MtBorder* NewBorder(workloads::Env& env) {
    auto* b = static_cast<MtBorder*>(env.Alloc(sizeof(MtBorder)));
    b->head.border = true;
    b->head.version = 0;
    b->head.count = 0;
    b->next = nullptr;
    return b;
  }
  MtInterior* NewInterior(workloads::Env& env) {
    auto* in = static_cast<MtInterior*>(env.Alloc(sizeof(MtInterior)));
    in->head.border = false;
    in->head.version = 0;
    in->head.count = 0;
    return in;
  }

  // i-th smallest key in the (permuted) node.
  static uint64_t KeyAt(const MtNode* n, int i) {
    return n->keys[n->perm[i]];
  }

  // Index of the child to descend into (interior nodes).
  static int ChildIndex(const MtNode* n, uint64_t key) {
    int i = 0;
    while (i < n->count && key >= KeyAt(n, i)) ++i;
    return i;
  }

  // Physical slot holding `key` in a border node, or -1.
  static int FindSlot(const MtNode* n, uint64_t key) {
    for (int i = 0; i < n->count; ++i) {
      if (n->keys[n->perm[i]] == key) return n->perm[i];
    }
    return -1;
  }

  // Inserts key at ordered position `pos` in border node; physical slot is
  // append-only (Masstree never shifts keys, only the permutation).
  void PutInBorder(workloads::Env& env, MtBorder* b, int pos, uint64_t key,
                   uint64_t value) {
    MtNode* n = &b->head;
    int slot = n->count;
    n->keys[slot] = key;
    b->values[slot] = value;
    std::memmove(&n->perm[pos + 1], &n->perm[pos],
                 static_cast<size_t>(n->count - pos));
    n->perm[pos] = static_cast<uint8_t>(slot);
    ++n->count;
    ++n->version;
    env.Write(n, sizeof(MtNode));
    env.Write(&b->values[slot], sizeof(uint64_t));
  }

  MtNode* InsertRec(workloads::Env& env, MtNode* n, uint64_t key,
                    uint64_t value, uint64_t* up) {
    env.Read(n, sizeof(MtNode));
    env.Compute(kVersionCheckCycles + 12);

    if (n->border) {
      auto* b = reinterpret_cast<MtBorder*>(n);
      int slot = FindSlot(n, key);
      if (slot >= 0) {
        b->values[slot] = value;
        env.Write(&b->values[slot], sizeof(uint64_t));
        return nullptr;
      }
      int pos = 0;
      while (pos < n->count && KeyAt(n, pos) < key) ++pos;
      if (n->count < kWidth) {
        PutInBorder(env, b, pos, key, value);
        return nullptr;
      }
      // Split: move the upper half (by order) to a new border node.
      auto* right = NewBorder(env);
      int half = n->count / 2;
      MtBorder tmp = *b;  // host copy to re-pack from
      n->count = 0;
      for (int i = 0; i < kWidth; ++i) n->perm[i] = 0;
      MtNode* tn = &tmp.head;
      for (int i = 0; i < half; ++i) {
        n->keys[i] = tn->keys[tn->perm[i]];
        b->values[i] = tmp.values[tn->perm[i]];
        n->perm[i] = static_cast<uint8_t>(i);
      }
      n->count = half;
      for (int i = half; i < tn->count; ++i) {
        int j = i - half;
        right->head.keys[j] = tn->keys[tn->perm[i]];
        right->values[j] = tmp.values[tn->perm[i]];
        right->head.perm[j] = static_cast<uint8_t>(j);
      }
      right->head.count = tn->count - half;
      right->next = tmp.next;
      b->next = right;
      ++n->version;
      env.Write(n, sizeof(MtBorder));
      env.Write(right, sizeof(MtBorder));
      *up = right->head.keys[0];
      // Insert the pending key into the proper half.
      if (key < *up) {
        InsertRec(env, n, key, value, up);  // cannot split again
      } else {
        uint64_t dummy = 0;
        InsertRec(env, &right->head, key, value, &dummy);
      }
      *up = right->head.keys[right->head.perm[0]];
      return &right->head;
    }

    auto* in = reinterpret_cast<MtInterior*>(n);
    int ci = ChildIndex(n, key);
    env.Read(&in->children[ci], sizeof(MtNode*));
    uint64_t child_up = 0;
    MtNode* sibling = InsertRec(env, in->children[ci], key, value,
                                &child_up);
    if (sibling == nullptr) return nullptr;

    // Add separator child_up at ordered position ci.
    if (n->count < kWidth) {
      int slot = n->count;
      n->keys[slot] = child_up;
      std::memmove(&n->perm[ci + 1], &n->perm[ci],
                   static_cast<size_t>(n->count - ci));
      n->perm[ci] = static_cast<uint8_t>(slot);
      std::memmove(&in->children[ci + 2], &in->children[ci + 1],
                   sizeof(MtNode*) * static_cast<size_t>(n->count - ci));
      in->children[ci + 1] = sibling;
      ++n->count;
      ++n->version;
      env.Write(n, sizeof(MtNode));
      return nullptr;
    }

    // Interior split: repack sorted, middle key moves up.
    MtInterior tmp = *in;
    MtNode* tn = &tmp.head;
    uint64_t sorted_keys[kWidth + 1];
    MtNode* sorted_children[kWidth + 2];
    for (int i = 0; i < kWidth; ++i) {
      sorted_keys[i] = tn->keys[tn->perm[i]];
    }
    std::memcpy(sorted_children, tmp.children,
                sizeof(MtNode*) * (kWidth + 1));
    // Insert (child_up, sibling) at position ci in the sorted arrays.
    std::memmove(&sorted_keys[ci + 1], &sorted_keys[ci],
                 sizeof(uint64_t) * static_cast<size_t>(kWidth - ci));
    sorted_keys[ci] = child_up;
    std::memmove(&sorted_children[ci + 2], &sorted_children[ci + 1],
                 sizeof(MtNode*) * static_cast<size_t>(kWidth - ci));
    sorted_children[ci + 1] = sibling;

    int total = kWidth + 1;
    int half = total / 2;
    *up = sorted_keys[half];

    n->count = half;
    for (int i = 0; i < half; ++i) {
      n->keys[i] = sorted_keys[i];
      n->perm[i] = static_cast<uint8_t>(i);
    }
    std::memcpy(in->children, sorted_children,
                sizeof(MtNode*) * static_cast<size_t>(half + 1));
    ++n->version;

    auto* right = NewInterior(env);
    right->head.count = total - half - 1;
    for (int i = 0; i < right->head.count; ++i) {
      right->head.keys[i] = sorted_keys[half + 1 + i];
      right->head.perm[i] = static_cast<uint8_t>(i);
    }
    std::memcpy(right->children, &sorted_children[half + 1],
                sizeof(MtNode*) * static_cast<size_t>(right->head.count + 1));
    env.Write(n, sizeof(MtInterior));
    env.Write(right, sizeof(MtInterior));
    return &right->head;
  }
};

}  // namespace

std::unique_ptr<OrderedIndex> MakeMasstree() {
  return std::make_unique<Masstree>();
}

}  // namespace index
}  // namespace numalab
