// Canonical Skip List [19].
//
// Geometric tower heights (p = 1/2, max 20 levels) from the run's seed, so
// the structure is deterministic per run. Tall pointer chains make lookups
// latency-bound rather than allocator-bound — the paper finds the Skip List
// is the one index that runs best with plain ptmalloc (Fig. 7d).

#include "src/common/rng.h"
#include "src/index/index.h"

namespace numalab {
namespace index {
namespace {

constexpr int kMaxLevel = 20;

struct SkipNode {
  uint64_t key;
  uint64_t value;
  int level;
  SkipNode* next[1];  // flexible: `level` pointers allocated
};

size_t NodeBytes(int level) {
  return sizeof(SkipNode) + sizeof(SkipNode*) * static_cast<size_t>(level - 1);
}

class SkipList : public OrderedIndex {
 public:
  explicit SkipList(uint64_t seed) : rng_(seed) {}

  const char* name() const override { return "skiplist"; }

  void Insert(workloads::Env& env, uint64_t key, uint64_t value) override {
    if (head_ == nullptr) {
      head_ = NewNode(env, 0, 0, kMaxLevel);
    }
    SkipNode* update[kMaxLevel];
    SkipNode* x = head_;
    env.Read(x, sizeof(SkipNode));
    for (int lvl = level_ - 1; lvl >= 0; --lvl) {
      while (x->next[lvl] != nullptr && x->next[lvl]->key < key) {
        x = x->next[lvl];
        env.Read(x, sizeof(SkipNode));
      }
      update[lvl] = x;
    }
    SkipNode* candidate = x->next[0];
    if (candidate != nullptr) env.Read(candidate, sizeof(SkipNode));
    if (candidate != nullptr && candidate->key == key) {
      candidate->value = value;
      env.Write(&candidate->value, sizeof(uint64_t));
      return;
    }

    int lvl = RandomLevel();
    if (lvl > level_) {
      for (int i = level_; i < lvl; ++i) update[i] = head_;
      level_ = lvl;
    }
    SkipNode* n = NewNode(env, key, value, lvl);
    for (int i = 0; i < lvl; ++i) {
      n->next[i] = update[i]->next[i];
      update[i]->next[i] = n;
      env.Write(&update[i]->next[i], sizeof(SkipNode*));
    }
    env.Write(n, NodeBytes(lvl));
  }

  bool Lookup(workloads::Env& env, uint64_t key, uint64_t* value) override {
    if (head_ == nullptr) return false;
    SkipNode* x = head_;
    env.Read(x, sizeof(SkipNode));
    for (int lvl = level_ - 1; lvl >= 0; --lvl) {
      while (x->next[lvl] != nullptr && x->next[lvl]->key < key) {
        x = x->next[lvl];
        env.Read(x, sizeof(SkipNode));
      }
    }
    SkipNode* c = x->next[0];
    if (c == nullptr) return false;
    env.Read(c, sizeof(SkipNode));
    if (c->key != key) return false;
    *value = c->value;
    return true;
  }

 private:
  SkipNode* NewNode(workloads::Env& env, uint64_t key, uint64_t value,
                    int level) {
    auto* n = static_cast<SkipNode*>(env.Alloc(NodeBytes(level)));
    n->key = key;
    n->value = value;
    n->level = level;
    for (int i = 0; i < level; ++i) n->next[i] = nullptr;
    return n;
  }

  int RandomLevel() {
    int lvl = 1;
    while (lvl < kMaxLevel && rng_.Bernoulli(0.5)) ++lvl;
    return lvl;
  }

  Rng rng_;
  SkipNode* head_ = nullptr;
  int level_ = 1;
};

}  // namespace

std::unique_ptr<OrderedIndex> MakeSkipList(uint64_t seed) {
  return std::make_unique<SkipList>(seed);
}

}  // namespace index
}  // namespace numalab
