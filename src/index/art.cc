// Adaptive Radix Tree (Leis et al. [16]).
//
// Radix tree over the 8 big-endian bytes of the key with the four classic
// adaptive node types (Node4/16/48/256) that grow on demand. The variety of
// node sizes is ART's signature allocator workload: it draws from many size
// classes, which is why the paper finds it most sensitive to the allocator
// choice (Fig. 7a).

#include <cstring>

#include "src/common/logging.h"
#include "src/index/index.h"

namespace numalab {
namespace index {
namespace {

enum NodeType : uint8_t { kNode4, kNode16, kNode48, kNode256, kLeaf };

struct Node {
  NodeType type;
  uint8_t num_children;
};

struct Leaf {
  Node head;  // type = kLeaf
  uint64_t key;
  uint64_t value;
};

struct Node4 {
  Node head;
  uint8_t keys[4];
  Node* children[4];
};

struct Node16 {
  Node head;
  uint8_t keys[16];
  Node* children[16];
};

struct Node48 {
  Node head;
  uint8_t child_index[256];  // 0 = empty, else index+1
  Node* children[48];
};

struct Node256 {
  Node head;
  Node* children[256];
};

uint8_t KeyByte(uint64_t key, int depth) {
  return static_cast<uint8_t>(key >> (56 - 8 * depth));
}

class Art : public OrderedIndex {
 public:
  const char* name() const override { return "art"; }

  void Insert(workloads::Env& env, uint64_t key, uint64_t value) override {
    InsertRec(env, &root_, key, value, 0);
  }

  bool Lookup(workloads::Env& env, uint64_t key, uint64_t* value) override {
    Node* n = root_;
    int depth = 0;
    while (n != nullptr) {
      if (n->type == kLeaf) {
        auto* leaf = reinterpret_cast<Leaf*>(n);
        env.Read(leaf, sizeof(Leaf));
        if (leaf->key != key) return false;
        *value = leaf->value;
        return true;
      }
      n = FindChild(env, n, KeyByte(key, depth));
      ++depth;
    }
    return false;
  }

 private:
  Node* root_ = nullptr;

  Node* NewLeaf(workloads::Env& env, uint64_t key, uint64_t value) {
    auto* leaf = static_cast<Leaf*>(env.Alloc(sizeof(Leaf)));
    leaf->head = Node{kLeaf, 0};
    leaf->key = key;
    leaf->value = value;
    env.Write(leaf, sizeof(Leaf));
    return &leaf->head;
  }

  Node* FindChild(workloads::Env& env, Node* n, uint8_t byte) {
    switch (n->type) {
      case kNode4: {
        auto* n4 = reinterpret_cast<Node4*>(n);
        env.Read(n4, sizeof(Node4));
        for (int i = 0; i < n->num_children; ++i) {
          if (n4->keys[i] == byte) return n4->children[i];
        }
        return nullptr;
      }
      case kNode16: {
        auto* n16 = reinterpret_cast<Node16*>(n);
        env.Read(n16, sizeof(Node) + sizeof(n16->keys));
        env.Compute(4);  // SIMD compare
        for (int i = 0; i < n->num_children; ++i) {
          if (n16->keys[i] == byte) {
            env.Read(&n16->children[i], sizeof(Node*));
            return n16->children[i];
          }
        }
        return nullptr;
      }
      case kNode48: {
        auto* n48 = reinterpret_cast<Node48*>(n);
        env.Read(&n48->child_index[byte], 1);
        if (n48->child_index[byte] == 0) return nullptr;
        env.Read(&n48->children[n48->child_index[byte] - 1], sizeof(Node*));
        return n48->children[n48->child_index[byte] - 1];
      }
      case kNode256: {
        auto* n256 = reinterpret_cast<Node256*>(n);
        env.Read(&n256->children[byte], sizeof(Node*));
        return n256->children[byte];
      }
      case kLeaf:
        break;
    }
    return nullptr;
  }

  // Adds a child, growing the node if full. Returns the (possibly new) node.
  Node* AddChild(workloads::Env& env, Node* n, uint8_t byte, Node* child) {
    switch (n->type) {
      case kNode4: {
        auto* n4 = reinterpret_cast<Node4*>(n);
        if (n->num_children < 4) {
          n4->keys[n->num_children] = byte;
          n4->children[n->num_children] = child;
          ++n->num_children;
          env.Write(n4, sizeof(Node4));
          return n;
        }
        auto* n16 = static_cast<Node16*>(env.Alloc(sizeof(Node16)));
        n16->head = Node{kNode16, 4};
        std::memcpy(n16->keys, n4->keys, 4);
        std::memcpy(n16->children, n4->children, 4 * sizeof(Node*));
        env.Write(n16, sizeof(Node16));
        env.Free(n4);
        return AddChild(env, &n16->head, byte, child);
      }
      case kNode16: {
        auto* n16 = reinterpret_cast<Node16*>(n);
        if (n->num_children < 16) {
          n16->keys[n->num_children] = byte;
          n16->children[n->num_children] = child;
          ++n->num_children;
          env.Write(&n16->keys[n->num_children - 1], 1 + sizeof(Node*));
          return n;
        }
        auto* n48 = static_cast<Node48*>(env.Alloc(sizeof(Node48)));
        n48->head = Node{kNode48, 16};
        std::memset(n48->child_index, 0, sizeof(n48->child_index));
        for (int i = 0; i < 16; ++i) {
          n48->child_index[n16->keys[i]] = static_cast<uint8_t>(i + 1);
          n48->children[i] = n16->children[i];
        }
        env.Write(n48, sizeof(Node48));
        env.Free(n16);
        return AddChild(env, &n48->head, byte, child);
      }
      case kNode48: {
        auto* n48 = reinterpret_cast<Node48*>(n);
        if (n->num_children < 48) {
          n48->children[n->num_children] = child;
          n48->child_index[byte] = static_cast<uint8_t>(n->num_children + 1);
          ++n->num_children;
          env.Write(&n48->child_index[byte], 1 + sizeof(Node*));
          return n;
        }
        auto* n256 = static_cast<Node256*>(env.Alloc(sizeof(Node256)));
        n256->head = Node{kNode256, 48};
        std::memset(n256->children, 0, sizeof(n256->children));
        for (int b = 0; b < 256; ++b) {
          if (n48->child_index[b] != 0) {
            n256->children[b] = n48->children[n48->child_index[b] - 1];
          }
        }
        env.Write(n256, sizeof(Node256));
        env.Free(n48);
        return AddChild(env, &n256->head, byte, child);
      }
      case kNode256: {
        auto* n256 = reinterpret_cast<Node256*>(n);
        n256->children[byte] = child;
        ++n->num_children;
        env.Write(&n256->children[byte], sizeof(Node*));
        return n;
      }
      case kLeaf:
        break;
    }
    NUMALAB_CHECK(false && "AddChild on a leaf");
    return nullptr;
  }

  void InsertRec(workloads::Env& env, Node** ref, uint64_t key,
                 uint64_t value, int depth) {
    if (*ref == nullptr) {
      *ref = NewLeaf(env, key, value);
      return;
    }
    Node* n = *ref;
    if (n->type == kLeaf) {
      auto* leaf = reinterpret_cast<Leaf*>(n);
      env.Read(leaf, sizeof(Leaf));
      if (leaf->key == key) {
        leaf->value = value;
        env.Write(&leaf->value, sizeof(uint64_t));
        return;
      }
      // Split: create inner nodes until the two keys diverge.
      auto* n4 = static_cast<Node4*>(env.Alloc(sizeof(Node4)));
      n4->head = Node{kNode4, 0};
      env.Write(n4, sizeof(Node4));
      uint8_t existing_byte = KeyByte(leaf->key, depth);
      uint8_t new_byte = KeyByte(key, depth);
      *ref = &n4->head;
      if (existing_byte == new_byte) {
        // Keys still agree on this byte: push the old leaf down one level
        // and recurse — the split happens where they diverge.
        AddChild(env, &n4->head, existing_byte, n);
        Node** slot = ChildSlot(&n4->head, existing_byte);
        InsertRec(env, slot, key, value, depth + 1);
      } else {
        AddChild(env, &n4->head, existing_byte, n);
        AddChild(env, &n4->head, new_byte, NewLeaf(env, key, value));
      }
      return;
    }

    uint8_t byte = KeyByte(key, depth);
    Node* child = FindChild(env, n, byte);
    if (child == nullptr) {
      Node* grown = AddChild(env, n, byte, NewLeaf(env, key, value));
      *ref = grown;
      return;
    }
    // Descend via the child slot so splits can replace it in place.
    Node** slot = ChildSlot(n, byte);
    NUMALAB_CHECK(slot != nullptr);
    InsertRec(env, slot, key, value, depth + 1);
  }

  Node** ChildSlot(Node* n, uint8_t byte) {
    switch (n->type) {
      case kNode4: {
        auto* n4 = reinterpret_cast<Node4*>(n);
        for (int i = 0; i < n->num_children; ++i) {
          if (n4->keys[i] == byte) return &n4->children[i];
        }
        return nullptr;
      }
      case kNode16: {
        auto* n16 = reinterpret_cast<Node16*>(n);
        for (int i = 0; i < n->num_children; ++i) {
          if (n16->keys[i] == byte) return &n16->children[i];
        }
        return nullptr;
      }
      case kNode48: {
        auto* n48 = reinterpret_cast<Node48*>(n);
        if (n48->child_index[byte] == 0) return nullptr;
        return &n48->children[n48->child_index[byte] - 1];
      }
      case kNode256: {
        auto* n256 = reinterpret_cast<Node256*>(n);
        return n256->children[byte] != nullptr ? &n256->children[byte]
                                               : nullptr;
      }
      case kLeaf:
        break;
    }
    return nullptr;
  }
};

}  // namespace

std::unique_ptr<OrderedIndex> MakeArt() { return std::make_unique<Art>(); }

}  // namespace index
}  // namespace numalab
