#include "src/common/logging.h"
#include "src/index/index.h"

namespace numalab {
namespace index {

std::unique_ptr<OrderedIndex> MakeArt();
std::unique_ptr<OrderedIndex> MakeBTree();
std::unique_ptr<OrderedIndex> MakeSkipList(uint64_t seed);
std::unique_ptr<OrderedIndex> MakeMasstree();

const std::vector<std::string>& AllIndexNames() {
  static const std::vector<std::string> kNames = {"art", "masstree", "btree",
                                                  "skiplist"};
  return kNames;
}

std::unique_ptr<OrderedIndex> MakeIndex(const std::string& name,
                                        uint64_t seed) {
  if (name == "art") return MakeArt();
  if (name == "masstree") return MakeMasstree();
  if (name == "btree") return MakeBTree();
  if (name == "skiplist") return MakeSkipList(seed);
  NUMALAB_CHECK(false && "unknown index name");
  return nullptr;
}

}  // namespace index
}  // namespace numalab
