// Cache-optimized in-memory B+tree (after STX B+tree [18]).
//
// Inner and leaf nodes hold up to 32 sorted keys (two cache lines of keys),
// all allocated from the simulated allocator as two uniform size classes —
// the "many keys per node" profile the paper finds favorable for Hoard
// (Fig. 7c).

#include <cstring>

#include "src/common/logging.h"
#include "src/index/index.h"

namespace numalab {
namespace index {
namespace {

constexpr int kFanout = 32;  // max keys per node

struct NodeB {
  bool leaf;
  int count;
  uint64_t keys[kFanout];
};

struct InnerNode {
  NodeB head;
  NodeB* children[kFanout + 1];
};

struct LeafNode {
  NodeB head;
  uint64_t values[kFanout];
  LeafNode* next;  // leaf chain for scans
};

class BTree : public OrderedIndex {
 public:
  const char* name() const override { return "btree"; }

  void Insert(workloads::Env& env, uint64_t key, uint64_t value) override {
    if (root_ == nullptr) {
      auto* leaf = NewLeaf(env);
      leaf->head.keys[0] = key;
      leaf->values[0] = value;
      leaf->head.count = 1;
      env.Write(leaf, sizeof(LeafNode));
      root_ = &leaf->head;
      return;
    }
    uint64_t up_key = 0;
    NodeB* sibling = InsertRec(env, root_, key, value, &up_key);
    if (sibling != nullptr) {
      auto* new_root = NewInner(env);
      new_root->head.keys[0] = up_key;
      new_root->head.count = 1;
      new_root->children[0] = root_;
      new_root->children[1] = sibling;
      env.Write(new_root, sizeof(InnerNode));
      root_ = &new_root->head;
    }
  }

  bool Lookup(workloads::Env& env, uint64_t key, uint64_t* value) override {
    NodeB* n = root_;
    if (n == nullptr) return false;
    while (!n->leaf) {
      auto* inner = reinterpret_cast<InnerNode*>(n);
      // Binary search touches ~2 cache lines of keys plus the child slot.
      env.ReadSpan(n->keys, sizeof(uint64_t) * static_cast<size_t>(n->count));
      env.Compute(12);
      int i = UpperBound(n, key);
      env.Read(&inner->children[i], sizeof(NodeB*));
      n = inner->children[i];
    }
    auto* leaf = reinterpret_cast<LeafNode*>(n);
    env.ReadSpan(n->keys, sizeof(uint64_t) * static_cast<size_t>(n->count));
    env.Compute(12);
    int i = LowerBound(n, key);
    if (i < n->count && n->keys[i] == key) {
      env.Read(&leaf->values[i], sizeof(uint64_t));
      *value = leaf->values[i];
      return true;
    }
    return false;
  }

 private:
  NodeB* root_ = nullptr;

  LeafNode* NewLeaf(workloads::Env& env) {
    auto* leaf = static_cast<LeafNode*>(env.Alloc(sizeof(LeafNode)));
    leaf->head.leaf = true;
    leaf->head.count = 0;
    leaf->next = nullptr;
    return leaf;
  }
  InnerNode* NewInner(workloads::Env& env) {
    auto* inner = static_cast<InnerNode*>(env.Alloc(sizeof(InnerNode)));
    inner->head.leaf = false;
    inner->head.count = 0;
    return inner;
  }

  static int LowerBound(const NodeB* n, uint64_t key) {
    int lo = 0, hi = n->count;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (n->keys[mid] < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
  static int UpperBound(const NodeB* n, uint64_t key) {
    int lo = 0, hi = n->count;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (n->keys[mid] <= key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Inserts into the subtree at `n`; on split returns the new right sibling
  // and sets *up_key to the separator the parent must add.
  NodeB* InsertRec(workloads::Env& env, NodeB* n, uint64_t key,
                   uint64_t value, uint64_t* up_key) {
    env.ReadSpan(n->keys, sizeof(uint64_t) * static_cast<size_t>(n->count));
    env.Compute(12);

    if (n->leaf) {
      auto* leaf = reinterpret_cast<LeafNode*>(n);
      int i = LowerBound(n, key);
      if (i < n->count && n->keys[i] == key) {
        leaf->values[i] = value;
        env.Write(&leaf->values[i], sizeof(uint64_t));
        return nullptr;
      }
      // Shift and insert.
      std::memmove(&n->keys[i + 1], &n->keys[i],
                   sizeof(uint64_t) * static_cast<size_t>(n->count - i));
      std::memmove(&leaf->values[i + 1], &leaf->values[i],
                   sizeof(uint64_t) * static_cast<size_t>(n->count - i));
      n->keys[i] = key;
      leaf->values[i] = value;
      ++n->count;
      env.Write(&n->keys[i],
                sizeof(uint64_t) * static_cast<size_t>(n->count - i) * 2);
      if (n->count < kFanout) return nullptr;

      // Split the leaf in half.
      auto* right = NewLeaf(env);
      int half = n->count / 2;
      right->head.count = n->count - half;
      std::memcpy(right->head.keys, &n->keys[half],
                  sizeof(uint64_t) * static_cast<size_t>(right->head.count));
      std::memcpy(right->values, &leaf->values[half],
                  sizeof(uint64_t) * static_cast<size_t>(right->head.count));
      n->count = half;
      right->next = leaf->next;
      leaf->next = right;
      env.Write(right, sizeof(LeafNode));
      *up_key = right->head.keys[0];
      return &right->head;
    }

    auto* inner = reinterpret_cast<InnerNode*>(n);
    int i = UpperBound(n, key);
    env.Read(&inner->children[i], sizeof(NodeB*));
    uint64_t child_up = 0;
    NodeB* sibling = InsertRec(env, inner->children[i], key, value,
                               &child_up);
    if (sibling == nullptr) return nullptr;

    // Insert the separator into this inner node.
    std::memmove(&n->keys[i + 1], &n->keys[i],
                 sizeof(uint64_t) * static_cast<size_t>(n->count - i));
    std::memmove(&inner->children[i + 2], &inner->children[i + 1],
                 sizeof(NodeB*) * static_cast<size_t>(n->count - i));
    n->keys[i] = child_up;
    inner->children[i + 1] = sibling;
    ++n->count;
    env.Write(&n->keys[i],
              sizeof(uint64_t) * static_cast<size_t>(n->count - i) * 2);
    if (n->count < kFanout) return nullptr;

    // Split this inner node: middle key moves up.
    auto* right = NewInner(env);
    int half = n->count / 2;
    *up_key = n->keys[half];
    right->head.count = n->count - half - 1;
    std::memcpy(right->head.keys, &n->keys[half + 1],
                sizeof(uint64_t) * static_cast<size_t>(right->head.count));
    std::memcpy(right->children, &inner->children[half + 1],
                sizeof(NodeB*) * static_cast<size_t>(right->head.count + 1));
    n->count = half;
    env.Write(right, sizeof(InnerNode));
    return &right->head;
  }
};

}  // namespace

std::unique_ptr<OrderedIndex> MakeBTree() { return std::make_unique<BTree>(); }

}  // namespace index
}  // namespace numalab
