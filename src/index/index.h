// OrderedIndex — common interface for the four in-memory indexes evaluated
// by the index nested-loop join workload (W4, Fig. 7): ART, Masstree,
// B+tree and Skip List. All node memory comes from the run's simulated
// allocator and every node visit is charged through Env, so index
// performance responds to the allocator and placement knobs exactly as the
// paper investigates.

#ifndef NUMALAB_INDEX_INDEX_H_
#define NUMALAB_INDEX_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/workloads/env.h"

namespace numalab {
namespace index {

class OrderedIndex {
 public:
  virtual ~OrderedIndex() = default;

  /// Inserts or overwrites key -> value.
  virtual void Insert(workloads::Env& env, uint64_t key, uint64_t value) = 0;

  /// Point lookup; returns false when the key is absent.
  virtual bool Lookup(workloads::Env& env, uint64_t key,
                      uint64_t* value) = 0;

  virtual const char* name() const = 0;
};

/// Names accepted by MakeIndex, in the paper's order.
const std::vector<std::string>& AllIndexNames();

/// Creates "art", "masstree", "btree" or "skiplist"; CHECK-fails otherwise.
/// `seed` feeds randomized structures (Skip List levels).
std::unique_ptr<OrderedIndex> MakeIndex(const std::string& name,
                                        uint64_t seed);

}  // namespace index
}  // namespace numalab

#endif  // NUMALAB_INDEX_INDEX_H_
