// Shared-global concurrent chaining hash table, used by the aggregation
// workloads (W1/W2, after the design of [14]/[35]) and the hash join (W3,
// after Blanas et al. [15]).
//
// Chaining with striped locks: writers serialize per stripe via analytical
// VirtualLocks; reads during a probe-only phase are lock-free. All node
// memory comes from the run's simulated allocator, and every pointer chase
// is charged through Env — the table is the workloads' main source of both
// allocation pressure and NUMA traffic.
//
// Lock contract (machine-checked): every mutation happens between
// Env::LockAcquired(&stripe) and Env::LockReleased(&stripe) on the stripe
// owning the bucket. Those hooks carry clang thread-safety annotations
// (src/common/thread_annotations.h), so an unbalanced path — say an early
// return that forgets the release — fails -Werror=thread-safety in
// check.sh stage 10, and the same pair feeds the dynamic race detector its
// happens-before edge. Find()/ForEachInBuckets() are lock-free BY DESIGN:
// they are only legal in probe/merge phases that a barrier separates from
// all writers (the race detector checks that phase discipline dynamically;
// no static annotation expresses it).

#ifndef NUMALAB_INDEX_HASH_TABLE_H_
#define NUMALAB_INDEX_HASH_TABLE_H_

#include <cstdint>
#include <new>

#include "src/sim/sync.h"
#include "src/workloads/env.h"

namespace numalab {
namespace index {

inline uint64_t HashKey(uint64_t key) {
  // Fibonacci multiplicative hash; cheap and good enough for dense keys.
  return key * 0x9e3779b97f4a7c15ULL;
}

template <typename V>
class ConcurrentHashTable {
 public:
  struct Entry {
    uint64_t key;
    Entry* next;
    V value;
  };

  /// Creates the shared table. `env_setup` may be a worker Env or a setup
  /// Env outside any coroutine; the bucket array is one large allocation,
  /// so the memory placement policy governs where it lands.
  ConcurrentHashTable(workloads::Env& env, uint64_t nbuckets)
      : env0_(env), nbuckets_(RoundUpPow2(nbuckets)), mask_(nbuckets_ - 1) {
    buckets_ = static_cast<Entry**>(
        env.alloc->Alloc(nbuckets_ * sizeof(Entry*)));
    for (uint64_t i = 0; i < nbuckets_; ++i) buckets_[i] = nullptr;
    // Zeroing the bucket array is its first touch: under First Touch the
    // whole array lands on the constructing thread's node — the classic
    // shared-structure pathology the paper's Interleave results exploit.
    workloads::PretouchAsNode(env.mem, buckets_,
                              nbuckets_ * sizeof(Entry*), /*node=*/0);
  }

  uint64_t nbuckets() const { return nbuckets_; }

  /// Finds the entry for `key`, creating it (with value = V{}) if absent,
  /// then runs `mutate(entry)` before the stripe lock is conceptually
  /// released. Callers that modify the entry's value MUST do it inside
  /// `mutate`: the value update is only ordered against other threads'
  /// upserts of the same key while the stripe is held, and the race
  /// detector checks exactly that contract. Thread-safe via striped locks;
  /// charges all traffic to env's thread.
  ///
  /// Returns nullptr (without running `mutate`) when creating the entry
  /// fails under a faultlab plan — env.Failed() is then set and workers
  /// should wind down (but still arrive at shared barriers).
  template <typename F>
  Entry* UpsertWith(workloads::Env& env, uint64_t key, F&& mutate) {
    env.Compute(kHashCycles);
    uint64_t b = HashKey(key) & mask_;
    sim::VirtualLock& stripe = stripes_[b & kStripeMask];
    uint64_t wait = stripe.Acquire(env.self->clock, kLockHoldCycles);
    env.self->Charge(wait);
    env.self->counters.lock_wait_cycles += wait;
    env.LockAcquired(&stripe);

    env.Read(&buckets_[b], sizeof(Entry*));
    Entry* e = buckets_[b];
    while (e != nullptr) {
      env.Read(e, sizeof(uint64_t) + sizeof(Entry*));
      if (e->key == key) break;
      e = e->next;
    }
    if (e == nullptr) {
      void* raw = env.TryAlloc(sizeof(Entry));
      if (raw == nullptr) {
        env.LockReleased(&stripe);
        return nullptr;
      }
      e = static_cast<Entry*>(raw);
      new (e) Entry{key, buckets_[b], V{}};
      buckets_[b] = e;
      env.Write(e, sizeof(Entry));
      env.Write(&buckets_[b], sizeof(Entry*));
    }
    mutate(e);
    env.LockReleased(&stripe);
    return e;
  }

  /// UpsertWith without a value mutation (chain insert only).
  Entry* Upsert(workloads::Env& env, uint64_t key) {
    return UpsertWith(env, key, [](Entry*) {});
  }

  /// UpsertWith storing `v` — the shared build-table idiom (last writer of
  /// a duplicate key wins, under the stripe lock).
  Entry* UpsertSet(workloads::Env& env, uint64_t key, V v) {
    return UpsertWith(env, key, [&](Entry* e) { e->value = v; });
  }

  /// Lock-free lookup for probe-only phases. Returns nullptr when absent.
  Entry* Find(workloads::Env& env, uint64_t key) const {
    env.Compute(kHashCycles);
    uint64_t b = HashKey(key) & mask_;
    env.Read(&buckets_[b], sizeof(Entry*));
    Entry* e = buckets_[b];
    while (e != nullptr) {
      env.Read(e, sizeof(uint64_t) + sizeof(Entry*));
      if (e->key == key) return e;
      e = e->next;
    }
    return nullptr;
  }

  /// Visits entries of buckets [first, last) — used to partition the final
  /// aggregation pass among workers. Charges the chain walk.
  template <typename F>
  void ForEachInBuckets(workloads::Env& env, uint64_t first, uint64_t last,
                        F&& fn) {
    for (uint64_t b = first; b < last && b < nbuckets_; ++b) {
      env.Read(&buckets_[b], sizeof(Entry*));
      for (Entry* e = buckets_[b]; e != nullptr; e = e->next) {
        env.Read(e, sizeof(Entry));
        fn(e);
      }
    }
  }

 private:
  static constexpr uint64_t kHashCycles = 6;
  static constexpr uint64_t kLockHoldCycles = 40;
  static constexpr uint64_t kStripeMask = 2047;  // 2048 stripes

  static uint64_t RoundUpPow2(uint64_t v) {
    uint64_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  workloads::Env& env0_;
  uint64_t nbuckets_;
  uint64_t mask_;
  Entry** buckets_;
  sim::VirtualLock stripes_[2048];
};

}  // namespace index
}  // namespace numalab

#endif  // NUMALAB_INDEX_HASH_TABLE_H_
