// FaultLab — per-run runtime behind a FaultPlan: owns the seeded fault RNG,
// answers capacity/online queries, and draws injected failures.
//
// One FaultLab exists per SimContext when the run's plan is enabled; every
// consumer (SimOS, the allocator chain) holds a raw pointer that is null in
// the default no-fault configuration, so the off path costs one predictable
// branch — the same zero-cost contract as the race detector.
//
// Determinism: all draws come from one xoshiro stream seeded from
// (seed, run_index, seed_salt). Draw order is defined by the simulation
// itself (allocation order, migration order), which the scalar/span memory
// paths keep identical by the span-parity contract, so the same seed + plan
// reproduces the identical RunResult on either path.

#ifndef NUMALAB_FAULTLAB_FAULTLAB_H_
#define NUMALAB_FAULTLAB_FAULTLAB_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/faultlab/fault_plan.h"
#include "src/perf/counters.h"

namespace numalab {
namespace faultlab {

class FaultLab {
 public:
  /// \param sys counters the injected events are surfaced through (the
  ///        run's SystemCounters; lands in PerfReport/RunResult).
  FaultLab(const FaultPlan& plan, uint64_t seed, uint64_t run_index,
           perf::SystemCounters* sys);

  FaultLab(const FaultLab&) = delete;
  FaultLab& operator=(const FaultLab&) = delete;

  const FaultPlan& plan() const { return plan_; }

  /// Effective capacity of `node` given the machine's per-node size:
  /// absolute override if set, else machine_bytes x capacity_scale x
  /// node_capacity_scale[node]. Never below one small page.
  uint64_t NodeCapacityBytes(int node, uint64_t machine_bytes) const;

  /// False once an offline event for `node` has fired (now >= at_cycle).
  bool NodeOnline(int node, uint64_t now) const;

  /// One Bernoulli draw per allocator call; consumes RNG only when
  /// alloc_fail_prob > 0 so inert dimensions stay draw-free.
  bool DrawAllocFailure();

  /// One Bernoulli draw per attempted page migration.
  bool DrawMigrationFailure();

 private:
  FaultPlan plan_;
  Rng rng_;
  perf::SystemCounters* sys_;
};

/// Canned memory-pressure plan used by the --faultlab=1 bench mode and the
/// scripts/check.sh fault-injection stage: every node capped (default
/// 64 MiB) so bench-sized workloads overflow their hot nodes and must
/// spill, while total capacity still fits the working set (status stays
/// OK — capacity pressure redirects binds, it never fails allocations).
FaultPlan MemoryPressurePlan(uint64_t node_capacity_bytes = 64ULL << 20);

}  // namespace faultlab
}  // namespace numalab

#endif  // NUMALAB_FAULTLAB_FAULTLAB_H_
