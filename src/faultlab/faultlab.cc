#include "src/faultlab/faultlab.h"

#include <algorithm>

namespace numalab {
namespace faultlab {

namespace {
// Mirrors the scheduler's per-run-index perturbation (sim_context.cc) with
// a distinct odd multiplier so fault draws and scheduler noise decorrelate.
uint64_t MixSeed(uint64_t seed, uint64_t run_index, uint64_t salt) {
  SplitMix64 sm(seed ^ (run_index * 0x9e3779b97f4a7c15ULL) ^ salt);
  sm.Next();
  return sm.Next();
}
constexpr uint64_t kSmallPageBytes = 4096;
}  // namespace

FaultLab::FaultLab(const FaultPlan& plan, uint64_t seed, uint64_t run_index,
                   perf::SystemCounters* sys)
    : plan_(plan),
      rng_(MixSeed(seed, run_index, plan.seed_salt)),
      sys_(sys) {}

uint64_t FaultLab::NodeCapacityBytes(int node, uint64_t machine_bytes) const {
  if (plan_.node_capacity_bytes != 0) {
    return std::max(plan_.node_capacity_bytes, kSmallPageBytes);
  }
  double scale = plan_.capacity_scale;
  if (static_cast<size_t>(node) < plan_.node_capacity_scale.size()) {
    scale *= plan_.node_capacity_scale[static_cast<size_t>(node)];
  }
  auto capped = static_cast<uint64_t>(static_cast<double>(machine_bytes) *
                                      scale);
  return std::max(capped, kSmallPageBytes);
}

bool FaultLab::NodeOnline(int node, uint64_t now) const {
  for (const NodeOffline& off : plan_.offline) {
    if (off.node == node && now >= off.at_cycle) return false;
  }
  return true;
}

bool FaultLab::DrawAllocFailure() {
  if (plan_.alloc_fail_prob <= 0.0) return false;
  if (!rng_.Bernoulli(plan_.alloc_fail_prob)) return false;
  ++sys_->alloc_failures_injected;
  return true;
}

bool FaultLab::DrawMigrationFailure() {
  if (plan_.migration_fail_prob <= 0.0) return false;
  if (!rng_.Bernoulli(plan_.migration_fail_prob)) return false;
  ++sys_->migration_failures_injected;
  return true;
}

FaultPlan MemoryPressurePlan(uint64_t node_capacity_bytes) {
  FaultPlan plan;
  plan.node_capacity_bytes = node_capacity_bytes;
  return plan;
}

}  // namespace faultlab
}  // namespace numalab
