// FaultPlan — declarative description of the faults injected into one
// simulated run (RunConfig::faults).
//
// A default-constructed plan is inert: enabled() is false, no subsystem
// attaches a FaultLab, and every run is bit-identical to a build without
// faultlab at all. A non-default plan is threaded through SimContext into
// SimOS (capacity + spill + offline nodes + migration failure), MemSystem
// (degraded interconnect links) and the allocator chain (allocation-failure
// injection). All randomness the plan triggers flows through the run's
// seeded RNG, so the same seed + plan reproduces the identical RunResult.
//
// This header is pure configuration — no simulator dependencies — so
// RunConfig can include it without dragging mem/ into every translation
// unit.

#ifndef NUMALAB_FAULTLAB_FAULT_PLAN_H_
#define NUMALAB_FAULTLAB_FAULT_PLAN_H_

#include <cstdint>
#include <vector>

namespace numalab {
namespace faultlab {

/// \brief Takes `node` offline once virtual time reaches `at_cycle`:
/// new page binds and migration targets skip it (existing pages keep
/// serving — the model is a node withdrawn from allocation, not poweroff).
struct NodeOffline {
  int node = -1;
  uint64_t at_cycle = 0;
};

struct FaultPlan {
  /// Uniform per-node capacity multiplier applied to
  /// Machine::node_memory_bytes (0.25 simulates 4x memory pressure).
  double capacity_scale = 1.0;
  /// Absolute per-node capacity override in bytes; 0 = off. Applied after
  /// capacity_scale, so tests can pin tiny capacities regardless of the
  /// machine's real size.
  uint64_t node_capacity_bytes = 0;
  /// Per-node multipliers (indexed by node id, missing entries = 1.0),
  /// composed with capacity_scale — models asymmetric pressure.
  std::vector<double> node_capacity_scale;

  /// Probability that one allocator call fails with a simulated ENOMEM.
  /// Drawn once per SimAllocator::TryAlloc from a worker thread.
  double alloc_fail_prob = 0.0;
  /// Probability that one AutoNUMA page migration silently fails (the
  /// kernel's migrate_pages can fail on pinned/busy pages).
  double migration_fail_prob = 0.0;

  /// Nodes withdrawn from allocation at a virtual cycle.
  std::vector<NodeOffline> offline;

  /// Interconnect link ids (Machine::links) whose traversals get their DRAM
  /// latency multiplied by link_latency_scale — a flaky or downtrained link.
  std::vector<int> degraded_links;
  double link_latency_scale = 1.0;

  /// Mixed into the run seed so two plans on the same config draw
  /// independent fault sequences.
  uint64_t seed_salt = 0;

  /// True when any field differs from the inert default (seed_salt alone
  /// does not enable a plan).
  bool enabled() const {
    return capacity_scale != 1.0 || node_capacity_bytes != 0 ||
           !node_capacity_scale.empty() || alloc_fail_prob != 0.0 ||
           migration_fail_prob != 0.0 || !offline.empty() ||
           !degraded_links.empty();
  }
};

}  // namespace faultlab
}  // namespace numalab

#endif  // NUMALAB_FAULTLAB_FAULT_PLAN_H_
