// numalab::serve implementation. See serve.h for the model.
//
// Determinism notes: every random draw (request payloads, arrival gaps,
// retry jitter — there is none) comes from one host-side Rng seeded from
// (rc.seed, run_index); arrival events are scheduled through the engine's
// deterministic event queue; and all shared mutable state (the node
// queues) is only touched from worker coroutines under a VirtualLock or
// from events, both of which the single-host-thread engine serializes in
// virtual-time order. Two same-seed runs are therefore bit-identical,
// which scripts/check.sh's serving stage enforces on bench_serving.

#include "src/serve/serve.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/datagen/datagen.h"
#include "src/faultlab/faultlab.h"
#include "src/index/hash_table.h"
#include "src/minidb/queries.h"
#include "src/minidb/tpch_gen.h"
#include "src/trace/export.h"
#include "src/trace/trace.h"
#include "src/workloads/sim_context.h"

namespace numalab {
namespace serve {
namespace {

using workloads::Env;
using workloads::SimContext;

// Server-side cost constants (virtual cycles). Dispatch covers request
// parse + route + response marshalling; it is paid once per *batch*, which
// together with the single queue-lock acquire is the amortization the
// dynamic batcher wins on.
constexpr uint64_t kDispatchCycles = 150;
constexpr uint64_t kQueueOpCycles = 30;    // lock hold per dispatch
constexpr uint64_t kPointCycles = 50;      // per point lookup
constexpr uint64_t kRangePerRowCycles = 4;
constexpr uint64_t kProbeCycles = 40;
constexpr uint64_t kUpsertCycles = 40;
constexpr uint64_t kBatchSortCycles = 12;  // per batched request
constexpr uint64_t kIdlePollCycles = 400;  // empty-queue poll
constexpr uint64_t kBatchPollCycles = 120; // batch-window poll

struct Request {
  RequestType type = RequestType::kPointGet;
  uint64_t key = 0;        // point/probe/upsert key; range start; tpch salt
  uint32_t rows = 0;       // kRangeAgg only
  int target_node = -1;    // set by routing on (each) admission attempt
  int attempts = 0;
  int session = -1;        // closed-loop session id, -1 for open loop
  uint64_t arrival = 0;    // first submission cycle
};

/// Bounded per-node request ring. The slot array lives in simulated memory
/// on its node, so draining a remote queue pays remote DRAM. Producers are
/// arrival *events* (exogenous clients; their writes model NIC DMA and are
/// not charged to any server thread); consumers are worker coroutines that
/// serialize on the VirtualLock and charge their slot reads/writes.
///
/// Lock contract: `lock` guards the consumer side — a worker may pop
/// (advance `head`, read `slots`) only between Env::LockAcquired(&lock)
/// and Env::LockReleased(&lock), which clang's thread-safety analysis
/// checks for balance (see src/common/thread_annotations.h). Two accesses
/// are intentionally outside the lock and are sound only because the
/// engine serializes everything on one host thread in virtual-time order:
///  * the producer SubmitRequest writes `slots`/`tail` from event context
///    (exogenous NIC-DMA model; events never interleave with a worker's
///    critical section), and
///  * depth() and the batch-window head peek are unlocked reads used as a
///    scheduling hint; the pop that follows re-reads under the lock.
struct NodeQueue {
  uint32_t* slots = nullptr;
  uint64_t head = 0;
  uint64_t tail = 0;
  uint64_t cap = 0;
  sim::VirtualLock lock;

  uint64_t depth() const { return tail - head; }
};

struct ClosedSession {
  uint32_t next = 0;  // next request id in this session's block
  uint32_t end = 0;
};

using ProbeTable = index::ConcurrentHashTable<uint64_t>;

struct ServeState {
  const ServeConfig* sc = nullptr;
  SimContext* ctx = nullptr;
  int nodes = 1;

  // Data plane.
  std::vector<datagen::Record*> parts;  // per-node partition base
  uint64_t keys_per_node = 1;
  datagen::JoinTuple* build = nullptr;  // probe-table build side (sim mem)
  uint64_t build_rows = 0;
  ProbeTable* probe_table = nullptr;
  std::unique_ptr<minidb::Database> db;  // null when the mix has no TPC-H
  const minidb::SystemProfile* prof = nullptr;
  storage::StorageEngine* store = nullptr;  // null unless storage.enabled

  // Request plane.
  std::vector<Request> reqs;
  std::vector<NodeQueue> queues;
  std::vector<ClosedSession> sessions;
  std::vector<uint64_t> open_offsets;  // open-loop arrival offsets
  uint64_t outstanding = 0;  // submitted-or-pending requests not yet resolved
  bool serving_open = false;

  // Measurements (host-side bookkeeping; never read by simulated code).
  ServingStats st;
  std::vector<uint64_t> lat[kNumRequestTypes];  // sojourns per type
  std::vector<Histogram> worker_hist;           // merged at Finish
};

// ---------------------------------------------------------------------------
// Admission control.

/// Routes a request to the node owning its data, falling back per the
/// active MemPolicy when ownership is ill-defined: kPreferred binds all
/// traffic to the preferred node, kInterleave has no owner (pages are
/// round-robined) so requests hash-spread instead.
int RouteNode(const ServeState& s, const Request& r) {
  if (s.sc->spread_reads && (r.type == RequestType::kPointGet ||
                             r.type == RequestType::kRangeAgg)) {
    return static_cast<int>((index::HashKey(r.key) >> 32) %
                            static_cast<uint64_t>(s.nodes));
  }
  switch (s.ctx->config().policy) {
    case mem::MemPolicy::kPreferred:
      return s.ctx->config().preferred_node % s.nodes;
    case mem::MemPolicy::kInterleave:
      return static_cast<int>((index::HashKey(r.key) >> 32) %
                              static_cast<uint64_t>(s.nodes));
    default:
      break;
  }
  switch (r.type) {
    case RequestType::kPointGet:
    case RequestType::kRangeAgg:
      return static_cast<int>(
          std::min<uint64_t>(r.key / s.keys_per_node,
                             static_cast<uint64_t>(s.nodes) - 1));
    default:
      // Probe/upsert targets and TPC-H queries hash-spread: the shared
      // table's stripes live everywhere, and a serial analytic query only
      // needs *a* server, not a particular one.
      return static_cast<int>((index::HashKey(r.key) >> 32) %
                              static_cast<uint64_t>(s.nodes));
  }
}

/// Queue bound for this admission decision. Under faultlab memory pressure
/// (spilled or last-resort pages observed so far) the bound halves: a
/// degrading node should shed earlier, not queue deeper.
uint64_t EffectiveCap(const ServeState& s) {
  const perf::SystemCounters* sys = s.ctx->memsys()->sys();
  uint64_t pressure = sys->pages_spilled + sys->oom_last_resort_pages;
  uint64_t cap = s.sc->queue_cap;
  if (pressure > 0) cap = std::max<uint64_t>(1, cap / 2);
  return cap;
}

void SubmitRequest(ServeState& s, uint32_t id, uint64_t now);

void ResolveForSession(ServeState& s, const Request& r, uint64_t now) {
  if (r.session < 0) return;
  ClosedSession& sess = s.sessions[static_cast<size_t>(r.session)];
  if (sess.next >= sess.end) return;
  uint32_t next_id = sess.next++;
  s.ctx->engine()->ScheduleEvent(now + s.sc->think_cycles,
                                 [&s, next_id, now] {
                                   SubmitRequest(s, next_id,
                                                 now + s.sc->think_cycles);
                                 });
}

/// One admission attempt. Runs in event context (arrivals, retries), so it
/// charges no server cycles — the server pays on dispatch. Rejections
/// schedule a retry-after (exponential backoff) until the budget is spent,
/// then the request is dropped.
void SubmitRequest(ServeState& s, uint32_t id, uint64_t now) {
  Request& r = s.reqs[id];
  if (r.attempts == 0) {
    r.arrival = now;
    if (s.st.offered == 0 || now < s.st.first_arrival_cycle) {
      s.st.first_arrival_cycle = now;
    }
    ++s.st.offered;
  }

  int node = RouteNode(s, r);
  if (faultlab::FaultLab* fl = s.ctx->faults()) {
    // A withdrawn node still serves its resident data in the memory model,
    // but the serving layer stops *dispatching* to it: reroute to the next
    // online node, deterministically.
    int probe = node;
    bool found = false;
    for (int i = 0; i < s.nodes; ++i) {
      int cand = (node + i) % s.nodes;
      if (fl->NodeOnline(cand, now)) {
        probe = cand;
        found = true;
        break;
      }
    }
    if (found && probe != node) {
      ++s.st.nodes[static_cast<size_t>(node)].redirected_offline;
      node = probe;
    } else if (!found) {
      node = -1;  // nothing online: treat as a full-system rejection
    }
  }

  NodeQueue* q = node >= 0 ? &s.queues[static_cast<size_t>(node)] : nullptr;
  if (q == nullptr || q->depth() >= EffectiveCap(s)) {
    ++s.st.rejected;
    if (node >= 0) ++s.st.nodes[static_cast<size_t>(node)].rejected;
    ++r.attempts;
    if (r.attempts <= s.sc->max_retries) {
      // Retry-after: the client backs off 1x, 2x, 4x... the base interval.
      uint64_t backoff = s.sc->retry_backoff_cycles
                         << (r.attempts - 1 < 8 ? r.attempts - 1 : 8);
      ++s.st.retries;
      s.ctx->engine()->ScheduleEvent(
          now + backoff,
          [&s, id, now, backoff] { SubmitRequest(s, id, now + backoff); });
    } else {
      ++s.st.dropped;
      --s.outstanding;
      ResolveForSession(s, r, now);
    }
    return;
  }

  r.target_node = node;
  q->slots[q->tail % q->cap] = id;
  ++q->tail;
  ++s.st.admitted;
  NodeStats& ns = s.st.nodes[static_cast<size_t>(node)];
  ++ns.enqueued;
  ns.max_depth = std::max(ns.max_depth, q->depth());
  s.st.max_queue_depth = std::max(s.st.max_queue_depth, q->depth());
}

// ---------------------------------------------------------------------------
// Request generation (host-side, before the simulation starts).

struct MixCdf {
  double cum[kNumRequestTypes];
};

MixCdf BuildMix(const ServeConfig& sc) {
  double w[kNumRequestTypes] = {sc.mix_point, sc.mix_range, sc.mix_probe,
                                sc.mix_upsert, sc.mix_tpch};
  double total = 0;
  for (double x : w) total += x < 0 ? 0 : x;
  NUMALAB_CHECK(total > 0);
  MixCdf m;
  double run = 0;
  for (int i = 0; i < kNumRequestTypes; ++i) {
    run += (w[i] < 0 ? 0 : w[i]) / total;
    m.cum[i] = run;
  }
  m.cum[kNumRequestTypes - 1] = 1.0;
  return m;
}

void GenerateRequests(ServeState& s, Rng& rng) {
  const ServeConfig& sc = *s.sc;
  MixCdf mix = BuildMix(sc);
  uint64_t cursor = rng.Uniform(sc.kv_keys);  // point-locality scan cursor
  s.reqs.resize(sc.requests);
  for (uint64_t i = 0; i < sc.requests; ++i) {
    Request& r = s.reqs[i];
    double u = rng.NextDouble();
    int t = 0;
    while (t < kNumRequestTypes - 1 && u >= mix.cum[t]) ++t;
    r.type = static_cast<RequestType>(t);
    switch (r.type) {
      case RequestType::kPointGet:
        // Hot-set draw first (short-circuit keeps the stream bit-identical
        // when the skew is off); hot hits leave the scan cursor alone.
        if (sc.hot_fraction > 0 && sc.hot_keys > 0 &&
            rng.Bernoulli(sc.hot_fraction)) {
          r.key = rng.Uniform(sc.hot_keys);
          break;
        }
        if (rng.Bernoulli(sc.point_locality)) {
          cursor = (cursor + 1) % sc.kv_keys;
        } else {
          cursor = rng.Uniform(sc.kv_keys);
        }
        r.key = cursor;
        break;
      case RequestType::kRangeAgg: {
        uint64_t span = sc.kv_keys > sc.range_rows
                            ? sc.kv_keys - sc.range_rows
                            : 1;
        if (sc.hot_fraction > 0 && sc.hot_keys > 0 &&
            rng.Bernoulli(sc.hot_fraction)) {
          span = sc.hot_keys > sc.range_rows ? sc.hot_keys - sc.range_rows
                                             : 1;
        }
        r.key = rng.Uniform(span);
        r.rows = static_cast<uint32_t>(sc.range_rows);
        break;
      }
      case RequestType::kProbe:
        // ~80% hits: probe keys drawn from [0, 1.25 * build_rows).
        r.key = rng.Uniform(s.build_rows + s.build_rows / 4 + 1);
        break;
      case RequestType::kUpsert:
        r.key = rng.Uniform(s.build_rows * 2 + 1);
        break;
      case RequestType::kTpch:
        r.key = rng.Next();  // routing salt only
        break;
    }
  }

  if (sc.arrival == Arrival::kClosed) {
    int nsess = std::max(1, sc.sessions);
    uint64_t per = sc.requests / static_cast<uint64_t>(nsess);
    s.sessions.resize(static_cast<size_t>(nsess));
    uint64_t next = 0;
    for (int i = 0; i < nsess; ++i) {
      uint64_t end = i == nsess - 1 ? sc.requests : next + per;
      s.sessions[static_cast<size_t>(i)] = {
          static_cast<uint32_t>(next), static_cast<uint32_t>(end)};
      for (uint64_t j = next; j < end; ++j) s.reqs[j].session = i;
      next = end;
    }
    return;
  }

  s.open_offsets.resize(sc.requests);
  uint64_t gap = std::max<uint64_t>(1, sc.mean_gap_cycles);
  switch (sc.arrival) {
    case Arrival::kFixed:
      for (uint64_t i = 0; i < sc.requests; ++i) s.open_offsets[i] = i * gap;
      break;
    case Arrival::kPoisson: {
      uint64_t t = 0;
      for (uint64_t i = 0; i < sc.requests; ++i) {
        double e = -std::log(1.0 - rng.NextDouble()) *
                   static_cast<double>(gap);
        t += std::max<uint64_t>(1, static_cast<uint64_t>(e));
        s.open_offsets[i] = t;
      }
      break;
    }
    case Arrival::kBurst: {
      uint64_t b = std::max<uint64_t>(1, sc.burst_size);
      for (uint64_t i = 0; i < sc.requests; ++i) {
        s.open_offsets[i] = (i / b) * b * gap;
      }
      break;
    }
    case Arrival::kClosed:
      break;  // handled above
  }
}

/// Schedules the whole client side. Runs once, from worker 0, right after
/// the warmup barrier, so serving opens only when the data plane is built.
void StartClients(ServeState& s, uint64_t base) {
  sim::Engine* eng = s.ctx->engine();
  if (s.sc->arrival == Arrival::kClosed) {
    for (size_t i = 0; i < s.sessions.size(); ++i) {
      ClosedSession& sess = s.sessions[i];
      if (sess.next >= sess.end) continue;
      uint32_t id = sess.next++;
      // Stagger session starts so the initial wave is not one burst.
      uint64_t at = base + (static_cast<uint64_t>(i) + 1) *
                               std::max<uint64_t>(1, s.sc->think_cycles /
                                                         (s.sessions.size() +
                                                          1));
      eng->ScheduleEvent(at, [&s, id, at] { SubmitRequest(s, id, at); });
    }
    return;
  }
  for (uint64_t i = 0; i < s.open_offsets.size(); ++i) {
    uint64_t at = base + 1 + s.open_offsets[i];
    uint32_t id = static_cast<uint32_t>(i);
    eng->ScheduleEvent(at, [&s, id, at] { SubmitRequest(s, id, at); });
  }
}

// ---------------------------------------------------------------------------
// Dispatch + execution.

/// Records a completion: sojourn into the exact per-type vector and the
/// worker's mergeable histogram, response digest into the order-independent
/// checksum, and (closed loop) the session's next submission.
void OnCompleted(ServeState& s, Env& env, const Request& r,
                 uint64_t response) {
  uint64_t now = env.self->clock;
  uint64_t sojourn = now > r.arrival ? now - r.arrival : 0;
  ++s.st.completed;
  s.st.last_completion_cycle = std::max(s.st.last_completion_cycle, now);
  s.lat[static_cast<int>(r.type)].push_back(sojourn);
  s.worker_hist[static_cast<size_t>(env.worker_index)].Add(sojourn);
  s.st.checksum += response + index::HashKey(r.key);
  --s.outstanding;
  ResolveForSession(s, r, now);
}

uint64_t PointValue(uint64_t key) {
  return key * 0x9e3779b97f4a7c15ULL ^ (key >> 7);
}

/// The server worker: warm up the shared data plane, then drain queues
/// (home node first, then work-steal in deterministic order) until every
/// offered request has been completed or dropped.
sim::Task ServeWorker(Env& env, ServeState& s) {
  trace::ScopedSpan worker_span(env.self, "worker");
  const ServeConfig& sc = *s.sc;

  // --- Warmup: stripe the probe-table build across workers (UpsertSet
  // under the stripe lock, exactly the W3 build idiom). ---
  {
    trace::ScopedSpan warm_span(env.self, "warmup");
    uint64_t per = s.build_rows / static_cast<uint64_t>(env.num_workers);
    uint64_t lo = per * static_cast<uint64_t>(env.worker_index);
    uint64_t hi = env.worker_index == env.num_workers - 1 ? s.build_rows
                                                          : lo + per;
    for (uint64_t i = lo; i < hi && !env.Failed(); ++i) {
      env.Read(&s.build[i], sizeof(datagen::JoinTuple));
      s.probe_table->UpsertSet(env, s.build[i].key, s.build[i].payload);
      co_await env.Checkpoint();
    }
    co_await s.ctx->barrier()->Arrive();
  }

  if (env.worker_index == 0 && !env.Failed()) {
    StartClients(s, env.self->clock);
    s.serving_open = true;
  }

  trace::ScopedSpan serve_span(env.self, "serve");
  int home = env.worker_index % s.nodes;
  uint32_t batch[256];
  const uint64_t batch_max =
      std::min<uint64_t>(std::max<uint64_t>(1, sc.batch_max), 256);

  while (s.outstanding > 0 && !env.Failed()) {
    // Pick the first non-empty queue, home node first. Scanning queue
    // depths is host-side (the real signal would be a futex/doorbell);
    // the pop itself is charged below.
    int node = -1;
    for (int i = 0; i < s.nodes; ++i) {
      int cand = (home + i) % s.nodes;
      if (s.queues[static_cast<size_t>(cand)].depth() > 0) {
        node = cand;
        break;
      }
    }
    if (node < 0) {
      env.Compute(kIdlePollCycles);
      co_await env.Checkpoint();
      continue;
    }

    NodeQueue& q = s.queues[static_cast<size_t>(node)];
    uint64_t nbatch = 0;

    // Pop one dispatch under the queue lock: the head request, plus — if it
    // is a point lookup — every immediately-following point lookup up to
    // batch_max.
    auto drain = [&](Env& e) {
      uint64_t wait = q.lock.Acquire(e.self->clock, kQueueOpCycles);
      e.self->Charge(wait);
      e.self->counters.lock_wait_cycles += wait;
      e.LockAcquired(&q.lock);
      while (q.depth() > 0 && nbatch < batch_max) {
        uint32_t id = q.slots[q.head % q.cap];
        e.Read(&q.slots[q.head % q.cap], sizeof(uint32_t));
        if (nbatch > 0 &&
            s.reqs[id].type != RequestType::kPointGet) {
          break;  // only point lookups coalesce
        }
        e.Write(&q.slots[q.head % q.cap], sizeof(uint32_t));
        ++q.head;
        batch[nbatch++] = id;
        if (s.reqs[id].type != RequestType::kPointGet) break;
      }
      e.LockReleased(&q.lock);
    };
    drain(env);
    if (nbatch == 0) continue;  // raced with another worker's pop

    // Dynamic batching: a non-full point batch may wait a bounded window
    // for more coalescible arrivals — trading a little latency for the
    // amortized dispatch the throughput numbers show.
    if (s.reqs[batch[0]].type == RequestType::kPointGet &&
        nbatch < batch_max && sc.batch_window_cycles > 0 && batch_max > 1) {
      uint64_t deadline = env.self->clock + sc.batch_window_cycles;
      while (nbatch < batch_max && env.self->clock < deadline &&
             s.outstanding > nbatch) {
        env.Compute(kBatchPollCycles);
        co_await env.Checkpoint();
        if (q.depth() > 0 &&
            s.reqs[q.slots[q.head % q.cap]].type == RequestType::kPointGet) {
          drain(env);
        }
      }
    }

    env.Compute(kDispatchCycles);
    ++s.st.batches;
    s.st.max_batch = std::max<uint64_t>(s.st.max_batch, nbatch);

    if (s.reqs[batch[0]].type == RequestType::kPointGet) {
      if (nbatch > 1) {
        s.st.batched_requests += nbatch;
        // Sort by key so adjacent keys become contiguous record runs.
        env.Compute(nbatch * kBatchSortCycles);
        std::sort(batch, batch + nbatch, [&](uint32_t a, uint32_t b) {
          return s.reqs[a].key < s.reqs[b].key;
        });
      }
      if (s.store != nullptr) {
        // Storage mode: the batch still amortizes dispatch + queue lock,
        // and the key sort turns adjacent keys into same-page hits in the
        // buffer pool (the paged analogue of the span coalescing below).
        for (uint64_t x = 0; x < nbatch; ++x) {
          const Request& pr = s.reqs[batch[x]];
          uint64_t v = 0;
          s.store->Get(env, pr.key % sc.kv_keys, &v);
          env.Compute(kPointCycles);
          OnCompleted(s, env, pr, v);
        }
        co_await env.Checkpoint();
        continue;
      }
      uint64_t i = 0;
      while (i < nbatch) {
        // Coalesce a run of consecutive keys into one span access — the
        // PR-1 AccessSpan fast path. Keys outside this node's partition
        // (policy-fallback routing) read their owning partition instead.
        uint64_t k0 = s.reqs[batch[i]].key;
        uint64_t j = i + 1;
        while (j < nbatch && s.reqs[batch[j]].key == k0 + (j - i)) ++j;
        uint64_t owner = std::min<uint64_t>(
            k0 / s.keys_per_node, static_cast<uint64_t>(s.nodes) - 1);
        datagen::Record* arr = s.parts[static_cast<size_t>(owner)];
        uint64_t local = k0 - owner * s.keys_per_node;
        uint64_t run = std::min(j - i, s.keys_per_node - local);
        env.ReadSpan(&arr[local], run * sizeof(datagen::Record),
                     sizeof(datagen::Record));
        env.Compute((j - i) * kPointCycles);
        for (uint64_t x = i; x < j; ++x) {
          OnCompleted(s, env, s.reqs[batch[x]],
                      PointValue(s.reqs[batch[x]].key));
        }
        i = j;
      }
      co_await env.Checkpoint();
      continue;
    }

    // Non-batched types execute singly (nbatch == 1).
    const Request& r = s.reqs[batch[0]];
    switch (r.type) {
      case RequestType::kRangeAgg: {
        if (s.store != nullptr) {
          uint64_t sum = s.store->ScanSum(env, r.key % sc.kv_keys, r.rows);
          env.Compute(static_cast<uint64_t>(r.rows) * kRangePerRowCycles);
          OnCompleted(s, env, r, sum);
          break;
        }
        uint64_t owner = std::min<uint64_t>(
            r.key / s.keys_per_node, static_cast<uint64_t>(s.nodes) - 1);
        datagen::Record* arr = s.parts[static_cast<size_t>(owner)];
        uint64_t local = r.key - owner * s.keys_per_node;
        uint64_t rows = std::min<uint64_t>(r.rows,
                                           s.keys_per_node - local);
        env.ReadSpan(&arr[local], rows * sizeof(datagen::Record),
                     sizeof(datagen::Record));
        env.Compute(rows * kRangePerRowCycles);
        uint64_t sum = 0;
        for (uint64_t x = 0; x < rows; ++x) {
          sum += static_cast<uint64_t>(arr[local + x].val);
        }
        OnCompleted(s, env, r, sum);
        break;
      }
      case RequestType::kProbe: {
        ProbeTable::Entry* e = s.probe_table->Find(env, r.key);
        env.Compute(kProbeCycles);
        OnCompleted(s, env, r, e != nullptr ? e->value : 0);
        break;
      }
      case RequestType::kUpsert: {
        uint64_t v = PointValue(r.key);
        if (s.store != nullptr) {
          // Durable write: WAL append (group commit), then the in-frame
          // slot update. A false return means the buffer pool could not
          // materialize the page (allocation chain exhausted).
          if (!s.store->Upsert(env, r.key % sc.kv_keys, v)) v = 0;
        } else if (s.probe_table->UpsertSet(env, r.key, v) == nullptr) {
          // Injected allocation failure: the table entry could not be
          // created; the request still completes (as a failed write).
          v = 0;
        }
        env.Compute(kUpsertCycles);
        OnCompleted(s, env, r, v);
        break;
      }
      case RequestType::kTpch: {
        // One analytic query executed serially by this server: nworkers=1
        // morsel loop with checkpoints, serial phases inline. The shadow
        // Env pins worker_index to 0 because phase bodies index per-worker
        // state (QueryState::locals) by it.
        Env tenv = env;
        tenv.worker_index = 0;
        tenv.num_workers = 1;
        minidb::QCtx qc{&tenv, s.prof};
        minidb::QueryState qs;
        qs.Prepare(s.db.get(), 1);
        minidb::QueryPlan plan =
            minidb::BuildTpchPlan(s.sc->tpch_query, &qs);
        for (const minidb::Phase& phase : plan.phases) {
          if (env.Failed()) break;
          if (phase.rows == 0) {
            phase.body(qc, 0, 0);
          } else {
            for (uint64_t m = 0; m < phase.rows; m += minidb::kMorselRows) {
              phase.body(qc, m,
                         std::min(m + minidb::kMorselRows, phase.rows));
              co_await env.Checkpoint();
            }
          }
          co_await env.Checkpoint();
        }
        OnCompleted(s, env, r,
                    qs.out.rows +
                        static_cast<uint64_t>(std::llround(qs.out.digest)));
        break;
      }
      case RequestType::kPointGet:
        break;  // handled above
    }
    co_await env.Checkpoint();
  }
}

uint64_t PercentileU64(std::vector<uint64_t>* xs, double p) {
  if (xs->empty()) return 0;
  std::sort(xs->begin(), xs->end());
  double rank = (p / 100.0) * static_cast<double>(xs->size() - 1);
  size_t idx = std::min(static_cast<size_t>(rank + 0.5), xs->size() - 1);
  return (*xs)[idx];
}

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, static_cast<size_t>(n) < sizeof(buf)
                                  ? static_cast<size_t>(n)
                                  : sizeof(buf) - 1);
}

}  // namespace

const char* ArrivalName(Arrival a) {
  switch (a) {
    case Arrival::kFixed: return "fixed";
    case Arrival::kPoisson: return "poisson";
    case Arrival::kBurst: return "burst";
    case Arrival::kClosed: return "closed";
  }
  return "?";
}

bool ArrivalFromName(const std::string& name, Arrival* out) {
  for (Arrival a : {Arrival::kFixed, Arrival::kPoisson, Arrival::kBurst,
                    Arrival::kClosed}) {
    if (name == ArrivalName(a)) {
      *out = a;
      return true;
    }
  }
  return false;
}

const char* RequestTypeName(RequestType t) {
  switch (t) {
    case RequestType::kPointGet: return "point";
    case RequestType::kRangeAgg: return "range";
    case RequestType::kProbe: return "probe";
    case RequestType::kUpsert: return "upsert";
    case RequestType::kTpch: return "tpch";
  }
  return "?";
}

ServeResult RunServing(const workloads::RunConfig& rc,
                       const ServeConfig& sc) {
  SimContext ctx(rc);
  ServeState s;
  s.sc = &sc;
  s.ctx = &ctx;
  s.nodes = ctx.machine().num_nodes();
  s.st.nodes.resize(static_cast<size_t>(s.nodes));
  s.worker_hist.resize(static_cast<size_t>(rc.threads));

  // --- Data plane. ---
  // Range-partitioned record store, one slab per node, first-touched on its
  // owner so NUMA-aware routing actually buys locality.
  s.keys_per_node = std::max<uint64_t>(1, sc.kv_keys /
                                              static_cast<uint64_t>(s.nodes));
  s.parts.resize(static_cast<size_t>(s.nodes));
  for (int n = 0; n < s.nodes; ++n) {
    uint64_t count = n == s.nodes - 1
                         ? sc.kv_keys - s.keys_per_node *
                                            static_cast<uint64_t>(s.nodes - 1)
                         : s.keys_per_node;
    count = std::max<uint64_t>(count, s.keys_per_node);
    auto* part = ctx.AllocInput<datagen::Record>(count);
    uint64_t base = static_cast<uint64_t>(n) * s.keys_per_node;
    for (uint64_t i = 0; i < count; ++i) {
      part[i].key = base + i;
      part[i].val = static_cast<int64_t>(PointValue(base + i) >> 32);
    }
    workloads::PretouchAsNode(ctx.memsys(), part,
                              count * sizeof(datagen::Record), n);
    s.parts[static_cast<size_t>(n)] = part;
  }

  // Probe-table build side (warmup inserts it through the stripe locks).
  s.build_rows = std::max<uint64_t>(1, sc.probe_build_rows);
  {
    std::vector<datagen::JoinTuple> host_build, host_probe;
    datagen::MakeJoinInput(s.build_rows, /*probe_rows=*/1, rc.seed,
                           &host_build, &host_probe);
    s.build = ctx.AllocInput<datagen::JoinTuple>(host_build.size());
    std::memcpy(s.build, host_build.data(),
                host_build.size() * sizeof(datagen::JoinTuple));
    ctx.PretouchInput(s.build,
                      host_build.size() * sizeof(datagen::JoinTuple));
  }
  Env setup_env;
  setup_env.engine = ctx.engine();
  setup_env.mem = ctx.memsys();
  setup_env.alloc = ctx.allocator();
  setup_env.run_status = ctx.run_status();
  ProbeTable probe_table(setup_env, s.build_rows * 2);
  s.probe_table = &probe_table;

  // minidb database for the analytic slice of the mix.
  if (sc.mix_tpch > 0) {
    const minidb::HostDb& host = minidb::GenerateTpch(sc.tpch_scale, rc.seed);
    s.db = minidb::LoadTpch(host, ctx.allocator(), ctx.memsys());
    s.prof = &minidb::ProfileByName("columnar-vec");
  }

  // Per-node bounded queues; slot rings live in simulated memory on their
  // node so remote draining (work stealing) pays remote DRAM.
  s.queues.resize(static_cast<size_t>(s.nodes));
  for (int n = 0; n < s.nodes; ++n) {
    NodeQueue& q = s.queues[static_cast<size_t>(n)];
    q.cap = std::max<uint64_t>(1, sc.queue_cap);
    q.slots = ctx.AllocInput<uint32_t>(q.cap);
    workloads::PretouchAsNode(ctx.memsys(), q.slots,
                              q.cap * sizeof(uint32_t), n);
  }

  // WAL-backed storage engine under the request stream (--storage=1). The
  // engine's disk preload is host-side; its frames are allocated lazily by
  // the workers through the fallible chain, so faultlab pressure applies.
  std::unique_ptr<storage::StorageEngine> store;
  if (sc.storage.enabled) {
    storage::StorageConfig scfg = sc.storage;
    scfg.rows = sc.kv_keys;
    store = std::make_unique<storage::StorageEngine>(
        scfg, s.nodes, rc.seed + static_cast<uint64_t>(rc.run_index),
        ctx.faults());
    s.store = store.get();
  }

  // --- Request plane (all randomness drawn here, before the run). ---
  Rng rng(rc.seed * 0x9e3779b97f4a7c15ULL + 0x5e57e5e57e5e57eULL +
          rc.run_index);
  GenerateRequests(s, rng);
  s.outstanding = sc.requests;

  ctx.SpawnWorkers([&](Env& env) { return ServeWorker(env, s); });

  ServeResult out;
  ctx.Finish(&out.run);

  // --- Post-run reduction. ---
  ServingStats& st = s.st;
  for (const Histogram& h : s.worker_hist) st.latency.Merge(h);
  std::vector<uint64_t> all;
  for (int t = 0; t < kNumRequestTypes; ++t) {
    TypeStats& ts = st.types[t];
    ts.completed = s.lat[t].size();
    ts.p50 = PercentileU64(&s.lat[t], 50);
    ts.p95 = PercentileU64(&s.lat[t], 95);
    ts.p99 = PercentileU64(&s.lat[t], 99);
    all.insert(all.end(), s.lat[t].begin(), s.lat[t].end());
  }
  st.p50 = PercentileU64(&all, 50);
  st.p95 = PercentileU64(&all, 95);
  st.p99 = PercentileU64(&all, 99);
  st.max = all.empty() ? 0 : *std::max_element(all.begin(), all.end());
  st.makespan_cycles =
      st.last_completion_cycle > st.first_arrival_cycle
          ? st.last_completion_cycle - st.first_arrival_cycle
          : 0;
  out.stats = st;
  if (s.store != nullptr) out.storage = s.store->stats();

  // Exported config carries the storage flag so the validator can insist on
  // the "storage" section exactly when the engine ran.
  workloads::RunConfig rc_export = rc;
  rc_export.storage = sc.storage.enabled;
  trace::CollectRun(std::string("serve-") + ArrivalName(sc.arrival),
                    rc_export, out.run, ServingJson(sc, out.stats),
                    s.store != nullptr
                        ? storage::StorageJson(s.store->config(), out.storage)
                        : std::string());
  return out;
}

std::string ServingJson(const ServeConfig& sc, const ServingStats& st) {
  std::string out;
  Appendf(&out, "{\"arrival\":\"%s\",\"requests\":%" PRIu64,
          ArrivalName(sc.arrival), sc.requests);
  Appendf(&out,
          ",\"offered\":%" PRIu64 ",\"admitted\":%" PRIu64
          ",\"completed\":%" PRIu64 ",\"rejected\":%" PRIu64
          ",\"retries\":%" PRIu64 ",\"dropped\":%" PRIu64,
          st.offered, st.admitted, st.completed, st.rejected, st.retries,
          st.dropped);
  Appendf(&out,
          ",\"batches\":%" PRIu64 ",\"batched_requests\":%" PRIu64
          ",\"max_batch\":%" PRIu64 ",\"max_queue_depth\":%" PRIu64,
          st.batches, st.batched_requests, st.max_batch,
          st.max_queue_depth);
  Appendf(&out,
          ",\"makespan_cycles\":%" PRIu64 ",\"cycles_per_query\":%.6g",
          st.makespan_cycles, st.CyclesPerQuery());
  Appendf(&out,
          ",\"latency\":{\"p50\":%" PRIu64 ",\"p95\":%" PRIu64
          ",\"p99\":%" PRIu64 ",\"max\":%" PRIu64 "}",
          st.p50, st.p95, st.p99, st.max);
  out.append(",\"types\":[");
  for (int t = 0; t < kNumRequestTypes; ++t) {
    const TypeStats& ts = st.types[t];
    Appendf(&out,
            "%s{\"type\":\"%s\",\"completed\":%" PRIu64 ",\"p50\":%" PRIu64
            ",\"p95\":%" PRIu64 ",\"p99\":%" PRIu64 "}",
            t == 0 ? "" : ",", RequestTypeName(static_cast<RequestType>(t)),
            ts.completed, ts.p50, ts.p95, ts.p99);
  }
  out.append("],\"nodes\":[");
  for (size_t n = 0; n < st.nodes.size(); ++n) {
    const NodeStats& ns = st.nodes[n];
    Appendf(&out,
            "%s{\"node\":%zu,\"enqueued\":%" PRIu64 ",\"rejected\":%" PRIu64
            ",\"redirected_offline\":%" PRIu64 ",\"max_depth\":%" PRIu64 "}",
            n == 0 ? "" : ",", n, ns.enqueued, ns.rejected,
            ns.redirected_offline, ns.max_depth);
  }
  out.append("],\"hist\":[");
  bool first = true;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    if (st.latency.count(b) == 0) continue;
    Appendf(&out, "%s[%d,%" PRIu64 "]", first ? "" : ",", b,
            st.latency.count(b));
    first = false;
  }
  out.append("]}");
  return out;
}

}  // namespace serve
}  // namespace numalab
