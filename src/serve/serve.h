// numalab::serve — a deterministic NUMA-aware query-serving layer that runs
// *inside* the simulator (DESIGN.md section 11).
//
// The batch workloads (W1-W5) each run one closed-form job to completion;
// this subsystem puts a serving front-end over the same kernels: seeded
// open- and closed-loop clients emit a mixed stream of point lookups, range
// aggregations, hash-table probes/upserts and minidb TPC-H queries; each
// request is routed to the per-NUMA-node queue owning its data partition;
// a bounded-queue admission controller sheds load (with retry-after
// backoff) and reacts to faultlab degradation; and server workers drain
// their home queue with a dynamic batcher that coalesces compatible point
// lookups into MemSystem::AccessSpan batched accesses under a latency
// budget. Per-request sojourn latencies land in mergeable log2 Histograms
// (stats.h) and are exported through numalab::trace as the schema-v3
// "serving" JSON section.
//
// Everything — arrival times, request payloads, routing, retries — derives
// from the run seed, so two same-seed runs are bit-identical (the property
// scripts/check.sh's serving stage asserts on bench_serving).

#ifndef NUMALAB_SERVE_SERVE_H_
#define NUMALAB_SERVE_SERVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/storage/storage.h"
#include "src/workloads/run_config.h"

namespace numalab {
namespace serve {

/// \brief Client arrival processes.
///
/// The open-loop generators (fixed/poisson/burst) submit requests on a
/// pre-drawn schedule regardless of completions — the load a server cannot
/// push back on, which is what makes admission control necessary. The
/// closed-loop generator models `sessions` users who each wait for their
/// previous request (plus think time) before issuing the next, so offered
/// load self-limits like Fig. 3's repeated runs do.
enum class Arrival {
  kFixed,    ///< constant inter-arrival gap
  kPoisson,  ///< exponential gaps (memoryless), same mean as kFixed
  kBurst,    ///< whole bursts arrive back-to-back at the mean rate
  kClosed,   ///< closed loop: per-session issue -> serve -> think cycle
};

const char* ArrivalName(Arrival a);
/// Parses "fixed" / "poisson" / "burst" / "closed"; false on anything else.
bool ArrivalFromName(const std::string& name, Arrival* out);

/// \brief The request mix. Weights are relative (normalized internally).
enum class RequestType {
  kPointGet,  ///< single-record read from the partitioned store (W1-style)
  kRangeAgg,  ///< short range scan + aggregate over one partition (W2-style)
  kProbe,     ///< lock-free ConcurrentHashTable::Find (W3 probe side)
  kUpsert,    ///< ConcurrentHashTable::UpsertSet under the stripe lock
  kTpch,      ///< one minidb TPC-H query, executed serially by one server
};
inline constexpr int kNumRequestTypes = 5;
const char* RequestTypeName(RequestType t);

/// \brief Parameters of one serving run (on top of a workloads::RunConfig,
/// which supplies machine/threads/affinity/policy/allocator/seed).
struct ServeConfig {
  Arrival arrival = Arrival::kPoisson;
  /// Total requests offered (split evenly over sessions in closed loop).
  uint64_t requests = 2000;
  /// Mean inter-arrival gap in cycles for the open-loop processes; the
  /// offered rate is 1/mean_gap_cycles requests per cycle.
  uint64_t mean_gap_cycles = 12'000;
  /// Requests per burst for Arrival::kBurst (the burst period is
  /// burst_size * mean_gap_cycles, preserving the mean rate).
  uint64_t burst_size = 32;

  /// Relative mix weights; all five default-on keeps every kernel hot.
  double mix_point = 0.60;
  double mix_range = 0.16;
  double mix_probe = 0.14;
  double mix_upsert = 0.07;
  double mix_tpch = 0.03;

  /// Partitioned record store: kv_keys records range-partitioned over the
  /// machine's NUMA nodes (node = key / keys_per_node).
  uint64_t kv_keys = 1 << 16;
  /// Point-lookup key locality: probability that a client's next point key
  /// continues its scan cursor (key+1) instead of jumping uniformly — the
  /// MovingCluster-style adjacency the batcher's span coalescing feeds on.
  double point_locality = 0.5;
  /// Hot-set skew: the fraction of point/range requests redrawn from the
  /// keys in [0, hot_keys). 0 disables the skew and draws no RNG, so
  /// existing request streams stay bit-identical. The hot keys all live in
  /// the low partitions, concentrating read traffic on few pages — the
  /// access pattern adaptive placement's replication targets
  /// (bench_placement).
  double hot_fraction = 0.0;
  uint64_t hot_keys = 0;
  /// Route point/range requests by key hash instead of by data ownership:
  /// every node then serves — and remotely reads — the shared store, the
  /// way a stateless serving tier in front of one dataset does. Routing is
  /// then identical across MemPolicy cells, isolating data placement as
  /// the only difference.
  bool spread_reads = false;
  /// Rows per range-aggregation request.
  uint64_t range_rows = 256;
  /// Build side of the shared probe table (built during warmup).
  uint64_t probe_build_rows = 8192;
  /// minidb dataset scale / query for RequestType::kTpch.
  double tpch_scale = 0.01;
  int tpch_query = 6;

  /// Closed-loop population and think time.
  int sessions = 16;
  uint64_t think_cycles = 20'000;

  /// Admission control: per-node queue bound, retry budget and the base
  /// retry-after backoff (doubled per attempt).
  uint64_t queue_cap = 64;
  int max_retries = 3;
  uint64_t retry_backoff_cycles = 60'000;

  /// Dynamic batcher: max point lookups coalesced per dispatch, and the
  /// extra cycles a non-full batch may wait for more. batch_max = 1 is the
  /// unbatched reference dispatch.
  uint64_t batch_max = 16;
  uint64_t batch_window_cycles = 2'000;

  /// WAL-backed storage engine under the serving layer (DESIGN.md §15).
  /// When storage.enabled, point/range/upsert requests run through the
  /// NUMA-sharded buffer pool + WAL instead of the raw partition slabs /
  /// probe table; storage.rows is overridden to kv_keys. Default-off is
  /// zero-cost: the serving stream, stats and stdout are bit-identical to
  /// a build without the storage engine.
  storage::StorageConfig storage;
};

/// \brief Per-request-type completion stats (exact-sort percentiles over
/// sojourn = completion - first submission, in cycles).
struct TypeStats {
  uint64_t completed = 0;
  uint64_t p50 = 0, p95 = 0, p99 = 0;
};

/// \brief Per-NUMA-node queue/admission stats.
struct NodeStats {
  uint64_t enqueued = 0;
  uint64_t rejected = 0;
  uint64_t redirected_offline = 0;  ///< rerouted off a faultlab-offline node
  uint64_t max_depth = 0;
};

/// \brief Everything the serving layer measured in one run.
struct ServingStats {
  // Admission accounting. Invariants (checked by validate_bench_json.py):
  // admitted + dropped == offered; completed == admitted;
  // rejected == retries + dropped.
  uint64_t offered = 0;    ///< distinct requests submitted
  uint64_t admitted = 0;   ///< eventually enqueued (<= max_retries+1 tries)
  uint64_t completed = 0;  ///< executed to completion
  uint64_t rejected = 0;   ///< enqueue attempts refused (counts attempts)
  uint64_t retries = 0;    ///< refused attempts that scheduled a retry
  uint64_t dropped = 0;    ///< requests abandoned after the retry budget

  uint64_t batches = 0;           ///< dispatches executed
  uint64_t batched_requests = 0;  ///< point lookups served via batches > 1
  uint64_t max_batch = 0;
  uint64_t max_queue_depth = 0;   ///< across all node queues

  uint64_t first_arrival_cycle = 0;
  uint64_t last_completion_cycle = 0;
  /// last_completion - first_arrival: the serving span the throughput
  /// numbers are computed over.
  uint64_t makespan_cycles = 0;

  /// Sojourn percentiles over all completed requests (exact sort).
  uint64_t p50 = 0, p95 = 0, p99 = 0, max = 0;
  TypeStats types[kNumRequestTypes];
  std::vector<NodeStats> nodes;  ///< indexed by NUMA node

  /// All sojourns, merged from the per-worker log2 histograms (stats.h) —
  /// the mergeable-across-threads representation the exact vectors above
  /// cross-check in tests/serve_test.cc.
  Histogram latency;

  /// Order-independent digest of every response (determinism anchor).
  uint64_t checksum = 0;

  double CyclesPerQuery() const {
    return completed == 0 ? 0.0
                          : static_cast<double>(makespan_cycles) /
                                static_cast<double>(completed);
  }
};

struct ServeResult {
  workloads::RunResult run;
  ServingStats stats;
  /// Filled iff ServeConfig::storage.enabled (zero-initialized otherwise).
  storage::StorageStats storage;
};

/// Runs one serving experiment: builds the data plane (partitioned store,
/// shared probe table, minidb database if the mix includes TPC-H), spawns
/// rc.threads server workers, replays the seeded arrival schedule and
/// drains it to empty. Deposits the run with numalab::trace (workload
/// "serve-<arrival>", serving section attached) when collection is on.
ServeResult RunServing(const workloads::RunConfig& rc, const ServeConfig& sc);

/// The "serving" JSON object for trace export / bench_serving --json-out.
/// Deterministic: integers and %.6g doubles only, fixed key order.
std::string ServingJson(const ServeConfig& sc, const ServingStats& st);

}  // namespace serve
}  // namespace numalab

#endif  // NUMALAB_SERVE_SERVE_H_
