#include "src/topology/machine.h"

#include <deque>
#include <map>
#include <sstream>

#include "src/common/logging.h"

namespace numalab {
namespace topology {

Machine::Machine(std::string name, int num_nodes, int cores_per_node,
                 int smt_per_core, std::vector<std::vector<int>> adjacency,
                 std::vector<double> latency_factor_by_hops,
                 double link_bytes_per_cycle, double mem_ctrl_bytes_per_cycle,
                 uint64_t node_memory_bytes, uint64_t llc_bytes_per_node,
                 uint64_t private_cache_bytes, TlbSpec tlb_4k, TlbSpec tlb_2m,
                 uint64_t dram_latency_cycles)
    : name_(std::move(name)),
      num_nodes_(num_nodes),
      cores_per_node_(cores_per_node),
      smt_per_core_(smt_per_core),
      latency_factor_by_hops_(std::move(latency_factor_by_hops)),
      mem_ctrl_bytes_per_cycle_(mem_ctrl_bytes_per_cycle),
      node_memory_bytes_(node_memory_bytes),
      llc_bytes_per_node_(llc_bytes_per_node),
      private_cache_bytes_(private_cache_bytes),
      tlb_4k_(tlb_4k),
      tlb_2m_(tlb_2m),
      dram_latency_cycles_(dram_latency_cycles) {
  NUMALAB_CHECK(num_nodes_ >= 1);
  NUMALAB_CHECK(static_cast<int>(adjacency.size()) == num_nodes_);

  // Create directed links; link_index[a][b] gives the id of link a->b.
  std::vector<std::vector<int>> link_index(
      num_nodes_, std::vector<int>(num_nodes_, -1));
  for (int a = 0; a < num_nodes_; ++a) {
    for (int b : adjacency[a]) {
      NUMALAB_CHECK(b >= 0 && b < num_nodes_ && b != a);
      if (link_index[a][b] == -1) {
        Link l;
        l.id = static_cast<int>(links_.size());
        l.from = a;
        l.to = b;
        l.bytes_per_cycle = link_bytes_per_cycle;
        link_index[a][b] = l.id;
        links_.push_back(l);
      }
    }
  }
  // The adjacency must be symmetric (every link exists in both directions).
  for (const Link& l : links_) {
    NUMALAB_CHECK(link_index[l.to][l.from] != -1);
  }

  // BFS from every node; parents chosen deterministically (lowest id first).
  hops_.assign(num_nodes_, std::vector<int>(num_nodes_, -1));
  routes_.assign(num_nodes_, std::vector<std::vector<int>>(num_nodes_));
  for (int src = 0; src < num_nodes_; ++src) {
    std::vector<int> parent(num_nodes_, -1);
    hops_[src][src] = 0;
    std::deque<int> q{src};
    while (!q.empty()) {
      int u = q.front();
      q.pop_front();
      for (int v : adjacency[u]) {
        if (hops_[src][v] == -1) {
          hops_[src][v] = hops_[src][u] + 1;
          parent[v] = u;
          q.push_back(v);
        }
      }
    }
    for (int dst = 0; dst < num_nodes_; ++dst) {
      NUMALAB_CHECK(hops_[src][dst] >= 0);  // graph must be connected
      // Reconstruct route src -> dst as directed link ids.
      std::vector<int> rev;
      for (int v = dst; v != src; v = parent[v]) {
        rev.push_back(link_index[parent[v]][v]);
      }
      routes_[src][dst].assign(rev.rbegin(), rev.rend());
    }
  }

  NUMALAB_CHECK(static_cast<int>(latency_factor_by_hops_.size()) >
                Diameter());
}

int Machine::Diameter() const {
  int d = 0;
  for (const auto& row : hops_) {
    for (int h : row) d = std::max(d, h);
  }
  return d;
}

std::string Machine::ToString() const {
  std::ostringstream os;
  os << "Machine " << name_ << ": " << num_nodes_ << " nodes, "
     << cores_per_node_ << " cores/node, SMT " << smt_per_core_ << " ("
     << num_hw_threads() << " hw threads)\n";
  os << "  links: " << links_.size() << " directed, diameter " << Diameter()
     << "\n";
  os << "  latency factor matrix:\n";
  for (int s = 0; s < num_nodes_; ++s) {
    os << "   ";
    for (int d = 0; d < num_nodes_; ++d) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), " %4.2f", LatencyFactor(s, d));
      os << buf;
    }
    os << "\n";
  }
  os << "  node memory: " << (node_memory_bytes_ >> 30) << " GiB, LLC "
     << (llc_bytes_per_node_ >> 20) << " MiB/node, DRAM latency "
     << dram_latency_cycles_ << " cycles\n";
  return os.str();
}

Machine MachineA() {
  // Twisted ladder: every node has exactly three HyperTransport links and
  // the diameter is 3 hops, matching the Opteron 8-socket layout in Fig. 1a.
  std::vector<std::vector<int>> adj = {
      /*0*/ {1, 2, 5}, /*1*/ {0, 3, 4}, /*2*/ {0, 3, 7}, /*3*/ {1, 2, 6},
      /*4*/ {1, 5, 6}, /*5*/ {0, 4, 7}, /*6*/ {3, 4, 7}, /*7*/ {2, 5, 6}};
  return Machine(
      "A", /*num_nodes=*/8, /*cores_per_node=*/2, /*smt_per_core=*/1,
      std::move(adj),
      /*latency_factor_by_hops=*/{1.0, 1.2, 1.4, 1.6},
      /*link_bytes_per_cycle=*/1.2,       // 2GT/s HT, effective, at 2.8GHz
      /*mem_ctrl_bytes_per_cycle=*/1.4,   // DDR2-667 effective per node
      /*node_memory_bytes=*/16ULL << 30,
      /*llc_bytes_per_node=*/2ULL << 20,
      /*private_cache_bytes=*/512ULL << 10,
      /*tlb_4k=*/{32, 512}, /*tlb_2m=*/{8, 0},
      /*dram_latency_cycles=*/280);
}

Machine MachineB() {
  std::vector<std::vector<int>> adj = {
      {1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2}};
  return Machine(
      "B", /*num_nodes=*/4, /*cores_per_node=*/4, /*smt_per_core=*/2,
      std::move(adj),
      /*latency_factor_by_hops=*/{1.0, 1.1},
      /*link_bytes_per_cycle=*/4.5,       // 4.8GT/s QPI, effective
      /*mem_ctrl_bytes_per_cycle=*/6.0,   // DDR3-1600 effective per node
      /*node_memory_bytes=*/16ULL << 30,
      /*llc_bytes_per_node=*/18ULL << 20,
      /*private_cache_bytes=*/512ULL << 10,
      /*tlb_4k=*/{64, 512}, /*tlb_2m=*/{32, 0},
      /*dram_latency_cycles=*/200);
}

Machine MachineC() {
  std::vector<std::vector<int>> adj = {
      {1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2}};
  return Machine(
      "C", /*num_nodes=*/4, /*cores_per_node=*/8, /*smt_per_core=*/2,
      std::move(adj),
      /*latency_factor_by_hops=*/{1.0, 2.1},
      /*link_bytes_per_cycle=*/8.0,       // 8GT/s QPI, effective
      /*mem_ctrl_bytes_per_cycle=*/16.0,  // DDR4-2400 effective per node
      /*node_memory_bytes=*/768ULL << 30,
      /*llc_bytes_per_node=*/40ULL << 20,
      /*private_cache_bytes=*/512ULL << 10,
      /*tlb_4k=*/{64, 1536}, /*tlb_2m=*/{32, 1536},
      /*dram_latency_cycles=*/210);
}

namespace {
std::map<std::string, Machine>& Registry() {
  static auto* registry = new std::map<std::string, Machine>();
  return *registry;
}
}  // namespace

void RegisterMachine(const Machine& machine) {
  Registry().insert_or_assign(machine.name(), machine);
}

Machine MachineByName(const std::string& name) {
  auto it = Registry().find(name);
  if (it != Registry().end()) return it->second;
  if (name == "A") return MachineA();
  if (name == "B") return MachineB();
  if (name == "C") return MachineC();
  NUMALAB_CHECK(false && "unknown machine name");
  return MachineA();  // unreachable
}

}  // namespace topology
}  // namespace numalab
