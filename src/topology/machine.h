// NUMA machine models.
//
// A Machine describes the hardware the simulator runs the workloads on:
// NUMA nodes, cores and SMT threads, interconnect links with routed paths,
// relative memory latencies, cache and TLB geometry, and per-node memory
// controller bandwidth. The three built-in machines reproduce Table II and
// Figure 1 of the paper:
//
//   Machine A — 8x AMD Opteron 8220, "twisted ladder" topology, 3 HT links
//               per node, remote latency factors 1.2/1.4/1.6 by hop count.
//   Machine B — 4x Intel Xeon E7520, fully connected, remote factor 1.1.
//   Machine C — 4x Intel Xeon E7-4850v4, fully connected, remote factor 2.1.

#ifndef NUMALAB_TOPOLOGY_MACHINE_H_
#define NUMALAB_TOPOLOGY_MACHINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace numalab {
namespace topology {

/// \brief TLB geometry for one page size (number of cached entries).
struct TlbSpec {
  int l1_entries = 0;  ///< first-level TLB entries (0 = absent)
  int l2_entries = 0;  ///< second-level TLB entries (0 = absent)
};

/// \brief One directed hop of the interconnect. Links are created in pairs
/// (a->b and b->a) and carry independent traffic.
struct Link {
  int id = -1;
  int from = -1;
  int to = -1;
  double bytes_per_cycle = 0.0;  ///< usable bandwidth of this hop
};

/// \brief Full machine description. Instances are immutable after
/// construction; use the MachineA()/MachineB()/MachineC() factories, or
/// construct a synthetic topology directly and RegisterMachine() it so
/// RunConfig can select it by name.
class Machine {
 public:
  /// Builds a machine and precomputes shortest-path routes between all node
  /// pairs (BFS over the link graph, deterministic tie-break by node id).
  ///
  /// \param adjacency adjacency[i] lists the neighbor node ids of node i.
  Machine(std::string name, int num_nodes, int cores_per_node,
          int smt_per_core, std::vector<std::vector<int>> adjacency,
          std::vector<double> latency_factor_by_hops,
          double link_bytes_per_cycle, double mem_ctrl_bytes_per_cycle,
          uint64_t node_memory_bytes, uint64_t llc_bytes_per_node,
          uint64_t private_cache_bytes, TlbSpec tlb_4k, TlbSpec tlb_2m,
          uint64_t dram_latency_cycles);

  const std::string& name() const { return name_; }
  int num_nodes() const { return num_nodes_; }
  int cores_per_node() const { return cores_per_node_; }
  int smt_per_core() const { return smt_per_core_; }
  /// Total hardware threads = nodes * cores/node * SMT.
  int num_hw_threads() const {
    return num_nodes_ * cores_per_node_ * smt_per_core_;
  }
  /// Total physical cores.
  int num_cores() const { return num_nodes_ * cores_per_node_; }

  /// NUMA node that hardware thread `hw` belongs to. Hardware threads are
  /// numbered node-major: node = hw / (cores_per_node * smt_per_core).
  int NodeOfHwThread(int hw) const {
    return hw / (cores_per_node_ * smt_per_core_);
  }
  /// Physical core of hardware thread `hw` (SMT siblings share a core).
  int CoreOfHwThread(int hw) const { return hw / smt_per_core_; }
  int NodeOfCore(int core) const { return core / cores_per_node_; }

  /// Number of interconnect hops on the (precomputed) route from `src` to
  /// `dst` node; 0 when src == dst.
  int Hops(int src, int dst) const { return hops_[src][dst]; }

  /// Relative latency multiplier for an access from a thread on `src` to
  /// memory on `dst` (Table II "Relative NUMA Node Memory Latency").
  double LatencyFactor(int src, int dst) const {
    return latency_factor_by_hops_[static_cast<size_t>(Hops(src, dst))];
  }

  /// Directed link ids along the route src -> dst (empty when src == dst).
  const std::vector<int>& Route(int src, int dst) const {
    return routes_[src][dst];
  }

  const std::vector<Link>& links() const { return links_; }

  double mem_ctrl_bytes_per_cycle() const { return mem_ctrl_bytes_per_cycle_; }
  uint64_t node_memory_bytes() const { return node_memory_bytes_; }
  uint64_t llc_bytes_per_node() const { return llc_bytes_per_node_; }
  uint64_t private_cache_bytes() const { return private_cache_bytes_; }
  const TlbSpec& tlb_4k() const { return tlb_4k_; }
  const TlbSpec& tlb_2m() const { return tlb_2m_; }
  uint64_t dram_latency_cycles() const { return dram_latency_cycles_; }

  /// Maximum hop count between any two nodes.
  int Diameter() const;

  /// Human-readable dump: topology, latency matrix, per-node resources.
  std::string ToString() const;

 private:
  std::string name_;
  int num_nodes_;
  int cores_per_node_;
  int smt_per_core_;
  std::vector<Link> links_;
  std::vector<std::vector<int>> hops_;                // [src][dst]
  std::vector<std::vector<std::vector<int>>> routes_; // [src][dst] -> link ids
  std::vector<double> latency_factor_by_hops_;
  double mem_ctrl_bytes_per_cycle_;
  uint64_t node_memory_bytes_;
  uint64_t llc_bytes_per_node_;
  uint64_t private_cache_bytes_;
  TlbSpec tlb_4k_;
  TlbSpec tlb_2m_;
  uint64_t dram_latency_cycles_;
};

/// 8-node AMD Opteron 8220 "twisted ladder" (Fig. 1a / Table II column A).
Machine MachineA();
/// 4-node Intel Xeon E7520, fully connected (Fig. 1b / Table II column B).
Machine MachineB();
/// 4-node Intel Xeon E7-4850 v4, fully connected (Fig. 1c / Table II col C).
Machine MachineC();

/// Registers a custom machine (e.g. an on-chip-NUMA model) so workloads
/// can select it by name through RunConfig. Re-registering a name
/// replaces the previous machine.
void RegisterMachine(const Machine& machine);

/// Returns a registered machine or one of the built-ins "A", "B", "C";
/// CHECK-fails otherwise.
Machine MachineByName(const std::string& name);

}  // namespace topology
}  // namespace numalab

#endif  // NUMALAB_TOPOLOGY_MACHINE_H_
