// Adaptive data placement (ROADMAP: hot-page replication + cost-aware
// migration) — configuration knobs.
//
// The mechanism lives in SimOS (replica accounting, reclaim-before-spill)
// and MemSystem (per-access replica routing, hot/cold tracking on the
// AutoNUMA hinting-fault hook, benefit/cost gates). Stock AutoNUMA — the
// paper's cost-oblivious kernel behaviour — is the `enabled = false`
// default and takes exactly the pre-placement code paths.
//
// Grounded in "Bandwidth-Aware Page Placement in NUMA" (weight moves by
// measured benefit, not samples alone) and Phoenix (placement must be
// per-workload and dynamic); see PAPERS.md.

#ifndef NUMALAB_MEM_PLACEMENT_H_
#define NUMALAB_MEM_PLACEMENT_H_

#include <cstdint>

namespace numalab {
namespace mem {

/// \brief Knobs for the adaptive placement layer. All tracking is sampled
/// on the existing AutoNUMA hinting-fault path, so `enabled` only has an
/// effect while AutoNUMA sampling is on (SimContext starts the AutoNuma
/// daemon whenever placement is enabled).
struct PlacementConfig {
  /// Master switch. Off: stock AutoNUMA, bit-identical to the seed.
  bool enabled = false;

  /// Read-hot pages gain per-node replicas: reads are served by the local
  /// copy, writes invalidate every copy and pay the shootdown below.
  bool replicate = true;

  /// Gate AutoNUMA promotions on modeled benefit (remote-access savings
  /// over the observed sample window) exceeding modeled copy cost,
  /// replacing the kernel's unconditional threshold+backoff rule.
  bool cost_aware = true;

  /// Minimum page heat (saturating per-fault accumulator, decayed each
  /// AutoNUMA scan wave) before a page counts as hot for replication.
  uint16_t min_heat = 32;

  /// Sampled reads must outnumber sampled writes by this factor before a
  /// page counts as read-mostly (write-heavy pages never replicate).
  uint32_t read_write_ratio = 8;

  /// Sampled accesses from one node before that node may take a replica.
  uint8_t replicate_threshold = 3;

  /// Noise margin on the cost-aware migration gate: modeled savings must
  /// exceed `migrate_hysteresis x` the modeled cost before a page moves.
  /// Under symmetric sharing (every node reads the page about equally) the
  /// per-node sample counts random-walk, and 1x lets a transient lead
  /// trigger a move whose copy stalls readers behind `migrating_until`;
  /// higher values demand a sustained imbalance. 1 is the break-even gate.
  uint32_t migrate_hysteresis = 1;

  /// Cycles charged to a writer per invalidated replica (IPI + remote TLB
  /// flush + freeing the copy).
  uint64_t replica_shootdown_cycles = 1200;
};

}  // namespace mem
}  // namespace numalab

#endif  // NUMALAB_MEM_PLACEMENT_H_
