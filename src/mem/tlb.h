// Per-core TLB model.
//
// One direct-mapped tag array per page size (4K and 2M), sized to the
// machine's combined L1+L2 TLB capacity from Table II. Direct-mapped lookup
// keeps the simulator's per-access host cost tiny while still capturing the
// property the paper's THP experiments hinge on: TLB *reach* (entries ×
// page size) versus working-set size.

#ifndef NUMALAB_MEM_TLB_H_
#define NUMALAB_MEM_TLB_H_

#include <cstdint>
#include <vector>

#include "src/mem/cost_model.h"
#include "src/mem/fastmod.h"
#include "src/topology/machine.h"

namespace numalab {
namespace mem {

class Tlb {
 public:
  explicit Tlb(const topology::Machine& m) {
    int cap4k = m.tlb_4k().l1_entries + m.tlb_4k().l2_entries;
    int cap2m = m.tlb_2m().l1_entries + m.tlb_2m().l2_entries;
    tags_4k_.assign(static_cast<size_t>(std::max(cap4k, 1)), kEmpty);
    tags_2m_.assign(static_cast<size_t>(std::max(cap2m, 1)), kEmpty);
    mod_4k_ = FastMod32(static_cast<uint32_t>(tags_4k_.size()));
    mod_2m_ = FastMod32(static_cast<uint32_t>(tags_2m_.size()));
    has_2m_ = cap2m > 0;
  }

  /// Probes both structures; true on hit.
  bool Lookup(uint64_t addr) const {
    uint64_t vpn2m = addr / kHugePageBytes;
    if (has_2m_ && tags_2m_[Slot(vpn2m, mod_2m_)] == vpn2m) {
      return true;
    }
    uint64_t vpn4k = addr / kSmallPageBytes;
    return tags_4k_[Slot(vpn4k, mod_4k_)] == vpn4k;
  }

  /// Installs the translation after a page walk.
  void Insert(uint64_t addr, bool huge) {
    if (huge && has_2m_) {
      uint64_t vpn = addr / kHugePageBytes;
      tags_2m_[Slot(vpn, mod_2m_)] = vpn;
    } else {
      uint64_t vpn = addr / kSmallPageBytes;
      tags_4k_[Slot(vpn, mod_4k_)] = vpn;
    }
  }

  /// Drops the translation covering `addr` (page migration / THP remap).
  void Invalidate(uint64_t addr) {
    uint64_t vpn2m = addr / kHugePageBytes;
    size_t s2 = Slot(vpn2m, mod_2m_);
    if (tags_2m_[s2] == vpn2m) tags_2m_[s2] = kEmpty;
    uint64_t vpn4k = addr / kSmallPageBytes;
    size_t s4 = Slot(vpn4k, mod_4k_);
    if (tags_4k_[s4] == vpn4k) tags_4k_[s4] = kEmpty;
  }

  /// Full flush (thread migrated onto this core, or unmap shootdown).
  void Flush() {
    std::fill(tags_4k_.begin(), tags_4k_.end(), kEmpty);
    std::fill(tags_2m_.begin(), tags_2m_.end(), kEmpty);
  }

 private:
  static constexpr uint64_t kEmpty = ~0ULL;

  static size_t Slot(uint64_t vpn, const FastMod32& mod) {
    // Fibonacci hash spreads sequential VPNs across the array; the hash
    // fits 32 bits, so FastMod32 gives the same slot as `% size` would.
    return mod.Mod((vpn * 0x9e3779b97f4a7c15ULL) >> 32);
  }

  std::vector<uint64_t> tags_4k_;
  std::vector<uint64_t> tags_2m_;
  FastMod32 mod_4k_;
  FastMod32 mod_2m_;
  bool has_2m_ = false;
};

}  // namespace mem
}  // namespace numalab

#endif  // NUMALAB_MEM_TLB_H_
