// MemSystem — the simulated memory hierarchy seen by workload code.
//
// Every logical load/store a workload performs is charged through
// MemSystem::Access: TLB (page walk on miss), core-private cache, node LLC,
// then DRAM with topology latency and controller/link queueing. First-touch
// page binding and AutoNUMA hinting-fault sampling happen on this path, just
// as they do in the kernel's fault handlers.

#ifndef NUMALAB_MEM_MEM_SYSTEM_H_
#define NUMALAB_MEM_MEM_SYSTEM_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/mem/caches.h"
#include "src/mem/contention.h"
#include "src/mem/cost_model.h"
#include "src/mem/sim_os.h"
#include "src/mem/tlb.h"
#include "src/perf/counters.h"
#include "src/sim/engine.h"
#include "src/topology/machine.h"

namespace numalab {
namespace mem {

class MemSystem {
 public:
  MemSystem(const topology::Machine* machine, sim::Engine* engine,
            CostModel costs, perf::SystemCounters* sys);

  SimOS* os() { return os_.get(); }
  const CostModel& costs() const { return costs_; }
  ContentionModel* contention() { return &contention_; }

  /// Enables AutoNUMA page-placement sampling (kernel numa_balancing).
  void SetAutoNumaSampling(bool on) { autonuma_ = on; }
  bool autonuma_sampling() const { return autonuma_; }

  /// Arms a new NUMA-hinting fault wave: the kernel's periodic PTE scan
  /// unmaps a bounded span, so each thread takes at most `budget` hinting
  /// faults until the next scan. Called by the AutoNuma daemon each tick.
  void ArmAutoNumaWave(uint64_t budget) {
    for (auto& b : fault_budget_) b = budget;
    wave_budget_ = budget;
  }

  /// Charges one logical access of `bytes` at `addr` by the current thread.
  void Access(sim::VThread* vt, const void* addr, uint64_t bytes, bool write);

  void Read(sim::VThread* vt, const void* addr, uint64_t bytes) {
    Access(vt, addr, bytes, /*write=*/false);
  }
  void Write(sim::VThread* vt, const void* addr, uint64_t bytes) {
    Access(vt, addr, bytes, /*write=*/true);
  }
  /// Pure CPU work (hashing, comparisons) — no memory modelling.
  void Compute(sim::VThread* vt, uint64_t cycles) { vt->Charge(cycles); }

  /// Called by the OS scheduler when a thread lands on a new core: its TLB
  /// entries and private-cache contents there are stale/cold.
  void OnThreadMigrated(int new_core);

  /// Per-thread DRAM traffic split by target node while AutoNUMA sampling is
  /// on; consumed by the AutoNUMA task balancer.
  const std::array<uint64_t, kMaxNumaNodes>& NodeTraffic(int vthread_id);
  void ResetNodeTraffic(int vthread_id);

  /// Invalidate the TLB entry for a migrated page on every core.
  void ShootdownTlb(uint64_t addr);

 private:
  void SampleAutoNuma(sim::VThread* vt, Region* region, size_t idx,
                      int accessor_node, int page_node);

  const topology::Machine* machine_;
  sim::Engine* engine_;
  CostModel costs_;
  perf::SystemCounters* sys_;
  ContentionModel contention_;
  std::unique_ptr<SimOS> os_;
  CacheModel caches_;
  std::vector<Tlb> tlbs_;  // one per physical core
  bool autonuma_ = false;
  std::vector<std::array<uint64_t, kMaxNumaNodes>> node_traffic_;
  std::vector<uint32_t> fault_stride_;  // per-thread sampling countdown
  uint64_t migrate_epoch_ = 0;
  uint64_t migrations_this_epoch_ = 0;
  std::vector<uint64_t> fault_budget_;  // per-thread, rearmed per scan wave
  uint64_t wave_budget_ = 1ULL << 40;
};

}  // namespace mem
}  // namespace numalab

#endif  // NUMALAB_MEM_MEM_SYSTEM_H_
