// MemSystem — the simulated memory hierarchy seen by workload code.
//
// Every logical load/store a workload performs is charged through
// MemSystem::Access: TLB (page walk on miss), core-private cache, node LLC,
// then DRAM with topology latency and controller/link queueing. First-touch
// page binding and AutoNUMA hinting-fault sampling happen on this path, just
// as they do in the kernel's fault handlers.
//
// Two implementations of that contract exist:
//  - the scalar reference path (AccessScalar): one TLB probe, one cache
//    probe chain and one contention charge per logical access / cache line,
//    exactly as documented above; and
//  - the batched span path (AccessSpan / Access): resolves the page table
//    and TLB once per page, coalesces same-line accesses and charges runs
//    of same-epoch DRAM lines with one latency/contention computation.
// The span path is bit-identical to the scalar path by contract — same
// ThreadCounters, same virtual clocks, same cache/TLB/contention state —
// which tests/span_parity_test.cc enforces. SetScalarReference(true)
// routes everything through the reference path for those tests.

#ifndef NUMALAB_MEM_MEM_SYSTEM_H_
#define NUMALAB_MEM_MEM_SYSTEM_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/mem/caches.h"
#include "src/mem/contention.h"
#include "src/mem/cost_model.h"
#include "src/mem/placement.h"
#include "src/mem/sim_os.h"
#include "src/mem/tlb.h"
#include "src/perf/counters.h"
#include "src/sim/engine.h"
#include "src/topology/machine.h"

namespace numalab {
namespace sanity {
class RaceDetector;
}  // namespace sanity
namespace mem {

class MemSystem {
 public:
  MemSystem(const topology::Machine* machine, sim::Engine* engine,
            CostModel costs, perf::SystemCounters* sys);

  SimOS* os() { return os_.get(); }
  const CostModel& costs() const { return costs_; }
  ContentionModel* contention() { return &contention_; }

  /// Enables AutoNUMA page-placement sampling (kernel numa_balancing).
  void SetAutoNumaSampling(bool on) { autonuma_ = on; }
  bool autonuma_sampling() const { return autonuma_; }

  /// Adaptive placement (src/mem/placement.h): hot/cold tracking on the
  /// hinting-fault hook, per-node read replicas and the cost-aware
  /// migration gate. Sampled state only accrues while AutoNUMA sampling is
  /// on (SimContext starts the daemon whenever placement is enabled).
  void SetPlacement(const PlacementConfig& pc) {
    placement_cfg_ = pc;
    placement_ = pc.enabled;
  }
  const PlacementConfig& placement() const { return placement_cfg_; }

  /// Arms a new NUMA-hinting fault wave: the kernel's periodic PTE scan
  /// unmaps a bounded span, so each thread takes at most `budget` hinting
  /// faults until the next scan. Called by the AutoNuma daemon each tick.
  /// Each wave also advances the placement heat-decay epoch.
  void ArmAutoNumaWave(uint64_t budget) {
    for (auto& b : fault_budget_) b = budget;
    wave_budget_ = budget;
    ++wave_epoch_;
  }

  /// Charges one logical access of `bytes` at `addr` by the current thread.
  /// Equivalent to AccessSpan(vt, addr, bytes, /*stride=*/bytes, write).
  void Access(sim::VThread* vt, const void* addr, uint64_t bytes, bool write);

  /// Charges a batched run of logical accesses: one access of
  /// min(stride, remaining) bytes every `stride` bytes over [addr,
  /// addr+bytes). `stride == 0` (or >= bytes) charges the whole range as a
  /// single logical access. Bit-identical, by contract, to the scalar loop
  ///
  ///   for (off = 0; off < bytes; off += stride)
  ///     Access(vt, addr + off, min(stride, bytes - off), write);
  ///
  /// but resolves the TLB/page table once per page, coalesces same-line
  /// accesses, and charges same-epoch DRAM line runs with one
  /// latency/contention computation. Use it for scans whose accesses have
  /// no other simulated work interleaved between them; keep per-access
  /// Access/Read/Write calls when other charges (hash probes, allocator
  /// calls, checkpoints) must interleave in order.
  void AccessSpan(sim::VThread* vt, const void* addr, uint64_t bytes,
                  uint64_t stride, bool write);

  void Read(sim::VThread* vt, const void* addr, uint64_t bytes) {
    Access(vt, addr, bytes, /*write=*/false);
  }
  void Write(sim::VThread* vt, const void* addr, uint64_t bytes) {
    Access(vt, addr, bytes, /*write=*/true);
  }
  /// Pure CPU work (hashing, comparisons) — no memory modelling.
  void Compute(sim::VThread* vt, uint64_t cycles) { vt->Charge(cycles); }

  /// faultlab link degradation: multiplies the precomputed DRAM latency of
  /// every (src, dst) pair whose route crosses one of `links` by `scale`
  /// (truncated). A static table rewrite, so the scalar and span paths stay
  /// bit-identical and the no-fault path never pays for it.
  void ApplyLinkDegradation(const std::vector<int>& links, double scale);

  /// Routes Access/AccessSpan through the unbatched reference
  /// implementation. The span parity tests run fixed workloads under both
  /// settings and require bit-identical results; keep this off otherwise.
  void SetScalarReference(bool on) { scalar_reference_ = on; }
  bool scalar_reference() const { return scalar_reference_; }

  /// Called by the OS scheduler when a thread lands on a new core: its TLB
  /// entries and private-cache contents there are stale/cold.
  void OnThreadMigrated(int new_core);

  /// Per-thread DRAM traffic split by target node while AutoNUMA sampling is
  /// on; consumed by the AutoNUMA task balancer.
  const std::array<uint64_t, kMaxNumaNodes>& NodeTraffic(int vthread_id);
  void ResetNodeTraffic(int vthread_id);

  /// Invalidate the TLB entry for a migrated page on every core.
  void ShootdownTlb(uint64_t addr);

  /// Attaches the happens-before race detector (src/sanity): Access and
  /// AccessSpan forward every simulated touch to it, and reports gain
  /// node/page detail through a resolver installed here. The detector is
  /// pure bookkeeping — it charges no cycles and never mutates simulator
  /// state, so results are identical with it on or off; when `rd` is null
  /// (the default) the hook is a single predictable branch.
  void SetRaceDetector(sanity::RaceDetector* rd);
  sanity::RaceDetector* race() const { return race_; }

  /// Live view of the run's system counters (the same object RunResult's
  /// degradation fields are copied from at Finish). Lets mid-run observers
  /// (e.g. the serving admission controller) react to spill/OOM pressure
  /// while the run is still executing.
  const perf::SystemCounters* sys() const { return sys_; }

  /// Human-readable placement of a simulated (slab-relative) address:
  /// node, page index and region extent. Safe on wild addresses.
  std::string DescribeSimAddr(uint64_t sim_addr) const;

 private:
  /// Last-translation cache of one virtual thread, used by the span path to
  /// skip SimOS::Lookup while the cached Region provably still covers the
  /// address. Trusted only while both generations match (thread migration /
  /// TLB shootdown bump trans_gen_; unmap, madvise, page migration and THP
  /// collapse/split bump SimOS::mutation_generation()).
  struct SpanCursor {
    Region* region = nullptr;
    uint64_t region_base = 1;
    uint64_t region_end = 0;  ///< empty range: never matches
    uint64_t trans_gen = 0;
    uint64_t os_gen = 0;
  };

  /// Grows all per-thread AutoNUMA state vectors (node_traffic_,
  /// fault_stride_, fault_budget_) to cover `vthread_id`. Every consumer of
  /// that state must go through here: resizing only a subset (the bug this
  /// helper replaced) leaves fault_budget_ short and SampleAutoNuma indexing
  /// it out of bounds.
  void EnsureThreadState(int vthread_id);

  SpanCursor& CursorFor(int vthread_id);
  Region* ResolveRegion(SpanCursor& cursor, uint64_t host_addr);

  void AccessScalar(sim::VThread* vt, const void* addr, uint64_t bytes,
                    bool write);
  void SpanFast(sim::VThread* vt, uint64_t addr, uint64_t bytes,
                uint64_t stride, bool write);

  /// Hot prefix of AutoNUMA sampling: bumps traffic counts and early-exits
  /// unless this access takes a hinting fault. Runs once per DRAM line, so
  /// it is defined inline in mem_system.cc (its only callers live there).
  void SampleAutoNuma(sim::VThread* vt, Region* region, size_t idx,
                      int accessor_node, int page_node, bool write);
  /// The hinting fault itself: kernel-trap charge, visit/heat bookkeeping,
  /// hot-page replication, and the promotion rule (cost-oblivious stock
  /// AutoNUMA, or the placement benefit/cost gate).
  void SampleAutoNumaFault(sim::VThread* vt, Region* region, size_t idx,
                           int accessor_node, int page_node, bool write);
  /// Per-DRAM-line replica routing: local replicas serve reads; a write to
  /// a replicated page invalidates every copy and charges the shootdown.
  /// Returns the node that actually serves the line. Only called while
  /// placement is enabled; defined inline in mem_system.cc.
  int RouteReplica(sim::VThread* vt, Region* region, size_t idx, int my_node,
                   int page_node, bool write);

  /// dram_latency * LatencyFactor(src,dst) / mlp, truncated — fixed at
  /// construction, cached so the per-DRAM-line path skips the double math.
  uint64_t DramLatency(int src, int dst) const {
    return lat_table_[static_cast<size_t>(src)][static_cast<size_t>(dst)];
  }

  const topology::Machine* machine_;
  sim::Engine* engine_;
  CostModel costs_;
  perf::SystemCounters* sys_;
  ContentionModel contention_;
  std::unique_ptr<SimOS> os_;
  CacheModel caches_;
  std::vector<Tlb> tlbs_;  // one per physical core
  bool autonuma_ = false;
  bool scalar_reference_ = false;
  bool placement_ = false;
  PlacementConfig placement_cfg_;
  uint64_t wave_epoch_ = 0;  ///< heat-decay epoch, bumped per scan wave
  sanity::RaceDetector* race_ = nullptr;
  std::vector<std::array<uint64_t, kMaxNumaNodes>> node_traffic_;
  std::vector<uint32_t> fault_stride_;  // per-thread sampling countdown
  uint64_t migrate_epoch_ = 0;
  uint64_t migrations_this_epoch_ = 0;
  std::vector<uint64_t> fault_budget_;  // per-thread, rearmed per scan wave
  uint64_t wave_budget_ = 1ULL << 40;
  /// Bumped on thread migration and TLB shootdown; span-path memos compare
  /// against it before trusting a cached translation.
  uint64_t trans_gen_ = 0;
  std::vector<SpanCursor> cursors_;  // per virtual thread
  std::array<std::array<uint64_t, kMaxNumaNodes>, kMaxNumaNodes> lat_table_{};
};

}  // namespace mem
}  // namespace numalab

#endif  // NUMALAB_MEM_MEM_SYSTEM_H_
