#include "src/mem/page.h"

namespace numalab {
namespace mem {

const char* MemPolicyName(MemPolicy p) {
  switch (p) {
    case MemPolicy::kFirstTouch: return "FirstTouch";
    case MemPolicy::kInterleave: return "Interleave";
    case MemPolicy::kLocalAlloc: return "Localalloc";
    case MemPolicy::kPreferred: return "Preferred";
  }
  return "?";
}

}  // namespace mem
}  // namespace numalab
