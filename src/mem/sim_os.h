// Simulated operating-system memory management: mapping regions for the
// allocators, binding pages to NUMA nodes per the process memory policy,
// releasing memory (madvise), migrating pages, and collapsing/splitting
// transparent huge pages.
//
// All simulated mappings are carved from one big reserved host slab
// (MAP_NORESERVE), so addresses are *deterministic relative to the slab
// base*: every cache/TLB hash, page index and placement decision replays
// identically across runs — the property that makes simulated experiments
// bit-reproducible.
//
// SimOS is mechanism only; *when* pages migrate or collapse is decided by
// the AutoNUMA and khugepaged models in src/osmodel.

#ifndef NUMALAB_MEM_SIM_OS_H_
#define NUMALAB_MEM_SIM_OS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/faultlab/faultlab.h"
#include "src/mem/contention.h"
#include "src/mem/cost_model.h"
#include "src/mem/page.h"
#include "src/perf/counters.h"
#include "src/sim/engine.h"
#include "src/topology/machine.h"

namespace numalab {
namespace mem {

class SimOS {
 public:
  SimOS(const topology::Machine* machine, sim::Engine* engine,
        const CostModel* costs, ContentionModel* contention,
        perf::SystemCounters* sys);
  ~SimOS();

  SimOS(const SimOS&) = delete;
  SimOS& operator=(const SimOS&) = delete;

  void SetPolicy(MemPolicy policy, int preferred_node = 0) {
    policy_ = policy;
    preferred_node_ = preferred_node;
  }
  MemPolicy policy() const { return policy_; }

  /// THP fault path: when on, the first touch of an untouched 2M-aligned
  /// run faults in the whole run as one huge page on one node.
  void SetThpFaultAlloc(bool on) { thp_fault_alloc_ = on; }

  /// Attaches the faultlab runtime: per-node capacities are rescaled per
  /// the plan and offline/migration-failure events become live. Null (the
  /// default) keeps capacities at Machine::node_memory_bytes and costs one
  /// branch on the bind slow path.
  void SetFaultLab(faultlab::FaultLab* faults);

  /// Maps `bytes` (rounded up to 4K; regions are 2M-aligned within the
  /// slab). Pages are bound immediately for Interleave/LocalAlloc/Preferred
  /// and lazily (at first touch) for FirstTouch. Does not charge cycles —
  /// the calling allocator charges its own syscall cost.
  /// CHECK-fails when the simulated address space is exhausted; fallible
  /// callers use TryMap.
  Region* Map(uint64_t bytes, bool thp_eligible = true);

  /// Map that returns nullptr instead of aborting when the simulated
  /// address space is exhausted — the allocator chain propagates the
  /// failure up to Env::TryAlloc as Status::OutOfMemory.
  Region* TryMap(uint64_t bytes, bool thp_eligible = true);

  /// Linux-style zonelist of `node`: all nodes ordered by distance
  /// (Machine::Hops, ties by node id), starting with `node` itself. Page
  /// binds walk this order when their desired node is full or offline.
  const std::vector<int>& Zonelist(int node) const {
    return zonelist_[static_cast<size_t>(node)];
  }

  /// Effective per-node capacity being enforced (machine size, or the
  /// faultlab-scaled value when a plan is attached).
  uint64_t NodeCapacityBytes(int node) const {
    return node_cap_[static_cast<size_t>(node)];
  }

  /// Unmaps; the address range is recycled for future mappings.
  void Unmap(Region* region);

  /// MADV_DONTNEED: releases the physical pages of [offset, offset+len);
  /// intersecting huge pages are split first. Subsequent touches re-fault
  /// and re-bind per the current policy.
  void MadviseDontNeed(Region* region, uint64_t offset, uint64_t len,
                       uint64_t now);

  /// Finds the region/page covering `addr`. CHECK-fails on wild addresses.
  std::pair<Region*, size_t> Lookup(uint64_t addr) const;

  /// Ensures the page is bound and resident; returns the node serving it
  /// (the huge-run head's node for collapsed pages). Runs once per DRAM
  /// line, so the no-fault common case — already resident with a bound
  /// home node — stays inline; first touches, THP faults and rebinding
  /// take the out-of-line slow path.
  int Touch(Region* region, size_t idx, int accessor_node) {
    const PageRec& p = region->pages[idx];
    if (p.resident) {
      if (!p.huge) {
        if (p.node >= 0) return p.node;
      } else {
        const PageRec& head = region->pages[region->HugeHead(idx)];
        if (head.node >= 0) return head.node;
      }
    }
    return TouchSlow(region, idx, accessor_node);
  }

  /// Moves the 4K page (or whole huge run) to `to_node`: kernel copy traffic
  /// is injected into the contention model and subsequent accesses stall
  /// until the copy completes. Used by the AutoNUMA model. Any replicas of
  /// the page are dropped first (the copy supersedes them).
  void MigratePage(Region* region, size_t idx, int to_node, uint64_t now);

  /// Adaptive placement: grants `node` a read replica of the (non-huge,
  /// resident, bound) 4K page. Replicas consume capacity on `node` but are
  /// the first thing reclaimed under pressure — they never displace real
  /// pages (AddReplica fails instead of spilling) and BindWithSpill drops
  /// them to make room before counting a spill. Injects the copy traffic
  /// into the contention model on both nodes. Returns success.
  bool AddReplica(Region* region, size_t idx, int node);

  /// Drops every replica of the page (write invalidation, migration,
  /// madvise, unmap). Pure accounting — the caller charges any simulated
  /// shootdown cost. Safe on pages without replicas.
  void DropPageReplicas(Region* region, size_t idx);

  /// Bytes currently held by replicas on `node` / across the machine.
  uint64_t replica_bytes(int node) const {
    return node_replica_bytes_[static_cast<size_t>(node)];
  }
  uint64_t replica_bytes_total() const { return replica_bytes_total_; }

  /// Collapses the 2M-aligned run starting at head_idx if all 512 pages are
  /// resident, bound, not already huge, and on one node. Returns success.
  bool TryCollapseHuge(Region* region, size_t head_idx, uint64_t now);

  /// Splits a huge run back into 4K pages (keeps their binding).
  void SplitHuge(Region* region, size_t head_idx, uint64_t now);

  /// All live regions in address order (khugepaged scan).
  const std::map<uint64_t, Region*>& regions() const { return regions_; }

  /// Deterministic (slab-relative) form of a host address; feed this to
  /// anything that hashes addresses.
  uint64_t ToSimAddr(uint64_t host_addr) const { return host_addr - slab_; }
  /// Inverse of ToSimAddr.
  uint64_t FromSimAddr(uint64_t sim_addr) const { return sim_addr + slab_; }

  uint64_t resident_bytes() const { return resident_bytes_; }
  uint64_t resident_peak() const { return resident_peak_; }
  uint64_t bound_bytes(int node) const { return node_bound_bytes_[node]; }

  /// Monotonic counter bumped whenever the page table mutates in a way that
  /// can invalidate a cached translation (unmap, madvise, page migration,
  /// THP collapse/split). MemSystem's per-thread last-translation caches
  /// compare against it before trusting a cached Region pointer.
  uint64_t mutation_generation() const { return mutation_gen_; }

 private:
  static constexpr uint64_t kSlabBytes = 48ULL << 30;  // virtual reservation
  static constexpr uint64_t kSlotBytes = kHugePageBytes;

  int ChooseBindNode(int accessor_node);
  /// Applies capacity enforcement + zonelist spill to a policy-chosen bind
  /// target for a `bytes`-sized bind (4K page or 2M THP run). Returns
  /// `desired` unchanged in the no-pressure common case.
  int BindWithSpill(int desired, uint64_t bytes = kSmallPageBytes);
  bool NodeHasRoom(int node, uint64_t bytes) const {
    return node_bound_bytes_[static_cast<size_t>(node)] + bytes <=
           node_cap_[static_cast<size_t>(node)];
  }
  /// NodeHasRoom, after reclaiming replicas on `node` if that is what it
  /// takes — replicas are droppable cache, real pages are not.
  bool EnsureRoom(int node, uint64_t bytes);
  void DropReplica(Region* region, size_t idx, int node);
  void AddResident(Region* region, size_t idx);
  int TouchSlow(Region* region, size_t idx, int accessor_node);
  void DropResident(Region* region, size_t idx);

  const topology::Machine* machine_;
  sim::Engine* engine_;
  const CostModel* costs_;
  ContentionModel* contention_;
  perf::SystemCounters* sys_;

  MemPolicy policy_ = MemPolicy::kFirstTouch;
  int preferred_node_ = 0;
  bool thp_fault_alloc_ = false;
  int interleave_cursor_ = 0;

  uint64_t slab_ = 0;          ///< host base of the reservation
  uint64_t bump_slot_ = 0;     ///< next never-used slot
  std::map<uint64_t, std::vector<uint64_t>> free_slots_;  // nslots -> starts
  std::vector<Region*> slot_region_;  ///< slot index -> covering region
  std::map<uint64_t, Region*> regions_;  // key: base address

  uint64_t resident_bytes_ = 0;
  uint64_t resident_peak_ = 0;
  uint64_t mutation_gen_ = 0;
  std::vector<uint64_t> node_bound_bytes_;

  faultlab::FaultLab* faults_ = nullptr;
  std::vector<uint64_t> node_cap_;            ///< enforced capacity per node
  std::vector<std::vector<int>> zonelist_;    ///< [node] -> fallback order

  // Adaptive placement replica accounting. The per-node stacks record
  // (region base, page index) of replicas in creation order for
  // reclaim-before-spill; entries are validated lazily against the live
  // replica_mask (a dropped replica or unmapped region leaves a stale
  // entry behind that reclaim skips). Empty unless placement is on.
  std::vector<uint64_t> node_replica_bytes_;
  uint64_t replica_bytes_total_ = 0;
  std::vector<std::vector<std::pair<uint64_t, uint32_t>>> replica_stack_;
};

}  // namespace mem
}  // namespace numalab

#endif  // NUMALAB_MEM_SIM_OS_H_
