// Cycle-cost constants of the simulated memory hierarchy.
//
// The values are order-of-magnitude realistic for the paper's 2006-2016 era
// machines; what matters for the reproduction is their *ratios* (cache hit
// vs DRAM vs remote DRAM vs page walk). Every knob can be switched off for
// the ablation benchmarks.

#ifndef NUMALAB_MEM_COST_MODEL_H_
#define NUMALAB_MEM_COST_MODEL_H_

#include <cstdint>

namespace numalab {
namespace mem {

struct CostModel {
  /// Charged on every logical access (address generation + L1).
  uint64_t base_access_cycles = 2;
  /// Hit in the core-private cache (L2-ish).
  uint64_t private_hit_cycles = 12;
  /// Hit in the node-shared last-level cache.
  uint64_t llc_hit_cycles = 45;
  /// TLB miss page-walk penalty.
  uint64_t page_walk_cycles = 40;
  /// AutoNUMA NUMA-hinting minor fault (trap + kernel accounting).
  uint64_t hinting_fault_cycles = 900;
  /// OS moving a thread to another core (context switch + cold start).
  uint64_t thread_migration_cycles = 30000;
  /// Fixed kernel overhead of migrating one 4K page.
  uint64_t page_migration_cycles = 6000;
  /// Collapsing 512 small pages into one huge page (copy + remap).
  uint64_t thp_collapse_cycles = 30000;
  /// Splitting a huge page back into small pages.
  uint64_t thp_split_cycles = 25000;
  /// mmap/brk-style system call issued by an allocator.
  uint64_t syscall_cycles = 4000;

  /// Memory-level parallelism: out-of-order cores overlap cache misses, so
  /// the *effective* serialized latency of one DRAM access is
  /// dram_latency / mlp.
  double mlp = 6.0;
  /// Upper bound for a single access's queueing delay (keeps one lagging
  /// thread from reserving a resource absurdly far in the future).
  uint64_t max_queue_delay_cycles = 4000;

  // --- Ablation switches (DESIGN.md section 7) ---
  bool model_contention = true;  ///< controller + link queueing
  bool model_tlb = true;         ///< TLB reach / page walks
  bool model_caches = true;      ///< private + LLC tag arrays
};

inline constexpr uint64_t kCacheLineBytes = 64;
inline constexpr uint64_t kSmallPageBytes = 4096;
inline constexpr uint64_t kHugePageBytes = 2ULL << 20;
inline constexpr int kSmallPagesPerHuge =
    static_cast<int>(kHugePageBytes / kSmallPageBytes);  // 512
inline constexpr int kMaxNumaNodes = 8;

}  // namespace mem
}  // namespace numalab

#endif  // NUMALAB_MEM_COST_MODEL_H_
