// Cache hierarchy model: a private cache per physical core plus a shared
// last-level cache per NUMA node, both as direct-mapped line tag arrays.
//
// Tags-only modelling is deliberate: the simulator charges time, it does not
// move data, so only hit/miss decisions are needed. Direct-mapped arrays
// under-estimate hit rates slightly versus real set-associative caches but
// preserve the effects the paper measures — working-set fit, cold caches
// after thread migration, and LLC capacity differences between machines.

#ifndef NUMALAB_MEM_CACHES_H_
#define NUMALAB_MEM_CACHES_H_

#include <cstdint>
#include <vector>

#include "src/mem/cost_model.h"
#include "src/mem/fastmod.h"
#include "src/topology/machine.h"

namespace numalab {
namespace mem {

class LineCache {
 public:
  explicit LineCache(uint64_t capacity_bytes) {
    size_t lines = static_cast<size_t>(capacity_bytes / kCacheLineBytes);
    tags_.assign(std::max<size_t>(lines, 1), kEmpty);
    mod_ = FastMod32(static_cast<uint32_t>(tags_.size()));
  }

  bool Probe(uint64_t line) const {
    return tags_[Slot(line)] == line;
  }

  void Insert(uint64_t line) { tags_[Slot(line)] = line; }

  void Flush() { std::fill(tags_.begin(), tags_.end(), kEmpty); }

 private:
  static constexpr uint64_t kEmpty = ~0ULL;
  size_t Slot(uint64_t line) const {
    // The hash fits 32 bits, so FastMod32 matches `% tags_.size()` exactly.
    return mod_.Mod((line * 0x9e3779b97f4a7c15ULL) >> 32);
  }
  std::vector<uint64_t> tags_;
  FastMod32 mod_;
};

/// \brief All caches of one machine: index by core for the private level and
/// by node for the LLC.
class CacheModel {
 public:
  explicit CacheModel(const topology::Machine& m) {
    for (int c = 0; c < m.num_cores(); ++c) {
      private_.emplace_back(m.private_cache_bytes());
    }
    for (int n = 0; n < m.num_nodes(); ++n) {
      llc_.emplace_back(m.llc_bytes_per_node());
    }
  }

  LineCache& Private(int core) { return private_[static_cast<size_t>(core)]; }
  LineCache& Llc(int node) { return llc_[static_cast<size_t>(node)]; }

 private:
  std::vector<LineCache> private_;
  std::vector<LineCache> llc_;
};

}  // namespace mem
}  // namespace numalab

#endif  // NUMALAB_MEM_CACHES_H_
