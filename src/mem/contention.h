// Bandwidth contention model for memory controllers and interconnect links.
//
// Each resource (one memory controller per node, one directed link per hop)
// tracks its demand in coarse virtual-time epochs and charges queueing
// delay from the measured utilization of the previous epoch:
//
//     delay(access) = service_time x rho / (1 - rho)        (M/M/1 shape)
//
// where rho = bytes booked in the last completed epoch / epoch capacity.
// Using the *previous* epoch makes the charge insensitive to the bounded
// clock skew between virtual threads (a reservation-calendar model would
// bill skew as phantom queueing) while preserving the feedback loop that
// matters: when aggregate demand approaches a resource's bytes/cycle,
// every client slows down, which is the effect behind the paper's
// Sparse-vs-Dense and Interleave results.

#ifndef NUMALAB_MEM_CONTENTION_H_
#define NUMALAB_MEM_CONTENTION_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/logging.h"
#include "src/topology/machine.h"

namespace numalab {
namespace mem {

/// \brief A bandwidth resource with epoch-based utilization accounting.
class ResourceQueue {
 public:
  /// Epoch length of the utilization accounting; exposed so the batched
  /// span path in MemSystem can coalesce bookings that provably fall into
  /// one epoch.
  static constexpr uint64_t kEpochCycles = 1ULL << 16;  // 65536

  ResourceQueue() = default;
  explicit ResourceQueue(double bytes_per_cycle)
      : bytes_per_cycle_(bytes_per_cycle) {}

  /// Books `bytes` of demand at time `now`; returns the queueing delay to
  /// charge (0 when the resource was idle last epoch).
  uint64_t Reserve(uint64_t now, uint64_t bytes, uint64_t max_delay) {
    Roll(now);
    bytes_cur_ += bytes;
    total_bytes_ += bytes;
    double service = static_cast<double>(bytes) / bytes_per_cycle_;
    double rho = Utilization();
    double delay = service * rho / (1.0 - rho);
    return std::min(static_cast<uint64_t>(delay), max_delay);
  }

  /// Books demand without computing a delay. Bit-equivalent to a sequence
  /// of Reserve calls whose `now` values all fall into the same epoch as
  /// this call's `now` (the rolls those calls would do are no-ops), which
  /// is the invariant the batched access path maintains.
  void Book(uint64_t now, uint64_t bytes) {
    Roll(now);
    bytes_cur_ += bytes;
    total_bytes_ += bytes;
  }

  /// Utilization of the last completed epoch, clamped below 1.
  double Utilization() const {
    double capacity = bytes_per_cycle_ * static_cast<double>(kEpochCycles);
    double rho = static_cast<double>(bytes_prev_) / capacity;
    return std::min(rho, 0.97);
  }

  uint64_t total_bytes() const { return total_bytes_; }

 private:
  void Roll(uint64_t now) {
    uint64_t epoch = now / kEpochCycles;
    if (epoch == cur_epoch_) return;
    if (epoch == cur_epoch_ + 1) {
      bytes_prev_ = bytes_cur_;
    } else if (epoch > cur_epoch_) {
      bytes_prev_ = 0;  // idle gap
    } else {
      return;  // stale access from a lagging thread: book into current
    }
    bytes_cur_ = 0;
    cur_epoch_ = epoch;
  }

  double bytes_per_cycle_ = 1.0;
  uint64_t cur_epoch_ = 0;
  uint64_t bytes_cur_ = 0;
  uint64_t bytes_prev_ = 0;
  uint64_t total_bytes_ = 0;
};

/// \brief All bandwidth resources of one machine.
class ContentionModel {
 public:
  explicit ContentionModel(const topology::Machine& machine) {
    for (int n = 0; n < machine.num_nodes(); ++n) {
      controllers_.emplace_back(machine.mem_ctrl_bytes_per_cycle());
    }
    for (const auto& link : machine.links()) {
      links_.emplace_back(link.bytes_per_cycle);
    }
  }

  /// Total queueing delay for moving `bytes` from node `src` to memory on
  /// node `dst` at time `now`. Charges the destination controller and, for
  /// remote accesses, every link on the precomputed route.
  ///
  /// Not memoizable across calls: Roll's stale-access branch means a queue's
  /// cur_epoch_ (and with it bytes_prev_) can advance while a lagging
  /// thread's `now` is still in an older epoch, so a delay cached under the
  /// caller-visible epoch goes stale the moment any other thread rolls a
  /// shared queue forward. Only the batched span path may reuse a delay, and
  /// only within one uninterrupted span (no other thread can touch the
  /// queues mid-span).
  uint64_t Charge(const topology::Machine& machine, int src, int dst,
                  uint64_t now, uint64_t bytes, uint64_t max_delay) {
    uint64_t delay = controllers_[dst].Reserve(now, bytes, max_delay);
    if (src != dst) {
      for (int link_id : machine.Route(src, dst)) {
        delay += links_[link_id].Reserve(now, bytes, max_delay);
      }
    }
    return std::min(delay, max_delay);
  }

  /// Books `bytes` along the src->dst route without computing a delay.
  /// Used by the batched access path to coalesce the bookings of a run of
  /// same-epoch cache-line accesses into one call (see ResourceQueue::Book
  /// for the exactness argument).
  void Book(const topology::Machine& machine, int src, int dst, uint64_t now,
            uint64_t bytes) {
    controllers_[dst].Book(now, bytes);
    if (src != dst) {
      for (int link_id : machine.Route(src, dst)) {
        links_[link_id].Book(now, bytes);
      }
    }
  }

  /// Injects background service demand (page migrations, THP copies) so
  /// concurrent accessors experience the kernel's memory traffic.
  void Inject(int node, uint64_t now, uint64_t bytes) {
    controllers_[node].Reserve(now, bytes, 0);
  }

  const ResourceQueue& controller(int node) const {
    return controllers_[node];
  }

 private:
  std::vector<ResourceQueue> controllers_;
  std::vector<ResourceQueue> links_;
};

}  // namespace mem
}  // namespace numalab

#endif  // NUMALAB_MEM_CONTENTION_H_
