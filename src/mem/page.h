// Simulated physical pages and mapped regions.
//
// SimOS hands allocators Regions of host memory whose 4K pages each carry a
// simulated NUMA placement. A "huge page" is a 2M-aligned run of 512 page
// records whose head record holds the placement for the whole run (that is
// how THP collapse is represented).

#ifndef NUMALAB_MEM_PAGE_H_
#define NUMALAB_MEM_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/mem/cost_model.h"

namespace numalab {
namespace mem {

/// \brief numactl-style process memory placement policy (Table IV).
enum class MemPolicy {
  kFirstTouch,  ///< bind at first access, to the toucher's node (Linux default)
  kInterleave,  ///< round-robin across all nodes at allocation
  kLocalAlloc,  ///< bind at allocation, to the allocating thread's node
  kPreferred,   ///< bind to one chosen node until it is full
};

const char* MemPolicyName(MemPolicy p);

/// \brief Per-4K-page simulated state. Kept compact: regions can hold
/// hundreds of thousands of these.
struct PageRec {
  int16_t node = -1;            ///< NUMA node, -1 = not yet bound
  uint8_t resident = 0;         ///< touched at least once
  uint8_t huge = 0;             ///< member of a collapsed 2M run
  uint8_t visits[kMaxNumaNodes] = {0};  ///< AutoNUMA access samples by node

  // Adaptive placement state (src/mem/placement.h); all zero and never
  // read while placement is disabled. Only non-huge pages ever carry a
  // replica_mask: THP collapse refuses replicated members.
  //
  // Lock contract (DESIGN.md section 13): the replica table — these
  // fields plus SimOS's per-node replica accounting — is engine-
  // serialized: mutated only from AccessPage/AddReplica/DropReplicas on
  // the single host thread driving the engine, so it carries no
  // capability annotation; simulated-thread interleavings cannot race it
  // by construction.
  uint8_t replica_mask = 0;     ///< nodes holding a read replica (bit=node)
  uint8_t reads = 0;            ///< sampled reads (saturating, wave-decayed)
  uint8_t writes = 0;           ///< sampled writes (saturating, wave-decayed)
  uint16_t heat = 0;            ///< access-rate accumulator, wave-decayed
  uint16_t heat_wave = 0;       ///< scan-wave epoch of the last heat update

  uint64_t migrating_until = 0; ///< accesses stall until this virtual time
};

class SimAllocatorBase;  // forward decl (src/alloc)

/// \brief A contiguous mapping created by SimOS::Map.
struct Region {
  uint64_t base = 0;   ///< host address of the backing memory
  uint64_t len = 0;    ///< bytes (multiple of 4K)
  char* host = nullptr;
  bool thp_eligible = true;
  std::vector<PageRec> pages;  ///< len / 4K records

  uint64_t end() const { return base + len; }
  size_t PageIndex(uint64_t addr) const {
    return static_cast<size_t>((addr - base) / kSmallPageBytes);
  }
  /// Head index of the huge run containing page i (2M-aligned in *address*).
  size_t HugeHead(size_t i) const {
    uint64_t addr = base + i * kSmallPageBytes;
    uint64_t head_addr = addr & ~(kHugePageBytes - 1);
    if (head_addr < base) return 0;  // unaligned leading part (never huge)
    return PageIndex(head_addr);
  }
};

}  // namespace mem
}  // namespace numalab

#endif  // NUMALAB_MEM_PAGE_H_
