// Exact remainder by a runtime-constant divisor without the hardware
// divide. The direct-mapped tag arrays (TLB, caches) compute
// `hash % size` once or more per simulated access; `size` is fixed at
// construction but unknown at compile time, so the compiler must emit a
// ~25-cycle integer division. This precomputes Lemire's multiply-shift
// reciprocal instead (D. Lemire, "Faster remainder by direct computation",
// 2019): two multiplications, bit-exact with `%` for any dividend below
// 2^32 — which the callers guarantee by hashing down to 32 bits first.

#ifndef NUMALAB_MEM_FASTMOD_H_
#define NUMALAB_MEM_FASTMOD_H_

#include <cstdint>

namespace numalab {
namespace mem {

class FastMod32 {
 public:
  FastMod32() = default;
  explicit FastMod32(uint32_t d) : d_(d) {
    // magic = floor(2^64 / d) + 1; d == 1 would wrap to 0, but Mod
    // special-cases it (x % 1 == 0) so the magic is never consulted.
    if (d > 1) magic_ = ~uint64_t{0} / d + 1;
  }

  /// Exactly x % divisor for x < 2^32.
  uint32_t Mod(uint64_t x) const {
    if (d_ <= 1) return 0;
    uint64_t low = magic_ * x;  // wraps mod 2^64 by design
    return static_cast<uint32_t>(
        (static_cast<unsigned __int128>(low) * d_) >> 64);
  }

  uint32_t divisor() const { return d_; }

 private:
  uint32_t d_ = 1;
  uint64_t magic_ = 0;
};

}  // namespace mem
}  // namespace numalab

#endif  // NUMALAB_MEM_FASTMOD_H_
