#include "src/mem/sim_os.h"

#include <sys/mman.h>

#include <algorithm>

namespace numalab {
namespace mem {

SimOS::SimOS(const topology::Machine* machine, sim::Engine* engine,
             const CostModel* costs, ContentionModel* contention,
             perf::SystemCounters* sys)
    : machine_(machine),
      engine_(engine),
      costs_(costs),
      contention_(contention),
      sys_(sys),
      slot_region_(kSlabBytes / kSlotBytes, nullptr),
      node_bound_bytes_(static_cast<size_t>(machine->num_nodes()), 0),
      node_cap_(static_cast<size_t>(machine->num_nodes()),
                machine->node_memory_bytes()),
      node_replica_bytes_(static_cast<size_t>(machine->num_nodes()), 0),
      replica_stack_(static_cast<size_t>(machine->num_nodes())) {
  sys_->capacity_bytes_total =
      static_cast<uint64_t>(machine->num_nodes()) *
      machine->node_memory_bytes();
  void* p = mmap(nullptr, kSlabBytes, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  NUMALAB_CHECK(p != MAP_FAILED);
  slab_ = reinterpret_cast<uint64_t>(p);

  // Linux zonelist per node: all nodes sorted by interconnect distance,
  // nearest first, ties broken by node id (stable sort over the id order).
  zonelist_.resize(static_cast<size_t>(machine->num_nodes()));
  for (int n = 0; n < machine->num_nodes(); ++n) {
    auto& zl = zonelist_[static_cast<size_t>(n)];
    for (int m = 0; m < machine->num_nodes(); ++m) zl.push_back(m);
    std::stable_sort(zl.begin(), zl.end(), [&](int a, int b) {
      return machine->Hops(n, a) < machine->Hops(n, b);
    });
  }
}

void SimOS::SetFaultLab(faultlab::FaultLab* faults) {
  faults_ = faults;
  sys_->capacity_bytes_total = 0;
  for (int n = 0; n < machine_->num_nodes(); ++n) {
    node_cap_[static_cast<size_t>(n)] =
        faults != nullptr
            ? faults->NodeCapacityBytes(n, machine_->node_memory_bytes())
            : machine_->node_memory_bytes();
    sys_->capacity_bytes_total += node_cap_[static_cast<size_t>(n)];
  }
}

SimOS::~SimOS() {
  for (auto& [base, region] : regions_) delete region;
  munmap(reinterpret_cast<void*>(slab_), kSlabBytes);
}

Region* SimOS::Map(uint64_t bytes, bool thp_eligible) {
  Region* region = TryMap(bytes, thp_eligible);
  NUMALAB_CHECK(region != nullptr && "simulated address space exhausted");
  return region;
}

Region* SimOS::TryMap(uint64_t bytes, bool thp_eligible) {
  uint64_t len = (bytes + kSmallPageBytes - 1) & ~(kSmallPageBytes - 1);
  uint64_t nslots = (len + kSlotBytes - 1) / kSlotBytes;

  uint64_t slot;
  auto it = free_slots_.find(nslots);
  if (it != free_slots_.end() && !it->second.empty()) {
    slot = it->second.back();
    it->second.pop_back();
  } else {
    if ((bump_slot_ + nslots) * kSlotBytes > kSlabBytes) {
      return nullptr;  // address space exhausted; caller decides severity
    }
    slot = bump_slot_;
    bump_slot_ += nslots;
  }

  auto* region = new Region();
  region->base = slab_ + slot * kSlotBytes;
  region->len = len;
  region->host = reinterpret_cast<char*>(region->base);
  region->thp_eligible = thp_eligible;
  region->pages.assign(len / kSmallPageBytes, PageRec{});
  for (uint64_t s = slot; s < slot + nslots; ++s) {
    slot_region_[s] = region;
  }

  // Interleave / LocalAlloc / Preferred bind eagerly; FirstTouch binds at
  // fault time (Touch).
  if (policy_ != MemPolicy::kFirstTouch) {
    int local = 0;
    if (engine_->current() != nullptr) {
      local = machine_->NodeOfHwThread(engine_->current()->hw_thread);
    }
    for (auto& p : region->pages) {
      p.node = static_cast<int16_t>(BindWithSpill(ChooseBindNode(local)));
      node_bound_bytes_[static_cast<size_t>(p.node)] += kSmallPageBytes;
    }
  }

  regions_[region->base] = region;
  sys_->pages_mapped += region->pages.size();
  sys_->bytes_mapped += len;
  sys_->bytes_mapped_peak =
      std::max(sys_->bytes_mapped_peak, sys_->bytes_mapped);
  return region;
}

void SimOS::Unmap(Region* region) {
  ++mutation_gen_;
  for (size_t i = 0; i < region->pages.size(); ++i) {
    DropResident(region, i);
    if (region->pages[i].replica_mask != 0) DropPageReplicas(region, i);
  }
  for (auto& p : region->pages) {
    if (p.node >= 0) {
      node_bound_bytes_[static_cast<size_t>(p.node)] -= kSmallPageBytes;
    }
  }
  sys_->bytes_mapped -= region->len;
  regions_.erase(region->base);

  uint64_t slot = (region->base - slab_) / kSlotBytes;
  uint64_t nslots = (region->len + kSlotBytes - 1) / kSlotBytes;
  for (uint64_t s = slot; s < slot + nslots; ++s) slot_region_[s] = nullptr;
  free_slots_[nslots].push_back(slot);

  // Return the host pages so long simulations do not accumulate RSS.
  madvise(region->host, region->len, MADV_DONTNEED);
  delete region;
}

void SimOS::MadviseDontNeed(Region* region, uint64_t offset, uint64_t len,
                            uint64_t now) {
  ++mutation_gen_;
  uint64_t first = (offset + kSmallPageBytes - 1) / kSmallPageBytes;
  uint64_t last = (offset + len) / kSmallPageBytes;  // exclusive
  for (uint64_t i = first; i < last && i < region->pages.size(); ++i) {
    PageRec& p = region->pages[i];
    if (p.huge) SplitHuge(region, region->HugeHead(i), now);
    if (p.replica_mask != 0) DropPageReplicas(region, i);
    DropResident(region, i);
    if (p.node >= 0) {
      node_bound_bytes_[static_cast<size_t>(p.node)] -= kSmallPageBytes;
      p.node = -1;
    }
    for (auto& v : p.visits) v = 0;
    p.reads = 0;
    p.writes = 0;
    p.heat = 0;
  }
}

std::pair<Region*, size_t> SimOS::Lookup(uint64_t addr) const {
  NUMALAB_CHECK(addr >= slab_ && addr < slab_ + kSlabBytes);
  Region* r = slot_region_[(addr - slab_) / kSlotBytes];
  NUMALAB_CHECK(r != nullptr && addr >= r->base && addr < r->end());
  return {r, r->PageIndex(addr)};
}

int SimOS::ChooseBindNode(int accessor_node) {
  switch (policy_) {
    case MemPolicy::kFirstTouch:
    case MemPolicy::kLocalAlloc:
      return accessor_node;
    case MemPolicy::kInterleave: {
      // Kernel interleave rotates over the *allowed* nodemask: offline
      // nodes are not candidates. Rotating over all nodes (the old
      // behaviour) made every Nth allocation target an offline node only
      // for the spill walk to reroute it, skewing placement and inflating
      // offline_redirects. Bit-identical when faultlab is off (the loop
      // below never runs); all-offline falls through to BindWithSpill.
      const int nn = machine_->num_nodes();
      int n = interleave_cursor_;
      interleave_cursor_ = (interleave_cursor_ + 1) % nn;
      if (faults_ != nullptr) {
        uint64_t now = 0;
        if (sim::VThread* vt = engine_->current()) now = vt->clock;
        for (int tries = 1; tries < nn && !faults_->NodeOnline(n, now);
             ++tries) {
          n = interleave_cursor_;
          interleave_cursor_ = (interleave_cursor_ + 1) % nn;
        }
      }
      return n;
    }
    case MemPolicy::kPreferred:
      // Exhaustion of the preferred node is handled by BindWithSpill's
      // zonelist walk, matching the kernel's MPOL_PREFERRED fallback.
      return preferred_node_;
  }
  return accessor_node;
}

int SimOS::BindWithSpill(int desired, uint64_t bytes) {
  uint64_t now = 0;
  if (sim::VThread* vt = engine_->current()) now = vt->clock;
  bool desired_online =
      faults_ == nullptr || faults_->NodeOnline(desired, now);
  if (desired_online && EnsureRoom(desired, bytes)) return desired;

  // Walk the desired node's zonelist (nearest-distance order) for an
  // online node with room — the kernel's fallback allocation order.
  // Replicas on a candidate node are reclaimed before declaring it full:
  // real pages must never spill while droppable copies hold the space.
  for (int n : zonelist_[static_cast<size_t>(desired)]) {
    if (n == desired) continue;
    if (faults_ != nullptr && !faults_->NodeOnline(n, now)) continue;
    if (!EnsureRoom(n, bytes)) continue;
    if (desired_online) {
      ++sys_->pages_spilled;
    } else {
      ++sys_->offline_redirects;
    }
    return n;
  }

  if (desired_online) {
    // Every zone full: bind anyway ("too small to fail" OOM semantics) on
    // the desired node, so the simulation degrades instead of dying.
    ++sys_->oom_last_resort_pages;
    return desired;
  }
  // Desired node offline and every online node full: overcommit the
  // nearest online node. This is a redirect off an offline node, not an
  // OOM bind on `desired` (the old code counted it as the latter).
  for (int n : zonelist_[static_cast<size_t>(desired)]) {
    if (n != desired && faults_->NodeOnline(n, now)) {
      ++sys_->offline_redirects;
      return n;
    }
  }
  // Every node in the machine is offline. There is nothing sane to bind
  // to; record the degradation (the old code silently returned the
  // offline node) and keep the desired binding so the run can limp on.
  ++sys_->all_offline_binds;
  return desired;
}

bool SimOS::EnsureRoom(int node, uint64_t bytes) {
  if (NodeHasRoom(node, bytes)) return true;
  auto& stack = replica_stack_[static_cast<size_t>(node)];
  while (!NodeHasRoom(node, bytes) && !stack.empty()) {
    auto [base, idx] = stack.back();
    stack.pop_back();
    // Validate lazily: the region may have been unmapped (possibly with
    // its slots reused by a fresh region, whose pages start replica-free)
    // or the replica already invalidated; stale entries are skipped.
    auto it = regions_.find(base);
    if (it == regions_.end()) continue;
    Region* r = it->second;
    if (idx >= r->pages.size()) continue;
    if (!((r->pages[idx].replica_mask >> node) & 1)) continue;
    DropReplica(r, idx, node);
  }
  return NodeHasRoom(node, bytes);
}

bool SimOS::AddReplica(Region* region, size_t idx, int node) {
  PageRec& p = region->pages[idx];
  if (p.huge || !p.resident || p.node < 0) return false;
  if (p.node == node || ((p.replica_mask >> node) & 1)) return false;
  uint64_t now = 0;
  if (sim::VThread* vt = engine_->current()) now = vt->clock;
  if (faults_ != nullptr && !faults_->NodeOnline(node, now)) return false;
  // Replicas are strictly opportunistic: they fill free capacity and are
  // never allowed to displace (spill) real pages.
  if (!NodeHasRoom(node, kSmallPageBytes)) return false;
  p.replica_mask |= static_cast<uint8_t>(1u << node);
  node_bound_bytes_[static_cast<size_t>(node)] += kSmallPageBytes;
  node_replica_bytes_[static_cast<size_t>(node)] += kSmallPageBytes;
  replica_bytes_total_ += kSmallPageBytes;
  replica_stack_[static_cast<size_t>(node)].push_back(
      {region->base, static_cast<uint32_t>(idx)});
  ++sys_->pages_replicated;
  sys_->replica_bytes_peak =
      std::max(sys_->replica_bytes_peak, replica_bytes_total_);
  // Kernel copy traffic: read the home copy, write the new one.
  contention_->Inject(p.node, now, kSmallPageBytes);
  contention_->Inject(node, now, kSmallPageBytes);
  return true;
}

void SimOS::DropReplica(Region* region, size_t idx, int node) {
  PageRec& p = region->pages[idx];
  p.replica_mask &= static_cast<uint8_t>(~(1u << node));
  node_bound_bytes_[static_cast<size_t>(node)] -= kSmallPageBytes;
  node_replica_bytes_[static_cast<size_t>(node)] -= kSmallPageBytes;
  replica_bytes_total_ -= kSmallPageBytes;
  ++sys_->replica_drops;
}

void SimOS::DropPageReplicas(Region* region, size_t idx) {
  uint8_t mask = region->pages[idx].replica_mask;
  while (mask != 0) {
    int node = __builtin_ctz(mask);
    mask &= static_cast<uint8_t>(mask - 1);
    DropReplica(region, idx, node);
  }
}

void SimOS::AddResident(Region* region, size_t idx) {
  PageRec& p = region->pages[idx];
  if (!p.resident) {
    p.resident = 1;
    resident_bytes_ += kSmallPageBytes;
    resident_peak_ = std::max(resident_peak_, resident_bytes_);
  }
}

void SimOS::DropResident(Region* region, size_t idx) {
  PageRec& p = region->pages[idx];
  if (p.resident) {
    p.resident = 0;
    resident_bytes_ -= kSmallPageBytes;
  }
}

int SimOS::TouchSlow(Region* region, size_t idx, int accessor_node) {
  PageRec& p = region->pages[idx];

  // THP fault path: first touch of a fully untouched 2M-aligned run faults
  // in one huge page — all 512 subpages, bound together, resident at once.
  if (thp_fault_alloc_ && !p.huge && !p.resident && p.node < 0 &&
      region->thp_eligible) {
    size_t head_idx = region->HugeHead(idx);
    uint64_t head_addr = region->base + head_idx * kSmallPageBytes;
    if ((head_addr & (kHugePageBytes - 1)) == 0 &&
        head_idx + kSmallPagesPerHuge <= region->pages.size()) {
      bool pristine = true;
      for (int i = 0; i < kSmallPagesPerHuge; ++i) {
        const PageRec& q = region->pages[head_idx + static_cast<size_t>(i)];
        if (q.resident || q.node >= 0 || q.huge) {
          pristine = false;
          break;
        }
      }
      if (pristine) {
        int node = BindWithSpill(ChooseBindNode(accessor_node),
                                 kHugePageBytes);
        // Bind and charge every subpage, matching the representation of a
        // khugepaged-collapsed run, so capacity enforcement sees the full
        // 2M (not a head-only 4K undercount).
        for (int i = 0; i < kSmallPagesPerHuge; ++i) {
          PageRec& q = region->pages[head_idx + static_cast<size_t>(i)];
          q.huge = 1;
          q.node = static_cast<int16_t>(node);
          node_bound_bytes_[static_cast<size_t>(node)] += kSmallPageBytes;
          AddResident(region, head_idx + static_cast<size_t>(i));
        }
        ++sys_->thp_collapses;
        return node;
      }
    }
  }

  size_t eff = p.huge ? region->HugeHead(idx) : idx;
  PageRec& head = region->pages[eff];
  if (head.node < 0) {
    head.node =
        static_cast<int16_t>(BindWithSpill(ChooseBindNode(accessor_node)));
    node_bound_bytes_[static_cast<size_t>(head.node)] += kSmallPageBytes;
  }
  AddResident(region, idx);
  return head.node;
}

void SimOS::MigratePage(Region* region, size_t idx, int to_node,
                        uint64_t now) {
  size_t eff = region->pages[idx].huge ? region->HugeHead(idx) : idx;
  PageRec& head = region->pages[eff];
  if (head.node == to_node) return;
  if (faults_ != nullptr) {
    // An offline node takes no new pages, and migrate_pages can fail on
    // pinned/busy pages — both leave the page where it is (counted by the
    // draw); the kernel retries via later hinting faults.
    if (!faults_->NodeOnline(to_node, now)) {
      ++sys_->migration_failures_injected;
      return;
    }
    if (faults_->DrawMigrationFailure()) return;
  }
  // The moving copy supersedes any replicas; readers re-replicate at the
  // new home if the page stays read-hot.
  if (head.replica_mask != 0) DropPageReplicas(region, eff);
  ++mutation_gen_;
  uint64_t bytes = head.huge ? kHugePageBytes : kSmallPageBytes;
  if (head.node >= 0) {
    node_bound_bytes_[static_cast<size_t>(head.node)] -= kSmallPageBytes;
    contention_->Inject(head.node, now, bytes);
  }
  node_bound_bytes_[static_cast<size_t>(to_node)] += kSmallPageBytes;
  contention_->Inject(to_node, now, bytes);
  head.node = static_cast<int16_t>(to_node);
  uint64_t copy = static_cast<uint64_t>(
      static_cast<double>(bytes) / machine_->mem_ctrl_bytes_per_cycle());
  head.migrating_until =
      now + costs_->page_migration_cycles + std::min<uint64_t>(copy, 150000);
  for (auto& v : head.visits) v = 0;
  ++sys_->page_migrations;
}

bool SimOS::TryCollapseHuge(Region* region, size_t head_idx, uint64_t now) {
  if (head_idx + kSmallPagesPerHuge > region->pages.size()) return false;
  uint64_t head_addr = region->base + head_idx * kSmallPageBytes;
  if ((head_addr & (kHugePageBytes - 1)) != 0) return false;
  PageRec& head = region->pages[head_idx];
  if (head.huge) return false;
  int node = head.node;
  if (node < 0) return false;
  for (int i = 0; i < kSmallPagesPerHuge; ++i) {
    const PageRec& p = region->pages[head_idx + static_cast<size_t>(i)];
    if (!p.resident || p.huge || p.node != node) return false;
    // Replicated members pin the run as 4K pages: collapsing would fold a
    // hot replicated page into a huge run whose head cannot carry the
    // per-4K replica state (and a 2M replica per node is not modelled).
    if (p.replica_mask != 0) return false;
  }
  ++mutation_gen_;
  for (int i = 0; i < kSmallPagesPerHuge; ++i) {
    region->pages[head_idx + static_cast<size_t>(i)].huge = 1;
  }
  contention_->Inject(node, now, kHugePageBytes);
  head.migrating_until = now + costs_->thp_collapse_cycles;
  ++sys_->thp_collapses;
  return true;
}

void SimOS::SplitHuge(Region* region, size_t head_idx, uint64_t now) {
  PageRec& head = region->pages[head_idx];
  NUMALAB_CHECK(head.huge);
  ++mutation_gen_;
  for (int i = 0; i < kSmallPagesPerHuge; ++i) {
    PageRec& p = region->pages[head_idx + static_cast<size_t>(i)];
    p.huge = 0;
    if (i > 0 && p.node != head.node) {
      // Members inherit the run's placement; account pages that were only
      // represented by the head while the run was huge.
      if (p.node >= 0) {
        node_bound_bytes_[static_cast<size_t>(p.node)] -= kSmallPageBytes;
      }
      p.node = head.node;
      node_bound_bytes_[static_cast<size_t>(head.node)] += kSmallPageBytes;
    }
  }
  head.migrating_until =
      std::max(head.migrating_until, now + costs_->thp_split_cycles);
  ++sys_->thp_splits;
}

}  // namespace mem
}  // namespace numalab
