#include "src/mem/sim_os.h"

#include <sys/mman.h>

#include <algorithm>

namespace numalab {
namespace mem {

SimOS::SimOS(const topology::Machine* machine, sim::Engine* engine,
             const CostModel* costs, ContentionModel* contention,
             perf::SystemCounters* sys)
    : machine_(machine),
      engine_(engine),
      costs_(costs),
      contention_(contention),
      sys_(sys),
      slot_region_(kSlabBytes / kSlotBytes, nullptr),
      node_bound_bytes_(static_cast<size_t>(machine->num_nodes()), 0),
      node_cap_(static_cast<size_t>(machine->num_nodes()),
                machine->node_memory_bytes()) {
  void* p = mmap(nullptr, kSlabBytes, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  NUMALAB_CHECK(p != MAP_FAILED);
  slab_ = reinterpret_cast<uint64_t>(p);

  // Linux zonelist per node: all nodes sorted by interconnect distance,
  // nearest first, ties broken by node id (stable sort over the id order).
  zonelist_.resize(static_cast<size_t>(machine->num_nodes()));
  for (int n = 0; n < machine->num_nodes(); ++n) {
    auto& zl = zonelist_[static_cast<size_t>(n)];
    for (int m = 0; m < machine->num_nodes(); ++m) zl.push_back(m);
    std::stable_sort(zl.begin(), zl.end(), [&](int a, int b) {
      return machine->Hops(n, a) < machine->Hops(n, b);
    });
  }
}

void SimOS::SetFaultLab(faultlab::FaultLab* faults) {
  faults_ = faults;
  for (int n = 0; n < machine_->num_nodes(); ++n) {
    node_cap_[static_cast<size_t>(n)] =
        faults != nullptr
            ? faults->NodeCapacityBytes(n, machine_->node_memory_bytes())
            : machine_->node_memory_bytes();
  }
}

SimOS::~SimOS() {
  for (auto& [base, region] : regions_) delete region;
  munmap(reinterpret_cast<void*>(slab_), kSlabBytes);
}

Region* SimOS::Map(uint64_t bytes, bool thp_eligible) {
  Region* region = TryMap(bytes, thp_eligible);
  NUMALAB_CHECK(region != nullptr && "simulated address space exhausted");
  return region;
}

Region* SimOS::TryMap(uint64_t bytes, bool thp_eligible) {
  uint64_t len = (bytes + kSmallPageBytes - 1) & ~(kSmallPageBytes - 1);
  uint64_t nslots = (len + kSlotBytes - 1) / kSlotBytes;

  uint64_t slot;
  auto it = free_slots_.find(nslots);
  if (it != free_slots_.end() && !it->second.empty()) {
    slot = it->second.back();
    it->second.pop_back();
  } else {
    if ((bump_slot_ + nslots) * kSlotBytes > kSlabBytes) {
      return nullptr;  // address space exhausted; caller decides severity
    }
    slot = bump_slot_;
    bump_slot_ += nslots;
  }

  auto* region = new Region();
  region->base = slab_ + slot * kSlotBytes;
  region->len = len;
  region->host = reinterpret_cast<char*>(region->base);
  region->thp_eligible = thp_eligible;
  region->pages.assign(len / kSmallPageBytes, PageRec{});
  for (uint64_t s = slot; s < slot + nslots; ++s) {
    slot_region_[s] = region;
  }

  // Interleave / LocalAlloc / Preferred bind eagerly; FirstTouch binds at
  // fault time (Touch).
  if (policy_ != MemPolicy::kFirstTouch) {
    int local = 0;
    if (engine_->current() != nullptr) {
      local = machine_->NodeOfHwThread(engine_->current()->hw_thread);
    }
    for (auto& p : region->pages) {
      p.node = static_cast<int16_t>(BindWithSpill(ChooseBindNode(local)));
      node_bound_bytes_[static_cast<size_t>(p.node)] += kSmallPageBytes;
    }
  }

  regions_[region->base] = region;
  sys_->pages_mapped += region->pages.size();
  sys_->bytes_mapped += len;
  sys_->bytes_mapped_peak =
      std::max(sys_->bytes_mapped_peak, sys_->bytes_mapped);
  return region;
}

void SimOS::Unmap(Region* region) {
  ++mutation_gen_;
  for (size_t i = 0; i < region->pages.size(); ++i) DropResident(region, i);
  for (auto& p : region->pages) {
    if (p.node >= 0) {
      node_bound_bytes_[static_cast<size_t>(p.node)] -= kSmallPageBytes;
    }
  }
  sys_->bytes_mapped -= region->len;
  regions_.erase(region->base);

  uint64_t slot = (region->base - slab_) / kSlotBytes;
  uint64_t nslots = (region->len + kSlotBytes - 1) / kSlotBytes;
  for (uint64_t s = slot; s < slot + nslots; ++s) slot_region_[s] = nullptr;
  free_slots_[nslots].push_back(slot);

  // Return the host pages so long simulations do not accumulate RSS.
  madvise(region->host, region->len, MADV_DONTNEED);
  delete region;
}

void SimOS::MadviseDontNeed(Region* region, uint64_t offset, uint64_t len,
                            uint64_t now) {
  ++mutation_gen_;
  uint64_t first = (offset + kSmallPageBytes - 1) / kSmallPageBytes;
  uint64_t last = (offset + len) / kSmallPageBytes;  // exclusive
  for (uint64_t i = first; i < last && i < region->pages.size(); ++i) {
    PageRec& p = region->pages[i];
    if (p.huge) SplitHuge(region, region->HugeHead(i), now);
    DropResident(region, i);
    if (p.node >= 0) {
      node_bound_bytes_[static_cast<size_t>(p.node)] -= kSmallPageBytes;
      p.node = -1;
    }
    for (auto& v : p.visits) v = 0;
  }
}

std::pair<Region*, size_t> SimOS::Lookup(uint64_t addr) const {
  NUMALAB_CHECK(addr >= slab_ && addr < slab_ + kSlabBytes);
  Region* r = slot_region_[(addr - slab_) / kSlotBytes];
  NUMALAB_CHECK(r != nullptr && addr >= r->base && addr < r->end());
  return {r, r->PageIndex(addr)};
}

int SimOS::ChooseBindNode(int accessor_node) {
  switch (policy_) {
    case MemPolicy::kFirstTouch:
    case MemPolicy::kLocalAlloc:
      return accessor_node;
    case MemPolicy::kInterleave: {
      int n = interleave_cursor_;
      interleave_cursor_ = (interleave_cursor_ + 1) % machine_->num_nodes();
      return n;
    }
    case MemPolicy::kPreferred:
      // Exhaustion of the preferred node is handled by BindWithSpill's
      // zonelist walk, matching the kernel's MPOL_PREFERRED fallback.
      return preferred_node_;
  }
  return accessor_node;
}

int SimOS::BindWithSpill(int desired, uint64_t bytes) {
  uint64_t now = 0;
  if (sim::VThread* vt = engine_->current()) now = vt->clock;
  bool desired_online =
      faults_ == nullptr || faults_->NodeOnline(desired, now);
  if (desired_online && NodeHasRoom(desired, bytes)) return desired;

  // Walk the desired node's zonelist (nearest-distance order) for an
  // online node with room — the kernel's fallback allocation order.
  for (int n : zonelist_[static_cast<size_t>(desired)]) {
    if (n == desired) continue;
    if (faults_ != nullptr && !faults_->NodeOnline(n, now)) continue;
    if (!NodeHasRoom(n, bytes)) continue;
    if (desired_online) {
      ++sys_->pages_spilled;
    } else {
      ++sys_->offline_redirects;
    }
    return n;
  }

  // Every zone full: bind anyway ("too small to fail" OOM semantics) on
  // the nearest online node, so the simulation degrades instead of dying.
  ++sys_->oom_last_resort_pages;
  if (!desired_online) {
    for (int n : zonelist_[static_cast<size_t>(desired)]) {
      if (n != desired && faults_->NodeOnline(n, now)) return n;
    }
  }
  return desired;
}

void SimOS::AddResident(Region* region, size_t idx) {
  PageRec& p = region->pages[idx];
  if (!p.resident) {
    p.resident = 1;
    resident_bytes_ += kSmallPageBytes;
    resident_peak_ = std::max(resident_peak_, resident_bytes_);
  }
}

void SimOS::DropResident(Region* region, size_t idx) {
  PageRec& p = region->pages[idx];
  if (p.resident) {
    p.resident = 0;
    resident_bytes_ -= kSmallPageBytes;
  }
}

int SimOS::TouchSlow(Region* region, size_t idx, int accessor_node) {
  PageRec& p = region->pages[idx];

  // THP fault path: first touch of a fully untouched 2M-aligned run faults
  // in one huge page — all 512 subpages, bound together, resident at once.
  if (thp_fault_alloc_ && !p.huge && !p.resident && p.node < 0 &&
      region->thp_eligible) {
    size_t head_idx = region->HugeHead(idx);
    uint64_t head_addr = region->base + head_idx * kSmallPageBytes;
    if ((head_addr & (kHugePageBytes - 1)) == 0 &&
        head_idx + kSmallPagesPerHuge <= region->pages.size()) {
      bool pristine = true;
      for (int i = 0; i < kSmallPagesPerHuge; ++i) {
        const PageRec& q = region->pages[head_idx + static_cast<size_t>(i)];
        if (q.resident || q.node >= 0 || q.huge) {
          pristine = false;
          break;
        }
      }
      if (pristine) {
        int node = BindWithSpill(ChooseBindNode(accessor_node),
                                 kHugePageBytes);
        // Bind and charge every subpage, matching the representation of a
        // khugepaged-collapsed run, so capacity enforcement sees the full
        // 2M (not a head-only 4K undercount).
        for (int i = 0; i < kSmallPagesPerHuge; ++i) {
          PageRec& q = region->pages[head_idx + static_cast<size_t>(i)];
          q.huge = 1;
          q.node = static_cast<int16_t>(node);
          node_bound_bytes_[static_cast<size_t>(node)] += kSmallPageBytes;
          AddResident(region, head_idx + static_cast<size_t>(i));
        }
        ++sys_->thp_collapses;
        return node;
      }
    }
  }

  size_t eff = p.huge ? region->HugeHead(idx) : idx;
  PageRec& head = region->pages[eff];
  if (head.node < 0) {
    head.node =
        static_cast<int16_t>(BindWithSpill(ChooseBindNode(accessor_node)));
    node_bound_bytes_[static_cast<size_t>(head.node)] += kSmallPageBytes;
  }
  AddResident(region, idx);
  return head.node;
}

void SimOS::MigratePage(Region* region, size_t idx, int to_node,
                        uint64_t now) {
  size_t eff = region->pages[idx].huge ? region->HugeHead(idx) : idx;
  PageRec& head = region->pages[eff];
  if (head.node == to_node) return;
  if (faults_ != nullptr) {
    // An offline node takes no new pages, and migrate_pages can fail on
    // pinned/busy pages — both leave the page where it is (counted by the
    // draw); the kernel retries via later hinting faults.
    if (!faults_->NodeOnline(to_node, now)) {
      ++sys_->migration_failures_injected;
      return;
    }
    if (faults_->DrawMigrationFailure()) return;
  }
  ++mutation_gen_;
  uint64_t bytes = head.huge ? kHugePageBytes : kSmallPageBytes;
  if (head.node >= 0) {
    node_bound_bytes_[static_cast<size_t>(head.node)] -= kSmallPageBytes;
    contention_->Inject(head.node, now, bytes);
  }
  node_bound_bytes_[static_cast<size_t>(to_node)] += kSmallPageBytes;
  contention_->Inject(to_node, now, bytes);
  head.node = static_cast<int16_t>(to_node);
  uint64_t copy = static_cast<uint64_t>(
      static_cast<double>(bytes) / machine_->mem_ctrl_bytes_per_cycle());
  head.migrating_until =
      now + costs_->page_migration_cycles + std::min<uint64_t>(copy, 150000);
  for (auto& v : head.visits) v = 0;
  ++sys_->page_migrations;
}

bool SimOS::TryCollapseHuge(Region* region, size_t head_idx, uint64_t now) {
  if (head_idx + kSmallPagesPerHuge > region->pages.size()) return false;
  uint64_t head_addr = region->base + head_idx * kSmallPageBytes;
  if ((head_addr & (kHugePageBytes - 1)) != 0) return false;
  PageRec& head = region->pages[head_idx];
  if (head.huge) return false;
  int node = head.node;
  if (node < 0) return false;
  for (int i = 0; i < kSmallPagesPerHuge; ++i) {
    const PageRec& p = region->pages[head_idx + static_cast<size_t>(i)];
    if (!p.resident || p.huge || p.node != node) return false;
  }
  ++mutation_gen_;
  for (int i = 0; i < kSmallPagesPerHuge; ++i) {
    region->pages[head_idx + static_cast<size_t>(i)].huge = 1;
  }
  contention_->Inject(node, now, kHugePageBytes);
  head.migrating_until = now + costs_->thp_collapse_cycles;
  ++sys_->thp_collapses;
  return true;
}

void SimOS::SplitHuge(Region* region, size_t head_idx, uint64_t now) {
  PageRec& head = region->pages[head_idx];
  NUMALAB_CHECK(head.huge);
  ++mutation_gen_;
  for (int i = 0; i < kSmallPagesPerHuge; ++i) {
    PageRec& p = region->pages[head_idx + static_cast<size_t>(i)];
    p.huge = 0;
    if (i > 0 && p.node != head.node) {
      // Members inherit the run's placement; account pages that were only
      // represented by the head while the run was huge.
      if (p.node >= 0) {
        node_bound_bytes_[static_cast<size_t>(p.node)] -= kSmallPageBytes;
      }
      p.node = head.node;
      node_bound_bytes_[static_cast<size_t>(head.node)] += kSmallPageBytes;
    }
  }
  head.migrating_until =
      std::max(head.migrating_until, now + costs_->thp_split_cycles);
  ++sys_->thp_splits;
}

}  // namespace mem
}  // namespace numalab
