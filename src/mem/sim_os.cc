#include "src/mem/sim_os.h"

#include <sys/mman.h>

namespace numalab {
namespace mem {

SimOS::SimOS(const topology::Machine* machine, sim::Engine* engine,
             const CostModel* costs, ContentionModel* contention,
             perf::SystemCounters* sys)
    : machine_(machine),
      engine_(engine),
      costs_(costs),
      contention_(contention),
      sys_(sys),
      slot_region_(kSlabBytes / kSlotBytes, nullptr),
      node_bound_bytes_(static_cast<size_t>(machine->num_nodes()), 0) {
  void* p = mmap(nullptr, kSlabBytes, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  NUMALAB_CHECK(p != MAP_FAILED);
  slab_ = reinterpret_cast<uint64_t>(p);
}

SimOS::~SimOS() {
  for (auto& [base, region] : regions_) delete region;
  munmap(reinterpret_cast<void*>(slab_), kSlabBytes);
}

Region* SimOS::Map(uint64_t bytes, bool thp_eligible) {
  uint64_t len = (bytes + kSmallPageBytes - 1) & ~(kSmallPageBytes - 1);
  uint64_t nslots = (len + kSlotBytes - 1) / kSlotBytes;

  uint64_t slot;
  auto it = free_slots_.find(nslots);
  if (it != free_slots_.end() && !it->second.empty()) {
    slot = it->second.back();
    it->second.pop_back();
  } else {
    slot = bump_slot_;
    bump_slot_ += nslots;
    NUMALAB_CHECK(bump_slot_ * kSlotBytes <= kSlabBytes &&
                  "simulated address space exhausted");
  }

  auto* region = new Region();
  region->base = slab_ + slot * kSlotBytes;
  region->len = len;
  region->host = reinterpret_cast<char*>(region->base);
  region->thp_eligible = thp_eligible;
  region->pages.assign(len / kSmallPageBytes, PageRec{});
  for (uint64_t s = slot; s < slot + nslots; ++s) {
    slot_region_[s] = region;
  }

  // Interleave / LocalAlloc / Preferred bind eagerly; FirstTouch binds at
  // fault time (Touch).
  if (policy_ != MemPolicy::kFirstTouch) {
    int local = 0;
    if (engine_->current() != nullptr) {
      local = machine_->NodeOfHwThread(engine_->current()->hw_thread);
    }
    for (auto& p : region->pages) {
      p.node = static_cast<int16_t>(ChooseBindNode(local));
      node_bound_bytes_[static_cast<size_t>(p.node)] += kSmallPageBytes;
    }
  }

  regions_[region->base] = region;
  sys_->pages_mapped += region->pages.size();
  sys_->bytes_mapped += len;
  sys_->bytes_mapped_peak =
      std::max(sys_->bytes_mapped_peak, sys_->bytes_mapped);
  return region;
}

void SimOS::Unmap(Region* region) {
  ++mutation_gen_;
  for (size_t i = 0; i < region->pages.size(); ++i) DropResident(region, i);
  for (auto& p : region->pages) {
    if (p.node >= 0) {
      node_bound_bytes_[static_cast<size_t>(p.node)] -= kSmallPageBytes;
    }
  }
  sys_->bytes_mapped -= region->len;
  regions_.erase(region->base);

  uint64_t slot = (region->base - slab_) / kSlotBytes;
  uint64_t nslots = (region->len + kSlotBytes - 1) / kSlotBytes;
  for (uint64_t s = slot; s < slot + nslots; ++s) slot_region_[s] = nullptr;
  free_slots_[nslots].push_back(slot);

  // Return the host pages so long simulations do not accumulate RSS.
  madvise(region->host, region->len, MADV_DONTNEED);
  delete region;
}

void SimOS::MadviseDontNeed(Region* region, uint64_t offset, uint64_t len,
                            uint64_t now) {
  ++mutation_gen_;
  uint64_t first = (offset + kSmallPageBytes - 1) / kSmallPageBytes;
  uint64_t last = (offset + len) / kSmallPageBytes;  // exclusive
  for (uint64_t i = first; i < last && i < region->pages.size(); ++i) {
    PageRec& p = region->pages[i];
    if (p.huge) SplitHuge(region, region->HugeHead(i), now);
    DropResident(region, i);
    if (p.node >= 0) {
      node_bound_bytes_[static_cast<size_t>(p.node)] -= kSmallPageBytes;
      p.node = -1;
    }
    for (auto& v : p.visits) v = 0;
  }
}

std::pair<Region*, size_t> SimOS::Lookup(uint64_t addr) const {
  NUMALAB_CHECK(addr >= slab_ && addr < slab_ + kSlabBytes);
  Region* r = slot_region_[(addr - slab_) / kSlotBytes];
  NUMALAB_CHECK(r != nullptr && addr >= r->base && addr < r->end());
  return {r, r->PageIndex(addr)};
}

int SimOS::ChooseBindNode(int accessor_node) {
  switch (policy_) {
    case MemPolicy::kFirstTouch:
    case MemPolicy::kLocalAlloc:
      return accessor_node;
    case MemPolicy::kInterleave: {
      int n = interleave_cursor_;
      interleave_cursor_ = (interleave_cursor_ + 1) % machine_->num_nodes();
      return n;
    }
    case MemPolicy::kPreferred: {
      uint64_t cap = machine_->node_memory_bytes();
      if (node_bound_bytes_[static_cast<size_t>(preferred_node_)] < cap) {
        return preferred_node_;
      }
      // Preferred node exhausted: spill round-robin over the others.
      int n = interleave_cursor_;
      interleave_cursor_ = (interleave_cursor_ + 1) % machine_->num_nodes();
      return n == preferred_node_ ? (n + 1) % machine_->num_nodes() : n;
    }
  }
  return accessor_node;
}

void SimOS::AddResident(Region* region, size_t idx) {
  PageRec& p = region->pages[idx];
  if (!p.resident) {
    p.resident = 1;
    resident_bytes_ += kSmallPageBytes;
    resident_peak_ = std::max(resident_peak_, resident_bytes_);
  }
}

void SimOS::DropResident(Region* region, size_t idx) {
  PageRec& p = region->pages[idx];
  if (p.resident) {
    p.resident = 0;
    resident_bytes_ -= kSmallPageBytes;
  }
}

int SimOS::TouchSlow(Region* region, size_t idx, int accessor_node) {
  PageRec& p = region->pages[idx];

  // THP fault path: first touch of a fully untouched 2M-aligned run faults
  // in one huge page — all 512 subpages, bound together, resident at once.
  if (thp_fault_alloc_ && !p.huge && !p.resident && p.node < 0 &&
      region->thp_eligible) {
    size_t head_idx = region->HugeHead(idx);
    uint64_t head_addr = region->base + head_idx * kSmallPageBytes;
    if ((head_addr & (kHugePageBytes - 1)) == 0 &&
        head_idx + kSmallPagesPerHuge <= region->pages.size()) {
      bool pristine = true;
      for (int i = 0; i < kSmallPagesPerHuge; ++i) {
        const PageRec& q = region->pages[head_idx + static_cast<size_t>(i)];
        if (q.resident || q.node >= 0 || q.huge) {
          pristine = false;
          break;
        }
      }
      if (pristine) {
        int node = ChooseBindNode(accessor_node);
        for (int i = 0; i < kSmallPagesPerHuge; ++i) {
          PageRec& q = region->pages[head_idx + static_cast<size_t>(i)];
          q.huge = 1;
          AddResident(region, head_idx + static_cast<size_t>(i));
        }
        PageRec& head = region->pages[head_idx];
        head.node = static_cast<int16_t>(node);
        node_bound_bytes_[static_cast<size_t>(node)] += kSmallPageBytes;
        ++sys_->thp_collapses;
        return node;
      }
    }
  }

  size_t eff = p.huge ? region->HugeHead(idx) : idx;
  PageRec& head = region->pages[eff];
  if (head.node < 0) {
    head.node = static_cast<int16_t>(ChooseBindNode(accessor_node));
    node_bound_bytes_[static_cast<size_t>(head.node)] += kSmallPageBytes;
  }
  AddResident(region, idx);
  return head.node;
}

void SimOS::MigratePage(Region* region, size_t idx, int to_node,
                        uint64_t now) {
  size_t eff = region->pages[idx].huge ? region->HugeHead(idx) : idx;
  PageRec& head = region->pages[eff];
  if (head.node == to_node) return;
  ++mutation_gen_;
  uint64_t bytes = head.huge ? kHugePageBytes : kSmallPageBytes;
  if (head.node >= 0) {
    node_bound_bytes_[static_cast<size_t>(head.node)] -= kSmallPageBytes;
    contention_->Inject(head.node, now, bytes);
  }
  node_bound_bytes_[static_cast<size_t>(to_node)] += kSmallPageBytes;
  contention_->Inject(to_node, now, bytes);
  head.node = static_cast<int16_t>(to_node);
  uint64_t copy = static_cast<uint64_t>(
      static_cast<double>(bytes) / machine_->mem_ctrl_bytes_per_cycle());
  head.migrating_until =
      now + costs_->page_migration_cycles + std::min<uint64_t>(copy, 150000);
  for (auto& v : head.visits) v = 0;
  ++sys_->page_migrations;
}

bool SimOS::TryCollapseHuge(Region* region, size_t head_idx, uint64_t now) {
  if (head_idx + kSmallPagesPerHuge > region->pages.size()) return false;
  uint64_t head_addr = region->base + head_idx * kSmallPageBytes;
  if ((head_addr & (kHugePageBytes - 1)) != 0) return false;
  PageRec& head = region->pages[head_idx];
  if (head.huge) return false;
  int node = head.node;
  if (node < 0) return false;
  for (int i = 0; i < kSmallPagesPerHuge; ++i) {
    const PageRec& p = region->pages[head_idx + static_cast<size_t>(i)];
    if (!p.resident || p.huge || p.node != node) return false;
  }
  ++mutation_gen_;
  for (int i = 0; i < kSmallPagesPerHuge; ++i) {
    region->pages[head_idx + static_cast<size_t>(i)].huge = 1;
  }
  contention_->Inject(node, now, kHugePageBytes);
  head.migrating_until = now + costs_->thp_collapse_cycles;
  ++sys_->thp_collapses;
  return true;
}

void SimOS::SplitHuge(Region* region, size_t head_idx, uint64_t now) {
  PageRec& head = region->pages[head_idx];
  NUMALAB_CHECK(head.huge);
  ++mutation_gen_;
  for (int i = 0; i < kSmallPagesPerHuge; ++i) {
    PageRec& p = region->pages[head_idx + static_cast<size_t>(i)];
    p.huge = 0;
    if (i > 0 && p.node != head.node) {
      // Members inherit the run's placement; account pages that were only
      // represented by the head while the run was huge.
      if (p.node >= 0) {
        node_bound_bytes_[static_cast<size_t>(p.node)] -= kSmallPageBytes;
      }
      p.node = head.node;
      node_bound_bytes_[static_cast<size_t>(head.node)] += kSmallPageBytes;
    }
  }
  head.migrating_until =
      std::max(head.migrating_until, now + costs_->thp_split_cycles);
  ++sys_->thp_splits;
}

}  // namespace mem
}  // namespace numalab
