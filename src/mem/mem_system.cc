#include "src/mem/mem_system.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "src/sanity/race_detector.h"

namespace numalab {
namespace mem {

namespace {
// Sample every Nth DRAM access as a NUMA-hinting fault while AutoNUMA scans.
constexpr uint32_t kHintingFaultStride = 64;
// Migrate a page once this many sampled faults agree on a remote node.
constexpr int kMigrateThreshold = 4;
// A migrated page is not re-migrated within this window (kernel backoff).
constexpr uint64_t kMigrationCooldownCycles = 600'000;
// Kernel migration rate limit (~256 MB/s): pages per 1M-cycle epoch.
constexpr uint64_t kMigrationsPerEpoch = 96;
constexpr uint64_t kRateEpochCycles = 1'000'000;

// VThread::Charge truncates once per call, so n calls with the same argument
// advance the clock by exactly n * Scaled(x). The span path leans on that to
// replace runs of identical charges with one multiplication.
inline uint64_t Scaled(const sim::VThread* vt, uint64_t cycles) {
  return static_cast<uint64_t>(static_cast<double>(cycles) * vt->cycle_scale);
}

// Equivalent to n VThread::Charge calls whose scaled cost is `scaled`.
inline void ChargeScaledN(sim::VThread* vt, uint64_t scaled, uint64_t n) {
  uint64_t c = scaled * n;
  vt->clock += c;
  vt->counters.cycles += c;
}
}  // namespace

MemSystem::MemSystem(const topology::Machine* machine, sim::Engine* engine,
                     CostModel costs, perf::SystemCounters* sys)
    : machine_(machine),
      engine_(engine),
      costs_(costs),
      sys_(sys),
      contention_(*machine),
      os_(std::make_unique<SimOS>(machine, engine, &costs_, &contention_,
                                  sys)),
      caches_(*machine) {
  tlbs_.reserve(static_cast<size_t>(machine->num_cores()));
  for (int c = 0; c < machine->num_cores(); ++c) tlbs_.emplace_back(*machine);
  for (int s = 0; s < machine->num_nodes(); ++s) {
    for (int d = 0; d < machine->num_nodes(); ++d) {
      lat_table_[static_cast<size_t>(s)][static_cast<size_t>(d)] =
          static_cast<uint64_t>(
              static_cast<double>(machine->dram_latency_cycles()) *
              machine->LatencyFactor(s, d) / costs_.mlp);
    }
  }
}

void MemSystem::ApplyLinkDegradation(const std::vector<int>& links,
                                     double scale) {
  if (links.empty() || scale == 1.0) return;
  for (int s = 0; s < machine_->num_nodes(); ++s) {
    for (int d = 0; d < machine_->num_nodes(); ++d) {
      if (s == d) continue;
      bool crosses = false;
      for (int hop : machine_->Route(s, d)) {
        for (int bad : links) {
          if (hop == bad) {
            crosses = true;
            break;
          }
        }
        if (crosses) break;
      }
      if (crosses) {
        auto& cell = lat_table_[static_cast<size_t>(s)][static_cast<size_t>(d)];
        cell = static_cast<uint64_t>(static_cast<double>(cell) * scale);
      }
    }
  }
}

void MemSystem::SetRaceDetector(sanity::RaceDetector* rd) {
  static_assert(sanity::kShadowLineBytes == kCacheLineBytes,
                "shadow lines must match the modelled cache line");
  race_ = rd;
  if (rd != nullptr) {
    rd->SetAddrResolver(
        [this](uint64_t sim_addr) { return DescribeSimAddr(sim_addr); });
  }
}

std::string MemSystem::DescribeSimAddr(uint64_t sim_addr) const {
  // Reports can name unmapped or non-slab addresses; resolve by hand
  // instead of SimOS::Lookup, which CHECK-fails on wild addresses.
  uint64_t host = os_->FromSimAddr(sim_addr);
  const auto& regions = os_->regions();
  auto it = regions.upper_bound(host);
  if (it != regions.begin()) --it;
  if (it == regions.end() || host < it->second->base ||
      host >= it->second->end()) {
    return "outside any mapped simulated region";
  }
  const Region* r = it->second;
  size_t idx = r->PageIndex(host);
  const PageRec& p = r->pages[idx];
  size_t eff = p.huge ? r->HugeHead(idx) : idx;
  const PageRec& head = r->pages[eff];
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "node %d, %spage %zu of region sim:0x%" PRIx64 " (+%" PRIu64
                " bytes)%s",
                static_cast<int>(head.node), p.huge ? "huge-" : "", idx,
                os_->ToSimAddr(r->base), r->len,
                head.resident ? "" : ", not yet resident");
  return buf;
}

void MemSystem::OnThreadMigrated(int new_core) {
  // Cold TLB on arrival; the private cache keeps whatever the previous
  // occupant left, which for the migrated thread is equally cold.
  tlbs_[static_cast<size_t>(new_core)].Flush();
  ++trans_gen_;
}

void MemSystem::ShootdownTlb(uint64_t addr) {
  uint64_t rel = os_->ToSimAddr(addr);
  for (auto& tlb : tlbs_) tlb.Invalidate(rel);
  ++trans_gen_;
}

inline void MemSystem::EnsureThreadState(int vthread_id) {
  size_t need = static_cast<size_t>(vthread_id) + 1;
  if (node_traffic_.size() < need) {
    node_traffic_.resize(need, {});
    fault_stride_.resize(need, 0);
    fault_budget_.resize(need, wave_budget_);
  }
}

const std::array<uint64_t, kMaxNumaNodes>& MemSystem::NodeTraffic(
    int vthread_id) {
  EnsureThreadState(vthread_id);
  return node_traffic_[static_cast<size_t>(vthread_id)];
}

void MemSystem::ResetNodeTraffic(int vthread_id) {
  EnsureThreadState(vthread_id);
  node_traffic_[static_cast<size_t>(vthread_id)].fill(0);
}

MemSystem::SpanCursor& MemSystem::CursorFor(int vthread_id) {
  if (static_cast<size_t>(vthread_id) >= cursors_.size()) {
    cursors_.resize(static_cast<size_t>(vthread_id) + 1);
  }
  return cursors_[static_cast<size_t>(vthread_id)];
}

Region* MemSystem::ResolveRegion(SpanCursor& cursor, uint64_t host_addr) {
  if (cursor.trans_gen == trans_gen_ &&
      cursor.os_gen == os_->mutation_generation() &&
      host_addr >= cursor.region_base && host_addr < cursor.region_end) {
    return cursor.region;
  }
  auto [r, idx] = os_->Lookup(host_addr);
  (void)idx;
  cursor.region = r;
  cursor.region_base = r->base;
  cursor.region_end = r->end();
  cursor.trans_gen = trans_gen_;
  cursor.os_gen = os_->mutation_generation();
  return r;
}

inline void MemSystem::SampleAutoNuma(sim::VThread* vt, Region* region,
                                      size_t idx, int accessor_node,
                                      int page_node, bool write) {
  size_t tid = static_cast<size_t>(vt->id);
  EnsureThreadState(vt->id);
  node_traffic_[tid][static_cast<size_t>(page_node)]++;
  if (fault_budget_[tid] == 0) return;  // wave exhausted until next scan
  if (++fault_stride_[tid] < kHintingFaultStride) return;
  fault_stride_[tid] = 0;
  --fault_budget_[tid];
  SampleAutoNumaFault(vt, region, idx, accessor_node, page_node, write);
}

// Per-line replica routing. Reads the live replica_mask on every call, so
// the scalar and span paths stay bit-identical without extra memo
// invalidation: a replica created or invalidated mid-span changes routing
// for subsequent lines in both implementations at the same point.
inline int MemSystem::RouteReplica(sim::VThread* vt, Region* region,
                                   size_t idx, int my_node, int page_node,
                                   bool write) {
  PageRec& p = region->pages[idx];
  if (p.replica_mask == 0) return page_node;
  if (!write) {
    if ((p.replica_mask >> my_node) & 1) {
      ++sys_->replica_reads;
      return my_node;  // served by the local copy: local DRAM, local latency
    }
    return page_node;
  }
  // A store hit a replicated page: every copy is stale. Invalidate them
  // all and charge the writer one shootdown round per copy (IPI + remote
  // TLB flush), the classic write-amplification cost of replication.
  ++sys_->replica_writes;
  ++sys_->replica_invalidations;
  // Feed the write into the page's read/write sample directly. Hinting
  // faults only see every 64th line, and a periodic access pattern can
  // alias with that stride so sampled faults never land on a store — the
  // gate would then re-replicate a ping-ponging page forever. An
  // invalidation is an *observed* write, so it always counts.
  if (p.writes < 255) ++p.writes;
  uint64_t copies = static_cast<uint64_t>(__builtin_popcount(p.replica_mask));
  os_->DropPageReplicas(region, idx);
  vt->Charge(placement_cfg_.replica_shootdown_cycles * copies);
  return page_node;
}

void MemSystem::SampleAutoNumaFault(sim::VThread* vt, Region* region,
                                    size_t idx, int accessor_node,
                                    int page_node, bool write) {
  (void)page_node;  // consumed by the inline prefix's traffic count
  // NUMA-hinting fault: trap into the kernel and account the access.
  vt->Charge(costs_.hinting_fault_cycles);
  ++vt->counters.hinting_faults;

  size_t eff = region->pages[idx].huge ? region->HugeHead(idx) : idx;
  PageRec& head = region->pages[eff];
  auto& v = head.visits[static_cast<size_t>(accessor_node)];
  if (v < 255) ++v;

  if (placement_) {
    // Lazy wave decay: halve heat and the read/write samples once per
    // missed scan wave, so "hot" means a sustained access *rate*, not a
    // lifetime count. Touched pages pay one subtract + shifts; idle pages
    // pay nothing until their next fault.
    uint16_t wave = static_cast<uint16_t>(wave_epoch_);
    if (head.heat_wave != wave) {
      uint16_t age = static_cast<uint16_t>(wave - head.heat_wave);
      if (age >= 8) {
        head.heat = 0;
        head.reads = 0;
        head.writes = 0;
      } else {
        head.heat = static_cast<uint16_t>(head.heat >> age);
        head.reads = static_cast<uint8_t>(head.reads >> age);
        head.writes = static_cast<uint8_t>(head.writes >> age);
      }
      head.heat_wave = wave;
    }
    head.heat = head.heat >= 0xFFFF - 16
                    ? 0xFFFF
                    : static_cast<uint16_t>(head.heat + 16);
    uint8_t& rw = write ? head.writes : head.reads;
    if (rw < 255) ++rw;

    // Hot-page replication: a read-mostly page sampled repeatedly from a
    // remote node gains a local copy there when the modeled remote-access
    // savings over the observed sample window exceed the modeled copy
    // cost. Each visit stands for ~kHintingFaultStride DRAM lines.
    if (placement_cfg_.replicate && !write && !head.huge &&
        accessor_node != head.node && head.node >= 0 &&
        !((head.replica_mask >> accessor_node) & 1) &&
        head.heat >= placement_cfg_.min_heat &&
        v >= placement_cfg_.replicate_threshold &&
        head.reads >= placement_cfg_.read_write_ratio *
                          std::max<uint32_t>(head.writes, 1)) {
      int64_t gain_per_line =
          static_cast<int64_t>(DramLatency(accessor_node, head.node)) -
          static_cast<int64_t>(DramLatency(accessor_node, accessor_node));
      int64_t benefit = static_cast<int64_t>(v) * kHintingFaultStride *
                        gain_per_line;
      uint64_t copy = static_cast<uint64_t>(
          static_cast<double>(kSmallPageBytes) /
          machine_->mem_ctrl_bytes_per_cycle());
      if (benefit > static_cast<int64_t>(costs_.page_migration_cycles + copy) &&
          os_->AddReplica(region, eff, accessor_node)) {
        // The faulting access waits for its copy, like a migrating page.
        vt->Charge(costs_.page_migration_cycles + copy);
      }
    }
  }

  // Kernel promotion rule (cost-oblivious, like upstream AutoNUMA): once a
  // remote node has sampled enough accesses and strictly dominates, move
  // the page there — no matter how shared the page is. The kernel does
  // back off per page and rate-limit globally, which keeps the damage to
  // "significantly detrimental" rather than "unbounded". Under placement's
  // cost_aware gate the move must additionally pay for itself across the
  // whole observed sample window (and replicated pages stay put: their
  // readers are already local).
  uint64_t epoch = vt->clock / kRateEpochCycles;
  if (epoch != migrate_epoch_) {
    migrate_epoch_ = epoch;
    migrations_this_epoch_ = 0;
  }
  if (accessor_node != head.node &&
      head.visits[static_cast<size_t>(accessor_node)] >= kMigrateThreshold &&
      migrations_this_epoch_ < kMigrationsPerEpoch &&
      vt->clock > head.migrating_until + kMigrationCooldownCycles) {
    int best = accessor_node;
    for (int n = 0; n < machine_->num_nodes(); ++n) {
      if (head.visits[static_cast<size_t>(n)] >
          head.visits[static_cast<size_t>(best)]) {
        best = n;
      }
    }
    if (best != head.node) {
      bool do_migrate = true;
      if (placement_ && placement_cfg_.cost_aware) {
        if (head.replica_mask != 0) {
          do_migrate = false;  // replicas already serve the remote readers
        } else {
          // Net savings of homing the page at `best`, summed over every
          // node's observed samples (a node nearer to the current home
          // than to `best` contributes negatively — shared pages veto
          // themselves).
          int64_t savings = 0;
          for (int n = 0; n < machine_->num_nodes(); ++n) {
            int64_t delta =
                static_cast<int64_t>(DramLatency(n, head.node)) -
                static_cast<int64_t>(DramLatency(n, best));
            savings += static_cast<int64_t>(
                           head.visits[static_cast<size_t>(n)]) *
                       kHintingFaultStride * delta;
          }
          uint64_t bytes = head.huge ? kHugePageBytes : kSmallPageBytes;
          uint64_t copy = static_cast<uint64_t>(
              static_cast<double>(bytes) /
              machine_->mem_ctrl_bytes_per_cycle());
          do_migrate =
              savings >
              static_cast<int64_t>(
                  std::max<uint32_t>(placement_cfg_.migrate_hysteresis, 1) *
                  (costs_.page_migration_cycles + copy));
        }
        if (!do_migrate) ++sys_->migrations_vetoed;
      }
      if (do_migrate) {
        uint64_t addr = region->base + eff * kSmallPageBytes;
        os_->MigratePage(region, eff, best, vt->clock);
        ShootdownTlb(addr);
        ++migrations_this_epoch_;
      }
    }
  }
}

// Reference implementation: one full TLB -> cache -> DRAM walk per logical
// access. The span path below must match this bit-for-bit; do not "improve"
// one without the other (tests/span_parity_test.cc holds them together).
void MemSystem::AccessScalar(sim::VThread* vt, const void* addr_p,
                             uint64_t bytes, bool write) {
  // Reads and writes are charged identically (no WB model); `write` only
  // matters to placement (replica routing + read/write sampling).
  if (bytes == 0) return;
  uint64_t addr = reinterpret_cast<uint64_t>(addr_p);
  // All hashing below uses slab-relative addresses so runs replay
  // identically regardless of where the host placed the slab.
  uint64_t rel = os_->ToSimAddr(addr);
  int core = machine_->CoreOfHwThread(vt->hw_thread);
  int my_node = machine_->NodeOfHwThread(vt->hw_thread);

  ++vt->counters.mem_accesses;
  vt->Charge(costs_.base_access_cycles);

  // TLB: one probe per access (accesses rarely straddle pages; a straddle
  // costs one extra probe below through per-line page resolution).
  Region* region = nullptr;
  size_t page_idx = 0;
  bool have_page = false;
  if (costs_.model_tlb) {
    Tlb& tlb = tlbs_[static_cast<size_t>(core)];
    if (tlb.Lookup(rel)) {
      ++vt->counters.tlb_hits;
    } else {
      ++vt->counters.tlb_misses;
      vt->Charge(costs_.page_walk_cycles);
      auto [r, i] = os_->Lookup(addr);
      region = r;
      page_idx = i;
      have_page = true;
      os_->Touch(region, page_idx, my_node);
      tlb.Insert(rel, region->pages[page_idx].huge);
    }
  }

  uint64_t first_line = rel / kCacheLineBytes;
  uint64_t last_line = (rel + bytes - 1) / kCacheLineBytes;
  for (uint64_t line = first_line; line <= last_line; ++line) {
    if (costs_.model_caches) {
      LineCache& priv = caches_.Private(core);
      if (priv.Probe(line)) {
        ++vt->counters.private_hits;
        vt->Charge(costs_.private_hit_cycles);
        continue;
      }
      LineCache& llc = caches_.Llc(my_node);
      if (llc.Probe(line)) {
        ++vt->counters.llc_hits;
        vt->Charge(costs_.llc_hit_cycles);
        priv.Insert(line);
        continue;
      }
    }

    // DRAM access.
    uint64_t line_host = line * kCacheLineBytes + (addr - rel);
    uint64_t probe_addr = line_host >= addr ? line_host : addr;
    if (!have_page || probe_addr < region->base ||
        probe_addr >= region->end()) {
      auto [r, i] = os_->Lookup(probe_addr);
      region = r;
      page_idx = i;
      have_page = true;
    } else {
      page_idx = region->PageIndex(probe_addr);
    }
    int page_node = os_->Touch(region, page_idx, my_node);
    if (placement_) {
      page_node = RouteReplica(vt, region, page_idx, my_node, page_node,
                               write);
    }

    // Stall behind an in-flight kernel copy (migration / THP collapse).
    size_t eff = region->pages[page_idx].huge ? region->HugeHead(page_idx)
                                              : page_idx;
    uint64_t busy_until = region->pages[eff].migrating_until;
    if (busy_until > vt->clock) {
      vt->Charge(std::min<uint64_t>(busy_until - vt->clock, 20000));
    }

    ++vt->counters.llc_misses;
    if (page_node == my_node) {
      ++vt->counters.local_dram;
    } else {
      ++vt->counters.remote_dram;
    }

    uint64_t lat = DramLatency(my_node, page_node);
    uint64_t delay = 0;
    if (costs_.model_contention) {
      delay = contention_.Charge(*machine_, my_node, page_node, vt->clock,
                                 kCacheLineBytes,
                                 costs_.max_queue_delay_cycles);
      vt->counters.queue_delay_cycles += delay;
    }
    vt->Charge(lat + delay);

    if (autonuma_) {
      SampleAutoNuma(vt, region, page_idx, my_node, page_node, write);
    }

    if (costs_.model_caches) {
      caches_.Llc(my_node).Insert(line);
      caches_.Private(core).Insert(line);
    }
  }
}

// Batched engine behind Access/AccessSpan. Bit-identical to running
// AccessScalar once per stride-sized element over [addr, addr+bytes); every
// shortcut below is justified by an invariant that holds for the whole
// (synchronous, event-free) span:
//  - charges: VThread::Charge truncates per call, so runs of identical
//    charges collapse to one multiplication (ChargeScaledN);
//  - TLB: a probed-or-inserted translation cannot be evicted mid-span
//    except by our own walk inserts (which replace the memo) or a shootdown
//    (which bumps trans_gen_), so later elements on the same page are hits;
//  - private cache: the most recently processed line is resident by
//    construction (every path ends with it probed or inserted);
//  - pages: SimOS::Touch is idempotent once a page is resident and bound,
//    and every 4K member of a huge run is resident by construction, so one
//    Touch per memoized page window stands in for one per line;
//  - contention: a ResourceQueue's delay depends only on the previous
//    epoch's bytes, so it is constant for a fixed (src,dst) route within an
//    epoch, and same-epoch bookings commute (ResourceQueue::Book) — they
//    are flushed in one call per run before anything can roll the epoch;
//  - AutoNUMA: sampling can migrate the page under our feet, so when it is
//    enabled every DRAM line books contention for real and the page/TLB
//    memos are dropped whenever a sample bumps a generation counter.
void MemSystem::SpanFast(sim::VThread* vt, uint64_t addr, uint64_t bytes,
                         uint64_t stride, bool write) {
  // Reads and writes are charged identically (no WB model); `write` only
  // matters to placement (replica routing + read/write sampling).
  const uint64_t rel0 = os_->ToSimAddr(addr);
  const uint64_t slab = addr - rel0;
  const int core = machine_->CoreOfHwThread(vt->hw_thread);
  const int my_node = machine_->NodeOfHwThread(vt->hw_thread);
  Tlb& tlb = tlbs_[static_cast<size_t>(core)];
  SpanCursor& cursor = CursorFor(vt->id);

  const uint64_t s_base = Scaled(vt, costs_.base_access_cycles);
  const uint64_t s_priv = Scaled(vt, costs_.private_hit_cycles);

  // Within-span memos (all conservatively droppable; dropping one only
  // falls back to the exact slow operation it elides).
  uint64_t trans_snap = trans_gen_;
  uint64_t os_snap = os_->mutation_generation();
  // Translation known present in this core's TLB for rel in [tlb_lo, tlb_hi).
  bool tlb_valid = false;
  uint64_t tlb_lo = 0, tlb_hi = 0;
  // Line most recently processed — resident in the private cache.
  bool line_valid = false;
  uint64_t memo_line = 0;
  // Resolved page window (host addresses): one 4K page or one 2M huge run.
  bool page_valid = false;
  uint64_t page_lo = 0, page_hi = 0;
  Region* page_region = nullptr;
  int page_node = 0;
  uint64_t page_busy = 0;
  // DRAM charge memo for (dram_node, dram_epoch): queueing delay and the
  // scaled per-line charge, plus deferred same-epoch bookings.
  bool dram_valid = false;
  int dram_node = -1;
  uint64_t dram_epoch = 0;
  uint64_t dram_delay = 0;
  uint64_t s_line = 0;
  uint64_t pending_bytes = 0;
  uint64_t pending_now = 0;

  auto flush_pending = [&]() {
    if (pending_bytes != 0) {
      contention_.Book(*machine_, my_node, dram_node, pending_now,
                       pending_bytes);
      pending_bytes = 0;
    }
  };

  uint64_t off = 0;
  while (off < bytes) {
    const uint64_t esz = std::min(stride, bytes - off);
    const uint64_t erel = rel0 + off;
    const uint64_t eaddr = addr + off;

    // Bulk path: whole elements inside the known-resident line, with the
    // translation known present. Each such element costs exactly
    // Charge(base) + tlb hit + Charge(private_hit) on the scalar path.
    if (costs_.model_caches && line_valid && erel / kCacheLineBytes == memo_line &&
        (!costs_.model_tlb ||
         (tlb_valid && erel >= tlb_lo && erel < tlb_hi))) {
      const uint64_t line_end = (memo_line + 1) * kCacheLineBytes;
      if (erel + esz <= line_end) {
        uint64_t n = 1;
        if (esz == stride) {
          uint64_t by_line = (line_end - erel) / stride;
          uint64_t by_span = (bytes - off) / stride;
          n = std::max<uint64_t>(1, std::min(by_line, by_span));
        }
        vt->counters.mem_accesses += n;
        if (costs_.model_tlb) vt->counters.tlb_hits += n;
        vt->counters.private_hits += n;
        ChargeScaledN(vt, s_base + s_priv, n);
        off += n * stride;
        continue;
      }
    }

    ++vt->counters.mem_accesses;
    ChargeScaledN(vt, s_base, 1);

    if (costs_.model_tlb) {
      if (tlb_valid && erel >= tlb_lo && erel < tlb_hi) {
        ++vt->counters.tlb_hits;  // probe elided: entry provably present
      } else if (tlb.Lookup(erel)) {
        ++vt->counters.tlb_hits;
        // Whatever entry hit covers at least the 4K page around erel.
        tlb_lo = erel & ~(kSmallPageBytes - 1);
        tlb_hi = tlb_lo + kSmallPageBytes;
        tlb_valid = true;
      } else {
        ++vt->counters.tlb_misses;
        vt->Charge(costs_.page_walk_cycles);
        Region* r = ResolveRegion(cursor, eaddr);
        size_t pidx = r->PageIndex(eaddr);
        os_->Touch(r, pidx, my_node);
        tlb.Insert(erel, r->pages[pidx].huge);
        tlb_lo = erel & ~(kSmallPageBytes - 1);
        tlb_hi = tlb_lo + kSmallPageBytes;
        tlb_valid = true;
      }
    }

    const uint64_t first_line = erel / kCacheLineBytes;
    const uint64_t last_line = (erel + esz - 1) / kCacheLineBytes;
    for (uint64_t line = first_line; line <= last_line; ++line) {
      if (costs_.model_caches) {
        if (line_valid && line == memo_line) {
          ++vt->counters.private_hits;
          ChargeScaledN(vt, s_priv, 1);
          continue;
        }
        LineCache& priv = caches_.Private(core);
        if (priv.Probe(line)) {
          ++vt->counters.private_hits;
          ChargeScaledN(vt, s_priv, 1);
          line_valid = true;
          memo_line = line;
          continue;
        }
        LineCache& llc = caches_.Llc(my_node);
        if (llc.Probe(line)) {
          ++vt->counters.llc_hits;
          vt->Charge(costs_.llc_hit_cycles);
          priv.Insert(line);
          line_valid = true;
          memo_line = line;
          continue;
        }
      }

      // DRAM access.
      uint64_t line_host = line * kCacheLineBytes + slab;
      uint64_t probe_addr = line_host >= eaddr ? line_host : eaddr;
      Region* r;
      size_t pidx = 0;
      int pnode;
      uint64_t busy;
      if (page_valid && probe_addr >= page_lo && probe_addr < page_hi) {
        r = page_region;
        pnode = page_node;
        busy = page_busy;
        if (autonuma_ || placement_) pidx = r->PageIndex(probe_addr);
      } else {
        r = ResolveRegion(cursor, probe_addr);
        pidx = r->PageIndex(probe_addr);
        pnode = os_->Touch(r, pidx, my_node);
        bool huge = r->pages[pidx].huge;
        size_t eff = huge ? r->HugeHead(pidx) : pidx;
        busy = r->pages[eff].migrating_until;
        page_region = r;
        page_lo = r->base + eff * kSmallPageBytes;
        page_hi = page_lo + (huge ? kHugePageBytes : kSmallPageBytes);
        page_node = pnode;  // memo keeps the home node; routing is per line
        page_busy = busy;
        page_valid = true;
      }
      if (placement_) {
        pnode = RouteReplica(vt, r, pidx, my_node, pnode, write);
      }

      // Stall behind an in-flight kernel copy (migration / THP collapse).
      if (busy > vt->clock) {
        vt->Charge(std::min<uint64_t>(busy - vt->clock, 20000));
      }

      ++vt->counters.llc_misses;
      if (pnode == my_node) {
        ++vt->counters.local_dram;
      } else {
        ++vt->counters.remote_dram;
      }

      const uint64_t now = vt->clock;
      const uint64_t epoch = now / ResourceQueue::kEpochCycles;
      if (!dram_valid || pnode != dram_node || epoch != dram_epoch) {
        flush_pending();  // books at pending_now, still inside its epoch
        uint64_t delay = 0;
        if (costs_.model_contention) {
          delay = contention_.Charge(*machine_, my_node, pnode, now,
                                     kCacheLineBytes,
                                     costs_.max_queue_delay_cycles);
        }
        uint64_t lat = DramLatency(my_node, pnode);
        dram_delay = delay;
        s_line = Scaled(vt, lat + delay);
        dram_node = pnode;
        dram_epoch = epoch;
        dram_valid = true;
      } else if (costs_.model_contention) {
        if (autonuma_ || placement_) {
          // Sampling (and replica shootdown charges) may roll the epoch
          // mid-line, so never defer bookings while either is on.
          contention_.Book(*machine_, my_node, pnode, now, kCacheLineBytes);
        } else {
          pending_bytes += kCacheLineBytes;
          pending_now = now;
        }
      }
      if (costs_.model_contention) {
        vt->counters.queue_delay_cycles += dram_delay;
      }
      ChargeScaledN(vt, s_line, 1);

      if (autonuma_) {
        SampleAutoNuma(vt, r, pidx, my_node, pnode, write);
        if (trans_gen_ != trans_snap ||
            os_->mutation_generation() != os_snap) {
          // The sample migrated a page / shot down TLBs: every cached
          // translation is suspect.
          trans_snap = trans_gen_;
          os_snap = os_->mutation_generation();
          tlb_valid = false;
          page_valid = false;
          dram_valid = false;
        }
      }

      if (costs_.model_caches) {
        caches_.Llc(my_node).Insert(line);
        caches_.Private(core).Insert(line);
        line_valid = true;
        memo_line = line;
      }
    }

    off += stride;
  }
  flush_pending();
}

void MemSystem::Access(sim::VThread* vt, const void* addr, uint64_t bytes,
                       bool write) {
  if (bytes == 0) return;
  if (race_ != nullptr) {
    race_->OnAccess(vt->id, os_->ToSimAddr(reinterpret_cast<uint64_t>(addr)),
                    bytes, write, vt->clock);
  }
  // Single-line accesses (the per-record common case) are cheaper through
  // the scalar path — the batched engine's memo setup only pays for itself
  // once a span covers several cache lines. Both paths charge identically
  // (see span_parity_test), so this is purely a host-speed dispatch.
  uint64_t a = reinterpret_cast<uint64_t>(addr);
  uint64_t lines = (a + bytes - 1) / kCacheLineBytes - a / kCacheLineBytes;
  if (scalar_reference_ || lines < 3) {
    AccessScalar(vt, addr, bytes, write);
    return;
  }
  SpanFast(vt, a, bytes, bytes, write);
}

void MemSystem::AccessSpan(sim::VThread* vt, const void* addr, uint64_t bytes,
                           uint64_t stride, bool write) {
  if (bytes == 0) return;
  if (stride == 0 || stride > bytes) stride = bytes;
  if (race_ != nullptr) {
    // A span's elements tile [addr, addr + bytes) exactly, so one range
    // check covers every element of the batched loop.
    race_->OnAccess(vt->id, os_->ToSimAddr(reinterpret_cast<uint64_t>(addr)),
                    bytes, write, vt->clock);
  }
  uint64_t base = reinterpret_cast<uint64_t>(addr);
  uint64_t lines =
      (base + bytes - 1) / kCacheLineBytes - base / kCacheLineBytes;
  if (scalar_reference_ || (lines < 3 && stride == bytes)) {
    for (uint64_t off = 0; off < bytes; off += stride) {
      AccessScalar(vt, reinterpret_cast<const void*>(base + off),
                   std::min(stride, bytes - off), write);
    }
    return;
  }
  SpanFast(vt, base, bytes, stride, write);
}

}  // namespace mem
}  // namespace numalab
