#include "src/mem/mem_system.h"

namespace numalab {
namespace mem {

namespace {
// Sample every Nth DRAM access as a NUMA-hinting fault while AutoNUMA scans.
constexpr uint32_t kHintingFaultStride = 64;
// Migrate a page once this many sampled faults agree on a remote node.
constexpr int kMigrateThreshold = 4;
// A migrated page is not re-migrated within this window (kernel backoff).
constexpr uint64_t kMigrationCooldownCycles = 600'000;
// Kernel migration rate limit (~256 MB/s): pages per 1M-cycle epoch.
constexpr uint64_t kMigrationsPerEpoch = 96;
constexpr uint64_t kRateEpochCycles = 1'000'000;
}  // namespace

MemSystem::MemSystem(const topology::Machine* machine, sim::Engine* engine,
                     CostModel costs, perf::SystemCounters* sys)
    : machine_(machine),
      engine_(engine),
      costs_(costs),
      sys_(sys),
      contention_(*machine),
      os_(std::make_unique<SimOS>(machine, engine, &costs_, &contention_,
                                  sys)),
      caches_(*machine) {
  tlbs_.reserve(static_cast<size_t>(machine->num_cores()));
  for (int c = 0; c < machine->num_cores(); ++c) tlbs_.emplace_back(*machine);
}

void MemSystem::OnThreadMigrated(int new_core) {
  // Cold TLB on arrival; the private cache keeps whatever the previous
  // occupant left, which for the migrated thread is equally cold.
  tlbs_[static_cast<size_t>(new_core)].Flush();
}

void MemSystem::ShootdownTlb(uint64_t addr) {
  uint64_t rel = os_->ToSimAddr(addr);
  for (auto& tlb : tlbs_) tlb.Invalidate(rel);
}

const std::array<uint64_t, kMaxNumaNodes>& MemSystem::NodeTraffic(
    int vthread_id) {
  if (static_cast<size_t>(vthread_id) >= node_traffic_.size()) {
    node_traffic_.resize(static_cast<size_t>(vthread_id) + 1, {});
    fault_stride_.resize(static_cast<size_t>(vthread_id) + 1, 0);
  }
  return node_traffic_[static_cast<size_t>(vthread_id)];
}

void MemSystem::ResetNodeTraffic(int vthread_id) {
  if (static_cast<size_t>(vthread_id) < node_traffic_.size()) {
    node_traffic_[static_cast<size_t>(vthread_id)].fill(0);
  }
}

void MemSystem::SampleAutoNuma(sim::VThread* vt, Region* region, size_t idx,
                               int accessor_node, int page_node) {
  size_t tid = static_cast<size_t>(vt->id);
  if (tid >= fault_stride_.size()) {
    node_traffic_.resize(tid + 1, {});
    fault_stride_.resize(tid + 1, 0);
    fault_budget_.resize(tid + 1, wave_budget_);
  }
  node_traffic_[tid][static_cast<size_t>(page_node)]++;
  if (fault_budget_[tid] == 0) return;  // wave exhausted until next scan
  if (++fault_stride_[tid] < kHintingFaultStride) return;
  fault_stride_[tid] = 0;
  --fault_budget_[tid];

  // NUMA-hinting fault: trap into the kernel and account the access.
  vt->Charge(costs_.hinting_fault_cycles);
  ++vt->counters.hinting_faults;

  size_t eff = region->pages[idx].huge ? region->HugeHead(idx) : idx;
  PageRec& head = region->pages[eff];
  auto& v = head.visits[static_cast<size_t>(accessor_node)];
  if (v < 255) ++v;

  // Kernel promotion rule (cost-oblivious, like upstream AutoNUMA): once a
  // remote node has sampled enough accesses and strictly dominates, move
  // the page there — no matter how shared the page is. The kernel does
  // back off per page and rate-limit globally, which keeps the damage to
  // "significantly detrimental" rather than "unbounded".
  uint64_t epoch = vt->clock / kRateEpochCycles;
  if (epoch != migrate_epoch_) {
    migrate_epoch_ = epoch;
    migrations_this_epoch_ = 0;
  }
  if (accessor_node != head.node &&
      head.visits[static_cast<size_t>(accessor_node)] >= kMigrateThreshold &&
      migrations_this_epoch_ < kMigrationsPerEpoch &&
      vt->clock > head.migrating_until + kMigrationCooldownCycles) {
    int best = accessor_node;
    for (int n = 0; n < machine_->num_nodes(); ++n) {
      if (head.visits[static_cast<size_t>(n)] >
          head.visits[static_cast<size_t>(best)]) {
        best = n;
      }
    }
    if (best != head.node) {
      uint64_t addr = region->base + eff * kSmallPageBytes;
      os_->MigratePage(region, eff, best, vt->clock);
      ShootdownTlb(addr);
      ++migrations_this_epoch_;
    }
  }
}

void MemSystem::Access(sim::VThread* vt, const void* addr_p, uint64_t bytes,
                       bool write) {
  (void)write;  // reads and writes are charged identically (no WB model)
  if (bytes == 0) return;
  uint64_t addr = reinterpret_cast<uint64_t>(addr_p);
  // All hashing below uses slab-relative addresses so runs replay
  // identically regardless of where the host placed the slab.
  uint64_t rel = os_->ToSimAddr(addr);
  int core = machine_->CoreOfHwThread(vt->hw_thread);
  int my_node = machine_->NodeOfHwThread(vt->hw_thread);

  ++vt->counters.mem_accesses;
  vt->Charge(costs_.base_access_cycles);

  // TLB: one probe per access (accesses rarely straddle pages; a straddle
  // costs one extra probe below through per-line page resolution).
  Region* region = nullptr;
  size_t page_idx = 0;
  bool have_page = false;
  if (costs_.model_tlb) {
    Tlb& tlb = tlbs_[static_cast<size_t>(core)];
    if (tlb.Lookup(rel)) {
      ++vt->counters.tlb_hits;
    } else {
      ++vt->counters.tlb_misses;
      vt->Charge(costs_.page_walk_cycles);
      auto [r, i] = os_->Lookup(addr);
      region = r;
      page_idx = i;
      have_page = true;
      os_->Touch(region, page_idx, my_node);
      tlb.Insert(rel, region->pages[page_idx].huge);
    }
  }

  uint64_t first_line = rel / kCacheLineBytes;
  uint64_t last_line = (rel + bytes - 1) / kCacheLineBytes;
  for (uint64_t line = first_line; line <= last_line; ++line) {
    if (costs_.model_caches) {
      LineCache& priv = caches_.Private(core);
      if (priv.Probe(line)) {
        ++vt->counters.private_hits;
        vt->Charge(costs_.private_hit_cycles);
        continue;
      }
      LineCache& llc = caches_.Llc(my_node);
      if (llc.Probe(line)) {
        ++vt->counters.llc_hits;
        vt->Charge(costs_.llc_hit_cycles);
        priv.Insert(line);
        continue;
      }
    }

    // DRAM access.
    uint64_t line_host = line * kCacheLineBytes + (addr - rel);
    uint64_t probe_addr = line_host >= addr ? line_host : addr;
    if (!have_page || probe_addr < region->base ||
        probe_addr >= region->end()) {
      auto [r, i] = os_->Lookup(probe_addr);
      region = r;
      page_idx = i;
      have_page = true;
    } else {
      page_idx = region->PageIndex(probe_addr);
    }
    int page_node = os_->Touch(region, page_idx, my_node);

    // Stall behind an in-flight kernel copy (migration / THP collapse).
    size_t eff = region->pages[page_idx].huge ? region->HugeHead(page_idx)
                                              : page_idx;
    uint64_t busy_until = region->pages[eff].migrating_until;
    if (busy_until > vt->clock) {
      vt->Charge(std::min<uint64_t>(busy_until - vt->clock, 20000));
    }

    ++vt->counters.llc_misses;
    if (page_node == my_node) {
      ++vt->counters.local_dram;
    } else {
      ++vt->counters.remote_dram;
    }

    double factor = machine_->LatencyFactor(my_node, page_node);
    uint64_t lat = static_cast<uint64_t>(
        static_cast<double>(machine_->dram_latency_cycles()) * factor /
        costs_.mlp);
    uint64_t delay = 0;
    if (costs_.model_contention) {
      delay = contention_.Charge(*machine_, my_node, page_node, vt->clock,
                                 kCacheLineBytes,
                                 costs_.max_queue_delay_cycles);
      vt->counters.queue_delay_cycles += delay;
    }
    vt->Charge(lat + delay);

    if (autonuma_) {
      SampleAutoNuma(vt, region, page_idx, my_node, page_node);
    }

    if (costs_.model_caches) {
      caches_.Llc(my_node).Insert(line);
      caches_.Private(core).Insert(line);
    }
  }
}

}  // namespace mem
}  // namespace numalab
