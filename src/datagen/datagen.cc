#include "src/datagen/datagen.h"

#include <algorithm>
#include <numeric>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace numalab {
namespace datagen {

std::vector<Record> MakeAggregationInput(workloads::Dataset dataset,
                                         uint64_t n, uint64_t card,
                                         uint64_t seed) {
  NUMALAB_CHECK(card > 0 && n > 0);
  std::vector<Record> out;
  out.reserve(n);
  Rng rng(seed);

  switch (dataset) {
    case workloads::Dataset::kMovingCluster: {
      // Window of |card|/16 keys sliding across the key space.
      uint64_t window = std::max<uint64_t>(card / 16, 1);
      for (uint64_t i = 0; i < n; ++i) {
        uint64_t start =
            (card > window)
                ? static_cast<uint64_t>(
                      static_cast<double>(i) / static_cast<double>(n) *
                      static_cast<double>(card - window))
                : 0;
        uint64_t key = start + rng.Uniform(window);
        out.push_back(Record{key, static_cast<int64_t>(rng.Uniform(1 << 20))});
      }
      break;
    }
    case workloads::Dataset::kSequential: {
      for (uint64_t i = 0; i < n; ++i) {
        out.push_back(
            Record{i % card, static_cast<int64_t>(rng.Uniform(1 << 20))});
      }
      break;
    }
    case workloads::Dataset::kZipf: {
      ZipfSampler zipf(card, /*exponent=*/0.5, seed ^ 0xa5a5a5a5ULL);
      for (uint64_t i = 0; i < n; ++i) {
        out.push_back(
            Record{zipf.Next(), static_cast<int64_t>(rng.Uniform(1 << 20))});
      }
      break;
    }
  }
  return out;
}

void MakeJoinInput(uint64_t build_rows, uint64_t probe_rows, uint64_t seed,
                   std::vector<JoinTuple>* build,
                   std::vector<JoinTuple>* probe) {
  NUMALAB_CHECK(build_rows > 0);
  Rng rng(seed);

  build->clear();
  build->reserve(build_rows);
  std::vector<uint64_t> keys(build_rows);
  std::iota(keys.begin(), keys.end(), 0);
  // Fisher-Yates with the seeded RNG (std::shuffle's URBG use would not be
  // reproducible across standard library versions).
  for (uint64_t i = build_rows - 1; i > 0; --i) {
    uint64_t j = rng.Uniform(i + 1);
    std::swap(keys[i], keys[j]);
  }
  for (uint64_t i = 0; i < build_rows; ++i) {
    build->push_back(JoinTuple{keys[i], i});
  }

  probe->clear();
  probe->reserve(probe_rows);
  for (uint64_t i = 0; i < probe_rows; ++i) {
    probe->push_back(JoinTuple{rng.Uniform(build_rows), i});
  }
}

}  // namespace datagen
}  // namespace numalab
