// Dataset generators for the microbenchmark workloads (Section IV-B).
//
// Generation is host-side (building the input is not part of the measured
// query); the runner copies records into simulated memory and pretouches
// them as a single producer thread would.

#ifndef NUMALAB_DATAGEN_DATAGEN_H_
#define NUMALAB_DATAGEN_DATAGEN_H_

#include <cstdint>
#include <vector>

#include "src/workloads/run_config.h"

namespace numalab {
namespace datagen {

/// \brief One aggregation input record: GROUP BY groupkey, f(val).
struct Record {
  uint64_t key;
  int64_t val;
};

/// \brief One join input tuple (16 bytes, as in Blanas et al.).
struct JoinTuple {
  uint64_t key;
  uint64_t payload;
};

/// Generates `n` records with group-by cardinality `card`:
///  - MovingCluster: keys drawn from a window of the key space that slides
///    from 0 to card as the dataset progresses (streaming/spatial locality).
///  - Sequential: key = i mod card — incrementally increasing, like
///    transaction ids.
///  - Zipf: Zipfian sequence with exponent 0.5 over [0, card), sampled
///    uniformly (word frequencies, website traffic, city sizes).
std::vector<Record> MakeAggregationInput(workloads::Dataset dataset,
                                         uint64_t n, uint64_t card,
                                         uint64_t seed);

/// Generates the W3/W4 join inputs: the build side holds `build_rows`
/// tuples with unique keys [0, build_rows) in shuffled order; the probe
/// side holds `probe_rows` tuples whose foreign keys are drawn uniformly
/// from the build keys (every probe matches exactly one build tuple).
void MakeJoinInput(uint64_t build_rows, uint64_t probe_rows, uint64_t seed,
                   std::vector<JoinTuple>* build,
                   std::vector<JoinTuple>* probe);

}  // namespace datagen
}  // namespace numalab

#endif  // NUMALAB_DATAGEN_DATAGEN_H_
