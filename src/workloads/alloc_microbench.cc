#include "src/workloads/alloc_microbench.h"

#include <vector>

#include "src/common/rng.h"
#include "src/trace/export.h"
#include "src/trace/trace.h"
#include "src/workloads/sim_context.h"

namespace numalab {
namespace workloads {
namespace {

// Allocation sizes: probability inversely proportional to the size class
// (smaller classes much more frequent), sizes 16 B .. 8 KiB.
uint64_t DrawSize(Rng* rng) {
  // P(class c) ~ 1/(c+1) over 32 classes; rejection-free via cumulative
  // harmonic weights would cost a table; a simple trick: draw c until
  // accepted with probability 1/(c+1).
  for (;;) {
    uint64_t c = rng->Uniform(32);
    if (rng->Uniform(c + 1) == 0) {
      return 16ULL << (c / 4) | (c % 4) * (4ULL << (c / 4));
    }
  }
}

struct MicroShared {
  uint64_t ops = 0;
  uint64_t seed = 0;
};

sim::Task MicroWorker(Env& env, MicroShared& shared) {
  trace::ScopedSpan worker_span(env.self, "worker");
  Rng rng(shared.seed + 0x1234 +
          static_cast<uint64_t>(env.worker_index) * 77);
  // Bounded pool of live blocks per thread.
  constexpr size_t kLiveCap = 16384;
  std::vector<std::pair<void*, uint64_t>> live;
  live.reserve(kLiveCap);

  {
    trace::ScopedSpan mix_span(env.self, "alloc-mix");
    for (uint64_t op = 0; op < shared.ops; ++op) {
      // Alloc-biased until the working set is built, then oscillate around
      // it — the paper's "allocate and write, or read and deallocate" mix
      // holds a substantial live heap per thread.
      double p_alloc = live.size() < kLiveCap * 9 / 10 ? 0.75 : 0.45;
      bool do_alloc =
          live.empty() || (live.size() < kLiveCap && rng.Bernoulli(p_alloc));
      if (do_alloc) {
        uint64_t sz = DrawSize(&rng);
        void* p = env.Alloc(sz);
        // Touch the block (first touch; the paper's microbenchmark is
        // allocator-bound, so one line of payload traffic per op).
        env.Write(p, std::min<uint64_t>(sz, 64));
        live.emplace_back(p, sz);
      } else {
        size_t i = rng.Uniform(live.size());
        env.Read(live[i].first, std::min<uint64_t>(live[i].second, 64));
        env.Free(live[i].first);
        live[i] = live.back();
        live.pop_back();
      }
      co_await env.Checkpoint();
    }
  }
  trace::ScopedSpan drain_span(env.self, "teardown");
  for (auto& [p, sz] : live) {
    env.Free(p);
    co_await env.Checkpoint();
  }
}

}  // namespace

MicrobenchResult RunAllocMicrobench(const std::string& allocator,
                                    const std::string& machine, int threads,
                                    uint64_t ops_per_thread, uint64_t seed) {
  RunConfig cfg;
  cfg.machine = machine;
  cfg.threads = threads;
  cfg.affinity = osmodel::Affinity::kSparse;  // isolate the allocator
  cfg.policy = mem::MemPolicy::kFirstTouch;
  cfg.allocator = allocator;
  cfg.autonuma = false;
  cfg.thp = false;
  cfg.seed = seed;
  SimContext ctx(cfg);

  MicroShared shared;
  shared.ops = ops_per_thread;
  shared.seed = seed;

  ctx.SpawnWorkers([&](Env& env) { return MicroWorker(env, shared); });

  RunResult r;
  ctx.Finish(&r);
  trace::CollectRun("alloc-micro-" + allocator, cfg, r);

  MicrobenchResult out;
  out.cycles = r.cycles;
  out.requested_peak = r.requested_peak;
  out.resident_peak = r.resident_peak;
  out.memory_overhead = r.MemoryOverhead();
  out.lock_wait_cycles = r.report.threads.lock_wait_cycles;
  return out;
}

}  // namespace workloads
}  // namespace numalab
