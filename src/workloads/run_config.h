// RunConfig / RunResult — the experiment parameter space of Table IV and
// the measurements each simulated run produces.

#ifndef NUMALAB_WORKLOADS_RUN_CONFIG_H_
#define NUMALAB_WORKLOADS_RUN_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/faultlab/fault_plan.h"
#include "src/mem/cost_model.h"
#include "src/mem/page.h"
#include "src/mem/placement.h"
#include "src/osmodel/os_config.h"
#include "src/perf/counters.h"
#include "src/trace/span.h"

namespace numalab {
namespace workloads {

/// \brief Dataset distributions for the aggregation workloads (Sec. IV-B).
enum class Dataset {
  kMovingCluster,  ///< keys from a gradually sliding window (W1 default)
  kSequential,     ///< incrementing segments, transactional-style
  kZipf,           ///< Zipfian, exponent 0.5 (W2 default)
};

const char* DatasetName(Dataset d);

/// \brief One cell of the experiment grid (Table IV). Defaults are the
/// paper's system defaults (OS scheduler free, First Touch, ptmalloc,
/// AutoNUMA+THP on) so a default-constructed config reproduces the
/// out-of-the-box environment.
struct RunConfig {
  std::string machine = "A";
  int threads = 16;
  osmodel::Affinity affinity = osmodel::Affinity::kNone;
  mem::MemPolicy policy = mem::MemPolicy::kFirstTouch;
  int preferred_node = 0;
  std::string allocator = "ptmalloc";
  bool autonuma = true;
  bool thp = true;

  Dataset dataset = Dataset::kMovingCluster;
  /// Aggregation inputs, scaled from the paper's 100M records / 1M groups
  /// (ratio preserved) so a simulated run completes in seconds.
  uint64_t num_records = 8'000'000;
  uint64_t cardinality = 80'000;
  /// Join inputs, keeping the paper's 1:16 build:probe ratio (16M:256M).
  uint64_t build_rows = 250'000;
  uint64_t probe_rows = 4'000'000;

  uint64_t seed = 42;
  int run_index = 0;  ///< perturbs OS-scheduler randomness across runs
  uint64_t quantum = 4000;  ///< engine checkpoint quantum (clock-skew bound)

  /// Route all charging through the unbatched scalar reference path instead
  /// of the batched span engine. Slower; exists so parity tests can compare
  /// both implementations bit-for-bit (see MemSystem::SetScalarReference).
  bool scalar_mem_path = false;

  /// Attach the numalab::trace span recorder to this run: workload phase
  /// spans and per-thread counter summaries land in RunResult::trace.
  /// Recording is pure bookkeeping (no virtual-time charges), so results
  /// are unaffected. The process-wide collector enabled by the --json-out /
  /// --trace-out bench flags (see trace::CollectEnabled) attaches the
  /// recorder to every run regardless of this flag.
  bool trace = false;

  /// Attach the numalab::sanity happens-before race detector to this run.
  /// Reports land in RunResult::race_reports; simulated results are
  /// unaffected (the detector is pure bookkeeping). See also
  /// GlobalRaceDetect() for the process-wide --race-detect bench mode.
  bool race_detect = false;

  mem::CostModel costs;  ///< ablation switches live here

  /// Adaptive placement (hot-page replication + cost-aware migration).
  /// Disabled by default: stock AutoNUMA code paths, bit-identical to the
  /// pre-placement simulator. Enabling it also starts the AutoNuma daemon
  /// (placement samples on the hinting-fault hook) even when `autonuma`
  /// is false.
  mem::PlacementConfig placement;

  /// Fault-injection plan (src/faultlab). A default (disabled) plan is
  /// guaranteed zero-cost: the run takes exactly the code paths — and
  /// produces bit-identical results — it did before faultlab existed. When
  /// disabled here, the process-wide GlobalFaultPlan() (the --faultlab
  /// bench mode) applies instead.
  faultlab::FaultPlan faults;

  /// Virtual-cycle watchdog: when nonzero and every live thread's clock
  /// passes this bound, the run is cut short and RunResult::status is
  /// DeadlineExceeded. 0 disables.
  uint64_t deadline_cycles = 0;

  /// Export-only marker: true when the run served its stream through the
  /// WAL-backed storage engine (serve::ServeConfig::storage.enabled). The
  /// JSON validator requires a "storage" run section exactly when this flag
  /// is recorded in the exported config. Not a behaviour switch — the
  /// engine is configured through ServeConfig.
  bool storage = false;
};

/// \brief Outcome of one simulated run.
struct RunResult {
  /// OK for a clean run; OutOfMemory when a worker hit (injected or real)
  /// allocation failure and wound down; DeadlineExceeded when the watchdog
  /// cut the run short. A degraded-but-complete run (spill, offline
  /// redirects, failed migrations) stays OK — see the counters below.
  Status status;
  uint64_t cycles = 0;           ///< virtual makespan
  perf::PerfReport report;
  uint64_t requested_peak = 0;   ///< allocator-level peak requested bytes
  uint64_t resident_peak = 0;    ///< simulated RSS peak
  uint64_t checksum = 0;         ///< workload-defined result digest
  uint64_t aux_cycles = 0;       ///< e.g. index build time for W4
  uint64_t races = 0;            ///< racy pairs observed (race_detect runs)
  std::vector<std::string> race_reports;  ///< rendered detector reports

  /// Phase spans and per-thread counter summaries (empty unless the run
  /// had a trace recorder attached — RunConfig::trace or --json-out /
  /// --trace-out collection).
  trace::RunTrace trace;

  // Degradation counters (copies of the SystemCounters fields; all zero in
  // a no-fault run).
  uint64_t pages_spilled = 0;
  uint64_t oom_last_resort_pages = 0;
  uint64_t offline_redirects = 0;
  uint64_t all_offline_binds = 0;
  uint64_t alloc_failures_injected = 0;
  uint64_t migration_failures_injected = 0;

  double MemoryOverhead() const {
    if (requested_peak == 0) return 0.0;
    return static_cast<double>(resident_peak) /
           static_cast<double>(requested_peak);
  }
};

/// Process-wide race-detection switch, flipped by the --race-detect bench
/// flag before any run starts. When on, every SimContext attaches a
/// detector regardless of RunConfig::race_detect, and SimContext::Finish
/// prints all reports to stderr and exits nonzero if any race was seen —
/// the CI contract of scripts/check.sh. Tests wanting to *inspect* races
/// use RunConfig::race_detect instead, which only fills RunResult.
bool GlobalRaceDetect();
void SetGlobalRaceDetect(bool on);

/// Process-wide fault plan, set by the --faultlab bench flag before any run
/// starts. Applies to every SimContext whose own RunConfig::faults is
/// disabled. Returns a disabled plan when unset.
const faultlab::FaultPlan& GlobalFaultPlan();
void SetGlobalFaultPlan(const faultlab::FaultPlan& plan);
void ClearGlobalFaultPlan();

}  // namespace workloads
}  // namespace numalab

#endif  // NUMALAB_WORKLOADS_RUN_CONFIG_H_
