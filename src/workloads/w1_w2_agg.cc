// W1 (holistic / MEDIAN) and W2 (distributive / COUNT) hash aggregation.
//
// Both build a shared global hash table keyed by the group column. W1
// stores every value per group (the holistic aggregate needs the whole
// input) in allocator-backed growable arrays — the allocation-heavy
// behaviour the paper's Fig. 6a-c exploits. W2 keeps one counter per group
// and is placement-bound rather than allocator-bound (Fig. 6d-f).

#include <cstring>

#include "src/common/logging.h"
#include "src/datagen/datagen.h"
#include "src/index/hash_table.h"
#include "src/trace/export.h"
#include "src/trace/trace.h"
#include "src/workloads/sim_context.h"
#include "src/workloads/workloads.h"

namespace numalab {
namespace workloads {
namespace {

/// Growable per-group value array, managed through the simulated allocator
/// so growth and copy costs are measured.
struct GroupVec {
  int64_t* data = nullptr;
  uint32_t size = 0;
  uint32_t cap = 0;
};

// Fallible under a faultlab plan: a failed growth allocation drops the
// value, marks the run failed (env.Failed()), and returns false.
bool Append(Env& env, GroupVec* v, int64_t x) {
  if (v->size == v->cap) {
    uint32_t new_cap = v->cap == 0 ? 8 : v->cap * 2;
    auto* nd = static_cast<int64_t*>(env.TryAlloc(new_cap * sizeof(int64_t)));
    if (nd == nullptr) return false;
    if (v->size > 0) {
      env.ReadSpan(v->data, v->size * sizeof(int64_t));
      env.WriteSpan(nd, v->size * sizeof(int64_t));
      std::memcpy(nd, v->data, v->size * sizeof(int64_t));
      env.Free(v->data);
    }
    v->data = nd;
    v->cap = new_cap;
  }
  v->data[v->size] = x;
  env.Write(&v->data[v->size], sizeof(int64_t));
  ++v->size;
  return true;
}

struct AggShared {
  const datagen::Record* input = nullptr;
  uint64_t n = 0;
  SimContext* ctx = nullptr;
  std::vector<uint64_t> checksums;  // per worker
};

using W1Table = index::ConcurrentHashTable<GroupVec>;
using W2Table = index::ConcurrentHashTable<uint64_t>;

sim::Task W1Worker(Env& env, AggShared& shared, W1Table& table) {
  trace::ScopedSpan worker_span(env.self, "worker");
  uint64_t per = shared.n / static_cast<uint64_t>(env.num_workers);
  uint64_t lo = per * static_cast<uint64_t>(env.worker_index);
  uint64_t hi = env.worker_index == env.num_workers - 1
                    ? shared.n
                    : lo + per;

  // Phase 1: build the shared table, appending every value to its group.
  // The append mutates the shared entry, so it runs inside the stripe's
  // critical section (UpsertWith), not after it. On a reported failure
  // (injected OOM) the worker stops producing but still arrives at the
  // barrier so the run winds down instead of deadlocking.
  {
    trace::ScopedSpan build_span(env.self, "build");
    for (uint64_t i = lo; i < hi && !env.Failed(); ++i) {
      env.Read(&shared.input[i], sizeof(datagen::Record));
      table.UpsertWith(env, shared.input[i].key, [&](W1Table::Entry* entry) {
        Append(env, &entry->value, shared.input[i].val);
      });
      co_await env.Checkpoint();
    }
    co_await shared.ctx->barrier()->Arrive();
  }

  // Phase 2: compute MEDIAN per group; groups partitioned by bucket range.
  trace::ScopedSpan agg_span(env.self, "aggregate");
  uint64_t buckets = table.nbuckets();
  uint64_t bper = buckets / static_cast<uint64_t>(env.num_workers);
  uint64_t blo = bper * static_cast<uint64_t>(env.worker_index);
  uint64_t bhi = env.worker_index == env.num_workers - 1
                     ? buckets
                     : blo + bper;
  uint64_t checksum = 0;
  uint64_t visited = 0;
  if (!env.Failed()) {
    table.ForEachInBuckets(env, blo, bhi, [&](W1Table::Entry* e) {
      GroupVec& v = e->value;
      if (v.size == 0) return;
      env.ReadSpan(v.data, v.size * sizeof(int64_t));
      // nth_element is O(n) with a non-trivial constant.
      env.Compute(static_cast<uint64_t>(v.size) * 6);
      size_t mid = (v.size - 1) / 2;
      std::nth_element(v.data, v.data + mid, v.data + v.size);
      checksum += static_cast<uint64_t>(v.data[mid]);
      ++visited;
    });
  }
  // ForEachInBuckets runs synchronously; yield once afterwards.
  co_await env.Checkpoint();
  shared.checksums[static_cast<size_t>(env.worker_index)] = checksum;
}

sim::Task W2Worker(Env& env, AggShared& shared, W2Table& table) {
  trace::ScopedSpan worker_span(env.self, "worker");
  uint64_t per = shared.n / static_cast<uint64_t>(env.num_workers);
  uint64_t lo = per * static_cast<uint64_t>(env.worker_index);
  uint64_t hi = env.worker_index == env.num_workers - 1
                    ? shared.n
                    : lo + per;

  {
    trace::ScopedSpan build_span(env.self, "build");
    for (uint64_t i = lo; i < hi && !env.Failed(); ++i) {
      env.Read(&shared.input[i], sizeof(datagen::Record));
      table.UpsertWith(env, shared.input[i].key, [&](W2Table::Entry* entry) {
        ++entry->value;
        env.Write(&entry->value, sizeof(uint64_t));
      });
      co_await env.Checkpoint();
    }
    co_await shared.ctx->barrier()->Arrive();
  }

  trace::ScopedSpan agg_span(env.self, "aggregate");
  uint64_t buckets = table.nbuckets();
  uint64_t bper = buckets / static_cast<uint64_t>(env.num_workers);
  uint64_t blo = bper * static_cast<uint64_t>(env.worker_index);
  uint64_t bhi = env.worker_index == env.num_workers - 1
                     ? buckets
                     : blo + bper;
  uint64_t checksum = 0;
  if (!env.Failed()) {
    table.ForEachInBuckets(env, blo, bhi,
                           [&](W2Table::Entry* e) { checksum += e->value; });
  }
  co_await env.Checkpoint();
  shared.checksums[static_cast<size_t>(env.worker_index)] = checksum;
}

template <typename Table, typename WorkerFn>
RunResult RunAggregation(const RunConfig& config, WorkerFn&& worker) {
  SimContext ctx(config);

  std::vector<datagen::Record> host_input = datagen::MakeAggregationInput(
      config.dataset, config.num_records, config.cardinality, config.seed);

  auto* input = ctx.AllocInput<datagen::Record>(host_input.size());
  std::memcpy(input, host_input.data(),
              host_input.size() * sizeof(datagen::Record));
  ctx.PretouchInput(input, host_input.size() * sizeof(datagen::Record));

  Env setup_env;
  setup_env.engine = ctx.engine();
  setup_env.mem = ctx.memsys();
  setup_env.alloc = ctx.allocator();
  setup_env.run_status = ctx.run_status();
  Table table(setup_env, config.cardinality * 2);

  AggShared shared;
  shared.input = input;
  shared.n = host_input.size();
  shared.ctx = &ctx;
  shared.checksums.assign(static_cast<size_t>(config.threads), 0);

  ctx.SpawnWorkers(
      [&](Env& env) { return worker(env, shared, table); });

  RunResult result;
  ctx.Finish(&result);
  for (uint64_t c : shared.checksums) result.checksum += c;
  return result;
}

}  // namespace

RunResult RunW1HolisticAggregation(const RunConfig& config) {
  RunResult r = RunAggregation<W1Table>(
      config, [](Env& env, AggShared& shared, W1Table& table) {
        return W1Worker(env, shared, table);
      });
  trace::CollectRun("W1", config, r);
  return r;
}

RunResult RunW2DistributiveAggregation(const RunConfig& config) {
  RunResult r = RunAggregation<W2Table>(
      config, [](Env& env, AggShared& shared, W2Table& table) {
        return W2Worker(env, shared, table);
      });
  trace::CollectRun("W2", config, r);
  return r;
}

}  // namespace workloads
}  // namespace numalab
