// The memory-allocator microbenchmark of Section III-A8 (Fig. 2).
//
// Each thread performs `ops_per_thread` operations against the configured
// allocator: with probability 1/2 allocate a block (size drawn from a
// distribution inversely proportional to the size class) and write it;
// otherwise read and free a random live block. The two paper metrics are
// returned: wall (virtual) time, and memory overhead = resident peak /
// requested peak.

#ifndef NUMALAB_WORKLOADS_ALLOC_MICROBENCH_H_
#define NUMALAB_WORKLOADS_ALLOC_MICROBENCH_H_

#include <cstdint>
#include <string>

#include "src/workloads/run_config.h"

namespace numalab {
namespace workloads {

struct MicrobenchResult {
  uint64_t cycles = 0;
  double memory_overhead = 0.0;   ///< resident peak / requested peak
  uint64_t requested_peak = 0;
  uint64_t resident_peak = 0;
  uint64_t lock_wait_cycles = 0;
};

/// Runs the microbenchmark on `machine` with `threads` threads.
MicrobenchResult RunAllocMicrobench(const std::string& allocator,
                                    const std::string& machine, int threads,
                                    uint64_t ops_per_thread, uint64_t seed);

}  // namespace workloads
}  // namespace numalab

#endif  // NUMALAB_WORKLOADS_ALLOC_MICROBENCH_H_
