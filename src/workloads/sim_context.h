// SimContext assembles one complete simulated run: machine, engine, memory
// system, OS models, allocator — wired per a RunConfig — and spawns worker
// coroutines.

#ifndef NUMALAB_WORKLOADS_SIM_CONTEXT_H_
#define NUMALAB_WORKLOADS_SIM_CONTEXT_H_

#include <functional>
#include <memory>

#include "src/alloc/allocator.h"
#include "src/faultlab/faultlab.h"
#include "src/mem/mem_system.h"
#include "src/osmodel/autonuma.h"
#include "src/osmodel/thp.h"
#include "src/osmodel/thread_sched.h"
#include "src/sim/engine.h"
#include "src/sim/sync.h"
#include "src/trace/trace.h"
#include "src/workloads/env.h"
#include "src/workloads/run_config.h"

namespace numalab {
namespace workloads {

class SimContext {
 public:
  explicit SimContext(const RunConfig& config);

  /// Spawns `config.threads` workers placed per the affinity strategy. The
  /// body factory receives each worker's Env (owned by the context; valid
  /// for the run's lifetime).
  void SpawnWorkers(const std::function<sim::Task(Env&)>& body);

  /// Runs to completion; fills the non-workload fields of `result`.
  void Finish(RunResult* result);

  const RunConfig& config() const { return config_; }
  const topology::Machine& machine() const { return machine_; }
  sim::Engine* engine() { return &engine_; }
  mem::MemSystem* memsys() { return memsys_.get(); }
  alloc::SimAllocator* allocator() { return allocator_.get(); }
  osmodel::ThreadScheduler* scheduler() { return &sched_; }
  sim::SimBarrier* barrier() { return &barrier_; }
  /// Non-null iff this run has race detection attached (config.race_detect
  /// or the process-wide --race-detect mode).
  sanity::RaceDetector* race() { return race_.get(); }
  /// Non-null iff this run records phase spans (config.trace or the
  /// process-wide --json-out / --trace-out collection mode).
  trace::TraceRecorder* trace_recorder() { return trace_.get(); }
  /// Non-null iff a fault plan (config.faults or the process-wide
  /// --faultlab mode) is active for this run.
  faultlab::FaultLab* faults() { return faults_.get(); }
  /// Run-wide status the workers' Envs report failures into.
  Status* run_status() { return &run_status_; }

  /// Allocates + pretouches an input array as if a single producer thread
  /// on node 0 generated it (see PretouchAsNode).
  template <typename T>
  T* AllocInput(size_t count) {
    T* p = static_cast<T*>(allocator_->Alloc(count * sizeof(T)));
    return p;
  }
  void PretouchInput(const void* p, size_t len) {
    PretouchAsNode(memsys_.get(), p, len, /*node=*/0);
  }

 private:
  RunConfig config_;
  topology::Machine machine_;
  // Must outlive engine_: ~Engine destroys outstanding coroutine frames,
  // whose ScopedSpan locals call back into the recorder.
  std::unique_ptr<trace::TraceRecorder> trace_;  // may be null (default)
  sim::Engine engine_;
  perf::SystemCounters sys_;
  std::unique_ptr<mem::MemSystem> memsys_;  // must precede sched_
  // Must outlive the allocator and SimOS, which hold raw pointers to it.
  std::unique_ptr<faultlab::FaultLab> faults_;  // may be null (default)
  std::unique_ptr<sanity::RaceDetector> race_;  // may be null (default)
  osmodel::ThreadScheduler sched_;
  std::unique_ptr<alloc::SimAllocator> allocator_;
  std::unique_ptr<osmodel::AutoNuma> autonuma_;
  std::unique_ptr<osmodel::ThpDaemon> thp_;
  sim::SimBarrier barrier_;
  std::vector<std::unique_ptr<Env>> envs_;
  Status run_status_;
};

}  // namespace workloads
}  // namespace numalab

#endif  // NUMALAB_WORKLOADS_SIM_CONTEXT_H_
