// W3 — non-partitioning hash join (Blanas et al. [15]).
//
// Build a shared hash table on the small relation (all workers insert their
// partition), then probe it with the large relation, materializing matches
// into per-thread output buffers. The 1:16 size ratio mimics a decision-
// support fact/dimension join. Allocation-heavy on both sides (one entry
// per build tuple, growing output buffers), which is why it shows the
// paper's largest allocator speedups (Fig. 6g-i).

#include <cstring>

#include "src/datagen/datagen.h"
#include "src/index/hash_table.h"
#include "src/trace/export.h"
#include "src/trace/trace.h"
#include "src/workloads/sim_context.h"
#include "src/workloads/workloads.h"

namespace numalab {
namespace workloads {
namespace {

using JoinTable = index::ConcurrentHashTable<uint64_t>;

struct OutBuf {
  uint64_t* data = nullptr;
  uint64_t size = 0;
  uint64_t cap = 0;
};

// Fallible under a faultlab plan: a failed growth allocation drops the
// match, marks the run failed (env.Failed()), and returns false.
bool Emit(Env& env, OutBuf* out, uint64_t a, uint64_t b, uint64_t c) {
  if (out->size + 3 > out->cap) {
    uint64_t new_cap = out->cap == 0 ? 1024 : out->cap * 2;
    auto* nd =
        static_cast<uint64_t*>(env.TryAlloc(new_cap * sizeof(uint64_t)));
    if (nd == nullptr) return false;
    if (out->size > 0) {
      env.ReadSpan(out->data, out->size * sizeof(uint64_t));
      env.WriteSpan(nd, out->size * sizeof(uint64_t));
      std::memcpy(nd, out->data, out->size * sizeof(uint64_t));
      env.Free(out->data);
    }
    out->data = nd;
    out->cap = new_cap;
  }
  out->data[out->size] = a;
  out->data[out->size + 1] = b;
  out->data[out->size + 2] = c;
  env.Write(&out->data[out->size], 3 * sizeof(uint64_t));
  out->size += 3;
  return true;
}

struct JoinShared {
  const datagen::JoinTuple* build = nullptr;
  const datagen::JoinTuple* probe = nullptr;
  uint64_t build_n = 0;
  uint64_t probe_n = 0;
  SimContext* ctx = nullptr;
  std::vector<uint64_t> matches;  // per worker
};

sim::Task W3Worker(Env& env, JoinShared& shared, JoinTable& table) {
  trace::ScopedSpan worker_span(env.self, "worker");
  // Build phase over the small relation.
  uint64_t per = shared.build_n / static_cast<uint64_t>(env.num_workers);
  uint64_t lo = per * static_cast<uint64_t>(env.worker_index);
  uint64_t hi = env.worker_index == env.num_workers - 1 ? shared.build_n
                                                        : lo + per;
  {
    trace::ScopedSpan build_span(env.self, "build");
    for (uint64_t i = lo; i < hi && !env.Failed(); ++i) {
      env.Read(&shared.build[i], sizeof(datagen::JoinTuple));
      table.UpsertWith(env, shared.build[i].key, [&](JoinTable::Entry* e) {
        e->value = shared.build[i].payload;
        env.Write(&e->value, sizeof(uint64_t));
      });
      co_await env.Checkpoint();
    }
    co_await shared.ctx->barrier()->Arrive();
  }

  // Probe phase over the large relation.
  trace::ScopedSpan probe_span(env.self, "probe");
  per = shared.probe_n / static_cast<uint64_t>(env.num_workers);
  lo = per * static_cast<uint64_t>(env.worker_index);
  hi = env.worker_index == env.num_workers - 1 ? shared.probe_n : lo + per;
  OutBuf out;
  uint64_t found = 0;
  for (uint64_t i = lo; i < hi && !env.Failed(); ++i) {
    env.Read(&shared.probe[i], sizeof(datagen::JoinTuple));
    if (auto* e = table.Find(env, shared.probe[i].key)) {
      if (!Emit(env, &out, shared.probe[i].key, e->value,
                shared.probe[i].payload)) {
        break;
      }
      ++found;
    }
    co_await env.Checkpoint();
  }
  shared.matches[static_cast<size_t>(env.worker_index)] = found;
}

}  // namespace

RunResult RunW3HashJoin(const RunConfig& config) {
  SimContext ctx(config);

  std::vector<datagen::JoinTuple> host_build, host_probe;
  datagen::MakeJoinInput(config.build_rows, config.probe_rows, config.seed,
                         &host_build, &host_probe);

  auto* build = ctx.AllocInput<datagen::JoinTuple>(host_build.size());
  auto* probe = ctx.AllocInput<datagen::JoinTuple>(host_probe.size());
  std::memcpy(build, host_build.data(),
              host_build.size() * sizeof(datagen::JoinTuple));
  std::memcpy(probe, host_probe.data(),
              host_probe.size() * sizeof(datagen::JoinTuple));
  ctx.PretouchInput(build, host_build.size() * sizeof(datagen::JoinTuple));
  ctx.PretouchInput(probe, host_probe.size() * sizeof(datagen::JoinTuple));

  Env setup_env;
  setup_env.engine = ctx.engine();
  setup_env.mem = ctx.memsys();
  setup_env.alloc = ctx.allocator();
  setup_env.run_status = ctx.run_status();
  JoinTable table(setup_env, config.build_rows * 2);

  JoinShared shared;
  shared.build = build;
  shared.probe = probe;
  shared.build_n = host_build.size();
  shared.probe_n = host_probe.size();
  shared.ctx = &ctx;
  shared.matches.assign(static_cast<size_t>(config.threads), 0);

  ctx.SpawnWorkers(
      [&](Env& env) { return W3Worker(env, shared, table); });

  RunResult result;
  ctx.Finish(&result);
  for (uint64_t m : shared.matches) result.checksum += m;
  trace::CollectRun("W3", config, result);
  return result;
}

}  // namespace workloads
}  // namespace numalab
