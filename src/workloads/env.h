// Env — the handle workload code uses to interact with the simulation:
// charging memory accesses and compute, allocating through the configured
// allocator, and yielding at checkpoints. One Env exists per worker
// coroutine.

#ifndef NUMALAB_WORKLOADS_ENV_H_
#define NUMALAB_WORKLOADS_ENV_H_

#include <cstddef>
#include <cstdint>

#include "src/alloc/allocator.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/mem/mem_system.h"
#include "src/sanity/race_detector.h"
#include "src/sim/engine.h"
#include "src/sim/sync.h"

namespace numalab {
namespace workloads {

struct Env {
  sim::Engine* engine = nullptr;
  mem::MemSystem* mem = nullptr;
  alloc::SimAllocator* alloc = nullptr;
  sim::VThread* self = nullptr;
  int worker_index = 0;
  int num_workers = 1;
  /// Run-wide status shared by all workers (points into the SimContext);
  /// the first failure any worker reports wins. Null in contexts built
  /// without a SimContext (unit tests) — then failures are simply dropped.
  Status* run_status = nullptr;

  void Read(const void* p, size_t n) { mem->Read(self, p, n); }
  void Write(const void* p, size_t n) { mem->Write(self, p, n); }
  /// Batched strided reads/writes over [p, p+n); stride 0 charges the whole
  /// range as one logical access. Bit-identical to the equivalent loop of
  /// Read/Write calls — see MemSystem::AccessSpan for when to use which.
  void ReadSpan(const void* p, size_t n, uint64_t stride = 0) {
    mem->AccessSpan(self, p, n, stride, /*write=*/false);
  }
  void WriteSpan(const void* p, size_t n, uint64_t stride = 0) {
    mem->AccessSpan(self, p, n, stride, /*write=*/true);
  }
  void Compute(uint64_t cycles) { self->Charge(cycles); }
  sim::CheckpointAwaiter Checkpoint() { return engine->Checkpoint(); }

  void* Alloc(size_t n) {
    void* p = alloc->Alloc(n);
    if (sanity::RaceDetector* rd = mem->race()) {
      // Allocator reuse is not a happens-before edge: a freshly returned
      // block carries no shadow history (exactly how TSan treats malloc).
      rd->OnAlloc(self != nullptr ? self->id : -1,
                  mem->os()->ToSimAddr(reinterpret_cast<uint64_t>(p)), n,
                  self != nullptr ? self->clock : 0);
    }
    return p;
  }
  void Free(void* p) { alloc->Free(p); }

  /// Fallible allocation: returns nullptr on (injected or genuine)
  /// exhaustion after recording an OutOfMemory run status. Workers seeing
  /// nullptr — or a true Failed() — should wind down cooperatively: stop
  /// producing, but still arrive at any barriers they share.
  void* TryAlloc(size_t n) {
    void* p = alloc->TryAlloc(n);
    if (p == nullptr) {
      ReportFailure(Status::OutOfMemory("allocation failed"));
      return nullptr;
    }
    if (sanity::RaceDetector* rd = mem->race()) {
      rd->OnAlloc(self != nullptr ? self->id : -1,
                  mem->os()->ToSimAddr(reinterpret_cast<uint64_t>(p)), n,
                  self != nullptr ? self->clock : 0);
    }
    return p;
  }

  /// True once any worker of this run has reported a failure.
  bool Failed() const { return run_status != nullptr && !run_status->ok(); }

  /// Records `s` as the run's status; first error wins, later ones are
  /// dropped (deterministic, since the engine is single-threaded).
  void ReportFailure(Status s) {
    if (run_status != nullptr && run_status->ok() && !s.ok()) {
      *run_status = std::move(s);
    }
  }

  /// Happens-before hooks for VirtualLock critical sections. VirtualLock is
  /// analytical (no suspension, no engine pointer), so the *user* marks the
  /// section: call LockAcquired right after VirtualLock::Acquire and
  /// LockReleased once the protected writes are done. No-ops (one branch)
  /// when the race detector is off.
  ///
  /// The pair doubles as the *static* lock contract: under clang's
  /// thread-safety analysis LockAcquired acquires the capability and
  /// LockReleased releases it, so every path between them must balance
  /// (-Werror=thread-safety in check.sh stage 10). The bodies opt out of
  /// body analysis — they only forward to the race detector, which is the
  /// dynamic half of the same contract.
  void LockAcquired(const sim::VirtualLock* lock) NUMALAB_ACQUIRE(lock)
      NUMALAB_NO_THREAD_SAFETY_ANALYSIS {
    if (sanity::RaceDetector* rd = mem->race()) {
      rd->OnAcquire(self != nullptr ? self->id : -1, lock);
    }
  }
  void LockReleased(const sim::VirtualLock* lock) NUMALAB_RELEASE(lock)
      NUMALAB_NO_THREAD_SAFETY_ANALYSIS {
    if (sanity::RaceDetector* rd = mem->race()) {
      rd->OnRelease(self != nullptr ? self->id : -1, lock);
    }
  }
};

/// \brief STL allocator adapter so containers used by workloads (group
/// value vectors, output buffers) allocate through the simulated allocator.
template <typename T>
class SimStlAlloc {
 public:
  using value_type = T;

  explicit SimStlAlloc(alloc::SimAllocator* a) : a_(a) {}
  template <typename U>
  SimStlAlloc(const SimStlAlloc<U>& o) : a_(o.raw()) {}  // NOLINT implicit

  T* allocate(size_t n) {
    return static_cast<T*>(a_->Alloc(n * sizeof(T)));
  }
  void deallocate(T* p, size_t) { a_->Free(p); }

  alloc::SimAllocator* raw() const { return a_; }

  bool operator==(const SimStlAlloc& o) const { return a_ == o.a_; }

 private:
  alloc::SimAllocator* a_;
};

/// Marks every page backing [p, p+len) as touched by `node` — used after
/// host-side dataset generation to model the single-threaded producer that
/// first-touched the input (the classic first-touch pathology the paper's
/// Interleave results hinge on).
inline void PretouchAsNode(mem::MemSystem* mem, const void* p, size_t len,
                           int node) {
  uint64_t addr = reinterpret_cast<uint64_t>(p);
  uint64_t end = addr + len;
  for (uint64_t a = addr; a < end; a += mem::kSmallPageBytes) {
    auto [region, idx] = mem->os()->Lookup(a);
    mem->os()->Touch(region, idx, node);
  }
  if (len > 0) {
    auto [region, idx] = mem->os()->Lookup(end - 1);
    mem->os()->Touch(region, idx, node);
  }
}

}  // namespace workloads
}  // namespace numalab

#endif  // NUMALAB_WORKLOADS_ENV_H_
