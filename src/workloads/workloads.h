// Entry points for the paper's microbenchmark workloads (Table I):
//
//   W1 — holistic aggregation  (GROUP BY key, MEDIAN(val), shared hashtable)
//   W2 — distributive aggregation (GROUP BY key, COUNT(val))
//   W3 — non-partitioning hash join (1:16 tables, Blanas et al.)
//   W4 — index nested-loop join (ART / Masstree / B+tree / SkipList)
//
// Each runs one fully configured simulation (SimContext) and returns the
// virtual-cycle makespan plus counters.

#ifndef NUMALAB_WORKLOADS_WORKLOADS_H_
#define NUMALAB_WORKLOADS_WORKLOADS_H_

#include <string>

#include "src/workloads/run_config.h"

namespace numalab {
namespace workloads {

RunResult RunW1HolisticAggregation(const RunConfig& config);
RunResult RunW2DistributiveAggregation(const RunConfig& config);
RunResult RunW3HashJoin(const RunConfig& config);

/// W4. `index_name` is one of "art", "masstree", "btree", "skiplist".
/// RunResult::aux_cycles holds the (single-threaded) index build time; the
/// main cycle count is the parallel join time, as in Fig. 7.
RunResult RunW4IndexJoin(const RunConfig& config,
                         const std::string& index_name);

}  // namespace workloads
}  // namespace numalab

#endif  // NUMALAB_WORKLOADS_WORKLOADS_H_
