#include "src/workloads/sim_context.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "src/trace/export.h"

namespace numalab {
namespace workloads {

namespace {
bool g_race_detect = false;
faultlab::FaultPlan g_fault_plan;
}  // namespace

bool GlobalRaceDetect() { return g_race_detect; }
void SetGlobalRaceDetect(bool on) { g_race_detect = on; }

const faultlab::FaultPlan& GlobalFaultPlan() { return g_fault_plan; }
void SetGlobalFaultPlan(const faultlab::FaultPlan& plan) {
  g_fault_plan = plan;
}
void ClearGlobalFaultPlan() { g_fault_plan = faultlab::FaultPlan(); }

const char* DatasetName(Dataset d) {
  switch (d) {
    case Dataset::kMovingCluster: return "MovingCluster";
    case Dataset::kSequential: return "Sequential";
    case Dataset::kZipf: return "Zipf";
  }
  return "?";
}

SimContext::SimContext(const RunConfig& config)
    : config_(config),
      machine_(topology::MachineByName(config.machine)),
      engine_(config.quantum),
      memsys_(std::make_unique<mem::MemSystem>(&machine_, &engine_,
                                               config.costs, &sys_)),
      sched_(&machine_, &engine_, memsys_.get(), config.affinity,
             config.seed + static_cast<uint64_t>(config.run_index) * 7919,
             &sys_),
      barrier_(&engine_, config.threads) {
  memsys_->os()->SetPolicy(config.policy, config.preferred_node);
  memsys_->SetScalarReference(config.scalar_mem_path);
  memsys_->SetPlacement(config.placement);

  // Fault plan: the run's own plan wins; otherwise the process-wide
  // --faultlab plan. A disabled plan attaches nothing — the no-fault run
  // takes exactly the pre-faultlab code paths.
  const faultlab::FaultPlan& plan =
      config.faults.enabled() ? config.faults : GlobalFaultPlan();
  if (plan.enabled()) {
    faults_ = std::make_unique<faultlab::FaultLab>(
        plan, config.seed, static_cast<uint64_t>(config.run_index), &sys_);
    memsys_->os()->SetFaultLab(faults_.get());
    memsys_->ApplyLinkDegradation(plan.degraded_links,
                                  plan.link_latency_scale);
  }
  engine_.SetDeadline(config.deadline_cycles);

  // Attach the span recorder before any worker spawns. Recording is pure
  // bookkeeping (no virtual-time charges), so results are bit-identical
  // with or without it.
  if (config.trace || trace::CollectEnabled()) {
    trace_ = std::make_unique<trace::TraceRecorder>(&machine_);
    engine_.SetTraceRecorder(trace_.get());
  }

  // Attach the race detector before any VThread (daemons included) spawns,
  // so every thread gets its fork edge.
  if (config.race_detect || GlobalRaceDetect()) {
    race_ = std::make_unique<sanity::RaceDetector>();
    engine_.SetRaceDetector(race_.get());
    memsys_->SetRaceDetector(race_.get());
  }

  alloc::AllocEnv aenv{&engine_, memsys_->os(), &memsys_->costs(),
                       faults_.get()};
  allocator_ = alloc::MakeAllocator(config.allocator, aenv, &machine_);

  if (config.thp) {
    memsys_->os()->SetThpFaultAlloc(true);
    thp_ = std::make_unique<osmodel::ThpDaemon>(&engine_, memsys_.get());
    thp_->Start();
  }
  // Placement samples on the AutoNUMA hinting-fault hook, so enabling it
  // implies the daemon even when stock numa_balancing is off.
  if (config.autonuma || config.placement.enabled) {
    autonuma_ = std::make_unique<osmodel::AutoNuma>(&machine_, &engine_,
                                                    memsys_.get(), &sched_);
    autonuma_->Start();
  }
  sched_.Start();
}

void SimContext::SpawnWorkers(const std::function<sim::Task(Env&)>& body) {
  for (int i = 0; i < config_.threads; ++i) {
    auto env = std::make_unique<Env>();
    env->engine = &engine_;
    env->mem = memsys_.get();
    env->alloc = allocator_.get();
    env->worker_index = i;
    env->num_workers = config_.threads;
    env->run_status = &run_status_;
    Env* raw = env.get();
    envs_.push_back(std::move(env));

    int hw = sched_.Place(i);
    sim::VThread* vt = engine_.Spawn(
        "worker" + std::to_string(i), hw, [raw, &body](sim::VThread* vt) {
          raw->self = vt;
          return body(*raw);
        });
    sched_.Register(vt);
  }
}

void SimContext::Finish(RunResult* result) {
  result->cycles = engine_.Run();
  result->report.threads = engine_.AggregateCounters();
  result->report.system = sys_;
  result->requested_peak = allocator_->stats().requested_peak;
  result->resident_peak = memsys_->os()->resident_peak();

  // Deadline overrides a worker-reported failure: the run did not finish.
  if (engine_.deadline_exceeded()) {
    result->status = Status::DeadlineExceeded("virtual-cycle deadline hit");
  } else {
    result->status = run_status_;
  }
  if (trace_ != nullptr) {
    result->trace.spans = trace_->records();
    for (const auto& t : engine_.threads()) {
      trace::ThreadSummary ts;
      ts.thread_id = t->id;
      ts.name = t->name;
      ts.node = machine_.NodeOfHwThread(t->hw_thread);
      ts.counters = t->counters;
      result->trace.threads.push_back(std::move(ts));
    }
  }

  result->pages_spilled = sys_.pages_spilled;
  result->oom_last_resort_pages = sys_.oom_last_resort_pages;
  result->offline_redirects = sys_.offline_redirects;
  result->all_offline_binds = sys_.all_offline_binds;
  result->alloc_failures_injected = sys_.alloc_failures_injected;
  result->migration_failures_injected = sys_.migration_failures_injected;

  if (race_ != nullptr) {
    result->races = race_->races_observed();
    for (const auto& r : race_->reports()) {
      result->race_reports.push_back(r.text);
    }
    if (g_race_detect && !race_->clean()) {
      for (const auto& r : race_->reports()) {
        std::fprintf(stderr, "%s\n\n", r.text.c_str());
      }
      std::fprintf(stderr,
                   "numalab::sanity: %" PRIu64
                   " racy access pair(s) detected; failing the run\n",
                   race_->races_observed());
      std::exit(1);
    }
  }
}

}  // namespace workloads
}  // namespace numalab
