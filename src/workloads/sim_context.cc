#include "src/workloads/sim_context.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace numalab {
namespace workloads {

namespace {
bool g_race_detect = false;
}  // namespace

bool GlobalRaceDetect() { return g_race_detect; }
void SetGlobalRaceDetect(bool on) { g_race_detect = on; }

const char* DatasetName(Dataset d) {
  switch (d) {
    case Dataset::kMovingCluster: return "MovingCluster";
    case Dataset::kSequential: return "Sequential";
    case Dataset::kZipf: return "Zipf";
  }
  return "?";
}

SimContext::SimContext(const RunConfig& config)
    : config_(config),
      machine_(topology::MachineByName(config.machine)),
      engine_(config.quantum),
      memsys_(std::make_unique<mem::MemSystem>(&machine_, &engine_,
                                               config.costs, &sys_)),
      sched_(&machine_, &engine_, memsys_.get(), config.affinity,
             config.seed + static_cast<uint64_t>(config.run_index) * 7919,
             &sys_),
      barrier_(&engine_, config.threads) {
  memsys_->os()->SetPolicy(config.policy, config.preferred_node);
  memsys_->SetScalarReference(config.scalar_mem_path);

  // Attach the race detector before any VThread (daemons included) spawns,
  // so every thread gets its fork edge.
  if (config.race_detect || GlobalRaceDetect()) {
    race_ = std::make_unique<sanity::RaceDetector>();
    engine_.SetRaceDetector(race_.get());
    memsys_->SetRaceDetector(race_.get());
  }

  alloc::AllocEnv aenv{&engine_, memsys_->os(), &memsys_->costs()};
  allocator_ = alloc::MakeAllocator(config.allocator, aenv, &machine_);

  if (config.thp) {
    memsys_->os()->SetThpFaultAlloc(true);
    thp_ = std::make_unique<osmodel::ThpDaemon>(&engine_, memsys_.get());
    thp_->Start();
  }
  if (config.autonuma) {
    autonuma_ = std::make_unique<osmodel::AutoNuma>(&machine_, &engine_,
                                                    memsys_.get(), &sched_);
    autonuma_->Start();
  }
  sched_.Start();
}

void SimContext::SpawnWorkers(const std::function<sim::Task(Env&)>& body) {
  for (int i = 0; i < config_.threads; ++i) {
    auto env = std::make_unique<Env>();
    env->engine = &engine_;
    env->mem = memsys_.get();
    env->alloc = allocator_.get();
    env->worker_index = i;
    env->num_workers = config_.threads;
    Env* raw = env.get();
    envs_.push_back(std::move(env));

    int hw = sched_.Place(i);
    sim::VThread* vt = engine_.Spawn(
        "worker" + std::to_string(i), hw, [raw, &body](sim::VThread* vt) {
          raw->self = vt;
          return body(*raw);
        });
    sched_.Register(vt);
  }
}

void SimContext::Finish(RunResult* result) {
  result->cycles = engine_.Run();
  result->report.threads = engine_.AggregateCounters();
  result->report.system = sys_;
  result->requested_peak = allocator_->stats().requested_peak;
  result->resident_peak = memsys_->os()->resident_peak();

  if (race_ != nullptr) {
    result->races = race_->races_observed();
    for (const auto& r : race_->reports()) {
      result->race_reports.push_back(r.text);
    }
    if (g_race_detect && !race_->clean()) {
      for (const auto& r : race_->reports()) {
        std::fprintf(stderr, "%s\n\n", r.text.c_str());
      }
      std::fprintf(stderr,
                   "numalab::sanity: %" PRIu64
                   " racy access pair(s) detected; failing the run\n",
                   race_->races_observed());
      std::exit(1);
    }
  }
}

}  // namespace workloads
}  // namespace numalab
