// W4 — index nested-loop join (Fig. 7).
//
// Same dataset as W3, but the build relation is indexed by a pre-built
// in-memory index: a single builder thread constructs it (Fig. 7e's build
// time), then all workers probe it for their partition of the large
// relation and materialize matches. The join phase performs few
// allocations (only output growth), so — as the paper observes — placement
// and lookup locality dominate and allocator gains are smaller than W3's.

#include <cstring>

#include "src/datagen/datagen.h"
#include "src/index/index.h"
#include "src/trace/export.h"
#include "src/trace/trace.h"
#include "src/workloads/sim_context.h"
#include "src/workloads/workloads.h"

namespace numalab {
namespace workloads {
namespace {

struct W4Shared {
  const datagen::JoinTuple* build = nullptr;
  const datagen::JoinTuple* probe = nullptr;
  uint64_t build_n = 0;
  uint64_t probe_n = 0;
  SimContext* ctx = nullptr;
  index::OrderedIndex* index = nullptr;
  sim::SimBarrier* built = nullptr;  // builder + all probers
  uint64_t build_cycles = 0;
  std::vector<uint64_t> matches;
};

struct W4Out {
  uint64_t* data = nullptr;
  uint64_t size = 0;
  uint64_t cap = 0;
};

// Fallible under a faultlab plan: a failed growth allocation drops the
// match, marks the run failed (env.Failed()), and returns false.
bool EmitW4(Env& env, W4Out* out, uint64_t a, uint64_t b, uint64_t c) {
  if (out->size + 3 > out->cap) {
    uint64_t new_cap = out->cap == 0 ? 1024 : out->cap * 2;
    auto* nd =
        static_cast<uint64_t*>(env.TryAlloc(new_cap * sizeof(uint64_t)));
    if (nd == nullptr) return false;
    if (out->size > 0) {
      env.ReadSpan(out->data, out->size * sizeof(uint64_t));
      env.WriteSpan(nd, out->size * sizeof(uint64_t));
      std::memcpy(nd, out->data, out->size * sizeof(uint64_t));
      env.Free(out->data);
    }
    out->data = nd;
    out->cap = new_cap;
  }
  out->data[out->size] = a;
  out->data[out->size + 1] = b;
  out->data[out->size + 2] = c;
  env.Write(&out->data[out->size], 3 * sizeof(uint64_t));
  out->size += 3;
  return true;
}

sim::Task W4Builder(Env& env, W4Shared& shared) {
  trace::ScopedSpan worker_span(env.self, "worker");
  {
    trace::ScopedSpan build_span(env.self, "build");
    for (uint64_t i = 0; i < shared.build_n; ++i) {
      env.Read(&shared.build[i], sizeof(datagen::JoinTuple));
      shared.index->Insert(env, shared.build[i].key,
                           shared.build[i].payload);
      co_await env.Checkpoint();
    }
  }
  shared.build_cycles = env.self->clock;
  co_await shared.built->Arrive();
}

sim::Task W4Prober(Env& env, W4Shared& shared) {
  trace::ScopedSpan worker_span(env.self, "worker");
  co_await shared.built->Arrive();  // wait for the index

  trace::ScopedSpan probe_span(env.self, "probe");
  // worker_index 0 is the builder; probers are 1..num_workers-1.
  int probers = env.num_workers - 1;
  int me = env.worker_index - 1;
  uint64_t per = shared.probe_n / static_cast<uint64_t>(probers);
  uint64_t lo = per * static_cast<uint64_t>(me);
  uint64_t hi = me == probers - 1 ? shared.probe_n : lo + per;

  W4Out out;
  uint64_t found = 0;
  for (uint64_t i = lo; i < hi && !env.Failed(); ++i) {
    env.Read(&shared.probe[i], sizeof(datagen::JoinTuple));
    uint64_t payload = 0;
    if (shared.index->Lookup(env, shared.probe[i].key, &payload)) {
      if (!EmitW4(env, &out, shared.probe[i].key, payload,
                  shared.probe[i].payload)) {
        break;
      }
      ++found;
    }
    co_await env.Checkpoint();
  }
  shared.matches[static_cast<size_t>(env.worker_index)] = found;
}

}  // namespace

RunResult RunW4IndexJoin(const RunConfig& config,
                         const std::string& index_name) {
  // Spawn threads+1 workers: one builder plus `threads` probers, so the
  // probe parallelism matches the paper's thread count.
  RunConfig cfg = config;
  cfg.threads = config.threads + 1;
  SimContext ctx(cfg);

  std::vector<datagen::JoinTuple> host_build, host_probe;
  datagen::MakeJoinInput(config.build_rows, config.probe_rows, config.seed,
                         &host_build, &host_probe);

  auto* build = ctx.AllocInput<datagen::JoinTuple>(host_build.size());
  auto* probe = ctx.AllocInput<datagen::JoinTuple>(host_probe.size());
  std::memcpy(build, host_build.data(),
              host_build.size() * sizeof(datagen::JoinTuple));
  std::memcpy(probe, host_probe.data(),
              host_probe.size() * sizeof(datagen::JoinTuple));
  ctx.PretouchInput(build, host_build.size() * sizeof(datagen::JoinTuple));
  ctx.PretouchInput(probe, host_probe.size() * sizeof(datagen::JoinTuple));

  auto idx = index::MakeIndex(index_name, config.seed);

  W4Shared shared;
  shared.build = build;
  shared.probe = probe;
  shared.build_n = host_build.size();
  shared.probe_n = host_probe.size();
  shared.ctx = &ctx;
  shared.index = idx.get();
  shared.built = ctx.barrier();  // sized to threads+1 by SimContext
  shared.matches.assign(static_cast<size_t>(cfg.threads), 0);

  ctx.SpawnWorkers([&](Env& env) {
    if (env.worker_index == 0) return W4Builder(env, shared);
    return W4Prober(env, shared);
  });

  RunResult result;
  ctx.Finish(&result);
  result.aux_cycles = shared.build_cycles;                // build time
  result.cycles = result.cycles > shared.build_cycles
                      ? result.cycles - shared.build_cycles
                      : 0;                                // join time
  for (uint64_t m : shared.matches) result.checksum += m;
  trace::CollectRun("W4-" + index_name, config, result);
  return result;
}

}  // namespace workloads
}  // namespace numalab
