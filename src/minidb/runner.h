// Runs one TPC-H query on one simulated machine under one system profile
// and OS configuration — the W5 experiment driver (Figs. 8 and 9).

#ifndef NUMALAB_MINIDB_RUNNER_H_
#define NUMALAB_MINIDB_RUNNER_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/minidb/queries.h"

namespace numalab {
namespace minidb {

struct TpchOptions {
  std::string machine = "A";
  std::string profile = "columnar-vec";
  int query = 1;
  double scale = 0.05;
  /// false: out-of-the-box OS (no affinity, AutoNUMA+THP on, ptmalloc).
  /// true:  the paper's tuned W5 setup (Sparse affinity, AutoNUMA off,
  ///        THP off except for profiles that keep it, First Touch,
  ///        tbbmalloc).
  bool tuned = false;
  std::string allocator_override;  ///< for the Fig. 9 allocator sweep
  int run_index = 0;
  uint64_t seed = 19920101;  ///< dataset + scheduler seed (dbgen default)
};

struct TpchResult {
  /// Propagated from the underlying RunResult (OK unless a faultlab plan
  /// failed an allocation or the deadline watchdog fired).
  Status status;
  uint64_t cycles = 0;
  QueryOutput out;
  int workers = 0;
};

TpchResult RunTpch(const TpchOptions& options);

}  // namespace minidb
}  // namespace numalab

#endif  // NUMALAB_MINIDB_RUNNER_H_
