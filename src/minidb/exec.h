// Morsel-driven parallel execution primitives for minidb.
//
// A query is a sequence of *phases* separated by barriers. Each phase is
// striped across the workers and processed in fixed-size morsels; the
// worker coroutine yields at every morsel boundary so virtual-thread clocks
// stay in lockstep and the NUMA contention model sees honest overlap.
//
// Five "system profiles" (SystemProfile) make one engine behave like the
// five architecturally divergent DBMSs of the paper's W5 experiment: they
// control intra-query parallelism, per-tuple interpretation overhead,
// vectorization, operator scratch allocation, and whether the tuned OS
// configuration keeps THP on (the paper leaves THP enabled for DBMSx).

#ifndef NUMALAB_MINIDB_EXEC_H_
#define NUMALAB_MINIDB_EXEC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/workloads/env.h"

namespace numalab {
namespace minidb {

struct SystemProfile {
  std::string name;
  /// Paper analogue, for documentation/reporting only.
  std::string models;
  bool vectorized = true;
  uint64_t per_tuple_cycles = 4;  ///< interpretation overhead per row
  uint64_t scratch_per_row = 8;   ///< operator scratch bytes per visited row
  bool thp_stays_on = false;      ///< tuned config keeps THP enabled
  int parallel_kind = 0;  ///< 0=all threads, 1=limited+rigid, 2=single

  /// Worker threads used for `query` on a machine with `hw` threads.
  int WorkersFor(int query, int hw) const;
};

/// The five profiles, in the paper's order: columnar-vectorized (MonetDB),
/// row multiprocess (PostgreSQL), row single-stream (MySQL), hybrid
/// parallel (DBMSx), hybrid vectorized (Quickstep).
const std::vector<SystemProfile>& AllProfiles();
const SystemProfile& ProfileByName(const std::string& name);

/// \brief Worker-side execution context.
struct QCtx {
  workloads::Env* env = nullptr;
  const SystemProfile* prof = nullptr;
};

/// \brief One barrier-delimited phase. `rows == 0` means a serial phase:
/// the body runs once on worker 0 with (0, 0).
struct Phase {
  uint64_t rows = 0;
  std::function<void(QCtx&, uint64_t, uint64_t)> body;
};

/// \brief A full query: phases plus a name for reporting.
struct QueryPlan {
  std::vector<Phase> phases;
};

inline constexpr uint64_t kMorselRows = 512;

/// Charges a sequential batch read of rows [lo, hi) for each listed column
/// (8-byte fixed width) plus the profile's per-tuple interpretation cost.
/// Row-oriented profiles pay a much higher per-tuple constant; the page
/// touches (and hence NUMA placement effects) are identical.
void ChargeScan(QCtx& q, std::initializer_list<const void*> cols,
                uint64_t lo, uint64_t hi);

/// Charges the profile's operator scratch allocation for `rows` rows
/// (allocate + free one morsel-sized block through the simulated
/// allocator).
void ChargeScratch(QCtx& q, uint64_t rows);

/// Charges a sort of n rows of `width` bytes (n log n compares plus one
/// read+write pass over the buffer).
void ChargeSort(QCtx& q, const void* buf, uint64_t n, uint64_t width);

/// \brief Open-addressing hash aggregation table in simulated memory.
/// Per-worker (unsynchronized); merge locals in a serial phase.
template <typename V>
class LocalAgg {
 public:
  LocalAgg() = default;
  ~LocalAgg() { /* slots freed with the run's allocator teardown */ }

  void Init(workloads::Env& env, uint64_t capacity_hint) {
    cap_ = 64;
    while (cap_ < capacity_hint * 2) cap_ <<= 1;
    mask_ = cap_ - 1;
    slots_ = static_cast<Slot*>(env.Alloc(cap_ * sizeof(Slot)));
    for (uint64_t i = 0; i < cap_; ++i) slots_[i].used = 0;
    env.Write(slots_, cap_ * sizeof(Slot));
  }

  bool initialized() const { return slots_ != nullptr; }
  uint64_t size() const { return size_; }

  /// Finds or creates the slot for `key`; charges the probe sequence.
  V* Upsert(workloads::Env& env, uint64_t key) {
    if (size_ * 10 >= cap_ * 7) Grow(env);
    uint64_t i = Hash(key) & mask_;
    for (;;) {
      env.Read(&slots_[i], sizeof(Slot));
      if (!slots_[i].used) {
        slots_[i].used = 1;
        slots_[i].key = key;
        slots_[i].v = V{};
        env.Write(&slots_[i], sizeof(Slot));
        ++size_;
        return &slots_[i].v;
      }
      if (slots_[i].key == key) return &slots_[i].v;
      i = (i + 1) & mask_;
    }
  }

  /// Lookup without insert; nullptr when absent. Charged.
  V* Find(workloads::Env& env, uint64_t key) {
    if (slots_ == nullptr) return nullptr;
    uint64_t i = Hash(key) & mask_;
    for (;;) {
      env.Read(&slots_[i], sizeof(Slot));
      if (!slots_[i].used) return nullptr;
      if (slots_[i].key == key) return &slots_[i].v;
      i = (i + 1) & mask_;
    }
  }

  /// Visits all entries (charged scan).
  template <typename F>
  void ForEach(workloads::Env& env, F&& fn) {
    if (slots_ == nullptr) return;
    env.Read(slots_, cap_ * sizeof(Slot));
    for (uint64_t i = 0; i < cap_; ++i) {
      if (slots_[i].used) fn(slots_[i].key, &slots_[i].v);
    }
  }

 private:
  struct Slot {
    uint64_t key;
    uint8_t used;
    V v;
  };

  static uint64_t Hash(uint64_t k) { return k * 0x9e3779b97f4a7c15ULL; }

  void Grow(workloads::Env& env) {
    Slot* old = slots_;
    uint64_t old_cap = cap_;
    cap_ <<= 1;
    mask_ = cap_ - 1;
    slots_ = static_cast<Slot*>(env.Alloc(cap_ * sizeof(Slot)));
    for (uint64_t i = 0; i < cap_; ++i) slots_[i].used = 0;
    env.Read(old, old_cap * sizeof(Slot));
    env.Write(slots_, cap_ * sizeof(Slot));
    for (uint64_t i = 0; i < old_cap; ++i) {
      if (!old[i].used) continue;
      uint64_t j = Hash(old[i].key) & mask_;
      while (slots_[j].used) j = (j + 1) & mask_;
      slots_[j] = old[i];
    }
    env.Free(old);
  }

  Slot* slots_ = nullptr;
  uint64_t cap_ = 0, mask_ = 0, size_ = 0;
};

}  // namespace minidb
}  // namespace numalab

#endif  // NUMALAB_MINIDB_EXEC_H_
