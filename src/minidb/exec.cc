#include "src/minidb/exec.h"

#include <cmath>

#include "src/common/logging.h"

namespace numalab {
namespace minidb {

int SystemProfile::WorkersFor(int query, int hw) const {
  switch (parallel_kind) {
    case 0:
      return hw;
    case 1: {
      // Rigid multiprocess planning: subquery-heavy statements fall back to
      // one worker (the paper's PostgreSQL observation).
      switch (query) {
        case 2: case 4: case 15: case 17: case 20: case 21: case 22:
          return 1;
        default:
          return std::max(1, hw / 4);
      }
    }
    case 2:
      return 1;  // no intra-query parallelism
  }
  return 1;
}

const std::vector<SystemProfile>& AllProfiles() {
  static const std::vector<SystemProfile> kProfiles = {
      {"columnar-vec", "MonetDB", /*vectorized=*/true,
       /*per_tuple_cycles=*/14, /*scratch_per_row=*/144,
       /*thp_stays_on=*/false, /*parallel_kind=*/0},
      {"row-mp", "PostgreSQL", /*vectorized=*/false,
       /*per_tuple_cycles=*/30, /*scratch_per_row=*/8,
       /*thp_stays_on=*/false, /*parallel_kind=*/1},
      {"row-st", "MySQL", /*vectorized=*/false,
       /*per_tuple_cycles=*/40, /*scratch_per_row=*/8,
       /*thp_stays_on=*/false, /*parallel_kind=*/2},
      {"hybrid-par", "DBMSx", /*vectorized=*/true,
       /*per_tuple_cycles=*/8, /*scratch_per_row=*/96,
       /*thp_stays_on=*/true, /*parallel_kind=*/0},
      {"hybrid-vec", "Quickstep", /*vectorized=*/true,
       /*per_tuple_cycles=*/22, /*scratch_per_row=*/16,
       /*thp_stays_on=*/false, /*parallel_kind=*/0},
  };
  return kProfiles;
}

const SystemProfile& ProfileByName(const std::string& name) {
  for (const auto& p : AllProfiles()) {
    if (p.name == name || p.models == name) return p;
  }
  NUMALAB_CHECK(false && "unknown system profile");
  return AllProfiles()[0];
}

void ChargeScan(QCtx& q, std::initializer_list<const void*> cols,
                uint64_t lo, uint64_t hi) {
  if (hi <= lo) return;
  uint64_t rows = hi - lo;
  for (const void* col : cols) {
    const char* base = static_cast<const char*>(col);
    q.env->ReadSpan(base + lo * 8, rows * 8);
  }
  q.env->Compute(rows * q.prof->per_tuple_cycles);
}

void ChargeScratch(QCtx& q, uint64_t rows) {
  uint64_t bytes = rows * q.prof->scratch_per_row;
  if (bytes == 0) return;
  void* p = q.env->Alloc(bytes);
  q.env->WriteSpan(p, std::min<uint64_t>(bytes, 4096));
  q.env->Free(p);
}

void ChargeSort(QCtx& q, const void* buf, uint64_t n, uint64_t width) {
  // `buf` is typically a host-side scratch vector (sort output staging),
  // not simulated memory — charge compute plus one modelled pass of
  // line-sized traffic, without touching the page table.
  (void)buf;
  if (n < 2) return;
  double logn = std::log2(static_cast<double>(n));
  q.env->Compute(static_cast<uint64_t>(static_cast<double>(n) * logn * 4.0));
  q.env->Compute(n * width / mem::kCacheLineBytes * 24);
}

}  // namespace minidb
}  // namespace numalab
