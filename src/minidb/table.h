// Columnar storage for minidb, the in-memory analytical engine behind the
// W5 (TPC-H) experiments.
//
// Tables are collections of fixed-width columns: int64 (keys, quantities,
// dates as day numbers, dictionary codes) and double (prices, rates).
// Column data lives in *simulated* memory (allocated through the run's
// SimAllocator), so the memory placement policy, allocator behaviour and
// NUMA topology govern every scan — which is the whole point of W5.
//
// Strings are dictionary-coded at generation time; predicates that would
// match substrings (LIKE) are evaluated against generator-provided code
// ranges/flags (see tpch_gen.h for the documented simplifications).

#ifndef NUMALAB_MINIDB_TABLE_H_
#define NUMALAB_MINIDB_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/alloc/allocator.h"
#include "src/common/logging.h"

namespace numalab {
namespace minidb {

/// \brief One fixed-width column in simulated memory.
class Column {
 public:
  enum class Type { kInt64, kDouble };

  Column(Type type, uint64_t rows, alloc::SimAllocator* alloc)
      : type_(type), rows_(rows), alloc_(alloc) {
    data_ = alloc->Alloc(rows * 8);
  }
  ~Column() {
    if (data_ != nullptr) alloc_->Free(data_);
  }
  Column(const Column&) = delete;
  Column& operator=(const Column&) = delete;

  Type type() const { return type_; }
  uint64_t rows() const { return rows_; }

  int64_t* i64() {
    NUMALAB_CHECK(type_ == Type::kInt64);
    return static_cast<int64_t*>(data_);
  }
  const int64_t* i64() const {
    return const_cast<Column*>(this)->i64();
  }
  double* f64() {
    NUMALAB_CHECK(type_ == Type::kDouble);
    return static_cast<double*>(data_);
  }
  const double* f64() const {
    return const_cast<Column*>(this)->f64();
  }
  const void* raw() const { return data_; }

 private:
  Type type_;
  uint64_t rows_;
  alloc::SimAllocator* alloc_;
  void* data_ = nullptr;
};

/// \brief A named set of equally long columns.
class Table {
 public:
  Table(std::string name, uint64_t rows) : name_(std::move(name)),
                                           rows_(rows) {}

  Column* AddInt64(const std::string& col, alloc::SimAllocator* alloc) {
    return Add(col, Column::Type::kInt64, alloc);
  }
  Column* AddDouble(const std::string& col, alloc::SimAllocator* alloc) {
    return Add(col, Column::Type::kDouble, alloc);
  }

  const Column& Col(const std::string& col) const {
    auto it = columns_.find(col);
    NUMALAB_CHECK(it != columns_.end());
    return *it->second;
  }
  const int64_t* I64(const std::string& col) const { return Col(col).i64(); }
  const double* F64(const std::string& col) const { return Col(col).f64(); }

  uint64_t rows() const { return rows_; }
  const std::string& name() const { return name_; }

 private:
  Column* Add(const std::string& col, Column::Type t,
              alloc::SimAllocator* alloc) {
    NUMALAB_CHECK(columns_.count(col) == 0);
    auto c = std::make_unique<Column>(t, rows_, alloc);
    Column* raw = c.get();
    columns_[col] = std::move(c);
    return raw;
  }

  std::string name_;
  uint64_t rows_;
  std::map<std::string, std::unique_ptr<Column>> columns_;
};

/// \brief The eight TPC-H tables.
struct Database {
  std::unique_ptr<Table> region, nation, supplier, customer, part, partsupp,
      orders, lineitem;
};

}  // namespace minidb
}  // namespace numalab

#endif  // NUMALAB_MINIDB_TABLE_H_
