#include "src/minidb/tpch_gen.h"

#include <cstring>
#include <map>
#include <mutex>

#include "src/common/rng.h"
#include "src/workloads/env.h"

namespace numalab {
namespace minidb {

namespace {

constexpr int kDaysPerMonth[] = {31, 28, 31, 30, 31, 30,
                                 31, 31, 30, 31, 30, 31};

bool IsLeap(int year) {
  return year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
}

}  // namespace

int64_t Date(int year, int month, int day) {
  NUMALAB_CHECK(year >= 1992 && year <= 1999);
  int64_t days = 0;
  for (int y = 1992; y < year; ++y) days += IsLeap(y) ? 366 : 365;
  for (int m = 1; m < month; ++m) {
    days += kDaysPerMonth[m - 1];
    if (m == 2 && IsLeap(year)) ++days;
  }
  return days + day - 1;
}

const HostDb& GenerateTpch(double scale, uint64_t seed) {
  static std::map<std::pair<double, uint64_t>, std::unique_ptr<HostDb>>
      cache;
  auto key = std::make_pair(scale, seed);
  auto it = cache.find(key);
  if (it != cache.end()) return *it->second;

  auto db = std::make_unique<HostDb>();
  HostDb& h = *db;
  h.scale = scale;
  Rng rng(seed);

  auto money = [&rng](double lo, double hi) {
    return lo + rng.NextDouble() * (hi - lo);
  };

  // --- region / nation (fixed) ---
  for (int64_t r = 0; r < 5; ++r) {
    h.r_regionkey.push_back(r);
    h.r_name.push_back(r);
  }
  for (int64_t n = 0; n < 25; ++n) {
    h.n_nationkey.push_back(n);
    h.n_name.push_back(n);
    h.n_regionkey.push_back(n % 5);
  }

  // --- supplier: 10,000 x SF ---
  uint64_t suppliers = std::max<uint64_t>(
      static_cast<uint64_t>(10000 * scale), 25);
  for (uint64_t i = 0; i < suppliers; ++i) {
    h.s_suppkey.push_back(static_cast<int64_t>(i + 1));
    h.s_nationkey.push_back(static_cast<int64_t>(rng.Uniform(25)));
    h.s_acctbal.push_back(money(-999.99, 9999.99));
    // Q16's '%Customer%Complaints%' hits ~5 of 10k suppliers.
    h.s_comment_complaints.push_back(rng.Bernoulli(0.0005) ? 1 : 0);
  }

  // --- customer: 150,000 x SF ---
  uint64_t customers = std::max<uint64_t>(
      static_cast<uint64_t>(150000 * scale), 100);
  for (uint64_t i = 0; i < customers; ++i) {
    int64_t nation = static_cast<int64_t>(rng.Uniform(25));
    h.c_custkey.push_back(static_cast<int64_t>(i + 1));
    h.c_nationkey.push_back(nation);
    h.c_acctbal.push_back(money(-999.99, 9999.99));
    h.c_mktsegment.push_back(static_cast<int64_t>(rng.Uniform(5)));
    h.c_cntrycode.push_back(nation + 10);  // leading phone digits
  }

  // --- part: 200,000 x SF ---
  uint64_t parts = std::max<uint64_t>(
      static_cast<uint64_t>(200000 * scale), 200);
  for (uint64_t i = 0; i < parts; ++i) {
    h.p_partkey.push_back(static_cast<int64_t>(i + 1));
    h.p_brand.push_back(static_cast<int64_t>(rng.Uniform(25)));
    h.p_type.push_back(static_cast<int64_t>(rng.Uniform(150)));
    h.p_size.push_back(static_cast<int64_t>(rng.Uniform(50)) + 1);
    h.p_container.push_back(static_cast<int64_t>(rng.Uniform(40)));
    h.p_color.push_back(static_cast<int64_t>(rng.Uniform(92)));
    h.p_retailprice.push_back(
        900.0 + static_cast<double>((i + 1) % 1000) / 10.0 +
        100.0 * static_cast<double>((i + 1) % 10));
  }

  // --- partsupp: 4 suppliers per part ---
  for (uint64_t i = 0; i < parts; ++i) {
    for (int j = 0; j < 4; ++j) {
      h.ps_partkey.push_back(static_cast<int64_t>(i + 1));
      uint64_t s = (i + 1 + static_cast<uint64_t>(j) *
                                (suppliers / 4 + 1)) % suppliers;
      h.ps_suppkey.push_back(static_cast<int64_t>(s + 1));
      h.ps_availqty.push_back(static_cast<int64_t>(rng.Uniform(9999)) + 1);
      h.ps_supplycost.push_back(money(1.0, 1000.0));
    }
  }

  // --- orders: 10 per customer (1,500,000 x SF); lineitem: 1..7 each ---
  uint64_t orders = customers * 10;
  const int64_t kLastOrderDate = Date(1998, 8, 2);
  for (uint64_t i = 0; i < orders; ++i) {
    int64_t okey = static_cast<int64_t>(i + 1);
    int64_t odate = static_cast<int64_t>(
        rng.Uniform(static_cast<uint64_t>(kLastOrderDate + 1)));
    h.o_orderkey.push_back(okey);
    h.o_custkey.push_back(
        static_cast<int64_t>(rng.Uniform(customers)) + 1);
    h.o_orderdate.push_back(odate);
    h.o_orderpriority.push_back(static_cast<int64_t>(rng.Uniform(5)));
    h.o_comment_special.push_back(rng.Bernoulli(0.01) ? 1 : 0);

    int nlines = 1 + static_cast<int>(rng.Uniform(7));
    double total = 0.0;
    int finished = 0;
    for (int l = 0; l < nlines; ++l) {
      int64_t pkey = static_cast<int64_t>(rng.Uniform(parts)) + 1;
      // One of the part's four suppliers, as in dbgen.
      int pick = static_cast<int>(rng.Uniform(4));
      int64_t skey =
          h.ps_suppkey[static_cast<size_t>((pkey - 1) * 4 + pick)];
      int64_t qty = static_cast<int64_t>(rng.Uniform(50)) + 1;
      double price =
          h.p_retailprice[static_cast<size_t>(pkey - 1)] *
          static_cast<double>(qty) / 10.0;
      double disc = static_cast<double>(rng.Uniform(11)) / 100.0;  // 0..0.10
      double tax = static_cast<double>(rng.Uniform(9)) / 100.0;    // 0..0.08
      int64_t shipdate = odate + 1 + static_cast<int64_t>(rng.Uniform(121));
      int64_t commitdate =
          odate + 30 + static_cast<int64_t>(rng.Uniform(61));
      int64_t receiptdate =
          shipdate + 1 + static_cast<int64_t>(rng.Uniform(30));

      h.l_orderkey.push_back(okey);
      h.l_partkey.push_back(pkey);
      h.l_suppkey.push_back(skey);
      h.l_quantity.push_back(qty);
      h.l_extendedprice.push_back(price);
      h.l_discount.push_back(disc);
      h.l_tax.push_back(tax);
      // RETURNFLAG: R/A for old (shipped before a 1995 cutoff), N after.
      const int64_t kCutoff = Date(1995, 6, 17);
      int64_t rf;
      if (receiptdate <= kCutoff) {
        rf = rng.Bernoulli(0.5) ? 0 : 1;  // R or A
      } else {
        rf = 2;  // N
      }
      h.l_returnflag.push_back(rf);
      int64_t ls = shipdate > kCutoff ? 1 : 0;  // O vs F, approximately
      h.l_linestatus.push_back(ls);
      if (ls == 0) ++finished;
      h.l_shipdate.push_back(shipdate);
      h.l_commitdate.push_back(commitdate);
      h.l_receiptdate.push_back(receiptdate);
      h.l_shipmode.push_back(static_cast<int64_t>(rng.Uniform(7)));
      h.l_shipinstruct.push_back(static_cast<int64_t>(rng.Uniform(4)));
      total += price * (1.0 - disc) * (1.0 + tax);
    }
    h.o_totalprice.push_back(total);
    // Order status follows its lines: F if all finished, O if none, else P.
    h.o_orderstatus.push_back(finished == nlines ? 0
                              : finished == 0    ? 1
                                                 : 2);
  }

  const HostDb& ref = *db;
  cache[key] = std::move(db);
  return ref;
}

namespace {

template <typename T>
void FillColumn(Table* table, const std::string& name,
                const std::vector<T>& src, alloc::SimAllocator* alloc,
                mem::MemSystem* memsys) {
  Column* col;
  if constexpr (std::is_same_v<T, int64_t>) {
    col = table->AddInt64(name, alloc);
    std::memcpy(col->i64(), src.data(), src.size() * sizeof(T));
  } else {
    col = table->AddDouble(name, alloc);
    std::memcpy(col->f64(), src.data(), src.size() * sizeof(T));
  }
  workloads::PretouchAsNode(memsys, col->raw(), src.size() * sizeof(T),
                            /*node=*/0);
}

}  // namespace

std::unique_ptr<Database> LoadTpch(const HostDb& h,
                                   alloc::SimAllocator* alloc,
                                   mem::MemSystem* memsys) {
  auto db = std::make_unique<Database>();

  db->region = std::make_unique<Table>("region", h.r_regionkey.size());
  FillColumn(db->region.get(), "r_regionkey", h.r_regionkey, alloc, memsys);
  FillColumn(db->region.get(), "r_name", h.r_name, alloc, memsys);

  db->nation = std::make_unique<Table>("nation", h.n_nationkey.size());
  FillColumn(db->nation.get(), "n_nationkey", h.n_nationkey, alloc, memsys);
  FillColumn(db->nation.get(), "n_name", h.n_name, alloc, memsys);
  FillColumn(db->nation.get(), "n_regionkey", h.n_regionkey, alloc, memsys);

  db->supplier = std::make_unique<Table>("supplier", h.s_suppkey.size());
  FillColumn(db->supplier.get(), "s_suppkey", h.s_suppkey, alloc, memsys);
  FillColumn(db->supplier.get(), "s_nationkey", h.s_nationkey, alloc,
             memsys);
  FillColumn(db->supplier.get(), "s_acctbal", h.s_acctbal, alloc, memsys);
  FillColumn(db->supplier.get(), "s_comment_complaints",
             h.s_comment_complaints, alloc, memsys);

  db->customer = std::make_unique<Table>("customer", h.c_custkey.size());
  FillColumn(db->customer.get(), "c_custkey", h.c_custkey, alloc, memsys);
  FillColumn(db->customer.get(), "c_nationkey", h.c_nationkey, alloc,
             memsys);
  FillColumn(db->customer.get(), "c_acctbal", h.c_acctbal, alloc, memsys);
  FillColumn(db->customer.get(), "c_mktsegment", h.c_mktsegment, alloc,
             memsys);
  FillColumn(db->customer.get(), "c_cntrycode", h.c_cntrycode, alloc,
             memsys);

  db->part = std::make_unique<Table>("part", h.p_partkey.size());
  FillColumn(db->part.get(), "p_partkey", h.p_partkey, alloc, memsys);
  FillColumn(db->part.get(), "p_brand", h.p_brand, alloc, memsys);
  FillColumn(db->part.get(), "p_type", h.p_type, alloc, memsys);
  FillColumn(db->part.get(), "p_size", h.p_size, alloc, memsys);
  FillColumn(db->part.get(), "p_container", h.p_container, alloc, memsys);
  FillColumn(db->part.get(), "p_color", h.p_color, alloc, memsys);
  FillColumn(db->part.get(), "p_retailprice", h.p_retailprice, alloc,
             memsys);

  db->partsupp = std::make_unique<Table>("partsupp", h.ps_partkey.size());
  FillColumn(db->partsupp.get(), "ps_partkey", h.ps_partkey, alloc, memsys);
  FillColumn(db->partsupp.get(), "ps_suppkey", h.ps_suppkey, alloc, memsys);
  FillColumn(db->partsupp.get(), "ps_availqty", h.ps_availqty, alloc,
             memsys);
  FillColumn(db->partsupp.get(), "ps_supplycost", h.ps_supplycost, alloc,
             memsys);

  db->orders = std::make_unique<Table>("orders", h.o_orderkey.size());
  FillColumn(db->orders.get(), "o_orderkey", h.o_orderkey, alloc, memsys);
  FillColumn(db->orders.get(), "o_custkey", h.o_custkey, alloc, memsys);
  FillColumn(db->orders.get(), "o_orderdate", h.o_orderdate, alloc, memsys);
  FillColumn(db->orders.get(), "o_orderpriority", h.o_orderpriority, alloc,
             memsys);
  FillColumn(db->orders.get(), "o_orderstatus", h.o_orderstatus, alloc,
             memsys);
  FillColumn(db->orders.get(), "o_comment_special", h.o_comment_special,
             alloc, memsys);
  FillColumn(db->orders.get(), "o_totalprice", h.o_totalprice, alloc,
             memsys);

  db->lineitem = std::make_unique<Table>("lineitem", h.l_orderkey.size());
  FillColumn(db->lineitem.get(), "l_orderkey", h.l_orderkey, alloc, memsys);
  FillColumn(db->lineitem.get(), "l_partkey", h.l_partkey, alloc, memsys);
  FillColumn(db->lineitem.get(), "l_suppkey", h.l_suppkey, alloc, memsys);
  FillColumn(db->lineitem.get(), "l_quantity", h.l_quantity, alloc, memsys);
  FillColumn(db->lineitem.get(), "l_returnflag", h.l_returnflag, alloc,
             memsys);
  FillColumn(db->lineitem.get(), "l_linestatus", h.l_linestatus, alloc,
             memsys);
  FillColumn(db->lineitem.get(), "l_shipdate", h.l_shipdate, alloc, memsys);
  FillColumn(db->lineitem.get(), "l_commitdate", h.l_commitdate, alloc,
             memsys);
  FillColumn(db->lineitem.get(), "l_receiptdate", h.l_receiptdate, alloc,
             memsys);
  FillColumn(db->lineitem.get(), "l_shipmode", h.l_shipmode, alloc, memsys);
  FillColumn(db->lineitem.get(), "l_shipinstruct", h.l_shipinstruct, alloc,
             memsys);
  FillColumn(db->lineitem.get(), "l_extendedprice", h.l_extendedprice,
             alloc, memsys);
  FillColumn(db->lineitem.get(), "l_discount", h.l_discount, alloc, memsys);
  FillColumn(db->lineitem.get(), "l_tax", h.l_tax, alloc, memsys);

  return db;
}

}  // namespace minidb
}  // namespace numalab
