// TPC-H dataset generator (dbgen substitute) for minidb.
//
// Generates all eight tables at a given scale factor with the spec's
// cardinalities (scaled), key relationships, value ranges and date rules.
// Strings are dictionary-coded; where a query needs a substring predicate
// (LIKE) the generator emits an equivalent dictionary code or boolean flag
// with the spec's selectivity:
//   * p_type / p_container / p_brand: full dictionaries (150/40/25 codes).
//   * p_color: the first word of P_NAME (92 colors) — used by Q9's
//     "%green%" filter.
//   * o_comment_special: 1 iff the comment would match Q13's
//     '%special%requests%' (~1% of orders, per the spec's comment grammar).
//   * s_comment_complaints: 1 iff it would match Q16's
//     '%Customer%Complaints%' (~0.05%).
//   * c_cntrycode: the two leading phone digits (nationkey + 10), used by
//     Q22's substring().
//
// Generation is host-side and cached per (scale, seed); loading copies the
// columns into simulated memory through the run's allocator, then marks the
// pages as first-touched by the loader thread (node 0) — matching a real
// single-process bulk load, whose placement the paper's W5 experiments
// inherit.

#ifndef NUMALAB_MINIDB_TPCH_GEN_H_
#define NUMALAB_MINIDB_TPCH_GEN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/mem/mem_system.h"
#include "src/minidb/table.h"

namespace numalab {
namespace minidb {

/// Day number (days since 1992-01-01) for a calendar date; supports the
/// TPC-H range 1992..1998 with its leap years.
int64_t Date(int year, int month, int day);

/// \brief Host-side (unsimulated) generated dataset.
struct HostDb {
  double scale = 0.0;
  // region
  std::vector<int64_t> r_regionkey, r_name;
  // nation
  std::vector<int64_t> n_nationkey, n_name, n_regionkey;
  // supplier
  std::vector<int64_t> s_suppkey, s_nationkey, s_comment_complaints;
  std::vector<double> s_acctbal;
  // customer
  std::vector<int64_t> c_custkey, c_nationkey, c_mktsegment, c_cntrycode;
  std::vector<double> c_acctbal;
  // part
  std::vector<int64_t> p_partkey, p_brand, p_type, p_size, p_container,
      p_color;
  std::vector<double> p_retailprice;
  // partsupp
  std::vector<int64_t> ps_partkey, ps_suppkey, ps_availqty;
  std::vector<double> ps_supplycost;
  // orders
  std::vector<int64_t> o_orderkey, o_custkey, o_orderdate, o_orderpriority,
      o_orderstatus, o_comment_special;
  std::vector<double> o_totalprice;
  // lineitem
  std::vector<int64_t> l_orderkey, l_partkey, l_suppkey, l_quantity,
      l_returnflag, l_linestatus, l_shipdate, l_commitdate, l_receiptdate,
      l_shipmode, l_shipinstruct;
  std::vector<double> l_extendedprice, l_discount, l_tax;
};

/// Generates (or returns the cached) host dataset for `scale`.
const HostDb& GenerateTpch(double scale, uint64_t seed = 19920101);

/// Copies the host dataset into simulated memory via `alloc` and pretouches
/// every column as loaded by node 0.
std::unique_ptr<Database> LoadTpch(const HostDb& host,
                                   alloc::SimAllocator* alloc,
                                   mem::MemSystem* memsys);

}  // namespace minidb
}  // namespace numalab

#endif  // NUMALAB_MINIDB_TPCH_GEN_H_
