#include "src/minidb/queries.h"

#include <algorithm>
#include <cmath>

#include "src/minidb/tpch_gen.h"

namespace numalab {
namespace minidb {

namespace {

using workloads::Env;

// Dictionary constants (see tpch_gen.h):
constexpr int64_t kSegBuilding = 1;
constexpr int64_t kRegionAsia = 2;
constexpr int64_t kRegionAmerica = 1;
constexpr int64_t kRegionEurope = 3;
constexpr int64_t kNationFrance = 6;
constexpr int64_t kNationGermany = 7;
constexpr int64_t kNationBrazil = 2;
constexpr int64_t kNationCanada = 3;
constexpr int64_t kNationSaudi = 20;
constexpr int64_t kFlagReturned = 0;        // l_returnflag = 'R'
constexpr int64_t kStatusF = 0;             // o_orderstatus = 'F'
constexpr int64_t kModeMail = 2, kModeShip = 5;
constexpr int64_t kModeAir = 0, kModeRegAir = 4;
constexpr int64_t kInstructDeliverInPerson = 1;
constexpr int64_t kColorGreen = 31, kColorForest = 27;
constexpr int64_t kTypeEconomyAnodizedSteel = 103;  // s1=4,s2=0,s3=3

int64_t RegionOfNation(int64_t nation) { return nation % 5; }
int64_t YearOfDay(int64_t day) {
  // Inverse of Date(): good enough for grouping by year.
  if (day < Date(1993, 1, 1)) return 1992;
  if (day < Date(1994, 1, 1)) return 1993;
  if (day < Date(1995, 1, 1)) return 1994;
  if (day < Date(1996, 1, 1)) return 1995;
  if (day < Date(1997, 1, 1)) return 1996;
  if (day < Date(1998, 1, 1)) return 1997;
  return 1998;
}

Phase Serial(std::function<void(QCtx&)> fn) {
  return Phase{0, [fn = std::move(fn)](QCtx& q, uint64_t, uint64_t) {
                 fn(q);
               }};
}

Phase Par(uint64_t rows,
          std::function<void(QCtx&, uint64_t, uint64_t)> body) {
  return Phase{rows, std::move(body)};
}

LocalAgg<AggVal>& Local(QueryState& st, QCtx& q) {
  auto& l = st.locals[static_cast<size_t>(q.env->worker_index)];
  if (!l.initialized()) l.Init(*q.env, 512);
  return l;
}
LocalAgg<AggVal>& Local2(QueryState& st, QCtx& q) {
  auto& l = st.locals2[static_cast<size_t>(q.env->worker_index)];
  if (!l.initialized()) l.Init(*q.env, 512);
  return l;
}

// Merges all per-worker locals into st.global, summing fields.
Phase MergeLocals(QueryState& st,
                  std::vector<LocalAgg<AggVal>> QueryState::* which =
                      &QueryState::locals,
                  LocalAgg<AggVal> QueryState::* into = &QueryState::global) {
  return Serial([&st, which, into](QCtx& q) {
    auto& dst = st.*into;
    if (!dst.initialized()) dst.Init(*q.env, 1024);
    for (auto& l : st.*which) {
      l.ForEach(*q.env, [&](uint64_t key, AggVal* src) {
        AggVal* d = dst.Upsert(*q.env, key);
        for (int i = 0; i < 6; ++i) d->v[i] += src->v[i];
        for (int i = 0; i < 2; ++i) d->c[i] += src->c[i];
      });
    }
  });
}

// Creates a shared hash table sized for ~n entries.
Phase MakeHt(QueryState& st,
             std::unique_ptr<index::ConcurrentHashTable<int64_t>>
                 QueryState::* slot,
             uint64_t n) {
  return Serial([&st, slot, n](QCtx& q) {
    (st.*slot) = std::make_unique<index::ConcurrentHashTable<int64_t>>(
        *q.env, std::max<uint64_t>(n, 64));
  });
}

}  // namespace

QueryPlan BuildTpchPlan(int q_num, QueryState* stp) {
  QueryState& st = *stp;
  const Database& db = *st.db;
  const Table& L = *db.lineitem;
  const Table& O = *db.orders;
  const Table& C = *db.customer;
  const Table& P = *db.part;
  const Table& S = *db.supplier;
  const Table& PS = *db.partsupp;

  QueryPlan plan;
  auto& ph = plan.phases;

  switch (q_num) {
    // ---------------------------------------------------------------- Q1
    case 1: {
      const int64_t cutoff = Date(1998, 9, 2);
      ph.push_back(Par(L.rows(), [&st, &L, cutoff](QCtx& q, uint64_t lo,
                                                   uint64_t hi) {
        const auto* ship = L.I64("l_shipdate");
        const auto* rf = L.I64("l_returnflag");
        const auto* ls = L.I64("l_linestatus");
        const auto* qty = L.I64("l_quantity");
        const auto* price = L.F64("l_extendedprice");
        const auto* disc = L.F64("l_discount");
        const auto* tax = L.F64("l_tax");
        ChargeScan(q, {ship, rf, ls, qty, price, disc, tax}, lo, hi);
        ChargeScratch(q, hi - lo);
        auto& local = Local(st, q);
        for (uint64_t i = lo; i < hi; ++i) {
          if (ship[i] > cutoff) continue;
          AggVal* a = local.Upsert(*q.env,
                                   static_cast<uint64_t>(rf[i] * 2 + ls[i]));
          a->v[0] += static_cast<double>(qty[i]);
          a->v[1] += price[i];
          a->v[2] += price[i] * (1 - disc[i]);
          a->v[3] += price[i] * (1 - disc[i]) * (1 + tax[i]);
          a->v[4] += disc[i];
          a->c[0] += 1;
        }
      }));
      ph.push_back(MergeLocals(st));
      ph.push_back(Serial([&st](QCtx& q) {
        double digest = 0;
        uint64_t rows = 0;
        st.global.ForEach(*q.env, [&](uint64_t key, AggVal* a) {
          digest += static_cast<double>(key + 1) * (a->v[3] / 1e6) +
                    static_cast<double>(a->c[0]);
          ++rows;
        });
        st.out = {rows, digest};
      }));
      break;
    }

    // ---------------------------------------------------------------- Q2
    case 2: {
      ph.push_back(MakeHt(st, &QueryState::ht1, P.rows() / 32));
      ph.push_back(Par(P.rows(), [&st, &P](QCtx& q, uint64_t lo,
                                           uint64_t hi) {
        const auto* size = P.I64("p_size");
        const auto* type = P.I64("p_type");
        const auto* key = P.I64("p_partkey");
        ChargeScan(q, {size, type, key}, lo, hi);
        for (uint64_t i = lo; i < hi; ++i) {
          if (size[i] == 15 && type[i] % 5 == 2) {  // '%BRASS'
            st.ht1->UpsertSet(*q.env, static_cast<uint64_t>(key[i]), 1);
          }
        }
      }));
      ph.push_back(Par(PS.rows(), [&st, &PS, &S](QCtx& q, uint64_t lo,
                                                 uint64_t hi) {
        const auto* pk = PS.I64("ps_partkey");
        const auto* sk = PS.I64("ps_suppkey");
        const auto* cost = PS.F64("ps_supplycost");
        const auto* snat = S.I64("s_nationkey");
        ChargeScan(q, {pk, sk, cost}, lo, hi);
        ChargeScratch(q, hi - lo);
        auto& local = Local(st, q);
        for (uint64_t i = lo; i < hi; ++i) {
          if (st.ht1->Find(*q.env, static_cast<uint64_t>(pk[i])) == nullptr)
            continue;
          q.env->Read(&snat[sk[i] - 1], 8);
          if (RegionOfNation(snat[sk[i] - 1]) != kRegionEurope) continue;
          AggVal* a = local.Upsert(*q.env, static_cast<uint64_t>(pk[i]));
          if (a->c[0] == 0 || cost[i] < a->v[0]) {
            a->v[0] = cost[i];
            a->v[1] = static_cast<double>(sk[i]);
          }
          a->c[0] += 1;
        }
      }));
      // Min across workers, then sum the winning suppliers' balances.
      ph.push_back(Serial([&st, &S](QCtx& q) {
        if (!st.global.initialized()) st.global.Init(*q.env, 1024);
        for (auto& l : st.locals) {
          l.ForEach(*q.env, [&](uint64_t key, AggVal* src) {
            AggVal* d = st.global.Upsert(*q.env, key);
            if (d->c[0] == 0 || src->v[0] < d->v[0]) {
              d->v[0] = src->v[0];
              d->v[1] = src->v[1];
            }
            d->c[0] += src->c[0];
          });
        }
        const auto* bal = S.F64("s_acctbal");
        double digest = 0;
        uint64_t rows = 0;
        st.global.ForEach(*q.env, [&](uint64_t, AggVal* a) {
          auto s = static_cast<uint64_t>(a->v[1]);
          q.env->Read(&bal[s - 1], 8);
          digest += bal[s - 1] + a->v[0];
          ++rows;
        });
        st.out = {rows, digest};
      }));
      break;
    }

    // ---------------------------------------------------------------- Q3
    case 3: {
      const int64_t cutoff = Date(1995, 3, 15);
      ph.push_back(MakeHt(st, &QueryState::ht1, C.rows() / 4));
      ph.push_back(Par(C.rows(), [&st, &C](QCtx& q, uint64_t lo,
                                           uint64_t hi) {
        const auto* seg = C.I64("c_mktsegment");
        const auto* key = C.I64("c_custkey");
        ChargeScan(q, {seg, key}, lo, hi);
        for (uint64_t i = lo; i < hi; ++i) {
          if (seg[i] == kSegBuilding) {
            st.ht1->UpsertSet(*q.env, static_cast<uint64_t>(key[i]), 1);
          }
        }
      }));
      ph.push_back(MakeHt(st, &QueryState::ht2, O.rows() / 2));
      ph.push_back(Par(O.rows(), [&st, &O, cutoff](QCtx& q, uint64_t lo,
                                                   uint64_t hi) {
        const auto* okey = O.I64("o_orderkey");
        const auto* cust = O.I64("o_custkey");
        const auto* date = O.I64("o_orderdate");
        ChargeScan(q, {okey, cust, date}, lo, hi);
        for (uint64_t i = lo; i < hi; ++i) {
          if (date[i] < cutoff &&
              st.ht1->Find(*q.env, static_cast<uint64_t>(cust[i]))) {
            st.ht2->UpsertSet(*q.env, static_cast<uint64_t>(okey[i]), date[i]);
          }
        }
      }));
      ph.push_back(Par(L.rows(), [&st, &L, cutoff](QCtx& q, uint64_t lo,
                                                   uint64_t hi) {
        const auto* okey = L.I64("l_orderkey");
        const auto* ship = L.I64("l_shipdate");
        const auto* price = L.F64("l_extendedprice");
        const auto* disc = L.F64("l_discount");
        ChargeScan(q, {okey, ship, price, disc}, lo, hi);
        ChargeScratch(q, hi - lo);
        auto& local = Local(st, q);
        for (uint64_t i = lo; i < hi; ++i) {
          if (ship[i] > cutoff &&
              st.ht2->Find(*q.env, static_cast<uint64_t>(okey[i]))) {
            local.Upsert(*q.env, static_cast<uint64_t>(okey[i]))->v[0] +=
                price[i] * (1 - disc[i]);
          }
        }
      }));
      ph.push_back(MergeLocals(st));
      ph.push_back(Serial([&st](QCtx& q) {
        std::vector<std::pair<double, uint64_t>> rows;
        st.global.ForEach(*q.env, [&](uint64_t key, AggVal* a) {
          rows.emplace_back(a->v[0], key);
        });
        ChargeSort(q, rows.data(), rows.size(), 16);
        std::sort(rows.rbegin(), rows.rend());
        double digest = 0;
        uint64_t n = std::min<uint64_t>(rows.size(), 10);
        for (uint64_t i = 0; i < n; ++i) digest += rows[i].first;
        st.out = {n, digest};
      }));
      break;
    }

    // ---------------------------------------------------------------- Q4
    case 4: {
      const int64_t lo_d = Date(1993, 7, 1), hi_d = Date(1993, 10, 1);
      ph.push_back(MakeHt(st, &QueryState::ht1, O.rows() / 2));
      ph.push_back(Par(L.rows(), [&st, &L](QCtx& q, uint64_t lo,
                                           uint64_t hi) {
        const auto* okey = L.I64("l_orderkey");
        const auto* commit = L.I64("l_commitdate");
        const auto* receipt = L.I64("l_receiptdate");
        ChargeScan(q, {okey, commit, receipt}, lo, hi);
        for (uint64_t i = lo; i < hi; ++i) {
          if (commit[i] < receipt[i]) {
            st.ht1->UpsertSet(*q.env, static_cast<uint64_t>(okey[i]), 1);
          }
        }
      }));
      ph.push_back(Par(O.rows(), [&st, &O, lo_d, hi_d](QCtx& q, uint64_t lo,
                                                       uint64_t hi) {
        const auto* okey = O.I64("o_orderkey");
        const auto* date = O.I64("o_orderdate");
        const auto* prio = O.I64("o_orderpriority");
        ChargeScan(q, {okey, date, prio}, lo, hi);
        auto& local = Local(st, q);
        for (uint64_t i = lo; i < hi; ++i) {
          if (date[i] >= lo_d && date[i] < hi_d &&
              st.ht1->Find(*q.env, static_cast<uint64_t>(okey[i]))) {
            local.Upsert(*q.env, static_cast<uint64_t>(prio[i]))->c[0] += 1;
          }
        }
      }));
      ph.push_back(MergeLocals(st));
      ph.push_back(Serial([&st](QCtx& q) {
        double digest = 0;
        uint64_t rows = 0;
        st.global.ForEach(*q.env, [&](uint64_t key, AggVal* a) {
          digest += static_cast<double>((key + 1) * a->c[0]);
          ++rows;
        });
        st.out = {rows, digest};
      }));
      break;
    }

    // ---------------------------------------------------------------- Q5
    case 5: {
      const int64_t y94 = Date(1994, 1, 1), y95 = Date(1995, 1, 1);
      ph.push_back(MakeHt(st, &QueryState::ht1, C.rows() / 4));
      ph.push_back(Par(C.rows(), [&st, &C](QCtx& q, uint64_t lo,
                                           uint64_t hi) {
        const auto* key = C.I64("c_custkey");
        const auto* nat = C.I64("c_nationkey");
        ChargeScan(q, {key, nat}, lo, hi);
        for (uint64_t i = lo; i < hi; ++i) {
          if (RegionOfNation(nat[i]) == kRegionAsia) {
            st.ht1->UpsertSet(*q.env, static_cast<uint64_t>(key[i]), nat[i]);
          }
        }
      }));
      ph.push_back(MakeHt(st, &QueryState::ht2, O.rows() / 8));
      ph.push_back(Par(O.rows(), [&st, &O, y94, y95](QCtx& q, uint64_t lo,
                                                     uint64_t hi) {
        const auto* okey = O.I64("o_orderkey");
        const auto* cust = O.I64("o_custkey");
        const auto* date = O.I64("o_orderdate");
        ChargeScan(q, {okey, cust, date}, lo, hi);
        for (uint64_t i = lo; i < hi; ++i) {
          if (date[i] < y94 || date[i] >= y95) continue;
          auto* e = st.ht1->Find(*q.env, static_cast<uint64_t>(cust[i]));
          if (e != nullptr) {
            st.ht2->UpsertSet(*q.env, static_cast<uint64_t>(okey[i]),
                              e->value);  // customer nation
          }
        }
      }));
      ph.push_back(Par(L.rows(), [&st, &L, &S](QCtx& q, uint64_t lo,
                                               uint64_t hi) {
        const auto* okey = L.I64("l_orderkey");
        const auto* supp = L.I64("l_suppkey");
        const auto* price = L.F64("l_extendedprice");
        const auto* disc = L.F64("l_discount");
        const auto* snat = S.I64("s_nationkey");
        ChargeScan(q, {okey, supp, price, disc}, lo, hi);
        ChargeScratch(q, hi - lo);
        auto& local = Local(st, q);
        for (uint64_t i = lo; i < hi; ++i) {
          auto* e = st.ht2->Find(*q.env, static_cast<uint64_t>(okey[i]));
          if (e == nullptr) continue;
          q.env->Read(&snat[supp[i] - 1], 8);
          if (snat[supp[i] - 1] == e->value) {  // local supplier
            local.Upsert(*q.env, static_cast<uint64_t>(e->value))->v[0] +=
                price[i] * (1 - disc[i]);
          }
        }
      }));
      ph.push_back(MergeLocals(st));
      ph.push_back(Serial([&st](QCtx& q) {
        double digest = 0;
        uint64_t rows = 0;
        st.global.ForEach(*q.env, [&](uint64_t key, AggVal* a) {
          digest += a->v[0] + static_cast<double>(key);
          ++rows;
        });
        st.out = {rows, digest};
      }));
      break;
    }

    // ---------------------------------------------------------------- Q6
    case 6: {
      const int64_t y94 = Date(1994, 1, 1), y95 = Date(1995, 1, 1);
      ph.push_back(Par(L.rows(), [&st, &L, y94, y95](QCtx& q, uint64_t lo,
                                                     uint64_t hi) {
        const auto* ship = L.I64("l_shipdate");
        const auto* qty = L.I64("l_quantity");
        const auto* price = L.F64("l_extendedprice");
        const auto* disc = L.F64("l_discount");
        ChargeScan(q, {ship, qty, price, disc}, lo, hi);
        double sum = 0;
        for (uint64_t i = lo; i < hi; ++i) {
          if (ship[i] >= y94 && ship[i] < y95 && disc[i] >= 0.049 &&
              disc[i] <= 0.071 && qty[i] < 24) {
            sum += price[i] * disc[i];
          }
        }
        st.scalars[static_cast<size_t>(q.env->worker_index)] += sum;
      }));
      ph.push_back(Serial([&st](QCtx&) {
        double total = 0;
        for (double s : st.scalars) total += s;
        st.out = {1, total};
      }));
      break;
    }

    // ---------------------------------------------------------------- Q7
    case 7: {
      const int64_t y95 = Date(1995, 1, 1), y97 = Date(1997, 1, 1);
      ph.push_back(MakeHt(st, &QueryState::ht3, O.rows() / 8));
      ph.push_back(Par(O.rows(), [&st, &O, &C](QCtx& q, uint64_t lo,
                                               uint64_t hi) {
        const auto* okey = O.I64("o_orderkey");
        const auto* cust = O.I64("o_custkey");
        const auto* cnat = C.I64("c_nationkey");
        ChargeScan(q, {okey, cust}, lo, hi);
        for (uint64_t i = lo; i < hi; ++i) {
          q.env->Read(&cnat[cust[i] - 1], 8);
          int64_t n = cnat[cust[i] - 1];
          if (n == kNationFrance || n == kNationGermany) {
            st.ht3->UpsertSet(*q.env, static_cast<uint64_t>(okey[i]), n);
          }
        }
      }));
      ph.push_back(Par(L.rows(), [&st, &L, &S, y95, y97](
                                     QCtx& q, uint64_t lo, uint64_t hi) {
        const auto* okey = L.I64("l_orderkey");
        const auto* supp = L.I64("l_suppkey");
        const auto* ship = L.I64("l_shipdate");
        const auto* price = L.F64("l_extendedprice");
        const auto* disc = L.F64("l_discount");
        const auto* snat = S.I64("s_nationkey");
        ChargeScan(q, {okey, supp, ship, price, disc}, lo, hi);
        ChargeScratch(q, hi - lo);
        auto& local = Local(st, q);
        for (uint64_t i = lo; i < hi; ++i) {
          if (ship[i] < y95 || ship[i] >= y97) continue;
          auto* e = st.ht3->Find(*q.env, static_cast<uint64_t>(okey[i]));
          if (e == nullptr) continue;
          q.env->Read(&snat[supp[i] - 1], 8);
          int64_t sn = snat[supp[i] - 1];
          int64_t cn = e->value;
          bool pair = (sn == kNationFrance && cn == kNationGermany) ||
                      (sn == kNationGermany && cn == kNationFrance);
          if (!pair) continue;
          uint64_t key = static_cast<uint64_t>(
              (sn * 32 + cn) * 8 + (YearOfDay(ship[i]) - 1992));
          local.Upsert(*q.env, key)->v[0] += price[i] * (1 - disc[i]);
        }
      }));
      ph.push_back(MergeLocals(st));
      ph.push_back(Serial([&st](QCtx& q) {
        double digest = 0;
        uint64_t rows = 0;
        st.global.ForEach(*q.env, [&](uint64_t key, AggVal* a) {
          digest += a->v[0] + static_cast<double>(key);
          ++rows;
        });
        st.out = {rows, digest};
      }));
      break;
    }

    // ---------------------------------------------------------------- Q8
    case 8: {
      const int64_t y95 = Date(1995, 1, 1), y97 = Date(1997, 1, 1);
      ph.push_back(MakeHt(st, &QueryState::ht1, P.rows() / 64));
      ph.push_back(Par(P.rows(), [&st, &P](QCtx& q, uint64_t lo,
                                           uint64_t hi) {
        const auto* type = P.I64("p_type");
        const auto* key = P.I64("p_partkey");
        ChargeScan(q, {type, key}, lo, hi);
        for (uint64_t i = lo; i < hi; ++i) {
          if (type[i] == kTypeEconomyAnodizedSteel) {
            st.ht1->UpsertSet(*q.env, static_cast<uint64_t>(key[i]), 1);
          }
        }
      }));
      ph.push_back(MakeHt(st, &QueryState::ht3, O.rows() / 4));
      ph.push_back(Par(O.rows(), [&st, &O, &C, y95, y97](
                                     QCtx& q, uint64_t lo, uint64_t hi) {
        const auto* okey = O.I64("o_orderkey");
        const auto* cust = O.I64("o_custkey");
        const auto* date = O.I64("o_orderdate");
        const auto* cnat = C.I64("c_nationkey");
        ChargeScan(q, {okey, cust, date}, lo, hi);
        for (uint64_t i = lo; i < hi; ++i) {
          if (date[i] < y95 || date[i] >= y97) continue;
          q.env->Read(&cnat[cust[i] - 1], 8);
          if (RegionOfNation(cnat[cust[i] - 1]) == kRegionAmerica) {
            st.ht3->UpsertSet(*q.env, static_cast<uint64_t>(okey[i]),
                              YearOfDay(date[i]));
          }
        }
      }));
      ph.push_back(Par(L.rows(), [&st, &L, &S](QCtx& q, uint64_t lo,
                                               uint64_t hi) {
        const auto* okey = L.I64("l_orderkey");
        const auto* part = L.I64("l_partkey");
        const auto* supp = L.I64("l_suppkey");
        const auto* price = L.F64("l_extendedprice");
        const auto* disc = L.F64("l_discount");
        const auto* snat = S.I64("s_nationkey");
        ChargeScan(q, {okey, part, supp, price, disc}, lo, hi);
        auto& local = Local(st, q);
        for (uint64_t i = lo; i < hi; ++i) {
          if (st.ht1->Find(*q.env, static_cast<uint64_t>(part[i])) ==
              nullptr)
            continue;
          auto* e = st.ht3->Find(*q.env, static_cast<uint64_t>(okey[i]));
          if (e == nullptr) continue;
          q.env->Read(&snat[supp[i] - 1], 8);
          double vol = price[i] * (1 - disc[i]);
          AggVal* a = local.Upsert(*q.env, static_cast<uint64_t>(e->value));
          a->v[0] += vol;
          if (snat[supp[i] - 1] == kNationBrazil) a->v[1] += vol;
        }
      }));
      ph.push_back(MergeLocals(st));
      ph.push_back(Serial([&st](QCtx& q) {
        double digest = 0;
        uint64_t rows = 0;
        st.global.ForEach(*q.env, [&](uint64_t key, AggVal* a) {
          digest += (a->v[0] > 0 ? a->v[1] / a->v[0] : 0) +
                    static_cast<double>(key);
          ++rows;
        });
        st.out = {rows, digest};
      }));
      break;
    }

    // ---------------------------------------------------------------- Q9
    case 9: {
      ph.push_back(MakeHt(st, &QueryState::ht1, P.rows() / 64));
      ph.push_back(Par(P.rows(), [&st, &P](QCtx& q, uint64_t lo,
                                           uint64_t hi) {
        const auto* color = P.I64("p_color");
        const auto* key = P.I64("p_partkey");
        ChargeScan(q, {color, key}, lo, hi);
        for (uint64_t i = lo; i < hi; ++i) {
          if (color[i] == kColorGreen) {
            st.ht1->UpsertSet(*q.env, static_cast<uint64_t>(key[i]), 1);
          }
        }
      }));
      ph.push_back(Par(L.rows(), [&st, &L, &S, &O, &PS](
                                     QCtx& q, uint64_t lo, uint64_t hi) {
        const auto* okey = L.I64("l_orderkey");
        const auto* part = L.I64("l_partkey");
        const auto* supp = L.I64("l_suppkey");
        const auto* qty = L.I64("l_quantity");
        const auto* price = L.F64("l_extendedprice");
        const auto* disc = L.F64("l_discount");
        const auto* snat = S.I64("s_nationkey");
        const auto* odate = O.I64("o_orderdate");
        const auto* ps_supp = PS.I64("ps_suppkey");
        const auto* ps_cost = PS.F64("ps_supplycost");
        ChargeScan(q, {okey, part, supp, qty, price, disc}, lo, hi);
        ChargeScratch(q, hi - lo);
        auto& local = Local(st, q);
        for (uint64_t i = lo; i < hi; ++i) {
          if (st.ht1->Find(*q.env, static_cast<uint64_t>(part[i])) ==
              nullptr)
            continue;
          // Positional partsupp lookup: the 4 suppliers of a part are
          // contiguous.
          double cost = 0;
          uint64_t base = static_cast<uint64_t>(part[i] - 1) * 4;
          for (int j = 0; j < 4; ++j) {
            q.env->Read(&ps_supp[base + static_cast<uint64_t>(j)], 8);
            if (ps_supp[base + static_cast<uint64_t>(j)] == supp[i]) {
              q.env->Read(&ps_cost[base + static_cast<uint64_t>(j)], 8);
              cost = ps_cost[base + static_cast<uint64_t>(j)];
              break;
            }
          }
          q.env->Read(&snat[supp[i] - 1], 8);
          q.env->Read(&odate[okey[i] - 1], 8);
          double profit = price[i] * (1 - disc[i]) -
                          cost * static_cast<double>(qty[i]);
          uint64_t key = static_cast<uint64_t>(
              snat[supp[i] - 1] * 8 + (YearOfDay(odate[okey[i] - 1]) - 1992));
          local.Upsert(*q.env, key)->v[0] += profit;
        }
      }));
      ph.push_back(MergeLocals(st));
      ph.push_back(Serial([&st](QCtx& q) {
        double digest = 0;
        uint64_t rows = 0;
        st.global.ForEach(*q.env, [&](uint64_t key, AggVal* a) {
          digest += a->v[0] / 1e3 + static_cast<double>(key);
          ++rows;
        });
        st.out = {rows, digest};
      }));
      break;
    }

    // --------------------------------------------------------------- Q10
    case 10: {
      const int64_t lo_d = Date(1993, 10, 1), hi_d = Date(1994, 1, 1);
      ph.push_back(MakeHt(st, &QueryState::ht1, O.rows() / 16));
      ph.push_back(Par(O.rows(), [&st, &O, lo_d, hi_d](QCtx& q, uint64_t lo,
                                                       uint64_t hi) {
        const auto* okey = O.I64("o_orderkey");
        const auto* cust = O.I64("o_custkey");
        const auto* date = O.I64("o_orderdate");
        ChargeScan(q, {okey, cust, date}, lo, hi);
        for (uint64_t i = lo; i < hi; ++i) {
          if (date[i] >= lo_d && date[i] < hi_d) {
            st.ht1->UpsertSet(*q.env, static_cast<uint64_t>(okey[i]), cust[i]);
          }
        }
      }));
      ph.push_back(Par(L.rows(), [&st, &L](QCtx& q, uint64_t lo,
                                           uint64_t hi) {
        const auto* okey = L.I64("l_orderkey");
        const auto* rf = L.I64("l_returnflag");
        const auto* price = L.F64("l_extendedprice");
        const auto* disc = L.F64("l_discount");
        ChargeScan(q, {okey, rf, price, disc}, lo, hi);
        ChargeScratch(q, hi - lo);
        auto& local = Local(st, q);
        for (uint64_t i = lo; i < hi; ++i) {
          if (rf[i] != kFlagReturned) continue;
          auto* e = st.ht1->Find(*q.env, static_cast<uint64_t>(okey[i]));
          if (e != nullptr) {
            local.Upsert(*q.env, static_cast<uint64_t>(e->value))->v[0] +=
                price[i] * (1 - disc[i]);
          }
        }
      }));
      ph.push_back(MergeLocals(st));
      ph.push_back(Serial([&st, &C](QCtx& q) {
        std::vector<std::pair<double, uint64_t>> rows;
        st.global.ForEach(*q.env, [&](uint64_t key, AggVal* a) {
          rows.emplace_back(a->v[0], key);
        });
        ChargeSort(q, rows.data(), rows.size(), 16);
        std::sort(rows.rbegin(), rows.rend());
        const auto* bal = C.F64("c_acctbal");
        double digest = 0;
        uint64_t n = std::min<uint64_t>(rows.size(), 20);
        for (uint64_t i = 0; i < n; ++i) {
          q.env->Read(&bal[rows[i].second - 1], 8);
          digest += rows[i].first + bal[rows[i].second - 1];
        }
        st.out = {n, digest};
      }));
      break;
    }

    // --------------------------------------------------------------- Q11
    case 11: {
      ph.push_back(Par(PS.rows(), [&st, &PS, &S](QCtx& q, uint64_t lo,
                                                 uint64_t hi) {
        const auto* pk = PS.I64("ps_partkey");
        const auto* sk = PS.I64("ps_suppkey");
        const auto* qty = PS.I64("ps_availqty");
        const auto* cost = PS.F64("ps_supplycost");
        const auto* snat = S.I64("s_nationkey");
        ChargeScan(q, {pk, sk, qty, cost}, lo, hi);
        auto& local = Local(st, q);
        double sum = 0;
        for (uint64_t i = lo; i < hi; ++i) {
          q.env->Read(&snat[sk[i] - 1], 8);
          if (snat[sk[i] - 1] != kNationGermany) continue;
          double value = cost[i] * static_cast<double>(qty[i]);
          local.Upsert(*q.env, static_cast<uint64_t>(pk[i]))->v[0] += value;
          sum += value;
        }
        st.scalars[static_cast<size_t>(q.env->worker_index)] += sum;
      }));
      ph.push_back(MergeLocals(st));
      ph.push_back(Serial([&st](QCtx& q) {
        double total = 0;
        for (double s : st.scalars) total += s;
        // The spec's FRACTION scales inversely with SF.
        double scale = st.db->lineitem->rows() > 0
                           ? static_cast<double>(st.db->customer->rows()) /
                                 150000.0
                           : 1.0;
        double threshold = total * 0.0001 / std::max(scale, 1e-6);
        double digest = 0;
        uint64_t rows = 0;
        st.global.ForEach(*q.env, [&](uint64_t, AggVal* a) {
          if (a->v[0] > threshold) {
            digest += a->v[0];
            ++rows;
          }
        });
        st.out = {rows, digest};
      }));
      break;
    }

    // --------------------------------------------------------------- Q12
    case 12: {
      const int64_t y94 = Date(1994, 1, 1), y95 = Date(1995, 1, 1);
      ph.push_back(Par(L.rows(), [&st, &L, &O, y94, y95](
                                     QCtx& q, uint64_t lo, uint64_t hi) {
        const auto* okey = L.I64("l_orderkey");
        const auto* mode = L.I64("l_shipmode");
        const auto* ship = L.I64("l_shipdate");
        const auto* commit = L.I64("l_commitdate");
        const auto* receipt = L.I64("l_receiptdate");
        const auto* prio = O.I64("o_orderpriority");
        ChargeScan(q, {okey, mode, ship, commit, receipt}, lo, hi);
        auto& local = Local(st, q);
        for (uint64_t i = lo; i < hi; ++i) {
          if ((mode[i] != kModeMail && mode[i] != kModeShip) ||
              commit[i] >= receipt[i] || ship[i] >= commit[i] ||
              receipt[i] < y94 || receipt[i] >= y95) {
            continue;
          }
          q.env->Read(&prio[okey[i] - 1], 8);
          AggVal* a = local.Upsert(*q.env, static_cast<uint64_t>(mode[i]));
          if (prio[okey[i] - 1] <= 1) {
            a->c[0] += 1;  // high priority
          } else {
            a->c[1] += 1;
          }
        }
      }));
      ph.push_back(MergeLocals(st));
      ph.push_back(Serial([&st](QCtx& q) {
        double digest = 0;
        uint64_t rows = 0;
        st.global.ForEach(*q.env, [&](uint64_t key, AggVal* a) {
          digest += static_cast<double>(key * 1000 + a->c[0] * 7 + a->c[1]);
          ++rows;
        });
        st.out = {rows, digest};
      }));
      break;
    }

    // --------------------------------------------------------------- Q13
    case 13: {
      ph.push_back(Par(O.rows(), [&st, &O](QCtx& q, uint64_t lo,
                                           uint64_t hi) {
        const auto* cust = O.I64("o_custkey");
        const auto* special = O.I64("o_comment_special");
        ChargeScan(q, {cust, special}, lo, hi);
        ChargeScratch(q, hi - lo);
        auto& local = Local(st, q);
        for (uint64_t i = lo; i < hi; ++i) {
          if (special[i] == 0) {
            local.Upsert(*q.env, static_cast<uint64_t>(cust[i]))->c[0] += 1;
          }
        }
      }));
      ph.push_back(MergeLocals(st));
      ph.push_back(Serial([&st, &C](QCtx& q) {
        // Distribution: how many customers placed k orders.
        LocalAgg<AggVal> dist;
        dist.Init(*q.env, 64);
        uint64_t with_orders = 0;
        st.global.ForEach(*q.env, [&](uint64_t, AggVal* a) {
          dist.Upsert(*q.env, a->c[0])->c[0] += 1;
          ++with_orders;
        });
        dist.Upsert(*q.env, 0)->c[0] += C.rows() - with_orders;
        double digest = 0;
        uint64_t rows = 0;
        dist.ForEach(*q.env, [&](uint64_t k, AggVal* a) {
          digest += static_cast<double>(k * a->c[0]);
          ++rows;
        });
        st.out = {rows, digest};
      }));
      break;
    }

    // --------------------------------------------------------------- Q14
    case 14: {
      const int64_t lo_d = Date(1995, 9, 1), hi_d = Date(1995, 10, 1);
      ph.push_back(Par(L.rows(), [&st, &L, &P, lo_d, hi_d](
                                     QCtx& q, uint64_t lo, uint64_t hi) {
        const auto* part = L.I64("l_partkey");
        const auto* ship = L.I64("l_shipdate");
        const auto* price = L.F64("l_extendedprice");
        const auto* disc = L.F64("l_discount");
        const auto* type = P.I64("p_type");
        ChargeScan(q, {part, ship, price, disc}, lo, hi);
        double promo = 0, total = 0;
        for (uint64_t i = lo; i < hi; ++i) {
          if (ship[i] < lo_d || ship[i] >= hi_d) continue;
          double vol = price[i] * (1 - disc[i]);
          total += vol;
          q.env->Read(&type[part[i] - 1], 8);
          if (type[part[i] - 1] / 25 == 5) promo += vol;  // PROMO%
        }
        st.scalars[static_cast<size_t>(q.env->worker_index)] += promo;
        st.scalars2[static_cast<size_t>(q.env->worker_index)] += total;
      }));
      ph.push_back(Serial([&st](QCtx&) {
        double promo = 0, total = 0;
        for (double s : st.scalars) promo += s;
        for (double s : st.scalars2) total += s;
        st.out = {1, total > 0 ? 100.0 * promo / total : 0.0};
      }));
      break;
    }

    // --------------------------------------------------------------- Q15
    case 15: {
      const int64_t lo_d = Date(1996, 1, 1), hi_d = Date(1996, 4, 1);
      ph.push_back(Par(L.rows(), [&st, &L, lo_d, hi_d](QCtx& q, uint64_t lo,
                                                       uint64_t hi) {
        const auto* supp = L.I64("l_suppkey");
        const auto* ship = L.I64("l_shipdate");
        const auto* price = L.F64("l_extendedprice");
        const auto* disc = L.F64("l_discount");
        ChargeScan(q, {supp, ship, price, disc}, lo, hi);
        auto& local = Local(st, q);
        for (uint64_t i = lo; i < hi; ++i) {
          if (ship[i] >= lo_d && ship[i] < hi_d) {
            local.Upsert(*q.env, static_cast<uint64_t>(supp[i]))->v[0] +=
                price[i] * (1 - disc[i]);
          }
        }
      }));
      ph.push_back(MergeLocals(st));
      ph.push_back(Serial([&st](QCtx& q) {
        double best = -1;
        uint64_t best_supp = 0, ties = 0;
        st.global.ForEach(*q.env, [&](uint64_t key, AggVal* a) {
          if (a->v[0] > best) {
            best = a->v[0];
            best_supp = key;
            ties = 1;
          } else if (a->v[0] == best) {
            ++ties;
          }
        });
        st.out = {ties, best + static_cast<double>(best_supp)};
      }));
      break;
    }

    // --------------------------------------------------------------- Q16
    case 16: {
      ph.push_back(MakeHt(st, &QueryState::ht1, 256));
      ph.push_back(Par(S.rows(), [&st, &S](QCtx& q, uint64_t lo,
                                           uint64_t hi) {
        const auto* key = S.I64("s_suppkey");
        const auto* bad = S.I64("s_comment_complaints");
        ChargeScan(q, {key, bad}, lo, hi);
        for (uint64_t i = lo; i < hi; ++i) {
          if (bad[i] != 0) {
            st.ht1->UpsertSet(*q.env, static_cast<uint64_t>(key[i]), 1);
          }
        }
      }));
      ph.push_back(Par(PS.rows(), [&st, &PS, &P](QCtx& q, uint64_t lo,
                                                 uint64_t hi) {
        const auto* pk = PS.I64("ps_partkey");
        const auto* sk = PS.I64("ps_suppkey");
        const auto* brand = P.I64("p_brand");
        const auto* type = P.I64("p_type");
        const auto* size = P.I64("p_size");
        ChargeScan(q, {pk, sk}, lo, hi);
        auto& local = Local(st, q);
        static constexpr int64_t kSizes[] = {49, 14, 23, 45, 19, 3, 36, 9};
        for (uint64_t i = lo; i < hi; ++i) {
          uint64_t p = static_cast<uint64_t>(pk[i] - 1);
          q.env->Read(&brand[p], 8);
          q.env->Read(&type[p], 8);
          q.env->Read(&size[p], 8);
          if (brand[p] == 10 || type[p] / 25 == 2) continue;
          bool size_ok = false;
          for (int64_t s : kSizes) size_ok |= size[p] == s;
          if (!size_ok) continue;
          if (st.ht1->Find(*q.env, static_cast<uint64_t>(sk[i]))) continue;
          uint64_t combined = static_cast<uint64_t>(
              (brand[p] * 200 + type[p]) * 64 + size[p] % 64);
          // Distinct (group, supplier) pairs.
          local.Upsert(*q.env, combined * 100000 +
                                   static_cast<uint64_t>(sk[i]))->c[0] = 1;
        }
      }));
      ph.push_back(MergeLocals(st));
      ph.push_back(Serial([&st](QCtx& q) {
        LocalAgg<AggVal> counts;
        counts.Init(*q.env, 1024);
        st.global.ForEach(*q.env, [&](uint64_t key, AggVal*) {
          counts.Upsert(*q.env, key / 100000)->c[0] += 1;
        });
        double digest = 0;
        uint64_t rows = 0;
        counts.ForEach(*q.env, [&](uint64_t key, AggVal* a) {
          digest += static_cast<double>(key % 997) +
                    static_cast<double>(a->c[0]);
          ++rows;
        });
        st.out = {rows, digest};
      }));
      break;
    }

    // --------------------------------------------------------------- Q17
    case 17: {
      ph.push_back(Par(L.rows(), [&st, &L, &P](QCtx& q, uint64_t lo,
                                               uint64_t hi) {
        const auto* part = L.I64("l_partkey");
        const auto* qty = L.I64("l_quantity");
        const auto* brand = P.I64("p_brand");
        const auto* cont = P.I64("p_container");
        ChargeScan(q, {part, qty}, lo, hi);
        auto& local = Local(st, q);
        for (uint64_t i = lo; i < hi; ++i) {
          uint64_t p = static_cast<uint64_t>(part[i] - 1);
          q.env->Read(&brand[p], 8);
          q.env->Read(&cont[p], 8);
          if (brand[p] != 12 || cont[p] != 17) continue;  // Brand#23 MED BOX
          AggVal* a = local.Upsert(*q.env, static_cast<uint64_t>(part[i]));
          a->v[0] += static_cast<double>(qty[i]);
          a->c[0] += 1;
        }
      }));
      ph.push_back(MergeLocals(st));
      ph.push_back(Par(L.rows(), [&st, &L](QCtx& q, uint64_t lo,
                                           uint64_t hi) {
        const auto* part = L.I64("l_partkey");
        const auto* qty = L.I64("l_quantity");
        const auto* price = L.F64("l_extendedprice");
        ChargeScan(q, {part, qty, price}, lo, hi);
        double sum = 0;
        for (uint64_t i = lo; i < hi; ++i) {
          AggVal* a = st.global.Find(*q.env,
                                     static_cast<uint64_t>(part[i]));
          if (a == nullptr || a->c[0] == 0) continue;
          double avg = a->v[0] / static_cast<double>(a->c[0]);
          if (static_cast<double>(qty[i]) < 0.2 * avg) sum += price[i];
        }
        st.scalars[static_cast<size_t>(q.env->worker_index)] += sum;
      }));
      ph.push_back(Serial([&st](QCtx&) {
        double total = 0;
        for (double s : st.scalars) total += s;
        st.out = {1, total / 7.0};
      }));
      break;
    }

    // --------------------------------------------------------------- Q18
    case 18: {
      ph.push_back(Par(L.rows(), [&st, &L](QCtx& q, uint64_t lo,
                                           uint64_t hi) {
        const auto* okey = L.I64("l_orderkey");
        const auto* qty = L.I64("l_quantity");
        ChargeScan(q, {okey, qty}, lo, hi);
        ChargeScratch(q, hi - lo);
        auto& local = Local(st, q);
        for (uint64_t i = lo; i < hi; ++i) {
          local.Upsert(*q.env, static_cast<uint64_t>(okey[i]))->v[0] +=
              static_cast<double>(qty[i]);
        }
      }));
      ph.push_back(MergeLocals(st));
      ph.push_back(Serial([&st, &O](QCtx& q) {
        const auto* total = O.F64("o_totalprice");
        std::vector<std::pair<double, uint64_t>> rows;
        st.global.ForEach(*q.env, [&](uint64_t key, AggVal* a) {
          if (a->v[0] > 300.0) {
            q.env->Read(&total[key - 1], 8);
            rows.emplace_back(total[key - 1], key);
          }
        });
        ChargeSort(q, rows.data(), rows.size(), 16);
        std::sort(rows.rbegin(), rows.rend());
        double digest = 0;
        uint64_t n = std::min<uint64_t>(rows.size(), 100);
        for (uint64_t i = 0; i < n; ++i) digest += rows[i].first;
        st.out = {n, digest};
      }));
      break;
    }

    // --------------------------------------------------------------- Q19
    case 19: {
      ph.push_back(Par(L.rows(), [&st, &L, &P](QCtx& q, uint64_t lo,
                                               uint64_t hi) {
        const auto* part = L.I64("l_partkey");
        const auto* qty = L.I64("l_quantity");
        const auto* mode = L.I64("l_shipmode");
        const auto* instruct = L.I64("l_shipinstruct");
        const auto* price = L.F64("l_extendedprice");
        const auto* disc = L.F64("l_discount");
        const auto* brand = P.I64("p_brand");
        const auto* cont = P.I64("p_container");
        const auto* size = P.I64("p_size");
        ChargeScan(q, {part, qty, mode, instruct, price, disc}, lo, hi);
        double sum = 0;
        for (uint64_t i = lo; i < hi; ++i) {
          if (instruct[i] != kInstructDeliverInPerson ||
              (mode[i] != kModeAir && mode[i] != kModeRegAir)) {
            continue;
          }
          uint64_t p = static_cast<uint64_t>(part[i] - 1);
          q.env->Read(&brand[p], 8);
          q.env->Read(&cont[p], 8);
          q.env->Read(&size[p], 8);
          bool m1 = brand[p] == 12 && cont[p] < 8 && qty[i] >= 1 &&
                    qty[i] <= 11 && size[p] <= 5;
          bool m2 = brand[p] == 11 && cont[p] >= 8 && cont[p] < 16 &&
                    qty[i] >= 10 && qty[i] <= 20 && size[p] <= 10;
          bool m3 = brand[p] == 17 && cont[p] >= 16 && cont[p] < 24 &&
                    qty[i] >= 20 && qty[i] <= 30 && size[p] <= 15;
          if (m1 || m2 || m3) sum += price[i] * (1 - disc[i]);
        }
        st.scalars[static_cast<size_t>(q.env->worker_index)] += sum;
      }));
      ph.push_back(Serial([&st](QCtx&) {
        double total = 0;
        for (double s : st.scalars) total += s;
        st.out = {1, total};
      }));
      break;
    }

    // --------------------------------------------------------------- Q20
    case 20: {
      const int64_t y94 = Date(1994, 1, 1), y95 = Date(1995, 1, 1);
      ph.push_back(MakeHt(st, &QueryState::ht1, P.rows() / 64));
      ph.push_back(Par(P.rows(), [&st, &P](QCtx& q, uint64_t lo,
                                           uint64_t hi) {
        const auto* color = P.I64("p_color");
        const auto* key = P.I64("p_partkey");
        ChargeScan(q, {color, key}, lo, hi);
        for (uint64_t i = lo; i < hi; ++i) {
          if (color[i] == kColorForest) {
            st.ht1->UpsertSet(*q.env, static_cast<uint64_t>(key[i]), 1);
          }
        }
      }));
      ph.push_back(Par(L.rows(), [&st, &L, y94, y95](QCtx& q, uint64_t lo,
                                                     uint64_t hi) {
        const auto* part = L.I64("l_partkey");
        const auto* supp = L.I64("l_suppkey");
        const auto* qty = L.I64("l_quantity");
        const auto* ship = L.I64("l_shipdate");
        ChargeScan(q, {part, supp, qty, ship}, lo, hi);
        auto& local = Local(st, q);
        for (uint64_t i = lo; i < hi; ++i) {
          if (ship[i] < y94 || ship[i] >= y95) continue;
          if (st.ht1->Find(*q.env, static_cast<uint64_t>(part[i])) ==
              nullptr)
            continue;
          uint64_t key = (static_cast<uint64_t>(part[i]) << 20) |
                         static_cast<uint64_t>(supp[i]);
          local.Upsert(*q.env, key)->v[0] += static_cast<double>(qty[i]);
        }
      }));
      ph.push_back(MergeLocals(st));
      ph.push_back(Par(PS.rows(), [&st, &PS](QCtx& q, uint64_t lo,
                                             uint64_t hi) {
        const auto* pk = PS.I64("ps_partkey");
        const auto* sk = PS.I64("ps_suppkey");
        const auto* avail = PS.I64("ps_availqty");
        ChargeScan(q, {pk, sk, avail}, lo, hi);
        auto& local2 = Local2(st, q);
        for (uint64_t i = lo; i < hi; ++i) {
          uint64_t key = (static_cast<uint64_t>(pk[i]) << 20) |
                         static_cast<uint64_t>(sk[i]);
          AggVal* shipped = st.global.Find(*q.env, key);
          if (shipped != nullptr &&
              static_cast<double>(avail[i]) > 0.5 * shipped->v[0]) {
            local2.Upsert(*q.env, static_cast<uint64_t>(sk[i]))->c[0] = 1;
          }
        }
      }));
      ph.push_back(MergeLocals(st, &QueryState::locals2,
                               &QueryState::global2));
      ph.push_back(Serial([&st, &S](QCtx& q) {
        const auto* snat = S.I64("s_nationkey");
        double digest = 0;
        uint64_t rows = 0;
        st.global2.ForEach(*q.env, [&](uint64_t supp, AggVal*) {
          q.env->Read(&snat[supp - 1], 8);
          if (snat[supp - 1] == kNationCanada) {
            digest += static_cast<double>(supp);
            ++rows;
          }
        });
        st.out = {rows, digest};
      }));
      break;
    }

    // --------------------------------------------------------------- Q21
    case 21: {
      ph.push_back(Par(L.rows(), [&st, &L, &S](QCtx& q, uint64_t lo,
                                               uint64_t hi) {
        const auto* okey = L.I64("l_orderkey");
        const auto* supp = L.I64("l_suppkey");
        const auto* commit = L.I64("l_commitdate");
        const auto* receipt = L.I64("l_receiptdate");
        const auto* snat = S.I64("s_nationkey");
        ChargeScan(q, {okey, supp, commit, receipt}, lo, hi);
        ChargeScratch(q, hi - lo);
        auto& local = Local(st, q);
        for (uint64_t i = lo; i < hi; ++i) {
          AggVal* a = local.Upsert(*q.env, static_cast<uint64_t>(okey[i]));
          // v[0]: first supplier seen; c[0]: multi-supplier flag bits.
          if (a->c[0] == 0) {
            a->v[0] = static_cast<double>(supp[i]);
            a->c[0] = 1;
          } else if (static_cast<int64_t>(a->v[0]) != supp[i]) {
            a->c[0] |= 2;  // more than one supplier participates
          }
          if (receipt[i] > commit[i]) {
            q.env->Read(&snat[supp[i] - 1], 8);
            if (snat[supp[i] - 1] == kNationSaudi) {
              a->c[1] |= 1;  // target-nation supplier was late
              a->v[1] = static_cast<double>(supp[i]);
            } else {
              a->c[1] |= 2;  // somebody else was late too
            }
          }
        }
      }));
      ph.push_back(MergeLocals(st));
      ph.push_back(Serial([&st, &O](QCtx& q) {
        const auto* status = O.I64("o_orderstatus");
        LocalAgg<AggVal> per_supp;
        per_supp.Init(*q.env, 256);
        st.global.ForEach(*q.env, [&](uint64_t okey, AggVal* a) {
          q.env->Read(&status[okey - 1], 8);
          if (status[okey - 1] != kStatusF) return;
          bool multi = (a->c[0] & 2) != 0;
          bool target_late = (a->c[1] & 1) != 0;
          bool other_late = (a->c[1] & 2) != 0;
          if (multi && target_late && !other_late) {
            per_supp.Upsert(*q.env,
                            static_cast<uint64_t>(a->v[1]))->c[0] += 1;
          }
        });
        double digest = 0;
        uint64_t rows = 0;
        per_supp.ForEach(*q.env, [&](uint64_t supp, AggVal* a) {
          digest += static_cast<double>(supp % 997 + a->c[0]);
          ++rows;
        });
        st.out = {rows, digest};
      }));
      break;
    }

    // --------------------------------------------------------------- Q22
    case 22: {
      auto in_set = [](int64_t code) {
        switch (code) {
          case 13: case 17: case 18: case 23: case 29: case 30: case 31:
            return true;
          default:
            return false;
        }
      };
      ph.push_back(Par(C.rows(), [&st, &C, in_set](QCtx& q, uint64_t lo,
                                                   uint64_t hi) {
        const auto* code = C.I64("c_cntrycode");
        const auto* bal = C.F64("c_acctbal");
        ChargeScan(q, {code, bal}, lo, hi);
        double sum = 0, cnt = 0;
        for (uint64_t i = lo; i < hi; ++i) {
          if (in_set(code[i]) && bal[i] > 0) {
            sum += bal[i];
            cnt += 1;
          }
        }
        st.scalars[static_cast<size_t>(q.env->worker_index)] += sum;
        st.scalars2[static_cast<size_t>(q.env->worker_index)] += cnt;
      }));
      ph.push_back(MakeHt(st, &QueryState::ht1, C.rows() / 2));
      ph.push_back(Par(O.rows(), [&st, &O](QCtx& q, uint64_t lo,
                                           uint64_t hi) {
        const auto* cust = O.I64("o_custkey");
        ChargeScan(q, {cust}, lo, hi);
        for (uint64_t i = lo; i < hi; ++i) {
          st.ht1->UpsertSet(*q.env, static_cast<uint64_t>(cust[i]), 1);
        }
      }));
      ph.push_back(Serial([&st](QCtx&) {
        double sum = 0, cnt = 0;
        for (double s : st.scalars) sum += s;
        for (double s : st.scalars2) cnt += s;
        st.shared_scalar = cnt > 0 ? sum / cnt : 0.0;
      }));
      ph.push_back(Par(C.rows(), [&st, &C, in_set](QCtx& q, uint64_t lo,
                                                   uint64_t hi) {
        const auto* key = C.I64("c_custkey");
        const auto* code = C.I64("c_cntrycode");
        const auto* bal = C.F64("c_acctbal");
        ChargeScan(q, {key, code, bal}, lo, hi);
        auto& local = Local(st, q);
        for (uint64_t i = lo; i < hi; ++i) {
          if (!in_set(code[i]) || bal[i] <= st.shared_scalar) continue;
          if (st.ht1->Find(*q.env, static_cast<uint64_t>(key[i]))) continue;
          AggVal* a = local.Upsert(*q.env, static_cast<uint64_t>(code[i]));
          a->c[0] += 1;
          a->v[0] += bal[i];
        }
      }));
      ph.push_back(MergeLocals(st));
      ph.push_back(Serial([&st](QCtx& q) {
        double digest = 0;
        uint64_t rows = 0;
        st.global.ForEach(*q.env, [&](uint64_t key, AggVal* a) {
          digest += static_cast<double>(key * a->c[0]) + a->v[0];
          ++rows;
        });
        st.out = {rows, digest};
      }));
      break;
    }

    default:
      NUMALAB_CHECK(false && "query number must be 1..22");
  }

  return plan;
}

}  // namespace minidb
}  // namespace numalab
