// Hand-written physical plans for TPC-H Q1..Q22 against minidb's columnar
// storage, expressed as barrier-delimited morsel-parallel phases (exec.h).
//
// Query semantics follow the TPC-H 2.18 specification with the generator's
// documented dictionary encodings (tpch_gen.h). Dense surrogate keys allow
// positional foreign-key reads (okey -> orders row okey-1); selective
// filters and aggregations run through simulated-memory hash tables so all
// NUMA/allocator effects apply.

#ifndef NUMALAB_MINIDB_QUERIES_H_
#define NUMALAB_MINIDB_QUERIES_H_

#include <memory>
#include <vector>

#include "src/index/hash_table.h"
#include "src/minidb/exec.h"
#include "src/minidb/table.h"

namespace numalab {
namespace minidb {

/// \brief Generic aggregate payload (enough slots for any of the 22).
struct AggVal {
  double v[6] = {0, 0, 0, 0, 0, 0};
  uint64_t c[2] = {0, 0};
};

struct QueryOutput {
  uint64_t rows = 0;    ///< result-set cardinality
  double digest = 0.0;  ///< order-independent checksum of the result
};

/// \brief Shared state for one query execution; outlives the plan.
struct QueryState {
  const Database* db = nullptr;
  int nworkers = 1;

  std::vector<LocalAgg<AggVal>> locals;   // per-worker primary aggregation
  std::vector<LocalAgg<AggVal>> locals2;  // per-worker secondary
  LocalAgg<AggVal> global;
  LocalAgg<AggVal> global2;
  std::unique_ptr<index::ConcurrentHashTable<int64_t>> ht1, ht2, ht3;
  std::vector<double> scalars;   // per-worker scalar accumulators
  std::vector<double> scalars2;
  double shared_scalar = 0.0;    // set in a serial phase, read afterwards
  QueryOutput out;

  void Prepare(const Database* database, int workers) {
    db = database;
    nworkers = workers;
    locals.resize(static_cast<size_t>(workers));
    locals2.resize(static_cast<size_t>(workers));
    scalars.assign(static_cast<size_t>(workers), 0.0);
    scalars2.assign(static_cast<size_t>(workers), 0.0);
  }
};

/// Builds the plan for TPC-H query `q` (1..22). The final phase writes
/// QueryState::out.
QueryPlan BuildTpchPlan(int q, QueryState* st);

}  // namespace minidb
}  // namespace numalab

#endif  // NUMALAB_MINIDB_QUERIES_H_
