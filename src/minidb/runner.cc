#include "src/minidb/runner.h"

#include "src/minidb/tpch_gen.h"
#include "src/trace/export.h"
#include "src/trace/trace.h"
#include "src/workloads/sim_context.h"

namespace numalab {
namespace minidb {

namespace {

using workloads::Env;
using workloads::RunConfig;
using workloads::SimContext;

// The paper disregards the first (cold) run and measures warm runs: the
// first execution settles THP collapse, AutoNUMA's initial migration wave
// and the scheduler; the reported latency is the second execution's.
sim::Task QueryWorker(Env& env, const QueryPlan& cold, const QueryPlan& warm,
                      uint64_t* warm_start, const SystemProfile& prof,
                      sim::SimBarrier& barrier) {
  QCtx q{&env, &prof};
  trace::ScopedSpan worker_span(env.self, "worker");
  for (int pass = 0; pass < 2; ++pass) {
    const QueryPlan& plan = pass == 0 ? cold : warm;
    trace::ScopedSpan pass_span(env.self, pass == 0 ? "cold" : "warm");
    for (size_t pi = 0; pi < plan.phases.size(); ++pi) {
      const Phase& phase = plan.phases[pi];
      std::string phase_name = "phase" + std::to_string(pi);
      trace::ScopedSpan phase_span(env.self, phase_name.c_str());
      if (phase.rows == 0) {
        if (env.worker_index == 0) phase.body(q, 0, 0);
      } else {
        uint64_t per = phase.rows / static_cast<uint64_t>(env.num_workers);
        uint64_t lo = per * static_cast<uint64_t>(env.worker_index);
        uint64_t hi = env.worker_index == env.num_workers - 1 ? phase.rows
                                                              : lo + per;
        for (uint64_t m = lo; m < hi; m += kMorselRows) {
          phase.body(q, m, std::min(m + kMorselRows, hi));
          co_await env.Checkpoint();
        }
      }
      co_await env.Checkpoint();
      co_await barrier.Arrive();
    }
    if (pass == 0) {
      if (env.worker_index == 0) *warm_start = env.self->clock;
      co_await barrier.Arrive();
    }
  }
}

}  // namespace

TpchResult RunTpch(const TpchOptions& options) {
  const SystemProfile& prof = ProfileByName(options.profile);
  topology::Machine machine = topology::MachineByName(options.machine);
  int workers = prof.WorkersFor(options.query, machine.num_hw_threads());

  RunConfig cfg;
  cfg.machine = options.machine;
  cfg.threads = workers;
  cfg.policy = mem::MemPolicy::kFirstTouch;  // the paper's W5 placement
  cfg.seed = options.seed;
  cfg.run_index = options.run_index;
  if (options.tuned) {
    cfg.affinity = osmodel::Affinity::kSparse;
    cfg.autonuma = false;
    cfg.thp = prof.thp_stays_on;
    cfg.allocator = "tbbmalloc";
  } else {
    cfg.affinity = osmodel::Affinity::kNone;
    cfg.autonuma = true;
    cfg.thp = true;
    cfg.allocator = "ptmalloc";
  }
  if (!options.allocator_override.empty()) {
    cfg.allocator = options.allocator_override;
  }

  SimContext ctx(cfg);
  const HostDb& host = GenerateTpch(options.scale, options.seed);
  auto db = LoadTpch(host, ctx.allocator(), ctx.memsys());

  QueryState cold_state, warm_state;
  cold_state.Prepare(db.get(), workers);
  warm_state.Prepare(db.get(), workers);
  QueryPlan cold_plan = BuildTpchPlan(options.query, &cold_state);
  QueryPlan warm_plan = BuildTpchPlan(options.query, &warm_state);
  uint64_t warm_start = 0;

  ctx.SpawnWorkers([&](Env& env) {
    return QueryWorker(env, cold_plan, warm_plan, &warm_start, prof,
                       *ctx.barrier());
  });

  workloads::RunResult r;
  ctx.Finish(&r);
  trace::CollectRun("W5-q" + std::to_string(options.query) + "-" +
                        options.profile +
                        (options.tuned ? "-tuned" : "-default"),
                    cfg, r);

  TpchResult out;
  out.status = r.status;
  out.cycles = r.cycles > warm_start ? r.cycles - warm_start : r.cycles;
  out.out = warm_state.out;
  out.workers = workers;
  return out;
}

}  // namespace minidb
}  // namespace numalab
