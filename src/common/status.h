// Minimal Status / Result types for fallible operations.
//
// Follows the RocksDB/Arrow convention: functions that can fail in ways the
// caller should handle return a Status (or Result<T>); programming errors are
// checked with NUMALAB_CHECK and abort.

#ifndef NUMALAB_COMMON_STATUS_H_
#define NUMALAB_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "src/common/logging.h"

namespace numalab {

/// \brief Outcome of a fallible operation.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kOutOfMemory,
    kAlreadyExists,
    kInternal,
    kDeadlineExceeded,
    kUnavailable,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(Code::kOutOfMemory, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + msg_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static std::string CodeName(Code c) {
    switch (c) {
      case Code::kOk: return "OK";
      case Code::kInvalidArgument: return "InvalidArgument";
      case Code::kNotFound: return "NotFound";
      case Code::kOutOfMemory: return "OutOfMemory";
      case Code::kAlreadyExists: return "AlreadyExists";
      case Code::kInternal: return "Internal";
      case Code::kDeadlineExceeded: return "DeadlineExceeded";
      case Code::kUnavailable: return "Unavailable";
    }
    return "Unknown";
  }

  Code code_;
  std::string msg_;
};

/// \brief A value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}           // NOLINT implicit
  Result(Status status) : v_(std::move(status)) {     // NOLINT implicit
    // A Result built from a Status must carry an error; NUMALAB_CHECK (not
    // assert) so the contract also holds in NDEBUG builds.
    NUMALAB_CHECK(!std::get<Status>(v_).ok() &&
                  "Result<T> constructed from an OK Status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }
  T& value() { return std::get<T>(v_); }
  const T& value() const { return std::get<T>(v_); }
  T& operator*() { return value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace numalab

/// Propagates a non-OK Status to the caller. The expression is evaluated
/// exactly once.
#define NUMALAB_RETURN_IF_ERROR(expr)                   \
  do {                                                  \
    ::numalab::Status numalab_status_tmp_ = (expr);     \
    if (!numalab_status_tmp_.ok()) {                    \
      return numalab_status_tmp_;                       \
    }                                                   \
  } while (0)

#endif  // NUMALAB_COMMON_STATUS_H_
