// Minimal Status / Result types for fallible operations.
//
// Follows the RocksDB/Arrow convention: functions that can fail in ways the
// caller should handle return a Status (or Result<T>); programming errors are
// checked with NUMALAB_CHECK and abort.

#ifndef NUMALAB_COMMON_STATUS_H_
#define NUMALAB_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace numalab {

/// \brief Outcome of a fallible operation.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kOutOfMemory,
    kAlreadyExists,
    kInternal,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(Code::kOutOfMemory, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + msg_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static std::string CodeName(Code c) {
    switch (c) {
      case Code::kOk: return "OK";
      case Code::kInvalidArgument: return "InvalidArgument";
      case Code::kNotFound: return "NotFound";
      case Code::kOutOfMemory: return "OutOfMemory";
      case Code::kAlreadyExists: return "AlreadyExists";
      case Code::kInternal: return "Internal";
    }
    return "Unknown";
  }

  Code code_;
  std::string msg_;
};

/// \brief A value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}           // NOLINT implicit
  Result(Status status) : v_(std::move(status)) {     // NOLINT implicit
    assert(!std::get<Status>(v_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(v_); }
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }
  T& value() { return std::get<T>(v_); }
  const T& value() const { return std::get<T>(v_); }
  T& operator*() { return value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace numalab

#endif  // NUMALAB_COMMON_STATUS_H_
