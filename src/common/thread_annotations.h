// Portable wrappers for Clang's thread-safety (capability) analysis
// attributes. Under clang the macros expand to the real attributes and
// `-Wthread-safety` machine-checks the lock contracts; under GCC (and any
// compiler without the attribute family) every macro is a no-op, so the
// annotations cost nothing and the code stays portable.
//
// Conventions in this tree (see DESIGN.md section 13):
//  * Capability types: `sim::VirtualLock` and `sim::SimMutex` are the two
//    lock types. Both are *simulated* locks — they order virtual threads on
//    the single host thread — but the acquire/release discipline around
//    them is a real program contract (it is what the PR-2 race detector
//    derives happens-before edges from), so it is annotated and checked
//    statically too.
//  * VirtualLock critical sections are marked by the Env::LockAcquired /
//    Env::LockReleased pair (the same calls that feed the race detector);
//    those carry NUMALAB_ACQUIRE/NUMALAB_RELEASE so clang verifies every
//    path between them is balanced (e.g. the early-OOM return in
//    ConcurrentHashTable::UpsertWith must release the stripe first).
//  * Lock *implementations* (SimMutex::Unlock, the Env hooks) are annotated
//    at the boundary and carry NUMALAB_NO_THREAD_SAFETY_ANALYSIS on the
//    body — the standard pattern for lock primitives, whose internals
//    cannot be expressed in the annotation language.
//  * State touched only from engine-serialized contexts (arrival events,
//    host-side bookkeeping) is documented at the declaration instead of
//    annotated; see NodeQueue in src/serve/serve.cc for the worked example.
//
// scripts/check.sh stage 10 compiles src/sanity/thread_safety_check.cc with
// clang and -Werror=thread-safety when clang is available; the plain GCC
// build compiles the same file with the macros no-opped on every run.

#ifndef NUMALAB_COMMON_THREAD_ANNOTATIONS_H_
#define NUMALAB_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define NUMALAB_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef NUMALAB_THREAD_ANNOTATION
#define NUMALAB_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a capability ("mutex"-like); instances can then appear
/// in the other annotations below.
#define NUMALAB_CAPABILITY(name) NUMALAB_THREAD_ANNOTATION(capability(name))

/// RAII types whose constructor acquires and destructor releases.
#define NUMALAB_SCOPED_CAPABILITY NUMALAB_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define NUMALAB_GUARDED_BY(x) NUMALAB_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define NUMALAB_PT_GUARDED_BY(x) NUMALAB_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability and holds it past return.
#define NUMALAB_ACQUIRE(...) \
  NUMALAB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a capability the caller holds on entry.
#define NUMALAB_RELEASE(...) \
  NUMALAB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Caller must hold the capability (exclusively) across the call.
#define NUMALAB_REQUIRES(...) \
  NUMALAB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself,
/// or would deadlock/double-charge if it were already held).
#define NUMALAB_EXCLUDES(...) \
  NUMALAB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define NUMALAB_RETURN_CAPABILITY(x) \
  NUMALAB_THREAD_ANNOTATION(lock_returned(x))

/// Opts a function body out of the analysis. Reserved for lock
/// implementations and for intentional, documented contract exceptions
/// (always pair with a comment saying why the exception is sound).
#define NUMALAB_NO_THREAD_SAFETY_ANALYSIS \
  NUMALAB_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // NUMALAB_COMMON_THREAD_ANNOTATIONS_H_
