// Seeded pseudo-random number generation used throughout the simulator and
// the data generators. All randomness in numalab flows through these types so
// that every simulated run is reproducible from its seed.

#ifndef NUMALAB_COMMON_RNG_H_
#define NUMALAB_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace numalab {

/// \brief SplitMix64 generator; also used to seed Xoshiro256.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// \brief xoshiro256** — fast, high-quality 64-bit PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform in [lo, hi].
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform real in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

/// \brief Zipf-distributed sampler over {0, ..., n-1} with exponent e.
///
/// Uses the classic cumulative-probability table with binary search; build is
/// O(n), sampling is O(log n). Matches the paper's dataset recipe (exponent
/// 0.5 by default).
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double exponent, uint64_t seed)
      : rng_(seed), cdf_(n) {
    double sum = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  uint64_t Next() {
    double u = rng_.NextDouble();
    // Binary search for first cdf_[i] >= u.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace numalab

#endif  // NUMALAB_COMMON_RNG_H_
