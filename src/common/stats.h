// Small statistics helpers used by the benchmark harness and by workloads
// (e.g. the holistic MEDIAN aggregate).

#ifndef NUMALAB_COMMON_STATS_H_
#define NUMALAB_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace numalab {

/// Arithmetic mean; 0 for an empty sequence.
inline double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

/// Population standard deviation; 0 for fewer than two samples.
inline double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

/// p-th percentile with linear interpolation. Copies and sorts. `p` is
/// clamped to [0, 100]: out-of-range ranks used to index past the end of
/// the sorted copy (p > 100) or wrap through a negative-to-size_t cast
/// (p < 0); a NaN p is treated as 0.
inline double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  if (!(p > 0.0)) p = 0.0;  // also catches NaN
  if (p > 100.0) p = 100.0;
  std::sort(xs.begin(), xs.end());
  double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
  size_t lo = std::min(static_cast<size_t>(rank), xs.size() - 1);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

/// Median of an integer sequence (as used by the W1 holistic aggregate):
/// lower-middle element for even sizes, computed by nth_element in place.
inline int64_t MedianInPlace(std::vector<int64_t>* xs) {
  if (xs->empty()) return 0;
  size_t mid = (xs->size() - 1) / 2;
  std::nth_element(xs->begin(), xs->begin() + static_cast<long>(mid), xs->end());
  return (*xs)[mid];
}

}  // namespace numalab

#endif  // NUMALAB_COMMON_STATS_H_
