// Small statistics helpers used by the benchmark harness and by workloads
// (e.g. the holistic MEDIAN aggregate).

#ifndef NUMALAB_COMMON_STATS_H_
#define NUMALAB_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace numalab {

/// Arithmetic mean; 0 for an empty sequence.
inline double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

/// Population standard deviation; 0 for fewer than two samples.
inline double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

/// p-th percentile with linear interpolation. Copies and sorts. `p` is
/// clamped to [0, 100]: out-of-range ranks used to index past the end of
/// the sorted copy (p > 100) or wrap through a negative-to-size_t cast
/// (p < 0); a NaN p is treated as 0.
inline double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  if (!(p > 0.0)) p = 0.0;  // also catches NaN
  if (p > 100.0) p = 100.0;
  std::sort(xs.begin(), xs.end());
  double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
  size_t lo = std::min(static_cast<size_t>(rank), xs.size() - 1);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

/// \brief Fixed-bucket latency histogram with log2 buckets.
///
/// Bucket 0 holds the value 0; bucket b (1..64) holds values in
/// [2^(b-1), 2^b - 1]. Adding is O(1) and allocation-free, so per-thread
/// instances can record every request of a serving run and be merged into
/// one run-wide histogram afterwards (Merge is a counter add, making the
/// result independent of which thread observed which sample).
///
/// Percentile(p) returns the inclusive upper bound of the bucket holding
/// the order statistic nearest the rank (p/100)*(count-1) — the same rank
/// the exact-sort Percentile above uses. It is therefore within one bucket
/// width of the exact order statistic, which tests/stats_test.cc asserts
/// against the exact-sort path.
class Histogram {
 public:
  /// Bucket 0 plus one bucket per bit of a uint64_t.
  static constexpr int kBuckets = 65;

  /// Index of the bucket holding `v`.
  static int BucketOf(uint64_t v) {
    int b = 0;
    while (v != 0) {
      v >>= 1;
      ++b;
    }
    return b;
  }

  /// Inclusive [lo, hi] range of bucket `b`.
  static uint64_t BucketLo(int b) {
    return b == 0 ? 0 : uint64_t{1} << (b - 1);
  }
  static uint64_t BucketHi(int b) {
    if (b == 0) return 0;
    if (b == 64) return ~uint64_t{0};
    return (uint64_t{1} << b) - 1;
  }
  /// Number of distinct values bucket `b` can hold — the error bound of
  /// Percentile against the exact order statistic. Bucket 64 spans
  /// [2^63, 2^64-1]: exactly 2^63 values, which fits in a uint64_t, so no
  /// special case is needed (the old `b == 64 ? 0 : 1` undercounted by one).
  static uint64_t BucketWidth(int b) {
    return BucketHi(b) - BucketLo(b) + 1;
  }

  void Add(uint64_t v) {
    ++counts_[static_cast<size_t>(BucketOf(v))];
    ++total_;
  }

  /// Folds another histogram (e.g. a different thread's) into this one.
  void Merge(const Histogram& o) {
    for (int b = 0; b < kBuckets; ++b) counts_[static_cast<size_t>(b)] +=
        o.counts_[static_cast<size_t>(b)];
    total_ += o.total_;
  }

  uint64_t total() const { return total_; }
  uint64_t count(int b) const { return counts_[static_cast<size_t>(b)]; }
  bool empty() const { return total_ == 0; }

  /// Largest non-empty bucket's upper bound; 0 for an empty histogram.
  uint64_t MaxBucketHi() const {
    for (int b = kBuckets - 1; b >= 0; --b) {
      if (counts_[static_cast<size_t>(b)] != 0) return BucketHi(b);
    }
    return 0;
  }

  /// See the class comment. `p` is clamped to [0, 100] exactly like the
  /// exact-sort Percentile; 0 for an empty histogram.
  uint64_t Percentile(double p) const {
    if (total_ == 0) return 0;
    if (!(p > 0.0)) p = 0.0;  // also catches NaN
    if (p > 100.0) p = 100.0;
    double rank = (p / 100.0) * static_cast<double>(total_ - 1);
    uint64_t idx = static_cast<uint64_t>(rank + 0.5);  // nearest order stat
    if (idx >= total_) idx = total_ - 1;
    uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts_[static_cast<size_t>(b)];
      if (seen > idx) return BucketHi(b);
    }
    return MaxBucketHi();  // unreachable: seen ends at total_ > idx
  }

 private:
  uint64_t counts_[kBuckets] = {};
  uint64_t total_ = 0;
};

/// Median of an integer sequence (as used by the W1 holistic aggregate):
/// lower-middle element for even sizes, computed by nth_element in place.
inline int64_t MedianInPlace(std::vector<int64_t>* xs) {
  if (xs->empty()) return 0;
  size_t mid = (xs->size() - 1) / 2;
  std::nth_element(xs->begin(), xs->begin() + static_cast<long>(mid), xs->end());
  return (*xs)[mid];
}

}  // namespace numalab

#endif  // NUMALAB_COMMON_STATS_H_
