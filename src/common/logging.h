// Check macros for invariants. A failed check is a bug in numalab or in its
// caller; it prints a message and aborts.

#ifndef NUMALAB_COMMON_LOGGING_H_
#define NUMALAB_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace numalab {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace numalab

#define NUMALAB_CHECK(expr)                                         \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::numalab::internal::CheckFailed(__FILE__, __LINE__, #expr);   \
    }                                                                \
  } while (0)

#define NUMALAB_DCHECK(expr) NUMALAB_CHECK(expr)

#endif  // NUMALAB_COMMON_LOGGING_H_
