#include "src/trace/trace.h"

#include "src/common/logging.h"

namespace numalab {
namespace trace {

void TraceRecorder::Begin(sim::VThread* vt, const char* name) {
  size_t tid = static_cast<size_t>(vt->id);
  if (open_.size() <= tid) open_.resize(tid + 1);
  auto& stack = open_[tid];

  SpanRecord rec;
  rec.name = name;
  rec.thread_id = vt->id;
  rec.node = machine_->NodeOfHwThread(vt->hw_thread);
  rec.depth = static_cast<int>(stack.size());
  rec.parent =
      stack.empty() ? -1 : static_cast<int64_t>(stack.back().index);
  rec.start_cycle = vt->clock;
  rec.end_cycle = vt->clock;  // finalized by End()

  stack.push_back(OpenSpan{records_.size(), vt->counters});
  records_.push_back(std::move(rec));
}

void TraceRecorder::End(sim::VThread* vt) {
  size_t tid = static_cast<size_t>(vt->id);
  NUMALAB_CHECK(tid < open_.size() && !open_[tid].empty());
  OpenSpan top = open_[tid].back();
  open_[tid].pop_back();

  SpanRecord& rec = records_[top.index];
  rec.end_cycle = vt->clock;
  rec.delta = vt->counters.Minus(top.snapshot);
}

}  // namespace trace
}  // namespace numalab
