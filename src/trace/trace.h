// TraceRecorder — per-phase virtual-time span recording for simulated
// threads (DESIGN.md section 10).
//
// Workload code marks phases with a ScopedSpan:
//
//   sim::Task W3Worker(Env& env, ...) {
//     trace::ScopedSpan worker(env.self, "worker");   // root span
//     {
//       trace::ScopedSpan s(env.self, "build");
//       ... build ...
//     }
//     ...
//   }
//
// When no recorder is attached to the engine (the default), ScopedSpan is
// a null check and nothing else. When attached, Begin snapshots the
// thread's ThreadCounters and End stores the delta, so every span knows
// exactly how many accesses / misses / DRAM hops / allocator cycles its
// phase cost — per thread and per node, not just run-total. The recorder
// never charges virtual time: attaching it cannot change simulated
// results, which is what lets the JSON export run under the byte-identical
// golden-stdout gate.
//
// Lock contract (DESIGN.md section 13): the recorder is engine-serialized.
// Begin/End run only from coroutine bodies on the single host thread that
// drives the engine, so records_/open_ need no capability — there is no
// lock to annotate, and the dynamic race detector does not apply (these
// are host-side structures, not simulated memory). Spans are appended in
// Begin order and exported by vector walk, never by hash iteration, which
// is what keeps the export deterministic (and detlint-clean).

#ifndef NUMALAB_TRACE_TRACE_H_
#define NUMALAB_TRACE_TRACE_H_

#include <cstdint>
#include <vector>

#include "src/sim/engine.h"
#include "src/topology/machine.h"
#include "src/trace/span.h"

namespace numalab {
namespace trace {

class TraceRecorder {
 public:
  /// \param machine used to resolve a thread's hw placement to its NUMA
  ///        node at span Begin (per-node attribution of the span's delta).
  explicit TraceRecorder(const topology::Machine* machine)
      : machine_(machine) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void Begin(sim::VThread* vt, const char* name);
  void End(sim::VThread* vt);

  /// Closed spans in Begin order. Spans whose coroutine frame was destroyed
  /// early (deadline watchdog) are closed by ~ScopedSpan during frame
  /// destruction, so they still appear with their last observed clock.
  const std::vector<SpanRecord>& records() const { return records_; }

 private:
  struct OpenSpan {
    size_t index;                 ///< into records_
    perf::ThreadCounters snapshot;
  };

  const topology::Machine* machine_;
  std::vector<SpanRecord> records_;
  // Per-thread stack of open spans, indexed by VThread id. Thread ids are
  // small and dense (allocation order), so a vector-of-stacks keeps End()
  // O(1) with no hashing.
  std::vector<std::vector<OpenSpan>> open_;
};

/// RAII span marker. Safe to construct with a null thread (setup Envs have
/// no VThread) and with no recorder attached — both degrade to a no-op.
class ScopedSpan {
 public:
  ScopedSpan(sim::VThread* vt, const char* name) : vt_(vt) {
    rec_ = vt != nullptr && vt->engine != nullptr
               ? vt->engine->trace_recorder()
               : nullptr;
    if (rec_ != nullptr) rec_->Begin(vt_, name);
  }
  ~ScopedSpan() {
    if (rec_ != nullptr) rec_->End(vt_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  sim::VThread* vt_;
  TraceRecorder* rec_;
};

}  // namespace trace
}  // namespace numalab

#endif  // NUMALAB_TRACE_TRACE_H_
