// Plain-data span records — the per-phase observability model (DESIGN.md
// section 10).
//
// A *span* is a named virtual-time interval inside one simulated thread:
// the workload phases the paper reasons about (build, probe, aggregate...)
// plus a root "worker" span per thread. Each span carries the delta of its
// thread's ThreadCounters between entry and exit, so per-phase/per-node
// counter breakdowns survive aggregation instead of being flattened into
// the run-total PerfReport. This header is dependency-light on purpose:
// RunResult embeds a RunTrace, so it must not pull in the engine.

#ifndef NUMALAB_TRACE_SPAN_H_
#define NUMALAB_TRACE_SPAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/perf/counters.h"

namespace numalab {
namespace trace {

/// \brief One closed span. Records are ordered by Begin time (engine
/// resume order), which is deterministic; `parent` indexes into the same
/// vector (-1 for a top-level span). `delta` is inclusive of child spans.
struct SpanRecord {
  std::string name;        ///< phase name ("worker", "build", "probe", ...)
  int thread_id = -1;      ///< VThread id
  int node = -1;           ///< NUMA node the thread was placed on at Begin
  int depth = 0;           ///< nesting depth, 0 = top-level
  int64_t parent = -1;     ///< index of the enclosing span record, or -1
  uint64_t start_cycle = 0;
  uint64_t end_cycle = 0;
  perf::ThreadCounters delta;  ///< counter deltas over [start, end]
};

/// \brief Per-thread totals at the end of a run (what AggregateCounters
/// flattens away): final placement plus the thread's full counter set.
struct ThreadSummary {
  int thread_id = -1;
  std::string name;
  int node = -1;  ///< node of the thread's final hw placement
  perf::ThreadCounters counters;
};

/// \brief Everything the recorder captured for one run. Empty (two empty
/// vectors) when tracing was off — RunResult carries one unconditionally.
struct RunTrace {
  std::vector<SpanRecord> spans;
  std::vector<ThreadSummary> threads;

  bool empty() const { return spans.empty() && threads.empty(); }
};

}  // namespace trace
}  // namespace numalab

#endif  // NUMALAB_TRACE_SPAN_H_
