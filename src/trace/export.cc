#include "src/trace/export.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace numalab {
namespace trace {

namespace {

bool g_collect = false;

std::vector<CollectedRun>& MutableRuns() {
  static std::vector<CollectedRun> runs;
  return runs;
}

// All appends go through here; buffer is sized for the longest single
// fragment we ever format (a counters object line).
void Appendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, static_cast<size_t>(n) < sizeof(buf)
                                  ? static_cast<size_t>(n)
                                  : sizeof(buf) - 1);
}

void AppendQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      case '\r': out->append("\\r"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          Appendf(out, "\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendCounters(std::string* out, const perf::ThreadCounters& c) {
  Appendf(out,
          "{\"cycles\":%" PRIu64 ",\"thread_migrations\":%" PRIu64
          ",\"mem_accesses\":%" PRIu64 ",\"private_hits\":%" PRIu64
          ",\"llc_hits\":%" PRIu64 ",\"llc_misses\":%" PRIu64,
          c.cycles, c.thread_migrations, c.mem_accesses, c.private_hits,
          c.llc_hits, c.llc_misses);
  Appendf(out,
          ",\"local_dram\":%" PRIu64 ",\"remote_dram\":%" PRIu64
          ",\"tlb_hits\":%" PRIu64 ",\"tlb_misses\":%" PRIu64
          ",\"hinting_faults\":%" PRIu64,
          c.local_dram, c.remote_dram, c.tlb_hits, c.tlb_misses,
          c.hinting_faults);
  Appendf(out,
          ",\"alloc_calls\":%" PRIu64 ",\"free_calls\":%" PRIu64
          ",\"alloc_cycles\":%" PRIu64 ",\"lock_wait_cycles\":%" PRIu64
          ",\"queue_delay_cycles\":%" PRIu64 "}",
          c.alloc_calls, c.free_calls, c.alloc_cycles, c.lock_wait_cycles,
          c.queue_delay_cycles);
}

void AppendConfig(std::string* out, const workloads::RunConfig& c) {
  out->append("{\"machine\":");
  AppendQuoted(out, c.machine);
  Appendf(out, ",\"threads\":%d,\"affinity\":\"%s\",\"policy\":\"%s\"",
          c.threads, osmodel::AffinityName(c.affinity),
          mem::MemPolicyName(c.policy));
  Appendf(out, ",\"preferred_node\":%d,\"allocator\":", c.preferred_node);
  AppendQuoted(out, c.allocator);
  Appendf(out, ",\"autonuma\":%s,\"thp\":%s,\"dataset\":\"%s\"",
          c.autonuma ? "true" : "false", c.thp ? "true" : "false",
          workloads::DatasetName(c.dataset));
  Appendf(out,
          ",\"num_records\":%" PRIu64 ",\"cardinality\":%" PRIu64
          ",\"build_rows\":%" PRIu64 ",\"probe_rows\":%" PRIu64,
          c.num_records, c.cardinality, c.build_rows, c.probe_rows);
  Appendf(out,
          ",\"seed\":%" PRIu64 ",\"run_index\":%d,\"quantum\":%" PRIu64
          ",\"scalar_mem_path\":%s,\"deadline_cycles\":%" PRIu64
          ",\"placement\":%s,\"storage\":%s}",
          c.seed, c.run_index, c.quantum,
          c.scalar_mem_path ? "true" : "false", c.deadline_cycles,
          c.placement.enabled ? "true" : "false",
          c.storage ? "true" : "false");
}

void AppendRun(std::string* out, const CollectedRun& run, int id) {
  const workloads::RunResult& r = run.result;
  Appendf(out, "    {\"id\":%d,\"workload\":", id);
  AppendQuoted(out, run.workload);
  out->append(",\n     \"config\":");
  AppendConfig(out, run.config);
  out->append(",\n     \"status\":");
  AppendQuoted(out, r.status.ToString());
  Appendf(out,
          ",\n     \"cycles\":%" PRIu64 ",\"aux_cycles\":%" PRIu64
          ",\"checksum\":%" PRIu64 ",\"lar\":%.9g",
          r.cycles, r.aux_cycles, r.checksum, r.report.LocalAccessRatio());
  Appendf(out,
          ",\n     \"requested_peak\":%" PRIu64 ",\"resident_peak\":%" PRIu64
          ",\"races\":%" PRIu64,
          r.requested_peak, r.resident_peak, r.races);
  out->append(",\n     \"counters\":");
  AppendCounters(out, r.report.threads);
  const perf::SystemCounters& s = r.report.system;
  Appendf(out,
          ",\n     \"system\":{\"page_migrations\":%" PRIu64
          ",\"thp_collapses\":%" PRIu64 ",\"thp_splits\":%" PRIu64
          ",\"pages_mapped\":%" PRIu64 ",\"bytes_mapped\":%" PRIu64
          ",\"bytes_mapped_peak\":%" PRIu64 ",\"balancer_migrations\":%" PRIu64,
          s.page_migrations, s.thp_collapses, s.thp_splits, s.pages_mapped,
          s.bytes_mapped, s.bytes_mapped_peak, s.balancer_migrations);
  Appendf(out,
          ",\n      \"pages_replicated\":%" PRIu64
          ",\"replica_reads\":%" PRIu64 ",\"replica_writes\":%" PRIu64
          ",\"replica_invalidations\":%" PRIu64 ",\"replica_drops\":%" PRIu64,
          s.pages_replicated, s.replica_reads, s.replica_writes,
          s.replica_invalidations, s.replica_drops);
  Appendf(out,
          ",\"replica_bytes_peak\":%" PRIu64 ",\"migrations_vetoed\":%" PRIu64
          ",\"capacity_bytes_total\":%" PRIu64 "}",
          s.replica_bytes_peak, s.migrations_vetoed, s.capacity_bytes_total);
  Appendf(out,
          ",\n     \"degradation\":{\"pages_spilled\":%" PRIu64
          ",\"oom_last_resort_pages\":%" PRIu64
          ",\"offline_redirects\":%" PRIu64
          ",\"all_offline_binds\":%" PRIu64
          ",\"alloc_failures_injected\":%" PRIu64
          ",\"migration_failures_injected\":%" PRIu64 "}",
          r.pages_spilled, r.oom_last_resort_pages, r.offline_redirects,
          r.all_offline_binds, r.alloc_failures_injected,
          r.migration_failures_injected);

  out->append(",\n     \"threads\":[");
  for (size_t i = 0; i < r.trace.threads.size(); ++i) {
    const ThreadSummary& t = r.trace.threads[i];
    if (i > 0) out->append(",");
    Appendf(out, "\n      {\"id\":%d,\"name\":", t.thread_id);
    AppendQuoted(out, t.name);
    Appendf(out, ",\"node\":%d,\"counters\":", t.node);
    AppendCounters(out, t.counters);
    out->append("}");
  }
  out->append("]");

  // Per-node rollup: top-level span deltas attributed to the node the
  // thread was placed on at phase entry; per-thread run totals (by final
  // placement) when the run recorded threads but no spans.
  std::vector<perf::ThreadCounters> per_node;
  std::vector<bool> node_seen;
  auto add_node = [&](int node, const perf::ThreadCounters& c) {
    if (node < 0) return;
    size_t n = static_cast<size_t>(node);
    if (per_node.size() <= n) {
      per_node.resize(n + 1);
      node_seen.resize(n + 1, false);
    }
    per_node[n].Add(c);
    node_seen[n] = true;
  };
  bool any_spans = false;
  for (const SpanRecord& sp : r.trace.spans) {
    if (sp.depth == 0) {
      add_node(sp.node, sp.delta);
      any_spans = true;
    }
  }
  if (!any_spans) {
    for (const ThreadSummary& t : r.trace.threads) {
      add_node(t.node, t.counters);
    }
  }
  out->append(",\n     \"nodes\":[");
  bool first_node = true;
  for (size_t n = 0; n < per_node.size(); ++n) {
    if (!node_seen[n]) continue;
    if (!first_node) out->append(",");
    first_node = false;
    Appendf(out, "\n      {\"node\":%zu,\"counters\":", n);
    AppendCounters(out, per_node[n]);
    out->append("}");
  }
  out->append("]");

  out->append(",\n     \"spans\":[");
  for (size_t i = 0; i < r.trace.spans.size(); ++i) {
    const SpanRecord& sp = r.trace.spans[i];
    if (i > 0) out->append(",");
    out->append("\n      {\"name\":");
    AppendQuoted(out, sp.name);
    Appendf(out,
            ",\"thread\":%d,\"node\":%d,\"depth\":%d,\"parent\":%" PRId64
            ",\"start\":%" PRIu64 ",\"end\":%" PRIu64 ",\"counters\":",
            sp.thread_id, sp.node, sp.depth, sp.parent, sp.start_cycle,
            sp.end_cycle);
    AppendCounters(out, sp.delta);
    out->append("}");
  }
  out->append("]");

  if (!run.serving_json.empty()) {
    out->append(",\n     \"serving\":");
    out->append(run.serving_json);
  }
  if (!run.storage_json.empty()) {
    out->append(",\n     \"storage\":");
    out->append(run.storage_json);
  }
  out->append("}");
}

}  // namespace

bool CollectEnabled() { return g_collect; }
void SetCollectEnabled(bool on) { g_collect = on; }

void CollectRun(const std::string& workload,
                const workloads::RunConfig& config,
                const workloads::RunResult& result) {
  if (!g_collect) return;
  MutableRuns().push_back(CollectedRun{workload, config, result, "", ""});
}

void CollectRun(const std::string& workload,
                const workloads::RunConfig& config,
                const workloads::RunResult& result,
                const std::string& serving_json) {
  if (!g_collect) return;
  MutableRuns().push_back(CollectedRun{workload, config, result,
                                       serving_json, ""});
}

void CollectRun(const std::string& workload,
                const workloads::RunConfig& config,
                const workloads::RunResult& result,
                const std::string& serving_json,
                const std::string& storage_json) {
  if (!g_collect) return;
  MutableRuns().push_back(CollectedRun{workload, config, result,
                                       serving_json, storage_json});
}

const std::vector<CollectedRun>& CollectedRuns() { return MutableRuns(); }
void ClearCollectedRuns() { MutableRuns().clear(); }

std::string BenchJson(const std::string& bench,
                      const std::vector<CollectedRun>& runs) {
  std::string out;
  Appendf(&out, "{\"schema_version\":%d,\n \"bench\":", kJsonSchemaVersion);
  AppendQuoted(&out, bench);
  out.append(",\n \"runs\":[");
  for (size_t i = 0; i < runs.size(); ++i) {
    out.append(i == 0 ? "\n" : ",\n");
    AppendRun(&out, runs[i], static_cast<int>(i));
  }
  out.append("]}\n");
  return out;
}

std::string ChromeTraceJson(const std::vector<CollectedRun>& runs) {
  std::string out;
  out.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  bool first = true;
  auto sep = [&] {
    out.append(first ? "\n" : ",\n");
    first = false;
  };
  for (size_t i = 0; i < runs.size(); ++i) {
    const CollectedRun& run = runs[i];
    int pid = static_cast<int>(i);
    sep();
    Appendf(&out,
            "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\","
            "\"args\":{\"name\":",
            pid);
    std::string label = "run" + std::to_string(pid) + " " + run.workload +
                        " machine=" + run.config.machine;
    AppendQuoted(&out, label);
    out.append("}}");
    for (const ThreadSummary& t : run.result.trace.threads) {
      sep();
      Appendf(&out,
              "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\","
              "\"args\":{\"name\":",
              pid, t.thread_id);
      AppendQuoted(&out, t.name);
      out.append("}}");
    }
    for (const SpanRecord& sp : run.result.trace.spans) {
      sep();
      Appendf(&out, "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"name\":", pid,
              sp.thread_id);
      AppendQuoted(&out, sp.name);
      Appendf(&out,
              ",\"ts\":%" PRIu64 ",\"dur\":%" PRIu64
              ",\"args\":{\"node\":%d,\"mem_accesses\":%" PRIu64
              ",\"llc_misses\":%" PRIu64 ",\"local_dram\":%" PRIu64
              ",\"remote_dram\":%" PRIu64 ",\"tlb_misses\":%" PRIu64
              ",\"alloc_cycles\":%" PRIu64 ",\"lock_wait_cycles\":%" PRIu64
              "}}",
              sp.start_cycle, sp.end_cycle - sp.start_cycle, sp.node,
              sp.delta.mem_accesses, sp.delta.llc_misses,
              sp.delta.local_dram, sp.delta.remote_dram,
              sp.delta.tlb_misses, sp.delta.alloc_cycles,
              sp.delta.lock_wait_cycles);
    }
  }
  out.append("]}\n");
  return out;
}

}  // namespace trace
}  // namespace numalab
