// Structured export of simulated runs (DESIGN.md section 10).
//
// Two halves:
//
//  1. A process-global *run collector*. The bench flags --json-out= and
//     --trace-out= (bench_common.h) enable it before any run starts; every
//     workload entry point then deposits its (config, result) pair here via
//     CollectRun, and the bench writes one schema-versioned JSON document —
//     and optionally a chrome://tracing event file — at exit. When the
//     collector is disabled, CollectRun is one predicate call and workload
//     results are untouched, so plain bench runs keep their byte-identical
//     golden stdout.
//
//  2. Pure string emitters for those documents. Everything serialized is
//     derived from the deterministic simulation (no wall time, no pointers,
//     no hash iteration order), so two same-seed runs produce byte-identical
//     bytes — scripts/check.sh asserts exactly that.

#ifndef NUMALAB_TRACE_EXPORT_H_
#define NUMALAB_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "src/workloads/run_config.h"

namespace numalab {
namespace trace {

/// Version of the JSON document layout below. Bump on any key change and
/// update scripts/validate_bench_json.py in the same commit.
/// v2: optional per-run "serving" section (numalab::serve SLO metrics).
/// v3: adaptive-placement counters in "system" (pages_replicated,
///     replica_reads/writes/invalidations/drops, replica_bytes_peak,
///     migrations_vetoed, capacity_bytes_total), "all_offline_binds" in
///     "degradation", and the "placement" flag in "config".
/// v4: optional per-run "storage" section (numalab::storage buffer-pool /
///     WAL / recovery counters) and the "storage" flag in "config"; the
///     section must be present exactly when the flag is true.
inline constexpr int kJsonSchemaVersion = 4;

/// \brief One workload run as deposited by CollectRun.
struct CollectedRun {
  std::string workload;  ///< "W1", "W3", "W4-art", "W5-q1-columnar-vec", ...
  workloads::RunConfig config;
  workloads::RunResult result;
  /// Pre-serialized JSON object for the run's "serving" key, or empty for
  /// non-serving runs (the key is omitted). Produced by serve::ServingJson;
  /// must obey the same determinism contract as the rest of the document.
  std::string serving_json;
  /// Pre-serialized JSON object for the run's "storage" key, or empty when
  /// the run had no storage engine (the key is omitted). Produced by
  /// storage::StorageJson; same determinism contract.
  std::string storage_json;
};

/// Process-wide collection switch. When on, every SimContext attaches a
/// TraceRecorder (so results carry spans) and workload entry points record
/// their runs. Flipped once at startup by ParseTraceFlags; tests may toggle
/// it but must Clear afterwards.
bool CollectEnabled();
void SetCollectEnabled(bool on);

/// Appends a run to the process-global list iff collection is enabled.
void CollectRun(const std::string& workload,
                const workloads::RunConfig& config,
                const workloads::RunResult& result);

/// As above, with a pre-serialized "serving" JSON object attached to the run
/// (see CollectedRun::serving_json).
void CollectRun(const std::string& workload,
                const workloads::RunConfig& config,
                const workloads::RunResult& result,
                const std::string& serving_json);

/// As above, additionally attaching a pre-serialized "storage" JSON object
/// (see CollectedRun::storage_json); either string may be empty to omit the
/// corresponding key.
void CollectRun(const std::string& workload,
                const workloads::RunConfig& config,
                const workloads::RunResult& result,
                const std::string& serving_json,
                const std::string& storage_json);

const std::vector<CollectedRun>& CollectedRuns();
void ClearCollectedRuns();

/// The per-bench JSON document: schema version, bench name, one entry per
/// collected run (config, status, PerfReport, LAR, degradation counters,
/// per-thread and per-node breakdowns, span tree).
std::string BenchJson(const std::string& bench,
                      const std::vector<CollectedRun>& runs);

/// Chrome trace-event format (load into chrome://tracing or Perfetto):
/// one process per run, one track per virtual thread, one complete event
/// per span; ts/dur are virtual cycles presented as microseconds.
std::string ChromeTraceJson(const std::vector<CollectedRun>& runs);

}  // namespace trace
}  // namespace numalab

#endif  // NUMALAB_TRACE_EXPORT_H_
