// TPC-H explorer: run any of the 22 queries on any of the five system
// profiles under the default or tuned OS configuration.
//
//   $ ./example_tpch_explorer [query=5] [profile=MonetDB] [sf100=5]
//
// Prints latency under both configurations plus the result digest, showing
// the paper's W5 effect on a single query at a time.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/minidb/runner.h"

using namespace numalab::minidb;

int main(int argc, char** argv) {
  int query = argc > 1 ? std::atoi(argv[1]) : 5;
  std::string profile = argc > 2 ? argv[2] : "MonetDB";
  double scale = (argc > 3 ? std::atof(argv[3]) : 5.0) / 100.0;

  const SystemProfile& prof = ProfileByName(profile);
  std::printf("TPC-H Q%d on the %s-like profile (%s), SF=%.2f, Machine A\n\n",
              query, prof.models.c_str(), prof.name.c_str(), scale);

  TpchOptions o;
  o.query = query;
  o.profile = prof.name;
  o.scale = scale;

  o.tuned = false;
  TpchResult def = RunTpch(o);
  std::printf("default OS  : %8.2f Mcycles  (%d workers, %llu result rows,"
              " digest %.4f)\n",
              static_cast<double>(def.cycles) / 1e6, def.workers,
              static_cast<unsigned long long>(def.out.rows),
              def.out.digest);

  o.tuned = true;
  TpchResult tuned = RunTpch(o);
  std::printf("tuned OS    : %8.2f Mcycles  (%d workers, %llu result rows,"
              " digest %.4f)\n\n",
              static_cast<double>(tuned.cycles) / 1e6, tuned.workers,
              static_cast<unsigned long long>(tuned.out.rows),
              tuned.out.digest);

  std::printf("latency reduction: %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(tuned.cycles) /
                                 static_cast<double>(def.cycles)));
  return 0;
}
