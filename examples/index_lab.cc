// Index lab: the W4 index nested-loop join across the four in-memory
// indexes, with a chosen allocator and placement policy.
//
//   $ ./example_index_lab [allocator=tbbmalloc] [policy=interleave]
//
// Reproduces a slice of Fig. 7 interactively: build time and join time per
// index under your configuration.

#include <cstdio>
#include <cstring>
#include <string>

#include "src/index/index.h"
#include "src/workloads/workloads.h"

using namespace numalab;
using namespace numalab::workloads;

int main(int argc, char** argv) {
  std::string alloc = argc > 1 ? argv[1] : "tbbmalloc";
  std::string policy = argc > 2 ? argv[2] : "interleave";

  RunConfig c;
  c.machine = "A";
  c.threads = 16;
  c.affinity = osmodel::Affinity::kSparse;
  c.autonuma = false;
  c.thp = false;
  c.allocator = alloc;
  c.policy = policy == "interleave" ? mem::MemPolicy::kInterleave
             : policy == "local"    ? mem::MemPolicy::kLocalAlloc
                                    : mem::MemPolicy::kFirstTouch;
  c.build_rows = 100'000;
  c.probe_rows = 1'600'000;

  std::printf("W4 index nested-loop join: %llu build rows : %llu probes "
              "(1:16), %s + %s, Machine A\n\n",
              static_cast<unsigned long long>(c.build_rows),
              static_cast<unsigned long long>(c.probe_rows), alloc.c_str(),
              policy.c_str());
  std::printf("%-10s %14s %14s %10s\n", "index", "build(Mcyc)", "join(Mcyc)",
              "matches");
  for (const std::string& index : index::AllIndexNames()) {
    RunResult r = RunW4IndexJoin(c, index);
    std::printf("%-10s %14.1f %14.1f %10llu\n", index.c_str(),
                static_cast<double>(r.aux_cycles) / 1e6,
                static_cast<double>(r.cycles) / 1e6,
                static_cast<unsigned long long>(r.checksum));
  }
  return 0;
}
