// Advisor tour: describe your situation, get the Fig. 10 walk-through, and
// watch the auto-tuner validate it empirically on the simulated machine.
//
//   $ ./example_advisor_tour [--no-root] [--low-memory] [--latency-bound]

#include <cstdio>
#include <cstring>

#include "src/advisor/advisor.h"

using namespace numalab;
using namespace numalab::advisor;

int main(int argc, char** argv) {
  Situation s;
  s.thread_placement_managed = false;
  s.bandwidth_bound = true;
  s.superuser = true;
  s.memory_placement_defined = false;
  s.allocation_heavy = true;
  s.free_memory_constrained = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-root") == 0) s.superuser = false;
    if (std::strcmp(argv[i], "--low-memory") == 0)
      s.free_memory_constrained = true;
    if (std::strcmp(argv[i], "--latency-bound") == 0)
      s.bandwidth_bound = false;
  }

  Advice a = Advise(s);
  std::printf("Recommended plan (Fig. 10):\n%s\n", a.ToString().c_str());

  std::printf("Validating empirically on simulated Machine A (12 candidate"
              " configurations, W1 probe)...\n");
  workloads::RunConfig base;
  base.machine = "A";
  base.threads = 16;
  base.num_records = 400'000;
  base.cardinality = 40'000;
  AutoTuneResult r = AutoTune(base, s);
  std::printf("  empirical best: %s affinity, %s placement, %s "
              "(%.1f Mcycles)\n",
              osmodel::AffinityName(r.best.affinity),
              mem::MemPolicyName(r.best.policy), r.best.allocator.c_str(),
              static_cast<double>(r.best_cycles) / 1e6);
  std::printf("  flowchart pick: %s affinity, %s placement, %s "
              "(%.1f Mcycles, %.0f%% of best)\n",
              osmodel::AffinityName(r.flowchart.affinity),
              mem::MemPolicyName(r.flowchart.policy),
              r.flowchart.allocator.c_str(),
              static_cast<double>(r.flowchart_cycles) / 1e6,
              100.0 * static_cast<double>(r.flowchart_cycles) /
                  static_cast<double>(r.best_cycles));
  return 0;
}
