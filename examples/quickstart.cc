// Quickstart: the out-of-the-box Linux environment vs the paper's tuned
// configuration, on one workload.
//
// Runs the holistic aggregation workload (W1) on the simulated 8-node
// Opteron box twice — once exactly as a stock Linux server would run it
// (no affinity, First Touch, AutoNUMA and THP enabled, glibc malloc), once
// with the paper's recipe (Sparse affinity, Interleave placement, AutoNUMA
// and THP off, tbbmalloc) — and prints the speedup with the perf counters
// that explain it.
//
//   $ ./example_quickstart [records] [groups]

#include <cstdio>
#include <cstdlib>

#include "src/workloads/workloads.h"

using namespace numalab;
using namespace numalab::workloads;

int main(int argc, char** argv) {
  uint64_t records = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                              : 2'000'000;
  uint64_t groups = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                             : 200'000;

  RunConfig config;  // defaults ARE the stock environment
  config.machine = "A";
  config.threads = 16;
  config.num_records = records;
  config.cardinality = groups;

  std::printf("W1 (GROUP BY + MEDIAN), %llu records, %llu groups, "
              "Machine A, 16 threads\n\n",
              static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(groups));

  RunResult stock = RunW1HolisticAggregation(config);
  std::printf("stock Linux   : %8.1f Mcycles  (LAR %.2f, %llu thread "
              "migrations, %llu page migrations)\n",
              static_cast<double>(stock.cycles) / 1e6,
              stock.report.LocalAccessRatio(),
              static_cast<unsigned long long>(
                  stock.report.threads.thread_migrations),
              static_cast<unsigned long long>(
                  stock.report.system.page_migrations));

  config.affinity = osmodel::Affinity::kSparse;
  config.policy = mem::MemPolicy::kInterleave;
  config.autonuma = false;
  config.thp = false;
  config.allocator = "tbbmalloc";
  RunResult tuned = RunW1HolisticAggregation(config);
  std::printf("paper's recipe: %8.1f Mcycles  (LAR %.2f, %llu thread "
              "migrations, %llu page migrations)\n\n",
              static_cast<double>(tuned.cycles) / 1e6,
              tuned.report.LocalAccessRatio(),
              static_cast<unsigned long long>(
                  tuned.report.threads.thread_migrations),
              static_cast<unsigned long long>(
                  tuned.report.system.page_migrations));

  std::printf("speedup: %.2fx  (same answer: %s)\n",
              static_cast<double>(stock.cycles) /
                  static_cast<double>(tuned.cycles),
              stock.checksum == tuned.checksum ? "yes" : "NO — bug!");
  std::printf("\nNote how the tuned run is faster despite a *lower* local "
              "access ratio —\nLAR is not a predictor of performance "
              "(paper Section IV-C1).\n");
  return 0;
}
