// detlint command-line driver.
//
//   detlint [--root=DIR] [--json | --json-out=FILE] [--baseline=FILE]
//           [--write-baseline=FILE] [--compile-commands=FILE]
//           [--list-rules] [PATH...]
//
// PATHs (files or directories, relative to --root, default: src bench
// tests) are expanded to .h/.hpp/.cc/.cpp sources. Exit code: 0 clean
// (or everything suppressed/baselined), 1 findings, 2 usage/IO error.
// Output is deterministic — sorted, no timestamps — so two runs over the
// same tree are byte-identical.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "tools/detlint/detlint.h"

namespace {

constexpr const char* kUsage =
    "usage: detlint [options] [PATH...]\n"
    "\n"
    "Determinism lint for the numalab tree. PATHs are files or directories\n"
    "relative to --root (default: src bench tests).\n"
    "\n"
    "  --root=DIR              repo root paths are resolved against (default .)\n"
    "  --json                  JSON report on stdout instead of human text\n"
    "  --json-out=FILE         also write the JSON report to FILE\n"
    "  --baseline=FILE         suppress findings fingerprinted in FILE\n"
    "  --write-baseline=FILE   write current findings as a new baseline\n"
    "  --compile-commands=FILE scan the files listed in a compile_commands.json\n"
    "                          (in addition to any PATHs)\n"
    "  --list-rules            print the rule catalog and exit\n"
    "  --help                  this text\n"
    "\n"
    "Suppress a single finding with `// NOLINT-DET(rule): reason` on the\n"
    "line or the line above. Exit: 0 clean, 1 findings, 2 error.\n";

bool Flag(const std::string& arg, const char* name, std::string* value) {
  std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  namespace dl = numalab::detlint;

  std::string root = ".";
  std::string baseline_path, write_baseline_path, compile_commands_path,
      json_out_path;
  bool json = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string v;
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--list-rules") {
      for (const auto& [rule, desc] : dl::Rules()) {
        std::printf("%-16s %s\n", rule.c_str(), desc.c_str());
      }
      return 0;
    } else if (arg == "--json") {
      json = true;
    } else if (Flag(arg, "--root", &root) ||
               Flag(arg, "--baseline", &baseline_path) ||
               Flag(arg, "--write-baseline", &write_baseline_path) ||
               Flag(arg, "--compile-commands", &compile_commands_path) ||
               Flag(arg, "--json-out", &json_out_path)) {
      // handled
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "detlint: unknown option '%s'\n%s", arg.c_str(),
                   kUsage);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty() && compile_commands_path.empty()) {
    paths = {"src", "bench", "tests"};
  }

  std::string error;
  std::vector<std::string> files;
  if (!paths.empty() && !dl::CollectFiles(root, paths, &files, &error)) {
    std::fprintf(stderr, "detlint: %s\n", error.c_str());
    return 2;
  }
  if (!compile_commands_path.empty()) {
    std::vector<std::string> cc_files;
    if (!dl::FilesFromCompileCommands(root, compile_commands_path, &cc_files,
                                      &error)) {
      std::fprintf(stderr, "detlint: %s\n", error.c_str());
      return 2;
    }
    files.insert(files.end(), cc_files.begin(), cc_files.end());
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
  }

  std::map<std::string, int> baseline;
  if (!baseline_path.empty() &&
      !dl::LoadBaseline(baseline_path, &baseline, &error)) {
    std::fprintf(stderr, "detlint: %s\n", error.c_str());
    return 2;
  }

  dl::ScanResult result;
  if (!dl::ScanFiles(root, files,
                     write_baseline_path.empty() ? baseline
                                                 : std::map<std::string, int>{},
                     &result, &error)) {
    std::fprintf(stderr, "detlint: %s\n", error.c_str());
    return 2;
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "detlint: cannot write %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    out << dl::RenderBaseline(result.findings);
    std::fprintf(stderr, "detlint: wrote %zu baseline entr%s to %s\n",
                 result.findings.size(),
                 result.findings.size() == 1 ? "y" : "ies",
                 write_baseline_path.c_str());
    return 0;
  }

  std::string report = json ? dl::ToJson(result) : dl::ToHuman(result);
  std::fputs(report.c_str(), stdout);
  if (!json_out_path.empty()) {
    std::ofstream out(json_out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "detlint: cannot write %s\n",
                   json_out_path.c_str());
      return 2;
    }
    out << dl::ToJson(result);
  }
  return result.findings.empty() ? 0 : 1;
}
