// detlint — determinism lint for the numalab tree.
//
// Every claim this repro makes rests on the bit-determinism contract:
// same seed => byte-identical stdout/JSON (check.sh enforces it
// dynamically by diffing two runs). detlint is the static half of that
// contract: a self-contained lexical analyzer (own comment/string-aware
// tokenizer, no libclang) that scans C++ sources for constructs which
// *can* break the contract and rejects them at build time:
//
//   wall-clock      std::chrono / time() / clock() / <ctime> etc. —
//                   wall time differs across runs by definition
//   host-rand       rand() / std::random_device / std::mt19937 / <random>
//                   — unseeded or host-entropy randomness; all draws must
//                   flow through the seeded numalab::Rng (src/common/rng.h)
//   unordered-iter  iteration over std::unordered_{map,set,...} — order is
//                   hash-seed and ASLR dependent, so it must never feed
//                   exported or ordered state
//   pointer-order   std::map/std::set keyed by pointer, %p formatting,
//                   static_cast<void*> print idiom — pointer values vary
//                   under ASLR
//   float-accum     order-sensitive floating-point accumulation: a
//                   float/double reduced inside unordered iteration, or a
//                   float/double field in a *Counter* struct (counters are
//                   integral by contract)
//   unseeded-rng    numalab::Rng constructed without an explicit seed —
//                   every such site silently draws the same default stream
//   nolint-format   malformed NOLINT-DET suppression (see below)
//
// Suppressions: `// NOLINT-DET(rule): reason` (or `NOLINT-DET(*): reason`)
// on the offending line or the line above suppresses matching findings; a
// missing rule list or empty reason is itself a finding. Grandfathered
// sites live in a checked-in baseline (tools/detlint/baseline.txt) of
// line-content fingerprints, so baselined findings survive unrelated line
// shifts but resurface the moment the flagged line changes.
//
// Output (human or --json) is deterministic: results are sorted, carry no
// timestamps or pointers, and two runs over the same tree are
// byte-identical — a property tools/detlint/detlint_test.cc asserts, since
// a nondeterministic determinism linter would be its own counterexample.

#ifndef NUMALAB_TOOLS_DETLINT_DETLINT_H_
#define NUMALAB_TOOLS_DETLINT_DETLINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace numalab {
namespace detlint {

struct Finding {
  std::string rule;
  std::string file;  ///< root-relative, '/'-separated
  int line = 1;
  int col = 1;
  std::string message;
  std::string line_text;  ///< whitespace-normalized source line
};

struct ScanResult {
  std::vector<Finding> findings;  ///< sorted by (file, line, col, rule)
  int files_scanned = 0;
  int suppressed = 0;  ///< findings silenced by NOLINT-DET
  int baselined = 0;   ///< findings silenced by the baseline
};

/// Rule ids in reporting order, and their one-line descriptions.
const std::vector<std::pair<std::string, std::string>>& Rules();
bool IsKnownRule(const std::string& id);

/// Scans one in-memory buffer. `rel_path` is used for reporting and for
/// the per-file exemptions (src/common/rng.h is exempt from wall-clock,
/// host-rand and unseeded-rng — it IS the sanctioned randomness source).
/// Findings are unsuppressed only; `suppressed_out` (optional) counts the
/// NOLINT-DET-silenced ones.
std::vector<Finding> ScanSource(const std::string& rel_path,
                                const std::string& source,
                                int* suppressed_out);

/// Expands `paths` (files or directories, relative to `root`) into a
/// sorted, deduplicated list of root-relative C++ sources
/// (.h/.hpp/.cc/.cpp). Returns false and sets `error` on a missing path.
bool CollectFiles(const std::string& root,
                  const std::vector<std::string>& paths,
                  std::vector<std::string>* out, std::string* error);

/// File list from a compile_commands.json (the build config clang-tidy
/// shares — check.sh stage 3 emits it). Entries outside `root` are
/// dropped; order is sorted and deduplicated.
bool FilesFromCompileCommands(const std::string& root,
                              const std::string& json_path,
                              std::vector<std::string>* out,
                              std::string* error);

/// Scans `rel_files` under `root`, applying `baseline` (fingerprint ->
/// allowed count). Returns false and sets `error` on an unreadable file.
bool ScanFiles(const std::string& root,
               const std::vector<std::string>& rel_files,
               const std::map<std::string, int>& baseline, ScanResult* out,
               std::string* error);

/// Stable fingerprint of a finding: FNV-1a over rule, file and the
/// normalized line text — line-number independent.
std::string FingerprintHex(const Finding& f);

/// Baseline file I/O. Format: one `rule:fingerprint:path` per line; '#'
/// comments and blank lines ignored. Duplicate entries allow that many
/// findings with the same fingerprint.
bool LoadBaseline(const std::string& path, std::map<std::string, int>* out,
                  std::string* error);
std::string RenderBaseline(const std::vector<Finding>& findings);

/// Deterministic renderings.
std::string ToJson(const ScanResult& r);
std::string ToHuman(const ScanResult& r);

}  // namespace detlint
}  // namespace numalab

#endif  // NUMALAB_TOOLS_DETLINT_DETLINT_H_
