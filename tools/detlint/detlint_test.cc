// Tests for detlint: every rule fires on its fixture, clean fixtures stay
// clean (violations inside comments/strings must not flag), suppressions
// and the baseline round-trip, and the linter's own output is
// deterministic — two scans of the real tree must be byte-identical, since
// a nondeterministic determinism linter would be its own counterexample.

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "tools/detlint/detlint.h"

namespace numalab {
namespace detlint {
namespace {

std::string ReadFixture(const std::string& name) {
  std::string path = std::string(DETLINT_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<Finding> Scan(const std::string& fixture,
                          int* suppressed = nullptr) {
  int count = 0;
  std::vector<Finding> f =
      ScanSource("testdata/" + fixture, ReadFixture(fixture),
                 suppressed != nullptr ? suppressed : &count);
  return f;
}

std::set<std::string> RulesIn(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const Finding& f : findings) rules.insert(f.rule);
  return rules;
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  int n = 0;
  for (const Finding& f : findings) n += f.rule == rule ? 1 : 0;
  return n;
}

// ---------------------------------------------------------------------------
// Per-rule fixtures.

TEST(DetlintRules, WallClockFixtureFlagsEveryPattern) {
  std::vector<Finding> f = Scan("bad_wallclock.cc");
  EXPECT_EQ(RulesIn(f), std::set<std::string>{"wall-clock"});
  // Two hazard includes + chrono::steady_clock + time() + clock().
  EXPECT_GE(CountRule(f, "wall-clock"), 5);
}

TEST(DetlintRules, HostRandFixtureFlagsEveryPattern) {
  std::vector<Finding> f = Scan("bad_hostrand.cc");
  EXPECT_EQ(RulesIn(f), std::set<std::string>{"host-rand"});
  // <random> + random_device + mt19937 + srand + rand.
  EXPECT_GE(CountRule(f, "host-rand"), 5);
}

TEST(DetlintRules, UnorderedIterFixtureFlagsRangeForAndBegin) {
  std::vector<Finding> f = Scan("bad_unordered_iter.cc");
  EXPECT_EQ(RulesIn(f), std::set<std::string>{"unordered-iter"});
  EXPECT_EQ(CountRule(f, "unordered-iter"), 2);
}

TEST(DetlintRules, PointerOrderFixtureFlagsKeysAndFormatting) {
  std::vector<Finding> f = Scan("bad_pointer_order.cc");
  EXPECT_EQ(RulesIn(f), std::set<std::string>{"pointer-order"});
  // map<Node*,..> + set<const Node*> + "%p".
  EXPECT_EQ(CountRule(f, "pointer-order"), 3);
}

TEST(DetlintRules, FloatAccumFixtureFlagsCounterFieldAndReduction) {
  std::vector<Finding> f = Scan("bad_float_accum.cc");
  EXPECT_EQ(RulesIn(f),
            (std::set<std::string>{"float-accum", "unordered-iter"}));
  // double field in *Counters* struct + `total +=` inside unordered loop.
  EXPECT_EQ(CountRule(f, "float-accum"), 2);
}

TEST(DetlintRules, UnseededRngFixtureFlagsDefaultConstructionOnly) {
  std::vector<Finding> f = Scan("bad_unseeded_rng.cc");
  EXPECT_EQ(RulesIn(f), std::set<std::string>{"unseeded-rng"});
  // `Rng rng;` + `Rng{}` — but not `Rng rng(seed)` or the `rng_` member.
  EXPECT_EQ(CountRule(f, "unseeded-rng"), 2);
}

TEST(DetlintRules, MalformedSuppressionsFlagAndDoNotSuppress) {
  std::vector<Finding> f = Scan("bad_suppression.cc");
  // Four broken NOLINT-DETs next to time() calls (plus the header comment
  // mentioning NOLINT-DET in prose, itself malformed — working as
  // intended: prose near code should use the full well-formed syntax).
  EXPECT_GE(CountRule(f, "nolint-format"), 4);
  // A malformed suppression must NOT silence the underlying finding.
  EXPECT_EQ(CountRule(f, "wall-clock"), 4);
}

// ---------------------------------------------------------------------------
// Clean fixtures.

TEST(DetlintClean, CommentsAndStringsNeverFlag) {
  int suppressed = 0;
  std::vector<Finding> f = Scan("clean.cc", &suppressed);
  EXPECT_TRUE(f.empty()) << ToHuman(ScanResult{f, 1, 0, 0});
  EXPECT_EQ(suppressed, 1);  // the sorted-export NOLINT-DET
}

TEST(DetlintClean, WellFormedSuppressionsSilenceEverything) {
  int suppressed = 0;
  std::vector<Finding> f = Scan("suppressed_clean.cc", &suppressed);
  EXPECT_TRUE(f.empty()) << ToHuman(ScanResult{f, 1, 0, 0});
  // same-line + line-above + wildcard + pointer-map + two via multi-rule.
  EXPECT_EQ(suppressed, 6);
}

TEST(DetlintClean, RngHeaderIsExemptFromRandRules) {
  // The sanctioned randomness source may mention everything it implements.
  std::vector<Finding> f = ScanSource(
      "src/common/rng.h",
      "struct SplitMix64 { };\n"
      "class Rng { Rng() {} };\n"
      "// like std::mt19937 but seeded\n"
      "uint64_t x = time(nullptr);\n",
      nullptr);
  EXPECT_TRUE(f.empty());
}

// ---------------------------------------------------------------------------
// Suppression parsing details.

TEST(DetlintSuppression, OnlyNamedRuleIsSuppressed) {
  int suppressed = 0;
  std::vector<Finding> f = ScanSource(
      "x.cc",
      "// NOLINT-DET(host-rand): wrong rule for this line\n"
      "uint64_t t = time(nullptr);\n",
      &suppressed);
  EXPECT_EQ(CountRule(f, "wall-clock"), 1);
  EXPECT_EQ(suppressed, 0);
}

TEST(DetlintSuppression, LineAboveDoesNotLeakTwoLinesDown) {
  int suppressed = 0;
  std::vector<Finding> f = ScanSource(
      "x.cc",
      "// NOLINT-DET(wall-clock): only covers the next line\n"
      "int unrelated = 0;\n"
      "uint64_t t = time(nullptr);\n",
      &suppressed);
  EXPECT_EQ(CountRule(f, "wall-clock"), 1);
  EXPECT_EQ(suppressed, 0);
}

// ---------------------------------------------------------------------------
// Baseline round-trip.

TEST(DetlintBaseline, RenderLoadRoundTripSilencesExactlyThoseFindings) {
  std::string source = ReadFixture("bad_wallclock.cc");
  int suppressed = 0;
  std::vector<Finding> findings =
      ScanSource("testdata/bad_wallclock.cc", source, &suppressed);
  ASSERT_FALSE(findings.empty());

  // Render -> write -> load.
  std::string baseline_text = RenderBaseline(findings);
  std::string path =
      ::testing::TempDir() + "/detlint_baseline_roundtrip.txt";
  {
    std::ofstream out(path, std::ios::binary);
    out << baseline_text;
  }
  std::map<std::string, int> baseline;
  std::string error;
  ASSERT_TRUE(LoadBaseline(path, &baseline, &error)) << error;
  EXPECT_EQ(baseline.size(), findings.size());

  // Every fingerprint the scan produces is covered.
  for (const Finding& f : findings) {
    EXPECT_EQ(baseline.count(f.rule + ":" + FingerprintHex(f)), 1u)
        << f.rule << " " << f.line;
  }
}

TEST(DetlintBaseline, FingerprintTracksContentNotLineNumber) {
  Finding a{"wall-clock", "x.cc", 10, 3, "m", "auto t = time(nullptr);"};
  Finding b = a;
  b.line = 99;  // moved, content unchanged
  EXPECT_EQ(FingerprintHex(a), FingerprintHex(b));
  b.line_text = "auto t2 = time(nullptr);";  // edited
  EXPECT_NE(FingerprintHex(a), FingerprintHex(b));
}

TEST(DetlintBaseline, MalformedEntryIsAnError) {
  std::string path = ::testing::TempDir() + "/detlint_baseline_bad.txt";
  {
    std::ofstream out(path, std::ios::binary);
    out << "# comment ok\n\nwall-clock only-one-colon\n";
  }
  std::map<std::string, int> baseline;
  std::string error;
  EXPECT_FALSE(LoadBaseline(path, &baseline, &error));
  EXPECT_NE(error.find("rule:fingerprint:path"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Determinism of the linter itself, over the real tree.

TEST(DetlintDeterminism, TwoTreeScansAreByteIdentical) {
  std::string root = DETLINT_REPO_ROOT;
  std::vector<std::string> files;
  std::string error;
  ASSERT_TRUE(
      CollectFiles(root, {"src", "bench", "tests"}, &files, &error))
      << error;
  ASSERT_GT(files.size(), 50u);

  ScanResult a, b;
  ASSERT_TRUE(ScanFiles(root, files, {}, &a, &error)) << error;
  ASSERT_TRUE(ScanFiles(root, files, {}, &b, &error)) << error;
  EXPECT_EQ(ToJson(a), ToJson(b));
  EXPECT_EQ(ToHuman(a), ToHuman(b));
}

TEST(DetlintDeterminism, JsonEscapesAndSortsStably) {
  ScanResult r;
  r.files_scanned = 1;
  r.findings.push_back(
      {"wall-clock", "b.cc", 2, 1, "msg \"quoted\"\n", "text"});
  r.findings.push_back({"host-rand", "a.cc", 1, 1, "msg", "text"});
  std::sort(r.findings.begin(), r.findings.end(),
            [](const Finding& x, const Finding& y) {
              return std::tie(x.file, x.line) < std::tie(y.file, y.line);
            });
  std::string json = ToJson(r);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_LT(json.find("a.cc"), json.find("b.cc"));
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The tree itself must be clean (same gate as ctest's detlint_tree and
// check.sh stage 10, run in-process so failures show the findings).

TEST(DetlintTree, RepoScansCleanModuloBaseline) {
  std::string root = DETLINT_REPO_ROOT;
  std::vector<std::string> files;
  std::string error;
  ASSERT_TRUE(CollectFiles(root, {"src", "bench", "tests", "examples"},
                           &files, &error))
      << error;

  std::map<std::string, int> baseline;
  ASSERT_TRUE(LoadBaseline(root + "/tools/detlint/baseline.txt", &baseline,
                           &error))
      << error;

  ScanResult r;
  ASSERT_TRUE(ScanFiles(root, files, baseline, &r, &error)) << error;
  EXPECT_TRUE(r.findings.empty()) << ToHuman(r);
}

// Rule catalog sanity: ids are unique, described, and the acceptance
// criterion of >=5 distinct rule classes holds.

TEST(DetlintCatalog, RulesAreUniqueAndDescribed) {
  std::set<std::string> ids;
  for (const auto& [rule, desc] : Rules()) {
    EXPECT_TRUE(ids.insert(rule).second) << "duplicate rule " << rule;
    EXPECT_FALSE(desc.empty()) << rule;
    EXPECT_TRUE(IsKnownRule(rule));
  }
  EXPECT_GE(ids.size(), 5u);
  EXPECT_FALSE(IsKnownRule("not-a-rule"));
}

}  // namespace
}  // namespace detlint
}  // namespace numalab
