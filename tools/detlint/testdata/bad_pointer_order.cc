// Fixture: pointer-as-ordering-key patterns detlint must flag.
// NOT part of any build — scanned by detlint_test and check.sh stage 10.

#include <cstdio>
#include <map>
#include <set>

namespace fixture {

struct Node {
  int id;
};

std::map<Node*, int> ranks;  // flagged: std::map keyed by pointer
std::set<const Node*> seen;  // flagged: std::set keyed by pointer

void PrintAddress(const Node* n) {
  std::printf("node at %p\n", static_cast<const void*>(n));  // flagged: %p
}

}  // namespace fixture
