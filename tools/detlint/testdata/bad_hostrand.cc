// Fixture: host-entropy randomness patterns detlint must flag.
// NOT part of any build — scanned by detlint_test and check.sh stage 10.

#include <random>   // flagged: hazard header
#include <cstdlib>

namespace fixture {

int HostEntropy() {
  std::random_device rd;  // flagged: random_device
  std::mt19937 gen(rd()); // flagged: mt19937
  return static_cast<int>(gen());
}

int LibcRand() {
  srand(42);     // flagged: srand
  return rand(); // flagged: rand
}

}  // namespace fixture
