// Fixture: order-sensitive floating-point accumulation detlint must flag.
// NOT part of any build — scanned by detlint_test and check.sh stage 10.

#include <cstdint>
#include <string>
#include <unordered_map>

namespace fixture {

// flagged: double field in a *Counter* struct
struct LatencyCounters {
  uint64_t requests = 0;
  double total_ms = 0.0;  // flagged: float-accum (counters are integral)
};

double SumValues(const std::unordered_map<std::string, double>& table) {
  double total = 0.0;
  for (const auto& [key, value] : table) {  // flagged: unordered-iter
    total += value;  // flagged: float-accum inside unordered iteration
  }
  return total;
}

}  // namespace fixture
