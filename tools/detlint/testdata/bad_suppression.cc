// Fixture: malformed NOLINT-DET comments detlint must flag (nolint-format),
// while the underlying finding still reports (a broken suppression must not
// silently suppress). NOT part of any build.

#include <cstdint>

namespace fixture {

long A() {
  return time(nullptr);  // NOLINT-DET missing the rule list entirely
}

long B() {
  return time(nullptr);  // NOLINT-DET(wall-clock) missing the reason
}

long C() {
  return time(nullptr);  // NOLINT-DET(not-a-rule): unknown rule id
}

long D() {
  return time(nullptr);  // NOLINT-DET(): empty rule list
}

}  // namespace fixture
