// Fixture: determinism-safe code, including hazard names inside comments
// and string literals which the tokenizer must NOT flag. detlint must
// report zero findings. NOT part of any build.

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

// Comments may talk about std::chrono, rand(), std::random_device and
// time() freely — prose is not code.
/* Block comments mentioning mt19937 and %p are fine too. */

const char* kMessage =
    "strings mentioning time(), rand() and std::chrono are data, not code";

// Find/erase on an unordered map without iterating it is fine.
uint64_t Lookup(const std::unordered_map<std::string, uint64_t>& table,
                const std::string& key) {
  auto it = table.find(key);
  return it == table.end() ? 0 : it->second;
}

// Sorted export: keys are copied out and ordered before any output.
std::vector<std::string> SortedKeys(
    const std::unordered_map<std::string, uint64_t>& table) {
  std::vector<std::string> keys;
  keys.reserve(table.size());
  // NOLINT-DET(unordered-iter): keys are sorted below before any consumer
  for (const auto& [key, value] : table) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Ordered map keyed by a value type: deterministic iteration.
uint64_t SumOrdered(const std::map<std::string, uint64_t>& ordered) {
  uint64_t total = 0;
  for (const auto& [key, value] : ordered) total += value;
  return total;
}

// Sequential float reduction over a vector is deterministic.
double Mean(const std::vector<double>& xs) {
  double sum = 0.0;
  for (double x : xs) sum += x;
  return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

}  // namespace fixture
