// Fixture: every wall-clock access pattern detlint must flag.
// NOT part of any build — scanned by detlint_test and check.sh stage 10.

#include <chrono>  // flagged: hazard header
#include <ctime>   // flagged: hazard header

#include <cstdint>

namespace fixture {

uint64_t NowNanos() {
  auto t = std::chrono::steady_clock::now();  // flagged: chrono + clock type
  return static_cast<uint64_t>(t.time_since_epoch().count());
}

long Epoch() {
  return time(nullptr);  // flagged: bare time() call
}

double Elapsed() {
  return static_cast<double>(clock());  // flagged: bare clock() call
}

}  // namespace fixture
