// Fixture: unseeded numalab::Rng construction detlint must flag.
// NOT part of any build (never compiled) — scanned by detlint_test and
// check.sh stage 10, so the Rng here is a lexical stand-in for
// src/common/rng.h's.

#include <cstdint>

namespace numalab {

uint64_t DefaultStream() {
  Rng rng;  // flagged: default-constructed (same stream at every site)
  return rng.Next();
}

uint64_t BracedDefault() {
  auto rng = Rng{};  // flagged: braced default construction
  return rng.Next();
}

uint64_t Seeded(uint64_t seed) {
  Rng rng(seed);  // NOT flagged: explicit seed
  return rng.Next();
}

struct Worker {
  explicit Worker(uint64_t seed) : rng_(seed) {}
  Rng rng_;  // NOT flagged: members ending in '_' are seeded in the ctor
};

}  // namespace numalab
