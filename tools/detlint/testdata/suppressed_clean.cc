// Fixture: every hazard correctly suppressed — detlint must report zero
// findings here and count the suppressions. NOT part of any build.

#include <cstdint>
#include <map>

namespace fixture {

long SameLine() {
  return time(nullptr);  // NOLINT-DET(wall-clock): fixture exercises same-line suppression
}

long LineAbove() {
  // NOLINT-DET(wall-clock): fixture exercises line-above suppression
  return time(nullptr);
}

long Wildcard() {
  return time(nullptr);  // NOLINT-DET(*): fixture exercises wildcard suppression
}

struct Node {
  int id;
};

// NOLINT-DET(pointer-order): fixture exercises multi-rule suppression lists
std::map<Node*, int> ranks;

long MultiRule() {
  // NOLINT-DET(wall-clock, host-rand): fixture exercises comma-separated rules
  return time(nullptr) + rand();
}

}  // namespace fixture
