// Fixture: unordered-container iteration patterns detlint must flag.
// NOT part of any build — scanned by detlint_test and check.sh stage 10.

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

void DumpCounts(const std::unordered_map<std::string, uint64_t>& counts) {
  for (const auto& [key, value] : counts) {  // flagged: range-for
    std::printf("%s %llu\n", key.c_str(),
                static_cast<unsigned long long>(value));
  }
}

uint64_t FirstElement(std::unordered_set<uint64_t>& seen) {
  auto it = seen.begin();  // flagged: begin() on unordered container
  return it == seen.end() ? 0 : *it;
}

}  // namespace fixture
