// detlint implementation. See detlint.h for the rule catalog and
// DESIGN.md section 13 for the policy (how to suppress, how to add a
// rule).
//
// Structure: a comment/string-aware tokenizer produces an identifier/punct
// stream plus per-line comment text; declaration passes collect the names
// of unordered-container and float/double variables declared in the file;
// then the rule passes walk the token stream. Everything is lexical — no
// preprocessing, no type resolution — so each rule is scoped to patterns
// whose false-positive rate on idiomatic code is near zero, and the escape
// hatches (NOLINT-DET, baseline) are first-class.

#include "tools/detlint/detlint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <tuple>
#include <unordered_set>

namespace numalab {
namespace detlint {

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Tokenizer.

struct Tok {
  enum Kind { kIdent, kPunct, kString, kNumber };
  Kind kind;
  std::string text;
  int line;
  int col;
};

struct Lexed {
  std::vector<Tok> toks;
  std::map<int, std::string> comments;   // line -> comment text (merged)
  std::vector<std::pair<int, std::string>> includes;  // line -> header name
  std::vector<std::string> lines;        // raw source lines (1-based - 1)
};

bool IdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IdentChar(char c) { return IdentStart(c) || (c >= '0' && c <= '9'); }

const char* kMultiPunct[] = {"::", "->", "+=", "-=", "*=", "/=", "%=", "&=",
                             "|=", "^=", "<<=", ">>=", "==", "!=", "<=",
                             ">=", "&&", "||", "<<", ">>", "++", "--"};

Lexed Lex(const std::string& src) {
  Lexed out;
  {
    std::string cur;
    for (char c : src) {
      if (c == '\n') {
        out.lines.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    out.lines.push_back(cur);
  }

  size_t i = 0, n = src.size();
  int line = 1, col = 1;
  auto advance = [&](size_t k) {
    for (size_t j = 0; j < k && i < n; ++j, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };
  auto add_comment = [&](int at, const std::string& text) {
    std::string& slot = out.comments[at];
    if (!slot.empty()) slot.push_back(' ');
    slot += text;
  };

  while (i < n) {
    char c = src[i];
    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      size_t e = src.find('\n', i);
      if (e == std::string::npos) e = n;
      add_comment(line, src.substr(i, e - i));
      advance(e - i);
      continue;
    }
    // Block comment (attached to its starting line; multi-line block
    // comments attach each line's text to that line so NOLINT-DET inside
    // them still lands next to the code it annotates).
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      size_t e = src.find("*/", i + 2);
      size_t end = e == std::string::npos ? n : e + 2;
      std::string body = src.substr(i, end - i);
      int at = line;
      std::string piece;
      for (char bc : body) {
        if (bc == '\n') {
          add_comment(at, piece);
          piece.clear();
          ++at;
        } else {
          piece.push_back(bc);
        }
      }
      if (!piece.empty()) add_comment(at, piece);
      advance(end - i);
      continue;
    }
    // Preprocessor directive: emit no tokens, but record #include names.
    if (c == '#' && (col == 1 || [&] {
          // '#' preceded only by whitespace on its line.
          size_t b = i;
          while (b > 0 && src[b - 1] != '\n' &&
                 (src[b - 1] == ' ' || src[b - 1] == '\t'))
            --b;
          return b == 0 || src[b - 1] == '\n';
        }())) {
      size_t e = src.find('\n', i);
      if (e == std::string::npos) e = n;
      // Logical line continuation.
      while (e < n && e > 0 && src[e - 1] == '\\') {
        e = src.find('\n', e + 1);
        if (e == std::string::npos) e = n;
      }
      std::string dir = src.substr(i, e - i);
      size_t p = dir.find_first_not_of(" \t", 1);
      if (p != std::string::npos && dir.compare(p, 7, "include") == 0) {
        size_t a = dir.find_first_of("<\"", p + 7);
        if (a != std::string::npos) {
          char close = dir[a] == '<' ? '>' : '"';
          size_t b = dir.find(close, a + 1);
          if (b != std::string::npos) {
            out.includes.emplace_back(line, dir.substr(a + 1, b - a - 1));
          }
        }
      }
      advance(e - i);
      continue;
    }
    // String literal (incl. raw strings) and char literal.
    if (c == '"' || c == '\'' ||
        (c == 'R' && i + 1 < n && src[i + 1] == '"')) {
      int tl = line, tc = col;
      size_t start = i;
      if (c == 'R') {
        size_t paren = src.find('(', i + 2);
        if (paren == std::string::npos) {
          advance(n - i);
          continue;
        }
        std::string delim = ")" + src.substr(i + 2, paren - (i + 2)) + "\"";
        size_t e = src.find(delim, paren + 1);
        size_t end = e == std::string::npos ? n : e + delim.size();
        out.toks.push_back(
            {Tok::kString, src.substr(start, end - start), tl, tc});
        advance(end - i);
        continue;
      }
      char quote = c;
      size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      size_t end = j < n ? j + 1 : n;
      out.toks.push_back(
          {Tok::kString, src.substr(start, end - start), tl, tc});
      advance(end - i);
      continue;
    }
    // Identifier / keyword.
    if (IdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IdentChar(src[j])) ++j;
      out.toks.push_back({Tok::kIdent, src.substr(i, j - i), line, col});
      advance(j - i);
      continue;
    }
    // Number (good enough: digits and the usual suffix/exponent chars).
    if (c >= '0' && c <= '9') {
      size_t j = i + 1;
      while (j < n && (IdentChar(src[j]) || src[j] == '.' ||
                       (src[j] == '\'' && j + 1 < n &&
                        IdentChar(src[j + 1])) ||  // digit separator
                       ((src[j] == '+' || src[j] == '-') && j > 0 &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P'))))
        ++j;
      out.toks.push_back({Tok::kNumber, src.substr(i, j - i), line, col});
      advance(j - i);
      continue;
    }
    // Punctuation (longest multi-char first).
    std::string best(1, c);
    for (const char* mp : kMultiPunct) {
      size_t len = std::char_traits<char>::length(mp);
      if (len > best.size() && i + len <= n &&
          src.compare(i, len, mp) == 0) {
        best = mp;
      }
    }
    out.toks.push_back({Tok::kPunct, best, line, col});
    advance(best.size());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Helpers over the token stream.

const Tok kNull{Tok::kPunct, "", 0, 0};

struct Stream {
  const std::vector<Tok>& t;
  const Tok& at(size_t i) const { return i < t.size() ? t[i] : kNull; }
  const Tok& prev(size_t i) const { return i == 0 ? kNull : t[i - 1]; }
  const Tok& prev2(size_t i) const { return i < 2 ? kNull : t[i - 2]; }
};

bool Is(const Tok& t, const char* s) { return t.text == s; }

/// Advances past a balanced <...> starting at the '<' at index `i`;
/// returns the index just after the closing '>' (or tokens.size() if
/// unbalanced). Treats '>>' as two closes.
size_t SkipAngles(const Stream& s, size_t i) {
  int depth = 0;
  size_t n = s.t.size();
  for (; i < n; ++i) {
    const std::string& x = s.t[i].text;
    if (x == "<") {
      ++depth;
    } else if (x == ">") {
      if (--depth == 0) return i + 1;
    } else if (x == ">>") {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (x == ";" || x == "{") {
      return i;  // bail: not a template argument list after all
    }
  }
  return n;
}

/// Matching close brace for the '{' at `i`; tokens.size() if unbalanced.
size_t MatchBrace(const Stream& s, size_t i) {
  int depth = 0;
  for (size_t n = s.t.size(); i < n; ++i) {
    if (Is(s.t[i], "{")) ++depth;
    if (Is(s.t[i], "}") && --depth == 0) return i;
  }
  return s.t.size();
}

/// Matching ')' for the '(' at `i`.
size_t MatchParen(const Stream& s, size_t i) {
  int depth = 0;
  for (size_t n = s.t.size(); i < n; ++i) {
    if (Is(s.t[i], "(")) ++depth;
    if (Is(s.t[i], ")") && --depth == 0) return i;
  }
  return s.t.size();
}

const std::unordered_set<std::string>& UnorderedTypes() {
  static const std::unordered_set<std::string> kSet = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kSet;
}

// Identifiers that are nondeterministic whenever they appear.
const std::unordered_set<std::string>& WallClockIdents() {
  static const std::unordered_set<std::string> kSet = {
      "steady_clock", "system_clock", "high_resolution_clock", "utc_clock",
      "tai_clock", "gps_clock", "file_clock", "gettimeofday",
      "clock_gettime", "timespec_get", "ftime"};
  return kSet;
}
// Nondeterministic only as a call: `time(...)`, `clock(...)`, ...
const std::unordered_set<std::string>& WallClockCalls() {
  static const std::unordered_set<std::string> kSet = {
      "time", "clock", "localtime", "localtime_r", "gmtime", "gmtime_r",
      "mktime", "difftime", "strftime", "asctime", "ctime"};
  return kSet;
}
const std::unordered_set<std::string>& HostRandIdents() {
  static const std::unordered_set<std::string> kSet = {
      "random_device", "mt19937", "mt19937_64", "minstd_rand",
      "minstd_rand0", "default_random_engine", "knuth_b", "ranlux24",
      "ranlux24_base", "ranlux48", "ranlux48_base", "random_shuffle",
      "mersenne_twister_engine", "linear_congruential_engine",
      "subtract_with_carry_engine"};
  return kSet;
}
const std::unordered_set<std::string>& HostRandCalls() {
  static const std::unordered_set<std::string> kSet = {
      "rand", "srand", "rand_r", "srandom", "drand48", "erand48", "lrand48",
      "mrand48", "random"};
  return kSet;
}

// #include targets that drag a hazard in wholesale.
const std::map<std::string, std::string>& HazardHeaders() {
  static const std::map<std::string, std::string> kMap = {
      {"chrono", "wall-clock"},     {"ctime", "wall-clock"},
      {"time.h", "wall-clock"},     {"sys/time.h", "wall-clock"},
      {"sys/timeb.h", "wall-clock"}, {"random", "host-rand"}};
  return kMap;
}

/// True when the identifier at `i` is used as a plain (or std::/globally
/// qualified) function call — not a member (`x.time(...)`) and not a
/// qualified name from another class (`Foo::time(...)`).
bool IsBareCall(const Stream& s, size_t i) {
  if (!Is(s.at(i + 1), "(")) return false;
  const Tok& p = s.prev(i);
  if (Is(p, ".") || Is(p, "->")) return false;
  if (Is(p, "::")) {
    const Tok& q = s.prev2(i);
    return q.kind == Tok::kIdent ? q.text == "std" : true;  // `::time(`
  }
  return true;
}

std::string NormalizeWs(const std::string& s) {
  std::string out;
  bool in_ws = false;
  for (char c : s) {
    if (c == ' ' || c == '\t') {
      in_ws = !out.empty();
      continue;
    }
    if (in_ws) out.push_back(' ');
    in_ws = false;
    out.push_back(c);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppressions: `// NOLINT-DET(rule[,rule...]): reason`.

struct Suppression {
  std::set<std::string> rules;  // "*" = all
  bool malformed = false;
  std::string why_malformed;
};

Suppression ParseNolint(const std::string& comment, size_t pos) {
  Suppression sup;
  size_t p = pos + std::char_traits<char>::length("NOLINT-DET");
  if (p >= comment.size() || comment[p] != '(') {
    sup.malformed = true;
    sup.why_malformed = "missing (rule) list";
    return sup;
  }
  size_t close = comment.find(')', p);
  if (close == std::string::npos) {
    sup.malformed = true;
    sup.why_malformed = "unterminated (rule) list";
    return sup;
  }
  std::string rules = comment.substr(p + 1, close - p - 1);
  std::stringstream ss(rules);
  std::string r;
  while (std::getline(ss, r, ',')) {
    size_t a = r.find_first_not_of(" \t");
    size_t b = r.find_last_not_of(" \t");
    if (a == std::string::npos) continue;
    std::string id = r.substr(a, b - a + 1);
    if (id != "*" && !IsKnownRule(id)) {
      sup.malformed = true;
      sup.why_malformed = "unknown rule '" + id + "'";
      return sup;
    }
    sup.rules.insert(id);
  }
  if (sup.rules.empty()) {
    sup.malformed = true;
    sup.why_malformed = "empty rule list";
    return sup;
  }
  size_t after = close + 1;
  if (after >= comment.size() || comment[after] != ':' ||
      comment.find_first_not_of(" \t", after + 1) == std::string::npos) {
    sup.malformed = true;
    sup.why_malformed = "missing ': reason'";
    return sup;
  }
  return sup;
}

// ---------------------------------------------------------------------------
// The scanner proper.

struct Scanner {
  const std::string& path;
  const Lexed& lx;
  Stream s;
  std::vector<Finding> raw;  // pre-suppression

  std::set<std::string> unordered_vars;
  std::set<std::string> float_vars;

  void Emit(const std::string& rule, int line, int col,
            const std::string& message) {
    // One finding per (rule, line): a single hazardous statement should
    // not demand several identical suppressions.
    for (const Finding& f : raw) {
      if (f.rule == rule && f.line == line) return;
    }
    Finding f;
    f.rule = rule;
    f.file = path;
    f.line = line;
    f.col = col;
    f.message = message;
    size_t idx = static_cast<size_t>(line - 1);
    f.line_text =
        idx < lx.lines.size() ? NormalizeWs(lx.lines[idx]) : std::string();
    raw.push_back(std::move(f));
  }

  // ---- declaration passes ----

  void CollectDecls() {
    const std::vector<Tok>& t = s.t;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Tok::kIdent) continue;
      // unordered_map<K,V> name / std::unordered_set<T>& name ...
      if (UnorderedTypes().count(t[i].text) != 0 && Is(s.at(i + 1), "<")) {
        size_t j = SkipAngles(s, i + 1);
        while (Is(s.at(j), "&") || Is(s.at(j), "*") ||
               (s.at(j).kind == Tok::kIdent && s.at(j).text == "const"))
          ++j;
        if (s.at(j).kind == Tok::kIdent && !Is(s.at(j + 1), "(")) {
          unordered_vars.insert(s.at(j).text);
        }
      }
      // float/double declarations (locals, params, members).
      if (t[i].text == "float" || t[i].text == "double") {
        const Tok& p = s.prev(i);
        if (Is(p, "<") || Is(p, "(") || Is(p, ",")) {
          // Template argument or cast, unless the following shape is a
          // parameter declaration (`, double x` / `(double x`).
          if (!(s.at(i + 1).kind == Tok::kIdent &&
                (Is(s.at(i + 2), ",") || Is(s.at(i + 2), ")") ||
                 Is(s.at(i + 2), "=")))) {
            continue;
          }
        }
        if (s.at(i + 1).kind != Tok::kIdent) continue;
        // `double Mean(...)` declares a function, not an accumulator.
        if (Is(s.at(i + 2), "(")) continue;
        float_vars.insert(s.at(i + 1).text);
        // `double x = 0, y = 1;`
        size_t j = i + 2;
        while (j < t.size() && !Is(t[j], ";") && !Is(t[j], ")") &&
               !Is(t[j], "{")) {
          if (Is(t[j], ",") && s.at(j + 1).kind == Tok::kIdent &&
              !Is(s.at(j + 2), "(")) {
            float_vars.insert(s.at(j + 1).text);
          }
          ++j;
        }
      }
    }
  }

  // ---- rule passes ----

  void CheckIncludes() {
    for (const auto& [line, header] : lx.includes) {
      auto it = HazardHeaders().find(header);
      if (it == HazardHeaders().end()) continue;
      Emit(it->second, line, 1,
           "#include <" + header + "> drags in a " +
               (it->second == "wall-clock" ? std::string("wall-clock time")
                                           : std::string("host-entropy RNG")) +
               " facility; use the seeded src/common/rng.h instead");
    }
  }

  void CheckIdents() {
    for (size_t i = 0; i < s.t.size(); ++i) {
      const Tok& t = s.t[i];
      if (t.kind != Tok::kIdent) continue;
      const Tok& p = s.prev(i);
      if (Is(p, ".") || Is(p, "->")) continue;  // member of something else
      if (t.text == "chrono" && Is(p, "::")) {
        Emit("wall-clock", t.line, t.col,
             "std::chrono reads wall-clock time; simulated runs must use "
             "virtual cycles");
        continue;
      }
      if (WallClockIdents().count(t.text) != 0) {
        Emit("wall-clock", t.line, t.col,
             t.text + " is a wall-clock time source");
        continue;
      }
      if (WallClockCalls().count(t.text) != 0 && IsBareCall(s, i)) {
        Emit("wall-clock", t.line, t.col,
             t.text + "() reads wall-clock time");
        continue;
      }
      if (HostRandIdents().count(t.text) != 0) {
        Emit("host-rand", t.line, t.col,
             t.text + " draws host randomness; all randomness must flow "
             "through the seeded numalab::Rng (src/common/rng.h)");
        continue;
      }
      if (HostRandCalls().count(t.text) != 0 && IsBareCall(s, i)) {
        Emit("host-rand", t.line, t.col,
             t.text + "() draws host randomness; use the seeded "
             "numalab::Rng (src/common/rng.h)");
        continue;
      }
    }
  }

  void CheckUnorderedIteration() {
    for (size_t i = 0; i < s.t.size(); ++i) {
      const Tok& t = s.t[i];
      // for (... : container)
      if (t.kind == Tok::kIdent && t.text == "for" && Is(s.at(i + 1), "(")) {
        size_t close = MatchParen(s, i + 1);
        size_t colon = 0;
        int depth = 0;
        for (size_t j = i + 1; j < close; ++j) {
          if (Is(s.t[j], "(")) ++depth;
          if (Is(s.t[j], ")")) --depth;
          if (depth == 1 && Is(s.t[j], ":")) {
            colon = j;
            break;
          }
        }
        if (colon == 0) continue;
        bool unordered = false;
        for (size_t j = colon + 1; j < close; ++j) {
          if (s.t[j].kind == Tok::kIdent &&
              unordered_vars.count(s.t[j].text) != 0) {
            unordered = true;
            break;
          }
        }
        if (!unordered) continue;
        Emit("unordered-iter", t.line, t.col,
             "iteration over an unordered container: order depends on the "
             "hash seed and addresses; sort keys (or use an ordered "
             "structure) before this can feed exported or ordered state");
        CheckFloatAccumInLoop(close);
        continue;
      }
      // container.begin() / container->cbegin()
      if (t.kind == Tok::kIdent && unordered_vars.count(t.text) != 0 &&
          (Is(s.at(i + 1), ".") || Is(s.at(i + 1), "->"))) {
        const std::string& m = s.at(i + 2).text;
        if ((m == "begin" || m == "cbegin" || m == "rbegin") &&
            Is(s.at(i + 3), "(")) {
          Emit("unordered-iter", t.line, t.col,
               "iterator over an unordered container: traversal order is "
               "nondeterministic");
        }
      }
    }
  }

  /// Body of an unordered range-for begins right after its closing ')' at
  /// `close`: either a braced block or a single statement. Floating-point
  /// compound assignment inside is an order-sensitive reduction.
  void CheckFloatAccumInLoop(size_t close) {
    size_t body_begin = close + 1, body_end;
    if (Is(s.at(body_begin), "{")) {
      body_end = MatchBrace(s, body_begin);
    } else {
      body_end = body_begin;
      while (body_end < s.t.size() && !Is(s.t[body_end], ";")) ++body_end;
    }
    for (size_t j = body_begin; j < body_end; ++j) {
      if (!Is(s.t[j], "+=") && !Is(s.t[j], "-=") && !Is(s.t[j], "*=")) {
        continue;
      }
      // Walk back over an optional [index] to the accumulator's name.
      size_t k = j;
      if (k > 0 && Is(s.t[k - 1], "]")) {
        int d = 0;
        while (k > 0) {
          --k;
          if (Is(s.t[k], "]")) ++d;
          if (Is(s.t[k], "[") && --d == 0) break;
        }
      }
      if (k == 0) continue;
      const Tok& lhs = s.t[k - 1];
      if (lhs.kind == Tok::kIdent && float_vars.count(lhs.text) != 0) {
        Emit("float-accum", s.t[j].line, s.t[j].col,
             "floating-point accumulation inside unordered iteration: the "
             "sum depends on traversal order; accumulate integers or sort "
             "first");
      }
    }
  }

  void CheckCounterStructFloats() {
    for (size_t i = 0; i < s.t.size(); ++i) {
      const Tok& t = s.t[i];
      if (t.kind != Tok::kIdent ||
          (t.text != "struct" && t.text != "class")) {
        continue;
      }
      const Tok& name = s.at(i + 1);
      if (name.kind != Tok::kIdent ||
          name.text.find("ounter") == std::string::npos) {
        continue;
      }
      size_t j = i + 2;
      while (j < s.t.size() && !Is(s.t[j], "{") && !Is(s.t[j], ";")) ++j;
      if (!Is(s.at(j), "{")) continue;  // forward declaration
      size_t end = MatchBrace(s, j);
      for (size_t k = j + 1; k < end; ++k) {
        if (s.t[k].kind == Tok::kIdent &&
            (s.t[k].text == "float" || s.t[k].text == "double") &&
            s.at(k + 1).kind == Tok::kIdent && !Is(s.at(k + 2), "(")) {
          Emit("float-accum", s.t[k].line, s.t[k].col,
               "float/double field in counters struct '" + name.text +
                   "': counters are summed across threads/nodes, and "
                   "floating-point addition is order-sensitive — use "
                   "integral counters");
        }
      }
    }
  }

  void CheckPointerOrder() {
    for (size_t i = 0; i < s.t.size(); ++i) {
      const Tok& t = s.t[i];
      // std::map<T*, ...> / std::set<T*> (ordered by raw pointer value).
      if (t.kind == Tok::kIdent &&
          (t.text == "map" || t.text == "set" || t.text == "multimap" ||
           t.text == "multiset") &&
          Is(s.prev(i), "::") && s.prev2(i).text == "std" &&
          Is(s.at(i + 1), "<")) {
        int depth = 0;
        for (size_t j = i + 1; j < s.t.size(); ++j) {
          const std::string& x = s.t[j].text;
          if (x == "<") {
            ++depth;
          } else if (x == ">" || x == ">>") {
            depth -= x == ">" ? 1 : 2;
            if (depth <= 0) break;
          } else if (x == "," && depth == 1) {
            break;  // end of the key type
          } else if (x == "*" && depth == 1) {
            Emit("pointer-order", t.line, t.col,
                 "std::" + t.text +
                     " keyed by a pointer: iteration order follows raw "
                     "addresses, which vary under ASLR; key by a stable id "
                     "instead");
            break;
          } else if (x == ";" || x == "{") {
            break;
          }
        }
      }
      // %p in a format string.
      if (t.kind == Tok::kString && t.text.find("%p") != std::string::npos) {
        Emit("pointer-order", t.line, t.col,
             "pointer value formatted with %p: addresses vary under ASLR "
             "and must never reach exported output");
      }
      // static_cast<void*>(...) — the ostream pointer-printing idiom.
      if (t.kind == Tok::kIdent && t.text == "static_cast" &&
          Is(s.at(i + 1), "<") && s.at(i + 2).text == "void" &&
          Is(s.at(i + 3), "*") && Is(s.at(i + 4), ">")) {
        Emit("pointer-order", t.line, t.col,
             "static_cast<void*> (pointer-printing idiom): addresses vary "
             "under ASLR and must never reach exported output");
      }
    }
  }

  void CheckUnseededRng() {
    for (size_t i = 0; i < s.t.size(); ++i) {
      const Tok& t = s.t[i];
      if (t.kind != Tok::kIdent || t.text != "Rng") continue;
      const Tok& p = s.prev(i);
      if (p.text == "class" || p.text == "struct" || Is(p, "::") ||
          Is(p, ".") || Is(p, "->")) {
        continue;
      }
      const Tok& n1 = s.at(i + 1);
      const Tok& n2 = s.at(i + 2);
      bool flag = false;
      if (Is(n1, "(") && Is(n2, ")")) flag = true;        // Rng()
      if (Is(n1, "{") && Is(n2, "}")) flag = true;        // Rng{}
      if (Is(n1, ";") && p.text == "new") flag = true;    // new Rng;
      if (n1.kind == Tok::kIdent && Is(n2, ";") &&
          (n1.text.empty() || n1.text.back() != '_')) {
        flag = true;  // `Rng r;` (members `rng_;` are seeded in ctors)
      }
      if (flag) {
        Emit("unseeded-rng", t.line, t.col,
             "Rng constructed without an explicit seed: every such site "
             "draws the same default stream; derive the seed from the "
             "run's RunConfig::seed");
      }
    }
  }

  void Run() {
    CollectDecls();
    CheckIncludes();
    CheckIdents();
    CheckUnorderedIteration();
    CheckCounterStructFloats();
    CheckPointerOrder();
    CheckUnseededRng();
  }
};

// Files exempt from the rules that would flag the sanctioned
// implementation itself.
bool IsExempt(const std::string& rel_path, const std::string& rule) {
  if (rel_path == "src/common/rng.h") {
    return rule == "wall-clock" || rule == "host-rand" ||
           rule == "unseeded-rng";
  }
  // The linter's own sources must name the hazards they detect (rule
  // tables, message strings, docs) — exempt from everything. The fixture
  // corpus is NOT exempt: check.sh stage 10 depends on it flagging.
  if (rel_path.rfind("tools/detlint/", 0) == 0 &&
      rel_path.rfind("tools/detlint/testdata/", 0) != 0) {
    return true;
  }
  return false;
}

uint64_t Fnv1a(const std::string& s, uint64_t h) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

void JsonEscape(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      case '\r': out->append("\\r"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

const std::vector<std::pair<std::string, std::string>>& Rules() {
  static const std::vector<std::pair<std::string, std::string>> kRules = {
      {"wall-clock",
       "wall-clock time source; simulated runs must be seed-deterministic"},
      {"host-rand",
       "host RNG facility; all randomness flows through src/common/rng.h"},
      {"unordered-iter",
       "iteration over an unordered container (hash/ASLR-dependent order)"},
      {"pointer-order",
       "pointer values used for ordering, keys or output (ASLR-dependent)"},
      {"float-accum",
       "order-sensitive floating-point accumulation in a counter path"},
      {"unseeded-rng", "numalab::Rng constructed without an explicit seed"},
      {"nolint-format",
       "malformed NOLINT-DET; need NOLINT-DET(rule[,rule]): reason"},
  };
  return kRules;
}

bool IsKnownRule(const std::string& id) {
  for (const auto& [rule, desc] : Rules()) {
    if (rule == id) return true;
  }
  return false;
}

std::vector<Finding> ScanSource(const std::string& rel_path,
                                const std::string& source,
                                int* suppressed_out) {
  Lexed lx = Lex(source);
  Scanner sc{rel_path, lx, Stream{lx.toks}, {}, {}, {}};
  sc.Run();

  // Suppressions (and malformed suppressions, which are findings).
  std::map<int, Suppression> sups;
  for (const auto& [line, text] : lx.comments) {
    size_t pos = text.find("NOLINT-DET");
    if (pos == std::string::npos) continue;
    Suppression sup = ParseNolint(text, pos);
    if (sup.malformed) {
      Finding f;
      f.rule = "nolint-format";
      f.file = rel_path;
      f.line = line;
      f.col = 1;
      f.message = "malformed NOLINT-DET (" + sup.why_malformed +
                  "); need NOLINT-DET(rule[,rule]): reason";
      size_t idx = static_cast<size_t>(line - 1);
      f.line_text = idx < lx.lines.size() ? NormalizeWs(lx.lines[idx])
                                          : std::string();
      sc.raw.push_back(std::move(f));
    } else {
      sups[line] = std::move(sup);
    }
  }

  int suppressed = 0;
  std::vector<Finding> out;
  for (Finding& f : sc.raw) {
    if (IsExempt(rel_path, f.rule)) continue;
    bool quiet = false;
    if (f.rule != "nolint-format") {
      for (int at : {f.line, f.line - 1}) {
        auto it = sups.find(at);
        if (it != sups.end() && (it->second.rules.count("*") != 0 ||
                                 it->second.rules.count(f.rule) != 0)) {
          quiet = true;
          break;
        }
      }
    }
    if (quiet) {
      ++suppressed;
    } else {
      out.push_back(std::move(f));
    }
  }
  if (suppressed_out != nullptr) *suppressed_out += suppressed;
  std::sort(out.begin(), out.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.col, a.rule) <
                     std::tie(b.file, b.line, b.col, b.rule);
            });
  return out;
}

bool CollectFiles(const std::string& root,
                  const std::vector<std::string>& paths,
                  std::vector<std::string>* out, std::string* error) {
  std::set<std::string> files;
  auto want = [](const fs::path& p) {
    std::string e = p.extension().string();
    return e == ".h" || e == ".hpp" || e == ".cc" || e == ".cpp";
  };
  for (const std::string& p : paths) {
    fs::path full = fs::path(root) / p;
    std::error_code ec;
    if (fs::is_directory(full, ec)) {
      for (fs::recursive_directory_iterator it(full, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && want(it->path())) {
          files.insert(
              fs::relative(it->path(), root, ec).generic_string());
        }
      }
    } else if (fs::is_regular_file(full, ec)) {
      files.insert(fs::relative(full, root, ec).generic_string());
    } else {
      if (error != nullptr) *error = "no such file or directory: " + p;
      return false;
    }
  }
  out->assign(files.begin(), files.end());
  return true;
}

bool FilesFromCompileCommands(const std::string& root,
                              const std::string& json_path,
                              std::vector<std::string>* out,
                              std::string* error) {
  std::string text;
  if (!ReadFile(json_path, &text)) {
    if (error != nullptr) *error = "cannot read " + json_path;
    return false;
  }
  std::set<std::string> files;
  const std::string key = "\"file\"";
  fs::path rootp = fs::weakly_canonical(fs::path(root));
  for (size_t pos = text.find(key); pos != std::string::npos;
       pos = text.find(key, pos + key.size())) {
    size_t colon = text.find(':', pos + key.size());
    if (colon == std::string::npos) continue;
    size_t q1 = text.find('"', colon);
    if (q1 == std::string::npos) continue;
    size_t q2 = text.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    std::string file = text.substr(q1 + 1, q2 - q1 - 1);
    std::error_code ec;
    fs::path canon = fs::weakly_canonical(fs::path(file), ec);
    if (ec) continue;
    auto rel = fs::relative(canon, rootp, ec);
    if (ec) continue;
    std::string rels = rel.generic_string();
    if (rels.rfind("..", 0) == 0) continue;  // outside the root
    files.insert(rels);
  }
  out->assign(files.begin(), files.end());
  return true;
}

std::string FingerprintHex(const Finding& f) {
  uint64_t h = 1469598103934665603ULL;
  h = Fnv1a(f.rule, h);
  h = Fnv1a("\x1f", h);
  h = Fnv1a(f.file, h);
  h = Fnv1a("\x1f", h);
  h = Fnv1a(f.line_text, h);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

bool LoadBaseline(const std::string& path, std::map<std::string, int>* out,
                  std::string* error) {
  std::string text;
  if (!ReadFile(path, &text)) {
    if (error != nullptr) *error = "cannot read baseline " + path;
    return false;
  }
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    size_t a = line.find_first_not_of(" \t");
    if (a == std::string::npos || line[a] == '#') continue;
    size_t c1 = line.find(':', a);
    size_t c2 = c1 == std::string::npos ? c1 : line.find(':', c1 + 1);
    if (c2 == std::string::npos) {
      if (error != nullptr) {
        *error = "bad baseline entry (want rule:fingerprint:path): " + line;
      }
      return false;
    }
    // Keyed by rule + fingerprint; the trailing path is for humans.
    ++(*out)[line.substr(a, c2 - a)];
  }
  return true;
}

std::string RenderBaseline(const std::vector<Finding>& findings) {
  std::string out =
      "# detlint baseline — grandfathered findings, one rule:fingerprint:"
      "path per line.\n"
      "# Regenerate with: detlint --root=. --write-baseline=tools/detlint/"
      "baseline.txt <paths>\n"
      "# The fingerprint hashes the normalized line text, so entries track "
      "moved lines\n"
      "# but expire as soon as the flagged code changes. Prefer fixing or "
      "NOLINT-DET\n"
      "# with a reason; the baseline is for pre-existing debt only.\n";
  std::vector<std::string> lines;
  lines.reserve(findings.size());
  for (const Finding& f : findings) {
    lines.push_back(f.rule + ":" + FingerprintHex(f) + ":" + f.file);
  }
  std::sort(lines.begin(), lines.end());
  for (const std::string& l : lines) {
    out += l;
    out.push_back('\n');
  }
  return out;
}

bool ScanFiles(const std::string& root,
               const std::vector<std::string>& rel_files,
               const std::map<std::string, int>& baseline, ScanResult* out,
               std::string* error) {
  std::map<std::string, int> remaining = baseline;
  for (const std::string& rel : rel_files) {
    std::string src;
    if (!ReadFile((fs::path(root) / rel).string(), &src)) {
      if (error != nullptr) *error = "cannot read " + rel;
      return false;
    }
    ++out->files_scanned;
    for (Finding& f : ScanSource(rel, src, &out->suppressed)) {
      auto it = remaining.find(f.rule + ":" + FingerprintHex(f));
      if (it != remaining.end() && it->second > 0) {
        --it->second;
        ++out->baselined;
        continue;
      }
      out->findings.push_back(std::move(f));
    }
  }
  std::sort(out->findings.begin(), out->findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.col, a.rule) <
                     std::tie(b.file, b.line, b.col, b.rule);
            });
  return true;
}

std::string ToJson(const ScanResult& r) {
  std::string out;
  out += "{\"tool\":\"detlint\",\"schema_version\":1,";
  out += "\"files_scanned\":" + std::to_string(r.files_scanned) + ",";
  out += "\"suppressed\":" + std::to_string(r.suppressed) + ",";
  out += "\"baselined\":" + std::to_string(r.baselined) + ",";
  out += "\"findings\":[";
  for (size_t i = 0; i < r.findings.size(); ++i) {
    const Finding& f = r.findings[i];
    if (i > 0) out.push_back(',');
    out += "\n {\"file\":";
    JsonEscape(&out, f.file);
    out += ",\"line\":" + std::to_string(f.line);
    out += ",\"col\":" + std::to_string(f.col);
    out += ",\"rule\":";
    JsonEscape(&out, f.rule);
    out += ",\"fingerprint\":";
    JsonEscape(&out, FingerprintHex(f));
    out += ",\"message\":";
    JsonEscape(&out, f.message);
    out += "}";
  }
  out += "]}\n";
  return out;
}

std::string ToHuman(const ScanResult& r) {
  std::string out;
  for (const Finding& f : r.findings) {
    out += f.file + ":" + std::to_string(f.line) + ":" +
           std::to_string(f.col) + ": [" + f.rule + "] " + f.message + "\n";
  }
  out += "detlint: " + std::to_string(r.findings.size()) + " finding(s) (" +
         std::to_string(r.suppressed) + " suppressed, " +
         std::to_string(r.baselined) + " baselined) in " +
         std::to_string(r.files_scanned) + " file(s)\n";
  return out;
}

}  // namespace detlint
}  // namespace numalab
