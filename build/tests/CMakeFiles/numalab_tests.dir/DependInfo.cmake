
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/advisor_test.cc" "tests/CMakeFiles/numalab_tests.dir/advisor_test.cc.o" "gcc" "tests/CMakeFiles/numalab_tests.dir/advisor_test.cc.o.d"
  "/root/repo/tests/alloc_os_test.cc" "tests/CMakeFiles/numalab_tests.dir/alloc_os_test.cc.o" "gcc" "tests/CMakeFiles/numalab_tests.dir/alloc_os_test.cc.o.d"
  "/root/repo/tests/allocator_test.cc" "tests/CMakeFiles/numalab_tests.dir/allocator_test.cc.o" "gcc" "tests/CMakeFiles/numalab_tests.dir/allocator_test.cc.o.d"
  "/root/repo/tests/contention_test.cc" "tests/CMakeFiles/numalab_tests.dir/contention_test.cc.o" "gcc" "tests/CMakeFiles/numalab_tests.dir/contention_test.cc.o.d"
  "/root/repo/tests/datagen_test.cc" "tests/CMakeFiles/numalab_tests.dir/datagen_test.cc.o" "gcc" "tests/CMakeFiles/numalab_tests.dir/datagen_test.cc.o.d"
  "/root/repo/tests/hash_table_test.cc" "tests/CMakeFiles/numalab_tests.dir/hash_table_test.cc.o" "gcc" "tests/CMakeFiles/numalab_tests.dir/hash_table_test.cc.o.d"
  "/root/repo/tests/index_test.cc" "tests/CMakeFiles/numalab_tests.dir/index_test.cc.o" "gcc" "tests/CMakeFiles/numalab_tests.dir/index_test.cc.o.d"
  "/root/repo/tests/mem_system_test.cc" "tests/CMakeFiles/numalab_tests.dir/mem_system_test.cc.o" "gcc" "tests/CMakeFiles/numalab_tests.dir/mem_system_test.cc.o.d"
  "/root/repo/tests/microbench_test.cc" "tests/CMakeFiles/numalab_tests.dir/microbench_test.cc.o" "gcc" "tests/CMakeFiles/numalab_tests.dir/microbench_test.cc.o.d"
  "/root/repo/tests/minidb_test.cc" "tests/CMakeFiles/numalab_tests.dir/minidb_test.cc.o" "gcc" "tests/CMakeFiles/numalab_tests.dir/minidb_test.cc.o.d"
  "/root/repo/tests/os_model_test.cc" "tests/CMakeFiles/numalab_tests.dir/os_model_test.cc.o" "gcc" "tests/CMakeFiles/numalab_tests.dir/os_model_test.cc.o.d"
  "/root/repo/tests/sim_engine_test.cc" "tests/CMakeFiles/numalab_tests.dir/sim_engine_test.cc.o" "gcc" "tests/CMakeFiles/numalab_tests.dir/sim_engine_test.cc.o.d"
  "/root/repo/tests/span_parity_test.cc" "tests/CMakeFiles/numalab_tests.dir/span_parity_test.cc.o" "gcc" "tests/CMakeFiles/numalab_tests.dir/span_parity_test.cc.o.d"
  "/root/repo/tests/tlb_cache_test.cc" "tests/CMakeFiles/numalab_tests.dir/tlb_cache_test.cc.o" "gcc" "tests/CMakeFiles/numalab_tests.dir/tlb_cache_test.cc.o.d"
  "/root/repo/tests/topology_test.cc" "tests/CMakeFiles/numalab_tests.dir/topology_test.cc.o" "gcc" "tests/CMakeFiles/numalab_tests.dir/topology_test.cc.o.d"
  "/root/repo/tests/tpch_golden_test.cc" "tests/CMakeFiles/numalab_tests.dir/tpch_golden_test.cc.o" "gcc" "tests/CMakeFiles/numalab_tests.dir/tpch_golden_test.cc.o.d"
  "/root/repo/tests/w4_test.cc" "tests/CMakeFiles/numalab_tests.dir/w4_test.cc.o" "gcc" "tests/CMakeFiles/numalab_tests.dir/w4_test.cc.o.d"
  "/root/repo/tests/workload_smoke_test.cc" "tests/CMakeFiles/numalab_tests.dir/workload_smoke_test.cc.o" "gcc" "tests/CMakeFiles/numalab_tests.dir/workload_smoke_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/numalab.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
