# Empty compiler generated dependencies file for numalab_tests.
# This may be replaced when dependencies are built.
