# Empty compiler generated dependencies file for bench_fig3_affinity_variance.
# This may be replaced when dependencies are built.
