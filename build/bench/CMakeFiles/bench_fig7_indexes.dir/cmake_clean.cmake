file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_indexes.dir/bench_fig7_indexes.cc.o"
  "CMakeFiles/bench_fig7_indexes.dir/bench_fig7_indexes.cc.o.d"
  "bench_fig7_indexes"
  "bench_fig7_indexes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_indexes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
