# Empty dependencies file for bench_fig5_os_config.
# This may be replaced when dependencies are built.
