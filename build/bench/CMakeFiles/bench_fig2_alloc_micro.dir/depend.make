# Empty dependencies file for bench_fig2_alloc_micro.
# This may be replaced when dependencies are built.
