file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_allocators.dir/bench_fig6_allocators.cc.o"
  "CMakeFiles/bench_fig6_allocators.dir/bench_fig6_allocators.cc.o.d"
  "bench_fig6_allocators"
  "bench_fig6_allocators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_allocators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
