# Empty compiler generated dependencies file for bench_fig6_allocators.
# This may be replaced when dependencies are built.
