# Empty compiler generated dependencies file for bench_fig4_sparse_dense.
# This may be replaced when dependencies are built.
