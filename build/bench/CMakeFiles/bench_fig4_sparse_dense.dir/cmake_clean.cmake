file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sparse_dense.dir/bench_fig4_sparse_dense.cc.o"
  "CMakeFiles/bench_fig4_sparse_dense.dir/bench_fig4_sparse_dense.cc.o.d"
  "bench_fig4_sparse_dense"
  "bench_fig4_sparse_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sparse_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
