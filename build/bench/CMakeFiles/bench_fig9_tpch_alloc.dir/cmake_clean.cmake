file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_tpch_alloc.dir/bench_fig9_tpch_alloc.cc.o"
  "CMakeFiles/bench_fig9_tpch_alloc.dir/bench_fig9_tpch_alloc.cc.o.d"
  "bench_fig9_tpch_alloc"
  "bench_fig9_tpch_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_tpch_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
