# Empty compiler generated dependencies file for bench_fig9_tpch_alloc.
# This may be replaced when dependencies are built.
