# Empty compiler generated dependencies file for bench_ext_onchip_numa.
# This may be replaced when dependencies are built.
