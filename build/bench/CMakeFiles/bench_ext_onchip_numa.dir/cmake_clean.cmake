file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_onchip_numa.dir/bench_ext_onchip_numa.cc.o"
  "CMakeFiles/bench_ext_onchip_numa.dir/bench_ext_onchip_numa.cc.o.d"
  "bench_ext_onchip_numa"
  "bench_ext_onchip_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_onchip_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
