file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_advisor.dir/bench_fig10_advisor.cc.o"
  "CMakeFiles/bench_fig10_advisor.dir/bench_fig10_advisor.cc.o.d"
  "bench_fig10_advisor"
  "bench_fig10_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
