# Empty compiler generated dependencies file for numalab.
# This may be replaced when dependencies are built.
