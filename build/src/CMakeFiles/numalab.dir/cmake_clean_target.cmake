file(REMOVE_RECURSE
  "libnumalab.a"
)
