
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/advisor/advisor.cc" "src/CMakeFiles/numalab.dir/advisor/advisor.cc.o" "gcc" "src/CMakeFiles/numalab.dir/advisor/advisor.cc.o.d"
  "/root/repo/src/alloc/allocator.cc" "src/CMakeFiles/numalab.dir/alloc/allocator.cc.o" "gcc" "src/CMakeFiles/numalab.dir/alloc/allocator.cc.o.d"
  "/root/repo/src/alloc/framework.cc" "src/CMakeFiles/numalab.dir/alloc/framework.cc.o" "gcc" "src/CMakeFiles/numalab.dir/alloc/framework.cc.o.d"
  "/root/repo/src/alloc/hoard.cc" "src/CMakeFiles/numalab.dir/alloc/hoard.cc.o" "gcc" "src/CMakeFiles/numalab.dir/alloc/hoard.cc.o.d"
  "/root/repo/src/alloc/jemalloc.cc" "src/CMakeFiles/numalab.dir/alloc/jemalloc.cc.o" "gcc" "src/CMakeFiles/numalab.dir/alloc/jemalloc.cc.o.d"
  "/root/repo/src/alloc/mcmalloc.cc" "src/CMakeFiles/numalab.dir/alloc/mcmalloc.cc.o" "gcc" "src/CMakeFiles/numalab.dir/alloc/mcmalloc.cc.o.d"
  "/root/repo/src/alloc/ptmalloc.cc" "src/CMakeFiles/numalab.dir/alloc/ptmalloc.cc.o" "gcc" "src/CMakeFiles/numalab.dir/alloc/ptmalloc.cc.o.d"
  "/root/repo/src/alloc/registry.cc" "src/CMakeFiles/numalab.dir/alloc/registry.cc.o" "gcc" "src/CMakeFiles/numalab.dir/alloc/registry.cc.o.d"
  "/root/repo/src/alloc/supermalloc.cc" "src/CMakeFiles/numalab.dir/alloc/supermalloc.cc.o" "gcc" "src/CMakeFiles/numalab.dir/alloc/supermalloc.cc.o.d"
  "/root/repo/src/alloc/tbbmalloc.cc" "src/CMakeFiles/numalab.dir/alloc/tbbmalloc.cc.o" "gcc" "src/CMakeFiles/numalab.dir/alloc/tbbmalloc.cc.o.d"
  "/root/repo/src/alloc/tcmalloc.cc" "src/CMakeFiles/numalab.dir/alloc/tcmalloc.cc.o" "gcc" "src/CMakeFiles/numalab.dir/alloc/tcmalloc.cc.o.d"
  "/root/repo/src/datagen/datagen.cc" "src/CMakeFiles/numalab.dir/datagen/datagen.cc.o" "gcc" "src/CMakeFiles/numalab.dir/datagen/datagen.cc.o.d"
  "/root/repo/src/index/art.cc" "src/CMakeFiles/numalab.dir/index/art.cc.o" "gcc" "src/CMakeFiles/numalab.dir/index/art.cc.o.d"
  "/root/repo/src/index/btree.cc" "src/CMakeFiles/numalab.dir/index/btree.cc.o" "gcc" "src/CMakeFiles/numalab.dir/index/btree.cc.o.d"
  "/root/repo/src/index/index_registry.cc" "src/CMakeFiles/numalab.dir/index/index_registry.cc.o" "gcc" "src/CMakeFiles/numalab.dir/index/index_registry.cc.o.d"
  "/root/repo/src/index/masstree.cc" "src/CMakeFiles/numalab.dir/index/masstree.cc.o" "gcc" "src/CMakeFiles/numalab.dir/index/masstree.cc.o.d"
  "/root/repo/src/index/skiplist.cc" "src/CMakeFiles/numalab.dir/index/skiplist.cc.o" "gcc" "src/CMakeFiles/numalab.dir/index/skiplist.cc.o.d"
  "/root/repo/src/mem/mem_system.cc" "src/CMakeFiles/numalab.dir/mem/mem_system.cc.o" "gcc" "src/CMakeFiles/numalab.dir/mem/mem_system.cc.o.d"
  "/root/repo/src/mem/page.cc" "src/CMakeFiles/numalab.dir/mem/page.cc.o" "gcc" "src/CMakeFiles/numalab.dir/mem/page.cc.o.d"
  "/root/repo/src/mem/sim_os.cc" "src/CMakeFiles/numalab.dir/mem/sim_os.cc.o" "gcc" "src/CMakeFiles/numalab.dir/mem/sim_os.cc.o.d"
  "/root/repo/src/minidb/exec.cc" "src/CMakeFiles/numalab.dir/minidb/exec.cc.o" "gcc" "src/CMakeFiles/numalab.dir/minidb/exec.cc.o.d"
  "/root/repo/src/minidb/queries.cc" "src/CMakeFiles/numalab.dir/minidb/queries.cc.o" "gcc" "src/CMakeFiles/numalab.dir/minidb/queries.cc.o.d"
  "/root/repo/src/minidb/runner.cc" "src/CMakeFiles/numalab.dir/minidb/runner.cc.o" "gcc" "src/CMakeFiles/numalab.dir/minidb/runner.cc.o.d"
  "/root/repo/src/minidb/tpch_gen.cc" "src/CMakeFiles/numalab.dir/minidb/tpch_gen.cc.o" "gcc" "src/CMakeFiles/numalab.dir/minidb/tpch_gen.cc.o.d"
  "/root/repo/src/osmodel/autonuma.cc" "src/CMakeFiles/numalab.dir/osmodel/autonuma.cc.o" "gcc" "src/CMakeFiles/numalab.dir/osmodel/autonuma.cc.o.d"
  "/root/repo/src/osmodel/thp.cc" "src/CMakeFiles/numalab.dir/osmodel/thp.cc.o" "gcc" "src/CMakeFiles/numalab.dir/osmodel/thp.cc.o.d"
  "/root/repo/src/osmodel/thread_sched.cc" "src/CMakeFiles/numalab.dir/osmodel/thread_sched.cc.o" "gcc" "src/CMakeFiles/numalab.dir/osmodel/thread_sched.cc.o.d"
  "/root/repo/src/perf/counters.cc" "src/CMakeFiles/numalab.dir/perf/counters.cc.o" "gcc" "src/CMakeFiles/numalab.dir/perf/counters.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/CMakeFiles/numalab.dir/sim/engine.cc.o" "gcc" "src/CMakeFiles/numalab.dir/sim/engine.cc.o.d"
  "/root/repo/src/topology/machine.cc" "src/CMakeFiles/numalab.dir/topology/machine.cc.o" "gcc" "src/CMakeFiles/numalab.dir/topology/machine.cc.o.d"
  "/root/repo/src/workloads/alloc_microbench.cc" "src/CMakeFiles/numalab.dir/workloads/alloc_microbench.cc.o" "gcc" "src/CMakeFiles/numalab.dir/workloads/alloc_microbench.cc.o.d"
  "/root/repo/src/workloads/sim_context.cc" "src/CMakeFiles/numalab.dir/workloads/sim_context.cc.o" "gcc" "src/CMakeFiles/numalab.dir/workloads/sim_context.cc.o.d"
  "/root/repo/src/workloads/w1_w2_agg.cc" "src/CMakeFiles/numalab.dir/workloads/w1_w2_agg.cc.o" "gcc" "src/CMakeFiles/numalab.dir/workloads/w1_w2_agg.cc.o.d"
  "/root/repo/src/workloads/w3_hash_join.cc" "src/CMakeFiles/numalab.dir/workloads/w3_hash_join.cc.o" "gcc" "src/CMakeFiles/numalab.dir/workloads/w3_hash_join.cc.o.d"
  "/root/repo/src/workloads/w4_index_join.cc" "src/CMakeFiles/numalab.dir/workloads/w4_index_join.cc.o" "gcc" "src/CMakeFiles/numalab.dir/workloads/w4_index_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
