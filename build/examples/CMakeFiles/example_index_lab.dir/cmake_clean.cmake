file(REMOVE_RECURSE
  "CMakeFiles/example_index_lab.dir/index_lab.cc.o"
  "CMakeFiles/example_index_lab.dir/index_lab.cc.o.d"
  "example_index_lab"
  "example_index_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_index_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
