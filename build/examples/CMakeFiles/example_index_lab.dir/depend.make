# Empty dependencies file for example_index_lab.
# This may be replaced when dependencies are built.
