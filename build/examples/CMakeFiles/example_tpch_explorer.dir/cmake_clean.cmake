file(REMOVE_RECURSE
  "CMakeFiles/example_tpch_explorer.dir/tpch_explorer.cc.o"
  "CMakeFiles/example_tpch_explorer.dir/tpch_explorer.cc.o.d"
  "example_tpch_explorer"
  "example_tpch_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tpch_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
