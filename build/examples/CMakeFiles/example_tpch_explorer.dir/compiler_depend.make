# Empty compiler generated dependencies file for example_tpch_explorer.
# This may be replaced when dependencies are built.
