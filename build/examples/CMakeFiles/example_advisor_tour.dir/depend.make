# Empty dependencies file for example_advisor_tour.
# This may be replaced when dependencies are built.
