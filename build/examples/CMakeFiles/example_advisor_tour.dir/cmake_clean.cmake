file(REMOVE_RECURSE
  "CMakeFiles/example_advisor_tour.dir/advisor_tour.cc.o"
  "CMakeFiles/example_advisor_tour.dir/advisor_tour.cc.o.d"
  "example_advisor_tour"
  "example_advisor_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_advisor_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
