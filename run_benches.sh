#!/bin/bash
# Runs every bench binary in a fixed roster order, echoing a header per
# binary. Cells can run as concurrent host processes (JOBS/--jobs); the
# emitted stream is always merged back in roster order, so the bytes on
# stdout are identical at every job count — `JOBS=8 ./run_benches.sh` must
# (and does) byte-match the committed serial golden.
#
# Exit status: 0 only if every binary exits 0. A missing, failing, or
# timed-out binary is reported immediately after its cell is emitted and
# again in a summary line, and the script exits with the (first, in roster
# order) failing binary's status so CI cannot mask bench failures.
#
# Environment knobs:
#   BUILD_DIR=<dir>        bench binaries are taken from <dir>/bench
#                          (default: build)
#   JOBS=N | --jobs=N      run up to N bench cells concurrently (default 1).
#                          Each cell spools stdout/stderr to per-bench files;
#                          cells are emitted strictly in roster order as they
#                          complete, so output bytes never depend on N.
#   BENCHES="a b ..."      override the roster (for harness tests and quick
#                          subset runs). Order is preserved.
#   RACE_DETECT=1          pass --race-detect=1 to every bench: the
#                          simulated-thread race detector runs and any
#                          report makes that bench exit 1
#   FAULTLAB=1             pass --faultlab=1 to every bench (canned per-node
#                          memory-pressure plan; see src/faultlab) and also
#                          run the bench_faultlab_grid robustness sweep
#   BENCH_TIMEOUT_SECS=N   per-bench watchdog via timeout(1); a bench that
#                          exceeds it is killed and reported as timed out
#                          (default: 600, 0 disables). The watchdog wraps the
#                          cell runner (scripts/parallel_run.sh), whose
#                          status file doubles as the sentinel: a bench that
#                          *itself* exits 124 is a plain failure, only a real
#                          watchdog kill is a timeout.
#   JSON_OUT_DIR=<dir>     pass --json-out=<dir>/<bench>.json to every bench,
#                          keep the per-bench stdout spools as <dir>/<bench>.stdout,
#                          and merge the per-bench documents into
#                          <dir>/BENCH_results.json after the run. The merged
#                          document records the expected roster and every
#                          failed cell, so a crashed bench can never yield a
#                          schema-valid "complete" merge
#                          (scripts/validate_bench_json.py rejects it).
#                          Export is pure bookkeeping: stdout stays
#                          byte-identical to a run without it (notices go to
#                          stderr).
#   BENCH_TIMING_OUT=<file> write host-side wall-clock timings (per bench and
#                          total, plus the job count) as JSON. Host timing is
#                          inherently nondeterministic, so it lives only in
#                          this file — never in stdout or the bench JSON.
set -u
build_dir=${BUILD_DIR:-build}
timeout_secs=${BENCH_TIMEOUT_SECS:-600}
json_dir=${JSON_OUT_DIR:-}
timing_out=${BENCH_TIMING_OUT:-}
jobs=${JOBS:-1}
for arg in "$@"; do
  case $arg in
    --jobs=*) jobs=${arg#--jobs=} ;;
    *)
      echo "run_benches.sh: unknown argument '$arg' (only --jobs=N)" >&2
      exit 2
      ;;
  esac
done
if ! [[ $jobs =~ ^[1-9][0-9]*$ ]]; then
  echo "run_benches.sh: JOBS/--jobs must be a positive integer, got '$jobs'" >&2
  exit 2
fi
extra_args=()
if [[ ${RACE_DETECT:-0} != 0 ]]; then
  extra_args+=(--race-detect=1)
  echo "run_benches.sh: race detection enabled (--race-detect=1)"
fi
if [[ -n $json_dir ]]; then
  mkdir -p "$json_dir" || exit 1
  echo "run_benches.sh: structured export enabled; merged document:" \
       "$json_dir/BENCH_results.json" >&2
fi
benches=(bench_machines bench_fig2_alloc_micro bench_fig3_affinity_variance
         bench_fig4_sparse_dense bench_table3_profile bench_fig5_os_config
         bench_fig6_allocators bench_fig7_indexes bench_fig8_tpch
         bench_fig9_tpch_alloc bench_fig10_advisor bench_ablations
         bench_ext_onchip_numa bench_serving bench_placement bench_storage)
if [[ ${FAULTLAB:-0} != 0 ]]; then
  extra_args+=(--faultlab=1)
  benches+=(bench_faultlab_grid)
  echo "run_benches.sh: fault injection enabled (--faultlab=1)"
fi
if [[ -n ${BENCHES:-} ]]; then
  read -r -a benches <<< "$BENCHES"
fi
n=${#benches[@]}

script_dir=$(cd "$(dirname "$0")" && pwd)
cell_runner=$script_dir/scripts/parallel_run.sh

# Bench binaries live under $build_dir/bench; accept absolute or
# CWD-relative BUILD_DIR.
case $build_dir in
  /*) bench_root=$build_dir/bench ;;
  *) bench_root=./$build_dir/bench ;;
esac

# Spool directory: per-bench stdout/stderr/status files. Kept (next to the
# JSON exports) when JSON_OUT_DIR is set so CI can reuse the per-bench
# stdout without re-running; otherwise a temp dir removed at exit.
if [[ -n $json_dir ]]; then
  spool_dir=$json_dir
else
  spool_dir=$(mktemp -d "${TMPDIR:-/tmp}/run_benches.XXXXXX") || exit 1
  trap 'rm -rf "$spool_dir"' EXIT
fi

# Interrupting a --jobs=N run mid-flight must not leave half-written
# per-cell spools behind: in JSON_OUT_DIR mode the spools live in the
# export directory itself, and a later merge (or a CI retry reusing the
# directory) would happily pick up the stale .stdout/.json files as if
# that cell had completed. On SIGINT/SIGTERM, kill the in-flight cells,
# then remove every per-bench spool/export file this run could have
# produced (plus any partial merged document) before exiting with the
# conventional 128+signal status.
cleanup_interrupt() {
  local sig=$1 code=$2
  trap - INT TERM
  local p
  for p in ${pid[@]+"${pid[@]}"}; do
    [[ -n $p ]] && kill "$p" 2>/dev/null
  done
  wait 2>/dev/null
  local b
  for b in "${benches[@]}"; do
    rm -f "$spool_dir/$b.stdout" "$spool_dir/$b.stderr" "$spool_dir/$b.status"
    [[ -n $json_dir ]] && rm -f "$json_dir/$b.json"
  done
  [[ -n $json_dir ]] && rm -f "$json_dir/BENCH_results.json"
  echo "run_benches.sh: interrupted (SIG$sig); removed per-cell spools" >&2
  exit "$code"
}
trap 'cleanup_interrupt INT 130' INT
trap 'cleanup_interrupt TERM 143' TERM

# timeout(1) wrapper; falls back to no watchdog if coreutils timeout is
# missing or the watchdog is disabled. The fallback is loud: silently
# dropping the watchdog makes a hung bench in a minimal container look
# like a hung script.
wrapper=()
if [[ $timeout_secs != 0 ]]; then
  if command -v timeout >/dev/null 2>&1; then
    wrapper=(timeout -k 10 "$timeout_secs")
  else
    echo "run_benches.sh: NOTICE: coreutils timeout(1) not found on PATH;" \
         "running WITHOUT the ${timeout_secs}s per-bench watchdog —" \
         "a hung bench will hang this script" >&2
  fi
fi

run_start=$EPOCHREALTIME
failed=()
timed_out=()
status=0
declare -a pid           # wrapper pid per roster index ("" = no process)
declare -a wrapper_rc    # wrapper exit status per roster index
declare -a cell_kind     # ok | exit | timeout | missing | no-status
declare -a cell_status   # bench (or wrapper) exit status per roster index
declare -a cell_secs     # host seconds per roster index ("" if unknown)
inflight=0
reap_ptr=0   # lowest roster index whose cell has not been reaped yet
emit_ptr=0   # lowest roster index not yet emitted

# Emits one completed cell in roster order: header + spooled stdout on
# stdout, spooled bench stderr + harness FAIL lines on stderr. Classifies
# the result from the status-file sentinel (see scripts/parallel_run.sh).
emit_cell() {
  local i=$1 b=${benches[$1]}
  echo "===================================================================="
  echo "== $b"
  echo "===================================================================="
  if [[ ${cell_kind[i]} == missing ]]; then
    echo "run_benches.sh: FAIL: $bench_root/$b not found or not executable" >&2
    failed+=("$b")
    [[ $status -eq 0 ]] && status=127
    echo
    return
  fi
  cat "$spool_dir/$b.stdout"
  cat "$spool_dir/$b.stderr" >&2
  local rc=${wrapper_rc[i]} bench_rc="" secs=""
  if [[ -s $spool_dir/$b.status ]]; then
    read -r bench_rc secs < "$spool_dir/$b.status"
  fi
  cell_secs[i]=$secs
  if [[ -z $bench_rc ]]; then
    # No status file: the cell runner died before recording the bench's own
    # exit — only the watchdog (or an outside kill) does that.
    if [[ ${#wrapper[@]} -gt 0 ]]; then
      echo "run_benches.sh: FAIL: $b timed out after ${timeout_secs}s" >&2
      timed_out+=("$b")
      cell_kind[i]=timeout
      cell_status[i]=124
    else
      echo "run_benches.sh: FAIL: $b died without reporting a status (exit $rc)" >&2
      cell_kind[i]=no-status
      cell_status[i]=$rc
    fi
    failed+=("$b")
    [[ $status -eq 0 ]] && status=${cell_status[i]}
  elif [[ $bench_rc -ne 0 ]]; then
    # The bench exited by itself with a nonzero status — including 124,
    # which the old harness misclassified as a watchdog timeout.
    echo "run_benches.sh: FAIL: $b exited with status $bench_rc" >&2
    cell_kind[i]=exit
    cell_status[i]=$bench_rc
    failed+=("$b")
    [[ $status -eq 0 ]] && status=$bench_rc
  else
    cell_kind[i]=ok
    cell_status[i]=0
  fi
  echo
}

# Waits for the oldest in-flight cell (FIFO window: cells launch in roster
# order, so the oldest is also the next to emit), then emits every cell
# that is now complete.
reap_one() {
  while [[ -z ${pid[reap_ptr]:-} ]]; do (( ++reap_ptr )); done
  wait "${pid[reap_ptr]}"
  wrapper_rc[reap_ptr]=$?
  pid[reap_ptr]=""
  (( ++reap_ptr ))
  (( --inflight )) || true
  while (( emit_ptr < reap_ptr )); do
    emit_cell "$emit_ptr"
    (( ++emit_ptr ))
  done
}

for ((i = 0; i < n; ++i)); do
  b=${benches[i]}
  if [[ ! -x $bench_root/$b ]]; then
    cell_kind[i]=missing
    cell_status[i]=127
    pid[i]=""
    continue
  fi
  cell_kind[i]=pending
  bench_args=(${extra_args[@]+"${extra_args[@]}"})
  if [[ -n $json_dir ]]; then
    bench_args+=("--json-out=$json_dir/$b.json")
  fi
  while (( inflight >= jobs )); do reap_one; done
  rm -f "$spool_dir/$b.status"
  ${wrapper[@]+"${wrapper[@]}"} "$cell_runner" \
      "$spool_dir/$b.status" "$spool_dir/$b.stdout" "$spool_dir/$b.stderr" \
      "$bench_root/$b" \
      ${bench_args[@]+"${bench_args[@]}"} &
  pid[i]=$!
  (( ++inflight ))
done
while (( inflight > 0 )); do reap_one; done
while (( emit_ptr < n )); do
  emit_cell "$emit_ptr"
  (( ++emit_ptr ))
done

if [[ -n $json_dir ]]; then
  # Merge the per-bench documents into one BENCH_results.json. Pure shell
  # (no python dependency here); iteration order is the fixed roster, so
  # two same-seed runs — at any job count — produce byte-identical merged
  # documents. The document carries the expected roster and every failure,
  # so a partial merge is self-describing and the validator rejects it.
  {
    printf '{"schema_version":4,\n"roster":['
    sep=""
    for b in "${benches[@]}"; do
      printf '%s"%s"' "$sep" "$b"
      sep=","
    done
    printf '],\n"failures":['
    sep=""
    for ((i = 0; i < n; ++i)); do
      b=${benches[i]}
      kind=${cell_kind[i]}
      if [[ $kind == ok && ! -f $json_dir/$b.json ]]; then
        kind=no-export
        echo "run_benches.sh: FAIL: $b exited 0 but wrote no $json_dir/$b.json" >&2
        failed+=("$b")
        [[ $status -eq 0 ]] && status=1
      fi
      [[ $kind == ok ]] && continue
      printf '%s\n{"bench":"%s","kind":"%s","status":%s}' \
             "$sep" "$b" "$kind" "${cell_status[i]}"
      sep=","
    done
    printf '],\n"benches":[\n'
    sep=""
    for ((i = 0; i < n; ++i)); do
      b=${benches[i]}
      [[ ${cell_kind[i]} == ok && -f $json_dir/$b.json ]] || continue
      if [[ -n $sep ]]; then printf ',\n'; fi
      sep=","
      cat "$json_dir/$b.json"
    done
    printf ']}\n'
  } > "$json_dir/BENCH_results.json"
fi

if [[ -n $timing_out ]]; then
  run_end=$EPOCHREALTIME
  total=$(awk -v a="$run_start" -v b="$run_end" 'BEGIN { printf "%.3f", b - a }')
  {
    printf '{"jobs":%s,"wall_seconds":%s,"benches":[' "$jobs" "$total"
    sep=""
    for ((i = 0; i < n; ++i)); do
      printf '%s\n{"bench":"%s","kind":"%s","seconds":%s}' \
             "$sep" "${benches[i]}" "${cell_kind[i]}" "${cell_secs[i]:-null}"
      sep=","
    done
    printf ']}\n'
  } > "$timing_out"
  echo "run_benches.sh: wall-clock ${total}s at jobs=$jobs (timing: $timing_out)" >&2
fi

if [[ ${#timed_out[@]} -gt 0 ]]; then
  echo "run_benches.sh: ${#timed_out[@]} bench(es) timed out (>${timeout_secs}s): ${timed_out[*]}" >&2
fi
if [[ ${#failed[@]} -gt 0 ]]; then
  echo "run_benches.sh: ${#failed[@]} bench(es) failed: ${failed[*]}" >&2
  exit "$status"
fi
exit 0
