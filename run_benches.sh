#!/bin/bash
# Runs every bench binary in order, echoing a header per binary.
set -u
for b in bench_machines bench_fig2_alloc_micro bench_fig3_affinity_variance \
         bench_fig4_sparse_dense bench_table3_profile bench_fig5_os_config \
         bench_fig6_allocators bench_fig7_indexes bench_fig8_tpch \
         bench_fig9_tpch_alloc bench_fig10_advisor bench_ablations \
         bench_ext_onchip_numa; do
  echo "===================================================================="
  echo "== $b"
  echo "===================================================================="
  ./build/bench/$b
  echo
done
