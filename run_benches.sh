#!/bin/bash
# Runs every bench binary in order, echoing a header per binary.
#
# Exit status: 0 only if every binary exits 0. A missing or failing binary
# is reported immediately and again in a summary line, and the script exits
# with the (first) failing binary's status so CI cannot mask bench failures.
set -u
failed=()
status=0
for b in bench_machines bench_fig2_alloc_micro bench_fig3_affinity_variance \
         bench_fig4_sparse_dense bench_table3_profile bench_fig5_os_config \
         bench_fig6_allocators bench_fig7_indexes bench_fig8_tpch \
         bench_fig9_tpch_alloc bench_fig10_advisor bench_ablations \
         bench_ext_onchip_numa; do
  echo "===================================================================="
  echo "== $b"
  echo "===================================================================="
  if [[ ! -x ./build/bench/$b ]]; then
    echo "run_benches.sh: FAIL: ./build/bench/$b not found or not executable" >&2
    failed+=("$b")
    [[ $status -eq 0 ]] && status=127
    echo
    continue
  fi
  ./build/bench/$b
  rc=$?
  if [[ $rc -ne 0 ]]; then
    echo "run_benches.sh: FAIL: $b exited with status $rc" >&2
    failed+=("$b")
    [[ $status -eq 0 ]] && status=$rc
  fi
  echo
done
if [[ ${#failed[@]} -gt 0 ]]; then
  echo "run_benches.sh: ${#failed[@]} bench(es) failed: ${failed[*]}" >&2
  exit "$status"
fi
exit 0
