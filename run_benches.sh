#!/bin/bash
# Runs every bench binary in order, echoing a header per binary.
#
# Exit status: 0 only if every binary exits 0. A missing, failing, or
# timed-out binary is reported immediately and again in a summary line, and
# the script exits with the (first) failing binary's status so CI cannot
# mask bench failures.
#
# Environment knobs:
#   BUILD_DIR=<dir>        bench binaries are taken from <dir>/bench
#                          (default: build)
#   RACE_DETECT=1          pass --race-detect=1 to every bench: the
#                          simulated-thread race detector runs and any
#                          report makes that bench exit 1
#   FAULTLAB=1             pass --faultlab=1 to every bench (canned per-node
#                          memory-pressure plan; see src/faultlab) and also
#                          run the bench_faultlab_grid robustness sweep
#   BENCH_TIMEOUT_SECS=N   per-bench watchdog via timeout(1); a bench that
#                          exceeds it is killed and reported as timed out
#                          (default: 600, 0 disables)
#   JSON_OUT_DIR=<dir>     pass --json-out=<dir>/<bench>.json to every bench
#                          and merge the per-bench documents into
#                          <dir>/BENCH_results.json after the run. Export is
#                          pure bookkeeping: stdout stays byte-identical to
#                          a run without it (notices go to stderr).
set -u
build_dir=${BUILD_DIR:-build}
timeout_secs=${BENCH_TIMEOUT_SECS:-600}
json_dir=${JSON_OUT_DIR:-}
extra_args=()
if [[ ${RACE_DETECT:-0} != 0 ]]; then
  extra_args+=(--race-detect=1)
  echo "run_benches.sh: race detection enabled (--race-detect=1)"
fi
if [[ -n $json_dir ]]; then
  mkdir -p "$json_dir" || exit 1
  echo "run_benches.sh: structured export enabled; merged document:" \
       "$json_dir/BENCH_results.json" >&2
fi
benches=(bench_machines bench_fig2_alloc_micro bench_fig3_affinity_variance
         bench_fig4_sparse_dense bench_table3_profile bench_fig5_os_config
         bench_fig6_allocators bench_fig7_indexes bench_fig8_tpch
         bench_fig9_tpch_alloc bench_fig10_advisor bench_ablations
         bench_ext_onchip_numa bench_serving bench_placement)
if [[ ${FAULTLAB:-0} != 0 ]]; then
  extra_args+=(--faultlab=1)
  benches+=(bench_faultlab_grid)
  echo "run_benches.sh: fault injection enabled (--faultlab=1)"
fi
# timeout(1) wrapper; falls back to no watchdog if coreutils timeout is
# missing or the watchdog is disabled. The fallback is loud: silently
# dropping the watchdog makes a hung bench in a minimal container look
# like a hung script.
wrapper=()
if [[ $timeout_secs != 0 ]]; then
  if command -v timeout >/dev/null 2>&1; then
    wrapper=(timeout "$timeout_secs")
  else
    echo "run_benches.sh: NOTICE: coreutils timeout(1) not found on PATH;" \
         "running WITHOUT the ${timeout_secs}s per-bench watchdog —" \
         "a hung bench will hang this script" >&2
  fi
fi
failed=()
timed_out=()
status=0
for b in "${benches[@]}"; do
  echo "===================================================================="
  echo "== $b"
  echo "===================================================================="
  if [[ ! -x ./$build_dir/bench/$b ]]; then
    echo "run_benches.sh: FAIL: ./$build_dir/bench/$b not found or not executable" >&2
    failed+=("$b")
    [[ $status -eq 0 ]] && status=127
    echo
    continue
  fi
  bench_args=(${extra_args[@]+"${extra_args[@]}"})
  if [[ -n $json_dir ]]; then
    bench_args+=("--json-out=$json_dir/$b.json")
  fi
  ${wrapper[@]+"${wrapper[@]}"} ./"$build_dir"/bench/"$b" \
      ${bench_args[@]+"${bench_args[@]}"}
  rc=$?
  if [[ $rc -eq 124 && ${#wrapper[@]} -gt 0 ]]; then
    echo "run_benches.sh: FAIL: $b timed out after ${timeout_secs}s" >&2
    timed_out+=("$b")
    failed+=("$b")
    [[ $status -eq 0 ]] && status=$rc
  elif [[ $rc -ne 0 ]]; then
    echo "run_benches.sh: FAIL: $b exited with status $rc" >&2
    failed+=("$b")
    [[ $status -eq 0 ]] && status=$rc
  fi
  echo
done
if [[ -n $json_dir ]]; then
  # Merge the per-bench documents into one BENCH_results.json. Pure shell
  # (no python dependency here); iteration order is the fixed bench list,
  # so two same-seed runs produce byte-identical merged documents.
  {
    printf '{"schema_version":3,"benches":[\n'
    first=1
    for b in "${benches[@]}"; do
      f=$json_dir/$b.json
      [[ -f $f ]] || continue
      if [[ $first -eq 0 ]]; then printf ',\n'; fi
      first=0
      cat "$f"
    done
    printf ']}\n'
  } > "$json_dir/BENCH_results.json"
fi
if [[ ${#timed_out[@]} -gt 0 ]]; then
  echo "run_benches.sh: ${#timed_out[@]} bench(es) timed out (>${timeout_secs}s): ${timed_out[*]}" >&2
fi
if [[ ${#failed[@]} -gt 0 ]]; then
  echo "run_benches.sh: ${#failed[@]} bench(es) failed: ${failed[*]}" >&2
  exit "$status"
fi
exit 0
