#!/bin/bash
# Runs every bench binary in order, echoing a header per binary.
#
# Exit status: 0 only if every binary exits 0. A missing or failing binary
# is reported immediately and again in a summary line, and the script exits
# with the (first) failing binary's status so CI cannot mask bench failures.
#
# Environment knobs:
#   BUILD_DIR=<dir>   bench binaries are taken from <dir>/bench (default: build)
#   RACE_DETECT=1     pass --race-detect=1 to every bench: the simulated-thread
#                     race detector runs and any report makes that bench exit 1
set -u
build_dir=${BUILD_DIR:-build}
extra_args=()
if [[ ${RACE_DETECT:-0} != 0 ]]; then
  extra_args+=(--race-detect=1)
  echo "run_benches.sh: race detection enabled (--race-detect=1)"
fi
failed=()
status=0
for b in bench_machines bench_fig2_alloc_micro bench_fig3_affinity_variance \
         bench_fig4_sparse_dense bench_table3_profile bench_fig5_os_config \
         bench_fig6_allocators bench_fig7_indexes bench_fig8_tpch \
         bench_fig9_tpch_alloc bench_fig10_advisor bench_ablations \
         bench_ext_onchip_numa; do
  echo "===================================================================="
  echo "== $b"
  echo "===================================================================="
  if [[ ! -x ./$build_dir/bench/$b ]]; then
    echo "run_benches.sh: FAIL: ./$build_dir/bench/$b not found or not executable" >&2
    failed+=("$b")
    [[ $status -eq 0 ]] && status=127
    echo
    continue
  fi
  ./"$build_dir"/bench/"$b" ${extra_args[@]+"${extra_args[@]}"}
  rc=$?
  if [[ $rc -ne 0 ]]; then
    echo "run_benches.sh: FAIL: $b exited with status $rc" >&2
    failed+=("$b")
    [[ $status -eq 0 ]] && status=$rc
  fi
  echo
done
if [[ ${#failed[@]} -gt 0 ]]; then
  echo "run_benches.sh: ${#failed[@]} bench(es) failed: ${failed[*]}" >&2
  exit "$status"
fi
exit 0
