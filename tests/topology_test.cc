#include "src/topology/machine.h"

#include <gtest/gtest.h>

namespace numalab {
namespace topology {
namespace {

TEST(MachineA, MatchesTableII) {
  Machine m = MachineA();
  EXPECT_EQ(m.num_nodes(), 8);
  EXPECT_EQ(m.num_cores(), 16);
  EXPECT_EQ(m.num_hw_threads(), 16);
  EXPECT_EQ(m.Diameter(), 3);  // twisted ladder: up to 3 hops
  EXPECT_EQ(m.llc_bytes_per_node(), 2ULL << 20);
  EXPECT_EQ(m.node_memory_bytes(), 16ULL << 30);
}

TEST(MachineA, ThreeLinksPerNode) {
  Machine m = MachineA();
  std::vector<int> out_degree(8, 0);
  for (const auto& link : m.links()) out_degree[link.from]++;
  for (int d : out_degree) EXPECT_EQ(d, 3);
}

TEST(MachineA, LatencyFactorsByHops) {
  Machine m = MachineA();
  EXPECT_DOUBLE_EQ(m.LatencyFactor(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.LatencyFactor(0, 1), 1.2);  // adjacent
  // Diameter pair must exist with factor 1.6.
  bool saw_3hop = false;
  for (int s = 0; s < 8; ++s) {
    for (int d = 0; d < 8; ++d) {
      if (m.Hops(s, d) == 3) {
        saw_3hop = true;
        EXPECT_DOUBLE_EQ(m.LatencyFactor(s, d), 1.6);
      }
    }
  }
  EXPECT_TRUE(saw_3hop);
}

TEST(MachineA, RoutesFollowLinks) {
  Machine m = MachineA();
  for (int s = 0; s < 8; ++s) {
    for (int d = 0; d < 8; ++d) {
      const auto& route = m.Route(s, d);
      EXPECT_EQ(static_cast<int>(route.size()), m.Hops(s, d));
      int at = s;
      for (int link_id : route) {
        const Link& l = m.links()[static_cast<size_t>(link_id)];
        EXPECT_EQ(l.from, at);
        at = l.to;
      }
      EXPECT_EQ(at, d);
    }
  }
}

TEST(MachineB, MatchesTableII) {
  Machine m = MachineB();
  EXPECT_EQ(m.num_nodes(), 4);
  EXPECT_EQ(m.num_cores(), 16);
  EXPECT_EQ(m.num_hw_threads(), 32);
  EXPECT_EQ(m.Diameter(), 1);  // fully connected
  EXPECT_DOUBLE_EQ(m.LatencyFactor(0, 3), 1.1);
  EXPECT_EQ(m.llc_bytes_per_node(), 18ULL << 20);
}

TEST(MachineC, MatchesTableII) {
  Machine m = MachineC();
  EXPECT_EQ(m.num_nodes(), 4);
  EXPECT_EQ(m.num_cores(), 32);
  EXPECT_EQ(m.num_hw_threads(), 64);
  EXPECT_DOUBLE_EQ(m.LatencyFactor(1, 2), 2.1);
  EXPECT_EQ(m.node_memory_bytes(), 768ULL << 30);
  EXPECT_EQ(m.tlb_2m().l2_entries, 1536);
}

TEST(Machine, HwThreadMapping) {
  Machine m = MachineB();  // 4 nodes x 4 cores x 2 SMT
  EXPECT_EQ(m.NodeOfHwThread(0), 0);
  EXPECT_EQ(m.NodeOfHwThread(7), 0);
  EXPECT_EQ(m.NodeOfHwThread(8), 1);
  EXPECT_EQ(m.NodeOfHwThread(31), 3);
  EXPECT_EQ(m.CoreOfHwThread(0), 0);
  EXPECT_EQ(m.CoreOfHwThread(1), 0);  // SMT sibling
  EXPECT_EQ(m.CoreOfHwThread(2), 1);
}

TEST(Machine, ByName) {
  EXPECT_EQ(MachineByName("A").num_nodes(), 8);
  EXPECT_EQ(MachineByName("B").name(), "B");
  EXPECT_EQ(MachineByName("C").name(), "C");
}

}  // namespace
}  // namespace topology
}  // namespace numalab
