// Host-allocation regression test for the discrete-event engine.
//
// The PR that introduced EventCallback/FreeListPool (src/sim/
// event_callback.h) removed three per-operation heap allocations from the
// hottest host paths: the std::function inside every scheduled event, the
// VThread object, and the coroutine frame of every spawned thread. This
// standalone binary pins that property by counting *global operator new*
// calls directly:
//
//   - scheduling K events must not cost O(K) allocations (only the event
//     heap's amortized vector growth), and
//   - after a warm-up engine has primed the free-list pool, constructing
//     and running further same-shaped engines must stay under a small
//     constant allocation budget per engine (frames and VThreads come from
//     the pool, not malloc).
//
// A standalone binary (not part of numalab_tests) because it replaces the
// global allocator; keeping the override out of the gtest process avoids
// counting gtest's own traffic.

#include <cstdio>
#include <cstdlib>
#include <new>

#include "src/sim/engine.h"

namespace {

bool g_counting = false;
unsigned long long g_news = 0;

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting) ++g_news;
  void* p = std::malloc(size);
  if (p == nullptr) std::abort();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace numalab {
namespace sim {
namespace {

Task ChargeNTimes(VThread* vt, Engine* engine, uint64_t per_step, int steps) {
  for (int i = 0; i < steps; ++i) {
    vt->Charge(per_step);
    co_await engine->Checkpoint();
  }
}

int failures = 0;

void Check(bool ok, const char* what) {
  std::printf("engine_alloc_test: %s: %s\n", ok ? "ok" : "FAIL", what);
  if (!ok) ++failures;
}

unsigned long long CountEngineRun(int threads, int events) {
  g_news = 0;
  g_counting = true;
  {
    Engine e(/*quantum=*/100);
    int fired = 0;
    // Timestamps stay inside the threads' 40*50-cycle span: events only
    // fire while live threads remain.
    for (int i = 0; i < events; ++i) {
      e.ScheduleEvent(static_cast<uint64_t>(i % 1999) + 1, [&fired] {
        ++fired;
      });
    }
    for (int t = 0; t < threads; ++t) {
      e.Spawn("w", t, [&e](VThread* vt) {
        return ChargeNTimes(vt, &e, 50, 40);
      });
    }
    e.Run();
    if (fired != events) {
      std::printf("engine_alloc_test: FAIL: fired %d of %d events\n", fired,
                  events);
      ++failures;
    }
  }
  g_counting = false;
  return g_news;
}

int Main() {
  // Warm-up: primes the free-list pool buckets for this engine shape and
  // absorbs one-time lazy init (logging, locale, etc.).
  CountEngineRun(/*threads=*/8, /*events=*/100);

  // 1. Event scheduling must be allocation-free per event: the inline
  // EventCallback replaced a guaranteed std::function heap allocation per
  // ScheduleEvent. The only allowed growth is the event heap's backing
  // vector (amortized doubling: ~log2 allocations).
  unsigned long long small = CountEngineRun(8, 100);
  unsigned long long big = CountEngineRun(8, 10000);
  std::printf("engine_alloc_test: news: 100 events=%llu, 10000 events=%llu\n",
              small, big);
  Check(big < small + 64,
        "scheduling 9900 extra events costs <64 extra allocations "
        "(no per-event heap callback)");

  // 2. With the pool warm, a whole engine construct+run cycle stays under a
  // small constant budget: VThreads and coroutine frames are recycled. The
  // budget is generous (per-engine vectors still grow) but far below the
  // 16+ per-spawn allocations the unpooled path costs.
  unsigned long long warm = CountEngineRun(8, 0);
  std::printf("engine_alloc_test: news: warm 8-thread engine=%llu\n", warm);
  Check(warm < 64, "warm same-shape engine run allocates <64 times");

#ifndef NUMALAB_SIM_POOL_DISABLED
  Check(FreeListPool::stats().pool_hits > 0,
        "free-list pool served at least one block");
#endif

  if (failures != 0) {
    std::printf("engine_alloc_test: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("engine_alloc_test: all checks passed\n");
  return 0;
}

}  // namespace
}  // namespace sim
}  // namespace numalab

int main() { return numalab::sim::Main(); }
