// Sanity tests for the Fig. 2 allocator microbenchmark harness and its
// headline scalability/overhead properties.

#include <gtest/gtest.h>

#include "src/workloads/alloc_microbench.h"

namespace numalab {
namespace workloads {
namespace {

TEST(AllocMicrobench, DeterministicPerSeed) {
  auto a = RunAllocMicrobench("jemalloc", "A", 4, 20'000, 42);
  auto b = RunAllocMicrobench("jemalloc", "A", 4, 20'000, 42);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.resident_peak, b.resident_peak);
}

TEST(AllocMicrobench, SupermallocCollapsesUnderThreads) {
  // Fig. 2a's worst scaler: the single global critical section.
  auto s1 = RunAllocMicrobench("supermalloc", "A", 1, 30'000, 42);
  auto s16 = RunAllocMicrobench("supermalloc", "A", 16, 30'000, 42);
  auto t1 = RunAllocMicrobench("tbbmalloc", "A", 1, 30'000, 42);
  auto t16 = RunAllocMicrobench("tbbmalloc", "A", 16, 30'000, 42);
  double super_scaling = static_cast<double>(s16.cycles) /
                         static_cast<double>(s1.cycles);
  double tbb_scaling = static_cast<double>(t16.cycles) /
                       static_cast<double>(t1.cycles);
  EXPECT_GT(super_scaling, 4.0 * tbb_scaling);
}

TEST(AllocMicrobench, McmallocOverheadGrowsWithThreads) {
  // Fig. 2b: adaptive batching makes slack proportional to thread count.
  auto m1 = RunAllocMicrobench("mcmalloc", "A", 1, 30'000, 42);
  auto m16 = RunAllocMicrobench("mcmalloc", "A", 16, 30'000, 42);
  EXPECT_GT(m16.memory_overhead, 2.0 * m1.memory_overhead);
  // While a sane allocator's overhead stays in a narrow band.
  auto p1 = RunAllocMicrobench("ptmalloc", "A", 1, 30'000, 42);
  auto p16 = RunAllocMicrobench("ptmalloc", "A", 16, 30'000, 42);
  EXPECT_LT(p16.memory_overhead, 2.0 * p1.memory_overhead);
}

TEST(AllocMicrobench, OverheadIsAboveOne) {
  for (const char* a : {"ptmalloc", "jemalloc", "tbbmalloc"}) {
    auto r = RunAllocMicrobench(a, "A", 2, 20'000, 7);
    EXPECT_GT(r.memory_overhead, 1.0) << a;
    EXPECT_LT(r.memory_overhead, 3.0) << a;
  }
}

}  // namespace
}  // namespace workloads
}  // namespace numalab
