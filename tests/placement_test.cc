// Adaptive placement tests (src/mem/placement.h, DESIGN.md section 12):
// replica routing serves reads locally and invalidates on write
// (read-your-writes), the hot-page gate replicates a read-hot remote page
// end-to-end through the hinting-fault hook, capacity pressure reclaims
// replicas before spilling real pages, and whole-workload runs under
// placement stay bit-deterministic and scalar/span bit-identical.

#include <gtest/gtest.h>

#include "src/faultlab/faultlab.h"
#include "src/mem/mem_system.h"
#include "src/sim/engine.h"
#include "src/topology/machine.h"
#include "src/workloads/workloads.h"

namespace numalab {
namespace mem {
namespace {

class PlacementTest : public ::testing::Test {
 protected:
  PlacementTest() : machine_(topology::MachineA()) {
    CostModel costs;
    // No cache tag arrays: every line is a DRAM access, so replica routing
    // and hinting-fault sampling run on every touched line.
    costs.model_caches = false;
    memsys_ = std::make_unique<MemSystem>(&machine_, &engine_, costs, &sys_);
    PlacementConfig pc;
    pc.enabled = true;
    memsys_->SetPlacement(pc);
  }

  // Runs `fn` as a fresh virtual thread pinned to `hw` and returns the
  // thread's counters. MachineA has two hw threads per node: hw 0 is node
  // 0, hw 6 is node 3.
  perf::ThreadCounters RunAs(int hw, const std::function<void()>& fn) {
    sim::VThread* vt = engine_.Spawn("t", hw, [&](sim::VThread* self) {
      vt_ = self;
      return Body(fn);
    });
    engine_.Run();
    return vt->counters;
  }
  static sim::Task Body(const std::function<void()>& fn) {
    fn();
    co_return;
  }

  topology::Machine machine_;
  sim::Engine engine_;
  perf::SystemCounters sys_;
  std::unique_ptr<MemSystem> memsys_;
  sim::VThread* vt_ = nullptr;
};

constexpr uint64_t kLinesPerPage = kSmallPageBytes / kCacheLineBytes;  // 64

TEST_F(PlacementTest, ReplicaServesReadsLocallyAndWriteInvalidates) {
  Region* r = memsys_->os()->Map(kSmallPageBytes, /*thp_eligible=*/false);
  char* p = reinterpret_cast<char*>(r->base);
  // First touch from node 0: the page homes there.
  RunAs(0, [&] {
    memsys_->Read(vt_, p, kCacheLineBytes);
  });
  ASSERT_EQ(r->pages[0].node, 0);
  ASSERT_TRUE(memsys_->os()->AddReplica(r, 0, /*node=*/3));
  EXPECT_EQ(sys_.pages_replicated, 1u);
  EXPECT_EQ(memsys_->os()->replica_bytes(3), kSmallPageBytes);

  // Reads from node 3 are served by the local copy: local DRAM, no remote.
  perf::ThreadCounters reads = RunAs(6, [&] {
    for (uint64_t l = 0; l < kLinesPerPage; ++l) {
      memsys_->Read(vt_, p + l * kCacheLineBytes, 8);
    }
  });
  EXPECT_EQ(reads.local_dram, kLinesPerPage);
  EXPECT_EQ(reads.remote_dram, 0u);
  EXPECT_EQ(sys_.replica_reads, kLinesPerPage);

  // One store invalidates every copy (read-your-writes: no stale replica
  // may survive the write) and pays the shootdown.
  perf::ThreadCounters write = RunAs(7, [&] {
    memsys_->Write(vt_, p, 8);
  });
  EXPECT_EQ(sys_.replica_writes, 1u);
  EXPECT_EQ(sys_.replica_invalidations, 1u);
  EXPECT_EQ(sys_.replica_drops, 1u);
  EXPECT_EQ(r->pages[0].replica_mask, 0u);
  EXPECT_EQ(memsys_->os()->replica_bytes_total(), 0u);
  EXPECT_EQ(write.remote_dram, 1u);  // the store itself went to the home

  // Post-invalidation reads go remote again.
  perf::ThreadCounters after = RunAs(6, [&] {
    for (uint64_t l = 0; l < kLinesPerPage; ++l) {
      memsys_->Read(vt_, p + l * kCacheLineBytes, 8);
    }
  });
  EXPECT_EQ(after.local_dram, 0u);
  EXPECT_EQ(after.remote_dram, kLinesPerPage);
  EXPECT_EQ(sys_.replica_reads, kLinesPerPage);  // unchanged
}

// End-to-end through the sampling hook: a read-hot page faulted repeatedly
// from a remote node earns a replica there once the benefit model clears,
// and later reads are local.
TEST_F(PlacementTest, SustainedRemoteReadsEarnAReplica) {
  memsys_->SetAutoNumaSampling(true);
  memsys_->ArmAutoNumaWave(1ULL << 40);
  Region* r = memsys_->os()->Map(kSmallPageBytes, /*thp_eligible=*/false);
  char* p = reinterpret_cast<char*>(r->base);
  RunAs(0, [&] { memsys_->Read(vt_, p, kCacheLineBytes); });
  ASSERT_EQ(r->pages[0].node, 0);

  // 40 passes x 64 lines: one hinting fault per pass, so heat, the read
  // sample and the visit count all clear their thresholds well before the
  // end, and the per-visit benefit overtakes the copy cost.
  perf::ThreadCounters t = RunAs(6, [&] {
    for (int pass = 0; pass < 40; ++pass) {
      for (uint64_t l = 0; l < kLinesPerPage; ++l) {
        memsys_->Read(vt_, p + l * kCacheLineBytes, 8);
      }
    }
  });
  EXPECT_EQ(sys_.pages_replicated, 1u);
  EXPECT_NE(r->pages[0].replica_mask & (1u << 3), 0u);
  EXPECT_GT(t.local_dram, 0u);       // post-replication lines served locally
  EXPECT_GT(sys_.replica_reads, 0u);
  EXPECT_EQ(sys_.page_migrations, 0u);  // replicated pages never migrate
}

// A write-heavy page must never replicate: the read/write-ratio gate keeps
// ping-ponging pages out of the replica pool.
TEST_F(PlacementTest, WriteHeavyPageIsNotReplicated) {
  memsys_->SetAutoNumaSampling(true);
  memsys_->ArmAutoNumaWave(1ULL << 40);
  Region* r = memsys_->os()->Map(kSmallPageBytes, /*thp_eligible=*/false);
  char* p = reinterpret_cast<char*>(r->base);
  RunAs(0, [&] { memsys_->Read(vt_, p, kCacheLineBytes); });

  // Alternate whole read passes with whole write passes so the sampled
  // faults see both kinds: the read/write-ratio gate never clears.
  RunAs(6, [&] {
    for (int pass = 0; pass < 40; ++pass) {
      for (uint64_t l = 0; l < kLinesPerPage; ++l) {
        memsys_->Access(vt_, p + l * kCacheLineBytes, 8,
                        /*write=*/(pass % 2) == 0);
      }
    }
  });
  EXPECT_EQ(sys_.pages_replicated, 0u);
}

// Sampling aliasing: a per-line read/write pattern whose writes never land
// on a sampled fault would look read-only to the gate. The invalidation
// path feeds observed writes back into the sample, so the churn
// self-limits instead of re-replicating every pass for the whole run.
TEST_F(PlacementTest, PingPongChurnSelfLimits) {
  memsys_->SetAutoNumaSampling(true);
  memsys_->ArmAutoNumaWave(1ULL << 40);
  Region* r = memsys_->os()->Map(kSmallPageBytes, /*thp_eligible=*/false);
  char* p = reinterpret_cast<char*>(r->base);
  RunAs(0, [&] { memsys_->Read(vt_, p, kCacheLineBytes); });

  RunAs(6, [&] {
    for (int pass = 0; pass < 200; ++pass) {
      for (uint64_t l = 0; l < kLinesPerPage; ++l) {
        memsys_->Access(vt_, p + l * kCacheLineBytes, 8,
                        /*write=*/(l % 2) == 0);
      }
    }
  });
  // Some churn is expected (the first replications happen before enough
  // writes are observed), but each invalidation raises the bar, so the
  // page settles far below one replication per pass.
  EXPECT_EQ(sys_.replica_invalidations, sys_.pages_replicated);
  EXPECT_LT(sys_.pages_replicated, 10u);
}

TEST_F(PlacementTest, CapacityPressureDropsReplicasBeforeSpilling) {
  faultlab::FaultPlan plan;
  plan.node_capacity_bytes = 4 * kSmallPageBytes;
  faultlab::FaultLab fl(plan, /*seed=*/42, /*run_index=*/0, &sys_);
  memsys_->os()->SetFaultLab(&fl);

  // Two pages homed on node 0, each with a replica on node 1: half of
  // node 1's capacity is droppable copies.
  memsys_->os()->SetPolicy(MemPolicy::kPreferred, 0);
  Region* hot = memsys_->os()->Map(2 * kSmallPageBytes,
                                   /*thp_eligible=*/false);
  char* p = reinterpret_cast<char*>(hot->base);
  RunAs(0, [&] {
    memsys_->Read(vt_, p, kCacheLineBytes);
    memsys_->Read(vt_, p + kSmallPageBytes, kCacheLineBytes);
  });
  ASSERT_TRUE(memsys_->os()->AddReplica(hot, 0, 1));
  ASSERT_TRUE(memsys_->os()->AddReplica(hot, 1, 1));
  EXPECT_EQ(memsys_->os()->replica_bytes(1), 2 * kSmallPageBytes);

  // Four real pages bound to node 1 need the whole node: the two replicas
  // are reclaimed and no real page spills anywhere.
  memsys_->os()->SetPolicy(MemPolicy::kPreferred, 1);
  Region* cold = memsys_->os()->Map(4 * kSmallPageBytes,
                                    /*thp_eligible=*/false);
  for (const auto& pg : cold->pages) EXPECT_EQ(pg.node, 1);
  EXPECT_EQ(sys_.replica_drops, 2u);
  EXPECT_EQ(hot->pages[0].replica_mask, 0u);
  EXPECT_EQ(hot->pages[1].replica_mask, 0u);
  EXPECT_EQ(memsys_->os()->replica_bytes(1), 0u);
  EXPECT_EQ(sys_.pages_spilled, 0u);
  EXPECT_EQ(sys_.oom_last_resort_pages, 0u);
}

TEST_F(PlacementTest, AddReplicaRefusesHomeNodeDuplicatesAndFullNodes) {
  Region* r = memsys_->os()->Map(kSmallPageBytes, /*thp_eligible=*/false);
  char* p = reinterpret_cast<char*>(r->base);
  RunAs(0, [&] { memsys_->Read(vt_, p, kCacheLineBytes); });

  EXPECT_FALSE(memsys_->os()->AddReplica(r, 0, 0));  // home node
  EXPECT_TRUE(memsys_->os()->AddReplica(r, 0, 2));
  EXPECT_FALSE(memsys_->os()->AddReplica(r, 0, 2));  // already replicated
  EXPECT_EQ(sys_.pages_replicated, 1u);

  // Replicas are opportunistic: a full node refuses them outright rather
  // than spilling real pages.
  faultlab::FaultPlan plan;
  plan.node_capacity_bytes = kSmallPageBytes;
  faultlab::FaultLab fl(plan, 42, 0, &sys_);
  memsys_->os()->SetFaultLab(&fl);
  memsys_->os()->SetPolicy(MemPolicy::kPreferred, 5);
  memsys_->os()->Map(kSmallPageBytes, /*thp_eligible=*/false);  // fills 5
  EXPECT_FALSE(memsys_->os()->AddReplica(r, 0, 5));
}

// ---------------------------------------------------------------------------
// Workload-level contracts.

workloads::RunConfig PlacementConfig_() {
  workloads::RunConfig c;
  c.machine = "A";
  c.threads = 8;
  c.affinity = osmodel::Affinity::kSparse;
  c.policy = MemPolicy::kFirstTouch;
  c.allocator = "ptmalloc";
  c.autonuma = false;  // placement implies the daemon on its own
  c.thp = false;
  c.num_records = 50'000;
  c.cardinality = 512;
  c.build_rows = 10'000;
  c.probe_rows = 80'000;
  c.placement.enabled = true;
  return c;
}

TEST(PlacementWorkload, SameSeedIsBitReproducible) {
  workloads::RunConfig c = PlacementConfig_();
  workloads::RunResult a = workloads::RunW3HashJoin(c);
  workloads::RunResult b = workloads::RunW3HashJoin(c);
  EXPECT_TRUE(a.status.ok()) << a.status.ToString();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.report.system.pages_replicated, b.report.system.pages_replicated);
  EXPECT_EQ(a.report.system.replica_reads, b.report.system.replica_reads);
  EXPECT_EQ(a.report.system.replica_invalidations,
            b.report.system.replica_invalidations);
  EXPECT_EQ(a.report.system.migrations_vetoed,
            b.report.system.migrations_vetoed);
  EXPECT_EQ(a.report.system.page_migrations, b.report.system.page_migrations);
}

TEST(PlacementWorkload, ScalarAndSpanPathsAgreeUnderPlacement) {
  workloads::RunConfig c = PlacementConfig_();
  workloads::RunResult span = workloads::RunW3HashJoin(c);
  c.scalar_mem_path = true;
  workloads::RunResult scalar = workloads::RunW3HashJoin(c);
  EXPECT_EQ(span.cycles, scalar.cycles);
  EXPECT_EQ(span.checksum, scalar.checksum);
  EXPECT_EQ(span.report.threads.local_dram, scalar.report.threads.local_dram);
  EXPECT_EQ(span.report.threads.remote_dram,
            scalar.report.threads.remote_dram);
  EXPECT_EQ(span.report.system.pages_replicated,
            scalar.report.system.pages_replicated);
  EXPECT_EQ(span.report.system.replica_reads,
            scalar.report.system.replica_reads);
  EXPECT_EQ(span.report.system.replica_invalidations,
            scalar.report.system.replica_invalidations);
  EXPECT_EQ(span.report.system.page_migrations,
            scalar.report.system.page_migrations);
}

// Placement disabled is the seed simulator: bit-identical to a run that
// never had the subsystem, with every replication counter zero.
TEST(PlacementWorkload, DisabledPlacementIsZeroCost) {
  workloads::RunConfig c = PlacementConfig_();
  c.placement.enabled = false;
  c.autonuma = true;  // exercise the stock sampling path
  workloads::RunResult r = workloads::RunW3HashJoin(c);
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.report.system.pages_replicated, 0u);
  EXPECT_EQ(r.report.system.replica_reads, 0u);
  EXPECT_EQ(r.report.system.replica_writes, 0u);
  EXPECT_EQ(r.report.system.replica_drops, 0u);
  EXPECT_EQ(r.report.system.migrations_vetoed, 0u);
}

}  // namespace
}  // namespace mem
}  // namespace numalab
