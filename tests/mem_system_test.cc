// Unit tests for the simulated memory system: placement policies, first
// touch, TLB behaviour, cache effects, THP fault/collapse/split, page
// migration and DONTNEED semantics.

#include <gtest/gtest.h>

#include "src/mem/mem_system.h"
#include "src/sim/engine.h"
#include "src/topology/machine.h"

namespace numalab {
namespace mem {
namespace {

class MemSystemTest : public ::testing::Test {
 protected:
  MemSystemTest()
      : machine_(topology::MachineA()),
        memsys_(&machine_, &engine_, CostModel{}, &sys_) {}

  // Runs `fn` inside a single virtual thread pinned to hw thread `hw`.
  void RunAs(int hw, const std::function<void(sim::VThread*)>& fn) {
    engine_.Spawn("t", hw, [&](sim::VThread* vt) { return Body(fn, vt); });
    engine_.Run();
  }
  static sim::Task Body(const std::function<void(sim::VThread*)>& fn,
                        sim::VThread* vt) {
    fn(vt);
    co_return;
  }

  topology::Machine machine_;
  sim::Engine engine_;
  perf::SystemCounters sys_;
  MemSystem memsys_;
};

TEST_F(MemSystemTest, FirstTouchBindsToAccessor) {
  Region* r = memsys_.os()->Map(1 << 20);
  // hw thread 5 on Machine A (2 cores/node) lives on node 2.
  RunAs(5, [&](sim::VThread* vt) {
    memsys_.Read(vt, r->host, 64);
  });
  EXPECT_EQ(r->pages[0].node, machine_.NodeOfHwThread(5));
  EXPECT_EQ(r->pages[1].node, -1);  // untouched pages stay unbound
}

TEST_F(MemSystemTest, InterleaveBindsRoundRobin) {
  memsys_.os()->SetPolicy(MemPolicy::kInterleave);
  Region* r = memsys_.os()->Map(8 * kSmallPageBytes);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(r->pages[static_cast<size_t>(i)].node, i % 8);
  }
}

TEST_F(MemSystemTest, PreferredFillsChosenNode) {
  memsys_.os()->SetPolicy(MemPolicy::kPreferred, /*preferred_node=*/3);
  Region* r = memsys_.os()->Map(4 * kSmallPageBytes);
  for (const auto& p : r->pages) EXPECT_EQ(p.node, 3);
}

TEST_F(MemSystemTest, RemoteAccessesCountedAndSlower) {
  Region* r = memsys_.os()->Map(1 << 20);
  // Bind all pages to node 0 by touching from hw 0 first.
  RunAs(0, [&](sim::VThread* vt) {
    for (uint64_t off = 0; off < r->len; off += kSmallPageBytes) {
      memsys_.Read(vt, r->host + off, 64);
    }
  });
  uint64_t local_cost = engine_.threads()[0]->clock;

  // A fresh thread on a remote node reads different lines of the same pages.
  RunAs(15, [&](sim::VThread* vt) {  // node 7 on machine A
    for (uint64_t off = 128; off < r->len; off += kSmallPageBytes) {
      memsys_.Read(vt, r->host + off, 64);
    }
  });
  const auto& remote_counters = engine_.threads()[1]->counters;
  EXPECT_GT(remote_counters.remote_dram, 0u);
  EXPECT_EQ(remote_counters.local_dram, 0u);
  // Remote accessor pays the latency factor (node 0 <-> 7 is >= 1 hop).
  EXPECT_GT(engine_.threads()[1]->clock, local_cost);
}

TEST_F(MemSystemTest, CachesAbsorbRepeatedAccess) {
  Region* r = memsys_.os()->Map(1 << 16);
  RunAs(0, [&](sim::VThread* vt) {
    memsys_.Read(vt, r->host, 64);
    uint64_t misses_cold = vt->counters.llc_misses;
    for (int i = 0; i < 10; ++i) memsys_.Read(vt, r->host, 64);
    EXPECT_EQ(vt->counters.llc_misses, misses_cold);  // all hits after cold
    EXPECT_GT(vt->counters.private_hits, 0u);
  });
}

TEST_F(MemSystemTest, TlbMissesThenHits) {
  Region* r = memsys_.os()->Map(1 << 16);
  RunAs(0, [&](sim::VThread* vt) {
    memsys_.Read(vt, r->host, 8);
    EXPECT_EQ(vt->counters.tlb_misses, 1u);
    memsys_.Read(vt, r->host + 64, 8);  // same page
    EXPECT_EQ(vt->counters.tlb_misses, 1u);
    memsys_.Read(vt, r->host + kSmallPageBytes, 8);  // next page
    EXPECT_EQ(vt->counters.tlb_misses, 2u);
  });
}

TEST_F(MemSystemTest, ThpFaultAllocBindsWholeRun) {
  memsys_.os()->SetThpFaultAlloc(true);
  Region* r = memsys_.os()->Map(4ULL << 20);
  RunAs(2, [&](sim::VThread* vt) {  // node 1
    memsys_.Read(vt, r->host + 12345, 8);
  });
  // The entire first 2M run is huge, resident and bound to node 1.
  EXPECT_TRUE(r->pages[0].huge);
  EXPECT_TRUE(r->pages[511].huge);
  EXPECT_EQ(r->pages[0].node, 1);
  EXPECT_TRUE(r->pages[511].resident);
  EXPECT_FALSE(r->pages[512].huge);  // second run untouched
  EXPECT_EQ(sys_.thp_collapses, 1u);
}

TEST_F(MemSystemTest, MadviseSplitsHugeAndUnbinds) {
  memsys_.os()->SetThpFaultAlloc(true);
  Region* r = memsys_.os()->Map(2ULL << 20);
  RunAs(0, [&](sim::VThread* vt) { memsys_.Read(vt, r->host, 8); });
  ASSERT_TRUE(r->pages[0].huge);
  memsys_.os()->MadviseDontNeed(r, 0, 64 * kSmallPageBytes, /*now=*/0);
  EXPECT_EQ(sys_.thp_splits, 1u);
  EXPECT_FALSE(r->pages[0].huge);
  EXPECT_EQ(r->pages[0].node, -1);       // released pages unbound
  EXPECT_FALSE(r->pages[0].resident);
  EXPECT_EQ(r->pages[100].node, 0);      // rest of the run keeps binding
  EXPECT_TRUE(r->pages[100].resident);
}

TEST_F(MemSystemTest, KhugepagedCollapseRequiresSameNode) {
  Region* r = memsys_.os()->Map(2ULL << 20);
  // Touch all pages from node 0, then move one page to node 1.
  RunAs(0, [&](sim::VThread* vt) {
    for (uint64_t off = 0; off < r->len; off += kSmallPageBytes) {
      memsys_.Write(vt, r->host + off, 8);
    }
  });
  memsys_.os()->MigratePage(r, 7, /*to_node=*/1, /*now=*/0);
  EXPECT_FALSE(memsys_.os()->TryCollapseHuge(r, 0, 0));
  memsys_.os()->MigratePage(r, 7, /*to_node=*/0, /*now=*/0);
  EXPECT_TRUE(memsys_.os()->TryCollapseHuge(r, 0, 0));
  EXPECT_TRUE(r->pages[7].huge);
}

TEST_F(MemSystemTest, ResidentAccounting) {
  Region* r = memsys_.os()->Map(16 * kSmallPageBytes);
  uint64_t before = memsys_.os()->resident_bytes();
  RunAs(0, [&](sim::VThread* vt) {
    memsys_.Read(vt, r->host, 8);
    memsys_.Read(vt, r->host + kSmallPageBytes, 8);
  });
  EXPECT_EQ(memsys_.os()->resident_bytes() - before, 2 * kSmallPageBytes);
  memsys_.os()->MadviseDontNeed(r, 0, r->len, 0);
  EXPECT_EQ(memsys_.os()->resident_bytes(), before);
}

TEST_F(MemSystemTest, NodeTrafficBeforeFirstSampledFault) {
  // Regression: the AutoNUMA balancer reads NodeTraffic for a live thread
  // before that thread takes its first sampled fault. NodeTraffic used to
  // grow node_traffic_/fault_stride_ but not fault_budget_, so the resize
  // guard in SampleAutoNuma was skipped and fault_budget_[tid] indexed out
  // of bounds (caught under ASan).
  memsys_.SetAutoNumaSampling(true);
  const auto& traffic = memsys_.NodeTraffic(0);  // balancer runs first
  EXPECT_EQ(traffic[0], 0u);
  Region* r = memsys_.os()->Map(1 << 20);
  RunAs(0, [&](sim::VThread* vt) {
    // Enough DRAM lines to pass the hinting-fault stride several times.
    for (uint64_t off = 0; off < r->len; off += 64) {
      memsys_.Read(vt, r->host + off, 8);
    }
  });
  EXPECT_GT(engine_.threads()[0]->counters.hinting_faults, 0u);
  EXPECT_GT(memsys_.NodeTraffic(0)[0], 0u);
  // A reset for a thread id the balancer has never seen must also be safe.
  memsys_.ResetNodeTraffic(42);
  EXPECT_EQ(memsys_.NodeTraffic(42)[0], 0u);
}

TEST_F(MemSystemTest, UnmapRecyclesAddressSpace) {
  Region* a = memsys_.os()->Map(1 << 20);
  uint64_t base = a->base;
  memsys_.os()->Unmap(a);
  Region* b = memsys_.os()->Map(1 << 20);
  EXPECT_EQ(b->base, base);  // same slots reused
}

}  // namespace
}  // namespace mem
}  // namespace numalab
