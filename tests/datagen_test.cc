// Tests for the dataset generators: distribution properties and join
// integrity.

#include <map>

#include <gtest/gtest.h>

#include "src/datagen/datagen.h"

namespace numalab {
namespace datagen {
namespace {

using workloads::Dataset;

TEST(Datagen, SequentialCoversAllGroupsEvenly) {
  auto recs = MakeAggregationInput(Dataset::kSequential, 10000, 100, 1);
  std::map<uint64_t, int> counts;
  for (const auto& r : recs) counts[r.key]++;
  EXPECT_EQ(counts.size(), 100u);
  for (auto& [k, c] : counts) EXPECT_EQ(c, 100);
}

TEST(Datagen, MovingClusterWindowSlides) {
  const uint64_t n = 100000, card = 10000;
  auto recs = MakeAggregationInput(Dataset::kMovingCluster, n, card, 1);
  // Early keys come from the low end, late keys from the high end.
  uint64_t early_max = 0, late_min = UINT64_MAX;
  for (uint64_t i = 0; i < n / 100; ++i) {
    early_max = std::max(early_max, recs[i].key);
  }
  for (uint64_t i = n - n / 100; i < n; ++i) {
    late_min = std::min(late_min, recs[i].key);
  }
  EXPECT_LT(early_max, card / 4);
  EXPECT_GT(late_min, card / 2);
  for (const auto& r : recs) EXPECT_LT(r.key, card);
}

TEST(Datagen, ZipfIsSkewed) {
  const uint64_t n = 200000, card = 10000;
  auto recs = MakeAggregationInput(Dataset::kZipf, n, card, 1);
  std::map<uint64_t, uint64_t> counts;
  for (const auto& r : recs) counts[r.key]++;
  // Key 0 is the most frequent and far above the mean (n/card = 20).
  uint64_t max_count = 0;
  for (auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_EQ(counts[0], max_count);
  EXPECT_GT(counts[0], 10 * n / card);
}

TEST(Datagen, ZipfDeterministicPerSeed) {
  auto a = MakeAggregationInput(Dataset::kZipf, 1000, 100, 7);
  auto b = MakeAggregationInput(Dataset::kZipf, 1000, 100, 7);
  auto c = MakeAggregationInput(Dataset::kZipf, 1000, 100, 8);
  ASSERT_EQ(a.size(), b.size());
  bool same = true, differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    same &= a[i].key == b[i].key;
    differs |= a[i].key != c[i].key;
  }
  EXPECT_TRUE(same);
  EXPECT_TRUE(differs);
}

TEST(Datagen, JoinBuildKeysUniqueAndShuffled) {
  std::vector<JoinTuple> build, probe;
  MakeJoinInput(10000, 20000, 3, &build, &probe);
  std::vector<bool> seen(10000, false);
  bool in_order = true;
  for (size_t i = 0; i < build.size(); ++i) {
    ASSERT_LT(build[i].key, 10000u);
    ASSERT_FALSE(seen[build[i].key]);
    seen[build[i].key] = true;
    in_order &= build[i].key == i;
  }
  EXPECT_FALSE(in_order);  // shuffled
}

TEST(Datagen, EveryProbeHasAMatch) {
  std::vector<JoinTuple> build, probe;
  MakeJoinInput(1000, 16000, 3, &build, &probe);
  EXPECT_EQ(probe.size(), 16000u);
  for (const auto& t : probe) EXPECT_LT(t.key, 1000u);
}

}  // namespace
}  // namespace datagen
}  // namespace numalab
