// End-to-end smoke tests: the W1-W3 workloads run to completion under a few
// representative configurations, produce correct query answers (checksums
// match a host-side reference), and the simulation is deterministic.

#include <map>

#include <gtest/gtest.h>

#include "src/datagen/datagen.h"
#include "src/workloads/workloads.h"

namespace numalab {
namespace workloads {
namespace {

RunConfig SmallConfig() {
  RunConfig c;
  c.machine = "A";
  c.threads = 8;
  c.affinity = osmodel::Affinity::kSparse;
  c.policy = mem::MemPolicy::kInterleave;
  c.allocator = "tbbmalloc";
  c.autonuma = false;
  c.thp = false;
  c.num_records = 50'000;
  c.cardinality = 512;
  c.build_rows = 10'000;
  c.probe_rows = 80'000;
  return c;
}

uint64_t ReferenceW1(const RunConfig& c) {
  auto input = datagen::MakeAggregationInput(c.dataset, c.num_records,
                                             c.cardinality, c.seed);
  std::map<uint64_t, std::vector<int64_t>> groups;
  for (const auto& r : input) groups[r.key].push_back(r.val);
  uint64_t sum = 0;
  for (auto& [k, v] : groups) {
    size_t mid = (v.size() - 1) / 2;
    std::nth_element(v.begin(), v.begin() + static_cast<long>(mid), v.end());
    sum += static_cast<uint64_t>(v[static_cast<long>(mid)]);
  }
  return sum;
}

TEST(W1Smoke, MatchesReferenceMedianSum) {
  RunConfig c = SmallConfig();
  RunResult r = RunW1HolisticAggregation(c);
  EXPECT_GT(r.cycles, 0u);
  EXPECT_EQ(r.checksum, ReferenceW1(c));
}

TEST(W1Smoke, DeterministicAcrossRuns) {
  RunConfig c = SmallConfig();
  RunResult a = RunW1HolisticAggregation(c);
  RunResult b = RunW1HolisticAggregation(c);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.report.threads.mem_accesses, b.report.threads.mem_accesses);
  EXPECT_EQ(a.report.threads.llc_misses, b.report.threads.llc_misses);
}

TEST(W1Smoke, RunIndexPerturbsUnpinnedRuns) {
  RunConfig c = SmallConfig();
  c.affinity = osmodel::Affinity::kNone;
  c.run_index = 0;
  RunResult a = RunW1HolisticAggregation(c);
  c.run_index = 1;
  RunResult b = RunW1HolisticAggregation(c);
  EXPECT_NE(a.cycles, b.cycles);  // OS scheduler noise differs by run
}

TEST(W2Smoke, CountsEveryRecordOnce) {
  RunConfig c = SmallConfig();
  c.dataset = Dataset::kZipf;
  RunResult r = RunW2DistributiveAggregation(c);
  // Sum of COUNT over all groups == number of input records.
  EXPECT_EQ(r.checksum, c.num_records);
}

TEST(W3Smoke, EveryProbeMatches) {
  RunConfig c = SmallConfig();
  RunResult r = RunW3HashJoin(c);
  // Every probe key is drawn from the build keys, so matches == probe rows.
  EXPECT_EQ(r.checksum, c.probe_rows);
}

TEST(W3Smoke, WorksOnAllMachines) {
  for (const char* m : {"A", "B", "C"}) {
    RunConfig c = SmallConfig();
    c.machine = m;
    c.build_rows = 2'000;
    c.probe_rows = 16'000;
    RunResult r = RunW3HashJoin(c);
    EXPECT_EQ(r.checksum, c.probe_rows) << m;
  }
}

TEST(W1Smoke, AllAllocatorsProduceCorrectResults) {
  RunConfig c = SmallConfig();
  c.num_records = 20'000;
  c.cardinality = 256;
  uint64_t expect = ReferenceW1(c);
  for (const char* a :
       {"ptmalloc", "jemalloc", "tcmalloc", "hoard", "tbbmalloc",
        "supermalloc", "mcmalloc"}) {
    c.allocator = a;
    RunResult r = RunW1HolisticAggregation(c);
    EXPECT_EQ(r.checksum, expect) << a;
  }
}

TEST(W1Smoke, AllPoliciesProduceCorrectResults) {
  RunConfig c = SmallConfig();
  c.num_records = 20'000;
  c.cardinality = 256;
  uint64_t expect = ReferenceW1(c);
  for (auto p : {mem::MemPolicy::kFirstTouch, mem::MemPolicy::kInterleave,
                 mem::MemPolicy::kLocalAlloc, mem::MemPolicy::kPreferred}) {
    c.policy = p;
    RunResult r = RunW1HolisticAggregation(c);
    EXPECT_EQ(r.checksum, expect) << static_cast<int>(p);
  }
}

TEST(W1Smoke, OsDefaultsRunToCompletion) {
  RunConfig c = SmallConfig();
  c.affinity = osmodel::Affinity::kNone;
  c.autonuma = true;
  c.thp = true;
  c.allocator = "ptmalloc";
  c.policy = mem::MemPolicy::kFirstTouch;
  RunResult r = RunW1HolisticAggregation(c);
  EXPECT_EQ(r.checksum, ReferenceW1(c));
  EXPECT_GT(r.report.threads.thread_migrations, 0u);
}

}  // namespace
}  // namespace workloads
}  // namespace numalab
