// Unit tests for the numalab::sanity happens-before race detector, plus
// SimContext integration: a seeded race is caught with a useful report and
// the real workloads run clean.

#include <gtest/gtest.h>

#include "src/sanity/race_detector.h"
#include "src/serve/serve.h"
#include "src/sim/engine.h"
#include "src/workloads/sim_context.h"
#include "src/workloads/workloads.h"

namespace numalab {
namespace sanity {
namespace {

constexpr uint64_t kLine = kShadowLineBytes;

class RaceDetectorApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rd.OnThreadStart(0, "t0", -1);
    rd.OnThreadStart(1, "t1", -1);
  }
  RaceDetector rd;
};

TEST_F(RaceDetectorApiTest, UnorderedWriteWriteRaces) {
  rd.OnAccess(0, 0 * kLine, 8, /*write=*/true, 100);
  rd.OnAccess(1, 0 * kLine, 8, /*write=*/true, 200);
  ASSERT_EQ(rd.reports().size(), 1u);
  const auto& r = rd.reports()[0];
  EXPECT_EQ(r.tid, 1);
  EXPECT_EQ(r.prior_tid, 0);
  EXPECT_TRUE(r.is_write);
  EXPECT_TRUE(r.prior_is_write);
  EXPECT_EQ(r.line, 0u);
  EXPECT_EQ(r.vclock, 200u);
  EXPECT_EQ(r.prior_vclock, 100u);
}

TEST_F(RaceDetectorApiTest, UnorderedWriteReadRaces) {
  rd.OnAccess(0, 0, 8, /*write=*/false, 1);
  rd.OnAccess(1, 0, 8, /*write=*/true, 2);
  ASSERT_EQ(rd.reports().size(), 1u);
  EXPECT_TRUE(rd.reports()[0].is_write);
  EXPECT_FALSE(rd.reports()[0].prior_is_write);
}

TEST_F(RaceDetectorApiTest, ReadReadNeverRaces) {
  rd.OnAccess(0, 0, 8, /*write=*/false, 1);
  rd.OnAccess(1, 0, 8, /*write=*/false, 2);
  EXPECT_TRUE(rd.clean());
}

TEST_F(RaceDetectorApiTest, LockOrdersCriticalSections) {
  int lock = 0;
  rd.OnAcquire(0, &lock);
  rd.OnAccess(0, 0, 8, /*write=*/true, 1);
  rd.OnRelease(0, &lock);
  rd.OnAcquire(1, &lock);
  rd.OnAccess(1, 0, 8, /*write=*/true, 2);
  rd.OnRelease(1, &lock);
  EXPECT_TRUE(rd.clean());
}

TEST_F(RaceDetectorApiTest, DistinctLocksDoNotOrder) {
  int lock_a = 0, lock_b = 0;
  rd.OnAcquire(0, &lock_a);
  rd.OnAccess(0, 0, 8, /*write=*/true, 1);
  rd.OnRelease(0, &lock_a);
  rd.OnAcquire(1, &lock_b);
  rd.OnAccess(1, 0, 8, /*write=*/true, 2);
  rd.OnRelease(1, &lock_b);
  EXPECT_EQ(rd.reports().size(), 1u);
}

TEST_F(RaceDetectorApiTest, ForkEdgeOrdersParentBeforeChild) {
  rd.OnAccess(0, 0, 8, /*write=*/true, 1);
  rd.OnThreadStart(2, "child", /*parent_tid=*/0);
  rd.OnAccess(2, 0, 8, /*write=*/true, 2);
  EXPECT_TRUE(rd.clean());
  // The parent's *later* writes are concurrent with the child.
  rd.OnAccess(0, kLine, 8, /*write=*/true, 3);
  rd.OnAccess(2, kLine, 8, /*write=*/true, 4);
  EXPECT_EQ(rd.reports().size(), 1u);
}

TEST_F(RaceDetectorApiTest, JoinEdgeOrdersChildBeforeRoot) {
  rd.OnAccess(0, 0, 8, /*write=*/true, 1);
  rd.OnThreadFinish(0);
  rd.OnAccess(-1, 0, 8, /*write=*/true, 2);  // root/setup context
  EXPECT_TRUE(rd.clean());
}

TEST_F(RaceDetectorApiTest, BarrierOrdersAllSides) {
  int barrier = 0;
  rd.OnAccess(0, 0, 8, /*write=*/true, 1);
  rd.OnAccess(1, kLine, 8, /*write=*/true, 1);
  rd.OnBarrier(&barrier, {0, 1});
  rd.OnAccess(1, 0, 8, /*write=*/true, 2);  // reads t0's pre-barrier write
  rd.OnAccess(0, kLine, 8, /*write=*/true, 2);
  EXPECT_TRUE(rd.clean());
}

TEST_F(RaceDetectorApiTest, FalseSharingIsNotARace) {
  // Two threads write disjoint words of one line: false sharing, clean.
  rd.OnAccess(0, 0 * kShadowWordBytes, 8, /*write=*/true, 1);
  rd.OnAccess(1, 3 * kShadowWordBytes, 8, /*write=*/true, 2);
  EXPECT_TRUE(rd.clean());
  // ...until one of them touches the other's word.
  rd.OnAccess(1, 0 * kShadowWordBytes, 8, /*write=*/true, 3);
  ASSERT_EQ(rd.reports().size(), 1u);
  EXPECT_EQ(rd.reports()[0].word, 0);
}

TEST_F(RaceDetectorApiTest, NeighbouringWordReadersDoNotPoisonWriters) {
  // Regression for the hash-bucket pattern: many threads read *different*
  // words of one line, then one thread writes the word only it ever read.
  rd.OnThreadStart(2, "t2", -1);
  rd.OnAccess(0, 0 * kShadowWordBytes, 8, /*write=*/false, 1);
  rd.OnAccess(1, 3 * kShadowWordBytes, 8, /*write=*/false, 1);
  rd.OnAccess(2, 5 * kShadowWordBytes, 8, /*write=*/false, 1);
  rd.OnAccess(0, 0 * kShadowWordBytes, 8, /*write=*/true, 2);
  EXPECT_TRUE(rd.clean());
}

TEST_F(RaceDetectorApiTest, ReadSharedStillCatchesRacingWriter) {
  rd.OnThreadStart(2, "t2", -1);
  // Whole-line reads by three threads promote to a read vector clock.
  rd.OnAccess(0, 0, kLine, /*write=*/false, 1);
  rd.OnAccess(1, 0, kLine, /*write=*/false, 1);
  rd.OnAccess(2, 0, kLine, /*write=*/false, 1);
  rd.OnAccess(0, 0, 8, /*write=*/true, 2);  // unordered vs readers 1 and 2
  EXPECT_FALSE(rd.clean());
}

TEST_F(RaceDetectorApiTest, AllocationClearsHistoryAndNamesBlock) {
  rd.OnAccess(0, 0, 8, /*write=*/true, 1);
  // The block is freed and handed to t1: no HB edge, but no history either.
  rd.OnAlloc(1, 0, 64, 10);
  rd.OnAccess(1, 0, 8, /*write=*/true, 2);
  EXPECT_TRUE(rd.clean());
  // A third party racing on the re-used block names the new allocation.
  rd.OnAccess(0, 0, 8, /*write=*/true, 3);
  ASSERT_EQ(rd.reports().size(), 1u);
  EXPECT_NE(rd.reports()[0].text.find("allocated by"), std::string::npos);
}

TEST_F(RaceDetectorApiTest, SpanAccessTilesAllLines) {
  rd.OnAccess(0, 0, 4 * kLine, /*write=*/true, 1);
  rd.OnAccess(1, 3 * kLine, 8, /*write=*/true, 2);  // races with the tail
  EXPECT_EQ(rd.reports().size(), 1u);
  EXPECT_EQ(rd.reports()[0].line, 3u);
}

TEST_F(RaceDetectorApiTest, DedupesReportsPerLine) {
  for (int i = 0; i < 10; ++i) {
    rd.OnAccess(i % 2, 0, 8, /*write=*/true, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(rd.reports().size(), 1u);
  EXPECT_GT(rd.races_observed(), 1u);
}

// --- SimContext integration ------------------------------------------------

sim::Task RacyWriter(workloads::Env& env, uint64_t* shared) {
  for (int i = 0; i < 4; ++i) {
    env.Write(shared, sizeof(uint64_t));  // no lock: a genuine modeled race
    co_await env.Checkpoint();
  }
}

TEST(RaceDetectorSimTest, SeededRaceIsCaught) {
  workloads::RunConfig cfg;
  cfg.threads = 2;
  cfg.race_detect = true;
  workloads::SimContext ctx(cfg);
  auto* shared = static_cast<uint64_t*>(ctx.allocator()->Alloc(8));
  ctx.SpawnWorkers(
      [&](workloads::Env& env) { return RacyWriter(env, shared); });
  workloads::RunResult result;
  ctx.Finish(&result);
  EXPECT_GT(result.races, 0u);
  ASSERT_FALSE(result.race_reports.empty());
  EXPECT_NE(result.race_reports[0].find("DATA RACE"), std::string::npos);
  EXPECT_NE(result.race_reports[0].find("worker0"), std::string::npos);
  EXPECT_NE(result.race_reports[0].find("worker1"), std::string::npos);
  EXPECT_NE(result.race_reports[0].find("node "), std::string::npos);
}

TEST(RaceDetectorSimTest, W1RunsCleanAndResultsAreUnchanged) {
  workloads::RunConfig cfg;
  cfg.threads = 4;
  cfg.num_records = 50'000;
  cfg.cardinality = 5'000;
  workloads::RunResult plain = workloads::RunW1HolisticAggregation(cfg);
  cfg.race_detect = true;
  workloads::RunResult checked = workloads::RunW1HolisticAggregation(cfg);
  EXPECT_EQ(checked.races, 0u) << (checked.race_reports.empty()
                                       ? ""
                                       : checked.race_reports[0]);
  // Pure-bookkeeping contract: identical simulated results either way.
  EXPECT_EQ(plain.cycles, checked.cycles);
  EXPECT_EQ(plain.checksum, checked.checksum);
}

TEST(RaceDetectorSimTest, W3RunsClean) {
  workloads::RunConfig cfg;
  cfg.threads = 4;
  cfg.build_rows = 10'000;
  cfg.probe_rows = 80'000;
  cfg.race_detect = true;
  workloads::RunResult r = workloads::RunW3HashJoin(cfg);
  EXPECT_EQ(r.races, 0u) << (r.race_reports.empty() ? ""
                                                    : r.race_reports[0]);
}

TEST(RaceDetectorSimTest, ServingMixedStreamRunsClean) {
  // The serving layer hammers ConcurrentHashTable::UpsertWith/UpsertSet
  // from every worker at once — the striped warmup build plus the mixed
  // stream's concurrent upserts and lock-free probes — while workers also
  // contend on the per-node queue locks. All of it must be race-free under
  // the happens-before detector.
  workloads::RunConfig cfg;
  cfg.machine = "A";
  cfg.threads = 4;
  cfg.race_detect = true;
  serve::ServeConfig sc;
  sc.requests = 300;
  sc.kv_keys = 1 << 12;
  sc.probe_build_rows = 1024;
  sc.mean_gap_cycles = 2'000;  // enough pressure for overlapping batches
  sc.mix_point = 0.3;
  sc.mix_range = 0.1;
  sc.mix_probe = 0.3;
  sc.mix_upsert = 0.3;  // upsert-heavy: stripe locks do real work
  sc.mix_tpch = 0;
  serve::ServeResult r = serve::RunServing(cfg, sc);
  ASSERT_TRUE(r.run.status.ok()) << r.run.status.ToString();
  EXPECT_EQ(r.stats.completed, r.stats.admitted);
  EXPECT_EQ(r.run.races, 0u)
      << (r.run.race_reports.empty() ? "" : r.run.race_reports[0]);
}

TEST(RaceDetectorSimTest, StorageUpsertScanStreamRunsClean) {
  // The WAL-backed storage path: every worker hammers the buffer-pool
  // shard stripe locks at once — concurrent upserts (WAL appends + in-frame
  // slot writes), point gets, and multi-page scans, with evictions and
  // dirty writebacks moving whole page images under the shard locks. The
  // happens-before detector must see every frame/WAL access ordered by the
  // Env::LockAcquired/LockReleased edges.
  workloads::RunConfig cfg;
  cfg.machine = "A";
  cfg.threads = 4;
  cfg.race_detect = true;
  serve::ServeConfig sc;
  sc.requests = 300;
  sc.kv_keys = 1 << 13;  // 33 pages over 8 two-frame shards: eviction-hot
  sc.probe_build_rows = 1024;
  sc.mean_gap_cycles = 2'000;
  sc.mix_point = 0.25;
  sc.mix_range = 0.25;  // scans walk pages across shards
  sc.mix_probe = 0;
  sc.mix_upsert = 0.5;  // upsert-heavy: WAL + dirty frames do real work
  sc.mix_tpch = 0;
  sc.storage.enabled = true;
  sc.storage.frames_per_shard = 2;  // tiny pool: evictions under contention
  serve::ServeResult r = serve::RunServing(cfg, sc);
  ASSERT_TRUE(r.run.status.ok()) << r.run.status.ToString();
  EXPECT_GT(r.storage.upserts, 0u);
  EXPECT_GT(r.storage.evictions, 0u);
  EXPECT_EQ(r.run.races, 0u)
      << (r.run.race_reports.empty() ? "" : r.run.race_reports[0]);
}

}  // namespace
}  // namespace sanity
}  // namespace numalab
