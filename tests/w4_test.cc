// End-to-end tests for the W4 index nested-loop join across all four index
// structures and several configurations.

#include <gtest/gtest.h>

#include "src/workloads/workloads.h"

namespace numalab {
namespace workloads {
namespace {

class W4Test : public ::testing::TestWithParam<const char*> {};

RunConfig SmallJoin() {
  RunConfig c;
  c.machine = "A";
  c.threads = 8;
  c.affinity = osmodel::Affinity::kSparse;
  c.autonuma = false;
  c.thp = false;
  c.build_rows = 8'000;
  c.probe_rows = 64'000;
  return c;
}

TEST_P(W4Test, EveryProbeMatches) {
  RunConfig c = SmallJoin();
  RunResult r = RunW4IndexJoin(c, GetParam());
  EXPECT_EQ(r.checksum, c.probe_rows);
  EXPECT_GT(r.aux_cycles, 0u);  // build time measured
  EXPECT_GT(r.cycles, 0u);      // join time measured
}

TEST_P(W4Test, DeterministicAndAllocatorAgnosticResult) {
  RunConfig c = SmallJoin();
  RunResult a = RunW4IndexJoin(c, GetParam());
  RunResult b = RunW4IndexJoin(c, GetParam());
  EXPECT_EQ(a.cycles, b.cycles);
  c.allocator = "hoard";
  c.policy = mem::MemPolicy::kInterleave;
  RunResult h = RunW4IndexJoin(c, GetParam());
  EXPECT_EQ(h.checksum, a.checksum);  // config changes timing, not answers
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, W4Test,
                         ::testing::Values("art", "masstree", "btree",
                                           "skiplist"),
                         [](const auto& info) { return info.param; });

TEST(W4Ordering, ArtAndBtreeAreTheFastIndexes) {
  // The paper's Fig. 7e: ART and B+tree are the two fastest indexes.
  RunConfig c = SmallJoin();
  c.build_rows = 40'000;
  c.probe_rows = 320'000;
  uint64_t art = RunW4IndexJoin(c, "art").cycles;
  uint64_t btree = RunW4IndexJoin(c, "btree").cycles;
  uint64_t masstree = RunW4IndexJoin(c, "masstree").cycles;
  uint64_t skiplist = RunW4IndexJoin(c, "skiplist").cycles;
  EXPECT_LT(art, masstree);
  EXPECT_LT(art, skiplist);
  EXPECT_LT(btree, masstree);
  EXPECT_LT(btree, skiplist);
}

}  // namespace
}  // namespace workloads
}  // namespace numalab
