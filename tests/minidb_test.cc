// Tests for the minidb engine and its TPC-H queries: reference answers for
// queries with easily computed host-side results, cross-profile result
// agreement, and determinism.

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "src/minidb/runner.h"
#include "src/minidb/tpch_gen.h"

namespace numalab {
namespace minidb {
namespace {

constexpr double kScale = 0.01;

TpchOptions Opts(int q, const char* profile = "columnar-vec",
                 bool tuned = true) {
  TpchOptions o;
  o.query = q;
  o.profile = profile;
  o.scale = kScale;
  o.tuned = tuned;
  return o;
}

TEST(TpchGen, CardinalitiesScale) {
  const HostDb& h = GenerateTpch(kScale);
  EXPECT_EQ(h.r_regionkey.size(), 5u);
  EXPECT_EQ(h.n_nationkey.size(), 25u);
  EXPECT_EQ(h.c_custkey.size(), 1500u);
  EXPECT_EQ(h.o_orderkey.size(), 15000u);
  EXPECT_EQ(h.p_partkey.size(), 2000u);
  EXPECT_EQ(h.ps_partkey.size(), 8000u);
  // lineitem: 1..7 lines per order, expectation 4.
  EXPECT_GT(h.l_orderkey.size(), 3 * h.o_orderkey.size());
  EXPECT_LT(h.l_orderkey.size(), 7 * h.o_orderkey.size());
}

TEST(TpchGen, DateHelper) {
  EXPECT_EQ(Date(1992, 1, 1), 0);
  EXPECT_EQ(Date(1992, 2, 1), 31);
  EXPECT_EQ(Date(1993, 1, 1), 366);  // 1992 is a leap year
  EXPECT_EQ(Date(1998, 12, 31) - Date(1998, 12, 1), 30);
}

TEST(TpchGen, ForeignKeysValid) {
  const HostDb& h = GenerateTpch(kScale);
  uint64_t customers = h.c_custkey.size();
  uint64_t parts = h.p_partkey.size();
  uint64_t suppliers = h.s_suppkey.size();
  for (int64_t ck : h.o_custkey) {
    ASSERT_GE(ck, 1);
    ASSERT_LE(ck, static_cast<int64_t>(customers));
  }
  for (size_t i = 0; i < h.l_orderkey.size(); i += 97) {
    ASSERT_GE(h.l_partkey[i], 1);
    ASSERT_LE(h.l_partkey[i], static_cast<int64_t>(parts));
    ASSERT_GE(h.l_suppkey[i], 1);
    ASSERT_LE(h.l_suppkey[i], static_cast<int64_t>(suppliers));
    // The line's supplier is one of the part's four partsupp suppliers.
    uint64_t base = static_cast<uint64_t>(h.l_partkey[i] - 1) * 4;
    bool found = false;
    for (int j = 0; j < 4; ++j) found |= h.ps_suppkey[base + j] == h.l_suppkey[i];
    ASSERT_TRUE(found);
  }
}

double ReferenceQ6() {
  const HostDb& h = GenerateTpch(kScale);
  const int64_t y94 = Date(1994, 1, 1), y95 = Date(1995, 1, 1);
  double sum = 0;
  for (size_t i = 0; i < h.l_shipdate.size(); ++i) {
    if (h.l_shipdate[i] >= y94 && h.l_shipdate[i] < y95 &&
        h.l_discount[i] >= 0.049 && h.l_discount[i] <= 0.071 &&
        h.l_quantity[i] < 24) {
      sum += h.l_extendedprice[i] * h.l_discount[i];
    }
  }
  return sum;
}

TEST(TpchQueries, Q6MatchesReference) {
  TpchResult r = RunTpch(Opts(6));
  EXPECT_NEAR(r.out.digest, ReferenceQ6(), 1e-6 * std::abs(ReferenceQ6()));
}

TEST(TpchQueries, Q1MatchesReference) {
  const HostDb& h = GenerateTpch(kScale);
  const int64_t cutoff = Date(1998, 9, 2);
  std::map<int64_t, std::pair<double, uint64_t>> groups;  // charge, count
  for (size_t i = 0; i < h.l_shipdate.size(); ++i) {
    if (h.l_shipdate[i] > cutoff) continue;
    auto& g = groups[h.l_returnflag[i] * 2 + h.l_linestatus[i]];
    g.first += h.l_extendedprice[i] * (1 - h.l_discount[i]) *
               (1 + h.l_tax[i]);
    g.second += 1;
  }
  double expect = 0;
  for (auto& [k, g] : groups) {
    expect += static_cast<double>(k + 1) * (g.first / 1e6) +
              static_cast<double>(g.second);
  }
  TpchResult r = RunTpch(Opts(1));
  EXPECT_EQ(r.out.rows, groups.size());
  EXPECT_NEAR(r.out.digest, expect, 1e-9 * std::abs(expect));
}

TEST(TpchQueries, Q18MatchesReference) {
  const HostDb& h = GenerateTpch(kScale);
  std::map<int64_t, double> qty;
  for (size_t i = 0; i < h.l_orderkey.size(); ++i) {
    qty[h.l_orderkey[i]] += static_cast<double>(h.l_quantity[i]);
  }
  std::vector<double> totals;
  for (auto& [okey, s] : qty) {
    if (s > 300.0) totals.push_back(h.o_totalprice[okey - 1]);
  }
  std::sort(totals.rbegin(), totals.rend());
  double expect = 0;
  uint64_t n = std::min<uint64_t>(totals.size(), 100);
  for (uint64_t i = 0; i < n; ++i) expect += totals[i];
  TpchResult r = RunTpch(Opts(18));
  EXPECT_EQ(r.out.rows, n);
  EXPECT_NEAR(r.out.digest, expect, 1e-9 * std::max(1.0, std::abs(expect)));
}

TEST(TpchQueries, All22RunOnAllProfiles) {
  for (int q = 1; q <= 22; ++q) {
    TpchResult base = RunTpch(Opts(q, "columnar-vec"));
    EXPECT_GT(base.cycles, 0u) << "Q" << q;
    for (const char* prof : {"row-mp", "row-st", "hybrid-par",
                             "hybrid-vec"}) {
      TpchResult r = RunTpch(Opts(q, prof));
      // Same query, same data: identical answers regardless of profile.
      EXPECT_EQ(r.out.rows, base.out.rows) << "Q" << q << " " << prof;
      EXPECT_NEAR(r.out.digest, base.out.digest,
                  1e-6 * std::max(1.0, std::abs(base.out.digest)))
          << "Q" << q << " " << prof;
    }
  }
}

TEST(TpchQueries, DeterministicAcrossRuns) {
  TpchResult a = RunTpch(Opts(5));
  TpchResult b = RunTpch(Opts(5));
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.out.digest, b.out.digest);
}

TEST(TpchQueries, DefaultEnvironmentRunsToCompletion) {
  TpchResult r = RunTpch(Opts(3, "columnar-vec", /*tuned=*/false));
  TpchResult t = RunTpch(Opts(3, "columnar-vec", /*tuned=*/true));
  EXPECT_EQ(r.out.rows, t.out.rows);
  EXPECT_NEAR(r.out.digest, t.out.digest,
              1e-6 * std::max(1.0, std::abs(t.out.digest)));
}

TEST(Profiles, WorkerPolicies) {
  const auto& monet = ProfileByName("MonetDB");
  EXPECT_EQ(monet.WorkersFor(1, 16), 16);
  const auto& pg = ProfileByName("PostgreSQL");
  EXPECT_EQ(pg.WorkersFor(1, 16), 4);
  EXPECT_EQ(pg.WorkersFor(17, 16), 1);  // rigid subquery plans
  const auto& mysql = ProfileByName("MySQL");
  EXPECT_EQ(mysql.WorkersFor(1, 16), 1);
}

}  // namespace
}  // namespace minidb
}  // namespace numalab
