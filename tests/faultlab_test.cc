// faultlab tests: seeded fault draws are deterministic, per-node capacity
// enforcement spills along the Linux-style zonelist (nearest-distance
// fallback), injected failures propagate as Status instead of aborting, and
// the watchdog deadline cuts runaway runs short. Workload-level tests also
// pin the determinism contract: same seed + same FaultPlan reproduces the
// identical RunResult across repeated runs and across the scalar/span
// memory paths.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/faultlab/faultlab.h"
#include "src/mem/mem_system.h"
#include "src/sim/engine.h"
#include "src/topology/machine.h"
#include "src/workloads/workloads.h"

namespace numalab {
namespace {

// ---------------------------------------------------------------------------
// FaultLab unit behaviour.

TEST(FaultLabUnit, CapacityScaleComposesWithPerNodeScale) {
  faultlab::FaultPlan plan;
  plan.capacity_scale = 0.25;
  plan.node_capacity_scale = {1.0, 0.5};
  perf::SystemCounters sys;
  faultlab::FaultLab fl(plan, /*seed=*/1, /*run_index=*/0, &sys);
  EXPECT_EQ(fl.NodeCapacityBytes(0, 1 << 20), (1u << 20) / 4);
  EXPECT_EQ(fl.NodeCapacityBytes(1, 1 << 20), (1u << 20) / 8);
  // Nodes past the per-node vector use capacity_scale alone.
  EXPECT_EQ(fl.NodeCapacityBytes(2, 1 << 20), (1u << 20) / 4);
  // Never below one small page.
  EXPECT_EQ(fl.NodeCapacityBytes(0, 1024), 4096u);
}

TEST(FaultLabUnit, AbsoluteCapacityOverridesScale) {
  faultlab::FaultPlan plan;
  plan.capacity_scale = 0.25;
  plan.node_capacity_bytes = 123 << 12;
  perf::SystemCounters sys;
  faultlab::FaultLab fl(plan, 1, 0, &sys);
  EXPECT_EQ(fl.NodeCapacityBytes(0, 1ULL << 30), 123u << 12);
}

TEST(FaultLabUnit, NodeOfflineFiresAtCycle) {
  faultlab::FaultPlan plan;
  plan.offline = {{/*node=*/3, /*at_cycle=*/1000}};
  perf::SystemCounters sys;
  faultlab::FaultLab fl(plan, 1, 0, &sys);
  EXPECT_TRUE(fl.NodeOnline(3, 999));
  EXPECT_FALSE(fl.NodeOnline(3, 1000));
  EXPECT_TRUE(fl.NodeOnline(2, 5000));  // other nodes unaffected
}

TEST(FaultLabUnit, DrawSequenceIsSeedDeterministic) {
  faultlab::FaultPlan plan;
  plan.alloc_fail_prob = 0.5;
  perf::SystemCounters sys_a, sys_b, sys_c;
  faultlab::FaultLab a(plan, 7, 2, &sys_a);
  faultlab::FaultLab b(plan, 7, 2, &sys_b);
  plan.seed_salt = 99;
  faultlab::FaultLab c(plan, 7, 2, &sys_c);
  std::vector<bool> sa, sb, sc;
  for (int i = 0; i < 256; ++i) {
    sa.push_back(a.DrawAllocFailure());
    sb.push_back(b.DrawAllocFailure());
    sc.push_back(c.DrawAllocFailure());
  }
  EXPECT_EQ(sa, sb);                      // same stream, same draws
  EXPECT_NE(sa, sc);                      // seed_salt decorrelates
  EXPECT_EQ(sys_a.alloc_failures_injected, sys_b.alloc_failures_injected);
  EXPECT_GT(sys_a.alloc_failures_injected, 0u);
}

TEST(FaultLabUnit, ZeroProbabilityConsumesNoRng) {
  faultlab::FaultPlan plan;
  plan.alloc_fail_prob = 0.0;
  perf::SystemCounters sys;
  faultlab::FaultLab fl(plan, 7, 0, &sys);
  for (int i = 0; i < 64; ++i) EXPECT_FALSE(fl.DrawAllocFailure());
  EXPECT_EQ(sys.alloc_failures_injected, 0u);
}

// ---------------------------------------------------------------------------
// Zonelist + capacity spill (SimOS level).

class FaultSpillTest : public ::testing::Test {
 protected:
  void Build(const topology::Machine& machine) {
    machine_ = machine;
    memsys_ = std::make_unique<mem::MemSystem>(&machine_, &engine_,
                                               mem::CostModel{}, &sys_);
  }

  topology::Machine machine_ = topology::MachineA();
  sim::Engine engine_;
  perf::SystemCounters sys_;
  std::unique_ptr<mem::MemSystem> memsys_;
};

// The zonelist of every node on every machine is the Linux fallback order:
// all nodes sorted by distance (Machine::Hops) from the owner, nearest
// first, ties broken by node id, the owner itself leading.
TEST_F(FaultSpillTest, ZonelistMatchesDistanceOrderOnAllMachines) {
  for (const auto& m :
       {topology::MachineA(), topology::MachineB(), topology::MachineC()}) {
    Build(m);
    const mem::SimOS* os = memsys_->os();
    for (int n = 0; n < machine_.num_nodes(); ++n) {
      const std::vector<int>& zl = os->Zonelist(n);
      ASSERT_EQ(zl.size(), static_cast<size_t>(machine_.num_nodes()))
          << m.name() << " node " << n;
      EXPECT_EQ(zl[0], n) << m.name();  // self is always nearest
      std::vector<int> expect(static_cast<size_t>(machine_.num_nodes()));
      for (int i = 0; i < machine_.num_nodes(); ++i) {
        expect[static_cast<size_t>(i)] = i;
      }
      std::stable_sort(expect.begin(), expect.end(), [&](int a, int b) {
        return machine_.Hops(n, a) < machine_.Hops(n, b);
      });
      EXPECT_EQ(zl, expect) << m.name() << " node " << n;
    }
  }
}

// With a two-page-per-node capacity, eager Preferred binds fill the
// preferred node then spill outward in exact zonelist order.
TEST_F(FaultSpillTest, PreferredSpillsInZonelistOrderWhenFull) {
  Build(topology::MachineA());
  faultlab::FaultPlan plan;
  plan.node_capacity_bytes = 2 * mem::kSmallPageBytes;
  faultlab::FaultLab fl(plan, /*seed=*/42, /*run_index=*/0, &sys_);
  memsys_->os()->SetFaultLab(&fl);
  memsys_->os()->SetPolicy(mem::MemPolicy::kPreferred, /*preferred_node=*/0);

  mem::Region* r = memsys_->os()->Map(6 * mem::kSmallPageBytes,
                                      /*thp_eligible=*/false);
  const std::vector<int>& zl = memsys_->os()->Zonelist(0);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(r->pages[static_cast<size_t>(i)].node, zl[static_cast<size_t>(i / 2)])
        << "page " << i;
  }
  EXPECT_EQ(sys_.pages_spilled, 4u);        // pages 2-5 left node 0
  EXPECT_EQ(sys_.oom_last_resort_pages, 0u);
}

// When every zone is full the bind still succeeds on the desired node
// ("too small to fail") and the last-resort counter records it.
TEST_F(FaultSpillTest, ExhaustedMachineBindsAnyway) {
  Build(topology::MachineA());
  faultlab::FaultPlan plan;
  plan.node_capacity_bytes = mem::kSmallPageBytes;  // one page per node
  faultlab::FaultLab fl(plan, 42, 0, &sys_);
  memsys_->os()->SetFaultLab(&fl);
  memsys_->os()->SetPolicy(mem::MemPolicy::kPreferred, 0);

  size_t nodes = static_cast<size_t>(machine_.num_nodes());
  mem::Region* r = memsys_->os()->Map((nodes + 2) * mem::kSmallPageBytes,
                                      /*thp_eligible=*/false);
  EXPECT_GT(sys_.oom_last_resort_pages, 0u);
  for (const auto& p : r->pages) EXPECT_GE(p.node, 0);
}

// Regression: interleave must rotate over *online* nodes only. The old
// cursor rotated over all nodes, so with node 3 offline every 8th bind
// targeted it and got rerouted by the spill walk — node 3's share landed
// on whatever the zonelist picked (skewed placement) and offline_redirects
// counted allocations that never should have considered the node.
TEST_F(FaultSpillTest, InterleaveSkipsOfflineNodes) {
  Build(topology::MachineA());
  faultlab::FaultPlan plan;
  plan.offline = {{/*node=*/3, /*at_cycle=*/0}};
  faultlab::FaultLab fl(plan, 42, 0, &sys_);
  memsys_->os()->SetFaultLab(&fl);
  memsys_->os()->SetPolicy(mem::MemPolicy::kInterleave, 0);

  mem::Region* r = memsys_->os()->Map(16 * mem::kSmallPageBytes,
                                      /*thp_eligible=*/false);
  std::vector<int> per_node(static_cast<size_t>(machine_.num_nodes()), 0);
  for (const auto& p : r->pages) ++per_node[static_cast<size_t>(p.node)];
  EXPECT_EQ(per_node[3], 0);  // the offline node is not a candidate at all
  for (int n = 0; n < machine_.num_nodes(); ++n) {
    if (n != 3) {
      EXPECT_GE(per_node[static_cast<size_t>(n)], 2) << "node " << n;
    }
  }
  // No bind ever *targeted* the offline node, so nothing was redirected.
  EXPECT_EQ(sys_.offline_redirects, 0u);
  EXPECT_EQ(sys_.pages_spilled, 0u);
}

// The bit-identical contract: attaching faultlab with no offline nodes must
// leave the interleave rotation exactly as it is without faultlab.
TEST_F(FaultSpillTest, InterleaveUnchangedWhenFaultlabHasNoOfflineNodes) {
  Build(topology::MachineA());
  memsys_->os()->SetPolicy(mem::MemPolicy::kInterleave, 0);
  mem::Region* plain = memsys_->os()->Map(16 * mem::kSmallPageBytes,
                                          /*thp_eligible=*/false);
  std::vector<int> want;
  for (const auto& p : plain->pages) want.push_back(p.node);

  Build(topology::MachineA());
  faultlab::FaultPlan plan;  // enabled-but-benign: capacity scale only
  plan.capacity_scale = 1.0;
  faultlab::FaultLab fl(plan, 42, 0, &sys_);
  memsys_->os()->SetFaultLab(&fl);
  memsys_->os()->SetPolicy(mem::MemPolicy::kInterleave, 0);
  mem::Region* faulted = memsys_->os()->Map(16 * mem::kSmallPageBytes,
                                            /*thp_eligible=*/false);
  std::vector<int> got;
  for (const auto& p : faulted->pages) got.push_back(p.node);
  EXPECT_EQ(got, want);
}

// Regression: an offline preferred node with every online node full is a
// *redirect* (the kernel would never have allocated on the offline node),
// not an OOM last-resort bind — the old code counted it as the latter and
// returned the offline node.
TEST_F(FaultSpillTest, OfflineDesiredWithFullMachineCountsRedirectNotOom) {
  Build(topology::MachineA());
  faultlab::FaultPlan plan;
  plan.node_capacity_bytes = mem::kSmallPageBytes;  // one page per node
  plan.offline = {{/*node=*/0, /*at_cycle=*/0}};
  faultlab::FaultLab fl(plan, 42, 0, &sys_);
  memsys_->os()->SetFaultLab(&fl);
  memsys_->os()->SetPolicy(mem::MemPolicy::kPreferred, 0);

  // 7 online nodes x 1 page fill the machine; 3 more overcommit.
  mem::Region* r = memsys_->os()->Map(10 * mem::kSmallPageBytes,
                                      /*thp_eligible=*/false);
  for (const auto& p : r->pages) EXPECT_NE(p.node, 0);  // never offline
  EXPECT_EQ(sys_.offline_redirects, 10u);
  EXPECT_EQ(sys_.oom_last_resort_pages, 0u);
}

// When the whole machine is offline there is no online node to redirect to;
// the bind keeps the desired node and the dedicated counter surfaces the
// degradation (the old code returned the offline node silently).
TEST_F(FaultSpillTest, AllNodesOfflineSurfacesDegradationCounter) {
  Build(topology::MachineA());
  faultlab::FaultPlan plan;
  for (int n = 0; n < machine_.num_nodes(); ++n) {
    plan.offline.push_back({n, /*at_cycle=*/0});
  }
  faultlab::FaultLab fl(plan, 42, 0, &sys_);
  memsys_->os()->SetFaultLab(&fl);
  memsys_->os()->SetPolicy(mem::MemPolicy::kPreferred, 2);

  mem::Region* r = memsys_->os()->Map(4 * mem::kSmallPageBytes,
                                      /*thp_eligible=*/false);
  for (const auto& p : r->pages) EXPECT_EQ(p.node, 2);
  EXPECT_EQ(sys_.all_offline_binds, 4u);
  EXPECT_EQ(sys_.offline_redirects, 0u);
  EXPECT_EQ(sys_.oom_last_resort_pages, 0u);
}

TEST_F(FaultSpillTest, OfflineNodeRedirectsBinds) {
  Build(topology::MachineA());
  faultlab::FaultPlan plan;
  plan.offline = {{/*node=*/0, /*at_cycle=*/0}};
  faultlab::FaultLab fl(plan, 42, 0, &sys_);
  memsys_->os()->SetFaultLab(&fl);
  memsys_->os()->SetPolicy(mem::MemPolicy::kPreferred, 0);

  mem::Region* r = memsys_->os()->Map(4 * mem::kSmallPageBytes,
                                      /*thp_eligible=*/false);
  const std::vector<int>& zl = memsys_->os()->Zonelist(0);
  for (const auto& p : r->pages) EXPECT_EQ(p.node, zl[1]);  // nearest online
  EXPECT_EQ(sys_.offline_redirects, 4u);
  EXPECT_EQ(sys_.pages_spilled, 0u);
}

// ---------------------------------------------------------------------------
// Workload-level: determinism, status propagation, watchdog.

workloads::RunConfig PressureConfig() {
  workloads::RunConfig c;
  c.machine = "A";
  c.threads = 8;
  c.affinity = osmodel::Affinity::kSparse;
  c.policy = mem::MemPolicy::kFirstTouch;
  c.allocator = "ptmalloc";
  c.autonuma = false;
  c.thp = false;
  c.num_records = 50'000;
  c.cardinality = 512;
  c.build_rows = 10'000;
  c.probe_rows = 80'000;
  // Per-node capacity far below the working set: binds must spill.
  c.faults = faultlab::MemoryPressurePlan(64 * mem::kSmallPageBytes);
  return c;
}

TEST(FaultlabWorkload, PressureRunDegradesGracefully) {
  workloads::RunConfig c = PressureConfig();
  workloads::RunResult r = workloads::RunW3HashJoin(c);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.checksum, c.probe_rows);  // answers stay correct under spill
  EXPECT_GT(r.pages_spilled, 0u);
}

TEST(FaultlabWorkload, SameSeedSamePlanIsBitReproducible) {
  workloads::RunConfig c = PressureConfig();
  workloads::RunResult a = workloads::RunW3HashJoin(c);
  workloads::RunResult b = workloads::RunW3HashJoin(c);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.pages_spilled, b.pages_spilled);
  EXPECT_EQ(a.oom_last_resort_pages, b.oom_last_resort_pages);
  EXPECT_EQ(a.report.threads.mem_accesses, b.report.threads.mem_accesses);
  EXPECT_EQ(a.report.threads.llc_misses, b.report.threads.llc_misses);
}

TEST(FaultlabWorkload, ScalarAndSpanPathsAgreeUnderFaults) {
  workloads::RunConfig c = PressureConfig();
  c.faults.degraded_links = {0};
  c.faults.link_latency_scale = 2.0;
  workloads::RunResult span = workloads::RunW3HashJoin(c);
  c.scalar_mem_path = true;
  workloads::RunResult scalar = workloads::RunW3HashJoin(c);
  EXPECT_EQ(span.cycles, scalar.cycles);
  EXPECT_EQ(span.checksum, scalar.checksum);
  EXPECT_EQ(span.pages_spilled, scalar.pages_spilled);
  EXPECT_EQ(span.oom_last_resort_pages, scalar.oom_last_resort_pages);
}

TEST(FaultlabWorkload, InjectedAllocFailureBecomesStatusNotAbort) {
  workloads::RunConfig c = PressureConfig();
  c.faults = faultlab::FaultPlan{};
  c.faults.alloc_fail_prob = 1.0;  // first worker-side allocation fails
  workloads::RunResult r = workloads::RunW1HolisticAggregation(c);
  EXPECT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), Status::Code::kOutOfMemory)
      << r.status.ToString();
  EXPECT_GT(r.alloc_failures_injected, 0u);
}

TEST(FaultlabWorkload, DegradedLinksSlowTheRunButKeepItCorrect) {
  workloads::RunConfig c = PressureConfig();
  c.faults = faultlab::FaultPlan{};
  workloads::RunResult healthy = workloads::RunW3HashJoin(c);
  c.faults.degraded_links = {0, 1, 2};
  c.faults.link_latency_scale = 8.0;
  workloads::RunResult degraded = workloads::RunW3HashJoin(c);
  EXPECT_TRUE(degraded.status.ok());
  EXPECT_EQ(degraded.checksum, healthy.checksum);
  EXPECT_GT(degraded.cycles, healthy.cycles);
}

TEST(FaultlabWorkload, DeadlineCutsRunawayRunShort) {
  workloads::RunConfig c = PressureConfig();
  c.faults = faultlab::FaultPlan{};
  c.deadline_cycles = 50'000;  // far below the run's natural makespan
  workloads::RunResult r = workloads::RunW1HolisticAggregation(c);
  EXPECT_EQ(r.status.code(), Status::Code::kDeadlineExceeded)
      << r.status.ToString();
}

TEST(FaultlabWorkload, DefaultPlanMatchesNoFaultRun) {
  // The zero-cost contract at workload granularity: a disabled plan is
  // bit-identical to a run where faultlab never existed.
  workloads::RunConfig c = PressureConfig();
  c.faults = faultlab::FaultPlan{};
  workloads::RunResult a = workloads::RunW3HashJoin(c);
  workloads::RunResult b = workloads::RunW3HashJoin(c);
  EXPECT_TRUE(a.status.ok());
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.pages_spilled, 0u);
  EXPECT_EQ(a.oom_last_resort_pages, 0u);
  EXPECT_EQ(a.alloc_failures_injected, 0u);
}

}  // namespace
}  // namespace numalab
