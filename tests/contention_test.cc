// Unit tests for the bandwidth contention model.

#include <gtest/gtest.h>

#include "src/mem/contention.h"

namespace numalab {
namespace mem {
namespace {

TEST(ResourceQueue, IdleResourceAddsNoDelay) {
  ResourceQueue q(2.0);
  // First epoch has no history: zero utilization, zero delay.
  EXPECT_EQ(q.Reserve(0, 64, 4000), 0u);
  EXPECT_EQ(q.Reserve(100, 64, 4000), 0u);
}

TEST(ResourceQueue, SaturationProducesDelay) {
  ResourceQueue q(1.0);  // 1 byte/cycle
  // Saturate epoch 0: book a full epoch's worth of bytes.
  q.Reserve(0, 60000, 4000);
  // Epoch 1 sees high utilization -> delays.
  uint64_t d = q.Reserve(1 << 16, 64, 4000);
  EXPECT_GT(d, 0u);
}

TEST(ResourceQueue, UtilizationDecaysAfterIdleGap) {
  ResourceQueue q(1.0);
  q.Reserve(0, 60000, 4000);
  // Skip several epochs: history resets, no delay.
  EXPECT_EQ(q.Reserve(10ULL << 16, 64, 4000), 0u);
}

TEST(ResourceQueue, DelayGrowsWithUtilization) {
  ResourceQueue light(1.0), heavy(1.0);
  light.Reserve(0, 10000, 4000);   // ~15% of a 65536-cycle epoch
  heavy.Reserve(0, 60000, 4000);   // ~92%
  uint64_t dl = light.Reserve(1 << 16, 64, 4000);
  uint64_t dh = heavy.Reserve(1 << 16, 64, 4000);
  EXPECT_LT(dl, dh);
}

TEST(ResourceQueue, DelayIsCapped) {
  ResourceQueue q(0.01);  // pathologically slow resource
  q.Reserve(0, 60000, 4000);
  EXPECT_LE(q.Reserve(1 << 16, 6400, 123), 123u);
}

TEST(ContentionModel, RemoteChargesLinksToo) {
  topology::Machine m = topology::MachineA();
  ContentionModel cm(m);
  // Saturate the destination controller and the route's links.
  for (int i = 0; i < 2000; ++i) cm.Charge(m, 0, 1, 0, 64, 4000);
  uint64_t local = cm.Charge(m, 1, 1, 1 << 16, 64, 4000);
  uint64_t remote = cm.Charge(m, 0, 1, 1 << 16, 64, 4000);
  // The remote access additionally queues on the congested link.
  EXPECT_GE(remote, local);
  EXPECT_GT(cm.controller(1).total_bytes(), 0u);
}

TEST(ContentionModel, InjectAddsBackgroundLoad) {
  topology::Machine m = topology::MachineA();
  ContentionModel cm(m);
  cm.Inject(2, 0, 1 << 20);  // a huge-page migration's worth of copying
  uint64_t d = cm.Charge(m, 2, 2, 1 << 16, 64, 4000);
  EXPECT_GT(d, 0u);
}

}  // namespace
}  // namespace mem
}  // namespace numalab
