// Boundary/degenerate coverage for src/common/stats.h — notably the
// Percentile out-of-range regression: rank used to index past the end of
// the sorted copy for p > 100 and wrap through a negative-to-size_t cast
// for p < 0.

#include "src/common/stats.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace numalab {
namespace {

TEST(StatsTest, MeanDegenerate) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Mean({7.0}), 7.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(StatsTest, StdDevDegenerate) {
  EXPECT_EQ(StdDev({}), 0.0);
  EXPECT_EQ(StdDev({5.0}), 0.0);  // fewer than two samples
  EXPECT_DOUBLE_EQ(StdDev({2.0, 2.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0, 3.0}), 1.0);
}

TEST(PercentileTest, EmptyIsZero) {
  EXPECT_EQ(Percentile({}, 50.0), 0.0);
  EXPECT_EQ(Percentile({}, 200.0), 0.0);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_EQ(Percentile({42.0}, 0.0), 42.0);
  EXPECT_EQ(Percentile({42.0}, 50.0), 42.0);
  EXPECT_EQ(Percentile({42.0}, 100.0), 42.0);
}

TEST(PercentileTest, BoundsAndInterpolation) {
  std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};  // unsorted on purpose
  EXPECT_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_EQ(Percentile(xs, 100.0), 4.0);
  // rank = 1.5 between the sorted values 2 and 3.
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25.0), 1.75);
}

// Regression: p > 100 used to compute rank > size-1 and read past the end
// of the sorted copy; the result was garbage (and an ASan fault). Clamped,
// it must be exactly the maximum.
TEST(PercentileTest, OutOfRangeHighClampsToMax) {
  std::vector<double> xs = {10.0, 30.0, 20.0};
  EXPECT_EQ(Percentile(xs, 100.0 + 1e-9), 30.0);
  EXPECT_EQ(Percentile(xs, 150.0), 30.0);
  EXPECT_EQ(Percentile(xs, 100000.0), 30.0);
}

// Regression: negative p produced a negative rank whose size_t cast
// wrapped to a huge index.
TEST(PercentileTest, OutOfRangeLowClampsToMin) {
  std::vector<double> xs = {10.0, 30.0, 20.0};
  EXPECT_EQ(Percentile(xs, -0.001), 10.0);
  EXPECT_EQ(Percentile(xs, -1000.0), 10.0);
}

TEST(PercentileTest, NanPTreatedAsZero) {
  std::vector<double> xs = {10.0, 30.0, 20.0};
  EXPECT_EQ(Percentile(xs, std::numeric_limits<double>::quiet_NaN()), 10.0);
}

TEST(HistogramTest, BucketGeometry) {
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  EXPECT_EQ(Histogram::BucketOf(1023), 10);
  EXPECT_EQ(Histogram::BucketOf(1024), 11);
  EXPECT_EQ(Histogram::BucketOf(~uint64_t{0}), 64);
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketOf(Histogram::BucketLo(b)), b);
    EXPECT_EQ(Histogram::BucketOf(Histogram::BucketHi(b)), b);
  }
}

// Regression: BucketWidth(64) used to return 2^63 - 1 via a `b == 64`
// special case, but bucket 64 spans [2^63, 2^64-1] — exactly 2^63 distinct
// values, which fits in a uint64_t. Every bucket's width must equal its
// inclusive span, and widths (bucket 0 plus the 64 power buckets) must
// tile the whole uint64_t range.
TEST(HistogramTest, BucketWidthCountsBucket64Exactly) {
  EXPECT_EQ(Histogram::BucketWidth(64), uint64_t{1} << 63);
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketWidth(b),
              Histogram::BucketHi(b) - Histogram::BucketLo(b) + 1)
        << "b=" << b;
  }
  // Bucket 0 holds {0}; bucket b>0 holds [2^(b-1), 2^b - 1]. Summed, the
  // widths cover all 2^64 values (the sum wraps to exactly 0 mod 2^64).
  uint64_t sum = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    sum += Histogram::BucketWidth(b);
  }
  EXPECT_EQ(sum, 0u);
}

TEST(HistogramTest, EmptyAndDegenerate) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.Percentile(50.0), 0u);
  EXPECT_EQ(h.MaxBucketHi(), 0u);
  h.Add(0);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.Percentile(99.0), 0u);
  h.Add(7);
  EXPECT_EQ(h.Percentile(100.0), 7u);  // bucket [4,7] upper bound
}

// The satellite regression: Percentile on the histogram must match the
// exact-sort Percentile within one bucket width. Ranks are integers here
// (n-1 = 1000 divides every tested p), so the exact path does not
// interpolate and the bound is rigorous: both pick the same order
// statistic, and the histogram reports its bucket's upper bound.
TEST(HistogramTest, PercentileMatchesExactSortWithinOneBucketWidth) {
  std::vector<double> exact;
  Histogram h;
  uint64_t x = 12345;
  for (int i = 0; i < 1001; ++i) {
    // Deterministic skewed latencies spanning several octaves.
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    uint64_t v = 100 + (x >> 52) * ((x >> 32) % 17);
    exact.push_back(static_cast<double>(v));
    h.Add(v);
  }
  for (double p : {0.0, 10.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    double e = Percentile(exact, p);
    uint64_t got = h.Percentile(p);
    int b = Histogram::BucketOf(static_cast<uint64_t>(e));
    double width = static_cast<double>(Histogram::BucketWidth(b));
    EXPECT_LE(std::abs(static_cast<double>(got) - e), width)
        << "p=" << p << " exact=" << e << " hist=" << got;
    // The histogram answer never undershoots the exact order statistic
    // (it reports the containing bucket's upper bound); the epsilon covers
    // the exact path's floating-point rank computation.
    EXPECT_GE(static_cast<double>(got) + 1e-6, e) << "p=" << p;
  }
}

TEST(HistogramTest, MergeMatchesInterleavedAdds) {
  Histogram a, b, all;
  for (uint64_t v = 1; v < 4000; v += 7) {
    (v % 2 == 0 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.total(), all.total());
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(a.count(i), all.count(i));
  }
  for (double p : {1.0, 50.0, 99.0}) {
    EXPECT_EQ(a.Percentile(p), all.Percentile(p));
  }
}

TEST(MedianInPlaceTest, Degenerate) {
  std::vector<int64_t> empty;
  EXPECT_EQ(MedianInPlace(&empty), 0);
  std::vector<int64_t> one = {9};
  EXPECT_EQ(MedianInPlace(&one), 9);
  std::vector<int64_t> odd = {5, 1, 3};
  EXPECT_EQ(MedianInPlace(&odd), 3);
  std::vector<int64_t> even = {4, 1, 3, 2};  // lower-middle for even sizes
  EXPECT_EQ(MedianInPlace(&even), 2);
}

}  // namespace
}  // namespace numalab
