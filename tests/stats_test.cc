// Boundary/degenerate coverage for src/common/stats.h — notably the
// Percentile out-of-range regression: rank used to index past the end of
// the sorted copy for p > 100 and wrap through a negative-to-size_t cast
// for p < 0.

#include "src/common/stats.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace numalab {
namespace {

TEST(StatsTest, MeanDegenerate) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Mean({7.0}), 7.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(StatsTest, StdDevDegenerate) {
  EXPECT_EQ(StdDev({}), 0.0);
  EXPECT_EQ(StdDev({5.0}), 0.0);  // fewer than two samples
  EXPECT_DOUBLE_EQ(StdDev({2.0, 2.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0, 3.0}), 1.0);
}

TEST(PercentileTest, EmptyIsZero) {
  EXPECT_EQ(Percentile({}, 50.0), 0.0);
  EXPECT_EQ(Percentile({}, 200.0), 0.0);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_EQ(Percentile({42.0}, 0.0), 42.0);
  EXPECT_EQ(Percentile({42.0}, 50.0), 42.0);
  EXPECT_EQ(Percentile({42.0}, 100.0), 42.0);
}

TEST(PercentileTest, BoundsAndInterpolation) {
  std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};  // unsorted on purpose
  EXPECT_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_EQ(Percentile(xs, 100.0), 4.0);
  // rank = 1.5 between the sorted values 2 and 3.
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25.0), 1.75);
}

// Regression: p > 100 used to compute rank > size-1 and read past the end
// of the sorted copy; the result was garbage (and an ASan fault). Clamped,
// it must be exactly the maximum.
TEST(PercentileTest, OutOfRangeHighClampsToMax) {
  std::vector<double> xs = {10.0, 30.0, 20.0};
  EXPECT_EQ(Percentile(xs, 100.0 + 1e-9), 30.0);
  EXPECT_EQ(Percentile(xs, 150.0), 30.0);
  EXPECT_EQ(Percentile(xs, 100000.0), 30.0);
}

// Regression: negative p produced a negative rank whose size_t cast
// wrapped to a huge index.
TEST(PercentileTest, OutOfRangeLowClampsToMin) {
  std::vector<double> xs = {10.0, 30.0, 20.0};
  EXPECT_EQ(Percentile(xs, -0.001), 10.0);
  EXPECT_EQ(Percentile(xs, -1000.0), 10.0);
}

TEST(PercentileTest, NanPTreatedAsZero) {
  std::vector<double> xs = {10.0, 30.0, 20.0};
  EXPECT_EQ(Percentile(xs, std::numeric_limits<double>::quiet_NaN()), 10.0);
}

TEST(MedianInPlaceTest, Degenerate) {
  std::vector<int64_t> empty;
  EXPECT_EQ(MedianInPlace(&empty), 0);
  std::vector<int64_t> one = {9};
  EXPECT_EQ(MedianInPlace(&one), 9);
  std::vector<int64_t> odd = {5, 1, 3};
  EXPECT_EQ(MedianInPlace(&odd), 3);
  std::vector<int64_t> even = {4, 1, 3, 2};  // lower-middle for even sizes
  EXPECT_EQ(MedianInPlace(&even), 2);
}

}  // namespace
}  // namespace numalab
