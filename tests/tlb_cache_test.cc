// Unit tests for the TLB and cache tag-array models.

#include <gtest/gtest.h>

#include "src/mem/caches.h"
#include "src/mem/tlb.h"

namespace numalab {
namespace mem {
namespace {

TEST(Tlb, HitAfterInsert) {
  Tlb tlb(topology::MachineA());
  EXPECT_FALSE(tlb.Lookup(0x1000));
  tlb.Insert(0x1000, /*huge=*/false);
  EXPECT_TRUE(tlb.Lookup(0x1000));
  EXPECT_TRUE(tlb.Lookup(0x1fff));   // same 4K page
  EXPECT_FALSE(tlb.Lookup(0x2000));  // next page
}

TEST(Tlb, HugeEntryCoversTwoMegabytes) {
  Tlb tlb(topology::MachineA());
  tlb.Insert(5 * kHugePageBytes + 12345, /*huge=*/true);
  EXPECT_TRUE(tlb.Lookup(5 * kHugePageBytes));
  EXPECT_TRUE(tlb.Lookup(6 * kHugePageBytes - 1));
  EXPECT_FALSE(tlb.Lookup(6 * kHugePageBytes));
}

TEST(Tlb, CapacityEvictsUnderPressure) {
  // Machine A: 32+512 4K entries. A working set of 10x that cannot all hit.
  Tlb tlb(topology::MachineA());
  const uint64_t pages = 5440;
  for (uint64_t p = 0; p < pages; ++p) {
    tlb.Insert(p * kSmallPageBytes, false);
  }
  uint64_t hits = 0;
  for (uint64_t p = 0; p < pages; ++p) {
    if (tlb.Lookup(p * kSmallPageBytes)) ++hits;
  }
  EXPECT_LT(hits, pages / 2);
}

TEST(Tlb, InvalidateAndFlush) {
  Tlb tlb(topology::MachineB());
  tlb.Insert(0x4000, false);
  tlb.Invalidate(0x4000);
  EXPECT_FALSE(tlb.Lookup(0x4000));
  tlb.Insert(0x4000, false);
  tlb.Insert(0x8000, false);
  tlb.Flush();
  EXPECT_FALSE(tlb.Lookup(0x4000));
  EXPECT_FALSE(tlb.Lookup(0x8000));
}

TEST(LineCache, ProbeInsert) {
  LineCache c(1 << 16);
  EXPECT_FALSE(c.Probe(42));
  c.Insert(42);
  EXPECT_TRUE(c.Probe(42));
  c.Flush();
  EXPECT_FALSE(c.Probe(42));
}

TEST(LineCache, WorkingSetBeyondCapacityMisses) {
  LineCache small(64 * 64);  // 64 lines
  for (uint64_t l = 0; l < 640; ++l) small.Insert(l);
  uint64_t hits = 0;
  for (uint64_t l = 0; l < 640; ++l) {
    if (small.Probe(l)) ++hits;
  }
  EXPECT_LT(hits, 160u);  // most of the set was evicted
}

TEST(CacheModel, PerCoreAndPerNodeInstances) {
  topology::Machine m = topology::MachineB();
  CacheModel cm(m);
  cm.Private(0).Insert(7);
  EXPECT_TRUE(cm.Private(0).Probe(7));
  EXPECT_FALSE(cm.Private(1).Probe(7));  // private caches are private
  cm.Llc(2).Insert(9);
  EXPECT_TRUE(cm.Llc(2).Probe(9));
  EXPECT_FALSE(cm.Llc(3).Probe(9));
}

}  // namespace
}  // namespace mem
}  // namespace numalab
