// Unit tests for the discrete-event engine: scheduling order, checkpoint
// quantum, events, mutexes, barriers and the VirtualLock model.

#include <gtest/gtest.h>

#include "src/sim/engine.h"
#include "src/sim/sync.h"

namespace numalab {
namespace sim {
namespace {

Task ChargeNTimes(VThread* vt, Engine* engine, uint64_t per_step, int steps,
                  std::vector<int>* order, int tag) {
  for (int i = 0; i < steps; ++i) {
    vt->Charge(per_step);
    if (order != nullptr) order->push_back(tag);
    co_await engine->Checkpoint();
  }
}

TEST(Engine, MakespanIsMaxClock) {
  Engine e;
  e.Spawn("a", 0, [&](VThread* vt) {
    return ChargeNTimes(vt, &e, 1000, 5, nullptr, 0);
  });
  e.Spawn("b", 1, [&](VThread* vt) {
    return ChargeNTimes(vt, &e, 3000, 5, nullptr, 1);
  });
  EXPECT_EQ(e.Run(), 15000u);
}

TEST(Engine, LowestClockRunsFirst) {
  Engine e(/*quantum=*/1);  // suspend at every checkpoint
  std::vector<int> order;
  e.Spawn("slow", 0, [&](VThread* vt) {
    return ChargeNTimes(vt, &e, 100, 3, &order, 0);
  });
  e.Spawn("fast", 1, [&](VThread* vt) {
    return ChargeNTimes(vt, &e, 10, 30, &order, 1);
  });
  e.Run();
  // The fast thread should interleave ~10 steps per slow step; check the
  // first slow step is not immediately followed by another slow step.
  ASSERT_GE(order.size(), 33u);
  int slow_positions = 0;
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    if (order[i] == 0 && order[i + 1] == 0) ++slow_positions;
  }
  EXPECT_LE(slow_positions, 1);  // never back-to-back except possibly at end
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine e(/*quantum=*/50);  // fine quantum so threads yield around events
  std::vector<int> fired;
  e.ScheduleEvent(500, [&] { fired.push_back(2); });
  e.ScheduleEvent(100, [&] { fired.push_back(1); });
  e.Spawn("w", 0, [&](VThread* vt) {
    return ChargeNTimes(vt, &e, 200, 5, nullptr, 0);
  });
  e.Run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 1);
  EXPECT_EQ(fired[1], 2);
}

TEST(Engine, SameTimestampEventsDrainInSeqOrder) {
  // The batched event drain (engine.cc) pops every event due before the
  // next thread resume in one inner loop, including events scheduled *by*
  // a draining event at the same timestamp: (when, seq) order must be
  // exactly what the serial one-event-per-outer-iteration loop produced.
  Engine e(/*quantum=*/100);
  std::vector<int> order;
  e.ScheduleEvent(100, [&] {
    order.push_back(1);
    e.ScheduleEvent(100, [&] { order.push_back(3); });
  });
  e.ScheduleEvent(100, [&] { order.push_back(2); });
  e.Spawn("w", 0, [&](VThread* vt) {
    return ChargeNTimes(vt, &e, 300, 3, &order, 7);
  });
  e.Run();
  // Thread runs its first step (clock 0 -> 300), then all three events at
  // t=100 drain in seq order, then the remaining thread steps.
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order[0], 7);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
  EXPECT_EQ(order[3], 3);
  EXPECT_EQ(order[4], 7);
  EXPECT_EQ(order[5], 7);
}

struct BlockAwaiter {
  Engine* e;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) noexcept { e->BlockCurrent(); }
  void await_resume() const noexcept {}
};

Task BlockThenRecord(VThread* vt, Engine* e, std::vector<int>* order,
                     int tag) {
  (void)vt;
  co_await BlockAwaiter{e};
  order->push_back(tag);
}

TEST(Engine, EventWakingLaggingThreadPreemptsLaterEvents) {
  // An event callback may wake a thread whose clock lands *behind* the next
  // queued event; the drain loop must hand control back to that thread
  // before firing the later event, exactly like the old outer loop did.
  Engine e(/*quantum=*/50);
  std::vector<int> order;
  VThread* blocked = e.Spawn("blocked", 0, [&](VThread* vt) {
    return BlockThenRecord(vt, &e, &order, 9);
  });
  e.Spawn("runner", 1, [&](VThread* vt) {
    return ChargeNTimes(vt, &e, 60, 3, &order, 7);
  });
  e.ScheduleEvent(100, [&] {
    order.push_back(1);
    e.Wake(blocked, 50);  // woken clock 50: behind the next event at 100
  });
  e.ScheduleEvent(100, [&] { order.push_back(2); });
  e.Run();
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order[0], 7);  // runner 0 -> 60
  EXPECT_EQ(order[1], 7);  // runner 60 -> 120
  EXPECT_EQ(order[2], 1);  // first event at t=100 wakes `blocked` at 50
  EXPECT_EQ(order[3], 9);  // woken thread (clock 50) preempts event 2
  EXPECT_EQ(order[4], 2);  // now the second t=100 event
  EXPECT_EQ(order[5], 7);  // runner 120 -> 180
}

TEST(EventCallback, MoveTransfersCallableOnce) {
  int calls = 0;
  EventCallback a([&calls] { ++calls; });
  EXPECT_TRUE(static_cast<bool>(a));
  EventCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  b();
  EXPECT_EQ(calls, 1);
  EventCallback c;
  EXPECT_FALSE(static_cast<bool>(c));
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(Engine, EventsDoNotFireAfterAllThreadsDone) {
  Engine e;
  int fired = 0;
  e.ScheduleEvent(1'000'000, [&] { ++fired; });
  e.Spawn("w", 0, [&](VThread* vt) {
    return ChargeNTimes(vt, &e, 10, 1, nullptr, 0);
  });
  e.Run();
  EXPECT_EQ(fired, 0);
}

Task LockUnlock(VThread* vt, SimMutex* m, uint64_t hold,
                std::vector<int>* order, int tag) {
  co_await m->Lock();
  order->push_back(tag);
  vt->Charge(hold);
  m->Unlock();
}

TEST(SimMutexTest, FifoAndExclusive) {
  Engine e(/*quantum=*/1);
  SimMutex m(&e);
  std::vector<int> order;
  for (int t = 0; t < 4; ++t) {
    e.Spawn("t", t, [&, t](VThread* vt) {
      return LockUnlock(vt, &m, 1000, &order, t);
    });
  }
  uint64_t makespan = e.Run();
  EXPECT_EQ(order.size(), 4u);
  // Fully serialized: 4 x 1000 cycles of critical section plus handoffs.
  EXPECT_GE(makespan, 4000u);
  EXPECT_FALSE(m.held());
}

Task ArriveOnce(VThread* vt, SimBarrier* b, uint64_t work) {
  vt->Charge(work);
  co_await b->Arrive();
  vt->Charge(1);
}

TEST(SimBarrierTest, ReleasesAtMaxClock) {
  Engine e;
  SimBarrier b(&e, 3);
  std::vector<VThread*> vts;
  for (int t = 0; t < 3; ++t) {
    vts.push_back(e.Spawn("t", t, [&, t](VThread* vt) {
      return ArriveOnce(vt, &b, static_cast<uint64_t>(1000 * (t + 1)));
    }));
  }
  uint64_t makespan = e.Run();
  // Everyone leaves at >= the slowest arrival (3000) + handoff.
  for (VThread* vt : vts) EXPECT_GE(vt->clock, 3000u);
  EXPECT_GE(makespan, 3001u);
}

TEST(VirtualLockTest, UncontendedIsCheap) {
  VirtualLock lock;
  EXPECT_EQ(lock.Acquire(1000, 50), kLockAcquireCycles);
  // Re-acquire long after release: still uncontended.
  EXPECT_EQ(lock.Acquire(5000, 50), kLockAcquireCycles);
  EXPECT_EQ(lock.contended_acquires, 0u);
}

TEST(VirtualLockTest, QueueingDelayAndCap) {
  VirtualLock lock;
  lock.Acquire(0, 100);
  // Second acquire at t=0 waits for the first's hold.
  uint64_t w = lock.Acquire(0, 100);
  EXPECT_GE(w, 100u);
  EXPECT_EQ(lock.contended_acquires, 1u);
  // A wildly stale acquire is capped at ~50 holds, not the full gap.
  VirtualLock lock2;
  lock2.free_at = 10'000'000;
  uint64_t capped = lock2.Acquire(0, 100);
  EXPECT_LE(capped, 50 * 100 + kLockHandoffCycles);
}

TEST(Engine, DeterministicInterleaving) {
  auto run = [] {
    Engine e(100);
    std::vector<int> order;
    for (int t = 0; t < 3; ++t) {
      e.Spawn("t", t, [&, t](VThread* vt) {
        return ChargeNTimes(vt, &e, static_cast<uint64_t>(37 + t * 13), 50,
                            &order, t);
      });
    }
    e.Run();
    return order;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace sim
}  // namespace numalab
