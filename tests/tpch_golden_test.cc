// Golden-reference tests for TPC-H queries: each reference evaluates the
// query naively on the host-side dataset and must match the engine's
// digest exactly (modulo float summation order).

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "src/minidb/runner.h"
#include "src/minidb/tpch_gen.h"

namespace numalab {
namespace minidb {
namespace {

constexpr double kScale = 0.01;

TpchResult RunGolden(int q) {
  TpchOptions o;
  o.query = q;
  o.profile = "hybrid-vec";
  o.scale = kScale;
  o.tuned = true;
  return RunTpch(o);
}

void ExpectNear(double got, double want) {
  EXPECT_NEAR(got, want, 1e-6 * std::max(1.0, std::abs(want)));
}

TEST(TpchGolden, Q4OrderPriorityCounts) {
  const HostDb& h = GenerateTpch(kScale);
  std::set<int64_t> late_orders;
  for (size_t i = 0; i < h.l_orderkey.size(); ++i) {
    if (h.l_commitdate[i] < h.l_receiptdate[i]) {
      late_orders.insert(h.l_orderkey[i]);
    }
  }
  std::map<int64_t, uint64_t> by_prio;
  const int64_t lo = Date(1993, 7, 1), hi = Date(1993, 10, 1);
  for (size_t i = 0; i < h.o_orderkey.size(); ++i) {
    if (h.o_orderdate[i] >= lo && h.o_orderdate[i] < hi &&
        late_orders.count(h.o_orderkey[i])) {
      by_prio[h.o_orderpriority[i]]++;
    }
  }
  double want = 0;
  for (auto& [p, c] : by_prio) want += static_cast<double>((p + 1) * c);
  TpchResult r = RunGolden(4);
  EXPECT_EQ(r.out.rows, by_prio.size());
  ExpectNear(r.out.digest, want);
}

TEST(TpchGolden, Q12ShipmodePriorityCounts) {
  const HostDb& h = GenerateTpch(kScale);
  const int64_t y94 = Date(1994, 1, 1), y95 = Date(1995, 1, 1);
  std::map<int64_t, std::pair<uint64_t, uint64_t>> modes;
  for (size_t i = 0; i < h.l_orderkey.size(); ++i) {
    int64_t mode = h.l_shipmode[i];
    if ((mode != 2 && mode != 5) ||
        h.l_commitdate[i] >= h.l_receiptdate[i] ||
        h.l_shipdate[i] >= h.l_commitdate[i] ||
        h.l_receiptdate[i] < y94 || h.l_receiptdate[i] >= y95) {
      continue;
    }
    int64_t prio = h.o_orderpriority[h.l_orderkey[i] - 1];
    if (prio <= 1) {
      modes[mode].first++;
    } else {
      modes[mode].second++;
    }
  }
  double want = 0;
  for (auto& [m, c] : modes) {
    want += static_cast<double>(m * 1000 + c.first * 7 + c.second);
  }
  TpchResult r = RunGolden(12);
  EXPECT_EQ(r.out.rows, modes.size());
  ExpectNear(r.out.digest, want);
}

TEST(TpchGolden, Q13CustomerDistribution) {
  const HostDb& h = GenerateTpch(kScale);
  std::map<int64_t, uint64_t> per_cust;
  for (size_t i = 0; i < h.o_orderkey.size(); ++i) {
    if (h.o_comment_special[i] == 0) per_cust[h.o_custkey[i]]++;
  }
  std::map<uint64_t, uint64_t> dist;
  for (auto& [c, n] : per_cust) dist[n]++;
  dist[0] += h.c_custkey.size() - per_cust.size();
  double want = 0;
  for (auto& [k, c] : dist) want += static_cast<double>(k * c);
  TpchResult r = RunGolden(13);
  EXPECT_EQ(r.out.rows, dist.size());
  ExpectNear(r.out.digest, want);
}

TEST(TpchGolden, Q14PromoShare) {
  const HostDb& h = GenerateTpch(kScale);
  const int64_t lo = Date(1995, 9, 1), hi = Date(1995, 10, 1);
  double promo = 0, total = 0;
  for (size_t i = 0; i < h.l_orderkey.size(); ++i) {
    if (h.l_shipdate[i] < lo || h.l_shipdate[i] >= hi) continue;
    double vol = h.l_extendedprice[i] * (1 - h.l_discount[i]);
    total += vol;
    if (h.p_type[h.l_partkey[i] - 1] / 25 == 5) promo += vol;
  }
  TpchResult r = RunGolden(14);
  ExpectNear(r.out.digest, total > 0 ? 100.0 * promo / total : 0.0);
}

TEST(TpchGolden, Q15TopSupplier) {
  const HostDb& h = GenerateTpch(kScale);
  const int64_t lo = Date(1996, 1, 1), hi = Date(1996, 4, 1);
  std::map<int64_t, double> rev;
  for (size_t i = 0; i < h.l_orderkey.size(); ++i) {
    if (h.l_shipdate[i] >= lo && h.l_shipdate[i] < hi) {
      rev[h.l_suppkey[i]] +=
          h.l_extendedprice[i] * (1 - h.l_discount[i]);
    }
  }
  double best = -1;
  int64_t best_supp = 0;
  for (auto& [s, v] : rev) {
    if (v > best) {
      best = v;
      best_supp = s;
    }
  }
  TpchResult r = RunGolden(15);
  EXPECT_EQ(r.out.rows, 1u);
  // Digest = revenue + suppkey; float summation order differs, so compare
  // with a relative tolerance.
  EXPECT_NEAR(r.out.digest, best + static_cast<double>(best_supp),
              1e-6 * (best + 1));
}

TEST(TpchGolden, Q17SmallQuantityRevenue) {
  const HostDb& h = GenerateTpch(kScale);
  std::map<int64_t, std::pair<double, uint64_t>> stats;  // qty sum, count
  for (size_t i = 0; i < h.l_orderkey.size(); ++i) {
    uint64_t p = static_cast<uint64_t>(h.l_partkey[i] - 1);
    if (h.p_brand[p] == 12 && h.p_container[p] == 17) {
      auto& s = stats[h.l_partkey[i]];
      s.first += static_cast<double>(h.l_quantity[i]);
      s.second += 1;
    }
  }
  double sum = 0;
  for (size_t i = 0; i < h.l_orderkey.size(); ++i) {
    auto it = stats.find(h.l_partkey[i]);
    if (it == stats.end() || it->second.second == 0) continue;
    double avg = it->second.first / static_cast<double>(it->second.second);
    if (static_cast<double>(h.l_quantity[i]) < 0.2 * avg) {
      sum += h.l_extendedprice[i];
    }
  }
  TpchResult r = RunGolden(17);
  ExpectNear(r.out.digest, sum / 7.0);
}

TEST(TpchGolden, Q19DisjunctiveRevenue) {
  const HostDb& h = GenerateTpch(kScale);
  double sum = 0;
  for (size_t i = 0; i < h.l_orderkey.size(); ++i) {
    if (h.l_shipinstruct[i] != 1 ||
        (h.l_shipmode[i] != 0 && h.l_shipmode[i] != 4)) {
      continue;
    }
    uint64_t p = static_cast<uint64_t>(h.l_partkey[i] - 1);
    int64_t qty = h.l_quantity[i];
    int64_t brand = h.p_brand[p], cont = h.p_container[p],
            size = h.p_size[p];
    bool m1 = brand == 12 && cont < 8 && qty >= 1 && qty <= 11 && size <= 5;
    bool m2 = brand == 11 && cont >= 8 && cont < 16 && qty >= 10 &&
              qty <= 20 && size <= 10;
    bool m3 = brand == 17 && cont >= 16 && cont < 24 && qty >= 20 &&
              qty <= 30 && size <= 15;
    if (m1 || m2 || m3) {
      sum += h.l_extendedprice[i] * (1 - h.l_discount[i]);
    }
  }
  TpchResult r = RunGolden(19);
  ExpectNear(r.out.digest, sum);
}

TEST(TpchGolden, Q22GlobalSales) {
  const HostDb& h = GenerateTpch(kScale);
  auto in_set = [](int64_t code) {
    return code == 13 || code == 17 || code == 18 || code == 23 ||
           code == 29 || code == 30 || code == 31;
  };
  double sum = 0, cnt = 0;
  for (size_t i = 0; i < h.c_custkey.size(); ++i) {
    if (in_set(h.c_cntrycode[i]) && h.c_acctbal[i] > 0) {
      sum += h.c_acctbal[i];
      cnt += 1;
    }
  }
  double avg = cnt > 0 ? sum / cnt : 0;
  std::set<int64_t> has_orders(h.o_custkey.begin(), h.o_custkey.end());
  std::map<int64_t, std::pair<uint64_t, double>> by_code;
  for (size_t i = 0; i < h.c_custkey.size(); ++i) {
    if (in_set(h.c_cntrycode[i]) && h.c_acctbal[i] > avg &&
        has_orders.count(h.c_custkey[i]) == 0) {
      by_code[h.c_cntrycode[i]].first++;
      by_code[h.c_cntrycode[i]].second += h.c_acctbal[i];
    }
  }
  double want = 0;
  for (auto& [code, v] : by_code) {
    want += static_cast<double>(code * v.first) + v.second;
  }
  TpchResult r = RunGolden(22);
  EXPECT_EQ(r.out.rows, by_code.size());
  ExpectNear(r.out.digest, want);
}

}  // namespace
}  // namespace minidb
}  // namespace numalab
