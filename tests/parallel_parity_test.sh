#!/bin/bash
# Harness-level contract tests for run_benches.sh parallel mode:
#
#   1. Parity: a 3-bench subset run serially (JOBS=1) and with --jobs=4
#      must produce byte-identical stdout AND a byte-identical merged
#      BENCH_results.json — the bit-determinism contract the parallel
#      harness must preserve at any job count.
#   2. Failure propagation: an injected bench failure (exit 7) must reach
#      run_benches.sh's own exit status through the parallel path, with
#      the roster's other cells still emitted.
#   3. Exit-code 124 disambiguation: a bench that *itself* exits 124 while
#      the watchdog is armed is a plain failure ("exited with status 124"),
#      not a timeout — the old harness misclassified this.
#   4. Real watchdog timeout: a hung bench is killed and reported as
#      "timed out", with exit status 124.
#   5. Partial-merge rejection: a failed cell is recorded in the merged
#      JSON's "failures" and scripts/validate_bench_json.py refuses the
#      document (no schema-valid partial merges).
#
# Usage: parallel_parity_test.sh BUILD_DIR
# Registered as the `parallel_parity` ctest; needs the bench binaries from
# BUILD_DIR (any configured build tree).
set -u

build_dir=${1:?usage: parallel_parity_test.sh BUILD_DIR}
repo_root=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo_root" || exit 1

tmp=$(mktemp -d "${TMPDIR:-/tmp}/parallel_parity.XXXXXX") || exit 1
trap 'rm -rf "$tmp"' EXIT

fails=0
fail() {
  echo "parallel_parity_test: FAIL: $*" >&2
  fails=$((fails + 1))
}
pass() {
  echo "parallel_parity_test: ok: $*"
}

subset="bench_machines bench_fig9_tpch_alloc bench_fig10_advisor"

# --- 1. serial vs --jobs=4 byte parity (stdout and merged JSON) ----------
env BUILD_DIR="$build_dir" BENCHES="$subset" JOBS=1 \
    JSON_OUT_DIR="$tmp/serial" \
    ./run_benches.sh > "$tmp/serial.stdout" 2> "$tmp/serial.stderr"
rc_serial=$?
env BUILD_DIR="$build_dir" BENCHES="$subset" \
    JSON_OUT_DIR="$tmp/parallel" \
    ./run_benches.sh --jobs=4 > "$tmp/parallel.stdout" 2> "$tmp/parallel.stderr"
rc_parallel=$?
if [[ $rc_serial -ne 0 ]]; then
  fail "serial subset run exited $rc_serial (stderr: $(cat "$tmp/serial.stderr"))"
fi
if [[ $rc_parallel -ne 0 ]]; then
  fail "--jobs=4 subset run exited $rc_parallel (stderr: $(cat "$tmp/parallel.stderr"))"
fi
if cmp -s "$tmp/serial.stdout" "$tmp/parallel.stdout"; then
  pass "stdout byte-identical between JOBS=1 and --jobs=4"
else
  fail "stdout differs between JOBS=1 and --jobs=4"
  diff "$tmp/serial.stdout" "$tmp/parallel.stdout" | head -20 >&2
fi
if cmp -s "$tmp/serial/BENCH_results.json" "$tmp/parallel/BENCH_results.json"; then
  pass "merged BENCH_results.json byte-identical between JOBS=1 and --jobs=4"
else
  fail "merged BENCH_results.json differs between JOBS=1 and --jobs=4"
fi

# --- fake-bench tree for failure-path tests ------------------------------
fake=$tmp/faketree
mkdir -p "$fake/bench"
cat > "$fake/bench/bench_ok" <<'EOF'
#!/bin/sh
echo "fake ok bench"
exit 0
EOF
cat > "$fake/bench/bench_fail7" <<'EOF'
#!/bin/sh
echo "fake failing bench"
exit 7
EOF
cat > "$fake/bench/bench_exit124" <<'EOF'
#!/bin/sh
echo "fake bench that exits 124 on its own"
exit 124
EOF
cat > "$fake/bench/bench_hang" <<'EOF'
#!/bin/sh
echo "fake hanging bench"
sleep 600
EOF
chmod +x "$fake"/bench/*

# --- 2. failure propagation through the parallel path --------------------
env BUILD_DIR="$fake" BENCHES="bench_ok bench_fail7 bench_ok" JOBS=4 \
    ./run_benches.sh > "$tmp/fail.stdout" 2> "$tmp/fail.stderr"
rc=$?
if [[ $rc -eq 7 ]]; then
  pass "injected exit-7 failure propagates through --jobs (exit $rc)"
else
  fail "expected exit 7 from parallel run with failing bench, got $rc"
fi
if grep -q "bench_fail7 exited with status 7" "$tmp/fail.stderr"; then
  pass "failure reported per-cell on stderr"
else
  fail "missing per-cell failure report (stderr: $(cat "$tmp/fail.stderr"))"
fi
if [[ $(grep -c "^== " "$tmp/fail.stdout") -eq 3 ]]; then
  pass "all roster cells emitted despite the failure"
else
  fail "expected 3 emitted cells, got $(grep -c "^== " "$tmp/fail.stdout")"
fi

# --- 3. a bench's own exit 124 is NOT a timeout --------------------------
env BUILD_DIR="$fake" BENCHES="bench_exit124" JOBS=1 BENCH_TIMEOUT_SECS=600 \
    ./run_benches.sh > /dev/null 2> "$tmp/exit124.stderr"
rc=$?
if [[ $rc -eq 124 ]] && grep -q "bench_exit124 exited with status 124" \
    "$tmp/exit124.stderr" && ! grep -q "timed out" "$tmp/exit124.stderr"; then
  pass "bench exiting 124 reported as plain failure, not timeout"
else
  fail "exit-124 misclassified (rc=$rc, stderr: $(cat "$tmp/exit124.stderr"))"
fi

# --- 4. a real watchdog kill IS a timeout --------------------------------
if command -v timeout >/dev/null 2>&1; then
  env BUILD_DIR="$fake" BENCHES="bench_hang" JOBS=1 BENCH_TIMEOUT_SECS=1 \
      ./run_benches.sh > /dev/null 2> "$tmp/hang.stderr"
  rc=$?
  if [[ $rc -eq 124 ]] && grep -q "bench_hang timed out after 1s" \
      "$tmp/hang.stderr"; then
    pass "watchdog kill reported as timeout"
  else
    fail "watchdog timeout misreported (rc=$rc, stderr: $(cat "$tmp/hang.stderr"))"
  fi
else
  echo "parallel_parity_test: NOTICE: timeout(1) missing; skipping watchdog case"
fi

# --- 5. partial merges are recorded and rejected -------------------------
env BUILD_DIR="$fake" BENCHES="bench_ok bench_fail7" JOBS=2 \
    JSON_OUT_DIR="$tmp/partial" \
    ./run_benches.sh > /dev/null 2> "$tmp/partial.stderr"
merged=$tmp/partial/BENCH_results.json
if grep -q '"bench":"bench_fail7","kind":"exit","status":7' "$merged"; then
  pass "failed cell recorded in merged document"
else
  fail "merged document does not record the failed cell: $(cat "$merged")"
fi
# bench_ok exits 0 but (being a fake) never writes its per-bench JSON: the
# harness must flag that as a failure too, not silently merge around it.
if grep -q '"bench":"bench_ok","kind":"no-export"' "$merged"; then
  pass "missing per-bench export recorded as no-export failure"
else
  fail "missing per-bench export not recorded: $(cat "$merged")"
fi
if command -v python3 >/dev/null 2>&1; then
  if python3 scripts/validate_bench_json.py "$merged" > /dev/null 2>&1; then
    fail "validate_bench_json.py accepted a partial merge"
  else
    pass "validate_bench_json.py rejects the partial merge"
  fi
else
  echo "parallel_parity_test: NOTICE: python3 missing; skipping validator case"
fi

if [[ $fails -gt 0 ]]; then
  echo "parallel_parity_test: $fails check(s) failed" >&2
  exit 1
fi
echo "parallel_parity_test: all checks passed"
