// Deterministic handoff-ordering and cycle-charging tests for SimMutex and
// SimBarrier: the exact kLockAcquireCycles / kLockHandoffCycles charges and
// the FIFO wake order are contract, not implementation detail — the race
// detector hangs its happens-before edges off these exact points, and the
// golden benchmark numbers depend on the charges.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/engine.h"
#include "src/sim/sync.h"

namespace numalab {
namespace sim {
namespace {

struct AcqRecord {
  int tag;
  uint64_t clock_at_acquire;
};

Task UncontendedLocker(VThread* vt, SimMutex* m, uint64_t* clock_after) {
  co_await m->Lock();
  *clock_after = vt->clock;
  m->Unlock();
}

TEST(SimMutexCharging, UncontendedAcquireChargesExactly) {
  Engine e;
  SimMutex m(&e);
  uint64_t after = 0;
  e.Spawn("t", 0, [&](VThread* vt) {
    return UncontendedLocker(vt, &m, &after);
  });
  e.Run();
  EXPECT_EQ(after, kLockAcquireCycles);
}

Task HoldAcrossCheckpoint(VThread* vt, Engine* engine, SimMutex* m,
                          uint64_t hold, uint64_t* unlock_clock) {
  co_await m->Lock();
  co_await engine->Checkpoint();  // let the other thread block on the lock
  vt->Charge(hold);
  *unlock_clock = vt->clock;
  m->Unlock();
}

Task BlockOnLock(VThread* vt, SimMutex* m, uint64_t head_start,
                 AcqRecord* rec) {
  vt->Charge(head_start);
  co_await m->Lock();
  rec->clock_at_acquire = vt->clock;
  m->Unlock();
}

TEST(SimMutexCharging, HandoffWakesAtUnlockPlusHandoffExactly) {
  Engine e(/*quantum=*/1);  // suspend at every checkpoint
  SimMutex m(&e);
  uint64_t unlock_clock = 0;
  AcqRecord rec{1, 0};
  e.Spawn("owner", 0, [&](VThread* vt) {
    return HoldAcrossCheckpoint(vt, &e, &m, /*hold=*/1000, &unlock_clock);
  });
  e.Spawn("waiter", 1, [&](VThread* vt) {
    return BlockOnLock(vt, &m, /*head_start=*/5, &rec);
  });
  e.Run();
  // Owner: acquire (24) + hold (1000). Waiter resumes exactly one cache-line
  // handoff after the unlock, and its wait shows up in lock_wait_cycles.
  EXPECT_EQ(unlock_clock, kLockAcquireCycles + 1000);
  EXPECT_EQ(rec.clock_at_acquire, unlock_clock + kLockHandoffCycles);
  const VThread* waiter = e.threads()[1].get();
  EXPECT_EQ(waiter->counters.lock_wait_cycles,
            unlock_clock + kLockHandoffCycles - 5);
}

Task LockInOrder(VThread* vt, Engine* engine, SimMutex* m, int tag,
                 std::vector<AcqRecord>* order) {
  // One checkpoint first so every thread is spawned before anyone locks.
  co_await engine->Checkpoint();
  co_await m->Lock();
  order->push_back({tag, vt->clock});
  vt->Charge(500);
  // Suspend *inside* the critical section so later threads genuinely block
  // and take the FIFO handoff path (not the virtual-time-exclusion path).
  co_await engine->Checkpoint();
  m->Unlock();
}

TEST(SimMutexOrdering, FifoHandoffIsDeterministicAndSerialized) {
  auto run = [] {
    Engine e(/*quantum=*/1);
    SimMutex m(&e);
    std::vector<AcqRecord> order;
    for (int t = 0; t < 4; ++t) {
      e.Spawn("t", t, [&, t](VThread* vt) {
        return LockInOrder(vt, &e, &m, t, &order);
      });
    }
    e.Run();
    return order;
  };
  std::vector<AcqRecord> a = run();
  std::vector<AcqRecord> b = run();
  ASSERT_EQ(a.size(), 4u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tag, b[i].tag) << "non-deterministic handoff order";
    EXPECT_EQ(a[i].clock_at_acquire, b[i].clock_at_acquire);
  }
  // Each handoff charges the full cache-line transfer: successive acquire
  // clocks are exactly hold + handoff apart once the queue has formed.
  for (size_t i = 2; i < a.size(); ++i) {
    EXPECT_EQ(a[i].clock_at_acquire - a[i - 1].clock_at_acquire,
              500 + kLockHandoffCycles);
  }
}

Task LockLate(VThread* vt, SimMutex* m, uint64_t at, uint64_t* acquired_at) {
  vt->Charge(at);
  co_await m->Lock();
  *acquired_at = vt->clock;
  m->Unlock();
}

TEST(SimMutexCharging, VirtualTimeExclusionChargesResidualHold) {
  // The lock was released at virtual time T by a thread that ran earlier on
  // the host; a later-scheduled thread whose clock is still < T must pay
  // the residual wait even though nobody holds the lock "now".
  Engine e;  // coarse quantum: first thread runs to completion
  SimMutex m(&e);
  uint64_t first_done = 0, second_acquired = 0;
  e.Spawn("early", 0, [&](VThread* vt) {
    return UncontendedLocker(vt, &m, &first_done);
  });
  e.Spawn("late", 1, [&](VThread* vt) {
    return LockLate(vt, &m, /*at=*/5, &second_acquired);
  });
  e.Run();
  // "late" starts at clock 5 < first_done, so it waits (first_done - 5)
  // then pays its own acquire.
  EXPECT_EQ(second_acquired, first_done + kLockAcquireCycles);
}

Task ArriveAfter(VThread* vt, SimBarrier* b, uint64_t work,
                 uint64_t* clock_after) {
  vt->Charge(work);
  co_await b->Arrive();
  *clock_after = vt->clock;
}

TEST(SimBarrierCharging, ReleasesEveryoneAtMaxArrivalPlusHandoff) {
  Engine e;
  SimBarrier b(&e, 3);
  uint64_t after[3] = {0, 0, 0};
  for (int t = 0; t < 3; ++t) {
    e.Spawn("t", t, [&, t](VThread* vt) {
      return ArriveAfter(vt, &b, static_cast<uint64_t>(1000 * (t + 1)),
                         &after[t]);
    });
  }
  e.Run();
  // Slowest arrival is 3000; everyone leaves at exactly 3000 + handoff.
  for (uint64_t c : after) EXPECT_EQ(c, 3000 + kLockHandoffCycles);
  EXPECT_EQ(b.pending(), 0);
}

Task PhasedArrivals(VThread* vt, SimBarrier* b, std::vector<uint64_t>* out,
                    int tag) {
  for (int phase = 0; phase < 3; ++phase) {
    vt->Charge(static_cast<uint64_t>(100 * (tag + 1)));
    co_await b->Arrive();
    out->push_back(vt->clock);
  }
}

TEST(SimBarrierCharging, ReusableAndDeterministicAcrossPhases) {
  auto run = [] {
    Engine e(/*quantum=*/100);
    SimBarrier b(&e, 2);
    std::vector<uint64_t> clocks;
    for (int t = 0; t < 2; ++t) {
      e.Spawn("t", t, [&, t](VThread* vt) {
        return PhasedArrivals(vt, &b, &clocks, t);
      });
    }
    e.Run();
    return clocks;
  };
  std::vector<uint64_t> a = run();
  ASSERT_EQ(a.size(), 6u);
  EXPECT_EQ(a, run());
  // Both threads leave each phase at the same clock (lockstep phases).
  // Records arrive in wake order; each consecutive pair shares a clock.
  for (size_t i = 0; i + 1 < a.size(); i += 2) EXPECT_EQ(a[i], a[i + 1]);
}

}  // namespace
}  // namespace sim
}  // namespace numalab
