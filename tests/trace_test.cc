// numalab::trace coverage: span tree invariants on a real workload run,
// per-node rollup vs the run-total PerfReport, the zero-cost-off contract,
// collector gating, a byte-exact JSON emitter golden, and determinism
// (same seed => identical JSON bytes on both memory paths).

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/perf/counters.h"
#include "src/trace/export.h"
#include "src/workloads/run_config.h"
#include "src/workloads/workloads.h"

namespace numalab {
namespace trace {
namespace {

void ExpectSameCounters(const perf::ThreadCounters& a,
                        const perf::ThreadCounters& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.thread_migrations, b.thread_migrations);
  EXPECT_EQ(a.mem_accesses, b.mem_accesses);
  EXPECT_EQ(a.private_hits, b.private_hits);
  EXPECT_EQ(a.llc_hits, b.llc_hits);
  EXPECT_EQ(a.llc_misses, b.llc_misses);
  EXPECT_EQ(a.local_dram, b.local_dram);
  EXPECT_EQ(a.remote_dram, b.remote_dram);
  EXPECT_EQ(a.tlb_hits, b.tlb_hits);
  EXPECT_EQ(a.tlb_misses, b.tlb_misses);
  EXPECT_EQ(a.hinting_faults, b.hinting_faults);
  EXPECT_EQ(a.alloc_calls, b.alloc_calls);
  EXPECT_EQ(a.free_calls, b.free_calls);
  EXPECT_EQ(a.alloc_cycles, b.alloc_cycles);
  EXPECT_EQ(a.lock_wait_cycles, b.lock_wait_cycles);
  EXPECT_EQ(a.queue_delay_cycles, b.queue_delay_cycles);
}

// Small, quick W3 cell; trace recorder attached per-run (not the process
// collector), so these tests leave the global export state untouched.
workloads::RunConfig TracedConfig() {
  workloads::RunConfig c;
  c.threads = 4;
  c.build_rows = 10'000;
  c.probe_rows = 80'000;
  c.trace = true;
  return c;
}

TEST(TraceSpans, NestingAndOrderingInvariants) {
  workloads::RunResult r = workloads::RunW3HashJoin(TracedConfig());
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  const std::vector<SpanRecord>& spans = r.trace.spans;
  ASSERT_FALSE(spans.empty());
  ASSERT_EQ(r.trace.threads.size(), 4u);

  int roots = 0, builds = 0, probes = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    EXPECT_GE(s.end_cycle, s.start_cycle) << s.name;
    EXPECT_GE(s.node, 0) << s.name;
    EXPECT_GE(s.thread_id, 0) << s.name;
    // Records are appended at Begin, so a parent always precedes its
    // children; the root of each stack has depth 0.
    ASSERT_GE(s.parent, -1);
    ASSERT_LT(s.parent, static_cast<int64_t>(i));
    if (s.parent == -1) {
      EXPECT_EQ(s.depth, 0) << s.name;
    } else {
      const SpanRecord& p = spans[static_cast<size_t>(s.parent)];
      EXPECT_EQ(s.depth, p.depth + 1) << s.name;
      EXPECT_EQ(s.thread_id, p.thread_id) << s.name;
      // Child window nested in the parent's, and the child consumed no
      // more than the parent on every monotone counter.
      EXPECT_GE(s.start_cycle, p.start_cycle) << s.name;
      EXPECT_LE(s.end_cycle, p.end_cycle) << s.name;
      EXPECT_LE(s.delta.cycles, p.delta.cycles) << s.name;
      EXPECT_LE(s.delta.mem_accesses, p.delta.mem_accesses) << s.name;
    }
    if (s.name == "worker") ++roots;
    if (s.name == "build") ++builds;
    if (s.name == "probe") ++probes;
  }
  // One root span per worker thread, each with a build and a probe phase.
  EXPECT_EQ(roots, 4);
  EXPECT_EQ(builds, 4);
  EXPECT_EQ(probes, 4);
}

TEST(TraceSpans, PerNodeRollupSumsToRunTotal) {
  workloads::RunResult r = workloads::RunW3HashJoin(TracedConfig());
  ASSERT_TRUE(r.status.ok());
  // Root spans cover entire worker bodies, so summing their deltas —
  // however they distribute over nodes — must reproduce the aggregate
  // PerfReport exactly. This is the invariant scripts/validate_bench_json.py
  // asserts on every exported document.
  perf::ThreadCounters rollup;
  int roots = 0;
  for (const SpanRecord& s : r.trace.spans) {
    if (s.depth != 0) continue;
    rollup.Add(s.delta);
    ++roots;
  }
  ASSERT_GT(roots, 0);
  ExpectSameCounters(rollup, r.report.threads);

  // The per-thread summaries sum to the same total.
  perf::ThreadCounters by_thread;
  for (const ThreadSummary& t : r.trace.threads) by_thread.Add(t.counters);
  ExpectSameCounters(by_thread, r.report.threads);
}

TEST(TraceSpans, RecordingIsZeroCost) {
  workloads::RunConfig off = TracedConfig();
  off.trace = false;
  workloads::RunResult plain = workloads::RunW3HashJoin(off);
  workloads::RunResult traced = workloads::RunW3HashJoin(TracedConfig());
  // No recorder attached => no trace payload...
  EXPECT_TRUE(plain.trace.empty());
  EXPECT_FALSE(traced.trace.empty());
  // ...and attaching one is pure bookkeeping: the simulated run is
  // bit-identical with and without it.
  EXPECT_EQ(plain.cycles, traced.cycles);
  EXPECT_EQ(plain.checksum, traced.checksum);
  EXPECT_EQ(plain.resident_peak, traced.resident_peak);
  ExpectSameCounters(plain.report.threads, traced.report.threads);
}

TEST(TraceSpans, ScalarAndSpanMemPathsRecordIdenticalSpans) {
  workloads::RunConfig fast = TracedConfig();
  workloads::RunConfig ref = TracedConfig();
  ref.scalar_mem_path = true;
  workloads::RunResult a = workloads::RunW3HashJoin(fast);
  workloads::RunResult b = workloads::RunW3HashJoin(ref);
  ASSERT_EQ(a.trace.spans.size(), b.trace.spans.size());
  for (size_t i = 0; i < a.trace.spans.size(); ++i) {
    const SpanRecord& x = a.trace.spans[i];
    const SpanRecord& y = b.trace.spans[i];
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.thread_id, y.thread_id);
    EXPECT_EQ(x.node, y.node);
    EXPECT_EQ(x.parent, y.parent);
    EXPECT_EQ(x.start_cycle, y.start_cycle) << x.name;
    EXPECT_EQ(x.end_cycle, y.end_cycle) << x.name;
    ExpectSameCounters(x.delta, y.delta);
  }
}

TEST(TraceCollector, GatedByProcessSwitch) {
  ASSERT_FALSE(CollectEnabled());  // tests must not leak the switch
  workloads::RunConfig c = TracedConfig();
  workloads::RunResult r;  // contents irrelevant for gating
  CollectRun("Wgate", c, r);
  EXPECT_TRUE(CollectedRuns().empty());  // disabled => dropped
  SetCollectEnabled(true);
  CollectRun("Wgate", c, r);
  ASSERT_EQ(CollectedRuns().size(), 1u);
  EXPECT_EQ(CollectedRuns()[0].workload, "Wgate");
  SetCollectEnabled(false);
  ClearCollectedRuns();
  EXPECT_TRUE(CollectedRuns().empty());
}

// ---------------------------------------------------------------------------
// JSON emitters, on a hand-built run so every byte is pinned down.

CollectedRun GoldenRun() {
  CollectedRun run;
  run.workload = "Wx";
  run.config.threads = 2;
  run.config.seed = 7;

  workloads::RunResult& r = run.result;
  r.cycles = 100;
  r.aux_cycles = 5;
  r.checksum = 42;
  r.requested_peak = 1000;
  r.resident_peak = 2000;
  r.report.threads.cycles = 100;
  r.report.threads.mem_accesses = 4;
  r.report.threads.local_dram = 3;
  r.report.threads.remote_dram = 1;  // => lar 0.75

  ThreadSummary t;
  t.thread_id = 0;
  t.name = "w0";
  t.node = 0;
  t.counters = r.report.threads;
  r.trace.threads.push_back(t);

  SpanRecord root;
  root.name = "worker";
  root.thread_id = 0;
  root.node = 0;
  root.depth = 0;
  root.parent = -1;
  root.start_cycle = 0;
  root.end_cycle = 100;
  root.delta = r.report.threads;
  r.trace.spans.push_back(root);

  SpanRecord child;
  child.name = "build";
  child.thread_id = 0;
  child.node = 0;
  child.depth = 1;
  child.parent = 0;
  child.start_cycle = 10;
  child.end_cycle = 60;
  child.delta.mem_accesses = 2;
  r.trace.spans.push_back(child);
  return run;
}

// The run-total / thread / root-span counters object of GoldenRun.
const char kC1[] =
    "{\"cycles\":100,\"thread_migrations\":0,\"mem_accesses\":4,"
    "\"private_hits\":0,\"llc_hits\":0,\"llc_misses\":0,\"local_dram\":3,"
    "\"remote_dram\":1,\"tlb_hits\":0,\"tlb_misses\":0,\"hinting_faults\":0,"
    "\"alloc_calls\":0,\"free_calls\":0,\"alloc_cycles\":0,"
    "\"lock_wait_cycles\":0,\"queue_delay_cycles\":0}";
// The child span's counters object.
const char kC2[] =
    "{\"cycles\":0,\"thread_migrations\":0,\"mem_accesses\":2,"
    "\"private_hits\":0,\"llc_hits\":0,\"llc_misses\":0,\"local_dram\":0,"
    "\"remote_dram\":0,\"tlb_hits\":0,\"tlb_misses\":0,\"hinting_faults\":0,"
    "\"alloc_calls\":0,\"free_calls\":0,\"alloc_cycles\":0,"
    "\"lock_wait_cycles\":0,\"queue_delay_cycles\":0}";

TEST(TraceJson, BenchJsonGolden) {
  std::string expected = std::string() +
      "{\"schema_version\":4,\n"
      " \"bench\":\"golden\",\n"
      " \"runs\":[\n"
      "    {\"id\":0,\"workload\":\"Wx\",\n"
      "     \"config\":{\"machine\":\"A\",\"threads\":2,\"affinity\":\"None\","
      "\"policy\":\"FirstTouch\",\"preferred_node\":0,"
      "\"allocator\":\"ptmalloc\",\"autonuma\":true,\"thp\":true,"
      "\"dataset\":\"MovingCluster\",\"num_records\":8000000,"
      "\"cardinality\":80000,\"build_rows\":250000,\"probe_rows\":4000000,"
      "\"seed\":7,\"run_index\":0,\"quantum\":4000,\"scalar_mem_path\":false,"
      "\"deadline_cycles\":0,\"placement\":false,\"storage\":false},\n"
      "     \"status\":\"OK\",\n"
      "     \"cycles\":100,\"aux_cycles\":5,\"checksum\":42,\"lar\":0.75,\n"
      "     \"requested_peak\":1000,\"resident_peak\":2000,\"races\":0,\n"
      "     \"counters\":" + kC1 + ",\n"
      "     \"system\":{\"page_migrations\":0,\"thp_collapses\":0,"
      "\"thp_splits\":0,\"pages_mapped\":0,\"bytes_mapped\":0,"
      "\"bytes_mapped_peak\":0,\"balancer_migrations\":0,\n"
      "      \"pages_replicated\":0,\"replica_reads\":0,"
      "\"replica_writes\":0,\"replica_invalidations\":0,"
      "\"replica_drops\":0,\"replica_bytes_peak\":0,"
      "\"migrations_vetoed\":0,\"capacity_bytes_total\":0},\n"
      "     \"degradation\":{\"pages_spilled\":0,\"oom_last_resort_pages\":0,"
      "\"offline_redirects\":0,\"all_offline_binds\":0,"
      "\"alloc_failures_injected\":0,"
      "\"migration_failures_injected\":0},\n"
      "     \"threads\":[\n"
      "      {\"id\":0,\"name\":\"w0\",\"node\":0,\"counters\":" + kC1 +
      "}],\n"
      "     \"nodes\":[\n"
      "      {\"node\":0,\"counters\":" + kC1 + "}],\n"
      "     \"spans\":[\n"
      "      {\"name\":\"worker\",\"thread\":0,\"node\":0,\"depth\":0,"
      "\"parent\":-1,\"start\":0,\"end\":100,\"counters\":" + kC1 + "},\n"
      "      {\"name\":\"build\",\"thread\":0,\"node\":0,\"depth\":1,"
      "\"parent\":0,\"start\":10,\"end\":60,\"counters\":" + kC2 +
      "}]}]}\n";
  EXPECT_EQ(BenchJson("golden", {GoldenRun()}), expected);
}

TEST(TraceJson, EmptyRunListStillWellFormed) {
  EXPECT_EQ(BenchJson("empty", {}),
            "{\"schema_version\":4,\n \"bench\":\"empty\",\n \"runs\":[]}\n");
}

TEST(TraceJson, StringsAreEscaped) {
  CollectedRun run = GoldenRun();
  run.workload = "W\"x\\y\nz";
  std::string doc = BenchJson("g", {run});
  EXPECT_NE(doc.find("\"workload\":\"W\\\"x\\\\y\\nz\""), std::string::npos);
}

// Schema v2: a run with serving_json set carries it verbatim under the
// "serving" key; without it the key is absent (v1 documents stay stable
// modulo the version bump).
TEST(TraceJson, ServingSectionAttachedWhenPresent) {
  CollectedRun plain = GoldenRun();
  EXPECT_EQ(BenchJson("g", {plain}).find("\"serving\""), std::string::npos);

  CollectedRun serving = GoldenRun();
  serving.serving_json = "{\"offered\":10,\"completed\":9}";
  std::string doc = BenchJson("g", {serving});
  EXPECT_NE(
      doc.find(",\n     \"serving\":{\"offered\":10,\"completed\":9}}"),
      std::string::npos);
}

TEST(TraceJson, ChromeTraceGolden) {
  std::string expected = std::string() +
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"run0 Wx machine=A\"}},\n"
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"w0\"}},\n"
      "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"name\":\"worker\",\"ts\":0,"
      "\"dur\":100,\"args\":{\"node\":0,\"mem_accesses\":4,\"llc_misses\":0,"
      "\"local_dram\":3,\"remote_dram\":1,\"tlb_misses\":0,\"alloc_cycles\":0,"
      "\"lock_wait_cycles\":0}},\n"
      "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"name\":\"build\",\"ts\":10,"
      "\"dur\":50,\"args\":{\"node\":0,\"mem_accesses\":2,\"llc_misses\":0,"
      "\"local_dram\":0,\"remote_dram\":0,\"tlb_misses\":0,\"alloc_cycles\":0,"
      "\"lock_wait_cycles\":0}}]}\n";
  EXPECT_EQ(ChromeTraceJson({GoldenRun()}), expected);
}

TEST(TraceJson, SameSeedSameBytesOnBothMemPaths) {
  // The determinism contract behind scripts/check.sh's merged-JSON diff:
  // identical configs serialize to identical bytes, run to run, on the
  // batched span path and on the scalar reference path alike.
  for (bool scalar : {false, true}) {
    workloads::RunConfig c = TracedConfig();
    c.scalar_mem_path = scalar;
    std::string a = BenchJson(
        "b", {CollectedRun{"W3", c, workloads::RunW3HashJoin(c), ""}});
    std::string b = BenchJson(
        "b", {CollectedRun{"W3", c, workloads::RunW3HashJoin(c), ""}});
    EXPECT_EQ(a, b) << "scalar=" << scalar;
  }
}

}  // namespace
}  // namespace trace
}  // namespace numalab
