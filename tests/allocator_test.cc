// Property tests for the seven simulated allocators: no overlap among live
// objects, alignment, reuse after free, cross-thread frees, large objects,
// stats accounting. Parameterized over all allocators — one behaviour
// contract.

#include <cstring>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "src/alloc/allocator.h"
#include "src/common/rng.h"
#include "src/mem/mem_system.h"
#include "src/sim/engine.h"
#include "src/topology/machine.h"

namespace numalab {
namespace alloc {
namespace {

class AllocatorTest : public ::testing::TestWithParam<const char*> {
 protected:
  AllocatorTest()
      : machine_(topology::MachineA()),
        memsys_(&machine_, &engine_, mem::CostModel{}, &sys_) {
    AllocEnv env{&engine_, memsys_.os(), &memsys_.costs()};
    alloc_ = MakeAllocator(GetParam(), env, &machine_);
  }

  void RunAs(int hw, const std::function<void()>& fn) {
    engine_.Spawn("t", hw, [&](sim::VThread*) { return Body(fn); });
    engine_.Run();
  }
  static sim::Task Body(const std::function<void()>& fn) {
    fn();
    co_return;
  }

  topology::Machine machine_;
  sim::Engine engine_;
  perf::SystemCounters sys_;
  mem::MemSystem memsys_;
  std::unique_ptr<SimAllocator> alloc_;
};

TEST_P(AllocatorTest, LiveObjectsNeverOverlap) {
  RunAs(0, [&] {
    Rng rng(7);
    // The overlap check walks neighbors in address order on purpose, and
    // nothing derived from that order is asserted on or exported.
    // NOLINT-DET(pointer-order): address-ordered bookkeeping is the point
    std::map<char*, size_t> live;  // base -> size
    for (int op = 0; op < 20000; ++op) {
      if (live.size() < 512 && (live.empty() || rng.Bernoulli(0.55))) {
        size_t n = 1 + rng.Uniform(2000);
        char* p = static_cast<char*>(alloc_->Alloc(n));
        ASSERT_NE(p, nullptr);
        // Check against neighbors in address order.
        auto next = live.lower_bound(p);
        if (next != live.end()) {
          ASSERT_LE(p + n, next->first);
        }
        if (next != live.begin()) {
          auto prev = std::prev(next);
          ASSERT_LE(prev->first + prev->second, p);
        }
        live[p] = n;
      } else {
        auto it = live.begin();
        std::advance(it, static_cast<long>(rng.Uniform(live.size())));
        alloc_->Free(it->first);
        live.erase(it);
      }
    }
    for (auto& [p, n] : live) alloc_->Free(p);
  });
}

TEST_P(AllocatorTest, SixteenByteAlignment) {
  RunAs(0, [&] {
    for (size_t n : {1, 7, 16, 24, 100, 1000, 5000, 40000}) {
      void* p = alloc_->Alloc(n);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 16, 0u) << n;
      alloc_->Free(p);
    }
  });
}

TEST_P(AllocatorTest, DataSurvivesOtherOperations) {
  RunAs(0, [&] {
    char* a = static_cast<char*>(alloc_->Alloc(100));
    std::memset(a, 0xAB, 100);
    std::vector<void*> noise;
    for (int i = 0; i < 1000; ++i) noise.push_back(alloc_->Alloc(64));
    for (void* p : noise) alloc_->Free(p);
    for (int i = 0; i < 100; ++i) {
      ASSERT_EQ(static_cast<unsigned char>(a[i]), 0xABu);
    }
    alloc_->Free(a);
  });
}

TEST_P(AllocatorTest, FreedMemoryIsReused) {
  // Some allocators route the specific freed block through caches it will
  // not pop from immediately (e.g. glibc's tcache-overflow path), so the
  // property is: alloc/free churn must recycle *some* address rather than
  // consuming fresh memory forever.
  RunAs(0, [&] {
    // NOLINT-DET(pointer-order): membership-only set, order never observed
    std::set<void*> seen;
    bool reused = false;
    for (int i = 0; i < 200 && !reused; ++i) {
      void* p = alloc_->Alloc(64);
      reused = !seen.insert(p).second;
      alloc_->Free(p);
    }
    EXPECT_TRUE(reused) << "freed blocks never recycled";
  });
}

TEST_P(AllocatorTest, CrossThreadFree) {
  void* p = nullptr;
  RunAs(0, [&] { p = alloc_->Alloc(128); });
  RunAs(9, [&] { alloc_->Free(p); });           // different node
  RunAs(3, [&] {
    void* q = alloc_->Alloc(128);
    EXPECT_NE(q, nullptr);
    alloc_->Free(q);
  });
  EXPECT_EQ(alloc_->stats().requested_live, 0u);
}

TEST_P(AllocatorTest, LargeObjects) {
  RunAs(0, [&] {
    char* big = static_cast<char*>(alloc_->Alloc(3u << 20));
    std::memset(big, 0x5A, 3u << 20);
    char* big2 = static_cast<char*>(alloc_->Alloc(3u << 20));
    EXPECT_TRUE(big + (3u << 20) <= big2 || big2 + (3u << 20) <= big);
    alloc_->Free(big);
    alloc_->Free(big2);
    EXPECT_EQ(alloc_->stats().requested_live, 0u);
  });
}

TEST_P(AllocatorTest, StatsTrackPeak) {
  RunAs(0, [&] {
    void* a = alloc_->Alloc(1000);
    void* b = alloc_->Alloc(1000);
    uint64_t peak = alloc_->stats().requested_peak;
    EXPECT_GE(peak, 2000u);
    alloc_->Free(a);
    alloc_->Free(b);
    EXPECT_EQ(alloc_->stats().requested_peak, peak);  // peak is sticky
    EXPECT_EQ(alloc_->stats().requested_live, 0u);
    EXPECT_EQ(alloc_->stats().allocs, alloc_->stats().frees);
  });
}

TEST_P(AllocatorTest, ZeroAndNullAreSafe) {
  RunAs(0, [&] {
    void* p = alloc_->Alloc(0);
    EXPECT_NE(p, nullptr);
    alloc_->Free(p);
    alloc_->Free(nullptr);  // no-op
  });
}

INSTANTIATE_TEST_SUITE_P(AllAllocators, AllocatorTest,
                         ::testing::Values("ptmalloc", "jemalloc",
                                           "tcmalloc", "hoard", "tbbmalloc",
                                           "supermalloc", "mcmalloc"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace alloc
}  // namespace numalab
