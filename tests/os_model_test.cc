// Tests for the OS models: placement strategies, load-balancer behaviour,
// oversubscription accounting, AutoNUMA task migration.

#include <set>

#include <gtest/gtest.h>

#include "src/osmodel/thread_sched.h"
#include "src/workloads/workloads.h"

namespace numalab {
namespace osmodel {
namespace {

TEST(Placement, SparseSpreadsAcrossNodes) {
  topology::Machine m = topology::MachineA();  // 8 nodes x 2 cores
  sim::Engine e;
  perf::SystemCounters sys;
  mem::MemSystem ms(&m, &e, mem::CostModel{}, &sys);
  ThreadScheduler sched(&m, &e, &ms, Affinity::kSparse, 1, &sys);
  std::set<int> nodes;
  for (int i = 0; i < 8; ++i) {
    nodes.insert(m.NodeOfHwThread(sched.Place(i)));
  }
  EXPECT_EQ(nodes.size(), 8u);  // 8 workers -> 8 distinct nodes
}

TEST(Placement, DensePacksNodeZeroFirst) {
  topology::Machine m = topology::MachineA();
  sim::Engine e;
  perf::SystemCounters sys;
  mem::MemSystem ms(&m, &e, mem::CostModel{}, &sys);
  ThreadScheduler sched(&m, &e, &ms, Affinity::kDense, 1, &sys);
  // First two workers fill node 0's two cores; third spills to node 1.
  EXPECT_EQ(m.NodeOfHwThread(sched.Place(0)), 0);
  EXPECT_EQ(m.NodeOfHwThread(sched.Place(1)), 0);
  EXPECT_EQ(m.NodeOfHwThread(sched.Place(2)), 1);
}

TEST(Placement, SparseUsesCoresBeforeSmtSiblings) {
  topology::Machine m = topology::MachineB();  // 4 nodes x 4 cores x 2 SMT
  sim::Engine e;
  perf::SystemCounters sys;
  mem::MemSystem ms(&m, &e, mem::CostModel{}, &sys);
  ThreadScheduler sched(&m, &e, &ms, Affinity::kSparse, 1, &sys);
  std::set<int> cores;
  for (int i = 0; i < 16; ++i) {  // 16 workers on 16 physical cores
    int hw = sched.Place(i);
    EXPECT_TRUE(cores.insert(m.CoreOfHwThread(hw)).second)
        << "worker " << i << " shares a core before all cores are used";
  }
}

TEST(Placement, DistinctHwThreadsUpToMachineSize) {
  for (const char* name : {"A", "B", "C"}) {
    topology::Machine m = topology::MachineByName(name);
    sim::Engine e;
    perf::SystemCounters sys;
    mem::MemSystem ms(&m, &e, mem::CostModel{}, &sys);
    for (Affinity a : {Affinity::kSparse, Affinity::kDense}) {
      ThreadScheduler sched(&m, &e, &ms, a, 1, &sys);
      std::set<int> hw;
      for (int i = 0; i < m.num_hw_threads(); ++i) {
        EXPECT_TRUE(hw.insert(sched.Place(i)).second)
            << name << " " << AffinityName(a) << " worker " << i;
      }
    }
  }
}

TEST(Scheduler, UnpinnedRunsMigrateAndFluctuate) {
  using namespace workloads;
  RunConfig c;
  c.machine = "A";
  c.threads = 16;
  c.affinity = Affinity::kNone;
  c.autonuma = false;
  c.thp = false;
  c.num_records = 100'000;
  c.cardinality = 10'000;

  RunConfig pinned = c;
  pinned.affinity = Affinity::kSparse;
  RunResult base = RunW1HolisticAggregation(pinned);
  EXPECT_EQ(base.report.threads.thread_migrations, 0u);

  uint64_t min_c = UINT64_MAX, max_c = 0;
  for (int run = 0; run < 5; ++run) {
    c.run_index = run;
    RunResult r = RunW1HolisticAggregation(c);
    EXPECT_GT(r.report.threads.thread_migrations, 0u);
    EXPECT_GT(r.cycles, base.cycles);  // never faster than pinned
    min_c = std::min(min_c, r.cycles);
    max_c = std::max(max_c, r.cycles);
  }
  EXPECT_GT(max_c, min_c);  // run-to-run variance exists
}

TEST(AutoNumaModel, MigratesPagesTowardAccessors) {
  using namespace workloads;
  RunConfig c;
  c.machine = "A";
  c.threads = 16;
  c.affinity = Affinity::kSparse;
  c.autonuma = true;
  c.thp = false;
  c.num_records = 600'000;
  c.cardinality = 60'000;
  RunResult r = RunW1HolisticAggregation(c);
  EXPECT_GT(r.report.threads.hinting_faults, 0u);
  EXPECT_GT(r.report.system.page_migrations, 0u);
}

TEST(AutoNumaModel, RespectsPinnedThreads) {
  using namespace workloads;
  RunConfig c;
  c.machine = "A";
  c.threads = 8;
  c.affinity = Affinity::kSparse;  // pinned -> no task migration
  c.autonuma = true;
  c.thp = false;
  c.num_records = 200'000;
  c.cardinality = 20'000;
  RunResult r = RunW1HolisticAggregation(c);
  EXPECT_EQ(r.report.threads.thread_migrations, 0u);
}

}  // namespace
}  // namespace osmodel
}  // namespace numalab
