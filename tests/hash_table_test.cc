// Tests for the shared concurrent chaining hash table (W1/W2/W3 substrate).

#include <map>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/index/hash_table.h"
#include "src/workloads/sim_context.h"

namespace numalab {
namespace index {
namespace {

using workloads::Env;
using workloads::RunConfig;
using workloads::SimContext;

class HashTableTest : public ::testing::Test {
 protected:
  HashTableTest() : ctx_(Config()) {
    env_.engine = ctx_.engine();
    env_.mem = ctx_.memsys();
    env_.alloc = ctx_.allocator();
  }
  static RunConfig Config() {
    RunConfig c;
    c.machine = "B";
    c.threads = 4;
    c.affinity = osmodel::Affinity::kSparse;
    c.autonuma = false;
    c.thp = false;
    return c;
  }
  static sim::Task Body(const std::function<void(Env&)>& fn, Env& env) {
    fn(env);
    co_return;
  }
  void RunWorkers(const std::function<void(Env&)>& fn) {
    ctx_.SpawnWorkers([&fn](Env& env) { return Body(fn, env); });
    workloads::RunResult r;
    ctx_.Finish(&r);
  }

  SimContext ctx_;
  Env env_;
};

TEST_F(HashTableTest, UpsertFindRoundTrip) {
  ConcurrentHashTable<uint64_t> table(env_, 1024);
  RunWorkers([&](Env& env) {
    if (env.worker_index != 0) return;
    for (uint64_t k = 0; k < 5000; ++k) {
      table.Upsert(env, k * 7)->value = k;
    }
    for (uint64_t k = 0; k < 5000; ++k) {
      auto* e = table.Find(env, k * 7);
      ASSERT_NE(e, nullptr);
      EXPECT_EQ(e->value, k);
    }
    EXPECT_EQ(table.Find(env, 3), nullptr);
  });
}

TEST_F(HashTableTest, UpsertIsIdempotentPerKey) {
  ConcurrentHashTable<uint64_t> table(env_, 64);
  RunWorkers([&](Env& env) {
    if (env.worker_index != 0) return;
    auto* a = table.Upsert(env, 99);
    a->value = 7;
    auto* b = table.Upsert(env, 99);
    EXPECT_EQ(a, b);
    EXPECT_EQ(b->value, 7u);
  });
}

TEST_F(HashTableTest, ConcurrentInsertsAllSurvive) {
  ConcurrentHashTable<uint64_t> table(env_, 4096);
  // 4 workers upsert disjoint and overlapping keys.
  RunWorkers([&](Env& env) {
    for (uint64_t k = 0; k < 4000; ++k) {
      auto* e = table.Upsert(env, k % 2000);  // heavy sharing
      e->value += 1;
    }
  });
  // Host-side verification via ForEach.
  uint64_t sum = 0, groups = 0;
  RunWorkers([&](Env& env) {
    if (env.worker_index != 0) return;
    table.ForEachInBuckets(env, 0, table.nbuckets(), [&](auto* e) {
      sum += e->value;
      ++groups;
    });
  });
  EXPECT_EQ(groups, 2000u);
  EXPECT_EQ(sum, 4u * 4000u);
}

TEST_F(HashTableTest, BucketCountRoundsUpToPowerOfTwo) {
  ConcurrentHashTable<uint64_t> t1(env_, 1000);
  EXPECT_EQ(t1.nbuckets(), 1024u);
  ConcurrentHashTable<uint64_t> t2(env_, 1024);
  EXPECT_EQ(t2.nbuckets(), 1024u);
}

}  // namespace
}  // namespace index
}  // namespace numalab
