// Tests for the allocators' OS interaction: large-block policies (mmap vs
// cache vs cache+decay), residency effects of purging, and THP
// fault/split churn driven by allocator behaviour.

#include <gtest/gtest.h>

#include "src/alloc/allocator.h"
#include "src/mem/mem_system.h"
#include "src/sim/engine.h"
#include "src/topology/machine.h"

namespace numalab {
namespace alloc {
namespace {

class AllocOsTest : public ::testing::Test {
 protected:
  AllocOsTest()
      : machine_(topology::MachineA()),
        memsys_(&machine_, &engine_, mem::CostModel{}, &sys_) {}

  std::unique_ptr<SimAllocator> Make(const char* name) {
    AllocEnv env{&engine_, memsys_.os(), &memsys_.costs()};
    return MakeAllocator(name, env, &machine_);
  }
  void RunAs(int hw, const std::function<void()>& fn) {
    engine_.Spawn("t", hw, [&](sim::VThread*) { return Body(fn); });
    engine_.Run();
  }
  static sim::Task Body(const std::function<void()>& fn) {
    fn();
    co_return;
  }

  topology::Machine machine_;
  sim::Engine engine_;
  perf::SystemCounters sys_;
  mem::MemSystem memsys_;
};

// Baseline for the interleave-under-offline fix: with no faultlab attached
// the rotation must stay the plain round-robin over every node, starting at
// node 0 — the bit-identical contract the faultlab-side tests
// (tests/faultlab_test.cc) compare against.
TEST_F(AllocOsTest, InterleaveRoundRobinsAllNodesWithoutFaultlab) {
  memsys_.os()->SetPolicy(mem::MemPolicy::kInterleave, 0);
  mem::Region* r = memsys_.os()->Map(2 * 8 * mem::kSmallPageBytes,
                                     /*thp_eligible=*/false);
  ASSERT_EQ(r->pages.size(), 16u);
  for (size_t i = 0; i < r->pages.size(); ++i) {
    EXPECT_EQ(r->pages[i].node,
              static_cast<int>(i % static_cast<size_t>(machine_.num_nodes())))
        << "page " << i;
  }
  EXPECT_EQ(sys_.offline_redirects, 0u);
  EXPECT_EQ(sys_.pages_spilled, 0u);
}

TEST_F(AllocOsTest, TbbmallocCachesLargeBlocks) {
  auto a = Make("tbbmalloc");
  RunAs(0, [&] {
    void* p = a->Alloc(1 << 20);
    a->Free(p);
    void* q = a->Alloc(1 << 20);
    EXPECT_EQ(q, p);  // cached mapping reused
    a->Free(q);
  });
}

TEST_F(AllocOsTest, PtmallocUnmapsLargeBlocks) {
  auto a = Make("ptmalloc");
  uint64_t mapped_before = 0;
  RunAs(0, [&] {
    void* p = a->Alloc(1 << 20);
    mapped_before = sys_.bytes_mapped;
    a->Free(p);
  });
  // munmap returned the mapping to the OS.
  EXPECT_LT(sys_.bytes_mapped, mapped_before);
}

TEST_F(AllocOsTest, JemallocDecaysLargeBlockPages) {
  auto a = Make("jemalloc");
  RunAs(0, [&] {
    char* p = static_cast<char*>(a->Alloc(1 << 20));
    // Touch the block so its pages are resident.
    engine_.current()->Charge(0);
    for (uint64_t off = 0; off < (1 << 20); off += 4096) {
      memsys_.Write(engine_.current(), p + off, 8);
    }
    uint64_t resident_live = memsys_.os()->resident_bytes();
    a->Free(p);
    // Decay: mapping kept, pages returned.
    EXPECT_LT(memsys_.os()->resident_bytes(), resident_live);
    void* q = a->Alloc(1 << 20);
    EXPECT_EQ(q, p);  // extent cached despite the purge
  });
}

TEST_F(AllocOsTest, ThpChurnOnlyForPurgingAllocators) {
  // Under THP, churning small objects makes eager-purging allocators split
  // huge pages; ptmalloc (no purge) must not split any.
  for (const char* name : {"jemalloc", "ptmalloc"}) {
    sys_ = perf::SystemCounters{};
    memsys_.os()->SetThpFaultAlloc(true);
    auto a = Make(name);
    RunAs(0, [&] {
      std::vector<void*> live;
      for (int round = 0; round < 40; ++round) {
        for (int i = 0; i < 3000; ++i) live.push_back(a->Alloc(96));
        for (void* p : live) a->Free(p);
        live.clear();
      }
    });
    if (std::string(name) == "ptmalloc") {
      EXPECT_EQ(sys_.thp_splits, 0u) << name;
    } else {
      EXPECT_GT(sys_.thp_splits, 0u) << name;
    }
  }
}

TEST_F(AllocOsTest, CarvingBindsPagesFirstTouch) {
  auto a = Make("hoard");
  // Allocate from a thread on node 3: the carved chunk's pages must be
  // bound to node 3 under first touch.
  RunAs(6, [&] {  // hw 6 -> node 3 on Machine A
    void* p = a->Alloc(256);
    auto [region, idx] = memsys_.os()->Lookup(
        reinterpret_cast<uint64_t>(p));
    EXPECT_EQ(region->pages[idx].node, 3);
  });
}

}  // namespace
}  // namespace alloc
}  // namespace numalab
