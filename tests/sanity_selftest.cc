// End-to-end selftest for the --race-detect pipeline, run as its own ctest
// entry (not part of numalab_tests: the seeded half must observe the
// process-level exit(1) contract, so it re-executes itself).
//
// Modes:
//   (default)        seeded-race check via re-exec, then clean-run checks
//                    over every workload family with the process-wide
//                    detector armed — any report exits nonzero.
//   --mode=seeded    runs two VThreads writing one cache line with no lock;
//                    SimContext::Finish must print the report and exit 1.

#include <cstdio>
#include <cstring>
#include <string>

#include "src/minidb/runner.h"
#include "src/workloads/sim_context.h"
#include "src/workloads/workloads.h"

namespace {

using namespace numalab;  // NOLINT(build/namespaces) — test main only

sim::Task RacyWriter(workloads::Env& env, uint64_t* shared) {
  for (int i = 0; i < 4; ++i) {
    env.Write(shared, sizeof(uint64_t));  // no lock: the seeded race
    co_await env.Checkpoint();
  }
}

int RunSeeded() {
  workloads::SetGlobalRaceDetect(true);
  workloads::RunConfig cfg;
  cfg.threads = 2;
  workloads::SimContext ctx(cfg);
  auto* shared = static_cast<uint64_t*>(ctx.allocator()->Alloc(8));
  ctx.SpawnWorkers(
      [&](workloads::Env& env) { return RacyWriter(env, shared); });
  workloads::RunResult result;
  ctx.Finish(&result);  // must exit(1) before returning
  std::fprintf(stderr, "seeded race was NOT caught\n");
  return 0;  // reaching here at all is the failure the parent checks for
}

int Fail(const char* what) {
  std::fprintf(stderr, "sanity_selftest: FAILED: %s\n", what);
  return 1;
}

/// Re-runs this binary with --mode=seeded and checks the exit-code +
/// report contract.
int CheckSeededMode(const char* self) {
  std::string cmd = std::string(self) + " --mode=seeded 2>&1";
  FILE* p = popen(cmd.c_str(), "r");
  if (p == nullptr) return Fail("could not re-exec self");
  std::string out;
  char buf[512];
  while (fgets(buf, sizeof(buf), p) != nullptr) out += buf;
  int status = pclose(p);
  if (status == 0) return Fail("seeded race exited 0 (must be nonzero)");
  if (out.find("DATA RACE") == std::string::npos) {
    std::fprintf(stderr, "--- child output ---\n%s", out.c_str());
    return Fail("report does not say DATA RACE");
  }
  if (out.find("worker0") == std::string::npos ||
      out.find("worker1") == std::string::npos) {
    std::fprintf(stderr, "--- child output ---\n%s", out.c_str());
    return Fail("report does not name both racing vthreads");
  }
  if (out.find("simulated line") == std::string::npos) {
    std::fprintf(stderr, "--- child output ---\n%s", out.c_str());
    return Fail("report does not name the racy line");
  }
  std::printf("seeded race: caught, nonzero exit, both vthreads named\n");
  return 0;
}

/// Clean runs: with the process-wide detector armed, any false positive in
/// the real workloads exits this process with 1 (and prints the report).
int CheckCleanRuns() {
  workloads::SetGlobalRaceDetect(true);

  workloads::RunConfig cfg;
  cfg.threads = 4;
  cfg.num_records = 50'000;
  cfg.cardinality = 5'000;
  cfg.build_rows = 10'000;
  cfg.probe_rows = 80'000;
  workloads::RunW1HolisticAggregation(cfg);
  std::printf("clean: W1\n");
  workloads::RunW2DistributiveAggregation(cfg);
  std::printf("clean: W2\n");
  workloads::RunW3HashJoin(cfg);
  std::printf("clean: W3\n");
  for (const char* index : {"art", "masstree", "btree", "skiplist"}) {
    workloads::RunW4IndexJoin(cfg, index);
    std::printf("clean: W4/%s\n", index);
  }

  minidb::TpchOptions topt;
  topt.scale = 0.01;
  for (int q : {1, 3, 5, 18}) {
    topt.query = q;
    minidb::RunTpch(topt);
    std::printf("clean: minidb Q%d\n", q);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mode=seeded") == 0) return RunSeeded();
  }
  if (int rc = CheckSeededMode(argv[0])) return rc;
  if (int rc = CheckCleanRuns()) return rc;
  std::printf("sanity_selftest: OK\n");
  return 0;
}
