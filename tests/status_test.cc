// Status / Result contract tests: the new error codes, the
// NUMALAB_RETURN_IF_ERROR propagation macro (single evaluation), and the
// release-mode guarantee that Result<T> cannot be built from an OK Status.

#include <gtest/gtest.h>

#include "src/common/status.h"

namespace numalab {
namespace {

TEST(Status, CodesAndRendering) {
  EXPECT_TRUE(Status::OK().ok());
  Status d = Status::DeadlineExceeded("watchdog");
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.code(), Status::Code::kDeadlineExceeded);
  EXPECT_EQ(d.ToString(), "DeadlineExceeded: watchdog");
  Status u = Status::Unavailable("node 3 offline");
  EXPECT_EQ(u.code(), Status::Code::kUnavailable);
  EXPECT_EQ(u.ToString(), "Unavailable: node 3 offline");
}

Status FailIfNegative(int v, int* evaluations) {
  ++*evaluations;
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int v, int* evaluations) {
  NUMALAB_RETURN_IF_ERROR(FailIfNegative(v, evaluations));
  return Status::AlreadyExists("fell through");
}

TEST(Status, ReturnIfErrorPropagatesAndEvaluatesOnce) {
  int evaluations = 0;
  Status s = Chain(-1, &evaluations);
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(evaluations, 1);

  evaluations = 0;
  s = Chain(1, &evaluations);
  EXPECT_EQ(s.code(), Status::Code::kAlreadyExists);  // macro fell through
  EXPECT_EQ(evaluations, 1);
}

TEST(Result, HoldsValue) {
  Result<int> v(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 7);
}

TEST(Result, HoldsError) {
  Result<int> e(Status::NotFound("nope"));
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), Status::Code::kNotFound);
}

#if GTEST_HAS_DEATH_TEST
TEST(ResultDeathTest, OkStatusIsRejectedEvenInRelease) {
  // NUMALAB_CHECK (not assert) backs this contract, so it must also fire
  // in NDEBUG builds.
  EXPECT_DEATH(Result<int>{Status::OK()}, "OK Status");
}
#endif

}  // namespace
}  // namespace numalab
