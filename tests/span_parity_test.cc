// Scalar-vs-span parity: the batched span engine behind MemSystem::Access /
// AccessSpan must be bit-identical to the unbatched scalar reference path —
// same ThreadCounters, same virtual clocks, same OS/cache side effects.
// Each test runs one access script through two freshly built simulation
// stacks, one per implementation, and compares everything observable.

#include <gtest/gtest.h>

#include <functional>

#include "src/mem/mem_system.h"
#include "src/sim/engine.h"
#include "src/topology/machine.h"
#include "src/workloads/run_config.h"
#include "src/workloads/workloads.h"

namespace numalab {
namespace mem {
namespace {

// One self-contained simulation stack (machine + engine + memsys) plus the
// results of running a script in it.
struct Stack {
  explicit Stack(bool scalar, CostModel costs = CostModel{})
      : machine(topology::MachineA()),
        memsys(&machine, &engine, costs, &sys) {
    memsys.SetScalarReference(scalar);
  }

  static sim::Task Body(const std::function<void(sim::VThread*)>& fn,
                        sim::VThread* vt) {
    fn(vt);
    co_return;
  }

  void RunAs(int hw, const std::function<void(sim::VThread*)>& fn) {
    engine.Spawn("t", hw, [&](sim::VThread* vt) { return Body(fn, vt); });
    engine.Run();
  }

  topology::Machine machine;
  sim::Engine engine;
  perf::SystemCounters sys;
  MemSystem memsys;
};

void ExpectSameCounters(const perf::ThreadCounters& a,
                        const perf::ThreadCounters& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.thread_migrations, b.thread_migrations);
  EXPECT_EQ(a.mem_accesses, b.mem_accesses);
  EXPECT_EQ(a.private_hits, b.private_hits);
  EXPECT_EQ(a.llc_hits, b.llc_hits);
  EXPECT_EQ(a.llc_misses, b.llc_misses);
  EXPECT_EQ(a.local_dram, b.local_dram);
  EXPECT_EQ(a.remote_dram, b.remote_dram);
  EXPECT_EQ(a.tlb_hits, b.tlb_hits);
  EXPECT_EQ(a.tlb_misses, b.tlb_misses);
  EXPECT_EQ(a.hinting_faults, b.hinting_faults);
  EXPECT_EQ(a.queue_delay_cycles, b.queue_delay_cycles);
}

// Script: gets the stack and the region mapped for it; issues accesses on
// the current thread. Run identically in a scalar and a span stack.
using Script = std::function<void(Stack&, Region*, sim::VThread*)>;

void RunBothWays(const Script& script, uint64_t map_bytes,
                 CostModel costs = CostModel{}, bool thp = false,
                 bool autonuma = false, int hw = 0) {
  Stack scalar(/*scalar=*/true, costs);
  Stack span(/*scalar=*/false, costs);
  for (Stack* s : {&scalar, &span}) {
    if (thp) s->memsys.os()->SetThpFaultAlloc(true);
    if (autonuma) s->memsys.SetAutoNumaSampling(true);
    Region* r = s->memsys.os()->Map(map_bytes);
    s->RunAs(hw, [&](sim::VThread* vt) { script(*s, r, vt); });
  }
  ASSERT_EQ(scalar.engine.threads().size(), span.engine.threads().size());
  for (size_t i = 0; i < scalar.engine.threads().size(); ++i) {
    const sim::VThread* a = scalar.engine.threads()[i].get();
    const sim::VThread* b = span.engine.threads()[i].get();
    EXPECT_EQ(a->clock, b->clock) << "thread " << i;
    ExpectSameCounters(a->counters, b->counters);
  }
  EXPECT_EQ(scalar.memsys.os()->resident_bytes(),
            span.memsys.os()->resident_bytes());
  EXPECT_EQ(scalar.sys.page_migrations, span.sys.page_migrations);
  EXPECT_EQ(scalar.sys.thp_collapses, span.sys.thp_collapses);
}

TEST(SpanParity, SingleBigReadColdThenWarm) {
  RunBothWays(
      [](Stack& s, Region* r, sim::VThread* vt) {
        s.memsys.AccessSpan(vt, r->host, r->len, 0, false);  // cold
        s.memsys.AccessSpan(vt, r->host, r->len, 0, false);  // warm
      },
      1 << 20);
}

TEST(SpanParity, StridedElementsAcrossLinesAndPages) {
  for (uint64_t stride : {8ULL, 16ULL, 64ULL, 96ULL, 100ULL, 4096ULL}) {
    RunBothWays(
        [stride](Stack& s, Region* r, sim::VThread* vt) {
          s.memsys.AccessSpan(vt, r->host, 3 * kSmallPageBytes + 40, stride,
                              true);
        },
        1 << 20);
  }
}

TEST(SpanParity, MisalignedStartAndLineStraddle) {
  RunBothWays(
      [](Stack& s, Region* r, sim::VThread* vt) {
        s.memsys.AccessSpan(vt, r->host + 60, 2 * kSmallPageBytes, 8, false);
        s.memsys.AccessSpan(vt, r->host + 7, 777, 13, true);
        s.memsys.Read(vt, r->host + kSmallPageBytes - 4, 8);  // page straddle
      },
      1 << 20);
}

TEST(SpanParity, SpanEqualsLoopOfScalarAccesses) {
  // Also pin down the *definition*: AccessSpan == the loop, on both paths.
  for (bool scalar : {false, true}) {
    Stack loop(scalar);
    Stack span(scalar);
    uint64_t bytes = 2 * kSmallPageBytes + 100;
    uint64_t stride = 24;
    Region* rl = loop.memsys.os()->Map(1 << 20);
    Region* rs = span.memsys.os()->Map(1 << 20);
    loop.RunAs(0, [&](sim::VThread* vt) {
      for (uint64_t off = 0; off < bytes; off += stride) {
        loop.memsys.Access(vt, rl->host + off,
                           std::min(stride, bytes - off), false);
      }
    });
    span.RunAs(0, [&](sim::VThread* vt) {
      span.memsys.AccessSpan(vt, rs->host, bytes, stride, false);
    });
    EXPECT_EQ(loop.engine.threads()[0]->clock,
              span.engine.threads()[0]->clock)
        << "scalar=" << scalar;
    ExpectSameCounters(loop.engine.threads()[0]->counters,
                       span.engine.threads()[0]->counters);
  }
}

TEST(SpanParity, AblationSwitches) {
  for (int mask = 0; mask < 8; ++mask) {
    CostModel costs;
    costs.model_caches = (mask & 1) != 0;
    costs.model_tlb = (mask & 2) != 0;
    costs.model_contention = (mask & 4) != 0;
    RunBothWays(
        [](Stack& s, Region* r, sim::VThread* vt) {
          s.memsys.AccessSpan(vt, r->host, 64 * kSmallPageBytes, 8, false);
          s.memsys.AccessSpan(vt, r->host, 64 * kSmallPageBytes, 0, false);
        },
        1 << 20, costs);
  }
}

TEST(SpanParity, ThpHugePagesAndRemoteNode) {
  RunBothWays(
      [](Stack& s, Region* r, sim::VThread* vt) {
        s.memsys.AccessSpan(vt, r->host, 3ULL << 20, 0, true);
        s.memsys.AccessSpan(vt, r->host + 12345, 1 << 20, 40, false);
      },
      8ULL << 20, CostModel{}, /*thp=*/true, /*autonuma=*/false,
      /*hw=*/15);  // node 7 accessor: every line remote once bound
}

TEST(SpanParity, InterleavedPolicyAlternatesNodes) {
  Stack scalar(true);
  Stack span(false);
  for (Stack* s : {&scalar, &span}) {
    s->memsys.os()->SetPolicy(MemPolicy::kInterleave);
    Region* r = s->memsys.os()->Map(1 << 20);
    s->RunAs(0, [&](sim::VThread* vt) {
      // 4K interleave: the page memo and contention route flip every page.
      s->memsys.AccessSpan(vt, r->host, 64 * kSmallPageBytes, 0, false);
      s->memsys.AccessSpan(vt, r->host, 64 * kSmallPageBytes, 8, false);
    });
  }
  EXPECT_EQ(scalar.engine.threads()[0]->clock,
            span.engine.threads()[0]->clock);
  ExpectSameCounters(scalar.engine.threads()[0]->counters,
                     span.engine.threads()[0]->counters);
}

TEST(SpanParity, AutoNumaSamplingAndMigration) {
  // Bind pages from node 0, then hammer them from node 7 with sampling on:
  // hinting faults fire, pages migrate mid-span, TLB shootdowns invalidate
  // the span memos. Two threads run sequentially in each stack.
  RunBothWays(
      [](Stack& s, Region* r, sim::VThread* vt) {
        s.memsys.AccessSpan(vt, r->host, 512 * 1024, 0, true);  // bind local
      },
      4ULL << 20, CostModel{}, false, /*autonuma=*/true, /*hw=*/0);

  Stack scalar(true);
  Stack span(false);
  for (Stack* s : {&scalar, &span}) {
    s->memsys.SetAutoNumaSampling(true);
    Region* r = s->memsys.os()->Map(4ULL << 20);
    s->RunAs(0, [&](sim::VThread* vt) {
      s->memsys.AccessSpan(vt, r->host, 512 * 1024, 0, true);
    });
    s->RunAs(15, [&](sim::VThread* vt) {
      for (int rep = 0; rep < 40; ++rep) {
        s->memsys.AccessSpan(vt, r->host, 512 * 1024, 128, false);
      }
    });
  }
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(scalar.engine.threads()[i]->clock,
              span.engine.threads()[i]->clock)
        << "thread " << i;
    ExpectSameCounters(scalar.engine.threads()[i]->counters,
                       span.engine.threads()[i]->counters);
  }
  EXPECT_EQ(scalar.sys.page_migrations, span.sys.page_migrations);
  EXPECT_GT(span.engine.threads()[1]->counters.hinting_faults, 0u);
}

// End-to-end: full W1 and W3 runs (threads, scheduler, allocator, daemons)
// must produce identical makespans, checksums and aggregate counters under
// both implementations. This is the determinism contract of the tentpole.
void ExpectSameRun(const workloads::RunResult& a,
                   const workloads::RunResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.resident_peak, b.resident_peak);
  EXPECT_EQ(a.requested_peak, b.requested_peak);
  ExpectSameCounters(a.report.threads, b.report.threads);
  EXPECT_EQ(a.report.system.page_migrations, b.report.system.page_migrations);
  EXPECT_EQ(a.report.system.thp_collapses, b.report.system.thp_collapses);
}

workloads::RunConfig SmallConfig() {
  workloads::RunConfig c;
  c.threads = 8;
  c.num_records = 200'000;
  c.cardinality = 2'000;
  c.build_rows = 20'000;
  c.probe_rows = 200'000;
  return c;
}

TEST(SpanParityEndToEnd, W1HolisticAggregation) {
  workloads::RunConfig fast = SmallConfig();
  workloads::RunConfig ref = SmallConfig();
  ref.scalar_mem_path = true;
  ExpectSameRun(workloads::RunW1HolisticAggregation(ref),
                workloads::RunW1HolisticAggregation(fast));
}

TEST(SpanParityEndToEnd, W3HashJoin) {
  workloads::RunConfig fast = SmallConfig();
  workloads::RunConfig ref = SmallConfig();
  ref.scalar_mem_path = true;
  ExpectSameRun(workloads::RunW3HashJoin(ref),
                workloads::RunW3HashJoin(fast));
}

}  // namespace
}  // namespace mem
}  // namespace numalab
