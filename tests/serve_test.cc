// Tests for numalab::serve — determinism, admission control, dynamic
// batching, arrival processes, faultlab interaction and the histogram
// cross-check (DESIGN.md section 11).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/faultlab/fault_plan.h"
#include "src/serve/serve.h"
#include "src/workloads/run_config.h"

namespace numalab {
namespace serve {
namespace {

using workloads::RunConfig;

/// A small, fast serving experiment: mixed stream minus TPC-H (the minidb
/// tests own that path; one test below turns it back on).
ServeConfig SmallConfig() {
  ServeConfig sc;
  sc.requests = 400;
  sc.kv_keys = 1 << 12;
  sc.probe_build_rows = 1024;
  sc.mean_gap_cycles = 8'000;
  sc.mix_tpch = 0;
  return sc;
}

RunConfig SmallRun() {
  RunConfig rc;
  rc.machine = "A";
  rc.threads = 4;
  return rc;
}

void ExpectAdmissionInvariants(const ServingStats& st, uint64_t requests) {
  EXPECT_EQ(st.offered, requests);
  EXPECT_EQ(st.admitted + st.dropped, st.offered);
  EXPECT_EQ(st.completed, st.admitted);
  EXPECT_EQ(st.rejected, st.retries + st.dropped);
  EXPECT_EQ(st.latency.total(), st.completed);
}

TEST(ServeTest, CompletesMixedStreamAndKeepsInvariants) {
  ServeResult r = RunServing(SmallRun(), SmallConfig());
  ASSERT_TRUE(r.run.status.ok()) << r.run.status.ToString();
  ExpectAdmissionInvariants(r.stats, 400);
  EXPECT_EQ(r.stats.dropped, 0u);  // uncontended: nothing should shed
  EXPECT_GT(r.stats.batches, 0u);
  EXPECT_GT(r.stats.makespan_cycles, 0u);
  EXPECT_LE(r.stats.p50, r.stats.p95);
  EXPECT_LE(r.stats.p95, r.stats.p99);
  EXPECT_LE(r.stats.p99, r.stats.max);
  // Every request type in the default mix actually completed.
  for (int t = 0; t < kNumRequestTypes - 1; ++t) {
    EXPECT_GT(r.stats.types[t].completed, 0u)
        << RequestTypeName(static_cast<RequestType>(t));
  }
}

TEST(ServeTest, SameSeedRunsAreBitIdentical) {
  RunConfig rc = SmallRun();
  ServeConfig sc = SmallConfig();
  ServeResult a = RunServing(rc, sc);
  ServeResult b = RunServing(rc, sc);
  ASSERT_TRUE(a.run.status.ok());
  EXPECT_EQ(a.run.cycles, b.run.cycles);
  EXPECT_EQ(a.stats.checksum, b.stats.checksum);
  EXPECT_EQ(ServingJson(sc, a.stats), ServingJson(sc, b.stats));
}

TEST(ServeTest, DifferentSeedsDiffer) {
  RunConfig rc = SmallRun();
  ServeConfig sc = SmallConfig();
  ServeResult a = RunServing(rc, sc);
  rc.seed = 1234;
  ServeResult b = RunServing(rc, sc);
  EXPECT_NE(ServingJson(sc, a.stats), ServingJson(sc, b.stats));
}

TEST(ServeTest, EveryArrivalProcessCompletes) {
  for (Arrival a : {Arrival::kFixed, Arrival::kPoisson, Arrival::kBurst,
                    Arrival::kClosed}) {
    ServeConfig sc = SmallConfig();
    sc.arrival = a;
    sc.requests = 200;
    ServeResult r = RunServing(SmallRun(), sc);
    ASSERT_TRUE(r.run.status.ok()) << ArrivalName(a);
    ExpectAdmissionInvariants(r.stats, 200);
    EXPECT_GT(r.stats.completed, 0u) << ArrivalName(a);
  }
}

TEST(ServeTest, ArrivalNamesRoundTrip) {
  for (Arrival a : {Arrival::kFixed, Arrival::kPoisson, Arrival::kBurst,
                    Arrival::kClosed}) {
    Arrival parsed;
    ASSERT_TRUE(ArrivalFromName(ArrivalName(a), &parsed));
    EXPECT_EQ(parsed, a);
  }
  Arrival parsed;
  EXPECT_FALSE(ArrivalFromName("zipf", &parsed));
}

TEST(ServeTest, OverloadShedsButBoundsQueuesAndLatency) {
  ServeConfig sc = SmallConfig();
  sc.arrival = Arrival::kBurst;       // whole bursts slam the queues
  sc.burst_size = 128;
  sc.mean_gap_cycles = 40;            // far beyond service capacity
  sc.queue_cap = 8;
  sc.max_retries = 1;
  sc.retry_backoff_cycles = 2'000;
  sc.requests = 600;
  ServeResult r = RunServing(SmallRun(), sc);
  ASSERT_TRUE(r.run.status.ok());
  ExpectAdmissionInvariants(r.stats, 600);
  EXPECT_GT(r.stats.rejected, 0u);
  EXPECT_GT(r.stats.dropped, 0u);
  // The bound holds on every queue, globally and per node.
  EXPECT_LE(r.stats.max_queue_depth, sc.queue_cap);
  for (const NodeStats& ns : r.stats.nodes) {
    EXPECT_LE(ns.max_depth, sc.queue_cap);
  }
  // Admitted requests still finish with finite tail latency.
  EXPECT_GT(r.stats.completed, 0u);
  EXPECT_GT(r.stats.p99, 0u);
  EXPECT_GE(r.stats.max, r.stats.p99);
}

TEST(ServeTest, DynamicBatchingBeatsUnbatchedDispatch) {
  // Point-only stream at high locality, offered well above service
  // capacity so the makespan is service-bound: the batcher's amortized
  // dispatch + span coalescing must cut cycles per query.
  ServeConfig sc = SmallConfig();
  sc.mix_point = 1;
  sc.mix_range = sc.mix_probe = sc.mix_upsert = 0;
  sc.point_locality = 0.9;
  sc.mean_gap_cycles = 50;
  sc.requests = 800;
  sc.queue_cap = 1024;  // isolate batching: no shedding either way

  ServeConfig unbatched = sc;
  unbatched.batch_max = 1;
  unbatched.batch_window_cycles = 0;

  ServeResult batched = RunServing(SmallRun(), sc);
  ServeResult single = RunServing(SmallRun(), unbatched);
  ASSERT_TRUE(batched.run.status.ok());
  ASSERT_TRUE(single.run.status.ok());
  ASSERT_EQ(batched.stats.completed, 800u);
  ASSERT_EQ(single.stats.completed, 800u);
  // Identical responses either way: batching is a scheduling choice.
  EXPECT_EQ(batched.stats.checksum, single.stats.checksum);
  EXPECT_GT(batched.stats.batched_requests, 0u);
  EXPECT_GT(batched.stats.max_batch, 1u);
  EXPECT_EQ(single.stats.max_batch, 1u);
  EXPECT_LT(batched.stats.CyclesPerQuery(), single.stats.CyclesPerQuery());
}

TEST(ServeTest, OfflineNodeRedirectsAndStillCompletes) {
  ServeConfig sc = SmallConfig();
  sc.requests = 300;
  RunConfig rc = SmallRun();
  faultlab::NodeOffline off;
  off.node = 1;
  off.at_cycle = 0;  // down before serving opens
  rc.faults.offline.push_back(off);
  ServeResult r = RunServing(rc, sc);
  ASSERT_TRUE(r.run.status.ok()) << r.run.status.ToString();
  ExpectAdmissionInvariants(r.stats, 300);
  EXPECT_GT(r.stats.completed, 0u);
  uint64_t redirected = 0;
  for (const NodeStats& ns : r.stats.nodes) {
    redirected += ns.redirected_offline;
  }
  EXPECT_GT(redirected, 0u);
  // Nothing was ever enqueued on the offline node.
  EXPECT_EQ(r.stats.nodes[1].enqueued, 0u);
}

TEST(ServeTest, TpchRequestsExecute) {
  ServeConfig sc = SmallConfig();
  sc.requests = 60;
  sc.mix_point = 0.5;
  sc.mix_tpch = 0.5;
  sc.mix_range = sc.mix_probe = sc.mix_upsert = 0;
  sc.tpch_scale = 0.002;
  sc.tpch_query = 6;
  ServeResult r = RunServing(SmallRun(), sc);
  ASSERT_TRUE(r.run.status.ok()) << r.run.status.ToString();
  ExpectAdmissionInvariants(r.stats, 60);
  EXPECT_GT(r.stats.types[static_cast<int>(RequestType::kTpch)].completed,
            0u);
}

TEST(ServeTest, HistogramAgreesWithExactPercentiles) {
  ServeResult r = RunServing(SmallRun(), SmallConfig());
  ASSERT_TRUE(r.run.status.ok());
  const ServingStats& st = r.stats;
  ASSERT_EQ(st.latency.total(), st.completed);
  // The log2 histogram's percentile is the upper edge of the bucket holding
  // the exact order statistic: at least the exact value, at most one bucket
  // (2x) above it.
  struct { double p; uint64_t exact; } cases[] = {
      {50, st.p50}, {95, st.p95}, {99, st.p99}};
  for (const auto& c : cases) {
    double hist = st.latency.Percentile(c.p);
    EXPECT_GE(hist + 1e-6, static_cast<double>(c.exact)) << c.p;
    EXPECT_LE(hist, static_cast<double>(std::max<uint64_t>(c.exact, 1)) * 2.0)
        << c.p;
  }
}

TEST(ServeTest, ServingJsonIsWellFormedAndOrdered) {
  ServeConfig sc = SmallConfig();
  ServeResult r = RunServing(SmallRun(), sc);
  ASSERT_TRUE(r.run.status.ok());
  std::string j = ServingJson(sc, r.stats);
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  // Fixed key order, so downstream byte-comparisons are meaningful.
  const char* keys[] = {"\"arrival\"",  "\"requests\"", "\"offered\"",
                        "\"admitted\"", "\"completed\"", "\"rejected\"",
                        "\"retries\"",  "\"dropped\"",  "\"batches\"",
                        "\"latency\"",  "\"types\"",    "\"nodes\"",
                        "\"hist\""};
  size_t pos = 0;
  for (const char* k : keys) {
    size_t at = j.find(k, pos);
    ASSERT_NE(at, std::string::npos) << k;
    pos = at;
  }
}

}  // namespace
}  // namespace serve
}  // namespace numalab
