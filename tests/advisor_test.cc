// Tests for the Fig. 10 decision-flowchart encoding.

#include <gtest/gtest.h>

#include "src/advisor/advisor.h"

namespace numalab {
namespace advisor {
namespace {

TEST(Advisor, MainPathMatchesPaperRecommendations) {
  // The paper's central scenario: unmanaged threads, bandwidth-bound,
  // superuser, undefined placement, allocation-heavy, memory plentiful.
  Situation s;
  s.thread_placement_managed = false;
  s.bandwidth_bound = true;
  s.superuser = true;
  s.memory_placement_defined = false;
  s.allocation_heavy = true;
  s.free_memory_constrained = false;

  Advice a = Advise(s);
  EXPECT_EQ(a.affinity, osmodel::Affinity::kSparse);
  EXPECT_TRUE(a.disable_autonuma);
  EXPECT_TRUE(a.disable_thp);
  EXPECT_EQ(a.policy, mem::MemPolicy::kInterleave);
  EXPECT_EQ(a.allocator, "tbbmalloc");
}

TEST(Advisor, DenseForLatencyBoundWork) {
  Situation s;
  s.bandwidth_bound = false;
  EXPECT_EQ(Advise(s).affinity, osmodel::Affinity::kDense);
}

TEST(Advisor, JemallocWhenMemoryConstrained) {
  Situation s;
  s.allocation_heavy = true;
  s.free_memory_constrained = true;
  EXPECT_EQ(Advise(s).allocator, "jemalloc");
}

TEST(Advisor, NoSuperuserStillGetsInterleave) {
  Situation s;
  s.superuser = false;
  Advice a = Advise(s);
  EXPECT_FALSE(a.disable_autonuma);
  EXPECT_EQ(a.policy, mem::MemPolicy::kInterleave);
}

TEST(Advisor, DefaultAllocatorWhenNotAllocationHeavy) {
  Situation s;
  s.allocation_heavy = false;
  EXPECT_EQ(Advise(s).allocator, "ptmalloc");
}

TEST(Advisor, ApplyAdviceOverridesOsKnobs) {
  Situation s;
  workloads::RunConfig base;  // defaults: autonuma+thp on, kNone
  base.threads = 8;
  workloads::RunConfig tuned = ApplyAdvice(Advise(s), base);
  EXPECT_FALSE(tuned.autonuma);
  EXPECT_FALSE(tuned.thp);
  EXPECT_EQ(tuned.affinity, osmodel::Affinity::kSparse);
  EXPECT_EQ(tuned.threads, 8);  // workload knobs untouched
}

TEST(Advisor, AutoTunerAgreesWithFlowchartDirection) {
  Situation s;
  workloads::RunConfig base;
  base.machine = "A";
  base.threads = 8;
  base.num_records = 100'000;
  base.cardinality = 10'000;
  AutoTuneResult r = AutoTune(base, s);
  EXPECT_EQ(r.evaluated, 12);
  EXPECT_GT(r.best_cycles, 0u);
  // The flowchart configuration must be within 25% of the empirical best —
  // that is the paper's whole claim.
  EXPECT_LE(static_cast<double>(r.flowchart_cycles),
            1.25 * static_cast<double>(r.best_cycles));
}

}  // namespace
}  // namespace advisor
}  // namespace numalab
