// Correctness tests for the four W4 index structures, exercised through a
// minimal simulation context (the indexes need an allocator and charging).
// Parameterized across index types: identical behaviour contract.

#include <map>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/index/index.h"
#include "src/workloads/sim_context.h"

namespace numalab {
namespace index {
namespace {

using workloads::Env;
using workloads::RunConfig;
using workloads::SimContext;

class IndexTest : public ::testing::TestWithParam<const char*> {
 protected:
  IndexTest() : ctx_(MakeConfig()) {
    env_.engine = ctx_.engine();
    env_.mem = ctx_.memsys();
    env_.alloc = ctx_.allocator();
  }

  static RunConfig MakeConfig() {
    RunConfig c;
    c.machine = "B";
    c.threads = 1;
    c.affinity = osmodel::Affinity::kSparse;
    c.autonuma = false;
    c.thp = false;
    return c;
  }

  // A named coroutine function: parameters live in the coroutine frame, so
  // (unlike a coroutine *lambda*) nothing dangles after the factory returns.
  static sim::Task BodyCoro(const std::function<void(Env&)>& body,
                            Env& env) {
    body(env);
    co_return;
  }

  // Runs `body` inside a single worker coroutine so charging works.
  void RunInSim(const std::function<void(Env&)>& body) {
    ctx_.SpawnWorkers([&body](Env& env) { return BodyCoro(body, env); });
    workloads::RunResult r;
    ctx_.Finish(&r);
  }

  SimContext ctx_;
  Env env_;
};

TEST_P(IndexTest, InsertLookupRoundTrip) {
  auto idx = MakeIndex(GetParam(), /*seed=*/7);
  RunInSim([&](Env& env) {
    for (uint64_t k = 0; k < 2000; ++k) {
      idx->Insert(env, k * 3, k + 100);
    }
    uint64_t v = 0;
    for (uint64_t k = 0; k < 2000; ++k) {
      ASSERT_TRUE(idx->Lookup(env, k * 3, &v)) << GetParam() << " key "
                                               << k * 3;
      EXPECT_EQ(v, k + 100);
    }
    // Keys between the inserted ones are absent.
    EXPECT_FALSE(idx->Lookup(env, 1, &v));
    EXPECT_FALSE(idx->Lookup(env, 3001 * 3, &v));
  });
}

TEST_P(IndexTest, OverwriteUpdatesValue) {
  auto idx = MakeIndex(GetParam(), 7);
  RunInSim([&](Env& env) {
    idx->Insert(env, 42, 1);
    idx->Insert(env, 42, 2);
    uint64_t v = 0;
    ASSERT_TRUE(idx->Lookup(env, 42, &v));
    EXPECT_EQ(v, 2u);
  });
}

TEST_P(IndexTest, RandomKeysMatchStdMap) {
  auto idx = MakeIndex(GetParam(), 7);
  RunInSim([&](Env& env) {
    Rng rng(99);
    std::map<uint64_t, uint64_t> ref;
    for (int i = 0; i < 5000; ++i) {
      uint64_t k = rng.Next();  // full 64-bit range
      uint64_t v = rng.Next();
      ref[k] = v;
      idx->Insert(env, k, v);
    }
    for (const auto& [k, v] : ref) {
      uint64_t got = 0;
      ASSERT_TRUE(idx->Lookup(env, k, &got)) << GetParam();
      EXPECT_EQ(got, v);
    }
    for (int i = 0; i < 1000; ++i) {
      uint64_t k = rng.Next();
      uint64_t got = 0;
      if (ref.count(k) == 0) {
        EXPECT_FALSE(idx->Lookup(env, k, &got));
      }
    }
  });
}

TEST_P(IndexTest, DenseSequentialKeys) {
  auto idx = MakeIndex(GetParam(), 7);
  RunInSim([&](Env& env) {
    for (uint64_t k = 0; k < 20000; ++k) idx->Insert(env, k, ~k);
    uint64_t v = 0;
    for (uint64_t k = 0; k < 20000; k += 97) {
      ASSERT_TRUE(idx->Lookup(env, k, &v));
      EXPECT_EQ(v, ~k);
    }
    EXPECT_FALSE(idx->Lookup(env, 20001, &v));
  });
}

TEST_P(IndexTest, BoundaryKeys) {
  auto idx = MakeIndex(GetParam(), 7);
  RunInSim([&](Env& env) {
    const uint64_t keys[] = {0, 1, 255, 256, 65535, 65536, ~0ULL,
                             ~0ULL - 1, 1ULL << 63};
    uint64_t tag = 1;
    for (uint64_t k : keys) idx->Insert(env, k, tag++);
    tag = 1;
    uint64_t v = 0;
    for (uint64_t k : keys) {
      ASSERT_TRUE(idx->Lookup(env, k, &v)) << GetParam() << " key " << k;
      EXPECT_EQ(v, tag++);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllIndexes, IndexTest,
                         ::testing::Values("art", "masstree", "btree",
                                           "skiplist"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace index
}  // namespace numalab
