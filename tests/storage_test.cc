// Tests for numalab::storage — eviction determinism, pin/unpin misuse,
// WAL replay idempotence, checkpoint truncation and the serving
// integration (DESIGN.md section 15).
//
// Sim-driven tests use free coroutine functions (never capturing-lambda
// coroutines: the lambda object dies before the coroutine resumes).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/serve/serve.h"
#include "src/storage/storage.h"
#include "src/workloads/sim_context.h"

namespace numalab {
namespace storage {
namespace {

using workloads::Env;
using workloads::RunConfig;
using workloads::SimContext;

RunConfig SmallRun() {
  RunConfig rc;
  rc.machine = "A";  // 8 nodes x 2 cores: full shard fan-out
  rc.threads = 1;
  return rc;
}

/// 24 pages (253 slots each) over 8 shards: pages {0, 8, 16} land on
/// shard 0, so a 2-frame shard must evict. Checkpoints off by default so
/// the WAL tests control truncation explicitly.
StorageConfig SmallConfig() {
  StorageConfig cfg;
  cfg.enabled = true;
  cfg.rows = 24 * 253;
  cfg.frames_per_shard = 2;
  cfg.checkpoint_interval_records = 0;
  return cfg;
}

sim::Task FetchSequence(Env& env, StorageEngine* eng,
                        const std::vector<uint64_t>* pages) {
  for (uint64_t page : *pages) {
    Frame* f = eng->FetchPage(env, page);
    EXPECT_NE(f, nullptr);
    if (f != nullptr) eng->UnpinPage(f);
    co_await env.Checkpoint();
  }
}

sim::Task FetchAndHold(Env& env, StorageEngine* eng, Frame** out) {
  *out = eng->FetchPage(env, 0);
  co_return;
}

TEST(StorageTest, PageGeometryAndPreload) {
  SimContext ctx(SmallRun());
  StorageConfig cfg = SmallConfig();
  StorageEngine eng(cfg, ctx.machine().num_nodes(), /*seed=*/42, nullptr);
  EXPECT_EQ(eng.rows_per_page(), 253u);  // 8 + 4*8 + 16*253 <= 4096
  EXPECT_EQ(eng.pages(), 24u);
  EXPECT_EQ(eng.shard_of(0), 0);
  EXPECT_EQ(eng.shard_of(9), 1);
  // The preloaded table digests identically without any simulated access.
  StorageEngine twin(cfg, ctx.machine().num_nodes(), /*seed=*/7, nullptr);
  EXPECT_EQ(eng.Checksum(), twin.Checksum());
  EXPECT_NE(eng.Checksum(), 0u);
}

TEST(StorageTest, EvictionOrderIsDeterministic) {
  // Two same-seed runs over the same fetch sequence must make identical
  // eviction decisions, leave the identical cached set, and serialize to
  // identical stats JSON.
  auto drive = [](uint64_t* cycles) {
    RunConfig rc = SmallRun();
    SimContext ctx(rc);
    StorageConfig cfg = SmallConfig();
    StorageEngine eng(cfg, ctx.machine().num_nodes(), rc.seed, nullptr);
    const std::vector<uint64_t> pages = {0, 8, 0, 16, 8, 16};
    ctx.SpawnWorkers(
        [&](Env& env) { return FetchSequence(env, &eng, &pages); });
    workloads::RunResult result;
    ctx.Finish(&result);
    EXPECT_TRUE(result.status.ok());
    *cycles = result.cycles;
    // Second-chance clock: 0 and 8 fill the shard; re-referencing 0 sets
    // its ref bit, but fetching 16 sweeps both refs clear and the second
    // lap still lands on frame 0 — page 0 is evicted, then 8 and 16 hit.
    EXPECT_FALSE(eng.Cached(0));
    EXPECT_TRUE(eng.Cached(8));
    EXPECT_TRUE(eng.Cached(16));
    StorageStats st = eng.stats();
    EXPECT_EQ(st.lookups, 6u);
    EXPECT_EQ(st.hits, 3u);
    EXPECT_EQ(st.misses, 3u);
    EXPECT_EQ(st.evictions, 1u);
    return StorageJson(cfg, st);
  };
  uint64_t cycles_a = 0, cycles_b = 0;
  std::string a = drive(&cycles_a);
  std::string b = drive(&cycles_b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(cycles_a, cycles_b);
}

TEST(StorageDeathTest, UnpinningAnUnpinnedFrameAborts) {
  SimContext ctx(SmallRun());
  StorageEngine eng(SmallConfig(), ctx.machine().num_nodes(), 1, nullptr);
  Frame* frame = nullptr;
  ctx.SpawnWorkers([&](Env& env) { return FetchAndHold(env, &eng, &frame); });
  workloads::RunResult result;
  ctx.Finish(&result);
  ASSERT_NE(frame, nullptr);
  eng.UnpinPage(frame);  // balances the FetchPage
  EXPECT_DEATH(eng.UnpinPage(frame), "UnpinPage on an unpinned frame");
}

sim::Task ReplayIdempotenceOps(Env& env, StorageEngine* eng) {
  // 10 upserts each into page 0 and page 8 (both shard 0) and page 1
  // (shard 1); all three frames stay cached and dirty.
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(eng->Upsert(env, i, PreloadValue(i) + 1));
    EXPECT_TRUE(eng->Upsert(env, 8 * 253 + i, i + 1));
    EXPECT_TRUE(eng->Upsert(env, 253 + i, i + 2));
  }
  uint64_t expect = eng->Checksum();

  // Crash shard 0: pages 0 and 8 lose their only up-to-date copies, and
  // redo must replay exactly their 20 records from the force-flushed WAL.
  eng->RecoverAfterCrash(env, 0);
  StorageStats after0 = eng->stats();
  EXPECT_EQ(after0.crashes, 1u);
  EXPECT_EQ(after0.recovery_dirty_frames_lost, 2u);
  EXPECT_EQ(after0.recovery_records_replayed, 20u);
  EXPECT_EQ(eng->Checksum(), expect);

  // Crash shard 1 next: its redo pass rescans the *whole* WAL, but the
  // per-page LSN guard skips every record already applied to pages 0 and
  // 8 — only page 1's 10 records replay. Idempotence, observably.
  eng->RecoverAfterCrash(env, 1);
  StorageStats after1 = eng->stats();
  EXPECT_EQ(after1.crashes, 2u);
  EXPECT_EQ(after1.recovery_records_replayed, 30u);
  EXPECT_EQ(eng->Checksum(), expect);

  // A Get through a surviving shard still sees the recovered value.
  uint64_t v = 0;
  EXPECT_TRUE(eng->Get(env, 0, &v));
  EXPECT_EQ(v, PreloadValue(0) + 1);
  co_return;
}

TEST(StorageTest, WalReplayIsIdempotent) {
  RunConfig rc = SmallRun();
  SimContext ctx(rc);
  StorageConfig cfg = SmallConfig();
  cfg.frames_per_shard = 4;  // pages 0 and 8 stay cached together
  StorageEngine eng(cfg, ctx.machine().num_nodes(), rc.seed, nullptr);
  ctx.SpawnWorkers([&](Env& env) { return ReplayIdempotenceOps(env, &eng); });
  workloads::RunResult result;
  ctx.Finish(&result);
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
}

sim::Task CheckpointOps(Env& env, StorageEngine* eng) {
  for (uint64_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(eng->Upsert(env, i, i + 7));  // all page 0, shard 0
  }
  // Checkpoints fired at records 8 and 16, each truncating the log; only
  // the 4 post-checkpoint records stay live.
  StorageStats st = eng->stats();
  EXPECT_EQ(st.checkpoints, 2u);
  EXPECT_EQ(st.wal_truncated_records, 16u);
  EXPECT_EQ(eng->wal_live_records() + eng->wal_buffered_records(), 4u);

  // A crash now only redoes the post-checkpoint tail.
  uint64_t expect = eng->Checksum();
  eng->RecoverAfterCrash(env, 0);
  StorageStats rec = eng->stats();
  EXPECT_EQ(rec.recovery_records_scanned, 4u);
  EXPECT_EQ(rec.recovery_records_replayed, 4u);
  EXPECT_EQ(eng->Checksum(), expect);
  co_return;
}

TEST(StorageTest, CheckpointTruncatesTheLogAndBoundsRedo) {
  RunConfig rc = SmallRun();
  SimContext ctx(rc);
  StorageConfig cfg = SmallConfig();
  cfg.checkpoint_interval_records = 8;
  cfg.group_commit_records = 4;
  StorageEngine eng(cfg, ctx.machine().num_nodes(), rc.seed, nullptr);
  ctx.SpawnWorkers([&](Env& env) { return CheckpointOps(env, &eng); });
  workloads::RunResult result;
  ctx.Finish(&result);
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
}

TEST(StorageTest, PlacementNamesRoundTrip) {
  for (ShardPlacement p : {ShardPlacement::kLocal, ShardPlacement::kNode0,
                           ShardPlacement::kInterleave}) {
    ShardPlacement parsed;
    ASSERT_TRUE(ShardPlacementFromName(ShardPlacementName(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
  ShardPlacement parsed;
  EXPECT_FALSE(ShardPlacementFromName("hbm", &parsed));
}

TEST(StorageServeTest, ServingStreamThroughStorageIsDeterministic) {
  // The --storage=1 serving path: same-seed runs must agree bit-for-bit on
  // the storage section, and the accounting invariants the JSON validator
  // enforces must hold.
  RunConfig rc;
  rc.machine = "A";
  rc.threads = 4;
  serve::ServeConfig sc;
  sc.requests = 300;
  sc.kv_keys = 1 << 12;
  sc.probe_build_rows = 1024;
  sc.mean_gap_cycles = 4'000;
  sc.mix_point = 0.4;
  sc.mix_range = 0.2;
  sc.mix_probe = 0;
  sc.mix_upsert = 0.4;
  sc.mix_tpch = 0;
  sc.storage.enabled = true;
  sc.storage.frames_per_shard = 4;
  serve::ServeResult a = serve::RunServing(rc, sc);
  serve::ServeResult b = serve::RunServing(rc, sc);
  ASSERT_TRUE(a.run.status.ok()) << a.run.status.ToString();
  EXPECT_EQ(a.run.cycles, b.run.cycles);
  EXPECT_EQ(StorageJson(sc.storage, a.storage),
            StorageJson(sc.storage, b.storage));
  EXPECT_GT(a.storage.upserts, 0u);
  EXPECT_GT(a.storage.gets, 0u);
  EXPECT_GT(a.storage.scan_rows, 0u);
  EXPECT_EQ(a.storage.hits + a.storage.misses, a.storage.lookups);
  EXPECT_EQ(a.storage.crashes, 0u);
  uint64_t shard_lookups = 0;
  for (const ShardStats& s : a.storage.shards) shard_lookups += s.lookups;
  EXPECT_EQ(shard_lookups, a.storage.lookups);
}

}  // namespace
}  // namespace storage
}  // namespace numalab
